package superglue

import (
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/obs"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
)

// The allocation budget guards: the steady-state fast paths measured by
// BenchmarkKernelInvoke and BenchmarkTrackingLock/superglue must stay at
// 0 allocs/op. A regression here silently re-introduces GC pressure on the
// invocation primitive, so it fails as a test rather than waiting for
// someone to read benchmark output.

// TestKernelInvokeZeroAllocs pins the bare invocation primitive.
func TestKernelInvokeZeroAllocs(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := event.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	k := sys.Kernel()
	allocs := -1.0
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := k.Invoke(th, comp, event.FnSplit, 1, 0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		args := []kernel.Word{1, id}
		// Warm the path (first call touches cold map buckets etc.).
		if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
			t.Error(err)
			return
		}
		allocs = testing.AllocsPerRun(500, func() {
			if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
				t.Error(err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state kernel Invoke allocates %.1f objects/op, want 0", allocs)
	}
}

// TestKernelInvokeZeroAllocsTracingDisabled pins the same fast path after a
// tracer has been installed and removed again: the stub trace hooks sit
// behind a nil-check, and with the recorder detached they must cost nothing.
func TestKernelInvokeZeroAllocsTracingDisabled(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := event.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetTracer(obs.NewRecorder(obs.DefaultCapacity))
	sys.SetTracer(nil)
	k := sys.Kernel()
	allocs := -1.0
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := k.Invoke(th, comp, event.FnSplit, 1, 0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		args := []kernel.Word{1, id}
		if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
			t.Error(err)
			return
		}
		allocs = testing.AllocsPerRun(500, func() {
			if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
				t.Error(err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("tracing-disabled kernel Invoke allocates %.1f objects/op, want 0", allocs)
	}
}

// TestKernelInvokeZeroAllocsTracingEnabled pins the fast path with a live
// recorder attached: the ring buffer's steady-state Record path is
// allocation-free, so enabling tracing must not add GC pressure either.
func TestKernelInvokeZeroAllocsTracingEnabled(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := event.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetTracer(obs.NewRecorder(obs.DefaultCapacity))
	k := sys.Kernel()
	allocs := -1.0
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := k.Invoke(th, comp, event.FnSplit, 1, 0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		args := []kernel.Word{1, id}
		// Warm: the first traced invoke touches the recorder's cold
		// per-component aggregate slots.
		if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
			t.Error(err)
			return
		}
		allocs = testing.AllocsPerRun(500, func() {
			if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
				t.Error(err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("tracing-enabled kernel Invoke allocates %.1f objects/op, want 0", allocs)
	}
}

// TestLockStubZeroAllocs pins the SuperGlue stub's tracked lock
// take/release cycle (the BenchmarkTrackingLock/superglue path).
func TestLockStubZeroAllocs(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	lockComp, err := lock.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	locks, err := lock.NewClient(app, lockComp)
	if err != nil {
		t.Fatal(err)
	}
	k := sys.Kernel()
	allocs := -1.0
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := locks.Alloc(th)
		if err != nil {
			t.Error(err)
			return
		}
		// Warm: the first hold allocates the per-thread tracking entry,
		// which is reused (not deleted) from then on.
		if err := locks.Take(th, id); err != nil {
			t.Error(err)
			return
		}
		if err := locks.Release(th, id); err != nil {
			t.Error(err)
			return
		}
		allocs = testing.AllocsPerRun(500, func() {
			if err := locks.Take(th, id); err != nil {
				t.Error(err)
			}
			if err := locks.Release(th, id); err != nil {
				t.Error(err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state lock take/release allocates %.1f objects/op, want 0", allocs)
	}
}

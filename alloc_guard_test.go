package superglue

import (
	"testing"

	"superglue/internal/cbuf"
	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/obs"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/storage"
)

// The allocation budget guards: the steady-state fast paths measured by
// BenchmarkKernelInvoke and BenchmarkTrackingLock/superglue must stay at
// 0 allocs/op. A regression here silently re-introduces GC pressure on the
// invocation primitive, so it fails as a test rather than waiting for
// someone to read benchmark output.

// TestKernelInvokeZeroAllocs pins the bare invocation primitive.
func TestKernelInvokeZeroAllocs(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := event.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	k := sys.Kernel()
	allocs := -1.0
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := k.Invoke(th, comp, event.FnSplit, 1, 0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		args := []kernel.Word{1, id}
		// Warm the path (first call touches cold map buckets etc.).
		if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
			t.Error(err)
			return
		}
		allocs = testing.AllocsPerRun(500, func() {
			if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
				t.Error(err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state kernel Invoke allocates %.1f objects/op, want 0", allocs)
	}
}

// TestKernelInvokeZeroAllocsTracingDisabled pins the same fast path after a
// tracer has been installed and removed again: the stub trace hooks sit
// behind a nil-check, and with the recorder detached they must cost nothing.
func TestKernelInvokeZeroAllocsTracingDisabled(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := event.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetTracer(obs.NewRecorder(obs.DefaultCapacity))
	sys.SetTracer(nil)
	k := sys.Kernel()
	allocs := -1.0
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := k.Invoke(th, comp, event.FnSplit, 1, 0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		args := []kernel.Word{1, id}
		if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
			t.Error(err)
			return
		}
		allocs = testing.AllocsPerRun(500, func() {
			if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
				t.Error(err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("tracing-disabled kernel Invoke allocates %.1f objects/op, want 0", allocs)
	}
}

// TestKernelInvokeZeroAllocsTracingEnabled pins the fast path with a live
// recorder attached: the ring buffer's steady-state Record path is
// allocation-free, so enabling tracing must not add GC pressure either.
func TestKernelInvokeZeroAllocsTracingEnabled(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := event.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetTracer(obs.NewRecorder(obs.DefaultCapacity))
	k := sys.Kernel()
	allocs := -1.0
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := k.Invoke(th, comp, event.FnSplit, 1, 0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		args := []kernel.Word{1, id}
		// Warm: the first traced invoke touches the recorder's cold
		// per-component aggregate slots.
		if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
			t.Error(err)
			return
		}
		allocs = testing.AllocsPerRun(500, func() {
			if _, err := k.Invoke(th, comp, event.FnTrigger, args...); err != nil {
				t.Error(err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("tracing-enabled kernel Invoke allocates %.1f objects/op, want 0", allocs)
	}
}

// TestLockStubZeroAllocs pins the SuperGlue stub's tracked lock
// take/release cycle (the BenchmarkTrackingLock/superglue path).
func TestLockStubZeroAllocs(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	lockComp, err := lock.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	locks, err := lock.NewClient(app, lockComp)
	if err != nil {
		t.Fatal(err)
	}
	k := sys.Kernel()
	allocs := -1.0
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := locks.Alloc(th)
		if err != nil {
			t.Error(err)
			return
		}
		// Warm: the first hold allocates the per-thread tracking entry,
		// which is reused (not deleted) from then on.
		if err := locks.Take(th, id); err != nil {
			t.Error(err)
			return
		}
		if err := locks.Release(th, id); err != nil {
			t.Error(err)
			return
		}
		allocs = testing.AllocsPerRun(500, func() {
			if err := locks.Take(th, id); err != nil {
				t.Error(err)
			}
			if err := locks.Release(th, id); err != nil {
				t.Error(err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state lock take/release allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStorageQuorumWriteAllocs guards the quorum write path
// (BenchmarkStorageQuorumWrite): sealing a WAL record once per write
// into the store's reusable scratch buffer — instead of one fresh encode
// per replica per write — plus encode-buffer reuse on the checkpoint
// path keeps a 3-replica SaveSlice to a handful of allocations per op
// (the survivors are the per-replica extent-list appends and the
// amortized every-64-writes checkpoint clone; it was 21 allocs/op and
// ~276 KB/op before the reuse).
func TestStorageQuorumWriteAllocs(t *testing.T) {
	cm := cbuf.NewManager(0)
	s := storage.NewReplicated(cm, 3)
	s.Attach(kernel.ComponentID(42))
	data := []byte("quorum-write-payload")
	const owner = 9
	b, err := cm.Alloc(owner, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Write(b, owner, 0, data); err != nil {
		t.Fatal(err)
	}
	// Warm the rotating descriptor set (same shape as the benchmark), so
	// the measured window sees the steady state.
	i := 0
	write := func() {
		if err := s.SaveSlice(1, kernel.Word(i%64), 0, b, 0, len(data)); err != nil {
			t.Fatal(err)
		}
		i++
	}
	for n := 0; n < 256; n++ {
		write()
	}
	allocs := testing.AllocsPerRun(512, write)
	if allocs > 8 {
		t.Errorf("quorum SaveSlice allocates %.1f objects/op, want <= 8", allocs)
	}
}

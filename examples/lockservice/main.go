// Lock service under contention and faults: an owner thread holds the lock
// while a contender blocks on it; the lock component crashes mid-critical-
// section; recovery re-establishes ownership for the owner (hold replay
// with the recorded holder identity) and re-contends the waiter, so mutual
// exclusion holds across the µ-reboot.
//
//	go run ./examples/lockservice
package main

import (
	"fmt"
	"os"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lockservice:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		return err
	}
	comp, err := lock.Register(sys)
	if err != nil {
		return err
	}
	app, err := sys.NewClient("app")
	if err != nil {
		return err
	}
	locks, err := lock.NewClient(app, comp)
	if err != nil {
		return err
	}
	k := sys.Kernel()

	var id kernel.Word
	inCS := 0
	enterCS := func(who string) error {
		inCS++
		if inCS != 1 {
			return fmt.Errorf("MUTUAL EXCLUSION VIOLATED: %d threads in critical section", inCS)
		}
		fmt.Printf("  [%s] in critical section\n", who)
		return nil
	}
	leaveCS := func() { inCS-- }

	if _, err := k.CreateThread(nil, "owner", 10, func(t *kernel.Thread) {
		var err error
		id, err = locks.Alloc(t)
		if err != nil {
			fmt.Println("alloc:", err)
			return
		}
		if err := locks.Take(t, id); err != nil {
			fmt.Println("owner take:", err)
			return
		}
		if err := enterCS("owner"); err != nil {
			fmt.Println(err)
			return
		}
		// Let the contender run: it will block on the held lock.
		if err := k.Yield(t); err != nil {
			return
		}
		// Crash the lock component while holding the lock with a waiter
		// queued: the hardest case.
		fmt.Println("!! fault injected while lock is held and contended")
		if err := k.FailComponent(comp); err != nil {
			fmt.Println("inject:", err)
			return
		}
		leaveCS()
		// Release across the fault: the stub recovers the descriptor,
		// re-acquires on the owner's behalf, then releases, handing the
		// lock to the recovered contender.
		if err := locks.Release(t, id); err != nil {
			fmt.Println("owner release:", err)
			return
		}
		fmt.Println("  [owner] released across the fault")
	}); err != nil {
		return err
	}

	if _, err := k.CreateThread(nil, "contender", 10, func(t *kernel.Thread) {
		if err := locks.Take(t, id); err != nil {
			fmt.Println("contender take:", err)
			return
		}
		if err := enterCS("contender"); err != nil {
			fmt.Println(err)
			return
		}
		leaveCS()
		if err := locks.Release(t, id); err != nil {
			fmt.Println("contender release:", err)
			return
		}
		if err := locks.Free(t, id); err != nil {
			fmt.Println("free:", err)
			return
		}
		fmt.Println("  [contender] acquired after recovery, released, freed")
	}); err != nil {
		return err
	}

	if err := k.Run(); err != nil {
		return err
	}
	m := locks.Stub().Metrics()
	fmt.Printf("recoveries: %d, hold replays: %d, walk steps: %d\n",
		m.Recoveries, m.HoldReplays, m.WalkSteps)
	return nil
}

// Quickstart: boot a simulated COMPOSITE machine, register a recoverable
// system service from its SuperGlue IDL, inject a fault, and watch the
// client stub recover it transparently.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A System bundles the simulated µ-kernel, the zero-copy buffer
	// manager, and the storage component, with on-demand (T1) recovery.
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		return err
	}

	// Register the lock service. Its interface and recovery semantics come
	// from lock.sg — the SuperGlue IDL file — which the runtime compiles
	// into a descriptor state machine and recovery plan.
	lockComp, err := lock.Register(sys)
	if err != nil {
		return err
	}
	spec, err := lock.Spec()
	if err != nil {
		return err
	}
	fmt.Printf("lock service registered: mechanisms %v\n", spec.Mechanisms())

	// A client component holds the interface stub.
	app, err := sys.NewClient("app")
	if err != nil {
		return err
	}
	locks, err := lock.NewClient(app, lockComp)
	if err != nil {
		return err
	}

	// Application code runs on simulated threads.
	if _, err := sys.Kernel().CreateThread(nil, "main", 10, func(t *kernel.Thread) {
		id, err := locks.Alloc(t)
		if err != nil {
			fmt.Println("alloc:", err)
			return
		}
		fmt.Printf("allocated lock %d\n", id)

		if err := locks.Take(t, id); err != nil {
			fmt.Println("take:", err)
			return
		}
		fmt.Println("lock taken")

		// A transient fault crashes the lock component (fail-stop).
		if err := sys.Kernel().FailComponent(lockComp); err != nil {
			fmt.Println("inject:", err)
			return
		}
		fmt.Println("!! transient fault injected into the lock component")

		// The next call hits the fault: the stub µ-reboots the component,
		// replays the recovery walk (re-alloc, re-acquire on our behalf),
		// and redoes the release — all transparently.
		if err := locks.Release(t, id); err != nil {
			fmt.Println("release:", err)
			return
		}
		fmt.Println("lock released across the fault — recovery was transparent")

		m := locks.Stub().Metrics()
		fmt.Printf("stub metrics: %d invocations, %d recoveries, %d walk steps, %d redos\n",
			m.Invocations, m.Recoveries, m.WalkSteps, m.Redos)
	}); err != nil {
		return err
	}
	return sys.Kernel().Run()
}

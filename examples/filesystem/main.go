// Filesystem recovery with resource data (mechanism G1): file contents are
// redundantly stored in the storage component as zero-copy buffer
// references; after a crash, a replayed fs_open restores the contents and
// the sm_restore'd fs_lseek restores the descriptor's offset — the paper's
// "open and lseek" recovery walk.
//
//	go run ./examples/filesystem
package main

import (
	"fmt"
	"os"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/ramfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "filesystem:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		return err
	}
	comp, err := ramfs.Register(sys)
	if err != nil {
		return err
	}
	app, err := sys.NewClient("app")
	if err != nil {
		return err
	}
	fs, err := ramfs.NewClient(app, comp)
	if err != nil {
		return err
	}
	k := sys.Kernel()

	if _, err := k.CreateThread(nil, "main", 10, func(t *kernel.Thread) {
		fd, err := fs.Open(t, "/journal.log")
		if err != nil {
			fmt.Println("open:", err)
			return
		}
		if _, err := fs.Write(t, fd, []byte("entry-1\nentry-2\nentry-3\n")); err != nil {
			fmt.Println("write:", err)
			return
		}
		fmt.Println("wrote 3 journal entries")

		// Position at the second entry.
		if _, err := fs.Lseek(t, fd, len("entry-1\n")); err != nil {
			fmt.Println("lseek:", err)
			return
		}

		// The RAM filesystem crashes: its in-memory files are gone.
		if err := k.FailComponent(comp); err != nil {
			fmt.Println("inject:", err)
			return
		}
		fmt.Println("!! transient fault injected into the RAM filesystem")

		// Reading across the fault: the stub µ-reboots the component and
		// replays open (content restored from the storage component) and
		// lseek (offset restored from tracked descriptor data).
		got, err := fs.Read(t, fd, len("entry-2\n"))
		if err != nil {
			fmt.Println("read:", err)
			return
		}
		fmt.Printf("read across the fault: %q (content and offset both recovered)\n", got)

		// The storage component's redundant slices made that possible;
		// inspect them via reflection.
		class, _ := sys.Class(comp)
		fileID := ramfs.PathID("/journal.log")
		content, err := sys.Store().ReadAll(class, fileID)
		if err != nil {
			fmt.Println("storage reflect:", err)
			return
		}
		fmt.Printf("storage component holds %d bytes for the file (G1 redundancy)\n", len(content))

		if err := fs.Close(t, fd); err != nil {
			fmt.Println("close:", err)
		}
	}); err != nil {
		return err
	}
	return k.Run()
}

// IDL pipeline: define a brand-new service in SuperGlue IDL, compile it,
// inspect the derived model, and run it — declarative recovery for an
// interface the rest of this repository has never seen.
//
//	go run ./examples/idlpipeline
package main

import (
	"fmt"
	"os"
	"strings"

	"superglue/internal/codegen"
	"superglue/internal/core"
	"superglue/internal/idl"
	"superglue/internal/kernel"
)

// counterIDL specifies a tiny counter service: counters are created with a
// tracked start value (the desc_data parameter shares the "value" name, so
// it seeds the tracked field), bumped by ctr_incr (whose return value
// accumulates into the tracked total, like the filesystem offset), and
// restored after a crash by replaying ctr_alloc + ctr_set. That is
// everything SuperGlue needs to recover it.
const counterIDL = `
service_global_info = { desc_has_parent = solo, desc_has_data = true };

sm_creation(ctr_alloc);
sm_terminal(ctr_free);
sm_update(ctr_incr);
sm_restore(ctr_set);
sm_update(ctr_set);
sm_transition(ctr_alloc, ctr_incr);
sm_transition(ctr_alloc, ctr_set);
sm_transition(ctr_alloc, ctr_free);

desc_data_retval(long, ctrid)
ctr_alloc(desc_data(componentid_t compid), desc_data(long value));

desc_data_retval_acc(long, value)
ctr_incr(componentid_t compid, desc(long ctrid), long by);

long ctr_set(desc(long ctrid), desc_data(long value));
int  ctr_free(desc(long ctrid));
`

// counterServer is the ~40-line implementation; note there is not one line
// of recovery logic in it.
type counterServer struct {
	next kernel.Word
	vals map[kernel.Word]kernel.Word
}

func (c *counterServer) Name() string { return "counter" }

func (c *counterServer) Init(bc *kernel.BootContext) error {
	c.vals = make(map[kernel.Word]kernel.Word)
	c.next = kernel.Word(bc.Epoch) << 20
	return nil
}

func (c *counterServer) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	switch fn {
	case "ctr_alloc":
		c.next++
		c.vals[c.next] = args[1] // start value
		return c.next, nil
	case "ctr_incr":
		if _, ok := c.vals[args[1]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		c.vals[args[1]] += args[2]
		return args[2], nil
	case "ctr_set":
		if _, ok := c.vals[args[0]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		c.vals[args[0]] = args[1]
		return args[1], nil
	case "ctr_free":
		if _, ok := c.vals[args[0]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		delete(c.vals, args[0])
		return 0, nil
	default:
		return 0, kernel.DispatchError("counter", fn)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idlpipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Compile the IDL.
	spec, err := idl.Parse("counter", counterIDL)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %d interface functions; derived mechanisms: %v\n",
		len(spec.Funcs), spec.Mechanisms())
	sm, err := core.NewStateMachine(spec)
	if err != nil {
		return err
	}
	walk, err := sm.RecoveryWalk("ctr_alloc", core.StateInitial)
	if err != nil {
		return err
	}
	fmt.Printf("precomputed recovery walk: %v (recreate, then restore the tracked value)\n\n", walk)

	// 2. Generate the stub code (what `sgc` writes to disk).
	ir, err := codegen.NewIR(spec)
	if err != nil {
		return err
	}
	files, err := codegen.Generate(ir)
	if err != nil {
		return err
	}
	client := files["client_stub.go"]
	fmt.Printf("generated %d LOC of stubs from %d LOC of IDL; client stub starts:\n",
		strings.Count(client, "\n")+strings.Count(files["server_stub.go"], "\n"),
		strings.Count(counterIDL, "\n"))
	for i, line := range strings.SplitN(client, "\n", 12) {
		if i >= 10 {
			break
		}
		fmt.Println("  |", line)
	}
	fmt.Println()

	// 3. Run the service through the spec-interpreting runtime and crash it.
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		return err
	}
	comp, err := sys.RegisterServer(spec, func() kernel.Service { return &counterServer{} })
	if err != nil {
		return err
	}
	app, err := sys.NewClient("app")
	if err != nil {
		return err
	}
	stub, err := app.Stub(comp)
	if err != nil {
		return err
	}
	if _, err := sys.Kernel().CreateThread(nil, "main", 10, func(t *kernel.Thread) {
		id, err := stub.Call(t, "ctr_alloc", kernel.Word(app.ID()), 100)
		if err != nil {
			fmt.Println("alloc:", err)
			return
		}
		for i := 0; i < 5; i++ {
			if _, err := stub.Call(t, "ctr_incr", kernel.Word(app.ID()), id, 7); err != nil {
				fmt.Println("incr:", err)
				return
			}
		}
		fmt.Println("counter at 100 + 5×7 = 135; crashing the component...")
		if err := sys.Kernel().FailComponent(comp); err != nil {
			fmt.Println("inject:", err)
			return
		}
		// The next increment recovers the counter: the walk replays
		// ctr_alloc (start=100) and ctr_set with the tracked value (135).
		if _, err := stub.Call(t, "ctr_incr", kernel.Word(app.ID()), id, 7); err != nil {
			fmt.Println("incr after fault:", err)
			return
		}
		d, _ := stub.Descriptor(core.DescKey{ID: id})
		fmt.Printf("recovered across the crash: tracked value = %d (want 142)\n", d.Data["value"])
		if d.Data["value"] != 142 {
			fmt.Println("MISMATCH")
			os.Exit(1)
		}
	}); err != nil {
		return err
	}
	return sys.Kernel().Run()
}

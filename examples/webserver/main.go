// Web server under periodic component crashes (the Fig. 7 scenario): the
// componentized server keeps serving across a fault injected into a
// rotating system service every 2000 completed requests. Throughput dips
// during recovery but never drops to zero, and every request completes.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"os"

	"superglue/internal/webserver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webserver:", err)
		os.Exit(1)
	}
}

func run() error {
	const requests = 20000
	fmt.Printf("serving %d requests through the componentized server, one component crash per 2000 completions\n\n", requests)
	st, err := webserver.Run(webserver.Config{
		Variant:    webserver.VariantSuperGlue,
		Requests:   requests,
		Workers:    2,
		FaultEvery: 2000,
		BucketSize: 1000,
	})
	if err != nil {
		return err
	}
	fmt.Printf("completed: %d  errors: %d  faults injected: %d\n", st.Completed, st.Errors, st.Faults)
	fmt.Printf("throughput: %.0f requests/second\n\n", st.Throughput)
	fmt.Println("completion timeline (watch for recovery dips):")
	prev := webserver.BucketPoint{}
	for _, pt := range st.Timeline {
		dT := pt.Elapsed - prev.Elapsed
		rate := 0.0
		if dT > 0 {
			rate = float64(pt.Completed-prev.Completed) / dT.Seconds()
		}
		fmt.Printf("  %6d requests @ %10v  (%8.0f req/s)\n", pt.Completed, pt.Elapsed.Round(1000), rate)
		prev = pt
	}
	return nil
}

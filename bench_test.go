// Package superglue's repository-level benchmarks regenerate every table
// and figure of the paper's evaluation as testing.B benchmarks:
//
//	Fig. 6(a) — BenchmarkTracking<Service>/{base,c3,superglue}
//	Fig. 6(b) — BenchmarkRecovery<Service>/{c3,superglue}
//	Fig. 6(c) — BenchmarkIDLCompile (plus `go run ./cmd/microbench -fig 6c`)
//	Table II  — BenchmarkSWIFICampaign (injections/sec; the table itself is
//	            `go run ./cmd/swifi`)
//	Fig. 7    — BenchmarkWebServer/{baseline,composite,c3,superglue,
//	            superglue-faults}, reporting req/s
//
// Run with: go test -bench=. -benchmem
package superglue

import (
	"testing"

	"superglue/internal/codegen"
	"superglue/internal/experiments"
	"superglue/internal/idl"
	"superglue/internal/services/event"
	"superglue/internal/swifi"
	"superglue/internal/webserver"
)

// benchKinds are the stub bindings compared in Fig. 6(a).
var benchKinds = []struct {
	name string
	kind experiments.StubKind
}{
	{"base", experiments.KindBase},
	{"c3", experiments.KindC3},
	{"superglue", experiments.KindSuperGlue},
}

// benchTracking is the Fig. 6(a) micro-benchmark for one service.
func benchTracking(b *testing.B, service string) {
	for _, k := range benchKinds {
		b.Run(k.name, func(b *testing.B) {
			if err := experiments.RunMicrobench(service, k.kind, b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTrackingSched(b *testing.B) { benchTracking(b, "sched") }
func BenchmarkTrackingMM(b *testing.B)    { benchTracking(b, "mm") }
func BenchmarkTrackingFS(b *testing.B)    { benchTracking(b, "ramfs") }
func BenchmarkTrackingLock(b *testing.B)  { benchTracking(b, "lock") }
func BenchmarkTrackingEvent(b *testing.B) { benchTracking(b, "event") }
func BenchmarkTrackingTimer(b *testing.B) { benchTracking(b, "timer") }

// benchRecovery is the Fig. 6(b) per-descriptor recovery benchmark: each
// iteration is one fault, µ-reboot, recovery walk, and redone operation.
func benchRecovery(b *testing.B, service string) {
	for _, k := range benchKinds[1:] { // recovery needs stubs
		b.Run(k.name, func(b *testing.B) {
			if err := experiments.RunRecoveryBench(service, k.kind, b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkRecoverySched(b *testing.B) { benchRecovery(b, "sched") }
func BenchmarkRecoveryMM(b *testing.B)    { benchRecovery(b, "mm") }
func BenchmarkRecoveryFS(b *testing.B)    { benchRecovery(b, "ramfs") }
func BenchmarkRecoveryLock(b *testing.B)  { benchRecovery(b, "lock") }
func BenchmarkRecoveryEvent(b *testing.B) { benchRecovery(b, "event") }
func BenchmarkRecoveryTimer(b *testing.B) { benchRecovery(b, "timer") }

// BenchmarkIDLCompile measures the full compiler pipeline (parse → IR →
// generate client + server stubs) for the Fig. 3 event specification.
func BenchmarkIDLCompile(b *testing.B) {
	src := event.IDLSource()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, err := idl.Parse("event", src)
		if err != nil {
			b.Fatal(err)
		}
		ir, err := codegen.NewIR(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codegen.Generate(ir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSWIFICampaign runs Table II's fault-injection trials (lock
// service) at b.N injections.
func BenchmarkSWIFICampaign(b *testing.B) {
	res, err := swifi.Run(swifi.Config{
		Service:  "lock",
		Workload: swifi.Workloads()["lock"],
		Iters:    3,
		Trials:   b.N,
		Seed:     2026,
		Profile:  swifi.Profiles()["lock"],
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*res.SuccessRate(), "%success")
	b.ReportMetric(100*res.ActivationRatio(), "%activation")
}

// benchWebServer is one Fig. 7 bar: b.N requests through the variant.
func benchWebServer(b *testing.B, variant webserver.Variant, faultEvery int) {
	n := b.N
	if n < 64 {
		n = 64
	}
	st, err := webserver.Run(webserver.Config{
		Variant:    variant,
		Requests:   n,
		Workers:    2,
		FaultEvery: faultEvery,
	})
	if err != nil {
		b.Fatal(err)
	}
	if st.Errors > 0 {
		b.Fatalf("%d request errors", st.Errors)
	}
	b.ReportMetric(st.Throughput, "req/s")
}

func BenchmarkWebServer(b *testing.B) {
	b.Run("baseline", func(b *testing.B) { benchWebServer(b, webserver.VariantBaseline, 0) })
	b.Run("composite", func(b *testing.B) { benchWebServer(b, webserver.VariantComposite, 0) })
	b.Run("c3", func(b *testing.B) { benchWebServer(b, webserver.VariantC3, 0) })
	b.Run("superglue", func(b *testing.B) { benchWebServer(b, webserver.VariantSuperGlue, 0) })
	b.Run("superglue-faults", func(b *testing.B) {
		n := b.N
		if n < 64 {
			n = 64
		}
		benchWebServer(b, webserver.VariantSuperGlue, n/4+1)
	})
}

// BenchmarkKernelInvoke measures the bare component-invocation primitive,
// the substrate cost every stub comparison sits on. The scenario lives in
// experiments.KernelInvokeBench so `cmd/benchjson` measures the same thing.
func BenchmarkKernelInvoke(b *testing.B) {
	b.ReportAllocs()
	if err := experiments.KernelInvokeBench(b.N, b.ResetTimer); err != nil {
		b.Fatal(err)
	}
}

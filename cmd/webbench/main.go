// Command webbench regenerates Fig. 7: web-server throughput under the
// plain ("Apache-like") baseline, the raw component substrate, C³,
// SuperGlue, and SuperGlue with a component crash injected periodically.
// The with-faults run also prints a completion timeline showing the
// recovery dips.
//
// Usage:
//
//	webbench [-requests 50000] [-repeats 5] [-workers 2] [-cores 2] [-parallel 1] [-fault-every 5000]
//	webbench -listen 127.0.0.1:8080 [-fault-every 2000]   # live HTTP server
//
// -parallel runs each variant's repeats concurrently on the shared pool
// (internal/pool, the same fan-out the SWIFI campaign engine uses).
// Repeats are wall-clock throughput measurements, so keep the default 1
// for reported numbers and raise it only for smoke runs.
//
// With -listen, webbench serves real HTTP through the simulated component
// OS (SuperGlue variant) until interrupted — point a browser or `ab` at it;
// with -fault-every, components keep crashing and recovering under load.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"superglue/internal/experiments"
	"superglue/internal/webserver"
)

func main() {
	requests := flag.Int("requests", 50000, "requests per run (ab sends 50000)")
	repeats := flag.Int("repeats", 5, "runs per variant (mean ± stdev reported)")
	workers := flag.Int("workers", 2, "server worker threads")
	cores := flag.Int("cores", 1, "simulated cores (servers spread over cores 1..N-1; execution stays serialized)")
	replicas := flag.Int("replicas", 1, "storage replicas (>1 runs the replicated quorum store)")
	parallel := flag.Int("parallel", 1, "concurrent repeats per variant (smoke runs only; contends with the measurement)")
	faultEvery := flag.Int("fault-every", 0, "inject one component crash per N completions (default requests/10; 0 disables in -listen mode)")
	timeline := flag.Bool("timeline", true, "print the with-faults completion timeline")
	listen := flag.String("listen", "", "serve real HTTP on this address instead of benchmarking")
	flag.Parse()

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webbench:", err)
			os.Exit(1)
		}
		fmt.Printf("serving through the simulated component OS on http://%s", ln.Addr())
		if *faultEvery > 0 {
			fmt.Printf(" (one component crash per %d requests)", *faultEvery)
		}
		fmt.Println()
		if err := webserver.Serve(ln, webserver.Config{
			Variant:    webserver.VariantSuperGlue,
			Workers:    *workers,
			Cores:      *cores,
			Replicas:   *replicas,
			FaultEvery: *faultEvery,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "webbench:", err)
			os.Exit(1)
		}
		return
	}

	rows, err := experiments.Fig7(experiments.Fig7Config{
		Requests:   *requests,
		Repeats:    *repeats,
		Workers:    *workers,
		Cores:      *cores,
		Replicas:   *replicas,
		FaultEvery: *faultEvery,
		Parallel:   *parallel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "webbench:", err)
		os.Exit(1)
	}
	experiments.RenderFig7(os.Stdout, rows)
	if *timeline {
		experiments.RenderFig7Timeline(os.Stdout, rows)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempSG drops a small valid specification into a temp dir.
func writeTempSG(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "counter.sg")
	src := `
service_global_info = { desc_has_parent = solo };
sm_creation(ctr_alloc);
sm_terminal(ctr_free);
sm_transition(ctr_alloc, ctr_incr);
sm_transition(ctr_incr,  ctr_incr);
sm_transition(ctr_alloc, ctr_free);
sm_transition(ctr_incr,  ctr_free);

desc_data_retval(long, ctrid)
ctr_alloc(desc_data(componentid_t compid));
long ctr_incr(componentid_t compid, desc(long ctrid));
int  ctr_free(desc(long ctrid));
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompilesFileToDirectory(t *testing.T) {
	sg := writeTempSG(t)
	outDir := t.TempDir()
	if err := run([]string{"-o", outDir, sg}, os.Stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{"client_stub.go", "server_stub.go"} {
		path := filepath.Join(outDir, "gencounter", f)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing output %s: %v", path, err)
		}
		if !strings.Contains(string(raw), "DO NOT EDIT") {
			t.Errorf("%s missing generated marker", path)
		}
		if !strings.Contains(string(raw), "package gencounter") {
			t.Errorf("%s has wrong package", path)
		}
	}
}

func TestRunBuiltinNeedsNoFiles(t *testing.T) {
	if err := run([]string{"-builtin", "-loc"}, os.Stdout); err != nil {
		t.Fatalf("run -builtin: %v", err)
	}
}

func TestRunRejectsNoInput(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Fatal("run with no input succeeded")
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.sg")
	if err := os.WriteFile(path, []byte("int f(desc(long id));"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, os.Stdout); err == nil {
		t.Fatal("run accepted a model-invalid spec")
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent/x.sg"}, os.Stdout); err == nil {
		t.Fatal("run accepted a missing file")
	}
}

// capture runs fn with a pipe-backed *os.File and returns what it wrote.
func capture(t *testing.T, fn func(w *os.File) error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	done := make(chan struct{})
	go func() {
		defer close(done)
		b := make([]byte, 1<<16)
		for {
			n, err := r.Read(b)
			buf.WriteString(string(b[:n]))
			if err != nil {
				return
			}
		}
	}()
	ferr := fn(w)
	_ = w.Close()
	<-done
	return buf.String(), ferr
}

func TestVetBuiltinClean(t *testing.T) {
	out, err := capture(t, func(w *os.File) error {
		return runVet([]string{"-builtin"}, w)
	})
	if err != nil {
		t.Fatalf("vet -builtin: %v\n%s", err, out)
	}
	if !strings.Contains(out, "[SG109]") {
		t.Errorf("vet -builtin should print the mechanism-coverage reports:\n%s", out)
	}
}

func TestVetFlagsLeakySpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "leaky.sg")
	// Valid model, but creation without a terminal function: descriptors
	// can never be closed (SG103, warning severity) — vet must fail.
	src := `
service_global_info = { desc_has_parent = solo };
sm_creation(ctr_alloc);
sm_reset(ctr_free);
sm_transition(ctr_alloc, ctr_incr);
sm_transition(ctr_incr,  ctr_incr);
sm_transition(ctr_alloc, ctr_free);
sm_transition(ctr_incr,  ctr_free);

desc_data_retval(long, ctrid)
ctr_alloc(desc_data(componentid_t compid));
long ctr_incr(componentid_t compid, desc(long ctrid));
int  ctr_free(desc(long ctrid));
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func(w *os.File) error {
		return runVet([]string{path}, w)
	})
	if err == nil {
		t.Fatalf("vet accepted a leaky spec:\n%s", out)
	}
	if !strings.Contains(out, "SG103") {
		t.Errorf("vet output should carry SG103:\n%s", out)
	}
}

func TestVetGenDrift(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-builtin", "-o", dir}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func(w *os.File) error {
		return runVet([]string{"-gen", "-gendir", dir}, w)
	}); err != nil {
		t.Fatalf("vet -gen on a fresh tree: %v", err)
	}
	victim := filepath.Join(dir, "gensched", "server_stub.go")
	if err := os.WriteFile(victim, []byte("package gensched\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func(w *os.File) error {
		return runVet([]string{"-gen", "-gendir", dir}, w)
	})
	if err == nil {
		t.Fatal("vet -gen missed a tampered stub")
	}
	if !strings.Contains(out, "gensched") || !strings.Contains(out, "stale") {
		t.Errorf("drift output should name the stale file:\n%s", out)
	}
}

func TestVetRejectsNoInput(t *testing.T) {
	if err := runVet(nil, os.Stdout); err == nil {
		t.Fatal("vet with no input succeeded")
	}
}

func TestRunFormatNormalizes(t *testing.T) {
	sg := writeTempSG(t)
	var buf strings.Builder
	// run writes to an *os.File; use a pipe to capture.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		b := make([]byte, 1<<16)
		for {
			n, err := r.Read(b)
			buf.WriteString(string(b[:n]))
			if err != nil {
				return
			}
		}
	}()
	if err := run([]string{"-format", sg}, w); err != nil {
		t.Fatalf("run -format: %v", err)
	}
	_ = w.Close()
	<-done
	out := buf.String()
	for _, want := range []string{"sm_creation(ctr_alloc);", "desc(long ctrid)", "desc_data_retval(long, ctrid)"} {
		if !strings.Contains(out, want) {
			t.Errorf("normalized output missing %q:\n%s", want, out)
		}
	}
}

// Command sgc is the SuperGlue IDL compiler: it parses .sg interface
// specifications and emits client- and server-side recovery stubs
// (Go source), mirroring the compiler pipeline of §IV-B.
//
// Usage:
//
//	sgc [-o dir] [-print] [-loc] file.sg [file2.sg ...]
//	sgc -builtin [-o dir] [-loc]
//	sgc vet [-builtin] [-gen] [-gendir dir] [file.sg ...]
//	sgc doc [-builtin] [-o dir] [-print] [-check] [file.sg ...]
//
// The service name is derived from each file's base name (event.sg →
// service "event", package "genevent"). -builtin compiles the six embedded
// system-service specifications of the evaluation. -loc prints the
// IDL-vs-generated line counts that feed Fig. 6(c).
//
// The vet subcommand runs the semantic spec lints of
// internal/analysis/speclint over the given specifications (SG1xx
// diagnostics: unreachable states, descriptor leaks, hold/wakeup pairing,
// shadowed transitions, mechanism coverage) and, with -gen, checks the
// committed generated stubs for drift against the generator. It exits
// nonzero if any warning- or error-severity diagnostic fires, or if any
// committed stub is stale.
//
// The doc subcommand renders each specification as a markdown reference
// document (descriptor-resource model, recovery-mechanism coverage,
// interface functions, the descriptor state machine as a Mermaid diagram,
// recovery walks). -check verifies the committed docs/services files
// against the specifications and exits nonzero on drift.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"superglue/internal/analysis/driftcheck"
	"superglue/internal/analysis/speclint"
	"superglue/internal/codegen"
	"superglue/internal/docgen"
	"superglue/internal/experiments"
	"superglue/internal/idl"
	"superglue/internal/services/builtin"
)

func main() {
	args := os.Args[1:]
	var err error
	if len(args) > 0 && args[0] == "vet" {
		err = runVet(args[1:], os.Stdout)
	} else if len(args) > 0 && args[0] == "doc" {
		err = runDoc(args[1:], os.Stdout)
	} else {
		err = run(args, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgc:", err)
		os.Exit(1)
	}
}

type source struct {
	service string
	src     string
}

// gatherSources assembles the specification list from -builtin and/or file
// arguments, in deterministic order.
func gatherSources(useBuiltin bool, paths []string) ([]source, error) {
	var sources []source
	if useBuiltin {
		for _, b := range builtin.Sources() {
			sources = append(sources, source{service: b.Service, src: b.IDL})
		}
	}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sources = append(sources, source{service: name, src: string(raw)})
	}
	return sources, nil
}

// sortedNames returns the file names of a generated-file map in stable
// order, so printed and written output does not vary with map iteration.
func sortedNames(files map[string]string) []string {
	names := make([]string, 0, len(files))
	for fname := range files {
		names = append(names, fname)
	}
	sort.Strings(names)
	return names
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sgc", flag.ContinueOnError)
	outDir := fs.String("o", "", "output directory root (one package per service); empty = no files written")
	printSrc := fs.Bool("print", false, "print generated code to stdout")
	loc := fs.Bool("loc", false, "print IDL vs generated line counts (Fig. 6(c))")
	useBuiltin := fs.Bool("builtin", false, "compile the six built-in system-service specifications")
	format := fs.Bool("format", false, "print each specification normalized back to IDL instead of compiling")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sources, err := gatherSources(*useBuiltin, fs.Args())
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("no input: pass .sg files or -builtin")
	}

	for _, s := range sources {
		spec, err := idl.Parse(s.service, s.src)
		if err != nil {
			return err
		}
		if *format {
			fmt.Fprintf(out, "// %s.sg (normalized)\n%s\n", s.service, idl.Format(spec))
			continue
		}
		ir, err := codegen.NewIR(spec)
		if err != nil {
			return err
		}
		files, err := codegen.Generate(ir)
		if err != nil {
			return err
		}
		genLines := 0
		for _, content := range files {
			genLines += strings.Count(content, "\n")
		}
		if *loc {
			fmt.Fprintf(out, "%-8s IDL %3d LOC → generated %4d LOC (client+server stubs)\n",
				s.service, experiments.CountLOC(s.src), genLines)
		}
		if *printSrc {
			for _, fname := range sortedNames(files) {
				fmt.Fprintf(out, "// ===== %s/%s =====\n%s\n", ir.Package(), fname, files[fname])
			}
		}
		if *outDir != "" {
			dir := filepath.Join(*outDir, ir.Package())
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			for _, fname := range sortedNames(files) {
				if err := os.WriteFile(filepath.Join(dir, fname), []byte(files[fname]), 0o644); err != nil {
					return err
				}
			}
			fmt.Fprintf(out, "%s: wrote %d files to %s\n", s.service, len(files), dir)
		}
	}
	return nil
}

// runDoc implements `sgc doc`: the markdown reference generator and its
// drift check over the committed docs/services files.
func runDoc(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sgc doc", flag.ContinueOnError)
	outDir := fs.String("o", "docs/services", "output directory for the generated markdown")
	useBuiltin := fs.Bool("builtin", false, "document the six built-in system-service specifications")
	printSrc := fs.Bool("print", false, "print generated markdown to stdout instead of writing files")
	check := fs.Bool("check", false, "verify the committed documents match the specifications; exit nonzero on drift")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check {
		drifts, err := docgen.Check(*outDir)
		if err != nil {
			return err
		}
		for _, d := range drifts {
			fmt.Fprintln(out, d)
		}
		if len(drifts) > 0 {
			return fmt.Errorf("doc drift detected (%d files)", len(drifts))
		}
		fmt.Fprintf(out, "doc: committed documents under %s match the specifications\n", *outDir)
		return nil
	}

	sources, err := gatherSources(*useBuiltin, fs.Args())
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("doc: no input: pass .sg files, -builtin, or -check")
	}
	if !*printSrc {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, s := range sources {
		spec, err := idl.Parse(s.service, s.src)
		if err != nil {
			return err
		}
		doc, err := docgen.Generate(spec)
		if err != nil {
			return err
		}
		if *printSrc {
			fmt.Fprint(out, doc)
			continue
		}
		path := filepath.Join(*outDir, s.service+".md")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: wrote %s\n", s.service, path)
	}
	return nil
}

// runVet implements `sgc vet`: speclint over specifications plus the
// generated-stub drift check.
func runVet(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sgc vet", flag.ContinueOnError)
	useBuiltin := fs.Bool("builtin", false, "lint the six built-in system-service specifications")
	gen := fs.Bool("gen", false, "check committed generated stubs for drift against the generator")
	genDir := fs.String("gendir", "internal/gen", "directory holding the committed generated packages")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*useBuiltin && !*gen && fs.NArg() == 0 {
		return fmt.Errorf("vet: no input: pass .sg files, -builtin, or -gen")
	}

	sources, err := gatherSources(*useBuiltin, fs.Args())
	if err != nil {
		return err
	}
	bad := false
	for _, s := range sources {
		diags, err := speclint.LintSource(s.service, s.src)
		if err != nil {
			return err
		}
		for _, d := range diags {
			fmt.Fprintln(out, d)
			if d.Severity >= speclint.SevWarn {
				bad = true
			}
		}
	}
	if *gen {
		drifts, err := driftcheck.Check(*genDir)
		if err != nil {
			return err
		}
		for _, d := range drifts {
			fmt.Fprintln(out, d)
			bad = true
		}
		if len(drifts) == 0 {
			fmt.Fprintf(out, "gen: committed stubs under %s match the generator\n", *genDir)
		}
	}
	if bad {
		return fmt.Errorf("vet found problems")
	}
	return nil
}

// Command sgc is the SuperGlue IDL compiler: it parses .sg interface
// specifications and emits client- and server-side recovery stubs
// (Go source), mirroring the compiler pipeline of §IV-B.
//
// Usage:
//
//	sgc [-o dir] [-print] [-loc] file.sg [file2.sg ...]
//	sgc -builtin [-o dir] [-loc]
//
// The service name is derived from each file's base name (event.sg →
// service "event", package "genevent"). -builtin compiles the six embedded
// system-service specifications of the evaluation. -loc prints the
// IDL-vs-generated line counts that feed Fig. 6(c).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"superglue/internal/codegen"
	"superglue/internal/experiments"
	"superglue/internal/idl"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sgc:", err)
		os.Exit(1)
	}
}

type source struct {
	service string
	src     string
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sgc", flag.ContinueOnError)
	outDir := fs.String("o", "", "output directory root (one package per service); empty = no files written")
	printSrc := fs.Bool("print", false, "print generated code to stdout")
	loc := fs.Bool("loc", false, "print IDL vs generated line counts (Fig. 6(c))")
	builtin := fs.Bool("builtin", false, "compile the six built-in system-service specifications")
	format := fs.Bool("format", false, "print each specification normalized back to IDL instead of compiling")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sources []source
	if *builtin {
		for name, src := range map[string]string{
			"lock":  lock.IDLSource(),
			"event": event.IDLSource(),
			"sched": sched.IDLSource(),
			"timer": timer.IDLSource(),
			"mm":    mm.IDLSource(),
			"ramfs": ramfs.IDLSource(),
		} {
			sources = append(sources, source{service: name, src: src})
		}
	}
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sources = append(sources, source{service: name, src: string(raw)})
	}
	if len(sources) == 0 {
		return fmt.Errorf("no input: pass .sg files or -builtin")
	}

	for _, s := range sources {
		spec, err := idl.Parse(s.service, s.src)
		if err != nil {
			return err
		}
		if *format {
			fmt.Fprintf(out, "// %s.sg (normalized)\n%s\n", s.service, idl.Format(spec))
			continue
		}
		ir, err := codegen.NewIR(spec)
		if err != nil {
			return err
		}
		files, err := codegen.Generate(ir)
		if err != nil {
			return err
		}
		genLines := 0
		for _, content := range files {
			genLines += strings.Count(content, "\n")
		}
		if *loc {
			fmt.Fprintf(out, "%-8s IDL %3d LOC → generated %4d LOC (client+server stubs)\n",
				s.service, experiments.CountLOC(s.src), genLines)
		}
		if *printSrc {
			for fname, content := range files {
				fmt.Fprintf(out, "// ===== %s/%s =====\n%s\n", ir.Package(), fname, content)
			}
		}
		if *outDir != "" {
			dir := filepath.Join(*outDir, ir.Package())
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			for fname, content := range files {
				if err := os.WriteFile(filepath.Join(dir, fname), []byte(content), 0o644); err != nil {
					return err
				}
			}
			fmt.Fprintf(out, "%s: wrote %d files to %s\n", s.service, len(files), dir)
		}
	}
	return nil
}

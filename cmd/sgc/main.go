// Command sgc is the SuperGlue IDL compiler: it parses .sg interface
// specifications and emits client- and server-side recovery stubs
// (Go source), mirroring the compiler pipeline of §IV-B.
//
// Usage:
//
//	sgc [-o dir] [-print] [-loc] file.sg [file2.sg ...]
//	sgc -builtin [-o dir] [-loc]
//	sgc vet [-builtin] [-gen] [-gendir dir] [-format text|sarif] [file.sg ...]
//	sgc check [-builtin] [-k n] [-m n] [-policy strat] [-fail-hard]
//	          [-run SG2xx,...] [-repro] [-trajectory] [-budget dur]
//	          [-max-states n] [-format text|sarif] [-o file] [file.sg ...]
//	sgc doc [-builtin] [-o dir] [-print] [-check] [file.sg ...]
//
// The service name is derived from each file's base name (event.sg →
// service "event", package "genevent"). -builtin compiles the six embedded
// system-service specifications of the evaluation. -loc prints the
// IDL-vs-generated line counts that feed Fig. 6(c).
//
// The vet subcommand runs the semantic spec lints of
// internal/analysis/speclint over the given specifications (SG1xx
// diagnostics: unreachable states, descriptor leaks, hold/wakeup pairing,
// shadowed transitions, mechanism coverage) and, with -gen, checks the
// committed generated stubs for drift against the generator. It exits
// nonzero if any warning- or error-severity diagnostic fires, or if any
// committed stub is stale.
//
// The check subcommand runs the bounded exhaustive recovery model checker
// of internal/analysis/model over the given specifications (SG2xx
// diagnostics: recovery-coverage liveness, recovery-walk termination,
// restart-intensity reachability, stranded holds), verifying every fault
// kind in every reachable configuration of a bounded k-descriptor /
// m-thread system. Violations carry full witness traces; -repro lowers
// each to a concrete SWIFI injection plan (seed, shape, kind pool, trial
// schedule) that replays the counterexample dynamically. -run restricts
// reporting to a comma-separated code subset (the multichecker-style
// entry); -budget and -max-states bound wall-clock and state counts,
// failing loudly when exceeded; -trajectory prints the BFS frontier
// sizes the CI budget guard watches.
//
// Both vet and check accept -format sarif, emitting one SARIF 2.1.0 run
// for CI code-scanning upload (-o selects the output file).
//
// The doc subcommand renders each specification as a markdown reference
// document (descriptor-resource model, recovery-mechanism coverage,
// interface functions, the descriptor state machine as a Mermaid diagram,
// recovery walks, and the model checker's verified-properties section).
// -check verifies the committed docs/services files against the
// specifications and exits nonzero on drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"superglue/internal/analysis/driftcheck"
	"superglue/internal/analysis/model"
	"superglue/internal/analysis/sarif"
	"superglue/internal/analysis/speclint"
	"superglue/internal/codegen"
	"superglue/internal/docgen"
	"superglue/internal/experiments"
	"superglue/internal/idl"
	"superglue/internal/services/builtin"
	"superglue/internal/swifi"
)

func main() {
	args := os.Args[1:]
	var err error
	if len(args) > 0 && args[0] == "vet" {
		err = runVet(args[1:], os.Stdout)
	} else if len(args) > 0 && args[0] == "check" {
		err = runCheck(args[1:], os.Stdout)
	} else if len(args) > 0 && args[0] == "doc" {
		err = runDoc(args[1:], os.Stdout)
	} else {
		err = run(args, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgc:", err)
		os.Exit(1)
	}
}

type source struct {
	service string
	src     string
	// path locates the spec for SARIF artifact references: the argument
	// path for file inputs, the repo-relative source for builtins.
	path string
}

// gatherSources assembles the specification list from -builtin and/or file
// arguments, in deterministic order.
func gatherSources(useBuiltin bool, paths []string) ([]source, error) {
	var sources []source
	if useBuiltin {
		for _, b := range builtin.Sources() {
			sources = append(sources, source{
				service: b.Service,
				src:     b.IDL,
				path:    filepath.Join("internal/services", b.Service, b.Service+".sg"),
			})
		}
	}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sources = append(sources, source{service: name, src: string(raw), path: path})
	}
	return sources, nil
}

// sarifLevel maps a speclint severity to a SARIF result level.
func sarifLevel(sev speclint.Severity) string {
	switch sev {
	case speclint.SevError:
		return "error"
	case speclint.SevWarn:
		return "warning"
	default:
		return "note"
	}
}

// writeOut writes text to path, or to out when path is empty.
func writeOut(out *os.File, path string, emit func(w io.Writer) error) error {
	if path == "" {
		return emit(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sortedNames returns the file names of a generated-file map in stable
// order, so printed and written output does not vary with map iteration.
func sortedNames(files map[string]string) []string {
	names := make([]string, 0, len(files))
	for fname := range files {
		names = append(names, fname)
	}
	sort.Strings(names)
	return names
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sgc", flag.ContinueOnError)
	outDir := fs.String("o", "", "output directory root (one package per service); empty = no files written")
	printSrc := fs.Bool("print", false, "print generated code to stdout")
	loc := fs.Bool("loc", false, "print IDL vs generated line counts (Fig. 6(c))")
	useBuiltin := fs.Bool("builtin", false, "compile the six built-in system-service specifications")
	format := fs.Bool("format", false, "print each specification normalized back to IDL instead of compiling")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sources, err := gatherSources(*useBuiltin, fs.Args())
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("no input: pass .sg files or -builtin")
	}

	for _, s := range sources {
		spec, err := idl.Parse(s.service, s.src)
		if err != nil {
			return err
		}
		if *format {
			fmt.Fprintf(out, "// %s.sg (normalized)\n%s\n", s.service, idl.Format(spec))
			continue
		}
		ir, err := codegen.NewIR(spec)
		if err != nil {
			return err
		}
		files, err := codegen.Generate(ir)
		if err != nil {
			return err
		}
		genLines := 0
		for _, fname := range sortedNames(files) {
			genLines += strings.Count(files[fname], "\n")
		}
		if *loc {
			fmt.Fprintf(out, "%-8s IDL %3d LOC → generated %4d LOC (client+server stubs)\n",
				s.service, experiments.CountLOC(s.src), genLines)
		}
		if *printSrc {
			for _, fname := range sortedNames(files) {
				fmt.Fprintf(out, "// ===== %s/%s =====\n%s\n", ir.Package(), fname, files[fname])
			}
		}
		if *outDir != "" {
			dir := filepath.Join(*outDir, ir.Package())
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			for _, fname := range sortedNames(files) {
				if err := os.WriteFile(filepath.Join(dir, fname), []byte(files[fname]), 0o644); err != nil {
					return err
				}
			}
			fmt.Fprintf(out, "%s: wrote %d files to %s\n", s.service, len(files), dir)
		}
	}
	return nil
}

// runDoc implements `sgc doc`: the markdown reference generator and its
// drift check over the committed docs/services files.
func runDoc(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sgc doc", flag.ContinueOnError)
	outDir := fs.String("o", "docs/services", "output directory for the generated markdown")
	useBuiltin := fs.Bool("builtin", false, "document the six built-in system-service specifications")
	printSrc := fs.Bool("print", false, "print generated markdown to stdout instead of writing files")
	check := fs.Bool("check", false, "verify the committed documents match the specifications; exit nonzero on drift")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check {
		drifts, err := docgen.Check(*outDir)
		if err != nil {
			return err
		}
		for _, d := range drifts {
			fmt.Fprintln(out, d)
		}
		if len(drifts) > 0 {
			return fmt.Errorf("doc drift detected (%d files)", len(drifts))
		}
		fmt.Fprintf(out, "doc: committed documents under %s match the specifications\n", *outDir)
		return nil
	}

	sources, err := gatherSources(*useBuiltin, fs.Args())
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("doc: no input: pass .sg files, -builtin, or -check")
	}
	if !*printSrc {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, s := range sources {
		spec, err := idl.Parse(s.service, s.src)
		if err != nil {
			return err
		}
		doc, err := docgen.Generate(spec)
		if err != nil {
			return err
		}
		if *printSrc {
			fmt.Fprint(out, doc)
			continue
		}
		path := filepath.Join(*outDir, s.service+".md")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: wrote %s\n", s.service, path)
	}
	return nil
}

// runVet implements `sgc vet`: speclint over specifications plus the
// generated-stub drift check.
func runVet(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sgc vet", flag.ContinueOnError)
	useBuiltin := fs.Bool("builtin", false, "lint the six built-in system-service specifications")
	gen := fs.Bool("gen", false, "check committed generated stubs for drift against the generator")
	genDir := fs.String("gendir", "internal/gen", "directory holding the committed generated packages")
	format := fs.String("format", "text", "output format: text or sarif")
	outPath := fs.String("o", "", "output file for -format sarif (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "sarif" {
		return fmt.Errorf("vet: unknown format %q (want text or sarif)", *format)
	}
	if !*useBuiltin && !*gen && fs.NArg() == 0 {
		return fmt.Errorf("vet: no input: pass .sg files, -builtin, or -gen")
	}

	sources, err := gatherSources(*useBuiltin, fs.Args())
	if err != nil {
		return err
	}
	var sb *sarif.Builder
	if *format == "sarif" {
		sb = sarif.NewBuilder("sgc-vet", "docs/LINT.md")
	}
	bad := false
	for _, s := range sources {
		diags, err := speclint.LintSource(s.service, s.src)
		if err != nil {
			return err
		}
		for _, d := range diags {
			if sb != nil {
				sb.Add(d.Code, sarifLevel(d.Severity), fmt.Sprintf("%s: %s", d.Service, d.Message), s.path, d.Line, nil)
			} else {
				fmt.Fprintln(out, d)
			}
			if d.Severity >= speclint.SevWarn {
				bad = true
			}
		}
	}
	if *gen {
		drifts, err := driftcheck.Check(*genDir)
		if err != nil {
			return err
		}
		for _, d := range drifts {
			if sb != nil {
				sb.Add("SGDRIFT", "error", d.String(), d.Path, 0, nil)
			} else {
				fmt.Fprintln(out, d)
			}
			bad = true
		}
		if len(drifts) == 0 && sb == nil {
			fmt.Fprintf(out, "gen: committed stubs under %s match the generator\n", *genDir)
		}
	}
	if sb != nil {
		if err := writeOut(out, *outPath, sb.Write); err != nil {
			return err
		}
	}
	if bad {
		return fmt.Errorf("vet found problems")
	}
	return nil
}

// modelRules is the SG2xx rule table for SARIF output, one line per code
// of the internal/analysis/model catalogue.
var modelRules = map[string]string{
	"SG201": "recovery-coverage liveness: a fault reaches neither a recovered nor a degraded terminal",
	"SG202": "recovery-walk termination: a hold-replay or wakeup-replay cycle",
	"SG203": "restart-intensity exhaustion reachable under the declared supervision",
	"SG204": "a mid-recovery fault strands a held descriptor",
}

// runCheck implements `sgc check`: the bounded exhaustive recovery model
// checker over specifications, with SWIFI-replayable counterexamples.
func runCheck(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sgc check", flag.ContinueOnError)
	useBuiltin := fs.Bool("builtin", false, "check the six built-in system-service specifications")
	descs := fs.Int("k", 0, "descriptor bound (default 2, max 3)")
	threads := fs.Int("m", 0, "thread bound (default 2, max 3)")
	policy := fs.String("policy", "", "supervision strategy (one-for-one, rest-for-one, all-for-one); empty = flat escalation ladder")
	failHard := fs.Bool("fail-hard", false, "check under a fail-hard recovery policy (exhaustion fails the call instead of degrading)")
	secondaries := fs.Int("secondaries", 0, "during-recovery secondary faults per episode (default 2)")
	maxStates := fs.Int("max-states", 0, "state budget, operational + episode (default 1<<20); exceeding it fails")
	budget := fs.Duration("budget", 0, "wall-clock budget per run (0 = none); exceeding it fails")
	runCodes := fs.String("run", "", "comma-separated diagnostic codes to report (default: all)")
	repro := fs.Bool("repro", false, "emit each violation's lowered SWIFI injection plan (seed, shape, trial schedule) as JSON")
	trajectory := fs.Bool("trajectory", false, "print the operational BFS state-count trajectory per spec")
	format := fs.String("format", "text", "output format: text or sarif")
	outPath := fs.String("o", "", "output file for -format sarif (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "sarif" {
		return fmt.Errorf("check: unknown format %q (want text or sarif)", *format)
	}
	sources, err := gatherSources(*useBuiltin, fs.Args())
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("check: no input: pass .sg files or -builtin")
	}
	only := map[string]bool{}
	for _, c := range strings.Split(*runCodes, ",") {
		if c = strings.TrimSpace(c); c != "" {
			only[c] = true
		}
	}

	cfg := model.Config{
		Descs:       *descs,
		Threads:     *threads,
		FailHard:    *failHard,
		Supervision: *policy,
		Secondaries: *secondaries,
		MaxStates:   *maxStates,
		Deadline:    *budget,
	}
	var sb *sarif.Builder
	if *format == "sarif" {
		sb = sarif.NewBuilder("sgc-check", "docs/MODELCHECK.md")
		for id, desc := range modelRules {
			sb.Rule(id, desc)
		}
	}
	bad := false
	for _, s := range sources {
		spec, err := idl.Parse(s.service, s.src)
		if err != nil {
			return err
		}
		rep, err := model.Check(spec, cfg)
		if err != nil {
			return err
		}
		diags := rep.Diagnostics
		if len(only) > 0 {
			filtered := diags[:0:0]
			for _, d := range diags {
				if only[d.Code] {
					filtered = append(filtered, d)
				}
			}
			diags = filtered
		}
		if sb == nil {
			fmt.Fprintf(out, "%s: %d configurations (k=%d m=%d), %d episodes in %v\n",
				s.service, rep.States, rep.Descs, rep.Threads, rep.Episodes, rep.Elapsed.Round(time.Microsecond))
			if *trajectory {
				fmt.Fprintf(out, "%s: state-count trajectory %v (episode states %d)\n",
					s.service, rep.Trajectory, rep.EpisodeStates)
			}
			for _, p := range rep.Verified {
				fmt.Fprintf(out, "%s: verified %s\n", s.service, p)
			}
		}
		for _, d := range diags {
			if d.Severity == speclint.SevError {
				bad = true
			}
			if sb != nil {
				props := map[string]any{"witness": d.Witness}
				if d.Repro != nil {
					props["repro"] = d.Repro
				}
				sb.Add(d.Code, sarifLevel(d.Severity), fmt.Sprintf("%s: %s", d.Service, d.Message), s.path, 0, props)
				continue
			}
			fmt.Fprintln(out, d)
			for _, w := range d.Witness {
				fmt.Fprintf(out, "    %s\n", w)
			}
			if *repro && d.Repro != nil {
				if err := emitRepro(out, d.Repro); err != nil {
					return err
				}
			}
		}
	}
	if sb != nil {
		if err := writeOut(out, *outPath, sb.Write); err != nil {
			return err
		}
	}
	if bad {
		return fmt.Errorf("check found violations")
	}
	return nil
}

// emitRepro prints a violation's lowered SWIFI plan: the campaign recipe
// as JSON plus, when the service has a builtin workload, the concrete
// trial schedule the pinned seed draws.
func emitRepro(out *os.File, r *model.Repro) error {
	blob, err := json.MarshalIndent(r, "    ", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "    repro: %s\n", blob)
	cfg, err := r.CampaignConfig()
	if err != nil {
		fmt.Fprintf(out, "    trial schedule: not runnable (%v)\n", err)
		return nil
	}
	opp, err := swifi.Opportunities(cfg)
	if err != nil {
		return fmt.Errorf("repro dry run: %w", err)
	}
	for i, p := range swifi.PlanAt(cfg, opp, 0) {
		when := fmt.Sprintf("at target entry %d/%d", p.Moment, opp)
		if p.Deferred {
			when = "deferred until the first target entry of the next recovery epoch"
		}
		fmt.Fprintf(out, "    trial 0 fault %d: %s %s\n", i+1, p.Kind, when)
	}
	return nil
}

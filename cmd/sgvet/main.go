// Command sgvet runs the SuperGlue static analyzers (determinism,
// atomicstate, stubdiscipline, shadowbuiltin, missingdoc) over package
// directories:
//
//	sgvet [-run a,b,c] dir [dir...]
//
// It prints one line per finding and exits nonzero if anything was
// reported. See internal/analysis/govet for the analyzer catalogue and the
// //sgvet:ignore suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"superglue/internal/analysis/govet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sgvet", flag.ExitOnError)
	runList := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sgvet [-run a,b,c] dir [dir...]")
		return 2
	}
	analyzers, err := govet.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgvet:", err)
		return 2
	}
	loader := govet.NewLoader()
	bad := false
	for _, dir := range fs.Args() {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgvet:", err)
			return 2
		}
		diags, err := govet.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgvet:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			bad = true
		}
	}
	if bad {
		return 1
	}
	return 0
}

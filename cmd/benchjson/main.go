// Command benchjson runs the benchmark trajectory — the bare invocation
// primitive, the six Fig. 6(a) tracking micro-benchmarks across the three
// stub bindings, and the Fig. 7 web-server variants — and writes the
// measurements to a JSON file (default BENCH_superglue.json), so every
// commit can leave a machine-readable perf trail:
//
//	go run ./cmd/benchjson [-o BENCH_superglue.json] [-short] [-workers N]
//
// or `make bench-json`. -workers parallelizes the traced SWIFI campaigns
// that produce the recovery breakdown (the wall-clock benchmarks stay
// serial so their timings are uncontended); campaign results are
// byte-identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"superglue/internal/experiments"
)

func main() {
	out := flag.String("o", "BENCH_superglue.json", "output file")
	short := flag.Bool("short", false, "trim workloads for a CI smoke run")
	workers := flag.Int("workers", 0, "SWIFI campaign parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	rep, err := experiments.WriteBenchJSON(*out, *short, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("host: %d cpus, GOMAXPROCS %d, campaign workers %d\n",
		rep.NumCPU, rep.GOMAXPROCS, rep.Workers)
	for _, r := range rep.Results {
		switch {
		case r.NsPerOp > 0:
			fmt.Printf("%-28s %12.1f ns/op %6d B/op %4d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		case r.Extra["req/s"] > 0:
			fmt.Printf("%-28s %12.0f req/s\n", r.Name, r.Extra["req/s"])
		}
	}
	fmt.Println("wrote", *out)
}

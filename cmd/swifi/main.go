// Command swifi runs the SWIFI fault-injection campaign of Table II:
// register bit-flips injected into each system-level service while its
// §V-B workload runs, with outcomes classified as recovered, segfault,
// propagated, other (latent), degraded, or undetected.
//
// Usage:
//
//	swifi [-trials 500] [-seed 2026] [-workers N] [-service sched|mm|ramfs|lock|event|timer] [-watchdog] [-prime] [-trace] [-trace-out trace.json] [-v]
//
// -watchdog enables the kernel watchdog for every trial, converting
// component-attributable hangs into recoverable component faults. -prime
// runs the paired Table II′ experiment instead: each service's campaign
// twice from the same seed, watchdog off vs on, reporting how many hang
// injections were reclassified from "not recovered (other)" to
// recovered/degraded. -trace records structured fault/recovery traces
// (internal/obs) across every trial and prints a per-mechanism recovery
// breakdown after each campaign; -trace-out additionally writes each
// campaign's full trace snapshot to <service>.<trace-out> as JSON.
// -workers shards each campaign's trials over a worker pool and runs the
// per-service campaigns concurrently; for a fixed seed the output is
// byte-identical for any worker count (default: GOMAXPROCS).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"superglue/internal/core"
	"superglue/internal/experiments"
	"superglue/internal/pool"
	"superglue/internal/swifi"
)

func main() {
	trials := flag.Int("trials", 500, "injections per service")
	seed := flag.Int64("seed", 2026, "campaign seed (reproducible)")
	service := flag.String("service", "", "run a single service's campaign (default: all)")
	mode := flag.String("mode", "on-demand", "recovery mode: on-demand or eager")
	workers := flag.Int("workers", 0, "trial/campaign parallelism (0 = GOMAXPROCS); output is identical for any value")
	watchdog := flag.Bool("watchdog", false, "enable the kernel watchdog in every trial")
	prime := flag.Bool("prime", false, "run the paired Table II' watchdog-off/on comparison")
	trace := flag.Bool("trace", false, "record structured traces and print the per-mechanism recovery breakdown")
	traceOut := flag.String("trace-out", "", "write each campaign's trace snapshot to <service>.<file> (implies -trace)")
	verbose := flag.Bool("v", false, "print each non-recovered trial")
	flag.Parse()

	var err error
	if *prime {
		err = runPrime(*trials, *seed, *workers, *service)
	} else {
		err = run(*trials, *seed, *workers, *service, *mode, *watchdog, *trace || *traceOut != "", *traceOut, *verbose)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swifi:", err)
		os.Exit(1)
	}
}

func run(trials int, seed int64, workers int, service, mode string, watchdog, trace bool, traceOut string, verbose bool) error {
	recMode := core.OnDemand
	switch mode {
	case "on-demand", "":
	case "eager":
		recMode = core.Eager
	default:
		return fmt.Errorf("unknown recovery mode %q", mode)
	}
	targets := swifi.Targets()
	if service != "" {
		if _, ok := swifi.Workloads()[service]; !ok {
			return fmt.Errorf("unknown service %q", service)
		}
		targets = []string{service}
	}
	// The per-service campaigns run concurrently and each campaign shards
	// its trials over the same worker bound; results land in fixed slots,
	// so the rendered tables are in Table II order regardless of timing.
	results := make([]*swifi.Result, len(targets))
	err := pool.Run(len(targets), workers, func(i int) error {
		res, err := swifi.Run(swifi.Config{
			Service:  targets[i],
			Workload: swifi.Workloads()[targets[i]],
			Iters:    5,
			Trials:   trials,
			Seed:     seed,
			Profile:  swifi.Profiles()[targets[i]],
			Mode:     recMode,
			Watchdog: watchdog,
			Trace:    trace,
			Workers:  workers,
		})
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}
	experiments.RenderTable2(os.Stdout, results)
	if trace {
		for _, res := range results {
			experiments.RenderRecoveryBreakdown(os.Stdout, res)
			if traceOut != "" {
				path := res.Service + "." + traceOut
				if err := writeSnapshot(path, res); err != nil {
					return err
				}
				fmt.Println("wrote", path)
			}
		}
	}
	if verbose {
		for _, res := range results {
			for i, tr := range res.Trials {
				if tr.Outcome == swifi.OutcomeRecovered || tr.Outcome == swifi.OutcomeUndetected {
					continue
				}
				fmt.Printf("%s trial %d: %s reg=%v bit=%d fn=%s: %s\n",
					res.Service, i, tr.Outcome, tr.Injection.Reg, tr.Injection.Bit, tr.Injection.Fn, tr.Detail)
			}
		}
	}
	return nil
}

// writeSnapshot serializes one campaign's trace snapshot to path.
func writeSnapshot(path string, res *swifi.Result) error {
	data, err := json.MarshalIndent(res.Recovery, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runPrime(trials int, seed int64, workers int, service string) error {
	var services []string
	if service != "" {
		services = append(services, service)
	}
	rows, err := experiments.Table2Prime(trials, seed, workers, services...)
	if err != nil {
		return err
	}
	experiments.RenderTable2Prime(os.Stdout, rows)
	return nil
}

// Command swifi runs the SWIFI fault-injection campaign of Table II:
// register bit-flips injected into each system-level service while its
// §V-B workload runs, with outcomes classified as recovered, segfault,
// propagated, other (latent), degraded, or undetected.
//
// Usage:
//
//	swifi [-trials 500] [-seed 2026] [-service sched|mm|ramfs|lock|event|timer] [-watchdog] [-prime] [-v]
//
// -watchdog enables the kernel watchdog for every trial, converting
// component-attributable hangs into recoverable component faults. -prime
// runs the paired Table II′ experiment instead: each service's campaign
// twice from the same seed, watchdog off vs on, reporting how many hang
// injections were reclassified from "not recovered (other)" to
// recovered/degraded.
package main

import (
	"flag"
	"fmt"
	"os"

	"superglue/internal/core"
	"superglue/internal/experiments"
	"superglue/internal/swifi"
)

func main() {
	trials := flag.Int("trials", 500, "injections per service")
	seed := flag.Int64("seed", 2026, "campaign seed (reproducible)")
	service := flag.String("service", "", "run a single service's campaign (default: all)")
	mode := flag.String("mode", "on-demand", "recovery mode: on-demand or eager")
	watchdog := flag.Bool("watchdog", false, "enable the kernel watchdog in every trial")
	prime := flag.Bool("prime", false, "run the paired Table II' watchdog-off/on comparison")
	verbose := flag.Bool("v", false, "print each non-recovered trial")
	flag.Parse()

	var err error
	if *prime {
		err = runPrime(*trials, *seed, *service)
	} else {
		err = run(*trials, *seed, *service, *mode, *watchdog, *verbose)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swifi:", err)
		os.Exit(1)
	}
}

func run(trials int, seed int64, service, mode string, watchdog, verbose bool) error {
	recMode := core.OnDemand
	switch mode {
	case "on-demand", "":
	case "eager":
		recMode = core.Eager
	default:
		return fmt.Errorf("unknown recovery mode %q", mode)
	}
	targets := swifi.Targets()
	if service != "" {
		if _, ok := swifi.Workloads()[service]; !ok {
			return fmt.Errorf("unknown service %q", service)
		}
		targets = []string{service}
	}
	var results []*swifi.Result
	for _, svc := range targets {
		res, err := swifi.Run(swifi.Config{
			Service:  svc,
			Workload: swifi.Workloads()[svc],
			Iters:    5,
			Trials:   trials,
			Seed:     seed,
			Profile:  swifi.Profiles()[svc],
			Mode:     recMode,
			Watchdog: watchdog,
		})
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	experiments.RenderTable2(os.Stdout, results)
	if verbose {
		for _, res := range results {
			for i, tr := range res.Trials {
				if tr.Outcome == swifi.OutcomeRecovered || tr.Outcome == swifi.OutcomeUndetected {
					continue
				}
				fmt.Printf("%s trial %d: %s reg=%v bit=%d fn=%s: %s\n",
					res.Service, i, tr.Outcome, tr.Injection.Reg, tr.Injection.Bit, tr.Injection.Fn, tr.Detail)
			}
		}
	}
	return nil
}

func runPrime(trials int, seed int64, service string) error {
	var services []string
	if service != "" {
		services = append(services, service)
	}
	rows, err := experiments.Table2Prime(trials, seed, services...)
	if err != nil {
		return err
	}
	experiments.RenderTable2Prime(os.Stdout, rows)
	return nil
}

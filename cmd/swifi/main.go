// Command swifi runs the SWIFI fault-injection campaign of Table II:
// register bit-flips injected into each system-level service while its
// §V-B workload runs, with outcomes classified as recovered, segfault,
// propagated, other (latent), degraded, or undetected.
//
// Usage:
//
//	swifi [-trials 500] [-seed 2026] [-workers N] [-service sched|mm|ramfs|lock|event|timer] [-watchdog] [-prime] [-trace] [-trace-out trace.json] [-v]
//
// -watchdog enables the kernel watchdog for every trial, converting
// component-attributable hangs into recoverable component faults. -prime
// runs the paired Table II′ experiment instead: each service's campaign
// twice from the same seed, watchdog off vs on, reporting how many hang
// injections were reclassified from "not recovered (other)" to
// recovered/degraded. -trace records structured fault/recovery traces
// (internal/obs) across every trial and prints a per-mechanism recovery
// breakdown after each campaign; -trace-out additionally writes each
// campaign's full trace snapshot to <service>.<trace-out> as JSON.
// -workers shards each campaign's trials over a worker pool and runs the
// per-service campaigns concurrently; for a fixed seed the output is
// byte-identical for any worker count (default: GOMAXPROCS).
//
// The shaped campaigns of the typed fault taxonomy are selected with
// -shape correlated|storm|during-recovery (the default, legacy, is the
// paper's single-bit-flip campaign). -kinds restricts the fault-kind pool
// (comma-separated, e.g. "message-loss,storage-crash"), -storm-faults
// sets the per-trial burst size of -shape storm, and -policy installs a
// supervision strategy (one-for-one, rest-for-one, all-for-one) as a
// root supervisor over every server in each trial's system. Shaped
// campaigns render per-kind outcome columns after the Table II rows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"superglue/internal/core"
	"superglue/internal/experiments"
	"superglue/internal/fault"
	"superglue/internal/pool"
	"superglue/internal/swifi"
)

func main() {
	trials := flag.Int("trials", 500, "injections per service")
	seed := flag.Int64("seed", 2026, "campaign seed (reproducible)")
	service := flag.String("service", "", "run a single service's campaign (default: all)")
	mode := flag.String("mode", "on-demand", "recovery mode: on-demand or eager")
	workers := flag.Int("workers", 0, "trial/campaign parallelism (0 = GOMAXPROCS); output is identical for any value")
	watchdog := flag.Bool("watchdog", false, "enable the kernel watchdog in every trial")
	prime := flag.Bool("prime", false, "run the paired Table II' watchdog-off/on comparison")
	trace := flag.Bool("trace", false, "record structured traces and print the per-mechanism recovery breakdown")
	traceOut := flag.String("trace-out", "", "write each campaign's trace snapshot to <service>.<file> (implies -trace)")
	shape := flag.String("shape", "legacy", "campaign shape: legacy, correlated, storm, or during-recovery")
	kinds := flag.String("kinds", "", "comma-separated fault-kind pool for shaped campaigns (default: all kinds)")
	stormFaults := flag.Int("storm-faults", 0, "faults per storm trial (0 = default burst size)")
	policy := flag.String("policy", "", "supervision policy per trial: legacy, one-for-one, rest-for-one, or all-for-one")
	cores := flag.Int("cores", 1, "simulated cores per trial machine (>1 places the target on core 1: cross-core invocations)")
	replicas := flag.Int("replicas", 1, "storage replicas per trial machine (>1 makes storage kinds land inside the replicated store)")
	multicoreKinds := flag.Bool("multicore-kinds", false, "add the migration and cross-core-invocation kinds to shaped campaigns' pool")
	verbose := flag.Bool("v", false, "print each non-recovered trial")
	flag.Parse()

	var err error
	if *prime {
		err = runPrime(*trials, *seed, *workers, *service)
	} else {
		err = run(runConfig{
			trials: *trials, seed: *seed, workers: *workers,
			service: *service, mode: *mode, watchdog: *watchdog,
			trace: *trace || *traceOut != "", traceOut: *traceOut,
			shape: *shape, kinds: *kinds, stormFaults: *stormFaults,
			policy: *policy, cores: *cores, replicas: *replicas, multicoreKinds: *multicoreKinds,
			verbose: *verbose,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swifi:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	trials         int
	seed           int64
	workers        int
	service        string
	mode           string
	watchdog       bool
	trace          bool
	traceOut       string
	shape          string
	kinds          string
	stormFaults    int
	policy         string
	cores          int
	replicas       int
	multicoreKinds bool
	verbose        bool
}

// parseKinds resolves a comma-separated kind list ("" means the default
// pool).
func parseKinds(s string) ([]fault.Kind, error) {
	if s == "" {
		return nil, nil
	}
	var kinds []fault.Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, ok := fault.ParseKind(name)
		if !ok || k == fault.KindUnknown {
			return nil, fmt.Errorf("unknown fault kind %q", name)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func run(rc runConfig) error {
	recMode := core.OnDemand
	switch rc.mode {
	case "on-demand", "":
	case "eager":
		recMode = core.Eager
	default:
		return fmt.Errorf("unknown recovery mode %q", rc.mode)
	}
	shape, ok := swifi.ParseShape(rc.shape)
	if !ok {
		return fmt.Errorf("unknown campaign shape %q", rc.shape)
	}
	kinds, err := parseKinds(rc.kinds)
	if err != nil {
		return err
	}
	if rc.multicoreKinds && kinds == nil {
		kinds = swifi.MulticoreKinds()
	}
	targets := swifi.Targets()
	if rc.service != "" {
		if _, ok := swifi.Workloads()[rc.service]; !ok {
			return fmt.Errorf("unknown service %q", rc.service)
		}
		targets = []string{rc.service}
	}
	// The per-service campaigns run concurrently and each campaign shards
	// its trials over the same worker bound; results land in fixed slots,
	// so the rendered tables are in Table II order regardless of timing.
	results := make([]*swifi.Result, len(targets))
	err = pool.Run(len(targets), rc.workers, func(i int) error {
		res, err := swifi.Run(swifi.Config{
			Service:     targets[i],
			Workload:    swifi.Workloads()[targets[i]],
			Iters:       5,
			Trials:      rc.trials,
			Seed:        rc.seed,
			Profile:     swifi.Profiles()[targets[i]],
			Mode:        recMode,
			Watchdog:    rc.watchdog,
			Trace:       rc.trace,
			Workers:     rc.workers,
			Shape:       shape,
			Kinds:       kinds,
			StormFaults: rc.stormFaults,
			Policy:      rc.policy,
			Cores:       rc.cores,
			Replicas:    rc.replicas,
		})
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}
	experiments.RenderTable2(os.Stdout, results)
	if shape != swifi.ShapeLegacy {
		experiments.RenderTable2Kinds(os.Stdout, results)
	}
	trace, traceOut, verbose := rc.trace, rc.traceOut, rc.verbose
	if trace {
		for _, res := range results {
			experiments.RenderRecoveryBreakdown(os.Stdout, res)
			if traceOut != "" {
				path := res.Service + "." + traceOut
				if err := writeSnapshot(path, res); err != nil {
					return err
				}
				fmt.Println("wrote", path)
			}
		}
	}
	if verbose {
		for _, res := range results {
			for i, tr := range res.Trials {
				if tr.Outcome == swifi.OutcomeRecovered || tr.Outcome == swifi.OutcomeUndetected {
					continue
				}
				fmt.Printf("%s trial %d: %s reg=%v bit=%d fn=%s: %s\n",
					res.Service, i, tr.Outcome, tr.Injection.Reg, tr.Injection.Bit, tr.Injection.Fn, tr.Detail)
			}
		}
	}
	return nil
}

// writeSnapshot serializes one campaign's trace snapshot to path.
func writeSnapshot(path string, res *swifi.Result) error {
	data, err := json.MarshalIndent(res.Recovery, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runPrime(trials int, seed int64, workers int, service string) error {
	var services []string
	if service != "" {
		services = append(services, service)
	}
	rows, err := experiments.Table2Prime(trials, seed, workers, services...)
	if err != nil {
		return err
	}
	experiments.RenderTable2Prime(os.Stdout, rows)
	return nil
}

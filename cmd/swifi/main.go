// Command swifi runs the SWIFI fault-injection campaign of Table II:
// register bit-flips injected into each system-level service while its
// §V-B workload runs, with outcomes classified as recovered, segfault,
// propagated, other (latent), degraded, or undetected.
//
// Usage:
//
//	swifi [-trials 500] [-seed 2026] [-workers N] [-service sched|mm|ramfs|lock|event|timer] [-watchdog] [-prime] [-trace] [-trace-out trace.json] [-v]
//
// -watchdog enables the kernel watchdog for every trial, converting
// component-attributable hangs into recoverable component faults. -prime
// runs the paired Table II′ experiment instead: each service's campaign
// twice from the same seed, watchdog off vs on, reporting how many hang
// injections were reclassified from "not recovered (other)" to
// recovered/degraded. -trace records structured fault/recovery traces
// (internal/obs) across every trial and prints a per-mechanism recovery
// breakdown after each campaign; -trace-out additionally writes each
// campaign's full trace snapshot to <service>.<trace-out> as JSON.
// -workers shards each campaign's trials over a worker pool and runs the
// per-service campaigns concurrently; for a fixed seed the output is
// byte-identical for any worker count (default: GOMAXPROCS).
//
// The shaped campaigns of the typed fault taxonomy are selected with
// -shape correlated|storm|during-recovery (the default, legacy, is the
// paper's single-bit-flip campaign). -kinds restricts the fault-kind pool
// (comma-separated, e.g. "message-loss,storage-crash"), -storm-faults
// sets the per-trial burst size of -shape storm, and -policy installs a
// supervision strategy (one-for-one, rest-for-one, all-for-one) as a
// root supervisor over every server in each trial's system. Shaped
// campaigns render per-kind outcome columns after the Table II rows.
//
// Fleet-scale campaigns (streaming, resumable, shardable):
//
//	swifi -checkpoint ckpt.bin [-checkpoint-every K] [-resume] [-halt-after N]
//	swifi -shard i/n -shard-out shard.bin
//	swifi -merge <service>.shard0of2.shard.bin <service>.shard1of2.shard.bin ...
//
// -checkpoint persists each campaign's rolling state to
// <service>.<file> every K committed trials (and at completion);
// -resume continues from the persisted cursor — an interrupted-then-
// resumed campaign's output is byte-identical to an uninterrupted run.
// -halt-after deliberately stops each campaign after N newly committed
// trials (checkpoint written, exit status 3): the deterministic "kill
// it midway" used by the fleet-smoke CI check. -shard i/n runs only the
// i-th of n contiguous trial ranges and -shard-out persists the shard's
// state to <service>.shard<i>of<n>.<file>; -merge folds shard files
// (grouped by service) back into the canonical campaign and renders the
// same tables the single-process run would — byte-identically. Campaign
// memory is O(workers): per-trial records are discarded unless -v needs
// them, and the merged trace stream is trimmed as it rolls.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"superglue/internal/core"
	"superglue/internal/experiments"
	"superglue/internal/fault"
	"superglue/internal/pool"
	"superglue/internal/swifi"
)

func main() {
	trials := flag.Int("trials", 500, "injections per service")
	seed := flag.Int64("seed", 2026, "campaign seed (reproducible)")
	service := flag.String("service", "", "run a single service's campaign (default: all)")
	mode := flag.String("mode", "on-demand", "recovery mode: on-demand or eager")
	workers := flag.Int("workers", 0, "trial/campaign parallelism (0 = GOMAXPROCS); output is identical for any value")
	watchdog := flag.Bool("watchdog", false, "enable the kernel watchdog in every trial")
	prime := flag.Bool("prime", false, "run the paired Table II' watchdog-off/on comparison")
	trace := flag.Bool("trace", false, "record structured traces and print the per-mechanism recovery breakdown")
	traceOut := flag.String("trace-out", "", "write each campaign's trace snapshot to <service>.<file> (implies -trace)")
	shape := flag.String("shape", "legacy", "campaign shape: legacy, correlated, storm, or during-recovery")
	kinds := flag.String("kinds", "", "comma-separated fault-kind pool for shaped campaigns (default: all kinds)")
	stormFaults := flag.Int("storm-faults", 0, "faults per storm trial (0 = default burst size)")
	policy := flag.String("policy", "", "supervision policy per trial: legacy, one-for-one, rest-for-one, or all-for-one")
	cores := flag.Int("cores", 1, "simulated cores per trial machine (>1 places the target on core 1: cross-core invocations)")
	replicas := flag.Int("replicas", 1, "storage replicas per trial machine (>1 makes storage kinds land inside the replicated store)")
	multicoreKinds := flag.Bool("multicore-kinds", false, "add the migration and cross-core-invocation kinds to shaped campaigns' pool")
	checkpoint := flag.String("checkpoint", "", "persist each campaign's rolling state to <service>.<file> (enables -resume and -halt-after)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "committed trials between checkpoint writes (0 = default)")
	resume := flag.Bool("resume", false, "continue each campaign from its -checkpoint cursor")
	haltAfter := flag.Int("halt-after", 0, "stop each campaign after N newly committed trials (checkpoint written, exit 3)")
	shard := flag.String("shard", "", "run one contiguous trial shard, as i/n (e.g. 0/4)")
	shardOut := flag.String("shard-out", "", "persist the shard's state to <service>.shard<i>of<n>.<file>")
	merge := flag.Bool("merge", false, "fold the shard files given as arguments into the canonical campaign output")
	verbose := flag.Bool("v", false, "print each non-recovered trial")
	flag.Parse()

	var err error
	switch {
	case *merge:
		err = runMerge(flag.Args(), *traceOut)
	case *prime:
		err = runPrime(*trials, *seed, *workers, *service)
	default:
		err = run(runConfig{
			trials: *trials, seed: *seed, workers: *workers,
			service: *service, mode: *mode, watchdog: *watchdog,
			trace: *trace || *traceOut != "", traceOut: *traceOut,
			shape: *shape, kinds: *kinds, stormFaults: *stormFaults,
			policy: *policy, cores: *cores, replicas: *replicas, multicoreKinds: *multicoreKinds,
			checkpoint: *checkpoint, checkpointEvery: *checkpointEvery,
			resume: *resume, haltAfter: *haltAfter,
			shard: *shard, shardOut: *shardOut,
			verbose: *verbose,
		})
	}
	if errors.Is(err, swifi.ErrHalted) {
		fmt.Fprintln(os.Stderr, "swifi:", err)
		os.Exit(3)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swifi:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	trials          int
	seed            int64
	workers         int
	service         string
	mode            string
	watchdog        bool
	trace           bool
	traceOut        string
	shape           string
	kinds           string
	stormFaults     int
	policy          string
	cores           int
	replicas        int
	multicoreKinds  bool
	checkpoint      string
	checkpointEvery int
	resume          bool
	haltAfter       int
	shard           string
	shardOut        string
	verbose         bool
}

// parseShardSpec resolves "-shard i/n" ("" means unsharded).
func parseShardSpec(s string) (index, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &index, &count); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4)", s)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("bad -shard %q: index must be in [0,%d)", s, count)
	}
	return index, count, nil
}

// parseKinds resolves a comma-separated kind list ("" means the default
// pool).
func parseKinds(s string) ([]fault.Kind, error) {
	if s == "" {
		return nil, nil
	}
	var kinds []fault.Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, ok := fault.ParseKind(name)
		if !ok || k == fault.KindUnknown {
			return nil, fmt.Errorf("unknown fault kind %q", name)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func run(rc runConfig) error {
	recMode := core.OnDemand
	switch rc.mode {
	case "on-demand", "":
	case "eager":
		recMode = core.Eager
	default:
		return fmt.Errorf("unknown recovery mode %q", rc.mode)
	}
	shape, ok := swifi.ParseShape(rc.shape)
	if !ok {
		return fmt.Errorf("unknown campaign shape %q", rc.shape)
	}
	kinds, err := parseKinds(rc.kinds)
	if err != nil {
		return err
	}
	if rc.multicoreKinds && kinds == nil {
		kinds = swifi.MulticoreKinds()
	}
	shardIdx, shardCount, err := parseShardSpec(rc.shard)
	if err != nil {
		return err
	}
	targets := swifi.Targets()
	if rc.service != "" {
		if _, ok := swifi.Workloads()[rc.service]; !ok {
			return fmt.Errorf("unknown service %q", rc.service)
		}
		targets = []string{rc.service}
	}
	// The per-service campaigns run concurrently and each campaign shards
	// its trials over the same worker bound; results land in fixed slots,
	// so the rendered tables are in Table II order regardless of timing.
	results := make([]*swifi.Result, len(targets))
	shardPaths := make([]string, len(targets))
	err = pool.Run(len(targets), rc.workers, func(i int) error {
		cfg := swifi.Config{
			Service:     targets[i],
			Workload:    swifi.Workloads()[targets[i]],
			Iters:       5,
			Trials:      rc.trials,
			Seed:        rc.seed,
			Profile:     swifi.Profiles()[targets[i]],
			Mode:        recMode,
			Watchdog:    rc.watchdog,
			Trace:       rc.trace,
			Workers:     rc.workers,
			Shape:       shape,
			Kinds:       kinds,
			StormFaults: rc.stormFaults,
			Policy:      rc.policy,
			Cores:       rc.cores,
			Replicas:    rc.replicas,
			// Fleet-scale orchestration: per-service durable files, and
			// O(workers) memory unless -v needs the per-trial records.
			CheckpointEvery: rc.checkpointEvery,
			Resume:          rc.resume,
			HaltAfter:       rc.haltAfter,
			Shard:           shardIdx,
			ShardCount:      shardCount,
			DiscardTrials:   !rc.verbose,
		}
		if rc.checkpoint != "" {
			cfg.Checkpoint = targets[i] + "." + rc.checkpoint
		}
		if rc.shardOut != "" {
			if shardCount < 2 {
				return fmt.Errorf("-shard-out without -shard i/n")
			}
			cfg.ShardOut = fmt.Sprintf("%s.shard%dof%d.%s", targets[i], shardIdx, shardCount, rc.shardOut)
			shardPaths[i] = cfg.ShardOut
		}
		res, err := swifi.Run(cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}
	if err := render(results, shape != swifi.ShapeLegacy, rc.trace, rc.traceOut); err != nil {
		return err
	}
	for _, path := range shardPaths {
		if path != "" {
			fmt.Println("wrote", path)
		}
	}
	if rc.verbose {
		for _, res := range results {
			for i, tr := range res.Trials {
				if tr.Outcome == swifi.OutcomeRecovered || tr.Outcome == swifi.OutcomeUndetected {
					continue
				}
				fmt.Printf("%s trial %d: %s reg=%v bit=%d fn=%s: %s\n",
					res.Service, i, tr.Outcome, tr.Injection.Reg, tr.Injection.Bit, tr.Injection.Fn, tr.Detail)
			}
		}
	}
	return nil
}

// render writes the standard campaign output — the Table II rows, the
// per-kind columns for shaped campaigns, and the per-mechanism recovery
// breakdowns with optional snapshot files for traced ones. Single-
// process runs and -merge go through this one function, which is what
// makes their stdout byte-comparable.
func render(results []*swifi.Result, shaped, trace bool, traceOut string) error {
	experiments.RenderTable2(os.Stdout, results)
	if shaped {
		experiments.RenderTable2Kinds(os.Stdout, results)
	}
	if trace {
		for _, res := range results {
			experiments.RenderRecoveryBreakdown(os.Stdout, res)
			if traceOut != "" {
				path := res.Service + "." + traceOut
				if err := writeSnapshot(path, res); err != nil {
					return err
				}
				fmt.Println("wrote", path)
			}
		}
	}
	return nil
}

// runMerge folds shard files back into canonical campaigns: the files
// are loaded and grouped by service, each group is validated and merged
// (swifi.MergeStates), and the merged campaigns are rendered through
// the exact code path a single-process run uses — so the output is
// byte-identical to running unsharded.
func runMerge(files []string, traceOut string) error {
	if len(files) == 0 {
		return fmt.Errorf("-merge needs shard files as arguments")
	}
	byService := make(map[string][]*swifi.CampaignState)
	for _, path := range files {
		st, err := swifi.LoadCampaignState(path)
		if err != nil {
			return err
		}
		byService[st.Service] = append(byService[st.Service], st)
	}
	// Render in Table II order (the order a single-process all-services
	// run would use), then any unknown services by name.
	var services []string
	for _, svc := range swifi.Targets() {
		if _, ok := byService[svc]; ok {
			services = append(services, svc)
		}
	}
	var extra []string
	for svc := range byService {
		if _, ok := swifi.Workloads()[svc]; !ok {
			extra = append(extra, svc)
		}
	}
	sort.Strings(extra)
	services = append(services, extra...)

	results := make([]*swifi.Result, 0, len(services))
	shaped, traced := false, false
	for _, svc := range services {
		merged, err := swifi.MergeStates(byService[svc])
		if err != nil {
			return err
		}
		if merged.Shape != swifi.ShapeLegacy.String() {
			shaped = true
		}
		if merged.Traced {
			traced = true
		}
		results = append(results, merged.Result())
	}
	return render(results, shaped, traced, traceOut)
}

// writeSnapshot serializes one campaign's trace snapshot to path.
func writeSnapshot(path string, res *swifi.Result) error {
	data, err := json.MarshalIndent(res.Recovery, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runPrime(trials int, seed int64, workers int, service string) error {
	var services []string
	if service != "" {
		services = append(services, service)
	}
	rows, err := experiments.Table2Prime(trials, seed, workers, services...)
	if err != nil {
		return err
	}
	experiments.RenderTable2Prime(os.Stdout, rows)
	return nil
}

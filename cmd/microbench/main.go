// Command microbench regenerates the per-service micro-benchmarks of
// Fig. 6: (a) the descriptor-tracking infrastructure overhead of the C³ and
// SuperGlue stubs versus raw invocations, (b) the per-descriptor recovery
// overhead, and (c) the lines-of-code comparison between the declarative
// IDL, the code the compiler generates from it, and the hand-written C³
// stubs it replaces. The `mechanisms` figure prints the recovery-mechanism
// sets derived from each interface specification (§III-C).
//
// Usage:
//
//	microbench [-fig 6a|6b|6c|mechanisms|all] [-iters 2000] [-trials 300]
package main

import (
	"flag"
	"fmt"
	"os"

	"superglue/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 6a, 6b, 6c, mechanisms, timing, interference, all")
	iters := flag.Int("iters", 2000, "iterations per measurement (6a)")
	trials := flag.Int("trials", 300, "fault/recovery trials per service (6b)")
	flag.Parse()

	if err := run(*fig, *iters, *trials); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run(fig string, iters, trials int) error {
	want := func(name string) bool { return fig == "all" || fig == name }
	if want("6a") {
		rows, err := experiments.Fig6a(iters)
		if err != nil {
			return err
		}
		experiments.RenderFig6a(os.Stdout, rows)
		fmt.Println()
	}
	if want("6b") {
		rows, err := experiments.Fig6b(trials)
		if err != nil {
			return err
		}
		experiments.RenderFig6b(os.Stdout, rows)
		fmt.Println()
	}
	if want("6c") {
		rows, err := experiments.Fig6c()
		if err != nil {
			return err
		}
		experiments.RenderFig6c(os.Stdout, rows)
		fmt.Println()
	}
	if want("mechanisms") {
		rows, err := experiments.Mechanisms()
		if err != nil {
			return err
		}
		experiments.RenderMechanisms(os.Stdout, rows)
		fmt.Println()
	}
	if want("timing") {
		rows, err := experiments.RecoveryTiming(nil, trials)
		if err != nil {
			return err
		}
		experiments.RenderRecoveryTiming(os.Stdout, rows)
		fmt.Println()
	}
	if want("interference") {
		rows, err := experiments.RecoveryInterference(nil, trials)
		if err != nil {
			return err
		}
		experiments.RenderInterference(os.Stdout, rows)
	}
	if !want("6a") && !want("6b") && !want("6c") && !want("mechanisms") && !want("timing") && !want("interference") {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

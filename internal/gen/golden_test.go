package gen

import (
	"testing"

	"superglue/internal/analysis/driftcheck"
)

// TestCommittedStubsMatchGenerator regenerates every stub from its IDL and
// requires byte equality with the committed files, so `go run ./cmd/sgc
// -builtin -o internal/gen` is always reflected in the tree. The same
// check runs as `sgc vet -gen` in `make lint`.
func TestCommittedStubsMatchGenerator(t *testing.T) {
	drifts, err := driftcheck.Check(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drifts {
		t.Error(d)
	}
}

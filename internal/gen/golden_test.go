package gen

import (
	"os"
	"path/filepath"
	"testing"

	"superglue/internal/codegen"
	"superglue/internal/idl"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// TestCommittedStubsMatchGenerator regenerates every stub from its IDL and
// requires byte equality with the committed files, so `go run ./cmd/sgc
// -builtin -o internal/gen` is always reflected in the tree.
func TestCommittedStubsMatchGenerator(t *testing.T) {
	for name, src := range map[string]string{
		"lock":  lock.IDLSource(),
		"event": event.IDLSource(),
		"sched": sched.IDLSource(),
		"timer": timer.IDLSource(),
		"mm":    mm.IDLSource(),
		"ramfs": ramfs.IDLSource(),
	} {
		spec, err := idl.Parse(name, src)
		if err != nil {
			t.Fatalf("Parse(%s): %v", name, err)
		}
		ir, err := codegen.NewIR(spec)
		if err != nil {
			t.Fatalf("NewIR(%s): %v", name, err)
		}
		files, err := codegen.Generate(ir)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		for fname, want := range files {
			path := filepath.Join(ir.Package(), fname)
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading committed %s: %v (run `go run ./cmd/sgc -builtin -o internal/gen`)", path, err)
			}
			if string(got) != want {
				t.Errorf("%s is stale: regenerate with `go run ./cmd/sgc -builtin -o internal/gen`", path)
			}
		}
	}
}

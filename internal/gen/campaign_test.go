package gen

import (
	"testing"

	"superglue/internal/swifi"
)

// TestCampaignThroughGeneratedStubs runs fault-injection campaigns whose
// workloads drive the sgc-generated stubs: the deployed artifact recovers
// under fire, not just the spec-interpreting runtime.
func TestCampaignThroughGeneratedStubs(t *testing.T) {
	for name, cfg := range map[string]swifi.Config{
		"lock": {
			Service:  "lock",
			Workload: NewLockWorkload,
			Iters:    4,
			Trials:   120,
			Seed:     5150,
			Profile:  swifi.Profiles()["lock"],
		},
		"event": {
			Service:  "event",
			Workload: NewEventWorkload,
			Iters:    4,
			Trials:   120,
			Seed:     5150,
			Profile:  swifi.Profiles()["event"],
		},
	} {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			res, err := swifi.Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, tr := range res.Trials {
				if tr.Outcome == swifi.OutcomeOther && tr.Injection.Effect == swifi.EffectCrash {
					t.Errorf("generated stub failed to recover a detected crash: %s (inj %+v)",
						tr.Detail, tr.Injection)
				}
			}
			if res.SuccessRate() < 0.7 {
				t.Errorf("success rate %.2f below sanity floor", res.SuccessRate())
			}
		})
	}
}

// TestGeneratedAndInterpretedCampaignsAgree compares campaign outcome
// distributions between generated-stub and interpreted-stub workloads for
// the lock service under the same seed: the two implementations of the same
// specification should recover the same classes of faults.
func TestGeneratedAndInterpretedCampaignsAgree(t *testing.T) {
	genRes, err := swifi.Run(swifi.Config{
		Service: "lock", Workload: NewLockWorkload,
		Iters: 4, Trials: 150, Seed: 606, Profile: swifi.Profiles()["lock"],
	})
	if err != nil {
		t.Fatalf("generated campaign: %v", err)
	}
	intRes, err := swifi.Run(swifi.Config{
		Service: "lock", Workload: swifi.Workloads()["lock"],
		Iters: 4, Trials: 150, Seed: 606, Profile: swifi.Profiles()["lock"],
	})
	if err != nil {
		t.Fatalf("interpreted campaign: %v", err)
	}
	// The workload structures differ slightly (client wiring), so exact
	// per-trial equality is not expected; the recovery quality must agree.
	if genRes.SuccessRate() < intRes.SuccessRate()-0.1 {
		t.Errorf("generated stubs recover worse: %.2f vs %.2f",
			genRes.SuccessRate(), intRes.SuccessRate())
	}
	if genRes.Recovered == 0 || intRes.Recovered == 0 {
		t.Error("a campaign recovered nothing")
	}
}

// Package genrt is the runtime support library that SuperGlue-generated
// stub code links against — the analogue of the C³ runtime macros
// (CSTUB_FN, CSTUB_FAULT_UPDATE, ...) that the paper's generated C code
// expands around. It contains only the pieces that are identical for every
// interface: a host component that routes recovery upcalls to generated
// stubs, the fault-update primitive, and the metrics block.
package genrt

import (
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/obs"
)

// MaxRedo bounds generated fault-retry loops.
const MaxRedo = 16

// Metrics counts a generated stub's work (comparable with core.StubMetrics).
type Metrics struct {
	Invocations uint64
	TrackOps    uint64
	Recoveries  uint64
	WalkSteps   uint64
	Redos       uint64
	Upcalls     uint64
	StorageOps  uint64
}

// Key identifies a descriptor: an ID qualified by an optional namespace.
type Key struct {
	NS kernel.Word
	ID kernel.Word
}

// Recoverer is the upcall surface every generated client stub implements.
type Recoverer interface {
	// RecoverByKey recovers the descriptor with the given key and returns
	// its current server-side ID.
	RecoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error)
	// RecreateByServerID rebuilds the descriptor currently known (stale)
	// to the server as id, returning its fresh server-side ID.
	RecreateByServerID(t *kernel.Thread, id kernel.Word) (kernel.Word, error)
}

// Host is a client protection domain hosting generated stubs. It implements
// kernel.Service and routes the SuperGlue recovery upcalls to them.
type Host struct {
	sys        *core.System
	comp       kernel.ComponentID
	name       string
	recoverers map[kernel.ComponentID]Recoverer
}

var _ kernel.Service = (*Host)(nil)

// NewHost registers a client component that hosts generated stubs.
func NewHost(sys *core.System, name string) (*Host, error) {
	h := &Host{sys: sys, name: name, recoverers: make(map[kernel.ComponentID]Recoverer)}
	comp, err := sys.Kernel().Register(func() kernel.Service { return h })
	if err != nil {
		return nil, err
	}
	h.comp = comp
	return h, nil
}

// ID returns the host's component ID.
func (h *Host) ID() kernel.ComponentID { return h.comp }

// System returns the owning system.
func (h *Host) System() *core.System { return h.sys }

// Bind installs a generated stub as the upcall recoverer for a server.
func (h *Host) Bind(server kernel.ComponentID, r Recoverer) {
	h.recoverers[server] = r
}

// Name implements kernel.Service.
func (h *Host) Name() string { return h.name }

// Init implements kernel.Service.
func (h *Host) Init(bc *kernel.BootContext) error { return nil }

// Dispatch implements kernel.Service.
func (h *Host) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	switch fn {
	case core.FnRecover:
		if len(args) < 3 {
			return 0, fmt.Errorf("genrt: %s needs 3 args", fn)
		}
		r, ok := h.recoverers[kernel.ComponentID(args[0])]
		if !ok {
			return 0, fmt.Errorf("genrt: no stub for server %d in %s", args[0], h.name)
		}
		return r.RecoverByKey(t, args[1], args[2])
	case core.FnRecreate:
		if len(args) < 2 {
			return 0, fmt.Errorf("genrt: %s needs 2 args", fn)
		}
		r, ok := h.recoverers[kernel.ComponentID(args[0])]
		if !ok {
			return 0, fmt.Errorf("genrt: no stub for server %d in %s", args[0], h.name)
		}
		return r.RecreateByServerID(t, args[1])
	default:
		return 0, kernel.DispatchError(h.name, fn)
	}
}

// Span measures one recovery mechanism's work against the kernel's trace
// recorder. The zero Span (tracing disabled) turns End and EndIfWork into
// no-ops, so a generated trace hook costs one predictable nil-check when
// tracing is off.
type Span struct {
	tr     *obs.Recorder
	k      *kernel.Kernel
	vt0    kernel.Time
	steps0 uint64
}

// BeginSpan opens a recovery-measurement span. Generated stubs call this at
// the start of a recovery walk and End/EndIfWork it once the walk completes.
func BeginSpan(k *kernel.Kernel) Span {
	tr := k.Tracer()
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, k: k, vt0: k.Now(), steps0: k.InvocationCount()}
}

// End records the span as one firing of mech against server, measured in
// virtual time and kernel-invocation steps.
func (sp Span) End(mech Mechanism, server kernel.ComponentID, t *kernel.Thread, fn string, gen uint64) {
	if sp.tr == nil {
		return
	}
	now := sp.k.Now()
	var tid int32
	if t != nil {
		tid = int32(t.ID())
	}
	sp.tr.RecordRecovery(mech, int32(server), tid, fn, int64(now), gen,
		int64(now-sp.vt0), sp.k.InvocationCount()-sp.steps0)
}

// EndIfWork records the span only when it covered at least one kernel
// invocation, so no-op recovery passes do not inflate mechanism counts.
func (sp Span) EndIfWork(mech Mechanism, server kernel.ComponentID, t *kernel.Thread, fn string, gen uint64) {
	if sp.tr == nil || sp.k.InvocationCount() == sp.steps0 {
		return
	}
	sp.End(mech, server, t, fn, gen)
}

// Mechanism aliases obs.Mechanism so generated code needs only the genrt
// import for its trace hooks.
type Mechanism = obs.Mechanism

// Re-exported mechanism labels used by generated trace hooks.
const (
	MechR0 = obs.MechR0
	MechT1 = obs.MechT1
	MechD0 = obs.MechD0
	MechD1 = obs.MechD1
	MechG0 = obs.MechG0
	MechG1 = obs.MechG1
)

// TraceMech records a single zero-latency firing of mech — the count-style
// events (G1 data-replay walk steps, G0 stale-ID translations) whose cost is
// already folded into an enclosing span.
func TraceMech(k *kernel.Kernel, mech Mechanism, server kernel.ComponentID, t *kernel.Thread, fn string) {
	tr := k.Tracer()
	if tr == nil {
		return
	}
	var tid int32
	if t != nil {
		tid = int32(t.ID())
	}
	tr.RecordRecovery(mech, int32(server), tid, fn, int64(k.Now()), EpochOf(k, server), 0, 1)
}

// FaultUpdate is CSTUB_FAULT_UPDATE: µ-reboot the failed server exactly
// once per epoch. Transient faults (message loss/duplication) left the
// server's state intact — the component was never failed, so an
// EnsureRebooted against a matching epoch would µ-reboot a healthy server;
// the stub just retransmits instead.
func FaultUpdate(t *kernel.Thread, k *kernel.Kernel, server kernel.ComponentID, f *kernel.Fault) error {
	if f.Transient {
		return nil
	}
	_, err := k.EnsureRebooted(t, server, f.Epoch)
	return err
}

// EpochOf returns a component's current epoch (0 if unknown).
func EpochOf(k *kernel.Kernel, comp kernel.ComponentID) uint64 {
	e, err := k.Epoch(comp)
	if err != nil {
		return 0
	}
	return e
}

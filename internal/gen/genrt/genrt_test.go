package genrt

import (
	"errors"
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

// fakeRecoverer records upcalls.
type fakeRecoverer struct {
	recovered []Key
	recreated []kernel.Word
}

func (f *fakeRecoverer) RecoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error) {
	f.recovered = append(f.recovered, Key{NS: ns, ID: id})
	return id + 100, nil
}

func (f *fakeRecoverer) RecreateByServerID(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	f.recreated = append(f.recreated, id)
	return id + 200, nil
}

func TestHostRoutesUpcalls(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	host, err := NewHost(sys, "gen-host")
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	rec := &fakeRecoverer{}
	host.Bind(kernel.ComponentID(7), rec)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		v, err := k.Upcall(th, host.ID(), core.FnRecover, 7, 3, 42)
		if err != nil || v != 142 {
			t.Errorf("FnRecover = (%d, %v); want (142, nil)", v, err)
		}
		v, err = k.Upcall(th, host.ID(), core.FnRecreate, 7, 9)
		if err != nil || v != 209 {
			t.Errorf("FnRecreate = (%d, %v); want (209, nil)", v, err)
		}
		// Unknown server → error.
		if _, err := k.Upcall(th, host.ID(), core.FnRecover, 99, 0, 1); err == nil {
			t.Error("upcall for unbound server accepted")
		}
		// Short arg lists → error.
		if _, err := k.Upcall(th, host.ID(), core.FnRecover, 7); err == nil {
			t.Error("short FnRecover accepted")
		}
		if _, err := k.Upcall(th, host.ID(), core.FnRecreate, 7); err == nil {
			t.Error("short FnRecreate accepted")
		}
		// Unknown function → error.
		if _, err := k.Upcall(th, host.ID(), "bogus"); !errors.Is(err, kernel.ErrNoSuchFunction) {
			t.Errorf("bogus fn err = %v; want ErrNoSuchFunction", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.recovered) != 1 || rec.recovered[0] != (Key{NS: 3, ID: 42}) {
		t.Errorf("recovered = %v", rec.recovered)
	}
	if len(rec.recreated) != 1 || rec.recreated[0] != 9 {
		t.Errorf("recreated = %v", rec.recreated)
	}
}

func TestFaultUpdateRebootsOncePerEpoch(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	k := sys.Kernel()
	comp := k.MustRegister(func() kernel.Service { return nopService{} })
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		if err := k.FailComponent(comp); err != nil {
			t.Errorf("fail: %v", err)
		}
		f := &kernel.Fault{Comp: comp, Epoch: 0}
		if err := FaultUpdate(th, k, comp, f); err != nil {
			t.Errorf("FaultUpdate: %v", err)
		}
		if got := EpochOf(k, comp); got != 1 {
			t.Errorf("epoch = %d; want 1", got)
		}
		// Stale fault: no second reboot.
		if err := FaultUpdate(th, k, comp, f); err != nil {
			t.Errorf("FaultUpdate (stale): %v", err)
		}
		if got := EpochOf(k, comp); got != 1 {
			t.Errorf("epoch after stale update = %d; want 1", got)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := EpochOf(k, kernel.ComponentID(99)); got != 0 {
		t.Errorf("EpochOf unknown comp = %d; want 0", got)
	}
}

type nopService struct{}

func (nopService) Name() string                      { return "nop" }
func (nopService) Init(bc *kernel.BootContext) error { return nil }
func (nopService) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	return 0, nil
}

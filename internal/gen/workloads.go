// Package gen's non-test source provides §V-B workloads implemented over
// the sgc-generated stubs, so fault-injection campaigns can run against the
// generated code — the artifact a deployment would actually link — and be
// compared with the spec-interpreting runtime.
package gen

import (
	"errors"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/gen/genevent"
	"superglue/internal/gen/genlock"
	"superglue/internal/gen/genrt"
	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/workload"
)

// LockWorkload is the lock benchmark of §V-B driven through the generated
// genlock stub.
type LockWorkload struct {
	iters    int
	inCS     int
	csErr    error
	owners   int
	contends int
	runErr   []error
}

var _ workload.Workload = (*LockWorkload)(nil)

// NewLockWorkload builds a generated-stub lock workload.
func NewLockWorkload(iters int) workload.Workload {
	return &LockWorkload{iters: iters}
}

// Name implements workload.Workload.
func (w *LockWorkload) Name() string { return "gen-lock" }

// Target implements workload.Workload.
func (w *LockWorkload) Target() string { return "lock" }

// Build implements workload.Workload.
func (w *LockWorkload) Build(sys *core.System) (kernel.ComponentID, error) {
	comp, err := lock.Register(sys)
	if err != nil {
		return 0, err
	}
	host, err := genrt.NewHost(sys, "gen-lock-app")
	if err != nil {
		return 0, err
	}
	st, err := genlock.NewClientStub(host, comp)
	if err != nil {
		return 0, err
	}
	k := sys.Kernel()
	self := kernel.Word(host.ID())
	fail := func(err error) { w.runErr = append(w.runErr, err) }

	var id kernel.Word
	ready := false
	critical := func(t *kernel.Thread, owner bool) error {
		tid := kernel.Word(t.ID())
		if _, err := st.LockTake(t, self, id, tid); err != nil {
			return fmt.Errorf("take: %w", err)
		}
		w.inCS++
		if w.inCS != 1 && w.csErr == nil {
			w.csErr = fmt.Errorf("mutual exclusion violated: %d in critical section", w.inCS)
		}
		if err := k.Yield(t); err != nil {
			w.inCS--
			return err
		}
		w.inCS--
		if owner {
			w.owners++
		} else {
			w.contends++
		}
		if _, err := st.LockRelease(t, self, id, tid); err != nil {
			return fmt.Errorf("release: %w", err)
		}
		return nil
	}
	if _, err := k.CreateThread(nil, "owner", 10, func(t *kernel.Thread) {
		lid, err := st.LockAlloc(t, self)
		if err != nil {
			fail(fmt.Errorf("alloc: %w", err))
			return
		}
		id = lid
		ready = true
		for i := 0; i < w.iters; i++ {
			if err := critical(t, true); err != nil {
				fail(err)
				return
			}
			if err := k.Yield(t); err != nil {
				fail(err)
				return
			}
		}
	}); err != nil {
		return 0, err
	}
	if _, err := k.CreateThread(nil, "contender", 10, func(t *kernel.Thread) {
		if !ready {
			if err := k.Yield(t); err != nil {
				fail(err)
				return
			}
		}
		for i := 0; i < w.iters; i++ {
			if err := critical(t, false); err != nil {
				fail(err)
				return
			}
			if err := k.Yield(t); err != nil {
				fail(err)
				return
			}
		}
	}); err != nil {
		return 0, err
	}
	return comp, nil
}

// Check implements workload.Workload.
func (w *LockWorkload) Check() error {
	if len(w.runErr) > 0 {
		return fmt.Errorf("gen-lock workload errors: %w", errors.Join(w.runErr...))
	}
	if w.csErr != nil {
		return w.csErr
	}
	if w.owners != w.iters || w.contends != w.iters {
		return fmt.Errorf("gen-lock incomplete: owner %d/%d contender %d/%d",
			w.owners, w.iters, w.contends, w.iters)
	}
	return nil
}

// EventWorkload is the event benchmark of §V-B driven through the generated
// genevent stub, with the trigger arriving from a second component.
type EventWorkload struct {
	iters    int
	waits    int
	triggers int
	runErr   []error
}

var _ workload.Workload = (*EventWorkload)(nil)

// NewEventWorkload builds a generated-stub event workload.
func NewEventWorkload(iters int) workload.Workload {
	return &EventWorkload{iters: iters}
}

// Name implements workload.Workload.
func (w *EventWorkload) Name() string { return "gen-event" }

// Target implements workload.Workload.
func (w *EventWorkload) Target() string { return "event" }

// Build implements workload.Workload.
func (w *EventWorkload) Build(sys *core.System) (kernel.ComponentID, error) {
	comp, err := event.Register(sys)
	if err != nil {
		return 0, err
	}
	waiterHost, err := genrt.NewHost(sys, "gen-evt-waiter")
	if err != nil {
		return 0, err
	}
	waiter, err := genevent.NewClientStub(waiterHost, comp)
	if err != nil {
		return 0, err
	}
	trigHost, err := genrt.NewHost(sys, "gen-evt-trigger")
	if err != nil {
		return 0, err
	}
	trig, err := genevent.NewClientStub(trigHost, comp)
	if err != nil {
		return 0, err
	}
	k := sys.Kernel()
	fail := func(err error) { w.runErr = append(w.runErr, err) }

	var evt kernel.Word
	ready := false
	if _, err := k.CreateThread(nil, "waiter", 9, func(t *kernel.Thread) {
		id, err := waiter.EvtSplit(t, kernel.Word(waiterHost.ID()), 0, 0)
		if err != nil {
			fail(fmt.Errorf("split: %w", err))
			return
		}
		evt = id
		ready = true
		for i := 0; i < w.iters; i++ {
			if _, err := waiter.EvtWait(t, kernel.Word(waiterHost.ID()), evt); err != nil {
				fail(fmt.Errorf("wait %d: %w", i, err))
				return
			}
			w.waits++
		}
		if _, err := waiter.EvtFree(t, kernel.Word(waiterHost.ID()), evt); err != nil {
			fail(fmt.Errorf("free: %w", err))
		}
	}); err != nil {
		return 0, err
	}
	if _, err := k.CreateThread(nil, "trigger", 10, func(t *kernel.Thread) {
		for !ready {
			if err := k.Yield(t); err != nil {
				fail(err)
				return
			}
		}
		for i := 0; i < w.iters; i++ {
			if _, err := trig.EvtTrigger(t, kernel.Word(trigHost.ID()), evt); err != nil {
				fail(fmt.Errorf("trigger %d: %w", i, err))
				return
			}
			w.triggers++
		}
	}); err != nil {
		return 0, err
	}
	return comp, nil
}

// Check implements workload.Workload.
func (w *EventWorkload) Check() error {
	if len(w.runErr) > 0 {
		return fmt.Errorf("gen-event workload errors: %w", errors.Join(w.runErr...))
	}
	if w.waits != w.iters || w.triggers != w.iters {
		return fmt.Errorf("gen-event incomplete: %d/%d waits, %d/%d triggers",
			w.waits, w.iters, w.triggers, w.iters)
	}
	return nil
}

// Package gen holds the sgc-generated interface stubs (one package per
// service) and the tests that drive them through fault injection, proving
// the generated code — not just the spec-interpreting runtime — performs
// interface-driven recovery.
package gen

import (
	"bytes"
	"testing"

	"superglue/internal/cbuf"
	"superglue/internal/core"
	"superglue/internal/gen/genevent"
	"superglue/internal/gen/genlock"
	"superglue/internal/gen/genmm"
	"superglue/internal/gen/genramfs"
	"superglue/internal/gen/genrt"
	"superglue/internal/gen/gensched"
	"superglue/internal/gen/gentimer"
	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

type rig struct {
	sys  *core.System
	host *genrt.Host
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return &rig{sys: sys}
}

func (r *rig) newHost(t *testing.T, name string) *genrt.Host {
	t.Helper()
	h, err := genrt.NewHost(r.sys, name)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return h
}

func (r *rig) run(t *testing.T, body func(th *kernel.Thread)) {
	t.Helper()
	if _, err := r.sys.Kernel().CreateThread(nil, "main", 10, body); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := r.sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGeneratedLockStubRecovery(t *testing.T) {
	r := newRig(t)
	comp, err := lock.Register(r.sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	host := r.newHost(t, "gen-app")
	st, err := genlock.NewClientStub(host, comp)
	if err != nil {
		t.Fatalf("NewClientStub: %v", err)
	}
	r.run(t, func(th *kernel.Thread) {
		self := kernel.Word(host.ID())
		tid := kernel.Word(th.ID())
		id, err := st.LockAlloc(th, self)
		if err != nil {
			t.Errorf("LockAlloc: %v", err)
			return
		}
		if _, err := st.LockTake(th, self, id, tid); err != nil {
			t.Errorf("LockTake: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Release after the fault: the generated stub recovers the
		// descriptor, re-acquires on our behalf (hold replay), then
		// releases.
		if _, err := st.LockRelease(th, self, id, tid); err != nil {
			t.Errorf("LockRelease after fault: %v", err)
		}
		if _, err := st.LockFree(th, id); err != nil {
			t.Errorf("LockFree: %v", err)
		}
		if st.Tracked() != 0 {
			t.Errorf("Tracked = %d; want 0", st.Tracked())
		}
		if st.Metrics.Recoveries == 0 || st.Metrics.WalkSteps < 2 {
			t.Errorf("metrics = %+v; want recovery with alloc+take replay", st.Metrics)
		}
	})
}

func TestGeneratedEventStubG0(t *testing.T) {
	r := newRig(t)
	comp, err := event.Register(r.sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	creatorHost := r.newHost(t, "gen-creator")
	creator, err := genevent.NewClientStub(creatorHost, comp)
	if err != nil {
		t.Fatalf("NewClientStub: %v", err)
	}
	otherHost := r.newHost(t, "gen-other")
	other, err := genevent.NewClientStub(otherHost, comp)
	if err != nil {
		t.Fatalf("NewClientStub(other): %v", err)
	}
	r.run(t, func(th *kernel.Thread) {
		id, err := creator.EvtSplit(th, kernel.Word(creatorHost.ID()), 0, 0)
		if err != nil {
			t.Errorf("EvtSplit: %v", err)
			return
		}
		if _, err := other.EvtTrigger(th, kernel.Word(otherHost.ID()), id); err != nil {
			t.Errorf("EvtTrigger pre-fault: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := r.sys.Kernel().Reboot(th, comp); err != nil {
			t.Errorf("Reboot: %v", err)
		}
		// Stale global ID from the non-creator: the server-side stub must
		// route a G0 upcall into the creator's *generated* stub.
		if _, err := other.EvtTrigger(th, kernel.Word(otherHost.ID()), id); err != nil {
			t.Errorf("EvtTrigger post-fault (G0): %v", err)
		}
		if _, err := creator.EvtWait(th, kernel.Word(creatorHost.ID()), id); err != nil {
			t.Errorf("EvtWait: %v", err)
		}
		if _, err := creator.EvtFree(th, kernel.Word(creatorHost.ID()), id); err != nil {
			t.Errorf("EvtFree: %v", err)
		}
	})
}

func TestGeneratedEventParentChain(t *testing.T) {
	r := newRig(t)
	comp, err := event.Register(r.sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	host := r.newHost(t, "gen-app")
	st, err := genevent.NewClientStub(host, comp)
	if err != nil {
		t.Fatalf("NewClientStub: %v", err)
	}
	r.run(t, func(th *kernel.Thread) {
		self := kernel.Word(host.ID())
		root, err := st.EvtSplit(th, self, 0, 0)
		if err != nil {
			t.Errorf("split root: %v", err)
			return
		}
		child, err := st.EvtSplit(th, self, root, 1)
		if err != nil {
			t.Errorf("split child: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Using the child recovers the parent first (D1).
		if _, err := st.EvtTrigger(th, self, child); err != nil {
			t.Errorf("trigger child after fault: %v", err)
		}
		if st.Metrics.WalkSteps < 2 {
			t.Errorf("walk steps = %d; want ≥ 2 (parent then child)", st.Metrics.WalkSteps)
		}
	})
}

func TestGeneratedSchedStub(t *testing.T) {
	r := newRig(t)
	comp, err := sched.Register(r.sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	host := r.newHost(t, "gen-app")
	st, err := gensched.NewClientStub(host, comp)
	if err != nil {
		t.Fatalf("NewClientStub: %v", err)
	}
	k := r.sys.Kernel()
	woke := false
	var blocked kernel.ThreadID
	if _, err := k.CreateThread(nil, "blocker", 9, func(th *kernel.Thread) {
		blocked = th.ID()
		if _, err := st.SchedSetup(th, kernel.Word(host.ID()), kernel.Word(th.ID()), 9); err != nil {
			t.Errorf("SchedSetup: %v", err)
			return
		}
		if _, err := st.SchedBlk(th, kernel.Word(host.ID()), kernel.Word(th.ID())); err != nil {
			t.Errorf("SchedBlk across fault: %v", err)
			return
		}
		woke = true
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "waker", 10, func(th *kernel.Thread) {
		if _, err := st.SchedSetup(th, kernel.Word(host.ID()), kernel.Word(th.ID()), 10); err != nil {
			t.Errorf("SchedSetup: %v", err)
			return
		}
		if err := k.FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := st.SchedWakeup(th, kernel.Word(host.ID()), kernel.Word(blocked)); err != nil {
			t.Errorf("SchedWakeup after fault: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woke {
		t.Fatal("blocked thread never woke through generated stub recovery")
	}
}

func TestGeneratedTimerStub(t *testing.T) {
	r := newRig(t)
	comp, err := timer.Register(r.sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	host := r.newHost(t, "gen-app")
	st, err := gentimer.NewClientStub(host, comp)
	if err != nil {
		t.Fatalf("NewClientStub: %v", err)
	}
	r.run(t, func(th *kernel.Thread) {
		id, err := st.TimerAlloc(th, kernel.Word(host.ID()), 300)
		if err != nil {
			t.Errorf("TimerAlloc: %v", err)
			return
		}
		if _, err := st.TimerPeriodicWait(th, kernel.Word(host.ID()), id); err != nil {
			t.Errorf("TimerPeriodicWait: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := st.TimerPeriodicWait(th, kernel.Word(host.ID()), id); err != nil {
			t.Errorf("TimerPeriodicWait after fault: %v", err)
		}
		if _, err := st.TimerFree(th, kernel.Word(host.ID()), id); err != nil {
			t.Errorf("TimerFree: %v", err)
		}
	})
}

func TestGeneratedMMStubSubtree(t *testing.T) {
	r := newRig(t)
	comp, err := mm.Register(r.sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	host := r.newHost(t, "gen-app")
	peer := r.newHost(t, "gen-peer")
	st, err := genmm.NewClientStub(host, comp)
	if err != nil {
		t.Fatalf("NewClientStub: %v", err)
	}
	r.run(t, func(th *kernel.Thread) {
		self := kernel.Word(host.ID())
		peerID := kernel.Word(peer.ID())
		if _, err := st.MmanGetPage(th, self, 0x1000, 0); err != nil {
			t.Errorf("MmanGetPage: %v", err)
			return
		}
		if _, err := st.MmanAliasPage(th, self, 0x1000, peerID, 0x2000); err != nil {
			t.Errorf("MmanAliasPage: %v", err)
			return
		}
		if _, err := st.MmanAliasPage(th, peerID, 0x2000, self, 0x3000); err != nil {
			t.Errorf("MmanAliasPage chain: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Release the root: D0 rebuilds the subtree before revocation.
		if _, err := st.MmanReleasePage(th, self, 0x1000); err != nil {
			t.Errorf("MmanReleasePage after fault: %v", err)
			return
		}
		if st.Tracked() != 0 {
			t.Errorf("Tracked = %d; want 0", st.Tracked())
		}
		if st.Metrics.WalkSteps < 3 {
			t.Errorf("walk steps = %d; want ≥ 3", st.Metrics.WalkSteps)
		}
	})
}

func TestGeneratedRamFSStub(t *testing.T) {
	r := newRig(t)
	comp, err := ramfs.Register(r.sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	host := r.newHost(t, "gen-app")
	st, err := genramfs.NewClientStub(host, comp)
	if err != nil {
		t.Fatalf("NewClientStub: %v", err)
	}
	cm := r.sys.Cbufs()
	r.run(t, func(th *kernel.Thread) {
		self := kernel.Word(host.ID())
		// Path buffer (retained).
		path := "/gen.dat"
		pbuf, err := cm.Alloc(cbuf.ComponentID(host.ID()), len(path))
		if err != nil {
			t.Errorf("Alloc path buf: %v", err)
			return
		}
		if err := cm.Write(pbuf, cbuf.ComponentID(host.ID()), 0, []byte(path)); err != nil {
			t.Errorf("Write path buf: %v", err)
			return
		}
		if err := cm.Map(pbuf, cbuf.ComponentID(comp)); err != nil {
			t.Errorf("Map path buf: %v", err)
			return
		}
		fd, err := st.FsOpen(th, self, kernel.Word(pbuf), kernel.Word(len(path)))
		if err != nil {
			t.Errorf("FsOpen: %v", err)
			return
		}
		// Write "abcdef" through a retained data buffer.
		data := []byte("abcdef")
		dbuf, err := cm.Alloc(cbuf.ComponentID(host.ID()), len(data))
		if err != nil {
			t.Errorf("Alloc data buf: %v", err)
			return
		}
		if err := cm.Write(dbuf, cbuf.ComponentID(host.ID()), 0, data); err != nil {
			t.Errorf("Write data buf: %v", err)
			return
		}
		if err := cm.Map(dbuf, cbuf.ComponentID(comp)); err != nil {
			t.Errorf("Map data buf: %v", err)
			return
		}
		if n, err := st.FsWrite(th, self, fd, kernel.Word(dbuf), kernel.Word(len(data))); err != nil || n != 6 {
			t.Errorf("FsWrite = (%d, %v); want (6, nil)", n, err)
			return
		}
		if _, err := st.FsLseek(th, fd, 2); err != nil {
			t.Errorf("FsLseek: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Read across the fault: content restored from storage (G1),
		// offset restored by the generated open-and-lseek walk.
		rbuf, err := cm.Alloc(cbuf.ComponentID(host.ID()), 3)
		if err != nil {
			t.Errorf("Alloc read buf: %v", err)
			return
		}
		if err := cm.Delegate(rbuf, cbuf.ComponentID(host.ID()), cbuf.ComponentID(comp)); err != nil {
			t.Errorf("Delegate: %v", err)
			return
		}
		n, err := st.FsRead(th, self, fd, kernel.Word(rbuf), 3)
		if err != nil {
			t.Errorf("FsRead after fault: %v", err)
			return
		}
		got, err := cm.Read(rbuf, cbuf.ComponentID(host.ID()), 0, int(n))
		if err != nil || !bytes.Equal(got, []byte("cde")) {
			t.Errorf("read back = (%q, %v); want cde", got, err)
		}
		if _, err := st.FsClose(th, self, fd); err != nil {
			t.Errorf("FsClose: %v", err)
		}
	})
}

// TestGeneratedServerStubStandalone exercises a generated server stub on a
// bare kernel: stale global IDs are resolved, and an unknown descriptor
// triggers the G0 creator upcall.
func TestGeneratedServerStubStandalone(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	spec, err := event.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	// Register the event server wrapped by the *generated* server stub
	// rather than the runtime's interpreting one.
	comp, err := sys.RegisterServer(spec, func() kernel.Service { return &event.Server{} })
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	// Wrap again explicitly to drive the generated Dispatch path directly.
	inner, err := sys.Kernel().Service(comp)
	if err != nil {
		t.Fatalf("Service: %v", err)
	}
	gstub := genevent.NewServerStub(sys, inner)
	if err := gstub.Init(&kernel.BootContext{Kernel: sys.Kernel(), Self: comp, Epoch: 0}); err != nil {
		t.Fatalf("Init: %v", err)
	}
	host, err := genrt.NewHost(sys, "gen-app")
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	st, err := genevent.NewClientStub(host, comp)
	if err != nil {
		t.Fatalf("NewClientStub: %v", err)
	}
	if _, err := sys.Kernel().CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := st.EvtSplit(th, kernel.Word(host.ID()), 0, 0)
		if err != nil {
			t.Errorf("EvtSplit: %v", err)
			return
		}
		// Drive the generated server stub directly with the live ID.
		if _, err := gstub.Dispatch(th, "evt_trigger", []kernel.Word{kernel.Word(host.ID()), id}); err != nil {
			t.Errorf("generated Dispatch: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

package kernel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFaultBetweenSnapshotAndDispatch is the regression test for the
// lock-free entry snapshot: a fault raised after Invoke read the component's
// (epoch, faulty) word but before the service dispatched must still unwind
// the invocation as a *Fault. The PhaseEntry hook runs exactly in that
// window, so failing the component there exercises the race
// deterministically.
func TestFaultBetweenSnapshotAndDispatch(t *testing.T) {
	k := New()
	comp := k.MustRegister(newEchoFactory(nil))
	armed := false
	k.SetInvokeHook(func(_ *Thread, dst ComponentID, _ string, phase InvokePhase) {
		if armed && phase == PhaseEntry {
			armed = false
			if err := k.FailComponent(dst); err != nil {
				t.Errorf("FailComponent: %v", err)
			}
		}
	})
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		armed = true
		_, err := k.Invoke(th, comp, "echo", 7)
		f, ok := AsFault(err)
		if !ok {
			t.Errorf("fault between snapshot and dispatch: got %v, want *Fault", err)
			return
		}
		if f.Comp != comp || f.Epoch != 0 {
			t.Errorf("fault = %+v, want comp %d epoch 0", f, comp)
		}
		// After the µ-reboot the fresh snapshot must serve invocations again.
		if _, err := k.Reboot(th, comp); err != nil {
			t.Errorf("Reboot: %v", err)
			return
		}
		if got, err := k.Invoke(th, comp, "echo", 9); err != nil || got != 9 {
			t.Errorf("post-reboot echo = %d, %v; want 9, nil", got, err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFaultInReturnWindow pins the exit-side semantics: a fault activated in
// the PhaseExit window does not revoke the completed operation's result, but
// the very next invocation observes the failed state from the snapshot.
func TestFaultInReturnWindow(t *testing.T) {
	k := New()
	comp := k.MustRegister(newEchoFactory(nil))
	armed := false
	k.SetInvokeHook(func(_ *Thread, dst ComponentID, _ string, phase InvokePhase) {
		if armed && phase == PhaseExit {
			armed = false
			if err := k.FailComponent(dst); err != nil {
				t.Errorf("FailComponent: %v", err)
			}
		}
	})
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		armed = true
		if got, err := k.Invoke(th, comp, "echo", 5); err != nil || got != 5 {
			t.Errorf("echo with exit-window fault = %d, %v; want 5, nil", got, err)
			return
		}
		if _, err := k.Invoke(th, comp, "echo", 6); err == nil {
			t.Error("invocation after exit-window fault succeeded, want *Fault")
		} else if _, ok := AsFault(err); !ok {
			t.Errorf("invocation after exit-window fault: got %v, want *Fault", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestUpcallCountedDistinctly checks the Upcall accounting split: upcalls
// contribute to both InvocationCount and UpcallCount, plain invocations only
// to the former.
func TestUpcallCountedDistinctly(t *testing.T) {
	k := New()
	comp := k.MustRegister(newEchoFactory(nil))
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		for i := 0; i < 3; i++ {
			if _, err := k.Invoke(th, comp, "echo", 1); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}
		for i := 0; i < 2; i++ {
			if _, err := k.Upcall(th, comp, "echo", 1); err != nil {
				t.Errorf("Upcall: %v", err)
			}
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := k.InvocationCount(); got != 5 {
		t.Errorf("InvocationCount = %d, want 5 (plain + upcalls)", got)
	}
	if got := k.UpcallCount(); got != 2 {
		t.Errorf("UpcallCount = %d, want 2", got)
	}
}

// TestConcurrentReadersDuringFaults is the -race stress test for the
// lock-free fast path: one simulated thread drives a SWIFI-style
// fail/reboot/retry loop at full speed while an external injector goroutine
// flips the component into the failed state and monitor goroutines hammer
// every lock-free read path (Epoch, Faulty, Executing, ReflectThreads,
// counters). The assertions are weak on purpose — the payload is the race
// detector observing the interleavings.
func TestConcurrentReadersDuringFaults(t *testing.T) {
	const iters = 4000

	k := New()
	comp := k.MustRegister(newEchoFactory(nil))
	var stop atomic.Bool
	var th atomic.Pointer[Thread]

	if _, err := k.CreateThread(nil, "driver", 10, func(tt *Thread) {
		th.Store(tt)
		for i := 0; i < iters; i++ {
			_, err := k.Invoke(tt, comp, "echo", Word(i))
			if err == nil {
				continue
			}
			f, ok := AsFault(err)
			if !ok {
				t.Errorf("iter %d: non-fault error %v", i, err)
				return
			}
			if _, rerr := k.EnsureRebooted(tt, comp, f.Epoch); rerr != nil {
				t.Errorf("iter %d: EnsureRebooted: %v", i, rerr)
				return
			}
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}

	var wg sync.WaitGroup
	// External fault injector: races FailComponent against the running
	// thread's snapshot reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := k.FailComponent(comp); err != nil {
				return
			}
		}
	}()
	// Lock-free monitors.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink uint64
			for !stop.Load() {
				if e, err := k.Epoch(comp); err == nil {
					sink += e
				}
				if k.Faulty(comp) {
					sink++
				}
				if tt := th.Load(); tt != nil {
					sink += uint64(k.Executing(tt))
					sink += uint64(tt.Executing())
				}
				sink += k.InvocationCount() + k.UpcallCount()
				for _, info := range k.ReflectThreads() {
					sink += uint64(info.Executing)
				}
				if k.ComponentName(comp) == "" {
					sink++
				}
				if k.Halted() {
					sink++
				}
			}
			_ = sink
		}()
	}

	err := k.Run()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := k.InvocationCount(); got == 0 {
		t.Error("InvocationCount = 0, want > 0")
	}
	// The injector may re-fail the component after the driver's last
	// retry, so no faulty/epoch end-state is asserted — only that the
	// lock-free read still resolves.
	if _, err := k.Epoch(comp); err != nil {
		t.Errorf("Epoch: %v", err)
	}
}

// TestReadySeqSkipsPreemptionCheck pins the fast-path scheduling contract:
// an invocation during which a wakeup enqueued a higher-priority thread
// still preempts at the invocation boundary (the readySeq slow path), and
// the woken thread runs before the driver's next invocation.
func TestReadySeqSkipsPreemptionCheck(t *testing.T) {
	k := New()
	comp := k.MustRegister(newEchoFactory(nil))
	var order []string
	var hiID ThreadID

	if _, err := k.CreateThread(nil, "lo", 20, func(lo *Thread) {
		// Invocation that wakes the blocked high-priority thread mid-call:
		// the preemption must be deferred to the boundary, then taken.
		if _, err := k.Invoke(lo, comp, "wake", Word(hiID)); err != nil {
			t.Errorf("wake: %v", err)
			return
		}
		order = append(order, "lo-after-wake")
	}); err != nil {
		t.Fatalf("CreateThread lo: %v", err)
	}
	var err error
	hiID, err = k.CreateThread(nil, "hi", 5, func(hi *Thread) {
		if _, err := k.Invoke(hi, comp, "block"); err != nil {
			t.Errorf("block: %v", err)
			return
		}
		order = append(order, "hi-woken")
	})
	if err != nil {
		t.Fatalf("CreateThread hi: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"hi-woken", "lo-after-wake"}
	if len(order) != len(want) || order[0] != want[0] || order[1] != want[1] {
		t.Errorf("order = %v, want %v", order, want)
	}
}

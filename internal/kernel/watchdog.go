package kernel

import (
	"sort"

	"superglue/internal/fault"
)

// The kernel watchdog closes the latent-fault gap of the paper's fail-stop
// model. The paper detects faults as hardware exceptions; an unbounded loop
// raises no exception, so the machine hangs and the campaign books the trial
// as "not recovered (other)". A watchdog timer — standard equipment on the
// embedded platforms SuperGlue targets — converts such hangs into component
// faults instead:
//
//   - A thread spinning inside a component (HangCurrent, the SWIFI
//     EffectHang manifestation) burns its per-component virtual-time
//     invocation budget; when the budget expires the watchdog fires,
//     attributes the hang to the innermost component on the thread's
//     invocation stack, marks that component failed, and unwinds the
//     invocation with the same *Fault a fail-stop detection would deliver.
//     The client stub then µ-reboots and retries exactly as for any other
//     fault.
//
//   - A scheduling deadlock (live threads, none runnable, none sleeping,
//     no idle work) is attributed to the component the most threads are
//     blocked inside; that component is marked failed and its threads are
//     diverted back to their clients with a pending *Fault, so recovery —
//     not machine death — resolves the wedge. Interventions are bounded:
//     a deadlock the watchdog cannot resolve within the budget still halts
//     the machine with ErrHang.
//
// Only hangs attributable to no component (a thread spinning in home/
// application code, or threads blocked outside any component) remain
// terminal: with the watchdog enabled, Run returns ErrHang exactly for
// those.
//
// The watchdog is off by default so the baseline Table II campaign keeps
// the paper's fail-stop semantics; EnableWatchdog opts a machine in.

// Default watchdog parameters.
const (
	// DefaultWatchdogBudget is the per-component invocation budget in
	// simulated microseconds: the virtual time a spinning thread consumes
	// before the watchdog timer fires.
	DefaultWatchdogBudget Time = 1000
	// DefaultWatchdogInterventions bounds deadlock-attribution
	// interventions per run; past it the machine halts with ErrHang.
	DefaultWatchdogInterventions = 32
)

// WatchdogConfig parameterizes the kernel watchdog. Zero fields take the
// defaults above.
type WatchdogConfig struct {
	// Budget is the default per-component virtual-time invocation budget
	// (µs) charged when a hang is caught. SetInvokeBudget overrides it per
	// component.
	Budget Time
	// MaxInterventions bounds the number of deadlock attributions; the
	// watchdog refuses further interventions once exhausted, so a
	// non-converging divert/redo/block cycle still terminates in ErrHang.
	MaxInterventions int
}

// WatchdogStats reports what the watchdog did during a run.
type WatchdogStats struct {
	// HangsCaught counts unbounded loops converted into component faults.
	HangsCaught int
	// DeadlocksAttributed counts no-runnable conditions attributed to a
	// component and resolved by diverting its blocked threads.
	DeadlocksAttributed int
	// Unattributable counts hangs no component could be blamed for; these
	// remain terminal (ErrHang).
	Unattributable int
	// LastComp is the most recently blamed component.
	LastComp ComponentID
}

// EnableWatchdog turns the watchdog on with the given configuration.
func (k *Kernel) EnableWatchdog(cfg WatchdogConfig) {
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultWatchdogBudget
	}
	if cfg.MaxInterventions <= 0 {
		cfg.MaxInterventions = DefaultWatchdogInterventions
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.wdEnabled = true
	k.wdBudget = cfg.Budget
	k.wdMax = cfg.MaxInterventions
}

// WatchdogEnabled reports whether the watchdog is armed.
func (k *Kernel) WatchdogEnabled() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.wdEnabled
}

// WatchdogStats returns a snapshot of the watchdog counters.
func (k *Kernel) WatchdogStats() WatchdogStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.wdStats
}

// SetInvokeBudget overrides the watchdog's virtual-time invocation budget
// for one component (0 restores the config default). Services set this at
// registration to reflect how long their longest legitimate operation runs.
func (k *Kernel) SetInvokeBudget(comp ComponentID, budget Time) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, err := k.lookup(comp)
	if err != nil {
		return err
	}
	c.budget = budget
	return nil
}

// InvokeBudget returns the effective watchdog budget for a component.
func (k *Kernel) InvokeBudget(comp ComponentID) Time {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.budgetForLocked(comp)
}

func (k *Kernel) budgetForLocked(comp ComponentID) Time {
	if c := k.comp(comp); c != nil && c.budget > 0 {
		return c.budget
	}
	if k.wdBudget > 0 {
		return k.wdBudget
	}
	return DefaultWatchdogBudget
}

// watchdogHangLocked handles a hang on the running thread. If the watchdog
// is armed and the thread is executing inside a component, it charges the
// component's invocation budget to the virtual clock (the watchdog timer
// elapsing), marks the component failed, and arms a *Fault that Invoke
// delivers when the hook returns — converting the latent fault into the
// ordinary fail-stop recovery path. Returns false when the hang must take
// the legacy park-forever path (watchdog off, or unattributable).
func (k *Kernel) watchdogHangLocked(t *Thread) bool {
	if !k.wdEnabled {
		return false
	}
	comp := t.topOfStackLocked()
	if comp == 0 {
		k.wdStats.Unattributable++
		return false
	}
	c := k.comp(comp)
	if c == nil {
		k.wdStats.Unattributable++
		return false
	}
	// The spinning thread burns the budget on its own core; the global
	// mirror tracks it (t is the running thread, so the mirror shows its
	// core's clock).
	budget := k.budgetForLocked(comp)
	k.cores[t.core].clock += budget
	k.clock.Add(int64(budget))
	epoch, _ := c.snapshot()
	// Classify the hang: HangCurrentAs stamps the thread with the kind it
	// is simulating (livelock vs plain hang); legacy HangCurrent leaves it
	// zero, which means KindHang.
	kind := t.hangKind
	if kind == fault.KindUnknown {
		kind = fault.KindHang
	}
	t.hangKind = fault.KindUnknown
	sev := fault.DefaultSeverity(kind)
	c.markFaultyAs(kind, sev)
	k.wdStats.HangsCaught++
	k.wdStats.LastComp = comp
	t.watchdogFault = &Fault{Comp: comp, Epoch: epoch, Kind: kind, Severity: sev}
	k.tracer.Load().RecordFault(int32(comp), int32(t.id), "watchdog:hang", k.clock.Load(), epoch, kind, sev)
	return true
}

// watchdogDivertLocked attributes a no-runnable condition (live threads,
// none runnable, none sleeping, no idle work) to the component the most
// blocked threads are stuck inside, marks it failed, and diverts those
// threads back to their clients with a pending *Fault — the same eager
// wakeup a µ-reboot performs, but triggered by the watchdog rather than a
// detected exception. Returns true when it made threads runnable, so the
// scheduler should retry instead of halting.
func (k *Kernel) watchdogDivertLocked() bool {
	if !k.wdEnabled || k.halted.Load() {
		return false
	}
	if k.wdStats.DeadlocksAttributed >= k.wdMax {
		return false
	}
	// Attribute to the component with the most blocked threads. The
	// candidate walk is per-core: each core contributes the threads homed
	// on it, so a deadlock cycle that spans cores (A on core 0 waiting in a
	// component whose threads wait on core 1 and vice versa) aggregates
	// candidates from every core rather than assuming one global run queue.
	// Counts are summed across cores; the argmax tie-break stays
	// deterministic (lowest component ID).
	counts := make(map[ComponentID]int)
	for ci := range k.cores {
		for _, t := range k.threads {
			if int(t.core) != ci {
				continue
			}
			if t.state == ThreadBlocked && t.blockedIn != 0 {
				counts[t.blockedIn]++
			}
		}
	}
	suspects := make([]ComponentID, 0, len(counts))
	for comp := range counts {
		suspects = append(suspects, comp)
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
	var blamed ComponentID
	for _, comp := range suspects {
		if blamed == 0 || counts[comp] > counts[blamed] {
			blamed = comp
		}
	}
	if blamed == 0 {
		k.wdStats.Unattributable++
		return false
	}
	c := k.comp(blamed)
	if c == nil {
		k.wdStats.Unattributable++
		return false
	}
	// The watchdog timer is machine-level: every core's clock advances by
	// the budget (with one core this is the legacy global-clock charge).
	budget := k.budgetForLocked(blamed)
	for ci := range k.cores {
		k.cores[ci].clock += budget
	}
	k.clock.Add(int64(budget))
	epoch, _ := c.snapshot()
	c.markFaultyAs(fault.KindHang, fault.DefaultSeverity(fault.KindHang))
	k.wdStats.DeadlocksAttributed++
	k.wdStats.LastComp = blamed
	k.tracer.Load().RecordFault(int32(blamed), 0, "watchdog:deadlock", k.clock.Load(), epoch,
		fault.KindHang, fault.DefaultSeverity(fault.KindHang))
	for _, bt := range k.threads {
		if bt.state == ThreadBlocked && bt.blockedIn == blamed {
			bt.pendingFault = &Fault{Comp: blamed, Epoch: epoch,
				Kind: fault.KindHang, Severity: fault.DefaultSeverity(fault.KindHang)}
			bt.state = ThreadRunnable
			k.enqueueLocked(bt)
		}
	}
	return true
}

// takeWatchdogFault consumes (and clears) the watchdog fault armed on the
// thread by a caught hang, if any. Lock-free: the fault is armed by the
// thread itself (HangCurrent runs on the hanging thread) and consumed by the
// thread itself in Invoke, so no other goroutine ever touches the field.
func (t *Thread) takeWatchdogFault() *Fault {
	f := t.watchdogFault
	t.watchdogFault = nil
	return f
}

package kernel

import "math/rand"

// Reg names one of the eight modeled 32-bit registers of the paper's SWIFI
// target: six general-purpose registers plus the stack and frame pointers.
type Reg int

// The modeled register file (x86-32 naming, as in the paper's platform).
const (
	RegEAX Reg = iota // return-value register
	RegEBX
	RegECX // conventional loop-counter register
	RegEDX
	RegESI
	RegEDI
	RegESP // stack pointer
	RegEBP // frame pointer
	// NumRegs is the register-file size; injections pick uniformly in
	// [0, NumRegs).
	NumRegs
)

// String implements fmt.Stringer.
func (r Reg) String() string {
	names := [...]string{"EAX", "EBX", "ECX", "EDX", "ESI", "EDI", "ESP", "EBP"}
	if r < 0 || int(r) >= len(names) {
		return "REG?"
	}
	return names[r]
}

// RegClass describes what a register holds at the moment of an injection,
// which determines how a bit-flip manifests.
type RegClass int

// Register content classes.
const (
	// ClassDead means the register's value is dead: it will be overwritten
	// before the next read, so a flip is never observed (undetected fault).
	ClassDead RegClass = iota + 1
	// ClassData means the register holds live data that will be written
	// into component state; a flip corrupts that state and is detected by
	// the fail-stop machinery immediately after the corrupting write.
	ClassData
	// ClassPtr means the register holds a pointer into the component's own
	// state; a flipped pointer is caught by the component's validation
	// (fail-stop crash, recoverable).
	ClassPtr
	// ClassLoop means the register is a live loop counter; a flip can turn
	// a bounded loop into an unbounded one (latent fault, system hang).
	ClassLoop
	// ClassStackPtr / ClassFramePtr mark ESP/EBP. A flip that is
	// dereferenced before detection can leave the component's mapped
	// segment entirely and take down the machine (segfault).
	ClassStackPtr
	ClassFramePtr
	// ClassRetVal marks EAX during the return window (PhaseExit), where a
	// flip can propagate a corrupted return value into the client.
	ClassRetVal
)

// RegFile is one thread's modeled register file. The simulated services do
// not compute through it; it exists so the SWIFI injector can flip real bits
// and derive fault outcomes mechanistically.
type RegFile struct {
	Val   [NumRegs]uint32
	Class [NumRegs]RegClass
}

// Simulated address-space layout constants. Components occupy a 16-bit
// (64 KiB) mapped segment; a pointer whose flip moves it by ≥ segmentBits
// leaves mapped memory.
const (
	// StackBase is where simulated thread stacks live.
	StackBase uint32 = 0xbf80_0000
	// HeapBase is where simulated component heaps live.
	HeapBase uint32 = 0x0804_8000
	// SegmentBits is the size, in address bits, of a component's mapped
	// segment. A flipped pointer bit at or above this index points outside
	// the segment.
	SegmentBits = 16
)

// RegProfile characterizes how the code of one component uses registers, as
// a first-order model derived from its workload: how often general-purpose
// registers are dead, hold pointers, or act as loop counters, and how likely
// a corrupted stack/frame pointer is dereferenced before the fail-stop check
// fires. Profiles are the per-service knob that makes (for example) the
// scheduler — whose context-switch path is stack-heavy — suffer more
// segfault outcomes than the filesystem, as observed in the paper.
type RegProfile struct {
	// DeadFrac is the probability a general-purpose register is dead.
	DeadFrac float64
	// PtrFrac is the probability a live GPR holds a pointer into the
	// component's state.
	PtrFrac float64
	// LoopFrac is the probability a live GPR is a loop counter whose
	// corruption produces an unbounded loop.
	LoopFrac float64
	// StackUseFrac is the probability that a corrupted stack/frame pointer
	// is dereferenced (e.g., by a deep call or context switch) before it
	// is reloaded; stack pointers are almost always live, so this is high.
	StackUseFrac float64
	// MappedBits is the log2 extent of the component's mapped memory
	// footprint around its stack: a flipped pointer bit at or above this
	// index leaves mapped memory entirely (machine-level segfault), while
	// lower bits land inside the component (detected, recoverable).
	// Small, stack-heavy components (the scheduler) have small footprints
	// and therefore more segfault outcomes; data-heavy ones (the
	// filesystem) absorb most wild pointers.
	MappedBits int
	// RetValFrac is the probability that, during the return window, EAX's
	// corrupted value still parses as a plausible result and therefore
	// escapes the stub's validation into the client.
	RetValFrac float64
}

// DefaultRegProfile is a middle-of-the-road profile used until a service
// installs its own.
func DefaultRegProfile() RegProfile {
	return RegProfile{
		DeadFrac:     0.05,
		PtrFrac:      0.25,
		LoopFrac:     0.02,
		StackUseFrac: 0.90,
		MappedBits:   20,
		RetValFrac:   0.30,
	}
}

// RegProfile returns the register-usage profile installed for a component.
func (k *Kernel) RegProfile(id ComponentID) RegProfile {
	k.mu.Lock()
	defer k.mu.Unlock()
	c := k.comp(id)
	if c == nil {
		return DefaultRegProfile()
	}
	return c.profile
}

// Materialize populates the register file for one moment of execution inside
// a component, drawing general-purpose register classes from the profile.
// ESP/EBP always hold stack addresses; EAX holds the in-flight return value
// during the PhaseExit window (class ClassRetVal) and is otherwise a GPR.
func (f *RegFile) Materialize(p RegProfile, phase InvokePhase, rng *rand.Rand) {
	for r := RegEAX; r < RegESP; r++ {
		if r == RegEAX && phase == PhaseExit {
			// EAX holds the staged, in-flight return value: classify it
			// but do not overwrite it.
			f.Class[r] = ClassRetVal
			continue
		}
		roll := rng.Float64()
		switch {
		case roll < p.DeadFrac:
			f.Class[r] = ClassDead
			f.Val[r] = rng.Uint32()
		case roll < p.DeadFrac+p.PtrFrac:
			f.Class[r] = ClassPtr
			f.Val[r] = HeapBase + rng.Uint32()%(1<<SegmentBits)
		case roll < p.DeadFrac+p.PtrFrac+p.LoopFrac:
			f.Class[r] = ClassLoop
			f.Val[r] = uint32(rng.Intn(256))
		default:
			f.Class[r] = ClassData
			f.Val[r] = uint32(rng.Intn(1 << 20))
		}
	}
	f.Class[RegESP] = ClassStackPtr
	f.Val[RegESP] = StackBase + uint32(rng.Intn(1<<12))&^0x3
	f.Class[RegEBP] = ClassFramePtr
	f.Val[RegEBP] = f.Val[RegESP] + uint32(rng.Intn(1<<8))&^0x3
	if phase == PhaseExit {
		f.Class[RegEAX] = ClassRetVal
	}
}

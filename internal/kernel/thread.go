package kernel

import (
	"errors"
	"fmt"
	"sync/atomic"

	"superglue/internal/fault"
)

// ThreadState is the life-cycle state of a simulated thread.
type ThreadState int

// Thread states.
const (
	// ThreadRunnable means the thread is on the ready queue.
	ThreadRunnable ThreadState = iota + 1
	// ThreadRunning means the thread currently owns the (single) core.
	ThreadRunning
	// ThreadBlocked means the thread is blocked inside a component (e.g.,
	// contending a lock or waiting on an event) until woken explicitly.
	ThreadBlocked
	// ThreadSleeping means the thread is blocked until a simulated time.
	ThreadSleeping
	// ThreadExited means the thread's entry function returned.
	ThreadExited
)

// String implements fmt.Stringer.
func (s ThreadState) String() string {
	switch s {
	case ThreadRunnable:
		return "runnable"
	case ThreadRunning:
		return "running"
	case ThreadBlocked:
		return "blocked"
	case ThreadSleeping:
		return "sleeping"
	case ThreadExited:
		return "exited"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Thread is one simulated thread. Threads execute cooperatively: exactly one
// thread runs at a time, and control transfers only at explicit kernel
// operations (Block, Sleep, Yield, Wakeup-preemption, thread exit).
//
// A Thread value is only valid on the goroutine the kernel created for it;
// kernel entry points that take a *Thread must be passed the running thread.
type Thread struct {
	id   ThreadID
	name string
	prio int // lower value = higher priority

	k     *Kernel
	entry func(*Thread)

	state     ThreadState
	seq       uint64 // ready-queue arrival order for FIFO tie-breaking
	resume    chan struct{}
	killed    bool
	blockedIn ComponentID // valid while state == ThreadBlocked
	wakeAt    Time        // valid while state == ThreadSleeping

	// core is the simulated core the thread is scheduled on. It is owned
	// like invStack: mutated only by the running thread itself (migration,
	// cross-core invocation) or at creation, and read by the kernel under
	// k.mu while the thread is parked.
	core int32

	// migPending marks a migration whose latency is still being measured:
	// migStart is the source core's clock at departure and migFrom the
	// source core; the dispatcher settles the measurement (destination
	// clock − migStart, the migration charge plus any queueing delay on the
	// destination) when the thread is next dispatched. migInvoke
	// distinguishes a cross-core invocation entry from an explicit or
	// return migration. All four are guarded by k.mu.
	migPending bool
	migFrom    int32
	migStart   Time
	migInvoke  bool

	// crossCoreInv reports, while an invocation hook runs, whether the
	// current invocation migrated the thread to the server's home core
	// (set before PhaseEntry, restored after the invocation returns). Owned
	// by the thread. The SWIFI injector keys migration-fault arming on it.
	crossCoreInv bool

	// wakePending latches a Wakeup delivered while the thread was not
	// blocked, so the next Block returns immediately instead of losing the
	// wakeup — the dependency-counting semantics of COMPOSITE's
	// sched_blk/sched_wakeup pair.
	wakePending bool

	// lastParkWasBlock distinguishes a thread woken from Block from one
	// woken from Sleep; a µ-reboot diverting a woken-but-not-yet-run
	// thread re-latches its consumed wakeup only in the Block case.
	lastParkWasBlock bool

	// redoCredit marks a wakePending latch that was granted as part of a
	// fault divert; it is dropped (if unconsumed) when the retried
	// invocation completes, so it cannot leak into later blocking calls
	// as a spurious wakeup. creditFn names the diverted function, so the
	// credit survives recovery-walk invocations of other functions and is
	// only retired when the retried call itself completes.
	redoCredit bool
	creditFn   string

	// noPreempt suppresses preemption while > 0: recovery walks run as
	// short non-preemptible critical sections so a half-recovered
	// descriptor is never observed by another thread (the stub-lock
	// equivalent). Blocking still switches; only involuntary preemption is
	// deferred.
	noPreempt int

	// pendingFault diverts a blocked thread back to its client: when the
	// component a thread is blocked in is µ-rebooted, the thread is woken
	// eagerly and its Block call returns this fault.
	pendingFault *Fault

	// watchdogFault is armed by the watchdog when it catches this thread
	// hanging inside a component: Invoke consumes it when the invocation
	// hook returns and unwinds with the fault instead of delivering a
	// result, turning the latent fault into the fail-stop recovery path.
	watchdogFault *Fault

	// injectedFault is a one-shot transient fault (message loss) armed by
	// InjectTransientFault from an entry hook; Invoke consumes it when the
	// hook returns and unwinds without dispatching. injectDup is the
	// analogous one-shot duplicate-delivery flag (message duplication):
	// Invoke dispatches the operation twice. Both are owned by the thread
	// (armed and consumed while it runs), so no locking is needed.
	injectedFault *Fault
	injectDup     bool

	// hangKind classifies the next watchdog-caught hang on this thread
	// (fault.KindHang vs fault.KindLivelock); set by HangCurrentAs before
	// parking, consumed by watchdogHangLocked. Zero means KindHang.
	hangKind fault.Kind

	// invStack records the components the thread is executing in, outermost
	// first. Entry 0 is absent for "home" (application) execution. fnStack
	// holds the corresponding interface function names.
	//
	// Both slices are owned by the thread: in this cooperative single-core
	// kernel only the running thread pushes and pops them (lock-free), and
	// the kernel reads them from other threads only while those threads are
	// parked under k.mu. Cross-thread readers that cannot rely on
	// quiescence use curComp instead.
	invStack []ComponentID
	fnStack  []string

	// curComp mirrors the top of invStack (0 for home execution) for
	// lock-free cross-thread readers: Kernel.Executing, ReflectThreads, and
	// external monitors racing the running thread.
	curComp atomic.Int32

	// regs is the modeled register file while executing inside a component;
	// the SWIFI injector flips bits here.
	regs RegFile

	err error // entry panic converted to error, reported via Kernel halt
}

// threadKilled is the panic payload used to unwind a simulated thread's
// goroutine when the machine halts. It never escapes the thread trampoline.
type threadKilled struct{}

// topOfStackLocked returns the innermost component of the thread's
// invocation stack (kernel lock held).
func (t *Thread) topOfStackLocked() ComponentID {
	if n := len(t.invStack); n > 0 {
		return t.invStack[n-1]
	}
	return 0
}

// publishTop refreshes the curComp mirror from the invocation stack.
// Owner-only: called by the thread itself after a push or pop.
func (t *Thread) publishTop() {
	if n := len(t.invStack); n > 0 {
		t.curComp.Store(int32(t.invStack[n-1]))
	} else {
		t.curComp.Store(0)
	}
}

// ID returns the thread's identifier.
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Prio returns the thread's fixed priority (lower value = higher priority).
func (t *Thread) Prio() int { return t.prio }

// Core returns the simulated core the thread is scheduled on. Call from the
// thread itself (or while it is quiescent): the field is owner-mutated on
// migration.
func (t *Thread) Core() int { return int(t.core) }

// CrossCoreInvocation reports whether the invocation the thread currently
// executes migrated it to the server's home core. It is meaningful on the
// thread itself — invocation hooks use it to recognize cross-core entries.
func (t *Thread) CrossCoreInvocation() bool { return t.crossCoreInv }

// Kernel returns the kernel the thread belongs to.
func (t *Thread) Kernel() *Kernel { return t.k }

// State returns the thread's current state.
func (t *Thread) State() ThreadState {
	t.k.mu.Lock()
	defer t.k.mu.Unlock()
	return t.state
}

// Executing returns the innermost component the thread is executing in, or
// zero if it is running application code. It reads the atomically published
// stack top, so it is safe from any goroutine without the kernel lock.
func (t *Thread) Executing() ComponentID {
	return ComponentID(t.curComp.Load())
}

// Regs returns a pointer to the thread's modeled register file. Only the
// running thread (or an invocation hook running on it) may touch it.
func (t *Thread) Regs() *RegFile { return &t.regs }

// ErrNotCurrent reports a kernel call made on behalf of a thread that is not
// the running thread — a bug in the calling code.
var ErrNotCurrent = errors.New("kernel: calling thread is not the running thread")

// CreateThread creates a simulated thread that will execute entry on the
// creator's core (core 0 when creator is nil). It may be called before Run
// (to seed the system) or by a running thread; in the latter case creator is
// the running thread and a higher-priority new thread on the same core
// preempts it immediately. Pass creator == nil when calling from outside the
// simulation.
func (k *Kernel) CreateThread(creator *Thread, name string, prio int, entry func(*Thread)) (ThreadID, error) {
	core := 0
	if creator != nil {
		core = int(creator.core)
	}
	return k.CreateThreadOn(creator, name, prio, core, entry)
}

// CreateThreadOn is CreateThread with an explicit core placement for the new
// thread.
func (k *Kernel) CreateThreadOn(creator *Thread, name string, prio int, core int, entry func(*Thread)) (ThreadID, error) {
	if entry == nil {
		return 0, errors.New("kernel: nil thread entry")
	}
	if core < 0 || core >= len(k.cores) {
		return 0, fmt.Errorf("kernel: thread placed on core %d of a %d-core machine", core, len(k.cores))
	}
	k.mu.Lock()
	if k.halted.Load() {
		k.mu.Unlock()
		return 0, ErrHalted
	}
	if creator != nil && creator != k.current {
		k.mu.Unlock()
		return 0, ErrNotCurrent
	}
	t := &Thread{
		id:     ThreadID(len(k.threads) + 1),
		name:   name,
		prio:   prio,
		core:   int32(core),
		k:      k,
		entry:  entry,
		state:  ThreadRunnable,
		resume: make(chan struct{}, 1),
	}
	k.threads = append(k.threads, t)
	k.enqueueLocked(t)
	go k.trampoline(t)

	if creator != nil {
		k.preemptLocked(creator)
	}
	k.mu.Unlock()
	return t.id, nil
}

// MigrateThread moves the calling thread to another core: the destination
// clock is advanced Lamport-style to at least the source clock plus the
// migration cost, and the thread yields so the virtual-time merge decides
// when the destination core runs it. Migrating to the current core is a
// no-op.
func (k *Kernel) MigrateThread(t *Thread, core int) error {
	if core < 0 || core >= len(k.cores) {
		return fmt.Errorf("kernel: migration to core %d of a %d-core machine", core, len(k.cores))
	}
	if k.halted.Load() {
		return ErrHalted
	}
	if t != k.current {
		return ErrNotCurrent
	}
	if int32(core) == t.core {
		return nil
	}
	k.migrate(t, int32(core), false)
	return nil
}

// migrate moves the running thread t to core dst: it synchronizes the
// destination clock (dst.clock = max(dst.clock, src.clock) + migration
// cost), re-homes the thread, and yields so the merge can schedule
// lower-clock cores first; it returns once t is dispatched on dst. forInvoke
// marks a cross-core invocation entry (counted separately). No deferred
// unlock: the park path unlocks itself when the machine halts mid-park.
func (k *Kernel) migrate(t *Thread, dst int32, forInvoke bool) {
	k.mu.Lock()
	if k.halted.Load() || t != k.current || dst == t.core {
		k.mu.Unlock()
		return
	}
	src := &k.cores[t.core]
	d := &k.cores[dst]
	if d.clock < src.clock {
		d.clock = src.clock
	}
	d.clock += k.migCost
	d.migrations++
	if forInvoke {
		d.crossInv++
	}
	t.migPending = true
	t.migFrom = t.core
	t.migStart = src.clock
	t.migInvoke = forInvoke
	t.core = dst
	t.state = ThreadRunnable
	k.enqueueLocked(t)
	k.switchFromLocked(t)
	k.mu.Unlock()
}

// Thread looks up a thread by ID.
func (k *Kernel) Thread(id ThreadID) (*Thread, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if id < 1 || int(id) > len(k.threads) {
		return nil, fmt.Errorf("kernel: no such thread %d", id)
	}
	return k.threads[id-1], nil
}

// trampoline is the goroutine body hosting one simulated thread. It parks
// until first dispatched, runs the entry function, and hands the core to the
// next thread on return. A threadKilled panic (machine halt) unwinds
// silently; any other panic halts the machine with an error.
func (k *Kernel) trampoline(t *Thread) {
	// Park until first dispatched.
	<-t.resume
	k.mu.Lock()
	killed := t.killed
	k.mu.Unlock()
	if killed {
		return
	}

	defer func() {
		r := recover()
		if _, ok := r.(threadKilled); ok || r == nil {
			if r != nil {
				return // machine halted; goroutine unwinds silently
			}
			k.exitCurrent(t)
			return
		}
		// A real panic in simulated code: halt the machine with the error.
		k.mu.Lock()
		t.state = ThreadExited
		k.haltLocked(fmt.Errorf("kernel: panic on thread %d (%s): %v", t.id, t.name, r))
		k.mu.Unlock()
	}()
	t.entry(t)
}

// exitCurrent retires the running thread and dispatches the next one.
func (k *Kernel) exitCurrent(t *Thread) {
	k.mu.Lock()
	defer k.mu.Unlock()
	t.state = ThreadExited
	k.current = nil
	if k.halted.Load() {
		return
	}
	next := k.pickReadyLocked()
	if next != nil {
		k.dispatchLocked(next)
		return
	}
	k.noRunnableLocked()
}

// Block parks the calling thread until another thread wakes it with Wakeup.
// It returns nil on a normal wakeup. If the component the thread is blocked
// in fails and is µ-rebooted, the thread is woken eagerly (mechanism T0) and
// Block returns the *Fault; service code must propagate that error up the
// invocation path unmodified so the client stub can run recovery.
func (k *Kernel) Block(t *Thread) error {
	k.mu.Lock()
	if k.halted.Load() {
		k.mu.Unlock()
		return ErrHalted
	}
	if t != k.current {
		k.mu.Unlock()
		return ErrNotCurrent
	}
	if t.wakePending {
		t.wakePending = false
		t.redoCredit = false
		t.creditFn = ""
		k.mu.Unlock()
		return nil
	}
	t.state = ThreadBlocked
	t.lastParkWasBlock = true
	if n := len(t.invStack); n > 0 {
		t.blockedIn = t.invStack[n-1]
	} else {
		t.blockedIn = 0
	}
	k.switchFromLocked(t)
	t.blockedIn = 0
	if f := t.pendingFault; f != nil {
		t.pendingFault = nil
		k.mu.Unlock()
		return f
	}
	k.mu.Unlock()
	return nil
}

// Sleep parks the calling thread for d microseconds of simulated time.
func (k *Kernel) Sleep(t *Thread, d Time) error {
	if d < 0 {
		return fmt.Errorf("kernel: negative sleep %d", d)
	}
	k.mu.Lock()
	if k.halted.Load() {
		k.mu.Unlock()
		return ErrHalted
	}
	if t != k.current {
		k.mu.Unlock()
		return ErrNotCurrent
	}
	t.state = ThreadSleeping
	t.lastParkWasBlock = false
	t.wakeAt = k.cores[t.core].clock + d
	if n := len(t.invStack); n > 0 {
		t.blockedIn = t.invStack[n-1]
	} else {
		t.blockedIn = 0
	}
	k.switchFromLocked(t)
	t.blockedIn = 0
	var err error
	if f := t.pendingFault; f != nil {
		t.pendingFault = nil
		err = f
	}
	k.mu.Unlock()
	return err
}

// Wakeup moves a blocked or sleeping thread to the ready queue. If the woken
// thread has higher priority than the caller, the caller is preempted
// immediately (single-core preemptive priority scheduling). Waking a thread
// that is not blocked latches the wakeup so the thread's next Block returns
// immediately — the dependency-counting semantics of COMPOSITE's
// sched_blk/sched_wakeup pair, which also makes wakeup replay during
// recovery idempotent. Waking an exited thread is a no-op.
func (k *Kernel) Wakeup(caller *Thread, id ThreadID) error {
	// No deferred unlock: preemptLocked can park this goroutine, and the
	// halt-unwind path releases the lock itself.
	k.mu.Lock()
	if k.halted.Load() {
		k.mu.Unlock()
		return ErrHalted
	}
	if caller != nil && caller != k.current {
		k.mu.Unlock()
		return ErrNotCurrent
	}
	if id < 1 || int(id) > len(k.threads) {
		k.mu.Unlock()
		return fmt.Errorf("kernel: wakeup of unknown thread %d", id)
	}
	t := k.threads[id-1]
	if t.state != ThreadBlocked && t.state != ThreadSleeping {
		if t.state != ThreadExited {
			t.wakePending = true
		}
		k.mu.Unlock()
		return nil
	}
	t.state = ThreadRunnable
	k.enqueueLocked(t)
	if caller != nil {
		k.preemptLocked(caller)
	}
	k.mu.Unlock()
	return nil
}

// Yield hands the core to the next thread of equal or higher priority; the
// caller stays runnable and resumes in FIFO order.
func (k *Kernel) Yield(t *Thread) error {
	// No deferred unlock: switchFromLocked parks this goroutine, and the
	// halt-unwind path releases the lock itself.
	k.mu.Lock()
	if k.halted.Load() {
		k.mu.Unlock()
		return ErrHalted
	}
	if t != k.current {
		k.mu.Unlock()
		return ErrNotCurrent
	}
	t.state = ThreadRunnable
	k.enqueueLocked(t)
	k.switchFromLocked(t)
	k.mu.Unlock()
	return nil
}

// ExternalWakeup makes a blocked or sleeping thread runnable from outside
// the simulation — the interrupt path an I/O goroutine uses to signal a
// simulated thread. Unlike Wakeup it has no calling-thread context and never
// preempts; the woken thread runs at the next scheduling point (typically
// the idle handler's return). Safe for concurrent use.
func (k *Kernel) ExternalWakeup(id ThreadID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.halted.Load() {
		return ErrHalted
	}
	if id < 1 || int(id) > len(k.threads) {
		return fmt.Errorf("kernel: external wakeup of unknown thread %d", id)
	}
	t := k.threads[id-1]
	if t.state != ThreadBlocked && t.state != ThreadSleeping {
		if t.state != ThreadExited {
			t.wakePending = true
		}
		return nil
	}
	t.state = ThreadRunnable
	k.enqueueLocked(t)
	return nil
}

// PushNoPreempt enters a non-preemptible critical section on the calling
// thread. Sections nest; PopNoPreempt leaves the innermost one and performs
// any preemption deferred while inside. Recovery code brackets descriptor
// walks with these so that no other thread observes a half-recovered
// descriptor.
func (k *Kernel) PushNoPreempt(t *Thread) {
	k.mu.Lock()
	t.noPreempt++
	k.mu.Unlock()
}

// PopNoPreempt leaves the innermost non-preemptible section.
func (k *Kernel) PopNoPreempt(t *Thread) {
	k.mu.Lock()
	if t.noPreempt > 0 {
		t.noPreempt--
	}
	if t.noPreempt == 0 && t == k.current && !k.halted.Load() {
		k.preemptLocked(t)
	}
	k.mu.Unlock()
}

// AdvanceClock moves simulated time forward by d without blocking the
// caller. It exists for workloads that account time explicitly. The charge
// lands on the running thread's core (core 0 before Run), so concurrent
// per-core workloads overlap in virtual time — the source of multi-core
// virtual-time throughput scaling.
func (k *Kernel) AdvanceClock(d Time) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if d > 0 {
		ci := 0
		if k.current != nil {
			ci = int(k.current.core)
		}
		k.cores[ci].clock += d
		k.clock.Add(int64(d))
	}
}

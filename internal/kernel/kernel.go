// Package kernel implements a deterministic, multi-core simulation of the
// COMPOSITE component-based µ-kernel that the SuperGlue paper (DSN 2016)
// builds on.
//
// The simulator reproduces the properties interface-driven recovery depends
// on:
//
//   - Fine-grained isolation: every component owns private state that is
//     reachable only through kernel-mediated invocations, mirroring
//     page-table protection. A fault corrupts at most one component.
//   - Synchronous invocations via thread migration: an invocation executes
//     on the calling thread inside the server component, and the kernel
//     tracks the invocation stack of every thread.
//   - Fault exceptions: invoking a component that has failed (or failing
//     while executing inside one) delivers a *Fault to the caller, the
//     analogue of the hardware exception that COMPOSITE vectors to the
//     booter component.
//   - µ-reboot: the booter can reinstate a failed component from its clean
//     image (factory), bump its epoch, and run eager-recovery hooks.
//
// Scheduling is cooperative over M simulated cores: each core has its own
// run queue and its own virtual clock, and the dispatcher executes exactly
// one simulated thread at a time, drawn from the core whose clock is
// smallest — a discrete-event merge over per-core timelines. Within a core,
// selection is fixed priority (lower value = higher priority) with FIFO
// ordering among equals, and wakeups of higher-priority threads on the same
// core preempt the running thread. The merge rule — smallest
// (vtime, coreID), then (prio, seq) within the winning core — is a total
// order, so for a fixed seed the schedule is byte-identical for any
// GOMAXPROCS and any core count; with M=1 it degenerates exactly to the
// original single-core scheduler. Components may declare a home core
// (SetComponentCore); invoking such a component from another core migrates
// the thread there synchronously and back on return, charging a migration
// cost to the destination clock and propagating virtual time Lamport-style
// (dst.clock = max(dst.clock, src.clock) + cost).
//
// The fault-free invocation path is near-lock-free: each component's
// (epoch, faulty) pair is packed into one atomic word, the live service
// instance is an atomic pointer, and the invocation stack is owned by its
// thread — see DESIGN.md "Invocation fast path" for the layout and the
// determinism argument.
package kernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"superglue/internal/fault"
	"superglue/internal/obs"
)

// Word is the machine word used for invocation arguments and return values.
// COMPOSITE invocations pass register-sized (long) values; descriptor
// identifiers in SuperGlue are longs as well.
type Word = int64

// ComponentID names a component. IDs are assigned densely starting at 1.
type ComponentID int32

// ThreadID names a simulated thread. IDs are assigned densely starting at 1.
type ThreadID int32

// InvokePhase tells an invocation hook where in the invocation life cycle it
// is being called.
type InvokePhase int

// Invocation phases observed by hooks.
const (
	// PhaseEntry is reported right after a thread migrates into the server.
	PhaseEntry InvokePhase = iota + 1
	// PhaseExit is reported right before the thread returns to the client,
	// while the return value still lives in a register (the window in which
	// a register fault can propagate a corrupt value to the caller).
	PhaseExit
)

// InvokeHook observes component invocations. The SWIFI injector installs one
// to flip register bits of threads executing inside a target component.
// The hook runs on the simulated thread itself, with the kernel unlocked.
type InvokeHook func(t *Thread, comp ComponentID, fn string, phase InvokePhase)

// Service is the behavior of a component: a named dispatch table plus an
// initialization entry point invoked at boot and after every µ-reboot.
type Service interface {
	// Name returns the service name (used in traces and errors).
	Name() string
	// Init is the component's re-initialization upcall. It runs at boot and
	// after each µ-reboot, before any invocation is delivered.
	Init(bc *BootContext) error
	// Dispatch handles one invocation of interface function fn. It runs on
	// the invoking (migrated) thread.
	Dispatch(t *Thread, fn string, args []Word) (Word, error)
}

// BootContext is handed to Service.Init so a freshly (re)booted component
// can reach the kernel and learn its own identity and epoch.
type BootContext struct {
	Kernel *Kernel
	Self   ComponentID
	// Epoch is the component's current epoch: 0 for the first boot,
	// incremented by every µ-reboot.
	Epoch uint64
	// Thread is the thread performing the (re)boot upcall, if any.
	Thread *Thread
}

// compFaulty is the failed-state flag bit of a component's packed state
// word; the epoch occupies the remaining 63 bits (state >> 1).
const compFaulty = 1

// packState packs a component's (epoch, faulty) pair into one word for a
// single-load snapshot on the invocation fast path.
func packState(epoch uint64, faulty bool) uint64 {
	s := epoch << 1
	if faulty {
		s |= compFaulty
	}
	return s
}

// svcBox wraps a Service for atomic publication (atomic.Pointer needs a
// concrete pointer type; the interface value lives behind it).
type svcBox struct{ svc Service }

// component is the kernel-side representation of a protection domain.
//
// The (epoch, faulty) pair every invocation consults is packed into the
// atomic state word, and the live service instance sits behind an atomic
// pointer, so the fault-free invocation path reads both without taking
// k.mu. Both are written only with k.mu held (FailComponent, µ-reboot,
// watchdog), so writers never race each other; a µ-reboot stores the fresh
// instance before bumping the state word, so any reader that observes the
// new epoch also observes the new instance.
type component struct {
	id      ComponentID
	name    string
	factory func() Service
	profile RegProfile
	// budget is the per-component watchdog invocation budget override
	// (0 = the watchdog config default). See SetInvokeBudget.
	budget Time

	// state packs (epoch << 1) | faulty — see packState.
	//sgvet:atomicstate accessors=snapshot,curEpoch,markFaulty,markFaultyAs,install
	state atomic.Uint64
	// svc is the live service instance (see the struct comment for the
	// store/load ordering against state).
	//sgvet:atomicstate accessors=service,install
	svc atomic.Pointer[svcBox]
	// meta packs the pending fault's (kind << 8) | severity classification
	// (see packFaultMeta). It is written before the faulty bit is set and
	// cleared by install, so a lock-free reader that observes faulty also
	// observes the classification of the fault that set it.
	meta atomic.Uint32

	// core is the component's home core, or NoAffinity when the component
	// executes on whatever core invokes it (the single-core-era behavior,
	// still the default). Written under k.mu (SetComponentCore); read
	// lock-free on the invocation fast path to decide cross-core migration.
	core atomic.Int32

	// booting marks the µ-reboot window between the fresh instance's
	// install and the completion of its Init upcall and reboot hooks. On a
	// multi-core machine the rebooting thread parks inside that window
	// (migrating to the component's home core, and again when recovery
	// hooks replay held invocations cross-core), so other threads could
	// otherwise dispatch into an instance whose state is not constructed
	// yet. They wait on bootWaiters instead; bootThread (the rebooting
	// thread) is exempt so hook replays pass through. All three are
	// guarded by k.mu. Single-core machines never open the window — the
	// booter cannot park mid-boot — so the flag toggles unobserved there.
	booting     bool
	bootThread  *Thread
	bootWaiters []*Thread
}

// NoAffinity is the home-core value of a component with no core placement:
// it executes on the invoking thread's core, wherever that is.
const NoAffinity int32 = -1

// packFaultMeta packs a fault classification into the component's meta word.
func packFaultMeta(kind fault.Kind, sev fault.Severity) uint32 {
	return uint32(kind)<<8 | uint32(sev)
}

// faultMeta returns the pending fault's classification (zero when the
// component never faulted or was reinstalled since).
func (c *component) faultMeta() (fault.Kind, fault.Severity) {
	m := c.meta.Load()
	return fault.Kind(m >> 8), fault.Severity(m & 0xff)
}

// snapshot returns a consistent (epoch, faulty) view from one atomic load.
func (c *component) snapshot() (epoch uint64, faulty bool) {
	s := c.state.Load()
	return s >> 1, s&compFaulty != 0
}

// curEpoch returns the component's current epoch.
func (c *component) curEpoch() uint64 { return c.state.Load() >> 1 }

// service returns the live service instance.
func (c *component) service() Service { return c.svc.Load().svc }

// markFaulty sets the faulty bit, preserving the epoch. Called with k.mu
// held, so it cannot race other writers.
func (c *component) markFaulty() {
	c.markFaultyAs(fault.KindUnknown, fault.SevUnknown)
}

// markFaultyAs sets the faulty bit with a fault classification, preserving
// the epoch. The meta word is stored before the state word, so a lock-free
// reader that observes the faulty bit also observes the classification.
// Called with k.mu held, so it cannot race other writers.
func (c *component) markFaultyAs(kind fault.Kind, sev fault.Severity) {
	c.meta.Store(packFaultMeta(kind, sev))
	epoch, _ := c.snapshot()
	c.state.Store(packState(epoch, true))
}

// install publishes a service instance and then the clean state word for
// epoch. The instance is stored first so a lock-free reader that observes
// the new epoch also observes the new instance; a reader that loads the old
// state with the new instance faults on the post-dispatch epoch check,
// which is the required semantics. Called with k.mu held (registration and
// µ-reboot).
func (c *component) install(svc Service, epoch uint64) {
	c.svc.Store(&svcBox{svc: svc})
	c.meta.Store(0)
	c.state.Store(packState(epoch, false))
}

// ErrNoSuchComponent is returned for invocations that target an unknown
// component ID.
var ErrNoSuchComponent = errors.New("kernel: no such component")

// ErrNoSuchFunction is the conventional error services return for an unknown
// interface function.
var ErrNoSuchFunction = errors.New("kernel: no such interface function")

// ErrHalted is returned for operations on a kernel whose simulation already
// finished or crashed.
var ErrHalted = errors.New("kernel: system halted")

// ErrInvalidDescriptor is the EINVAL analogue services return when an
// invocation names a descriptor they do not know — after a µ-reboot this is
// the signal that triggers global-descriptor recovery (mechanism G0).
var ErrInvalidDescriptor = errors.New("kernel: invalid descriptor (EINVAL)")

// Kernel is one simulated machine instance. The zero value is not usable;
// construct with New.
type Kernel struct {
	mu sync.Mutex

	comps     []*component                 // append under mu; index = ComponentID-1
	compsView atomic.Pointer[[]*component] // published copy for lock-free lookup
	threads   []*Thread                    // index = ThreadID-1
	cores     []coreState                  // per-core run queues + clocks; index = core number
	current   *Thread
	seq       uint64 // global arrival sequence counter for FIFO tie-breaking

	// multicore is len(cores) > 1, immutable after New: the invocation fast
	// path consults it with a plain read so single-core machines pay no
	// affinity check.
	multicore bool
	// migCost is the virtual-time cost (µs) charged to the destination core
	// per thread migration. Immutable after construction except through
	// SetMigrationCost (which must run before Run).
	migCost Time

	// clock is simulated time in µs, mirroring the virtual clock of the core
	// whose thread is currently running (per-core clocks are authoritative
	// and live in cores[i].clock under mu). Writers (the dispatcher at every
	// thread selection, AdvanceClock, watchdog budget charges) all hold
	// k.mu, so stores never race; the atomic representation exists so
	// readers — Now() and the trace recorder on the lock-free invocation
	// fast path — can stamp events without taking the kernel lock.
	clock atomic.Int64

	started bool
	halted  atomic.Bool // written under mu; read lock-free on the fast path
	hung    bool
	haltErr error
	done    chan struct{}

	hook        atomic.Pointer[InvokeHook]
	rebootHooks []RebootHook
	idle        IdleHandler
	crash       *SystemCrash

	// Watchdog state (see watchdog.go). Off by default: the baseline
	// campaign keeps the paper's fail-stop-only fault model.
	wdEnabled bool
	wdBudget  Time
	wdMax     int
	wdStats   WatchdogStats

	// invCount counts completed component invocations (observability);
	// upcallCount counts the subset initiated through Upcall, kept distinct
	// so recovery-cost accounting never conflates the two directions.
	invCount    atomic.Uint64
	upcallCount atomic.Uint64

	// readySeq counts ready-queue inserts. The invocation fast path
	// snapshots it at entry and only takes k.mu for the deferred-preemption
	// check at the invocation boundary when a wakeup happened in between.
	readySeq atomic.Uint64

	// tracer is the optional recovery-observability recorder (see
	// internal/obs). Disabled tracing is a nil pointer: the fast path
	// pays one atomic load and a predictable branch.
	tracer atomic.Pointer[obs.Recorder]
}

// Time is simulated time in microseconds.
type Time int64

// RebootHook runs after a component has been µ-rebooted and re-initialized.
// The recovery engine registers one to perform eager (T0) recovery.
type RebootHook func(t *Thread, comp ComponentID, epoch uint64)

// SystemCrash records an unrecoverable, whole-system failure (the analogue
// of the machine exiting with a segmentation fault during the paper's
// campaign, after which the machine must be rebooted).
type SystemCrash struct {
	Reason string
	Comp   ComponentID
	Thread ThreadID
}

// Error implements error.
func (c *SystemCrash) Error() string {
	return fmt.Sprintf("kernel: system crash in component %d on thread %d: %s", c.Comp, c.Thread, c.Reason)
}

// coreState is one simulated core: its private run queue and its virtual
// clock. All fields are guarded by k.mu; the dispatcher's merge picks the
// core with the smallest (clock, index) among cores with runnable work.
type coreState struct {
	ready []*Thread // FIFO arrival order; selection scans for min (prio, seq)
	clock Time      // this core's virtual time in µs

	// Per-core observability counters (CoreStats).
	dispatches uint64 // threads dispatched onto this core
	migrations uint64 // threads migrated onto this core
	crossInv   uint64 // migrations that were cross-core invocation entries
}

// CoreStats is an observability snapshot of one simulated core.
type CoreStats struct {
	// Core is the core number.
	Core int
	// Clock is the core's virtual time in µs.
	Clock Time
	// Dispatches counts threads dispatched onto the core.
	Dispatches uint64
	// Migrations counts threads migrated onto the core (explicit migration,
	// cross-core invocation entry, and cross-core invocation return).
	Migrations uint64
	// CrossCoreInvocations counts the subset of migrations that entered the
	// core to execute a cross-core invocation of a component homed here.
	CrossCoreInvocations uint64
}

// New constructs an empty simulated machine with one core.
func New() *Kernel {
	return NewWithCores(1)
}

// NewWithCores constructs an empty simulated machine with m cores (m < 1 is
// treated as 1). With m == 1 the kernel behaves byte-identically to the
// original single-core scheduler; with m > 1 the dispatcher merges per-core
// virtual timelines deterministically (see the package comment).
func NewWithCores(m int) *Kernel {
	if m < 1 {
		m = 1
	}
	return &Kernel{
		done:      make(chan struct{}),
		cores:     make([]coreState, m),
		multicore: m > 1,
		migCost:   DefaultMigrationCost,
	}
}

// DefaultMigrationCost is the virtual-time cost (µs) charged to the
// destination core's clock per thread migration.
const DefaultMigrationCost Time = 1

// NumCores returns the number of simulated cores.
func (k *Kernel) NumCores() int { return len(k.cores) }

// SetMigrationCost overrides the per-migration virtual-time charge (µs).
// Call before Run; d < 0 is clamped to 0.
func (k *Kernel) SetMigrationCost(d Time) {
	if d < 0 {
		d = 0
	}
	k.mu.Lock()
	k.migCost = d
	k.mu.Unlock()
}

// CoreStats returns an observability snapshot of every simulated core.
func (k *Kernel) CoreStats() []CoreStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]CoreStats, len(k.cores))
	for i := range k.cores {
		c := &k.cores[i]
		out[i] = CoreStats{
			Core:                 i,
			Clock:                c.clock,
			Dispatches:           c.dispatches,
			Migrations:           c.migrations,
			CrossCoreInvocations: c.crossInv,
		}
	}
	return out
}

// SetComponentCore pins a component to a home core: threads on other cores
// that invoke it migrate there for the invocation and back on return, and
// µ-reboots re-initialize it on that core. Pass NoAffinity (or any negative
// core) to clear the placement. Placement on a core the machine does not
// have is an error.
func (k *Kernel) SetComponentCore(id ComponentID, core int) error {
	c, err := k.lookup(id)
	if err != nil {
		return err
	}
	if core >= len(k.cores) {
		return fmt.Errorf("kernel: component %d placed on core %d of a %d-core machine", id, core, len(k.cores))
	}
	k.mu.Lock()
	if core < 0 {
		c.core.Store(NoAffinity)
	} else {
		c.core.Store(int32(core))
	}
	k.mu.Unlock()
	return nil
}

// ComponentCore returns a component's home core, or NoAffinity (-1) when it
// has no placement.
func (k *Kernel) ComponentCore(id ComponentID) (int, error) {
	c, err := k.lookup(id)
	if err != nil {
		return 0, err
	}
	return int(c.core.Load()), nil
}

// Register installs a component built by factory and boots it by calling
// Init on a fresh instance. The factory is retained as the component's clean
// image: µ-rebooting the component constructs a new instance from it, the
// simulation analogue of the booter's memcpy from the pristine image.
func (k *Kernel) Register(factory func() Service) (ComponentID, error) {
	if factory == nil {
		return 0, errors.New("kernel: nil component factory")
	}
	svc := factory()
	if svc == nil {
		return 0, errors.New("kernel: component factory returned nil")
	}

	k.mu.Lock()
	id := ComponentID(len(k.comps) + 1)
	c := &component{id: id, name: svc.Name(), factory: factory, profile: DefaultRegProfile()}
	c.core.Store(NoAffinity)
	c.install(svc, 0)
	k.comps = append(k.comps, c)
	view := make([]*component, len(k.comps))
	copy(view, k.comps)
	k.compsView.Store(&view)
	k.mu.Unlock()
	k.tracer.Load().SetComponentName(int32(id), c.name)

	if err := svc.Init(&BootContext{Kernel: k, Self: id, Epoch: 0}); err != nil {
		return 0, fmt.Errorf("kernel: init of component %q: %w", svc.Name(), err)
	}
	return id, nil
}

// MustRegister is Register for wiring code where registration cannot fail.
// It panics on error and is intended for system assembly in main functions
// and tests.
func (k *Kernel) MustRegister(factory func() Service) ComponentID {
	id, err := k.Register(factory)
	if err != nil {
		panic(err)
	}
	return id
}

// SetRegProfile sets the register-usage profile the kernel applies to
// threads executing inside comp. The profile determines how a register
// bit-flip manifests (see RegProfile).
func (k *Kernel) SetRegProfile(comp ComponentID, p RegProfile) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, err := k.lookup(comp)
	if err != nil {
		return err
	}
	c.profile = p
	return nil
}

// SetInvokeHook installs the invocation observer (nil clears it).
func (k *Kernel) SetInvokeHook(h InvokeHook) {
	if h == nil {
		k.hook.Store(nil)
		return
	}
	k.hook.Store(&h)
}

// invokeHook returns the installed invocation observer, if any.
func (k *Kernel) invokeHook() InvokeHook {
	if p := k.hook.Load(); p != nil {
		return *p
	}
	return nil
}

// AddRebootHook appends a hook that runs after every µ-reboot.
func (k *Kernel) AddRebootHook(h RebootHook) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.rebootHooks = append(k.rebootHooks, h)
}

// ComponentName resolves a component's name, or "?" if unknown.
func (k *Kernel) ComponentName(id ComponentID) string {
	c := k.comp(id)
	if c == nil {
		return "?"
	}
	return c.name
}

// Epoch returns the current epoch of a component. It is a single atomic
// load — safe from any goroutine, no kernel lock.
func (k *Kernel) Epoch(id ComponentID) (uint64, error) {
	c, err := k.lookup(id)
	if err != nil {
		return 0, err
	}
	return c.curEpoch(), nil
}

// CompRef is a lock-free handle to one component's fault/epoch state:
// client stubs resolve it once at construction and then read the packed
// (epoch, faulty) snapshot with a single atomic load per invocation instead
// of a kernel-lock round-trip.
type CompRef struct{ c *component }

// Ref resolves a component to a CompRef. The handle stays valid for the
// kernel's lifetime (components are never deregistered; µ-reboots replace
// the instance behind the same handle).
func (k *Kernel) Ref(id ComponentID) (CompRef, error) {
	c, err := k.lookup(id)
	if err != nil {
		return CompRef{}, err
	}
	return CompRef{c: c}, nil
}

// Valid reports whether the handle is bound to a component.
func (r CompRef) Valid() bool { return r.c != nil }

// ID returns the referenced component.
func (r CompRef) ID() ComponentID { return r.c.id }

// Epoch returns the component's current epoch (one atomic load).
func (r CompRef) Epoch() uint64 { return r.c.curEpoch() }

// Faulty reports whether the component is in the failed state.
func (r CompRef) Faulty() bool { _, f := r.c.snapshot(); return f }

// Snapshot returns a consistent (epoch, faulty) pair from one atomic load.
func (r CompRef) Snapshot() (epoch uint64, faulty bool) { return r.c.snapshot() }

// Service returns the live service instance of a component. It is intended
// for reflection-style recovery and tests; normal interaction must go
// through Invoke.
func (k *Kernel) Service(id ComponentID) (Service, error) {
	c, err := k.lookup(id)
	if err != nil {
		return nil, err
	}
	return c.service(), nil
}

// Now returns the current simulated time. It is a single atomic load —
// safe from any goroutine, no kernel lock.
func (k *Kernel) Now() Time {
	return Time(k.clock.Load())
}

// SetTracer installs (or, with nil, removes) the recovery-observability
// recorder. The kernel stamps every event with the component, thread,
// virtual time, and recovery generation involved; the C³ runtime and
// generated stubs share the same recorder for mechanism-level spans.
// Component names registered so far are published to the recorder.
func (k *Kernel) SetTracer(r *obs.Recorder) {
	k.tracer.Store(r)
	if r == nil {
		return
	}
	if view := k.compsView.Load(); view != nil {
		for _, c := range *view {
			r.SetComponentName(int32(c.id), c.name)
		}
	}
}

// Tracer returns the installed recovery-observability recorder, or nil.
func (k *Kernel) Tracer() *obs.Recorder {
	return k.tracer.Load()
}

// InvocationCount returns the number of completed component invocations
// (including upcalls; see UpcallCount for the upcall-only subset).
func (k *Kernel) InvocationCount() uint64 {
	return k.invCount.Load()
}

// UpcallCount returns the number of invocations initiated through Upcall —
// recovery infrastructure calling *into* client components — kept distinct
// from ordinary client→server invocations so Fig. 6(b)-style recovery-cost
// accounting can separate the two directions.
func (k *Kernel) UpcallCount() uint64 {
	return k.upcallCount.Load()
}

// Crash returns the recorded unrecoverable system crash, if any.
func (k *Kernel) Crash() *SystemCrash {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.crash
}

// comp resolves a component ID through the atomically published component
// table. Safe with or without k.mu held; returns nil for unknown IDs.
func (k *Kernel) comp(id ComponentID) *component {
	view := k.compsView.Load()
	if view == nil {
		return nil
	}
	comps := *view
	if id < 1 || int(id) > len(comps) {
		return nil
	}
	return comps[id-1]
}

// lookup is comp with the conventional error for unknown IDs.
func (k *Kernel) lookup(id ComponentID) (*component, error) {
	if c := k.comp(id); c != nil {
		return c, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrNoSuchComponent, id)
}

// Components returns the IDs of all registered components in registration
// order.
func (k *Kernel) Components() []ComponentID {
	view := k.compsView.Load()
	if view == nil {
		return nil
	}
	comps := *view
	ids := make([]ComponentID, len(comps))
	for i := range comps {
		ids[i] = comps[i].id
	}
	return ids
}

// ThreadInfo is a reflection snapshot of one thread, used by recovery code
// that rebuilds scheduler state from kernel thread objects.
type ThreadInfo struct {
	ID        ThreadID
	Name      string
	Prio      int
	State     ThreadState
	Core      int         // core the thread is (or will next be) scheduled on
	BlockedIn ComponentID // component the thread is blocked inside, if Blocked
	Executing ComponentID // innermost component on the invocation stack
}

// ReflectThreads returns a snapshot of all live (non-exited) threads, sorted
// by ID. This is the kernel half of C³'s "reflection" interface: the
// scheduler component rebuilds its run queue from these authoritative kernel
// objects after a µ-reboot.
func (k *Kernel) ReflectThreads() []ThreadInfo {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []ThreadInfo
	for _, t := range k.threads {
		if t.state == ThreadExited {
			continue
		}
		info := ThreadInfo{ID: t.id, Name: t.name, Prio: t.prio, State: t.state, Core: int(t.core)}
		if t.state == ThreadBlocked || t.state == ThreadSleeping {
			info.BlockedIn = t.blockedIn
		}
		// The published top of the invocation stack: the stack itself is
		// owned lock-free by the running thread, so readers use the atomic
		// mirror rather than the slice.
		info.Executing = ComponentID(t.curComp.Load())
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	k.tracer.Load().RecordReflect(k.clock.Load(), len(out))
	return out
}

package kernel

import "testing"

// TestCrossCoreDeadlockAttribution: the multi-core analogue of
// TestWatchdogDeadlockAttribution. A thread homed on core 0 migrates into
// a component homed on core 1 and blocks there; a thread homed on core 1
// migrates into a component homed on core 0 and blocks there. Neither is
// ever woken, so the machine deadlocks across cores — no core has runnable
// work, but every core's blocked thread waits on a component homed
// elsewhere. The watchdog must attribute each blocked thread to the
// component it is blocked in (not to the component homed on the thread's
// own core), fail both, and divert both threads with *Fault so the run
// completes.
func TestCrossCoreDeadlockAttribution(t *testing.T) {
	k := NewWithCores(2)
	k.EnableWatchdog(WatchdogConfig{})
	a := k.MustRegister(newEchoFactory(nil))
	b := k.MustRegister(newEchoFactory(nil))
	if err := k.SetComponentCore(a, 0); err != nil {
		t.Fatalf("SetComponentCore(a, 0): %v", err)
	}
	if err := k.SetComponentCore(b, 1); err != nil {
		t.Fatalf("SetComponentCore(b, 1): %v", err)
	}

	var errA, errB error
	if _, err := k.CreateThreadOn(nil, "ta", 10, 0, func(th *Thread) {
		_, errA = k.Invoke(th, b, "block") // migrates 0 -> 1, parks in b
	}); err != nil {
		t.Fatalf("CreateThreadOn(ta): %v", err)
	}
	if _, err := k.CreateThreadOn(nil, "tb", 10, 1, func(th *Thread) {
		_, errB = k.Invoke(th, a, "block") // migrates 1 -> 0, parks in a
	}); err != nil {
		t.Fatalf("CreateThreadOn(tb): %v", err)
	}

	if err := k.Run(); err != nil {
		t.Fatalf("Run = %v; want nil (watchdog resolves the cross-core deadlock)", err)
	}
	fltA, ok := AsFault(errA)
	if !ok || fltA.Comp != b {
		t.Fatalf("ta's invocation err = %v; want *Fault in comp %d (the server it blocked in)", errA, b)
	}
	fltB, ok := AsFault(errB)
	if !ok || fltB.Comp != a {
		t.Fatalf("tb's invocation err = %v; want *Fault in comp %d (the server it blocked in)", errB, a)
	}
	if st := k.WatchdogStats(); st.DeadlocksAttributed != 2 {
		t.Fatalf("stats = %+v; want 2 deadlocks attributed (one per blocked thread)", st)
	}
}

package kernel

import (
	"errors"
	"fmt"

	"superglue/internal/fault"
)

// Fault is the inter-component exception delivered when an invocation
// targets (or a blocked thread is diverted out of) a failed component. It is
// the simulation analogue of the hardware exception that COMPOSITE vectors
// to the booter. Client stubs catch it, route it by Kind through the
// recovery dispatcher (see core), ensure the component is µ-rebooted when
// the kind calls for it, run interface-driven recovery, and retry the
// invocation.
type Fault struct {
	// Comp is the failed component.
	Comp ComponentID
	// Epoch is the component's epoch at the time of the fault. Recovery
	// code compares it with the current epoch to decide whether the
	// component still needs a µ-reboot or has already been rebooted by
	// another client.
	Epoch uint64
	// Kind classifies the fault (fault.KindUnknown for legacy detection
	// sites, handled like a register flip).
	Kind fault.Kind
	// Severity grades the fault (fault.SevUnknown when ungraded).
	Severity fault.Severity
	// Transient marks faults that left the component's state intact (a
	// dropped message): recovery is a plain redo, no µ-reboot, and the
	// component is not in the failed state.
	Transient bool
}

// Error implements error.
func (f *Fault) Error() string {
	if f.Kind == fault.KindUnknown {
		return fmt.Sprintf("kernel: fault in component %d (epoch %d)", f.Comp, f.Epoch)
	}
	return fmt.Sprintf("kernel: %s fault in component %d (epoch %d)", f.Kind, f.Comp, f.Epoch)
}

// Event converts the fault to the taxonomy's event record.
func (f *Fault) Event() fault.Event {
	ev := fault.New(f.Kind, int32(f.Comp), "")
	if f.Severity != fault.SevUnknown {
		ev.Severity = f.Severity
	}
	return ev
}

// AsFault extracts a *Fault from an error chain.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// FailComponent marks a component as failed (fail-stop). Every subsequent
// invocation of it returns a *Fault until it is µ-rebooted, and threads
// blocked inside it are diverted when the reboot happens. FailComponent
// models the instant at which an activated transient fault corrupts the
// component and is detected; the fault is left unclassified
// (fault.KindUnknown) — detection sites that know what happened use
// FailComponentAs.
func (k *Kernel) FailComponent(id ComponentID) error {
	return k.FailComponentAs(id, fault.KindUnknown, fault.SevUnknown)
}

// FailComponentAs marks a component as failed with a typed classification:
// subsequent invocations deliver *Fault values carrying the kind and
// severity, and the trace (obs) records the classified detection event.
// A zero severity takes the kind's default grade.
func (k *Kernel) FailComponentAs(id ComponentID, kind fault.Kind, sev fault.Severity) error {
	if sev == fault.SevUnknown && kind != fault.KindUnknown {
		sev = fault.DefaultSeverity(kind)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	c, err := k.lookup(id)
	if err != nil {
		return err
	}
	c.markFaultyAs(kind, sev)
	if tr := k.tracer.Load(); tr != nil {
		epoch, _ := c.snapshot()
		var tid int32
		if k.current != nil {
			tid = int32(k.current.id)
		}
		tr.RecordFault(int32(id), tid, "", k.clock.Load(), epoch, kind, sev)
	}
	return nil
}

// FaultNow fails component id with a typed classification and returns the
// *Fault for the detection site to propagate: a server that detects its own
// corruption (e.g. a checksum mismatch while restoring from storage) fails
// itself and unwinds the current invocation with the fault, entering the
// client stub's recovery path instead of leaking an unclassified error.
func (k *Kernel) FaultNow(id ComponentID, kind fault.Kind, sev fault.Severity) error {
	epoch := uint64(0)
	if c := k.comp(id); c != nil {
		epoch = c.curEpoch()
	}
	if err := k.FailComponentAs(id, kind, sev); err != nil {
		return err
	}
	if sev == fault.SevUnknown && kind != fault.KindUnknown {
		sev = fault.DefaultSeverity(kind)
	}
	return &Fault{Comp: id, Epoch: epoch, Kind: kind, Severity: sev}
}

// Faulty reports whether a component is currently in the failed state. It is
// a single atomic load — safe from any goroutine, no kernel lock.
func (k *Kernel) Faulty(id ComponentID) bool {
	c := k.comp(id)
	if c == nil {
		return false
	}
	_, faulty := c.snapshot()
	return faulty
}

// Reboot µ-reboots a component: it discards the failed instance, constructs
// a fresh one from the component's clean image (its factory), bumps the
// epoch, re-initializes the new instance, wakes every thread that was
// blocked inside the failed instance with a pending *Fault (the eager T0
// wakeup that diverts them back to their clients), and finally runs the
// registered reboot hooks. It returns the component's new epoch.
//
// Reboot is idempotent per fault: use EnsureRebooted from recovery code so
// that only the first client observing a fault performs the reboot.
func (k *Kernel) Reboot(t *Thread, id ComponentID) (uint64, error) {
	return k.reboot(t, id, 0, false)
}

// reboot implements Reboot and EnsureRebooted. When mustMatch is set, the
// expected-epoch check and the epoch bump happen in ONE critical section:
// two clients observing the same fault can both call EnsureRebooted
// concurrently, and exactly one performs the µ-reboot — the other observes
// the advanced epoch. (A check-then-Reboot split would let both pass the
// check and reboot twice.)
func (k *Kernel) reboot(t *Thread, id ComponentID, expectEpoch uint64, mustMatch bool) (uint64, error) {
	k.mu.Lock()
	if k.halted.Load() {
		k.mu.Unlock()
		return 0, ErrHalted
	}
	c, err := k.lookup(id)
	if err != nil {
		k.mu.Unlock()
		return 0, err
	}
	// Another thread's µ-reboot of this component is mid-boot (instance
	// installed, Init not yet complete): wait for its gate to clear before
	// reading the epoch, so the mustMatch check below observes the advanced
	// epoch instead of concluding a second reboot is needed.
	for c.booting && c.bootThread != t && t == k.current && !k.halted.Load() {
		k.waitBootLocked(t, c)
	}
	if k.halted.Load() {
		k.mu.Unlock()
		return 0, ErrHalted
	}
	oldEpoch, _ := c.snapshot()
	if mustMatch && oldEpoch != expectEpoch {
		k.mu.Unlock()
		return oldEpoch, nil // someone already rebooted it
	}
	// The classification of the fault that killed this instance, carried
	// into the pending faults delivered to eagerly woken threads.
	kind, sev := c.faultMeta()
	// Span start for the µ-reboot trace event: virtual time and
	// completed-invocation count before the fresh instance is installed.
	vt0 := k.clock.Load()
	steps0 := k.invCount.Load()
	newEpoch := oldEpoch + 1
	svc := c.factory()
	c.install(svc, newEpoch)

	// Eager (T0) wakeup: divert threads blocked inside the failed instance
	// back to their clients with a pending fault carrying the old epoch.
	// Threads that were already woken but not yet scheduled are diverted
	// too — their execution state inside the failed instance is gone —
	// with their consumed wakeup re-latched so the redo of a blocking call
	// does not lose it (exactly-once wakeup, recovered from kernel state).
	for _, bt := range k.threads {
		switch {
		case (bt.state == ThreadBlocked || bt.state == ThreadSleeping) && bt.blockedIn == id:
			bt.pendingFault = &Fault{Comp: id, Epoch: oldEpoch, Kind: kind, Severity: sev}
			bt.state = ThreadRunnable
			k.enqueueLocked(bt)
		case bt.state == ThreadRunnable && !bt.migPending && bt.topOfStackLocked() == id:
			// Woken but not yet scheduled: its execution state inside the
			// failed instance is gone, so divert it — re-latching the
			// consumed wakeup as a redo credit (Block case only) so the
			// retried call does not lose it. Threads parked for a migration
			// are runnable with the component on their stack too, but they
			// need no divert: an inbound cross-core invocation re-checks the
			// component's (epoch, faulty) word after the migration and
			// unwinds on its own, and a return migration carries an
			// operation the old instance already completed. A pending fault
			// armed here would never be consumed by the migration park and
			// would surface later from an unrelated component.
			bt.pendingFault = &Fault{Comp: id, Epoch: oldEpoch, Kind: kind, Severity: sev}
			if bt.lastParkWasBlock {
				bt.wakePending = true
				bt.redoCredit = true
				if n := len(bt.fnStack); n > 0 {
					bt.creditFn = bt.fnStack[n-1]
				}
			}
		}
	}
	// Close the boot gate: until Init and the reboot hooks complete, no
	// thread but the rebooting one may dispatch into the fresh instance
	// (see the component struct). Opened again after the hooks run.
	c.booting = true
	c.bootThread = t
	hooks := make([]RebootHook, len(k.rebootHooks))
	copy(hooks, k.rebootHooks)
	k.mu.Unlock()

	// A component with a home core re-initializes there: the rebooting
	// thread migrates over for the Init upcall and the eager-recovery hooks
	// (which replay held invocations into the fresh instance) and returns
	// to its own core afterwards.
	backTo := int32(-1)
	if k.multicore && t != nil {
		if home := c.core.Load(); home >= 0 && home != t.core {
			backTo = t.core
			k.migrate(t, home, false)
		}
	}

	// Re-initialization upcall into the fresh instance (step 4 of the
	// paper's recovery sequence).
	if err := svc.Init(&BootContext{Kernel: k, Self: id, Epoch: newEpoch, Thread: t}); err != nil {
		k.openBootGate(c)
		return 0, fmt.Errorf("kernel: re-init of component %d after µ-reboot: %w", id, err)
	}
	for _, h := range hooks {
		h(t, id, newEpoch)
	}
	k.openBootGate(c)
	if backTo >= 0 {
		k.migrate(t, backTo, false)
	}
	if tr := k.tracer.Load(); tr != nil {
		var tid int32
		if t != nil {
			tid = int32(t.id)
		}
		now := k.clock.Load()
		tr.RecordReboot(int32(id), tid, now, newEpoch, now-vt0, k.invCount.Load()-steps0)
	}

	// The eagerly woken threads may outrank the rebooting thread.
	if t != nil {
		k.mu.Lock()
		if t == k.current && !k.halted.Load() {
			k.preemptLocked(t)
		}
		k.mu.Unlock()
	}
	return newEpoch, nil
}

// openBootGate clears a component's µ-reboot gate and releases every thread
// that parked on it while the fresh instance initialized.
func (k *Kernel) openBootGate(c *component) {
	k.mu.Lock()
	c.booting = false
	c.bootThread = nil
	if !k.halted.Load() {
		for _, w := range c.bootWaiters {
			w.state = ThreadRunnable
			k.enqueueLocked(w)
		}
	}
	c.bootWaiters = nil
	k.mu.Unlock()
}

// waitBootLocked parks t until component c's µ-reboot gate clears (its fresh
// instance finished its Init upcall and the reboot hooks ran). Called with
// k.mu held; the lock is released while parked and re-held on return. The
// park is not a service block: blockedIn stays zero, so neither the T0
// divert scan nor the watchdog mistakes the waiter for a thread blocked
// inside a component.
func (k *Kernel) waitBootLocked(t *Thread, c *component) {
	c.bootWaiters = append(c.bootWaiters, t)
	t.state = ThreadBlocked
	t.lastParkWasBlock = false
	k.switchFromLocked(t)
}

// EnsureRebooted µ-reboots component id only if its epoch still equals the
// epoch observed in a fault, so concurrent clients reboot a failed component
// exactly once. The epoch check and the reboot run in a single critical
// section (see reboot). It returns the component's (possibly advanced)
// epoch.
func (k *Kernel) EnsureRebooted(t *Thread, id ComponentID, faultEpoch uint64) (uint64, error) {
	return k.reboot(t, id, faultEpoch, true)
}

// InjectTransientFault arms a one-shot transient fault on thread t: the
// in-flight invocation of dst unwinds with a *Fault of the given kind
// without failing the component — the invocation is simply lost (message
// loss). Call from a PhaseEntry invocation hook; Invoke consumes the armed
// fault when the hook returns.
func (k *Kernel) InjectTransientFault(t *Thread, dst ComponentID, kind fault.Kind) {
	epoch := uint64(0)
	if c := k.comp(dst); c != nil {
		epoch = c.curEpoch()
	}
	sev := fault.DefaultSeverity(kind)
	t.injectedFault = &Fault{Comp: dst, Epoch: epoch, Kind: kind, Severity: sev, Transient: true}
	if tr := k.tracer.Load(); tr != nil {
		tr.RecordFault(int32(dst), int32(t.id), "inject:transient", k.clock.Load(), epoch, kind, sev)
	}
}

// DuplicateNext arms one-shot duplicate delivery on thread t: the in-flight
// invocation is dispatched twice (at-least-once delivery; the duplicate runs
// first and its result is discarded). Call from a PhaseEntry invocation
// hook. The duplication is recorded as a message-dup fault event.
func (k *Kernel) DuplicateNext(t *Thread, dst ComponentID) {
	t.injectDup = true
	if tr := k.tracer.Load(); tr != nil {
		epoch := uint64(0)
		if c := k.comp(dst); c != nil {
			epoch = c.curEpoch()
		}
		tr.RecordFault(int32(dst), int32(t.id), "inject:duplicate", k.clock.Load(), epoch,
			fault.KindMessageDup, fault.DefaultSeverity(fault.KindMessageDup))
	}
}

// takeInjectedFault consumes (and clears) the transient fault armed on the
// thread by InjectTransientFault, if any. Lock-free: armed and consumed by
// the thread itself (the hook runs on the invoking thread).
func (t *Thread) takeInjectedFault() *Fault {
	f := t.injectedFault
	t.injectedFault = nil
	return f
}

// takeInjectDup consumes (and clears) the duplicate-delivery flag armed by
// DuplicateNext. Lock-free for the same reason as takeInjectedFault.
func (t *Thread) takeInjectDup() bool {
	d := t.injectDup
	t.injectDup = false
	return d
}

package kernel

import (
	"errors"
	"fmt"
)

// Fault is the inter-component exception delivered when an invocation
// targets (or a blocked thread is diverted out of) a failed component. It is
// the simulation analogue of the hardware exception that COMPOSITE vectors
// to the booter. Client stubs catch it, ensure the component is µ-rebooted,
// run interface-driven recovery, and retry the invocation.
type Fault struct {
	// Comp is the failed component.
	Comp ComponentID
	// Epoch is the component's epoch at the time of the fault. Recovery
	// code compares it with the current epoch to decide whether the
	// component still needs a µ-reboot or has already been rebooted by
	// another client.
	Epoch uint64
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("kernel: fault in component %d (epoch %d)", f.Comp, f.Epoch)
}

// AsFault extracts a *Fault from an error chain.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// FailComponent marks a component as failed (fail-stop). Every subsequent
// invocation of it returns a *Fault until it is µ-rebooted, and threads
// blocked inside it are diverted when the reboot happens. FailComponent
// models the instant at which an activated transient fault corrupts the
// component and is detected.
func (k *Kernel) FailComponent(id ComponentID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, err := k.lookup(id)
	if err != nil {
		return err
	}
	c.markFaulty()
	if tr := k.tracer.Load(); tr != nil {
		epoch, _ := c.snapshot()
		var tid int32
		if k.current != nil {
			tid = int32(k.current.id)
		}
		tr.RecordFault(int32(id), tid, "", k.clock.Load(), epoch)
	}
	return nil
}

// Faulty reports whether a component is currently in the failed state. It is
// a single atomic load — safe from any goroutine, no kernel lock.
func (k *Kernel) Faulty(id ComponentID) bool {
	c := k.comp(id)
	if c == nil {
		return false
	}
	_, faulty := c.snapshot()
	return faulty
}

// Reboot µ-reboots a component: it discards the failed instance, constructs
// a fresh one from the component's clean image (its factory), bumps the
// epoch, re-initializes the new instance, wakes every thread that was
// blocked inside the failed instance with a pending *Fault (the eager T0
// wakeup that diverts them back to their clients), and finally runs the
// registered reboot hooks. It returns the component's new epoch.
//
// Reboot is idempotent per fault: use EnsureRebooted from recovery code so
// that only the first client observing a fault performs the reboot.
func (k *Kernel) Reboot(t *Thread, id ComponentID) (uint64, error) {
	return k.reboot(t, id, 0, false)
}

// reboot implements Reboot and EnsureRebooted. When mustMatch is set, the
// expected-epoch check and the epoch bump happen in ONE critical section:
// two clients observing the same fault can both call EnsureRebooted
// concurrently, and exactly one performs the µ-reboot — the other observes
// the advanced epoch. (A check-then-Reboot split would let both pass the
// check and reboot twice.)
func (k *Kernel) reboot(t *Thread, id ComponentID, expectEpoch uint64, mustMatch bool) (uint64, error) {
	k.mu.Lock()
	if k.halted.Load() {
		k.mu.Unlock()
		return 0, ErrHalted
	}
	c, err := k.lookup(id)
	if err != nil {
		k.mu.Unlock()
		return 0, err
	}
	oldEpoch, _ := c.snapshot()
	if mustMatch && oldEpoch != expectEpoch {
		k.mu.Unlock()
		return oldEpoch, nil // someone already rebooted it
	}
	// Span start for the µ-reboot trace event: virtual time and
	// completed-invocation count before the fresh instance is installed.
	vt0 := k.clock.Load()
	steps0 := k.invCount.Load()
	newEpoch := oldEpoch + 1
	svc := c.factory()
	c.install(svc, newEpoch)

	// Eager (T0) wakeup: divert threads blocked inside the failed instance
	// back to their clients with a pending fault carrying the old epoch.
	// Threads that were already woken but not yet scheduled are diverted
	// too — their execution state inside the failed instance is gone —
	// with their consumed wakeup re-latched so the redo of a blocking call
	// does not lose it (exactly-once wakeup, recovered from kernel state).
	for _, bt := range k.threads {
		switch {
		case (bt.state == ThreadBlocked || bt.state == ThreadSleeping) && bt.blockedIn == id:
			bt.pendingFault = &Fault{Comp: id, Epoch: oldEpoch}
			bt.state = ThreadRunnable
			k.enqueueLocked(bt)
		case bt.state == ThreadRunnable && bt.topOfStackLocked() == id:
			// Woken but not yet scheduled: its execution state inside the
			// failed instance is gone, so divert it — re-latching the
			// consumed wakeup as a redo credit (Block case only) so the
			// retried call does not lose it.
			bt.pendingFault = &Fault{Comp: id, Epoch: oldEpoch}
			if bt.lastParkWasBlock {
				bt.wakePending = true
				bt.redoCredit = true
				if n := len(bt.fnStack); n > 0 {
					bt.creditFn = bt.fnStack[n-1]
				}
			}
		}
	}
	hooks := make([]RebootHook, len(k.rebootHooks))
	copy(hooks, k.rebootHooks)
	k.mu.Unlock()

	// Re-initialization upcall into the fresh instance (step 4 of the
	// paper's recovery sequence).
	if err := svc.Init(&BootContext{Kernel: k, Self: id, Epoch: newEpoch, Thread: t}); err != nil {
		return 0, fmt.Errorf("kernel: re-init of component %d after µ-reboot: %w", id, err)
	}
	for _, h := range hooks {
		h(t, id, newEpoch)
	}
	if tr := k.tracer.Load(); tr != nil {
		var tid int32
		if t != nil {
			tid = int32(t.id)
		}
		now := k.clock.Load()
		tr.RecordReboot(int32(id), tid, now, newEpoch, now-vt0, k.invCount.Load()-steps0)
	}

	// The eagerly woken threads may outrank the rebooting thread.
	if t != nil {
		k.mu.Lock()
		if t == k.current && !k.halted.Load() {
			k.preemptLocked(t)
		}
		k.mu.Unlock()
	}
	return newEpoch, nil
}

// EnsureRebooted µ-reboots component id only if its epoch still equals the
// epoch observed in a fault, so concurrent clients reboot a failed component
// exactly once. The epoch check and the reboot run in a single critical
// section (see reboot). It returns the component's (possibly advanced)
// epoch.
func (k *Kernel) EnsureRebooted(t *Thread, id ComponentID, faultEpoch uint64) (uint64, error) {
	return k.reboot(t, id, faultEpoch, true)
}

package kernel

import "fmt"

// Invoke performs a synchronous component invocation on behalf of thread t:
// the thread migrates into component dst, executes interface function fn
// there, and returns with a single word result — the COMPOSITE invocation
// primitive.
//
// If dst is in the failed state, Invoke immediately returns a *Fault
// carrying the failed epoch; the caller's stub is expected to run recovery
// and retry. If an installed invocation hook activates a fault while the
// thread executes inside dst (the SWIFI case), the invocation also unwinds
// with a *Fault, modeling fail-stop detection.
//
// The PhaseExit hook observes the return window: the return value is staged
// in the modeled EAX register across the hook, so a register flip there
// reaches the client, modeling fault propagation through return values.
func (k *Kernel) Invoke(t *Thread, dst ComponentID, fn string, args ...Word) (Word, error) {
	k.mu.Lock()
	if k.halted {
		k.mu.Unlock()
		return 0, ErrHalted
	}
	if t != k.current {
		k.mu.Unlock()
		return 0, ErrNotCurrent
	}
	c, err := k.compLocked(dst)
	if err != nil {
		k.mu.Unlock()
		return 0, err
	}
	if c.faulty {
		f := &Fault{Comp: dst, Epoch: c.epoch}
		k.mu.Unlock()
		return 0, f
	}
	svc := c.svc
	epoch := c.epoch
	hook := k.hook
	t.invStack = append(t.invStack, dst)
	t.fnStack = append(t.fnStack, fn)
	k.mu.Unlock()

	popped := false
	pop := func() {
		if popped {
			return
		}
		popped = true
		k.mu.Lock()
		if n := len(t.invStack); n > 0 && t.invStack[n-1] == dst {
			t.invStack = t.invStack[:n-1]
			t.fnStack = t.fnStack[:n-1]
		}
		k.invCount++
		// Deferred preemption: wakeups performed during the invocation take
		// effect at the invocation boundary.
		if len(t.invStack) == 0 && t == k.current && !k.halted {
			k.preemptLocked(t)
		}
		k.mu.Unlock()
	}
	defer pop()

	if hook != nil {
		hook(t, dst, fn, PhaseEntry)
		// A hang caught by the watchdog unwinds like a fail-stop fault.
		if f := k.takeWatchdogFault(t); f != nil {
			return 0, f
		}
		// Fail-stop: a fault activated at entry aborts the invocation
		// before the operation starts.
		if f, failed := k.faultIf(dst, epoch); failed {
			return 0, f
		}
	}

	ret, err := svc.Dispatch(t, fn, args)
	if err != nil {
		return ret, err
	}

	if hook != nil {
		// Stage the return value in EAX across the return-window hook. A
		// fault activated here fails the component for *subsequent*
		// invocations, but this operation already completed and its result
		// is delivered (possibly with a corrupted return value, the
		// propagation channel).
		t.regs.Val[RegEAX] = uint32(ret)
		hook(t, dst, fn, PhaseExit)
		// A hang in the return path means the result never reached the
		// client: when the watchdog catches it, the invocation unwinds
		// with the fault (and the rebuilt server replays the operation on
		// the redo) instead of delivering a result that was never returned.
		if f := k.takeWatchdogFault(t); f != nil {
			return 0, f
		}
		ret = Word(int32(t.regs.Val[RegEAX]))
	}
	// The retried invocation completed: drop any unconsumed redo credit so
	// it cannot surface later as a spurious wakeup.
	k.mu.Lock()
	if t.redoCredit && t.creditFn == fn {
		t.redoCredit = false
		t.creditFn = ""
		t.wakePending = false
	}
	k.mu.Unlock()
	return ret, nil
}

// Upcall invokes fn in component dst on behalf of t, exactly like Invoke but
// named for the reverse direction: recovery infrastructure calling *into* a
// client component (mechanism U0) rather than a client calling a server.
func (k *Kernel) Upcall(t *Thread, dst ComponentID, fn string, args ...Word) (Word, error) {
	return k.Invoke(t, dst, fn, args...)
}

// faultIf returns the pending fault for comp if its failed flag was raised
// (or it was already rebooted past epoch) while the caller executed inside.
func (k *Kernel) faultIf(comp ComponentID, epoch uint64) (*Fault, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, err := k.compLocked(comp)
	if err != nil {
		return nil, false
	}
	if c.faulty {
		return &Fault{Comp: comp, Epoch: c.epoch}, true
	}
	if c.epoch != epoch {
		return &Fault{Comp: comp, Epoch: epoch}, true
	}
	return nil, false
}

// Executing reports the component at depth i of thread t's invocation stack;
// it exists for services that need their caller's identity (COMPOSITE passes
// the client's component ID, or "spdid", on invocations).
func (k *Kernel) Executing(t *Thread) ComponentID {
	k.mu.Lock()
	defer k.mu.Unlock()
	if n := len(t.invStack); n > 0 {
		return t.invStack[n-1]
	}
	return 0
}

// Caller returns the component that invoked the current one on thread t: the
// second-innermost entry of the invocation stack, or zero for application
// ("home") code.
func (k *Kernel) Caller(t *Thread) ComponentID {
	k.mu.Lock()
	defer k.mu.Unlock()
	if n := len(t.invStack); n > 1 {
		return t.invStack[n-2]
	}
	return 0
}

// DispatchError annotates an unknown-function dispatch with context; service
// Dispatch implementations use it for their default case.
func DispatchError(svc string, fn string) error {
	return fmt.Errorf("%w: %s.%s", ErrNoSuchFunction, svc, fn)
}

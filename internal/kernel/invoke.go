package kernel

import "fmt"

// Invoke performs a synchronous component invocation on behalf of thread t:
// the thread migrates into component dst, executes interface function fn
// there, and returns with a single word result — the COMPOSITE invocation
// primitive.
//
// If dst is in the failed state, Invoke immediately returns a *Fault
// carrying the failed epoch; the caller's stub is expected to run recovery
// and retry. If an installed invocation hook activates a fault while the
// thread executes inside dst (the SWIFI case), the invocation also unwinds
// with a *Fault, modeling fail-stop detection.
//
// The PhaseExit hook observes the return window: the return value is staged
// in the modeled EAX register across the hook, so a register flip there
// reaches the client, modeling fault propagation through return values.
//
// The fault-free path is lock-free: the halted flag, current-thread check,
// component (epoch, faulty) snapshot, service instance, and hook are all
// single atomic loads, and the invocation stack is mutated only by its
// owning thread. k.mu is taken only at the invocation boundary when a
// wakeup was enqueued during the invocation (deferred preemption), and on
// the fault/redo slow paths. See DESIGN.md "Invocation fast path".
func (k *Kernel) Invoke(t *Thread, dst ComponentID, fn string, args ...Word) (Word, error) {
	return k.InvokePost(t, dst, fn, nil, args...)
}

// InvokePost is Invoke with a post-completion callback: after a successful
// dispatch (and the PhaseExit hook), post runs with the final return value
// while the thread is still on the server's core — before the return
// migration of a cross-core invocation. Client stubs pass their descriptor
// tracking here so that "operation completed" and "operation tracked" are
// atomic under the scheduler: on a single-core machine no park separates
// them, and without this a thread parked on the return migration leaves a
// completed-but-untracked operation that concurrent recovery replay cannot
// see. post is not called when the invocation unwinds with an error.
func (k *Kernel) InvokePost(t *Thread, dst ComponentID, fn string, post func(Word), args ...Word) (Word, error) {
	if k.halted.Load() {
		return 0, ErrHalted
	}
	// k.current is written by the dispatcher before it signals the thread's
	// resume channel, so the running thread's read here is ordered after the
	// write (channel happens-before); no other writer runs while t does.
	if t != k.current {
		return 0, ErrNotCurrent
	}
	c := k.comp(dst)
	if c == nil {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchComponent, dst)
	}
	// The epoch snapshot is taken BEFORE any park this call can perform
	// (boot gate, cross-core migration): the caller's stub translated its
	// arguments against this epoch, and every later fault check compares
	// against it, so a µ-reboot that slips into one of the park windows is
	// detected as a *Fault and the stub redoes with fresh translations.
	epoch, faulty := c.snapshot()
	if faulty {
		kind, sev := c.faultMeta()
		return 0, &Fault{Comp: dst, Epoch: epoch, Kind: kind, Severity: sev}
	}
	// Multi-core machines gate on a µ-reboot in progress: between a fresh
	// instance's install and the completion of its Init upcall, the
	// component must not be dispatched (its state is not constructed yet),
	// so invokers park until the boot gate opens. The rebooting thread
	// itself passes through — the reboot hooks replay held invocations into
	// the fresh instance. Single-core machines never open the window (the
	// booter cannot park mid-boot), so the fast path stays lock-free.
	if k.multicore {
		k.mu.Lock()
		for c.booting && c.bootThread != t && !k.halted.Load() {
			k.waitBootLocked(t, c)
		}
		halted := k.halted.Load()
		k.mu.Unlock()
		if halted {
			return 0, ErrHalted
		}
	}
	svc := c.service()
	hook := k.invokeHook()
	if tr := k.tracer.Load(); tr != nil {
		tr.RecordInvoke(int32(dst), int32(t.id), fn, k.clock.Load(), epoch)
	}
	// Snapshot the ready-queue insert counter: if it is unchanged at the
	// invocation boundary, no wakeup happened and the deferred-preemption
	// check (the one remaining k.mu acquisition) can be skipped.
	readySeq := k.readySeq.Load()

	// Owner-only push: only the running thread mutates its own invocation
	// stack (execution is serialized by the dispatcher even on multi-core
	// machines). The atomic curComp mirror is what cross-thread readers
	// (ReflectThreads, Executing) see.
	t.invStack = append(t.invStack, dst)
	t.fnStack = append(t.fnStack, fn)
	t.curComp.Store(int32(dst))

	// Cross-core invocation: when the server component is homed on another
	// core, the thread migrates there before the hook and the dispatch, and
	// back to the caller's core when the invocation unwinds (fault paths
	// included — the stub's redo then re-migrates). Single-core machines
	// skip even the affinity load. A thread inside a non-preemptible
	// section never migrates (as with preemption disabled on a real
	// kernel): a migration parks the thread and hands the core to other
	// work, which would let another thread observe the critical section's
	// intermediate state — recovery walks depend on this to stay atomic.
	prevCore := int32(-1)
	savedXC := t.crossCoreInv
	if k.multicore && t.noPreempt == 0 {
		if home := c.core.Load(); home >= 0 && home != t.core {
			prevCore = t.core
			k.migrate(t, home, true)
		}
	}
	t.crossCoreInv = prevCore >= 0

	popped := false
	pop := func() {
		if popped {
			return
		}
		popped = true
		if n := len(t.invStack); n > 0 && t.invStack[n-1] == dst {
			t.invStack = t.invStack[:n-1]
			t.fnStack = t.fnStack[:n-1]
		}
		t.publishTop()
		t.crossCoreInv = savedXC
		if prevCore >= 0 {
			// Return migration to the caller's core (skipped when the
			// machine halted: migrate would just unwind the goroutine).
			k.migrate(t, prevCore, false)
		}
		k.invCount.Add(1)
		// Deferred preemption: wakeups performed during the invocation take
		// effect at the invocation boundary. If no ready-queue insert
		// happened since entry, no higher-priority thread can have become
		// runnable (any thread runnable at entry would already have
		// preempted us at an earlier boundary), so the check is skipped
		// without taking the lock.
		if len(t.invStack) == 0 && k.readySeq.Load() != readySeq {
			k.mu.Lock()
			if t == k.current && !k.halted.Load() {
				k.preemptLocked(t)
			}
			k.mu.Unlock()
		}
	}
	defer pop()

	if hook != nil {
		hook(t, dst, fn, PhaseEntry)
		// A hang caught by the watchdog unwinds like a fail-stop fault.
		if f := t.takeWatchdogFault(); f != nil {
			return 0, f
		}
	}
	// A transient fault armed on the thread (message loss, via hook or
	// direct injection): the request never reaches the server — unwind
	// without dispatching. The component is NOT failed; the stub
	// retransmits.
	if f := t.takeInjectedFault(); f != nil {
		return 0, f
	}
	// Fail-stop: a fault activated at entry aborts the invocation before
	// the operation starts.
	if f, failed := k.faultIf(dst, epoch); failed {
		return 0, f
	}
	// Duplicate delivery armed on the thread (message duplication): the
	// server executes the operation twice — the duplicate runs first and
	// its result is discarded; the "real" delivery below is the one whose
	// result the client sees.
	if t.takeInjectDup() {
		if _, derr := svc.Dispatch(t, fn, args); derr != nil {
			return 0, derr
		}
		if f := t.takeWatchdogFault(); f != nil {
			return 0, f
		}
		if f, failed := k.faultIf(dst, epoch); failed {
			return 0, f
		}
	}

	ret, err := svc.Dispatch(t, fn, args)
	if err != nil {
		return ret, err
	}

	if hook != nil {
		// Stage the return value in EAX across the return-window hook. A
		// fault activated here fails the component for *subsequent*
		// invocations, but this operation already completed and its result
		// is delivered (possibly with a corrupted return value, the
		// propagation channel).
		t.regs.Val[RegEAX] = uint32(ret)
		hook(t, dst, fn, PhaseExit)
		// A hang in the return path means the result never reached the
		// client: when the watchdog catches it, the invocation unwinds
		// with the fault (and the rebuilt server replays the operation on
		// the redo) instead of delivering a result that was never returned.
		if f := t.takeWatchdogFault(); f != nil {
			return 0, f
		}
		ret = Word(int32(t.regs.Val[RegEAX]))
	}
	if post != nil {
		post(ret)
	}
	// The retried invocation completed: drop any unconsumed redo credit so
	// it cannot surface later as a spurious wakeup. redoCredit is latched
	// only while t is parked (under k.mu, ordered before t resumed), so the
	// owner's unlocked read is safe; the clear takes the lock because
	// wakePending can be set concurrently by ExternalWakeup.
	if t.redoCredit && t.creditFn == fn {
		k.mu.Lock()
		if t.redoCredit && t.creditFn == fn {
			t.redoCredit = false
			t.creditFn = ""
			t.wakePending = false
		}
		k.mu.Unlock()
	}
	return ret, nil
}

// Upcall invokes fn in component dst on behalf of t, exactly like Invoke but
// in the reverse direction: recovery infrastructure calling *into* a client
// component (mechanism U0) rather than a client calling a server. Upcalls
// are counted separately (UpcallCount) so recovery-cost accounting never
// conflates the two directions.
func (k *Kernel) Upcall(t *Thread, dst ComponentID, fn string, args ...Word) (Word, error) {
	k.upcallCount.Add(1)
	if tr := k.tracer.Load(); tr != nil {
		var tid int32
		if t != nil {
			tid = int32(t.id)
		}
		var gen uint64
		if c := k.comp(dst); c != nil {
			gen = c.curEpoch()
		}
		tr.RecordUpcall(int32(dst), tid, fn, k.clock.Load(), gen)
	}
	return k.Invoke(t, dst, fn, args...)
}

// faultIf returns the pending fault for comp if its failed flag was raised
// (or it was already rebooted past epoch) while the caller executed inside.
// Lock-free: one atomic snapshot.
func (k *Kernel) faultIf(comp ComponentID, epoch uint64) (*Fault, bool) {
	c := k.comp(comp)
	if c == nil {
		return nil, false
	}
	cur, faulty := c.snapshot()
	if faulty {
		kind, sev := c.faultMeta()
		return &Fault{Comp: comp, Epoch: cur, Kind: kind, Severity: sev}, true
	}
	if cur != epoch {
		return &Fault{Comp: comp, Epoch: epoch}, true
	}
	return nil, false
}

// Executing reports the innermost component of thread t's invocation stack;
// it exists for services that need their caller's identity (COMPOSITE passes
// the client's component ID, or "spdid", on invocations). It reads the
// thread's atomically published stack top, so it is safe from any goroutine.
func (k *Kernel) Executing(t *Thread) ComponentID {
	return ComponentID(t.curComp.Load())
}

// Caller returns the component that invoked the current one on thread t: the
// second-innermost entry of the invocation stack, or zero for application
// ("home") code. It reads the stack directly and must only be called from
// the thread itself (services resolving their invoker) or while the thread
// is quiescent.
func (k *Kernel) Caller(t *Thread) ComponentID {
	if n := len(t.invStack); n > 1 {
		return t.invStack[n-2]
	}
	return 0
}

// DispatchError annotates an unknown-function dispatch with context; service
// Dispatch implementations use it for their default case.
func DispatchError(svc string, fn string) error {
	return fmt.Errorf("%w: %s.%s", ErrNoSuchFunction, svc, fn)
}

package kernel

import (
	"errors"
	"sync"
	"testing"
)

// hangOnce is an invoke hook that hangs the thread at the Nth PhaseEntry
// into comp, modeling the SWIFI EffectHang manifestation.
func hangOnce(k *Kernel, comp ComponentID, at int) InvokeHook {
	seen := 0
	fired := false
	return func(t *Thread, c ComponentID, fn string, phase InvokePhase) {
		if fired || c != comp || phase != PhaseEntry {
			return
		}
		seen++
		if seen == at {
			fired = true
			k.HangCurrent(t)
		}
	}
}

// TestWatchdogConvertsHangToComponentFault: a hang inside a component with
// the watchdog enabled unwinds the invocation with a *Fault; the client
// µ-reboots the component, retries, and the workload completes with Run
// returning nil instead of ErrHang.
func TestWatchdogConvertsHangToComponentFault(t *testing.T) {
	k := New()
	k.EnableWatchdog(WatchdogConfig{Budget: 500})
	id := k.MustRegister(newEchoFactory(nil))
	k.SetInvokeHook(hangOnce(k, id, 1))

	var got Word
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		_, err := k.Invoke(th, id, "echo", 42)
		flt, ok := AsFault(err)
		if !ok || flt.Comp != id {
			t.Errorf("Invoke err = %v; want *Fault in comp %d", err, id)
			return
		}
		if !k.Faulty(id) {
			t.Error("component not marked faulty after watchdog-caught hang")
		}
		if _, err := k.EnsureRebooted(th, id, flt.Epoch); err != nil {
			t.Errorf("EnsureRebooted: %v", err)
			return
		}
		got, err = k.Invoke(th, id, "echo", 42)
		if err != nil {
			t.Errorf("retry after µ-reboot: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run = %v; want nil (hang must not halt the machine)", err)
	}
	if got != 42 {
		t.Fatalf("retried invocation = %d; want 42", got)
	}
	st := k.WatchdogStats()
	if st.HangsCaught != 1 || st.LastComp != id {
		t.Fatalf("stats = %+v; want 1 hang caught in comp %d", st, id)
	}
	if !k.Hung() {
		t.Fatal("Hung() = false; the hang did occur")
	}
	if k.Now() < 500 {
		t.Fatalf("clock = %d; the caught hang must charge the 500µs budget", k.Now())
	}
}

// TestWatchdogBudgetPerComponent: SetInvokeBudget overrides the config
// default, and the charged virtual time reflects it.
func TestWatchdogBudgetPerComponent(t *testing.T) {
	k := New()
	k.EnableWatchdog(WatchdogConfig{Budget: 500})
	id := k.MustRegister(newEchoFactory(nil))
	if err := k.SetInvokeBudget(id, 7000); err != nil {
		t.Fatalf("SetInvokeBudget: %v", err)
	}
	if got := k.InvokeBudget(id); got != 7000 {
		t.Fatalf("InvokeBudget = %d; want 7000", got)
	}
	k.SetInvokeHook(hangOnce(k, id, 1))
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		if _, err := k.Invoke(th, id, "echo", 1); err == nil {
			t.Error("Invoke succeeded; want watchdog fault")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run = %v; want nil", err)
	}
	if k.Now() < 7000 {
		t.Fatalf("clock = %d; want the per-component 7000µs budget charged", k.Now())
	}
}

// TestWatchdogUnattributableHangStillHalts: a hang in home (application)
// code has no component to blame; Run must still return ErrHang.
func TestWatchdogUnattributableHangStillHalts(t *testing.T) {
	k := New()
	k.EnableWatchdog(WatchdogConfig{})
	if _, err := k.CreateThread(nil, "looper", 10, func(th *Thread) {
		k.HangCurrent(th)
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); !errors.Is(err, ErrHang) {
		t.Fatalf("Run = %v; want ErrHang for an unattributable hang", err)
	}
	if st := k.WatchdogStats(); st.Unattributable == 0 {
		t.Fatalf("stats = %+v; want unattributable hang counted", st)
	}
}

// TestWatchdogDeadlockAttribution: a thread blocked forever inside a
// component (lost wakeup) would deadlock the machine; the watchdog blames
// the component it is blocked in, fails it, and diverts the thread with a
// *Fault so the run completes.
func TestWatchdogDeadlockAttribution(t *testing.T) {
	k := New()
	k.EnableWatchdog(WatchdogConfig{})
	id := k.MustRegister(newEchoFactory(nil))

	var blockErr error
	if _, err := k.CreateThread(nil, "waiter", 10, func(th *Thread) {
		// "block" parks inside the echo component; nobody ever wakes it.
		_, blockErr = k.Invoke(th, id, "block")
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run = %v; want nil (watchdog resolves the deadlock)", err)
	}
	flt, ok := AsFault(blockErr)
	if !ok || flt.Comp != id {
		t.Fatalf("blocked invocation err = %v; want *Fault in comp %d", blockErr, id)
	}
	st := k.WatchdogStats()
	if st.DeadlocksAttributed != 1 || st.LastComp != id {
		t.Fatalf("stats = %+v; want 1 deadlock attributed to comp %d", st, id)
	}
}

// TestWatchdogInterventionCap: a divert/redo/block cycle that never makes
// progress must not loop forever — past MaxInterventions the machine halts
// with ErrHang.
func TestWatchdogInterventionCap(t *testing.T) {
	k := New()
	k.EnableWatchdog(WatchdogConfig{MaxInterventions: 3})
	id := k.MustRegister(newEchoFactory(nil))
	if _, err := k.CreateThread(nil, "stubborn", 10, func(th *Thread) {
		for {
			_, err := k.Invoke(th, id, "block")
			flt, ok := AsFault(err)
			if !ok {
				return
			}
			// A stubborn client: reboot and immediately block again.
			if _, err := k.EnsureRebooted(th, id, flt.Epoch); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); !errors.Is(err, ErrHang) {
		t.Fatalf("Run = %v; want ErrHang once the intervention budget is spent", err)
	}
	if st := k.WatchdogStats(); st.DeadlocksAttributed != 3 {
		t.Fatalf("stats = %+v; want exactly 3 interventions", st)
	}
}

// TestWatchdogDisabledKeepsLegacyHangSemantics: without EnableWatchdog a
// component-attributable hang still halts the machine (the paper's fail-stop
// model).
func TestWatchdogDisabledKeepsLegacyHangSemantics(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	k.SetInvokeHook(hangOnce(k, id, 1))
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		_, _ = k.Invoke(th, id, "echo", 1)
		t.Error("invocation returned; a legacy hang must park the thread forever")
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); !errors.Is(err, ErrHang) {
		t.Fatalf("Run = %v; want ErrHang with the watchdog off", err)
	}
}

// TestEnsureRebootedConcurrentClients is the TOCTOU regression test: many
// clients observing the same fault race EnsureRebooted; the expected-epoch
// check and the reboot run in one critical section, so exactly one client
// µ-reboots and the epoch advances exactly once.
func TestEnsureRebootedConcurrentClients(t *testing.T) {
	var boots []uint64
	k := New()
	id := k.MustRegister(newEchoFactory(&boots))
	if err := k.FailComponent(id); err != nil {
		t.Fatalf("FailComponent: %v", err)
	}

	const clients = 16
	epochs := make([]uint64, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := k.EnsureRebooted(nil, id, 0)
			if err != nil {
				t.Errorf("client %d: EnsureRebooted: %v", i, err)
				return
			}
			epochs[i] = e
		}(i)
	}
	wg.Wait()

	if e, _ := k.Epoch(id); e != 1 {
		t.Fatalf("epoch = %d after concurrent EnsureRebooted; want exactly 1", e)
	}
	// Initial boot (epoch 0) plus exactly one µ-reboot (epoch 1).
	if len(boots) != 2 || boots[1] != 1 {
		t.Fatalf("boots = %v; want [0 1]: the reboot must happen exactly once", boots)
	}
	for i, e := range epochs {
		if e != 1 {
			t.Fatalf("client %d observed epoch %d; want 1", i, e)
		}
	}
	if k.Faulty(id) {
		t.Fatal("component still faulty after EnsureRebooted")
	}
}

package kernel

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// echoSvc is a trivial component used across kernel tests: it echoes
// arguments, can block the calling thread, and records its boot epochs.
type echoSvc struct {
	boots   *[]uint64 // shared across reboots via closure
	k       *Kernel
	self    ComponentID
	blocked []ThreadID
	calls   int
}

func newEchoFactory(boots *[]uint64) func() Service {
	return func() Service { return &echoSvc{boots: boots} }
}

func (e *echoSvc) Name() string { return "echo" }

func (e *echoSvc) Init(bc *BootContext) error {
	e.k = bc.Kernel
	e.self = bc.Self
	if e.boots != nil {
		*e.boots = append(*e.boots, bc.Epoch)
	}
	return nil
}

func (e *echoSvc) Dispatch(t *Thread, fn string, args []Word) (Word, error) {
	e.calls++
	switch fn {
	case "echo":
		if len(args) == 0 {
			return 0, nil
		}
		return args[0], nil
	case "add":
		var sum Word
		for _, a := range args {
			sum += a
		}
		return sum, nil
	case "block":
		e.blocked = append(e.blocked, t.ID())
		if err := e.k.Block(t); err != nil {
			return 0, err
		}
		return 1, nil
	case "wake":
		if err := e.k.Wakeup(t, ThreadID(args[0])); err != nil {
			return 0, err
		}
		return 0, nil
	case "nested":
		return e.k.Invoke(t, ComponentID(args[0]), "echo", args[1])
	default:
		return 0, DispatchError(e.Name(), fn)
	}
}

// runOne runs a single-thread simulation and returns Run's error.
func runOne(t *testing.T, body func(k *Kernel, th *Thread), comps ...func() Service) (*Kernel, error) {
	t.Helper()
	k := New()
	for _, c := range comps {
		k.MustRegister(c)
	}
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) { body(k, th) }); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	return k, k.Run()
}

func TestRegisterAssignsDenseIDs(t *testing.T) {
	k := New()
	id1 := k.MustRegister(newEchoFactory(nil))
	id2 := k.MustRegister(newEchoFactory(nil))
	if id1 != 1 || id2 != 2 {
		t.Fatalf("got ids %d, %d; want 1, 2", id1, id2)
	}
	if got := k.Components(); len(got) != 2 {
		t.Fatalf("Components() = %v; want 2 entries", got)
	}
	if name := k.ComponentName(id1); name != "echo" {
		t.Fatalf("ComponentName = %q; want echo", name)
	}
}

func TestRegisterNilFactory(t *testing.T) {
	k := New()
	if _, err := k.Register(nil); err == nil {
		t.Fatal("Register(nil) succeeded; want error")
	}
	if _, err := k.Register(func() Service { return nil }); err == nil {
		t.Fatal("Register(nil-returning factory) succeeded; want error")
	}
}

func TestInvokeEcho(t *testing.T) {
	var got Word
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	_, err := k.CreateThread(nil, "main", 1, func(th *Thread) {
		v, err := k.Invoke(th, id, "echo", 42)
		if err != nil {
			t.Errorf("Invoke: %v", err)
		}
		got = v
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 42 {
		t.Fatalf("echo returned %d; want 42", got)
	}
	if n := k.InvocationCount(); n != 1 {
		t.Fatalf("InvocationCount = %d; want 1", n)
	}
}

func TestInvokeUnknownComponent(t *testing.T) {
	_, err := runOne(t, func(k *Kernel, th *Thread) {
		if _, err := k.Invoke(th, 99, "echo"); !errors.Is(err, ErrNoSuchComponent) {
			t.Errorf("Invoke unknown comp: err = %v; want ErrNoSuchComponent", err)
		}
	}, newEchoFactory(nil))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	_, err := runOne(t, func(k *Kernel, th *Thread) {
		if _, err := k.Invoke(th, 1, "bogus"); !errors.Is(err, ErrNoSuchFunction) {
			t.Errorf("Invoke bogus fn: err = %v; want ErrNoSuchFunction", err)
		}
	}, newEchoFactory(nil))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNestedInvocationTracksStack(t *testing.T) {
	k := New()
	a := k.MustRegister(newEchoFactory(nil))
	b := k.MustRegister(newEchoFactory(nil))
	var depthAtB ComponentID
	k.SetInvokeHook(func(th *Thread, comp ComponentID, fn string, phase InvokePhase) {
		if comp == b && phase == PhaseEntry {
			depthAtB = th.Executing()
		}
	})
	_, err := k.CreateThread(nil, "main", 1, func(th *Thread) {
		v, err := k.Invoke(th, a, "nested", Word(b), 7)
		if err != nil || v != 7 {
			t.Errorf("nested invoke = (%d, %v); want (7, nil)", v, err)
		}
		if got := th.Executing(); got != 0 {
			t.Errorf("Executing after return = %d; want 0", got)
		}
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depthAtB != b {
		t.Fatalf("innermost component during nested call = %d; want %d", depthAtB, b)
	}
}

func TestPriorityOrderAndFIFO(t *testing.T) {
	k := New()
	var order []string
	mk := func(name string, prio int) {
		if _, err := k.CreateThread(nil, name, prio, func(th *Thread) {
			order = append(order, name)
		}); err != nil {
			t.Fatalf("CreateThread(%s): %v", name, err)
		}
	}
	mk("low", 20)
	mk("hi-1", 5)
	mk("mid", 10)
	mk("hi-2", 5)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"hi-1", "hi-2", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v; want %v", order, want)
		}
	}
}

func TestBlockWakeupPingPong(t *testing.T) {
	k := New()
	var trace []string
	var aid, bid ThreadID
	var err error
	aid, err = k.CreateThread(nil, "a", 10, func(th *Thread) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "a")
			if err := k.Wakeup(th, bid); err != nil {
				t.Errorf("wakeup b: %v", err)
			}
			if err := k.Block(th); err != nil {
				t.Errorf("block a: %v", err)
			}
		}
		if err := k.Wakeup(th, bid); err != nil {
			t.Errorf("final wakeup: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("CreateThread a: %v", err)
	}
	bid, err = k.CreateThread(nil, "b", 10, func(th *Thread) {
		for i := 0; i < 3; i++ {
			if err := k.Block(th); err != nil {
				t.Errorf("block b: %v", err)
			}
			trace = append(trace, "b")
			if err := k.Wakeup(th, aid); err != nil {
				t.Errorf("wakeup a: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatalf("CreateThread b: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "a b a b a b"
	got := fmt.Sprint(trace)
	if got != "["+want+"]" {
		t.Fatalf("trace = %v; want alternating a/b ×3", trace)
	}
}

func TestWakeupPreemptsLowerPriority(t *testing.T) {
	k := New()
	var order []string
	var hiID ThreadID
	var err error
	hiID, err = k.CreateThread(nil, "hi", 1, func(th *Thread) {
		if err := k.Block(th); err != nil {
			t.Errorf("block hi: %v", err)
		}
		order = append(order, "hi-resumed")
	})
	if err != nil {
		t.Fatalf("CreateThread hi: %v", err)
	}
	if _, err := k.CreateThread(nil, "lo", 10, func(th *Thread) {
		order = append(order, "lo-before-wake")
		if err := k.Wakeup(th, hiID); err != nil {
			t.Errorf("wakeup: %v", err)
		}
		order = append(order, "lo-after-wake")
	}); err != nil {
		t.Fatalf("CreateThread lo: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"lo-before-wake", "hi-resumed", "lo-after-wake"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v; want %v (wakeup of higher prio must preempt)", order, want)
	}
}

func TestWakeupOfRunnableLatches(t *testing.T) {
	k := New()
	var other ThreadID
	var err error
	other, err = k.CreateThread(nil, "other", 10, func(th *Thread) {
		// The latched wakeup (sent while we were still runnable) must make
		// this Block return immediately instead of deadlocking.
		if err := k.Block(th); err != nil {
			t.Errorf("Block with latched wakeup: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "main", 5, func(th *Thread) {
		if err := k.Wakeup(th, other); err != nil {
			t.Errorf("Wakeup of runnable thread: %v; want nil (latched)", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := New()
	if _, err := k.CreateThread(nil, "sleeper", 10, func(th *Thread) {
		if err := k.Sleep(th, 250); err != nil {
			t.Errorf("Sleep: %v", err)
		}
		if now := k.Now(); now < 250 {
			t.Errorf("Now = %d after 250µs sleep; want ≥ 250", now)
		}
		if err := k.Sleep(th, 100); err != nil {
			t.Errorf("Sleep: %v", err)
		}
		if now := k.Now(); now < 350 {
			t.Errorf("Now = %d; want ≥ 350", now)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSleepersWakeInDeadlineOrder(t *testing.T) {
	k := New()
	var order []string
	mk := func(name string, d Time) {
		if _, err := k.CreateThread(nil, name, 10, func(th *Thread) {
			if err := k.Sleep(th, d); err != nil {
				t.Errorf("Sleep(%s): %v", name, err)
			}
			order = append(order, name)
		}); err != nil {
			t.Fatalf("CreateThread: %v", err)
		}
	}
	mk("late", 300)
	mk("early", 100)
	mk("mid", 200)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"early", "mid", "late"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v; want %v", order, want)
		}
	}
}

func TestHangDetection(t *testing.T) {
	k := New()
	if _, err := k.CreateThread(nil, "stuck", 10, func(th *Thread) {
		_ = k.Block(th) // nobody will wake us
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); !errors.Is(err, ErrHang) {
		t.Fatalf("Run = %v; want ErrHang", err)
	}
	if !k.Halted() {
		t.Fatal("kernel not halted after hang")
	}
}

func TestPanicInThreadHaltsWithError(t *testing.T) {
	k := New()
	if _, err := k.CreateThread(nil, "bad", 10, func(th *Thread) {
		panic("boom")
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	err := k.Run()
	if err == nil || !k.Halted() {
		t.Fatalf("Run = %v; want panic-derived error and halt", err)
	}
}

func TestFailComponentDeliversFault(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		if err := k.FailComponent(id); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if !k.Faulty(id) {
			t.Error("Faulty = false after FailComponent")
		}
		_, err := k.Invoke(th, id, "echo", 1)
		f, ok := AsFault(err)
		if !ok {
			t.Fatalf("Invoke of failed comp: err = %v; want *Fault", err)
		}
		if f.Comp != id || f.Epoch != 0 {
			t.Errorf("fault = %+v; want comp %d epoch 0", f, id)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRebootBumpsEpochAndReinits(t *testing.T) {
	var boots []uint64
	k := New()
	id := k.MustRegister(newEchoFactory(&boots))
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		if err := k.FailComponent(id); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		epoch, err := k.Reboot(th, id)
		if err != nil || epoch != 1 {
			t.Errorf("Reboot = (%d, %v); want (1, nil)", epoch, err)
		}
		if k.Faulty(id) {
			t.Error("component still faulty after reboot")
		}
		// The new instance must serve invocations again.
		if v, err := k.Invoke(th, id, "echo", 9); err != nil || v != 9 {
			t.Errorf("post-reboot invoke = (%d, %v); want (9, nil)", v, err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(boots) != 2 || boots[0] != 0 || boots[1] != 1 {
		t.Fatalf("boot epochs = %v; want [0 1]", boots)
	}
}

func TestEnsureRebootedIsOncePerEpoch(t *testing.T) {
	var boots []uint64
	k := New()
	id := k.MustRegister(newEchoFactory(&boots))
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		if err := k.FailComponent(id); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		e1, err := k.EnsureRebooted(th, id, 0)
		if err != nil || e1 != 1 {
			t.Errorf("first EnsureRebooted = (%d, %v); want (1, nil)", e1, err)
		}
		e2, err := k.EnsureRebooted(th, id, 0) // stale epoch: no-op
		if err != nil || e2 != 1 {
			t.Errorf("second EnsureRebooted = (%d, %v); want (1, nil)", e2, err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(boots) != 2 {
		t.Fatalf("component booted %d times; want 2 (initial + one reboot)", len(boots))
	}
}

func TestRebootDivertsBlockedThreadsWithFault(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	var blockedErr error
	if _, err := k.CreateThread(nil, "victim", 5, func(th *Thread) {
		_, blockedErr = k.Invoke(th, id, "block")
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "rebooter", 10, func(th *Thread) {
		// victim (higher prio) runs first and blocks inside the component.
		if err := k.FailComponent(id); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := k.Reboot(th, id); err != nil {
			t.Errorf("Reboot: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f, ok := AsFault(blockedErr)
	if !ok {
		t.Fatalf("blocked invocation returned %v; want *Fault (T0 eager divert)", blockedErr)
	}
	if f.Comp != id || f.Epoch != 0 {
		t.Fatalf("diverted fault = %+v; want comp %d epoch 0", f, id)
	}
}

func TestRebootHookRuns(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	var hookComp ComponentID
	var hookEpoch uint64
	k.AddRebootHook(func(th *Thread, comp ComponentID, epoch uint64) {
		hookComp, hookEpoch = comp, epoch
	})
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		if _, err := k.Reboot(th, id); err != nil {
			t.Errorf("Reboot: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hookComp != id || hookEpoch != 1 {
		t.Fatalf("reboot hook saw (%d, %d); want (%d, 1)", hookComp, hookEpoch, id)
	}
}

func TestCrashSystem(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		k.CrashSystem(th, id, "wild pointer dereference")
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	err := k.Run()
	var crash *SystemCrash
	if !errors.As(err, &crash) {
		t.Fatalf("Run = %v; want *SystemCrash", err)
	}
	if crash.Comp != id || crash.Reason == "" {
		t.Fatalf("crash = %+v; want comp %d with reason", crash, id)
	}
	if k.Crash() == nil {
		t.Fatal("Crash() = nil after system crash")
	}
}

func TestHangCurrentHaltsSystem(t *testing.T) {
	k := New()
	if _, err := k.CreateThread(nil, "looper", 10, func(th *Thread) {
		k.HangCurrent(th)
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); !errors.Is(err, ErrHang) {
		t.Fatalf("Run = %v; want ErrHang", err)
	}
	if !k.Hung() {
		t.Fatal("Hung() = false after HangCurrent")
	}
}

func TestReflectThreads(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	if _, err := k.CreateThread(nil, "blocker", 5, func(th *Thread) {
		if _, err := k.Invoke(th, id, "block"); err != nil {
			// diverted at halt; fine
			return
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "observer", 10, func(th *Thread) {
		infos := k.ReflectThreads()
		if len(infos) != 2 {
			t.Errorf("ReflectThreads returned %d entries; want 2", len(infos))
			return
		}
		var blocker ThreadInfo
		for _, info := range infos {
			if info.Name == "blocker" {
				blocker = info
			}
		}
		if blocker.State != ThreadBlocked || blocker.BlockedIn != id {
			t.Errorf("blocker info = %+v; want blocked in comp %d", blocker, id)
		}
		if blocker.Prio != 5 {
			t.Errorf("blocker prio = %d; want 5", blocker.Prio)
		}
		if err := k.Wakeup(th, blocker.ID); err != nil {
			t.Errorf("Wakeup: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestYieldRoundRobinsEqualPriority(t *testing.T) {
	k := New()
	var order []string
	mk := func(name string, rounds int) {
		if _, err := k.CreateThread(nil, name, 10, func(th *Thread) {
			for i := 0; i < rounds; i++ {
				order = append(order, name)
				if err := k.Yield(th); err != nil {
					t.Errorf("Yield: %v", err)
				}
			}
		}); err != nil {
			t.Fatalf("CreateThread: %v", err)
		}
	}
	mk("x", 2)
	mk("y", 2)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"x", "y", "x", "y"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v; want %v", order, want)
		}
	}
}

func TestInvokeHookPhases(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	var phases []InvokePhase
	k.SetInvokeHook(func(th *Thread, comp ComponentID, fn string, phase InvokePhase) {
		phases = append(phases, phase)
	})
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		if _, err := k.Invoke(th, id, "echo", 5); err != nil {
			t.Errorf("Invoke: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(phases) != 2 || phases[0] != PhaseEntry || phases[1] != PhaseExit {
		t.Fatalf("hook phases = %v; want [entry exit]", phases)
	}
}

func TestReturnValueFlowsThroughEAX(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	k.SetInvokeHook(func(th *Thread, comp ComponentID, fn string, phase InvokePhase) {
		if phase == PhaseExit {
			th.Regs().Val[RegEAX] ^= 1 << 3 // flip one bit of the return value
		}
	})
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		v, err := k.Invoke(th, id, "echo", 16)
		if err != nil {
			t.Errorf("Invoke: %v", err)
		}
		if v != 24 { // 16 ^ 8
			t.Errorf("corrupted return = %d; want 24", v)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestHookActivatedFaultUnwindsInvocation(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	k.SetInvokeHook(func(th *Thread, comp ComponentID, fn string, phase InvokePhase) {
		if phase == PhaseEntry {
			if err := k.FailComponent(comp); err != nil {
				t.Errorf("FailComponent: %v", err)
			}
		}
	})
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		_, err := k.Invoke(th, id, "echo", 1)
		if _, ok := AsFault(err); !ok {
			t.Errorf("Invoke = %v; want *Fault after hook-activated failure", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCallerIdentity(t *testing.T) {
	k := New()
	a := k.MustRegister(newEchoFactory(nil))
	b := k.MustRegister(newEchoFactory(nil))
	var callerAtB ComponentID
	k.SetInvokeHook(func(th *Thread, comp ComponentID, fn string, phase InvokePhase) {
		if comp == b && phase == PhaseEntry {
			callerAtB = k.Caller(th)
		}
	})
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		if _, err := k.Invoke(th, a, "nested", Word(b), 1); err != nil {
			t.Errorf("Invoke: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if callerAtB != a {
		t.Fatalf("Caller at b = %d; want %d", callerAtB, a)
	}
}

func TestRunTwiceFails(t *testing.T) {
	k := New()
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("second Run succeeded; want error")
	}
}

func TestRunWithNoThreads(t *testing.T) {
	k := New()
	if err := k.Run(); !errors.Is(err, ErrNoThreads) {
		t.Fatalf("Run = %v; want ErrNoThreads", err)
	}
}

func TestOperationsAfterHaltReturnErrHalted(t *testing.T) {
	k := New()
	id := k.MustRegister(newEchoFactory(nil))
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := k.CreateThread(nil, "late", 10, func(th *Thread) {}); !errors.Is(err, ErrHalted) {
		t.Fatalf("CreateThread after halt = %v; want ErrHalted", err)
	}
	if _, err := k.Reboot(nil, id); !errors.Is(err, ErrHalted) {
		t.Fatalf("Reboot after halt = %v; want ErrHalted", err)
	}
}

func TestChildThreadCreationAndPreemption(t *testing.T) {
	k := New()
	var order []string
	if _, err := k.CreateThread(nil, "parent", 10, func(th *Thread) {
		order = append(order, "parent-start")
		if _, err := k.CreateThread(th, "child-hi", 1, func(ct *Thread) {
			order = append(order, "child")
		}); err != nil {
			t.Errorf("child CreateThread: %v", err)
		}
		order = append(order, "parent-end")
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"parent-start", "child", "parent-end"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v; want %v (higher-prio child preempts creator)", order, want)
		}
	}
}

func TestMaterializeRegFileInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultRegProfile()
	var f RegFile
	for i := 0; i < 1000; i++ {
		f.Materialize(p, PhaseEntry, rng)
		if f.Class[RegESP] != ClassStackPtr || f.Class[RegEBP] != ClassFramePtr {
			t.Fatalf("ESP/EBP classes = %v/%v; want stack/frame ptr", f.Class[RegESP], f.Class[RegEBP])
		}
		if f.Val[RegESP] < StackBase {
			t.Fatalf("ESP %#x below stack base", f.Val[RegESP])
		}
		if f.Val[RegEBP] < f.Val[RegESP] {
			t.Fatalf("EBP %#x below ESP %#x", f.Val[RegEBP], f.Val[RegESP])
		}
		for r := RegEAX; r < RegESP; r++ {
			switch f.Class[r] {
			case ClassDead, ClassData, ClassPtr, ClassLoop:
			default:
				t.Fatalf("GPR %v has class %v at entry", r, f.Class[r])
			}
		}
	}
	f.Materialize(p, PhaseExit, rng)
	if f.Class[RegEAX] != ClassRetVal {
		t.Fatalf("EAX class at exit = %v; want ClassRetVal", f.Class[RegEAX])
	}
}

// TestSchedulingDeterminism runs the same multi-thread scenario repeatedly
// and requires an identical execution trace each time: the foundation for
// reproducible fault-injection campaigns.
func TestSchedulingDeterminism(t *testing.T) {
	run := func() []string {
		k := New()
		id := k.MustRegister(newEchoFactory(nil))
		var trace []string
		var tids [3]ThreadID
		for i := 0; i < 3; i++ {
			i := i
			name := fmt.Sprintf("t%d", i)
			tid, err := k.CreateThread(nil, name, 10-i, func(th *Thread) {
				for j := 0; j < 3; j++ {
					trace = append(trace, name)
					if v, err := k.Invoke(th, id, "echo", Word(i)); err != nil || v != Word(i) {
						t.Errorf("echo: (%d, %v)", v, err)
					}
					if err := k.Yield(th); err != nil {
						t.Errorf("yield: %v", err)
					}
				}
			})
			if err != nil {
				t.Fatalf("CreateThread: %v", err)
			}
			tids[i] = tid
		}
		_ = tids
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("nondeterministic trace:\n run 0: %v\n run %d: %v", first, i+1, got)
		}
	}
}

// TestPriorityInvariantProperty uses testing/quick to check that for random
// thread sets, threads always complete in priority order when no thread
// blocks.
func TestPriorityInvariantProperty(t *testing.T) {
	prop := func(prios []uint8) bool {
		if len(prios) == 0 || len(prios) > 12 {
			return true
		}
		k := New()
		var order []int
		for i, p := range prios {
			i, p := i, int(p%32)
			if _, err := k.CreateThread(nil, fmt.Sprintf("t%d", i), p, func(th *Thread) {
				order = append(order, p)
			}); err != nil {
				return false
			}
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package kernel

import (
	"testing"
)

// TestNoPreemptDefersPreemption: waking a higher-priority thread inside a
// non-preemptible section must not switch until the section ends.
func TestNoPreemptDefersPreemption(t *testing.T) {
	k := New()
	var order []string
	var hiID ThreadID
	var err error
	hiID, err = k.CreateThread(nil, "hi", 1, func(th *Thread) {
		if err := k.Block(th); err != nil {
			t.Errorf("block: %v", err)
		}
		order = append(order, "hi")
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "lo", 10, func(th *Thread) {
		k.PushNoPreempt(th)
		if err := k.Wakeup(th, hiID); err != nil {
			t.Errorf("wakeup: %v", err)
		}
		order = append(order, "lo-critical")
		k.PopNoPreempt(th)
		order = append(order, "lo-after")
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"lo-critical", "hi", "lo-after"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v; want %v (preemption deferred to PopNoPreempt)", order, want)
	}
}

// TestNoPreemptNests: nested sections only preempt at the outermost pop.
func TestNoPreemptNests(t *testing.T) {
	k := New()
	var order []string
	var hiID ThreadID
	var err error
	hiID, err = k.CreateThread(nil, "hi", 1, func(th *Thread) {
		if err := k.Block(th); err != nil {
			t.Errorf("block: %v", err)
		}
		order = append(order, "hi")
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "lo", 10, func(th *Thread) {
		k.PushNoPreempt(th)
		k.PushNoPreempt(th)
		if err := k.Wakeup(th, hiID); err != nil {
			t.Errorf("wakeup: %v", err)
		}
		k.PopNoPreempt(th)
		order = append(order, "still-critical")
		k.PopNoPreempt(th)
		order = append(order, "lo-after")
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"still-critical", "hi", "lo-after"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v; want %v", order, want)
		}
	}
}

// blockySvc blocks callers and lets tests wake them through the service.
type blockySvc struct {
	k *Kernel
}

func (s *blockySvc) Name() string { return "blocky" }

func (s *blockySvc) Init(bc *BootContext) error {
	s.k = bc.Kernel
	return nil
}

func (s *blockySvc) Dispatch(t *Thread, fn string, args []Word) (Word, error) {
	switch fn {
	case "block":
		if err := s.k.Block(t); err != nil {
			return 0, err
		}
		return 1, nil
	case "wake":
		if err := s.k.Wakeup(t, ThreadID(args[0])); err != nil {
			return 0, err
		}
		return 0, nil
	case "nop":
		return 0, nil
	default:
		return 0, DispatchError("blocky", fn)
	}
}

// TestRedoCreditPreservesWakeup: a thread woken inside a component that is
// then rebooted before the thread runs must get its wakeup back — the
// diverted blocking call's retry returns immediately instead of losing it.
func TestRedoCreditPreservesWakeup(t *testing.T) {
	k := New()
	id := k.MustRegister(func() Service { return &blockySvc{} })
	var blockedID ThreadID
	var err error
	gotWakeup := false
	blockedID, err = k.CreateThread(nil, "blocked", 10, func(th *Thread) {
		_, err := k.Invoke(th, id, "block")
		f, isFault := AsFault(err)
		if !isFault {
			t.Errorf("first block = %v; want fault divert", err)
			return
		}
		if _, rerr := k.EnsureRebooted(th, id, f.Epoch); rerr != nil {
			t.Errorf("reboot: %v", rerr)
			return
		}
		// Retry the blocking call: the redo credit (the wakeup consumed
		// before the divert) must make it return immediately.
		if _, err := k.Invoke(th, id, "block"); err != nil {
			t.Errorf("retried block: %v", err)
			return
		}
		gotWakeup = true
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "driver", 11, func(th *Thread) {
		// The blocked thread (higher prio) ran first and is parked inside.
		// Wake it, fail, and reboot without yielding: the wakeup happened,
		// but the woken thread has not run when the reboot diverts it.
		k.PushNoPreempt(th)
		if _, err := k.Invoke(th, id, "wake", Word(blockedID)); err != nil {
			t.Errorf("wake: %v", err)
			return
		}
		if err := k.FailComponent(id); err != nil {
			t.Errorf("fail: %v", err)
		}
		if _, err := k.Reboot(th, id); err != nil {
			t.Errorf("reboot: %v", err)
		}
		k.PopNoPreempt(th)
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !gotWakeup {
		t.Fatal("wakeup lost across the divert")
	}
}

// TestExitWindowFaultDoesNotDivertCompletedOp: a fault activated at the
// return window fails the component for subsequent invocations but delivers
// the completed operation's result.
func TestExitWindowFaultDoesNotDivertCompletedOp(t *testing.T) {
	k := New()
	id := k.MustRegister(func() Service { return &blockySvc{} })
	k.SetInvokeHook(func(th *Thread, comp ComponentID, fn string, phase InvokePhase) {
		if phase == PhaseExit && fn == "nop" {
			if err := k.FailComponent(comp); err != nil {
				t.Errorf("fail: %v", err)
			}
		}
	})
	if _, err := k.CreateThread(nil, "main", 10, func(th *Thread) {
		// The operation completes despite the exit-window fault.
		if _, err := k.Invoke(th, id, "nop"); err != nil {
			t.Errorf("completed op diverted: %v", err)
		}
		// The next invocation observes the failure.
		if _, err := k.Invoke(th, id, "nop"); err == nil {
			t.Error("subsequent invocation of failed component succeeded")
		} else if _, ok := AsFault(err); !ok {
			t.Errorf("subsequent invocation error = %v; want *Fault", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestRedoCreditDroppedAfterRetryCompletes: an unconsumed redo credit must
// not leak into later blocking calls as a spurious wakeup.
func TestRedoCreditDroppedAfterRetryCompletes(t *testing.T) {
	k := New()
	id := k.MustRegister(func() Service { return &blockySvc{} })
	var blockedID ThreadID
	var err error
	deadlocked := true
	blockedID, err = k.CreateThread(nil, "blocked", 10, func(th *Thread) {
		_, err := k.Invoke(th, id, "block")
		f, isFault := AsFault(err)
		if !isFault {
			t.Errorf("first block = %v; want fault divert", err)
			return
		}
		if _, rerr := k.EnsureRebooted(th, id, f.Epoch); rerr != nil {
			t.Errorf("reboot: %v", rerr)
			return
		}
		// Retry with a NON-blocking call of the same name is impossible
		// here, so consume the retry with a nop of a different fn first:
		// the credit must survive that (scoped to "block")...
		if _, err := k.Invoke(th, id, "nop"); err != nil {
			t.Errorf("nop: %v", err)
			return
		}
		// ...and be consumed by the retried block.
		if _, err := k.Invoke(th, id, "block"); err != nil {
			t.Errorf("retried block: %v", err)
			return
		}
		// A later block must genuinely block (no stale credit): the driver
		// wakes us, proving we parked.
		if _, err := k.Invoke(th, id, "block"); err != nil {
			t.Errorf("final block: %v", err)
			return
		}
		deadlocked = false
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "driver", 11, func(th *Thread) {
		k.PushNoPreempt(th)
		if _, err := k.Invoke(th, id, "wake", Word(blockedID)); err != nil {
			t.Errorf("wake: %v", err)
			return
		}
		if err := k.FailComponent(id); err != nil {
			t.Errorf("fail: %v", err)
		}
		if _, err := k.Reboot(th, id); err != nil {
			t.Errorf("reboot: %v", err)
		}
		k.PopNoPreempt(th)
		// Let the blocked thread retry and reach its final block, then
		// wake it so the run terminates.
		if _, err := k.Invoke(th, id, "wake", Word(blockedID)); err != nil {
			t.Errorf("final wake: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if deadlocked {
		t.Fatal("final block never completed")
	}
}

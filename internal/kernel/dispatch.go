package kernel

import (
	"errors"

	"superglue/internal/fault"
)

// ErrHang reports a scheduling deadlock: live threads exist, but none is
// runnable or sleeping. The paper classifies the corresponding campaign
// outcome as "not recovered (other reason)" — a latent fault such as an
// infinite wait that only a monitoring infrastructure (C'MON) would detect.
// With the watchdog enabled (see watchdog.go), ErrHang is returned only for
// hangs attributable to no component; component-attributable hangs are
// converted into component faults and recovered.
var ErrHang = errors.New("kernel: system hang: live threads but none runnable")

// ErrNoThreads reports that Run was called on a kernel with no threads.
var ErrNoThreads = errors.New("kernel: no threads to run")

// Run executes the simulation until every thread has exited, the system
// hangs, or an unrecoverable crash halts the machine. It returns nil on
// clean completion, ErrHang on deadlock, or the *SystemCrash / panic error
// otherwise. Run must be called exactly once.
func (k *Kernel) Run() error {
	k.mu.Lock()
	if k.started {
		k.mu.Unlock()
		return errors.New("kernel: Run called twice")
	}
	k.started = true
	if len(k.threads) == 0 {
		k.haltLocked(nil)
		k.mu.Unlock()
		return ErrNoThreads
	}
	first := k.pickReadyLocked()
	if first == nil {
		k.haltLocked(ErrHang)
		k.mu.Unlock()
		return ErrHang
	}
	k.dispatchLocked(first)
	k.mu.Unlock()

	<-k.done
	k.mu.Lock()
	err := k.haltErr
	k.mu.Unlock()
	return err
}

// enqueueLocked appends t to its core's ready queue, stamping its FIFO
// sequence (the sequence counter is global, so arrival order is totally
// ordered across cores). The readySeq bump publishes the insert to the
// invocation fast path, which skips its boundary preemption check (and the
// lock) when no insert happened during the invocation.
func (k *Kernel) enqueueLocked(t *Thread) {
	k.seq++
	t.seq = k.seq
	c := &k.cores[t.core]
	c.ready = append(c.ready, t)
	k.readySeq.Add(1)
}

// IdleHandler is invoked, outside the kernel lock, when live threads exist
// but none is runnable or sleeping: the machine's idle loop. The handler may
// wait for external input (e.g., a network request), make a thread runnable
// with ExternalWakeup, and return true to resume scheduling; returning false
// lets the machine halt (a hang if threads remain). Without a handler, that
// condition is a deadlock.
type IdleHandler func() bool

// SetIdleHandler installs the idle loop (nil clears it).
func (k *Kernel) SetIdleHandler(h IdleHandler) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.idle = h
}

// pickReadyLocked removes and returns the next thread under the virtual-time
// merge (see takeBestLocked). If no core has a runnable thread but threads
// are sleeping, it advances the owning core's clock to the earliest wake
// time — earliest by (fire time, core, thread ID), where the fire time is
// max(core clock, wake time) — wakes that core's due sleepers, and retries;
// if nothing is sleeping either, the idle handler (when installed) may
// produce new work. It returns nil when nothing can become runnable.
//
// On success it also refreshes the global clock mirror to the winning
// core's clock and settles any pending migration-latency measurement on the
// chosen thread, so every dispatch path shares that bookkeeping.
func (k *Kernel) pickReadyLocked() *Thread {
	for {
		if best := k.takeBestLocked(); best != nil {
			c := &k.cores[best.core]
			c.dispatches++
			// Multi-core machines charge one virtual tick per dispatch
			// quantum: a core that keeps dispatching advances past its
			// siblings, so the merge cannot starve runnable work on a
			// higher-clock core (e.g. a thread parked there by a cross-core
			// migration). Single-core machines keep the legacy clock, which
			// advances only on sleeps — the pre-multicore behavior.
			if k.multicore {
				c.clock++
			}
			if best.migPending {
				best.migPending = false
				if tr := k.tracer.Load(); tr != nil {
					tr.RecordMigration(int32(best.migFrom), int32(best.core), int32(best.id),
						int64(c.clock), int64(c.clock-best.migStart), best.migInvoke)
				}
			}
			k.clock.Store(int64(c.clock))
			return best
		}
		// Nothing ready on any core: advance time to the earliest sleeper.
		var earliest *Thread
		var fireAt Time
		for _, t := range k.threads {
			if t.state != ThreadSleeping {
				continue
			}
			fire := t.wakeAt
			if c := k.cores[t.core].clock; c > fire {
				fire = c
			}
			if earliest == nil || fire < fireAt || (fire == fireAt && t.core < earliest.core) {
				earliest, fireAt = t, fire
			}
		}
		if earliest == nil {
			if k.runIdleLocked() {
				continue
			}
			// No idle work either: before declaring the machine dead, let
			// the watchdog try to attribute the wedge to a component and
			// divert its blocked threads (recovery instead of ErrHang).
			if k.watchdogDivertLocked() {
				continue
			}
			return nil
		}
		c := &k.cores[earliest.core]
		if fireAt > c.clock {
			c.clock = fireAt
		}
		for _, t := range k.threads {
			if t.state == ThreadSleeping && t.core == earliest.core && t.wakeAt <= c.clock {
				t.state = ThreadRunnable
				k.enqueueLocked(t)
			}
		}
	}
}

// runIdleLocked invokes the idle handler (dropping the kernel lock across
// the call) and reports whether scheduling should retry.
func (k *Kernel) runIdleLocked() bool {
	h := k.idle
	if h == nil || k.halted.Load() {
		return false
	}
	live := 0
	for _, t := range k.threads {
		if t.state != ThreadExited {
			live++
		}
	}
	if live == 0 {
		return false
	}
	k.mu.Unlock()
	again := h()
	k.mu.Lock()
	return again && !k.halted.Load()
}

// takeBestLocked removes and returns the next thread under the merge rule:
// among cores whose ready queue holds at least one runnable thread, the core
// with the smallest (virtual clock, core number) wins; within that core,
// selection is the highest-priority thread (lowest prio value; earliest
// global arrival sequence breaks ties). Returns nil when no core has
// runnable work. With one core this is exactly the original single-core
// selection.
func (k *Kernel) takeBestLocked() *Thread {
	coreIdx := -1
	for ci := range k.cores {
		c := &k.cores[ci]
		runnable := false
		for _, t := range c.ready {
			if t.state == ThreadRunnable {
				runnable = true
				break
			}
		}
		if !runnable {
			c.ready = c.ready[:0] // every entry stale; drop them
			continue
		}
		if coreIdx == -1 || c.clock < k.cores[coreIdx].clock {
			coreIdx = ci
		}
	}
	if coreIdx == -1 {
		return nil
	}
	rq := k.cores[coreIdx].ready
	bestIdx := -1
	for i, t := range rq {
		if t.state != ThreadRunnable {
			continue // stale entry (e.g. woken then re-queued); skip
		}
		if bestIdx == -1 {
			bestIdx = i
			continue
		}
		b := rq[bestIdx]
		if t.prio < b.prio || (t.prio == b.prio && t.seq < b.seq) {
			bestIdx = i
		}
	}
	best := rq[bestIdx]
	k.cores[coreIdx].ready = append(rq[:bestIdx], rq[bestIdx+1:]...)
	return best
}

// dispatchLocked makes next the running thread and signals its goroutine.
func (k *Kernel) dispatchLocked(next *Thread) {
	next.state = ThreadRunning
	k.current = next
	next.resume <- struct{}{}
}

// switchFromLocked transfers the core away from cur, which must have already
// been placed in its new state (and re-queued if still runnable). It parks
// cur's goroutine and returns, with the lock held, once cur is dispatched
// again. If no thread can run, it halts the machine.
func (k *Kernel) switchFromLocked(cur *Thread) {
	next := k.pickReadyLocked()
	if next == cur {
		cur.state = ThreadRunning
		k.current = cur
		return
	}
	if next != nil {
		k.dispatchLocked(next)
	} else {
		k.current = nil
		k.noRunnableLocked()
		if k.halted.Load() {
			// parkLocked will observe the kill signal sent by haltLocked.
			if !cur.killed {
				// cur was running, so haltLocked did not signal it; unwind.
				k.mu.Unlock()
				panic(threadKilled{})
			}
		}
	}
	k.parkLocked(cur)
}

// parkLocked blocks cur's goroutine until it is dispatched again. The kernel
// lock is released while parked and re-acquired before returning. If the
// machine halted while parked, the goroutine unwinds via threadKilled.
func (k *Kernel) parkLocked(cur *Thread) {
	k.mu.Unlock()
	<-cur.resume
	k.mu.Lock()
	if cur.killed {
		k.mu.Unlock()
		panic(threadKilled{})
	}
}

// preemptLocked yields the core if a higher-priority thread became ready on
// cur's own core (other cores' queues never preempt: they get the machine
// when the virtual-time merge reaches them). cur must be the running thread.
// Preemption is deferred while cur executes inside a component invocation:
// COMPOSITE's invocation paths are short and non-preemptible, and deferring
// to the invocation boundary keeps a thread from being descheduled with a
// half-finished server operation that a µ-reboot would otherwise tear out
// from under it. The deferred check runs when the outermost invocation
// returns (see Invoke).
func (k *Kernel) preemptLocked(cur *Thread) {
	if len(cur.invStack) > 0 || cur.noPreempt > 0 {
		return
	}
	higher := false
	for _, t := range k.cores[cur.core].ready {
		if t.state == ThreadRunnable && t.prio < cur.prio {
			higher = true
			break
		}
	}
	if !higher {
		return
	}
	cur.state = ThreadRunnable
	k.enqueueLocked(cur)
	k.switchFromLocked(cur)
}

// noRunnableLocked handles the no-runnable-thread condition: clean shutdown
// when every thread exited, hang otherwise.
func (k *Kernel) noRunnableLocked() {
	live := 0
	for _, t := range k.threads {
		if t.state != ThreadExited {
			live++
		}
	}
	if live == 0 {
		k.haltLocked(nil)
		return
	}
	k.haltLocked(ErrHang)
}

// haltLocked stops the machine: records the terminal error, wakes every
// parked thread with the kill flag so its goroutine unwinds, and releases
// Run. Idempotent.
func (k *Kernel) haltLocked(err error) {
	if k.halted.Load() {
		return
	}
	k.halted.Store(true)
	k.haltErr = err
	for _, t := range k.threads {
		if t.state == ThreadExited || t == k.current {
			continue
		}
		t.killed = true
		select {
		case t.resume <- struct{}{}:
		default: // already signaled
		}
	}
	close(k.done)
}

// Halted reports whether the machine has stopped (one atomic load).
func (k *Kernel) Halted() bool {
	return k.halted.Load()
}

// CrashSystem records an unrecoverable whole-system failure (the campaign's
// "segfault" outcome: the fault corrupted state outside the recoverable
// domain, and the physical machine would need a reboot) and halts the
// machine. It must be called from the running thread and does not return:
// the calling goroutine unwinds.
func (k *Kernel) CrashSystem(t *Thread, comp ComponentID, reason string) {
	k.mu.Lock()
	crash := &SystemCrash{Reason: reason, Comp: comp}
	if t != nil {
		crash.Thread = t.id
		t.state = ThreadExited
	}
	k.crash = crash
	k.current = nil
	k.haltLocked(crash)
	k.mu.Unlock()
	panic(threadKilled{})
}

// HangCurrent models an infinite loop on the calling thread (a corrupted
// loop-counter register). Without the watchdog, the thread parks forever and
// the system halts with ErrHang once no other thread can make progress.
// With the watchdog enabled and the thread executing inside a component,
// the spin instead burns the component's invocation budget, the watchdog
// fires, the component is marked failed, and HangCurrent returns with a
// *Fault armed for Invoke to deliver — the hang becomes a recoverable
// component fault. Hangs outside any component remain terminal.
func (k *Kernel) HangCurrent(t *Thread) {
	k.mu.Lock()
	if k.halted.Load() || t != k.current {
		k.mu.Unlock()
		panic(threadKilled{})
	}
	k.hung = true
	if k.watchdogHangLocked(t) {
		k.mu.Unlock()
		return
	}
	t.state = ThreadBlocked
	t.blockedIn = 0
	t.pendingFault = nil
	k.switchFromLocked(t)
	// Only a kill can resume a hung thread; Wakeup may still find it
	// blocked, so if resumed, hang again.
	for !k.halted.Load() {
		t.state = ThreadBlocked
		k.switchFromLocked(t)
	}
	k.mu.Unlock()
	panic(threadKilled{})
}

// HangCurrentAs is HangCurrent with an explicit fault classification: the
// watchdog books the caught hang as the given kind (fault.KindLivelock for
// a component cycling without progress, fault.KindHang for a plain
// unbounded loop). Campaign injectors use it to exercise the control-flow
// rows of the taxonomy distinctly.
func (k *Kernel) HangCurrentAs(t *Thread, kind fault.Kind) {
	t.hangKind = kind
	k.HangCurrent(t)
}

// Hung reports whether HangCurrent was invoked (a latent-fault marker for
// campaign classification).
func (k *Kernel) Hung() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.hung
}

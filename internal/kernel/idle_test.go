package kernel

import (
	"errors"
	"sync"
	"testing"
)

// TestIdleHandlerInjectsExternalWork: a blocked thread is woken from an
// external goroutine via the idle handler, the interrupt path of the
// simulation.
func TestIdleHandlerInjectsExternalWork(t *testing.T) {
	k := New()
	work := make(chan struct{}, 4)
	var tid ThreadID
	served := 0
	var err error
	tid, err = k.CreateThread(nil, "server", 10, func(th *Thread) {
		for i := 0; i < 3; i++ {
			if err := k.Block(th); err != nil {
				t.Errorf("block: %v", err)
				return
			}
			served++
		}
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	k.SetIdleHandler(func() bool {
		_, ok := <-work
		if !ok {
			return false
		}
		if err := k.ExternalWakeup(tid); err != nil {
			t.Errorf("ExternalWakeup: %v", err)
			return false
		}
		return true
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			work <- struct{}{}
		}
		close(work)
	}()
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	wg.Wait()
	if served != 3 {
		t.Fatalf("served = %d; want 3", served)
	}
}

// TestIdleHandlerFalseHalts: the handler declining to produce work leaves
// the machine to its deadlock verdict.
func TestIdleHandlerFalseHalts(t *testing.T) {
	k := New()
	if _, err := k.CreateThread(nil, "stuck", 10, func(th *Thread) {
		_ = k.Block(th)
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	calls := 0
	k.SetIdleHandler(func() bool {
		calls++
		return false
	})
	if err := k.Run(); !errors.Is(err, ErrHang) {
		t.Fatalf("Run = %v; want ErrHang", err)
	}
	if calls != 1 {
		t.Fatalf("idle handler called %d times; want 1", calls)
	}
}

// TestExternalWakeupLatchesWhenRunnable: like Wakeup, an external wakeup of
// a not-yet-blocked thread must not be lost.
func TestExternalWakeupLatchesWhenRunnable(t *testing.T) {
	k := New()
	var tid ThreadID
	var err error
	completed := false
	tid, err = k.CreateThread(nil, "worker", 10, func(th *Thread) {
		if err := k.Block(th); err != nil {
			t.Errorf("block: %v", err)
			return
		}
		completed = true
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	// Before Run: the thread is runnable; the wakeup must latch.
	if err := k.ExternalWakeup(tid); err != nil {
		t.Fatalf("ExternalWakeup: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !completed {
		t.Fatal("latched external wakeup lost")
	}
}

func TestExternalWakeupErrors(t *testing.T) {
	k := New()
	if err := k.ExternalWakeup(42); err == nil {
		t.Fatal("wakeup of unknown thread accepted")
	}
	if _, err := k.CreateThread(nil, "t", 10, func(th *Thread) {}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := k.ExternalWakeup(1); !errors.Is(err, ErrHalted) {
		t.Fatalf("wakeup after halt = %v; want ErrHalted", err)
	}
}

package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, n, want int
	}{
		{0, 100, min(procs, 100)},
		{-3, 100, min(procs, 100)},
		{4, 100, 4},
		{8, 3, 3},
		{1, 1, 1},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.n); got != c.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 50
		var hits [n]atomic.Int32
		if err := Run(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	called := false
	if err := Run(0, 4, func(i int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("Run(0): err=%v called=%v", err, called)
	}
	if err := Run(-5, 4, func(i int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("Run(-5): err=%v called=%v", err, called)
	}
}

func TestRunReturnsSmallestIndexError(t *testing.T) {
	// Deterministic fn: indices 10 and 30 fail. With any worker count the
	// reported error must be index 10's — lower indices start first and
	// the pool scans slots in order.
	for _, workers := range []int{1, 4} {
		err := Run(50, workers, func(i int) error {
			if i == 10 || i == 30 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 10" {
			t.Fatalf("workers=%d: err = %v, want boom 10", workers, err)
		}
	}
}

func TestRunStopsHandingOutAfterFailure(t *testing.T) {
	// Sequential pool: after index 3 fails, no later index may run.
	var ran atomic.Int32
	sentinel := errors.New("stop")
	err := Run(1000, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d indices after sequential failure, want 4", got)
	}
}

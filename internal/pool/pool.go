// Package pool provides the indexed fan-out primitive shared by the
// parallel SWIFI campaign engine (internal/swifi), the experiment
// harness (internal/experiments) and the evaluation CLIs: run fn(i) for
// every index in [0, n) across a bounded set of worker goroutines.
//
// Determinism contract: the pool itself never reorders results. Each
// fn(i) must write only into its own index-i slot of caller-owned
// storage; the caller folds the slots in index order after Run returns,
// so the aggregate is byte-identical regardless of worker count or
// scheduling. This is the REL-style separation the campaign engine is
// built on — trial semantics stay sequential per index, only their
// execution is spread over workers.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp normalizes a worker count: non-positive selects
// runtime.GOMAXPROCS(0), and the result never exceeds n (one worker per
// index is the maximum useful parallelism).
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run invokes fn(i) for every i in [0, n) across Clamp(workers, n)
// goroutines. Indices are handed out in order from a shared counter, so
// workers == 1 degenerates to the plain sequential loop.
//
// If any fn returns an error the pool stops handing out new indices and
// Run returns the error with the smallest index among the invocations
// that ran (indices already in flight still complete). Which later
// indices were skipped can vary run to run; the returned error for a
// deterministic fn is stable because lower indices are always started
// first.
func Run(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package idl

import (
	"fmt"
	"strconv"
	"strings"

	"superglue/internal/core"
	"superglue/internal/fault"
)

// Parse compiles SuperGlue IDL source into a validated core.Spec. The
// service name conventionally matches the interface header's name (the IDL
// file replaces the C header, §V-C).
func Parse(service, src string) (*core.Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, spec: &core.Spec{Service: service, DescHasParent: core.ParentSolo}}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	if err := p.spec.Validate(); err != nil {
		return nil, err
	}
	return p.spec, nil
}

// ParseLax compiles IDL source without running core.Spec validation; it is
// used by tooling that reports specification errors separately.
func ParseLax(service, src string) (*core.Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, spec: &core.Spec{Service: service, DescHasParent: core.ParentSolo}}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.spec, nil
}

type parser struct {
	toks []token
	pos  int
	spec *core.Spec

	// sm, when non-nil, collects declaration positions for analysis tooling
	// (see ParseWithMap).
	sm *SourceMap

	// pendingRet holds a desc_data_retval declaration that attaches to the
	// next function prototype.
	pendingRet *retDecl
}

// record appends line to the SourceMap slice for the named sm_* set, when
// position collection is enabled.
func (p *parser) record(set string, line int) {
	if p.sm == nil {
		return
	}
	switch set {
	case "sm_transition":
		p.sm.Transitions = append(p.sm.Transitions, line)
	case "sm_hold":
		p.sm.Holds = append(p.sm.Holds, line)
	case "sm_creation":
		p.sm.Creation = append(p.sm.Creation, line)
	case "sm_terminal":
		p.sm.Terminal = append(p.sm.Terminal, line)
	case "sm_block":
		p.sm.Blocking = append(p.sm.Blocking, line)
	case "sm_wakeup":
		p.sm.Wakeup = append(p.sm.Wakeup, line)
	case "sm_update":
		p.sm.Update = append(p.sm.Update, line)
	case "sm_reset":
		p.sm.Reset = append(p.sm.Reset, line)
	case "sm_restore":
		p.sm.Restore = append(p.sm.Restore, line)
	}
}

type retDecl struct {
	ctype string
	name  string
	accum bool
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("idl: %s: line %d: %s", p.spec.Service, t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, p.errf(t, "expected %v, got %q", kind, t.text)
	}
	return t, nil
}

func (p *parser) parseFile() error {
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			if p.pendingRet != nil {
				return p.errf(t, "dangling desc_data_retval with no following function")
			}
			return nil
		case t.kind == tokSemi:
			p.next() // stray semicolon
		case t.kind == tokIdent && t.text == "service_global_info":
			if err := p.parseGlobalInfo(); err != nil {
				return err
			}
		case t.kind == tokIdent && strings.HasPrefix(t.text, "sm_"):
			if err := p.parseSMDecl(); err != nil {
				return err
			}
		case t.kind == tokIdent && (t.text == "desc_data_retval" || t.text == "desc_data_retval_acc"):
			if err := p.parseRetDecl(); err != nil {
				return err
			}
		case t.kind == tokIdent:
			if err := p.parseFuncDecl(); err != nil {
				return err
			}
		default:
			return p.errf(t, "unexpected %q at top level", t.text)
		}
	}
}

// parseGlobalInfo parses the service_global_info = { k = v, ... }; block.
func (p *parser) parseGlobalInfo() error {
	head := p.next() // service_global_info
	if p.sm != nil {
		p.sm.Global = head.line
	}
	if _, err := p.expect(tokAssign); err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.next()
			break
		}
		key, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return err
		}
		val, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if err := p.applyGlobal(key, val); err != nil {
			return err
		}
		if p.peek().kind == tokComma {
			p.next()
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	return nil
}

func (p *parser) applyGlobal(key, val token) error {
	boolVal := func() (bool, error) {
		switch strings.ToLower(val.text) {
		case "true":
			return true, nil
		case "false":
			return false, nil
		default:
			return false, p.errf(val, "%s expects true/false, got %q", key.text, val.text)
		}
	}
	switch key.text {
	case "desc_has_parent":
		switch strings.ToLower(val.text) {
		case "solo":
			p.spec.DescHasParent = core.ParentSolo
		case "parent":
			p.spec.DescHasParent = core.ParentSame
		case "xcparent":
			p.spec.DescHasParent = core.ParentXC
		default:
			return p.errf(val, "desc_has_parent expects Solo|Parent|XCParent, got %q", val.text)
		}
	case "desc_close_remove":
		v, err := boolVal()
		if err != nil {
			return err
		}
		p.spec.DescCloseRemove = v
	case "desc_close_children":
		v, err := boolVal()
		if err != nil {
			return err
		}
		p.spec.DescCloseChildren = v
	case "desc_is_global":
		v, err := boolVal()
		if err != nil {
			return err
		}
		p.spec.DescIsGlobal = v
	case "desc_block":
		v, err := boolVal()
		if err != nil {
			return err
		}
		p.spec.DescBlock = v
	case "desc_has_data":
		v, err := boolVal()
		if err != nil {
			return err
		}
		p.spec.DescHasData = v
	case "resc_has_data", "desc_has_resc_data":
		v, err := boolVal()
		if err != nil {
			return err
		}
		p.spec.RescHasData = v
	case "recovery_budget":
		n, err := strconv.Atoi(val.text)
		if err != nil || n <= 0 {
			return p.errf(val, "recovery_budget expects a positive integer, got %q", val.text)
		}
		p.spec.RecoveryBudget = n
	default:
		return p.errf(key, "unknown service_global_info key %q", key.text)
	}
	return nil
}

// parseSMDecl parses sm_*(a[, b]);
func (p *parser) parseSMDecl() error {
	head := p.next()
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var names []string
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		names = append(names, id.text)
		t := p.next()
		if t.kind == tokRParen {
			break
		}
		if t.kind != tokComma {
			return p.errf(t, "expected ',' or ')' in %s", head.text)
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	need := func(n int) error {
		if len(names) != n {
			return p.errf(head, "%s expects %d argument(s), got %d", head.text, n, len(names))
		}
		return nil
	}
	spec := p.spec
	p.record(head.text, head.line)
	switch head.text {
	case "sm_transition":
		if err := need(2); err != nil {
			return err
		}
		spec.Transitions = append(spec.Transitions, core.Transition{From: names[0], To: names[1]})
	case "sm_creation":
		if err := need(1); err != nil {
			return err
		}
		spec.Creation = append(spec.Creation, names[0])
	case "sm_terminal":
		if err := need(1); err != nil {
			return err
		}
		spec.Terminal = append(spec.Terminal, names[0])
	case "sm_block":
		if err := need(1); err != nil {
			return err
		}
		spec.Blocking = append(spec.Blocking, names[0])
	case "sm_wakeup":
		if err := need(1); err != nil {
			return err
		}
		spec.Wakeup = append(spec.Wakeup, names[0])
	case "sm_update":
		if err := need(1); err != nil {
			return err
		}
		spec.Update = append(spec.Update, names[0])
	case "sm_reset":
		if err := need(1); err != nil {
			return err
		}
		spec.Reset = append(spec.Reset, names[0])
	case "sm_restore":
		if err := need(1); err != nil {
			return err
		}
		spec.Restore = append(spec.Restore, names[0])
	case "sm_hold":
		if err := need(2); err != nil {
			return err
		}
		spec.Holds = append(spec.Holds, core.HoldPair{Hold: names[0], Release: names[1]})
	case "sm_fault":
		// sm_fault(kind, action): classify a fault kind the service can
		// raise and declare its recovery action (reboot | retry | degrade).
		if err := need(2); err != nil {
			return err
		}
		kind, ok := fault.ParseKind(names[0])
		if !ok || kind == fault.KindUnknown {
			return p.errf(head, "sm_fault names unknown fault kind %q", names[0])
		}
		if _, valid := core.ParseFaultAction(names[1]); !valid {
			return p.errf(head, "sm_fault(%s, %s): action must be reboot, retry, or degrade", names[0], names[1])
		}
		if spec.FaultActions == nil {
			spec.FaultActions = make(map[string]string)
		}
		spec.FaultActions[kind.String()] = names[1]
		if p.sm != nil {
			p.sm.FaultDecls[kind.String()] = head.line
		}
	default:
		return p.errf(head, "unknown state-machine declaration %q", head.text)
	}
	return nil
}

// parseRetDecl parses desc_data_retval(type, name) or
// desc_data_retval_acc(type, name); the declaration attaches to the next
// function prototype.
func (p *parser) parseRetDecl() error {
	head := p.next()
	if p.pendingRet != nil {
		return p.errf(head, "consecutive desc_data_retval declarations")
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	ctype, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if p.peek().kind == tokSemi {
		p.next() // trailing ';' optional, as in Fig. 3
	}
	p.pendingRet = &retDecl{ctype: ctype.text, name: name.text, accum: head.text == "desc_data_retval_acc"}
	return nil
}

// parseFuncDecl parses [rettype] name(param, ...);
func (p *parser) parseFuncDecl() error {
	first, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	f := &core.FuncSpec{}
	t := p.peek()
	switch t.kind {
	case tokLParen:
		f.Name = first.text
	case tokIdent:
		f.RetCType = first.text
		nameTok := p.next()
		f.Name = nameTok.text
	default:
		return p.errf(t, "expected function name or '(', got %q", t.text)
	}
	if isDeclKeyword(f.Name) || isRoleKeyword(f.Name) {
		return p.errf(first, "reserved word %q used as function name", f.Name)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	if p.peek().kind == tokRParen {
		p.next()
	} else {
		for {
			param, err := p.parseParam()
			if err != nil {
				return err
			}
			f.Params = append(f.Params, param)
			t := p.next()
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return p.errf(t, "expected ',' or ')' in parameter list of %s", f.Name)
			}
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if p.pendingRet != nil {
		f.RetDescID = !p.pendingRet.accum
		if p.pendingRet.accum {
			f.RetAccum = p.pendingRet.name
		}
		f.RetName = p.pendingRet.name
		if f.RetCType == "" {
			f.RetCType = p.pendingRet.ctype
		}
		p.pendingRet = nil
	}
	if p.sm != nil {
		if _, dup := p.sm.Funcs[f.Name]; !dup {
			p.sm.Funcs[f.Name] = first.line
		}
	}
	p.spec.Funcs = append(p.spec.Funcs, f)
	return nil
}

// parseParam parses one parameter: either a plain `type name` declaration or
// a (possibly nested) annotation such as desc_data(parent_desc(long id)).
func (p *parser) parseParam() (core.ParamSpec, error) {
	var roles []string
	for p.peek().kind == tokIdent && isRoleKeyword(p.peek().text) {
		// Lookahead: a role keyword directly followed by '(' is an
		// annotation; otherwise it is (part of) a type name.
		if p.toks[p.pos+1].kind != tokLParen {
			break
		}
		roles = append(roles, p.next().text)
		if _, err := p.expect(tokLParen); err != nil {
			return core.ParamSpec{}, err
		}
	}
	// Now a `type name` or `type * name` declaration.
	var words []string
	for p.peek().kind == tokIdent {
		words = append(words, p.next().text)
	}
	if len(words) < 2 {
		return core.ParamSpec{}, p.errf(p.peek(), "expected `type name` in parameter declaration, got %v", words)
	}
	param := core.ParamSpec{
		CType: strings.Join(words[:len(words)-1], " "),
		Name:  words[len(words)-1],
		Role:  core.RolePlain,
	}
	for range roles {
		if _, err := p.expect(tokRParen); err != nil {
			return core.ParamSpec{}, err
		}
	}
	// Resolve the role: the most specific annotation wins; desc_data
	// wrapping parent_desc (as in Fig. 3) resolves to parent_desc, which
	// is tracked as data anyway.
	role := core.RolePlain
	for _, r := range roles {
		switch strings.ToLower(r) {
		case "desc":
			role = core.RoleDesc
		case "parent_desc":
			role = core.RoleParentDesc
		case "desc_ns":
			role = core.RoleDescNS
		case "parent_ns":
			role = core.RoleParentNS
		case "desc_data":
			if role == core.RolePlain {
				role = core.RoleDescData
			}
		}
	}
	param.Role = role
	return param, nil
}

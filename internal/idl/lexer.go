// Package idl implements the SuperGlue interface definition language: the
// declarative syntax of Table I and Fig. 3 of the paper, in which a system
// designer specifies a server component's descriptor-resource model and
// descriptor state machine. Parse compiles an IDL source file into a
// core.Spec, the intermediate representation the recovery runtime interprets
// and the stub generator (internal/codegen) emits code from.
//
// Beyond the paper's Table I, the language supports the extensions
// documented in DESIGN.md §5: sm_update, sm_reset, sm_restore, sm_hold,
// desc_ns/parent_ns parameter roles, and desc_data_retval_acc.
package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokAssign
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokAssign:
		return "'='"
	case tokEOF:
		return "end of file"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// token is one lexical token with its source line for diagnostics.
type token struct {
	kind tokenKind
	text string
	line int
}

// lex tokenizes IDL source. Identifiers include C identifiers and '*' (for
// pointer types). Line ('//') and block ('/* */') comments are skipped.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, fmt.Errorf("idl: line %d: unterminated block comment", line)
			}
			i += 2
		case c == '(':
			toks = append(toks, token{tokLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", line})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", line})
			i++
		case c == '=':
			toks = append(toks, token{tokAssign, "=", line})
			i++
		case c == '*':
			toks = append(toks, token{tokIdent, "*", line})
			i++
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("idl: line %d: unexpected character %q", line, string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	// Digits start integer literals (e.g. recovery_budget = 3), which the
	// lexer carries as plain identifier tokens: nothing else in the grammar
	// is numeric, so the parser disambiguates by position.
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// keywordSet returns whether name is one of the language's reserved
// declaration heads.
func isDeclKeyword(name string) bool {
	switch name {
	case "service_global_info",
		"sm_transition", "sm_creation", "sm_terminal", "sm_block", "sm_wakeup",
		"sm_update", "sm_reset", "sm_restore", "sm_hold",
		"desc_data_retval", "desc_data_retval_acc":
		return true
	}
	return false
}

// isRoleKeyword returns whether name is a parameter-annotation keyword.
func isRoleKeyword(name string) bool {
	switch strings.ToLower(name) {
	case "desc", "desc_data", "parent_desc", "desc_ns", "parent_ns":
		return true
	}
	return false
}

package idl

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary input: they must
// reject or accept without panicking, and anything accepted must format and
// re-parse (run with `go test -fuzz=FuzzParse ./internal/idl`).
func FuzzParse(f *testing.F) {
	f.Add(fig3)
	f.Add("service_global_info = { desc_block = true };")
	f.Add("sm_creation(mk);\nsm_transition(mk, rm);\nsm_terminal(rm);\ndesc_data_retval(long, id)\nmk(desc_data(long seed));\nint rm(desc(long id));")
	f.Add("/* comment */ // line\nint f(desc(long id));")
	f.Add("desc_data_retval(long,")
	f.Add(strings.Repeat("(", 50))
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		printed := Format(spec)
		if _, err := Parse("fuzz", printed); err != nil {
			t.Fatalf("accepted spec fails to re-parse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
	})
}

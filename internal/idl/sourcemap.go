package idl

import "superglue/internal/core"

// SourceMap records the source line of every declaration in an IDL file, so
// tooling (internal/analysis/speclint, `sgc vet`) can attach line-accurate
// diagnostics to the compiled core.Spec, which itself carries no positions.
//
// The per-declaration slices are parallel to the corresponding core.Spec
// slices: Transitions[i] is the line of spec.Transitions[i], Creation[i] the
// line of spec.Creation[i], and so on. FuncLine resolves a function name to
// the line of its prototype.
type SourceMap struct {
	// Funcs maps a function name to the line of its prototype declaration.
	Funcs map[string]int
	// Transitions[i] is the line of spec.Transitions[i].
	Transitions []int
	// Holds[i] is the line of spec.Holds[i].
	Holds []int
	// Per-set declaration lines, parallel to the spec's string slices.
	Creation, Terminal, Blocking, Wakeup, Update, Reset, Restore []int
	// FaultDecls maps a canonical fault-kind name to the line of its
	// sm_fault declaration (spec.FaultActions is a map, so these are keyed
	// rather than parallel).
	FaultDecls map[string]int
	// Global is the line of the service_global_info block, or 0.
	Global int
}

func newSourceMap() *SourceMap {
	return &SourceMap{Funcs: make(map[string]int), FaultDecls: make(map[string]int)}
}

// FaultLine returns the declaration line of the sm_fault for a canonical
// fault-kind name, or 0 if undeclared.
func (m *SourceMap) FaultLine(kind string) int {
	if m == nil {
		return 0
	}
	return m.FaultDecls[kind]
}

// FuncLine returns the declaration line of a function, or 0 if unknown.
func (m *SourceMap) FuncLine(name string) int {
	if m == nil {
		return 0
	}
	return m.Funcs[name]
}

// setLine returns the declaration line of element i of the named sm_* set
// (one of "sm_creation", "sm_terminal", "sm_block", "sm_wakeup", "sm_update",
// "sm_reset", "sm_restore"), or 0 when out of range.
func (m *SourceMap) setLine(set string, i int) int {
	if m == nil {
		return 0
	}
	var lines []int
	switch set {
	case "sm_creation":
		lines = m.Creation
	case "sm_terminal":
		lines = m.Terminal
	case "sm_block":
		lines = m.Blocking
	case "sm_wakeup":
		lines = m.Wakeup
	case "sm_update":
		lines = m.Update
	case "sm_reset":
		lines = m.Reset
	case "sm_restore":
		lines = m.Restore
	}
	if i < 0 || i >= len(lines) {
		return 0
	}
	return lines[i]
}

// GlobalLine returns the line of the service_global_info block, or 0.
func (m *SourceMap) GlobalLine() int {
	if m == nil {
		return 0
	}
	return m.Global
}

// SetLine resolves the line of element i of a declared sm_* set by set name.
func (m *SourceMap) SetLine(set string, i int) int { return m.setLine(set, i) }

// TransitionLine returns the line of transition i, or 0.
func (m *SourceMap) TransitionLine(i int) int {
	if m == nil || i < 0 || i >= len(m.Transitions) {
		return 0
	}
	return m.Transitions[i]
}

// HoldLine returns the line of hold pair i, or 0.
func (m *SourceMap) HoldLine(i int) int {
	if m == nil || i < 0 || i >= len(m.Holds) {
		return 0
	}
	return m.Holds[i]
}

// ParseWithMap compiles IDL source like ParseLax — without running
// core.Spec.Validate, so analysis tools can lint invalid specifications —
// and additionally returns the SourceMap of declaration positions.
func ParseWithMap(service, src string) (*core.Spec, *SourceMap, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{
		toks: toks,
		spec: &core.Spec{Service: service, DescHasParent: core.ParentSolo},
		sm:   newSourceMap(),
	}
	if err := p.parseFile(); err != nil {
		return nil, nil, err
	}
	return p.spec, p.sm, nil
}

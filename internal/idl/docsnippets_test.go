package idl

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"superglue/internal/core"
)

// docSnippets extracts the fenced IDL blocks from docs/IDL.md. Blocks
// fenced ```sg are complete specifications; blocks fenced ```sg-decl are
// declaration fragments.
func docSnippets(t *testing.T) (full, fragments []string) {
	t.Helper()
	raw, err := os.ReadFile("../../docs/IDL.md")
	if err != nil {
		t.Fatalf("docs/IDL.md: %v", err)
	}
	lines := strings.Split(string(raw), "\n")
	var cur []string
	mode := ""
	for i, ln := range lines {
		switch {
		case mode == "" && strings.HasPrefix(ln, "```sg"):
			mode = strings.TrimPrefix(ln, "```")
			if mode != "sg" && mode != "sg-decl" {
				t.Fatalf("docs/IDL.md:%d: unknown IDL fence %q", i+1, ln)
			}
			cur = nil
		case mode != "" && ln == "```":
			snippet := strings.Join(cur, "\n")
			if mode == "sg" {
				full = append(full, snippet)
			} else {
				fragments = append(fragments, snippet)
			}
			mode = ""
		case mode != "":
			cur = append(cur, ln)
		}
	}
	if mode != "" {
		t.Fatal("docs/IDL.md: unterminated IDL fence")
	}
	return full, fragments
}

// TestIDLDocSnippetsParse compile-checks every IDL snippet in docs/IDL.md:
// fragments must parse (ParseWithMap, the lax tooling entry point); complete
// specifications must additionally validate and compile to a descriptor
// state machine. The reference document cannot drift into showing syntax
// the implementation rejects.
func TestIDLDocSnippetsParse(t *testing.T) {
	full, fragments := docSnippets(t)
	// The document must keep demonstrating the language: a floor on how
	// many checked snippets it carries.
	if len(full) < 2 {
		t.Fatalf("docs/IDL.md: %d complete-spec snippets, want >= 2", len(full))
	}
	if len(fragments) < 4 {
		t.Fatalf("docs/IDL.md: %d declaration fragments, want >= 4", len(fragments))
	}
	for i, src := range fragments {
		name := fmt.Sprintf("fragment%d", i+1)
		if _, _, err := ParseWithMap(name, src); err != nil {
			t.Errorf("docs/IDL.md %s does not parse: %v\n%s", name, err, src)
		}
	}
	for i, src := range full {
		name := fmt.Sprintf("example%d", i+1)
		spec, _, err := ParseWithMap(name, src)
		if err != nil {
			t.Errorf("docs/IDL.md %s does not parse: %v\n%s", name, err, src)
			continue
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("docs/IDL.md %s does not validate: %v", name, err)
			continue
		}
		if _, err := core.NewStateMachine(spec); err != nil {
			t.Errorf("docs/IDL.md %s has no valid state machine: %v", name, err)
		}
	}
}

package idl_test

import (
	"reflect"
	"testing"

	"superglue/internal/idl"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// TestFormatRoundTrip: formatting a parsed spec and re-parsing it yields an
// equivalent specification, for every shipped service.
func TestFormatRoundTrip(t *testing.T) {
	for name, src := range map[string]string{
		"lock":  lock.IDLSource(),
		"event": event.IDLSource(),
		"sched": sched.IDLSource(),
		"timer": timer.IDLSource(),
		"mm":    mm.IDLSource(),
		"ramfs": ramfs.IDLSource(),
	} {
		orig, err := idl.Parse(name, src)
		if err != nil {
			t.Fatalf("Parse(%s): %v", name, err)
		}
		printed := idl.Format(orig)
		again, err := idl.Parse(name, printed)
		if err != nil {
			t.Fatalf("re-Parse(%s): %v\nprinted:\n%s", name, err, printed)
		}
		if !reflect.DeepEqual(orig, again) {
			t.Errorf("%s: round trip diverged\noriginal: %+v\nreparsed: %+v\nprinted:\n%s",
				name, orig, again, printed)
		}
	}
}

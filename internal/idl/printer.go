package idl

import (
	"fmt"
	"sort"
	"strings"

	"superglue/internal/core"
)

// Format renders a specification back to SuperGlue IDL source: the
// normalizer used by tooling and the round-trip property tests. The output
// parses back to an equivalent specification.
func Format(spec *core.Spec) string {
	var b strings.Builder

	b.WriteString("service_global_info = {\n")
	fmt.Fprintf(&b, "        desc_has_parent = %s", strings.ToLower(spec.DescHasParent.String()))
	writeBool := func(key string, v bool) {
		if v {
			fmt.Fprintf(&b, ",\n        %s = true", key)
		}
	}
	writeBool("desc_close_children", spec.DescCloseChildren)
	writeBool("desc_close_remove", spec.DescCloseRemove)
	writeBool("desc_is_global", spec.DescIsGlobal)
	writeBool("desc_block", spec.DescBlock)
	writeBool("desc_has_data", spec.DescHasData)
	writeBool("resc_has_data", spec.RescHasData)
	if spec.RecoveryBudget > 0 {
		fmt.Fprintf(&b, ",\n        recovery_budget = %d", spec.RecoveryBudget)
	}
	b.WriteString("\n};\n\n")

	for _, tr := range spec.Transitions {
		fmt.Fprintf(&b, "sm_transition(%s, %s);\n", tr.From, tr.To)
	}
	writeSet := func(decl string, fns []string) {
		for _, fn := range fns {
			fmt.Fprintf(&b, "%s(%s);\n", decl, fn)
		}
	}
	writeSet("sm_creation", spec.Creation)
	writeSet("sm_terminal", spec.Terminal)
	writeSet("sm_block", spec.Blocking)
	writeSet("sm_wakeup", spec.Wakeup)
	writeSet("sm_update", spec.Update)
	writeSet("sm_reset", spec.Reset)
	writeSet("sm_restore", spec.Restore)
	for _, h := range spec.Holds {
		fmt.Fprintf(&b, "sm_hold(%s, %s);\n", h.Hold, h.Release)
	}
	// Fault classifications, in kind order (the spec holds them as a map).
	// Kinds print with underscores: IDL identifiers cannot contain hyphens.
	faultKinds := make([]string, 0, len(spec.FaultActions))
	for k := range spec.FaultActions {
		faultKinds = append(faultKinds, k)
	}
	sort.Strings(faultKinds)
	for _, k := range faultKinds {
		fmt.Fprintf(&b, "sm_fault(%s, %s);\n", strings.ReplaceAll(k, "-", "_"), spec.FaultActions[k])
	}
	b.WriteString("\n")

	for _, f := range spec.Funcs {
		if f.RetDescID {
			fmt.Fprintf(&b, "desc_data_retval(%s, %s)\n", orLong(f.RetCType), orName(f.RetName, "id"))
		} else if f.RetAccum != "" {
			fmt.Fprintf(&b, "desc_data_retval_acc(%s, %s)\n", orLong(f.RetCType), f.RetAccum)
		}
		var params []string
		for _, p := range f.Params {
			decl := fmt.Sprintf("%s %s", orLong(p.CType), p.Name)
			switch p.Role {
			case core.RoleDesc:
				decl = fmt.Sprintf("desc(%s)", decl)
			case core.RoleDescData:
				decl = fmt.Sprintf("desc_data(%s)", decl)
			case core.RoleParentDesc:
				decl = fmt.Sprintf("parent_desc(%s)", decl)
			case core.RoleDescNS:
				decl = fmt.Sprintf("desc_ns(%s)", decl)
			case core.RoleParentNS:
				decl = fmt.Sprintf("parent_ns(%s)", decl)
			}
			params = append(params, decl)
		}
		ret := ""
		if !f.RetDescID && f.RetAccum == "" && f.RetCType != "" {
			ret = f.RetCType + " "
		}
		fmt.Fprintf(&b, "%s%s(%s);\n", ret, f.Name, strings.Join(params, ", "))
	}
	return b.String()
}

func orLong(t string) string {
	if t == "" {
		return "long"
	}
	return t
}

func orName(n, fallback string) string {
	if n == "" {
		return fallback
	}
	return n
}

package idl

import (
	"reflect"
	"strings"
	"testing"

	"superglue/internal/core"
)

// fig3 is the complete example IDL file from Fig. 3 of the paper, verbatim.
const fig3 = `
service_global_info = {
        desc_has_parent    = parent,
        desc_close_remove  = true,
        desc_is_global     = true,
        desc_block         = true,
        desc_has_data      = true
};

sm_transition(evt_split,   evt_wait);
sm_transition(evt_wait,    evt_trigger);
sm_transition(evt_trigger, evt_wait);
sm_transition(evt_trigger, evt_free);
sm_transition(evt_split,   evt_free);

sm_creation(evt_split);
sm_terminal(evt_free);
sm_block(evt_wait);
sm_wakeup(evt_trigger);

desc_data_retval(long, evtid)
evt_split(desc_data(componentid_t compid),
          desc_data(parent_desc(long parent_evtid)),
          desc_data(int grp));

long evt_wait(componentid_t compid, desc(long evtid));
int evt_trigger(componentid_t compid, desc(long evtid));
int evt_free(componentid_t compid, desc(long evtid));
`

func TestParseFig3Example(t *testing.T) {
	spec, err := Parse("event", fig3)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Service != "event" {
		t.Errorf("Service = %q", spec.Service)
	}
	if spec.DescHasParent != core.ParentSame {
		t.Errorf("DescHasParent = %v; want Parent", spec.DescHasParent)
	}
	if !spec.DescCloseRemove || !spec.DescIsGlobal || !spec.DescBlock || !spec.DescHasData {
		t.Errorf("global flags = %+v; want remove/global/block/data all true", spec)
	}
	if spec.RescHasData {
		t.Error("RescHasData = true; want false (unset)")
	}
	if len(spec.Funcs) != 4 {
		t.Fatalf("Funcs = %d; want 4", len(spec.Funcs))
	}
	split := spec.Func("evt_split")
	if split == nil || !split.RetDescID || split.RetName != "evtid" || split.RetCType != "long" {
		t.Fatalf("evt_split return tracking = %+v", split)
	}
	if len(split.Params) != 3 {
		t.Fatalf("evt_split params = %d; want 3", len(split.Params))
	}
	if split.Params[0].Role != core.RoleDescData || split.Params[0].Name != "compid" || split.Params[0].CType != "componentid_t" {
		t.Errorf("param 0 = %+v; want desc_data componentid_t compid", split.Params[0])
	}
	if split.Params[1].Role != core.RoleParentDesc || split.Params[1].Name != "parent_evtid" {
		t.Errorf("param 1 = %+v; want parent_desc parent_evtid (desc_data wrapper resolves to parent)", split.Params[1])
	}
	if split.Params[2].Role != core.RoleDescData || split.Params[2].Name != "grp" {
		t.Errorf("param 2 = %+v; want desc_data grp", split.Params[2])
	}
	wait := spec.Func("evt_wait")
	if wait == nil || wait.RetCType != "long" {
		t.Fatalf("evt_wait = %+v; want long return", wait)
	}
	if wait.Params[1].Role != core.RoleDesc {
		t.Errorf("evt_wait param 1 role = %v; want desc", wait.Params[1].Role)
	}
	if len(spec.Transitions) != 5 {
		t.Errorf("transitions = %d; want 5", len(spec.Transitions))
	}
	if !spec.IsCreation("evt_split") || !spec.IsTerminal("evt_free") ||
		!spec.IsBlocking("evt_wait") || !spec.IsWakeup("evt_trigger") {
		t.Error("function set classification wrong")
	}
	// The parsed spec must compile to a state machine.
	if _, err := core.NewStateMachine(spec); err != nil {
		t.Fatalf("NewStateMachine: %v", err)
	}
}

func TestParseExtensions(t *testing.T) {
	src := `
service_global_info = {
    desc_has_parent = xcparent,
    desc_close_children = true,
    resc_has_data = true,
};
sm_creation(fs_open);
sm_terminal(fs_close);
sm_update(fs_read);
sm_update(fs_write);
sm_update(fs_lseek);
sm_restore(fs_lseek);
sm_transition(fs_open, fs_close);

desc_data_retval(long, fd)
fs_open(desc_ns(componentid_t compid), desc_data(long pathbuf), desc_data(long pathlen), desc_data(parent_desc(parent_ns(componentid_t pns)  ... ));
`
	// The source above is deliberately malformed at the end; check error.
	if _, err := Parse("ramfs", src); err == nil {
		t.Fatal("malformed source accepted")
	}

	good := `
service_global_info = {
    desc_has_parent = solo,
    resc_has_data = true,
};
sm_creation(fs_open);
sm_terminal(fs_close);
sm_update(fs_read);
sm_update(fs_write);
sm_update(fs_lseek);
sm_restore(fs_lseek);
sm_transition(fs_open, fs_close);
sm_transition(fs_open, fs_read);
sm_transition(fs_open, fs_write);
sm_transition(fs_open, fs_lseek);

desc_data_retval(long, fd)
fs_open(desc_data(componentid_t compid), desc_data(long pathbuf), desc_data(long pathlen));

desc_data_retval_acc(long, offset)
fs_read(componentid_t compid, desc(long fd), long buf, long len);

desc_data_retval_acc(long, offset)
fs_write(componentid_t compid, desc(long fd), long buf, long len);

long fs_lseek(desc(long fd), desc_data(long offset));
int  fs_close(componentid_t compid, desc(long fd));
`
	spec, err := Parse("ramfs", good)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !spec.RescHasData {
		t.Error("resc_has_data not set")
	}
	rd := spec.Func("fs_read")
	if rd.RetAccum != "offset" || rd.RetDescID {
		t.Errorf("fs_read retval = %+v; want accumulate into offset", rd)
	}
	if !spec.IsUpdate("fs_read") || !spec.IsRestore("fs_lseek") {
		t.Error("update/restore sets wrong")
	}
	sm, err := core.NewStateMachine(spec)
	if err != nil {
		t.Fatalf("NewStateMachine: %v", err)
	}
	walk, err := sm.RecoveryWalk("fs_open", core.StateInitial)
	if err != nil {
		t.Fatalf("RecoveryWalk: %v", err)
	}
	if len(walk) != 2 || walk[0] != "fs_open" || walk[1] != "fs_lseek" {
		t.Fatalf("RecoveryWalk = %v; want [fs_open fs_lseek]", walk)
	}
}

func TestParseHold(t *testing.T) {
	src := `
service_global_info = { desc_has_parent = solo, desc_block = true };
sm_creation(lock_alloc);
sm_terminal(lock_free);
sm_block(lock_take);
sm_wakeup(lock_release);
sm_hold(lock_take, lock_release);
sm_transition(lock_alloc, lock_take);
sm_transition(lock_alloc, lock_free);
sm_transition(lock_take, lock_release);
sm_transition(lock_release, lock_take);
sm_transition(lock_release, lock_free);

desc_data_retval(long, lockid)
lock_alloc(desc_data(componentid_t compid));
int lock_take(componentid_t compid, desc(long lockid));
int lock_release(componentid_t compid, desc(long lockid));
int lock_free(desc(long lockid));
`
	spec, err := Parse("lock", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(spec.Holds) != 1 || spec.Holds[0].Hold != "lock_take" || spec.Holds[0].Release != "lock_release" {
		t.Fatalf("Holds = %+v", spec.Holds)
	}
	if !spec.IsPerThread("lock_take") {
		t.Error("lock_take not per-thread")
	}
}

func TestParseFault(t *testing.T) {
	src := `
service_global_info = { desc_has_parent = solo, resc_has_data = true };
sm_creation(mk);
sm_terminal(rm);
sm_transition(mk, rm);
sm_fault(storage_crash, reboot);
sm_fault(storage_corruption, degrade);
sm_fault(message_loss, retry);

desc_data_retval(long, id)
mk(int x);
int rm(desc(long id));
`
	spec, sm, err := ParseWithMap("f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Kinds are stored under their canonical (hyphenated) names even though
	// IDL identifiers spell them with underscores.
	want := map[string]string{
		"storage-crash":      "reboot",
		"storage-corruption": "degrade",
		"message-loss":       "retry",
	}
	if !reflect.DeepEqual(spec.FaultActions, want) {
		t.Fatalf("FaultActions = %v; want %v", spec.FaultActions, want)
	}
	if got := sm.FaultLine("storage-corruption"); got != 7 {
		t.Errorf("FaultLine(storage-corruption) = %d, want 7", got)
	}

	for _, tc := range []struct {
		name, decl, want string
	}{
		{"unknown kind", "sm_fault(cosmic_ray, reboot);", "unknown fault kind"},
		{"bad action", "sm_fault(storage_crash, panic);", "must be reboot, retry, or degrade"},
		{"arity", "sm_fault(storage_crash);", "expects 2"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseLax("f", tc.decl); err == nil {
				t.Fatalf("ParseLax accepted %q", tc.decl)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"bad char", "@", "unexpected character"},
		{"unterminated comment", "/* oops", "unterminated"},
		{"bad global key", "service_global_info = { whatever = true };", "unknown service_global_info key"},
		{"bad bool", "service_global_info = { desc_block = maybe };", "true/false"},
		{"bad parent kind", "service_global_info = { desc_has_parent = sideways };", "Solo|Parent|XCParent"},
		{"sm arity", "sm_transition(a);", "expects 2"},
		{"unknown sm decl", "sm_fancy(a);", "unknown state-machine"},
		{"dangling retval", "desc_data_retval(long, id)", "dangling"},
		{"double retval", "desc_data_retval(long, id)\ndesc_data_retval(long, id2)\nint f(long x);", "consecutive"},
		{"reserved fn name", "int desc(long x);", "reserved word"},
		{"param missing name", "int f(desc(long));", "type name"},
		{"missing semi", "int f(long x)", "expected ';'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLax("t", tc.src)
			if err == nil {
				t.Fatalf("ParseLax accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	src := `
// line comment
/* block
   comment */
sm_creation(mk); // trailing
desc_data_retval(long, id)
mk(desc_data(long seed));
int rm(desc(long id)); /* another */
sm_terminal(rm);
sm_transition(mk, rm);
`
	spec, err := Parse("c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(spec.Funcs) != 2 {
		t.Fatalf("Funcs = %d; want 2", len(spec.Funcs))
	}
}

func TestParseMultiWordTypes(t *testing.T) {
	src := `
sm_creation(mk);
sm_terminal(rm);
sm_transition(mk, rm);
desc_data_retval(long, id)
mk(desc_data(unsigned long seed), const char * path);
int rm(desc(long id));
`
	spec, err := Parse("c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	mk := spec.Func("mk")
	if mk.Params[0].CType != "unsigned long" || mk.Params[0].Name != "seed" {
		t.Errorf("param 0 = %+v; want unsigned long seed", mk.Params[0])
	}
	if mk.Params[1].CType != "const char *" || mk.Params[1].Name != "path" {
		t.Errorf("param 1 = %+v; want const char * path", mk.Params[1])
	}
}

func TestLaxSkipsValidation(t *testing.T) {
	// Valid syntax, invalid model (no creation function).
	src := `int f(desc(long id));`
	if _, err := ParseLax("t", src); err != nil {
		t.Fatalf("ParseLax: %v", err)
	}
	if _, err := Parse("t", src); err == nil {
		t.Fatal("Parse accepted model-invalid spec")
	}
}

// TestFormatFig3RoundTrip round-trips the paper's verbatim example through
// the printer.
func TestFormatFig3RoundTrip(t *testing.T) {
	orig, err := Parse("event", fig3)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	again, err := Parse("event", Format(orig))
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if !reflect.DeepEqual(orig, again) {
		t.Errorf("Fig. 3 round trip diverged:\n%s", Format(orig))
	}
}

package experiments

import (
	"superglue/internal/cbuf"
	"superglue/internal/kernel"
	"superglue/internal/storage"
)

// StorageQuorumWriteBench measures one replicated storage write: a
// SaveSlice appended to the write-ahead log of all three replicas of a
// quorum store (checksum seal, per-replica apply, periodic checkpoint
// amortized in). It is the storage-side cost the -replicas 3 campaigns
// add over the paper's trusted single copy (docs/STORAGE.md).
func StorageQuorumWriteBench(n int, start func()) error {
	cm := cbuf.NewManager(0)
	s := storage.NewReplicated(cm, 3)
	s.Attach(kernel.ComponentID(42))
	data := []byte("quorum-write-payload")
	const owner = 9
	b, err := cm.Alloc(owner, len(data))
	if err != nil {
		return err
	}
	if err := cm.Write(b, owner, 0, data); err != nil {
		return err
	}
	if start != nil {
		start()
	}
	for i := 0; i < n; i++ {
		// 64 rotating resource ids keep descriptor state bounded while the
		// WAL/checkpoint cycle runs at its default cadence.
		if err := s.SaveSlice(1, kernel.Word(i%64), 0, b, 0, len(data)); err != nil {
			return err
		}
	}
	return nil
}

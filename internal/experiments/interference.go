package experiments

import (
	"fmt"
	"io"
	"time"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

// InterferenceRow is one cell of the recovery-interference experiment: the
// wall-clock wake latency of a high-priority periodic thread while a
// low-priority thread's fault recovery runs underneath it.
type InterferenceRow struct {
	Mode        core.RecoveryMode
	Descriptors int
	// MaxLatencyUS is the worst observed high-priority wake latency.
	MaxLatencyUS float64
	// MeanLatencyUS is the mean high-priority wake latency.
	MeanLatencyUS float64
}

// RecoveryInterference measures the schedulability claim behind on-demand
// recovery (§II-C): recovery work runs "at the priority of the thread
// accessing the descriptor", so a low-priority client's recovery must not
// delay a high-priority task by more than that task's own (single
// descriptor) share. Under eager recovery, the fault-time rebuild of the
// whole descriptor population runs as one burst that the high-priority
// task's release can land behind.
//
// Per trial: a low-priority thread owns descs lock descriptors; the
// component faults; the low-priority thread touches one descriptor
// (triggering µ-reboot and, in eager mode, the full rebuild); a
// high-priority thread due to wake during that window records how late it
// actually ran (wall clock — simulated work is instantaneous, real recovery
// work is not).
func RecoveryInterference(descCounts []int, trials int) ([]InterferenceRow, error) {
	if len(descCounts) == 0 {
		descCounts = []int{64, 512}
	}
	if trials <= 0 {
		trials = 60
	}
	var rows []InterferenceRow
	for _, mode := range []core.RecoveryMode{core.OnDemand, core.Eager} {
		for _, n := range descCounts {
			row, err := measureInterference(mode, n, trials)
			if err != nil {
				return nil, fmt.Errorf("interference %v/%d: %w", mode, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func measureInterference(mode core.RecoveryMode, descs, trials int) (InterferenceRow, error) {
	sys, err := core.NewSystem(mode)
	if err != nil {
		return InterferenceRow{}, err
	}
	comp, err := lock.Register(sys)
	if err != nil {
		return InterferenceRow{}, err
	}
	cl, err := sys.NewClient("interference-app")
	if err != nil {
		return InterferenceRow{}, err
	}
	locks, err := lock.NewClient(cl, comp)
	if err != nil {
		return InterferenceRow{}, err
	}
	k := sys.Kernel()

	var latencies []float64
	var runErr error
	var hiID kernel.ThreadID
	var released time.Time
	loDone := false

	// High-priority task: parked until the low-priority thread starts a
	// recovery window, then records how long its release-to-run took.
	hiID, err = k.CreateThread(nil, "hi", 5, func(t *kernel.Thread) {
		var hiDesc kernel.Word
		hiDesc, err := locks.Alloc(t)
		if err != nil {
			runErr = err
			return
		}
		for !loDone {
			if err := k.Block(t); err != nil {
				runErr = err
				return
			}
			if loDone {
				return
			}
			// The short high-priority operation; under on-demand it
			// recovers only hiDesc, at this thread's priority. Under eager
			// recovery, being the first post-fault accessor means the
			// entire population rebuild lands on this task. The response
			// time is measured from the release (the wakeup).
			if err := locks.Take(t, hiDesc); err != nil {
				runErr = err
				return
			}
			if err := locks.Release(t, hiDesc); err != nil {
				runErr = err
				return
			}
			latencies = append(latencies, float64(time.Since(released).Nanoseconds())/1000.0)
		}
	})
	if err != nil {
		return InterferenceRow{}, err
	}

	// Low-priority client: owns the descriptor population; each trial
	// faults the component, releases the high-priority task, and then
	// triggers recovery with its own access. Under eager recovery the
	// entire population is rebuilt inside the reboot — a non-preemptible
	// burst the released high-priority task must wait out.
	if _, err := k.CreateThread(nil, "lo", 20, func(t *kernel.Thread) {
		defer func() {
			loDone = true
			_ = k.Wakeup(t, hiID)
		}()
		ids := make([]kernel.Word, descs)
		for i := range ids {
			id, err := locks.Alloc(t)
			if err != nil {
				runErr = err
				return
			}
			ids[i] = id
		}
		for trial := 0; trial < trials; trial++ {
			if err := k.FailComponent(comp); err != nil {
				runErr = err
				return
			}
			// Release the high-priority task: it preempts immediately and
			// is the first post-fault accessor.
			released = time.Now()
			if err := k.Wakeup(t, hiID); err != nil {
				runErr = err
				return
			}
			if err := locks.Take(t, ids[trial%descs]); err != nil {
				runErr = err
				return
			}
			if err := locks.Release(t, ids[trial%descs]); err != nil {
				runErr = err
				return
			}
		}
	}); err != nil {
		return InterferenceRow{}, err
	}
	if err := k.Run(); err != nil {
		return InterferenceRow{}, err
	}
	if runErr != nil {
		return InterferenceRow{}, runErr
	}
	mean, _ := meanStdev(latencies)
	maxL := 0.0
	for _, l := range latencies {
		if l > maxL {
			maxL = l
		}
	}
	return InterferenceRow{Mode: mode, Descriptors: descs, MaxLatencyUS: maxL, MeanLatencyUS: mean}, nil
}

// RenderInterference writes the interference table.
func RenderInterference(w io.Writer, rows []InterferenceRow) {
	fmt.Fprintf(w, "Ablation: high-priority interference from a low-priority client's recovery\n")
	fmt.Fprintf(w, "(on-demand: the high-priority task pays only for its own descriptor;\n")
	fmt.Fprintf(w, " eager: it can land behind the full fault-time rebuild burst)\n")
	fmt.Fprintf(w, "%-10s %12s %16s %16s\n", "mode", "descriptors", "hi mean (µs)", "hi max (µs)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %16.3f %16.3f\n", r.Mode, r.Descriptors, r.MeanLatencyUS, r.MaxLatencyUS)
	}
}

package experiments

import (
	"fmt"
	"io"

	"superglue/internal/pool"
	"superglue/internal/webserver"
)

// Fig7Config parameterizes the web-server throughput comparison.
type Fig7Config struct {
	// Requests per run (the paper's ab invocation sends 50000).
	Requests int
	// Repeats per variant; mean and stdev are reported (the paper repeats
	// 20 times).
	Repeats int
	// Replicas is the storage replication factor per run (0/1 = the
	// legacy single-copy store).
	Replicas int
	// Workers per server.
	Workers int
	// Cores is the number of simulated cores per run (0 or 1 = single-core).
	// Execution stays globally serialized, so multi-core runs model
	// migration cost, not wall-clock parallelism.
	Cores int
	// FaultEvery configures the with-faults SuperGlue run (0 disables it).
	FaultEvery int
	// Parallel runs a variant's repeats concurrently on the shared pool
	// (internal/pool). Repeats are wall-clock throughput measurements, so
	// concurrent repeats contend for the cores being measured — use > 1
	// for smoke runs where total wall-clock matters more than measurement
	// isolation, and leave it at the default 1 for reported numbers.
	Parallel int
}

// Fig7Row is one bar of Fig. 7.
type Fig7Row struct {
	Label          string
	Variant        webserver.Variant
	MeanRPS        float64
	StdevRPS       float64
	SlowdownVsBase float64 // fraction vs the component-substrate baseline
	Faults         int
	Cores          int
	Migrations     uint64
	Timeline       []webserver.BucketPoint
}

// Fig7 measures web-server throughput for the plain baseline, the raw
// component substrate, C³, SuperGlue, and SuperGlue under periodic fault
// injection.
func Fig7(cfg Fig7Config) ([]Fig7Row, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 50000
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.FaultEvery == 0 {
		cfg.FaultEvery = cfg.Requests / 10
	}

	type plan struct {
		label      string
		variant    webserver.Variant
		faultEvery int
	}
	plans := []plan{
		{"apache-like (no components)", webserver.VariantBaseline, 0},
		{"composite (no recovery)", webserver.VariantComposite, 0},
		{"composite+c3", webserver.VariantC3, 0},
		{"composite+superglue", webserver.VariantSuperGlue, 0},
		{"composite+superglue +faults", webserver.VariantSuperGlue, cfg.FaultEvery},
	}
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	var rows []Fig7Row
	var compositeRPS float64
	for _, p := range plans {
		// The repeat loop runs on the shared pool: each repeat writes only
		// its own slot, and "last" is always the highest-index repeat, so
		// the reported rows are the same for any Parallel setting (the
		// measured throughputs themselves are noisier when runs contend).
		rps := make([]float64, cfg.Repeats)
		stats := make([]*webserver.Stats, cfg.Repeats)
		err := pool.Run(cfg.Repeats, parallel, func(r int) error {
			st, err := webserver.Run(webserver.Config{
				Variant:    p.variant,
				Requests:   cfg.Requests,
				Workers:    cfg.Workers,
				Cores:      cfg.Cores,
				Replicas:   cfg.Replicas,
				FaultEvery: p.faultEvery,
			})
			if err != nil {
				return fmt.Errorf("fig7 %s: %w", p.label, err)
			}
			if st.Errors > 0 {
				return fmt.Errorf("fig7 %s: %d request errors", p.label, st.Errors)
			}
			rps[r] = st.Throughput
			stats[r] = st
			return nil
		})
		if err != nil {
			return nil, err
		}
		last := stats[cfg.Repeats-1]
		mean, stdev := meanStdev(rps)
		row := Fig7Row{Label: p.label, Variant: p.variant, MeanRPS: mean, StdevRPS: stdev,
			Faults: last.Faults, Cores: last.Cores, Migrations: last.Migrations,
			Timeline: last.Timeline}
		if p.variant == webserver.VariantComposite {
			compositeRPS = mean
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if compositeRPS > 0 {
			rows[i].SlowdownVsBase = 1 - rows[i].MeanRPS/compositeRPS
		}
	}
	return rows, nil
}

// RenderFig7 writes the Fig. 7 comparison.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Fig 7: web server throughput (requests/second, wall clock)\n")
	fmt.Fprintf(w, "%-30s %14s %12s %16s %7s\n", "system", "req/s", "±σ", "slowdown vs comp", "faults")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %14.0f %12.0f %15.2f%% %7d\n",
			r.Label, r.MeanRPS, r.StdevRPS, 100*r.SlowdownVsBase, r.Faults)
	}
	for _, r := range rows {
		if r.Cores > 1 {
			fmt.Fprintf(w, "%-30s %d cores, %d cross-core migrations (execution serialized; migration cost only)\n",
				r.Label, r.Cores, r.Migrations)
		}
	}
}

// RenderFig7Timeline writes the with-faults completion timeline, showing
// that throughput dips during recovery but never drops to zero.
func RenderFig7Timeline(w io.Writer, rows []Fig7Row) {
	for _, r := range rows {
		if r.Faults == 0 || len(r.Timeline) == 0 {
			continue
		}
		fmt.Fprintf(w, "\nTimeline (%s): completions over wall time\n", r.Label)
		prev := r.Timeline[0]
		for i, pt := range r.Timeline {
			if i == 0 {
				fmt.Fprintf(w, "  %8d req @ %10v\n", pt.Completed, pt.Elapsed.Round(1000))
				continue
			}
			dReq := pt.Completed - prev.Completed
			dT := pt.Elapsed - prev.Elapsed
			rate := 0.0
			if dT > 0 {
				rate = float64(dReq) / dT.Seconds()
			}
			fmt.Fprintf(w, "  %8d req @ %10v (%8.0f req/s in bucket)\n", pt.Completed, pt.Elapsed.Round(1000), rate)
			prev = pt
		}
	}
}

// MechanismRow maps one service to its derived recovery-mechanism set
// (the §III-C narrative table).
type MechanismRow struct {
	Service    string
	Mechanisms string
}

// Mechanisms derives each service's recovery-mechanism set from its IDL.
func Mechanisms() ([]MechanismRow, error) {
	var rows []MechanismRow
	for _, svc := range Services() {
		spec, err := specFor(svc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MechanismRow{Service: svc, Mechanisms: fmt.Sprint(spec.Mechanisms())})
	}
	return rows, nil
}

// RenderMechanisms writes the mechanism table.
func RenderMechanisms(w io.Writer, rows []MechanismRow) {
	fmt.Fprintf(w, "Recovery mechanisms derived from each interface specification (§III-C)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %s\n", r.Service, r.Mechanisms)
	}
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"superglue/internal/c3"
	"superglue/internal/cbuf"
	"superglue/internal/codegen"
	"superglue/internal/core"
	"superglue/internal/idl"
	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// StubKind selects the interface binding under measurement.
type StubKind int

// Stub kinds.
const (
	// KindBase is the raw component invocation with no stub logic.
	KindBase StubKind = iota + 1
	// KindC3 is the hand-written C³ stub.
	KindC3
	// KindSuperGlue is the SuperGlue runtime stub.
	KindSuperGlue
)

// String implements fmt.Stringer.
func (k StubKind) String() string {
	switch k {
	case KindBase:
		return "base"
	case KindC3:
		return "c3"
	case KindSuperGlue:
		return "superglue"
	default:
		return fmt.Sprintf("StubKind(%d)", int(k))
	}
}

// opsRig is one service bound through one stub kind on a fresh system:
// a one-time prep and a repeatable measured iteration. The iteration
// exercises the §V-B micro-workload's interface functions.
type opsRig struct {
	sys  *core.System
	comp kernel.ComponentID
	prep func(t *kernel.Thread) error
	iter func(t *kernel.Thread) error
	// recoveryIter, when set, is the operation timed by the recovery
	// benchmarks instead of iter: services whose recovery is dominated by
	// a path the plain iteration does not take (the event manager's
	// G0/U0 creator upcall) probe through it.
	recoveryIter func(t *kernel.Thread) error
}

// specFor returns the parsed IDL spec of a service.
func specFor(service string) (*core.Spec, error) {
	src, ok := idlSources()[service]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown service %q", service)
	}
	return idl.Parse(service, src)
}

func idlSources() map[string]string {
	return map[string]string{
		"lock":  lock.IDLSource(),
		"event": event.IDLSource(),
		"sched": sched.IDLSource(),
		"timer": timer.IDLSource(),
		"mm":    mm.IDLSource(),
		"ramfs": ramfs.IDLSource(),
	}
}

// buildOps assembles a fresh system with the service registered and binds
// its micro-op through the requested stub kind.
func buildOps(service string, kind StubKind) (*opsRig, error) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		return nil, err
	}
	rig := &opsRig{sys: sys}
	reg := map[string]func(*core.System) (kernel.ComponentID, error){
		"lock": lock.Register, "event": event.Register, "sched": sched.Register,
		"timer": timer.Register, "mm": mm.Register, "ramfs": ramfs.Register,
	}[service]
	if reg == nil {
		return nil, fmt.Errorf("experiments: unknown service %q", service)
	}
	if rig.comp, err = reg(sys); err != nil {
		return nil, err
	}
	switch kind {
	case KindBase:
		cl, err := sys.NewClient("bench-app")
		if err != nil {
			return nil, err
		}
		bindBase(rig, service, cl)
	case KindC3:
		cl, err := c3.NewClient(sys, "bench-app")
		if err != nil {
			return nil, err
		}
		if err := bindC3(rig, service, cl); err != nil {
			return nil, err
		}
	case KindSuperGlue:
		cl, err := sys.NewClient("bench-app")
		if err != nil {
			return nil, err
		}
		if err := bindSuperGlue(rig, service, cl); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown stub kind %d", int(kind))
	}
	return rig, nil
}

// bindSuperGlue binds through the typed SuperGlue clients.
func bindSuperGlue(rig *opsRig, service string, cl *core.Client) error {
	switch service {
	case "lock":
		c, err := lock.NewClient(cl, rig.comp)
		if err != nil {
			return err
		}
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = c.Alloc(t)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if err := c.Take(t, id); err != nil {
				return err
			}
			return c.Release(t, id)
		}
	case "event":
		c, err := event.NewClient(cl, rig.comp)
		if err != nil {
			return err
		}
		other, err := rig.sys.NewClient("bench-other")
		if err != nil {
			return err
		}
		oc, err := event.NewClient(other, rig.comp)
		if err != nil {
			return err
		}
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = c.Split(t, 0, 0)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := c.Trigger(t, id); err != nil {
				return err
			}
			_, err := c.Wait(t, id)
			return err
		}
		// Recovery probe: a non-creator triggers with a (stale) global ID,
		// exercising the full G0 path — storage resolve, EINVAL, creator
		// upcall (U0), replay — which is why the event manager is the most
		// expensive service to recover (Fig. 6(b) commentary).
		rig.recoveryIter = func(t *kernel.Thread) error {
			if _, err := oc.Trigger(t, id); err != nil {
				return err
			}
			_, err := c.Wait(t, id)
			return err
		}
	case "sched":
		c, err := sched.NewClient(cl, rig.comp)
		if err != nil {
			return err
		}
		rig.prep = func(t *kernel.Thread) error {
			_, err := c.Setup(t, t.Prio())
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if err := c.Wakeup(t, t.ID()); err != nil {
				return err
			}
			return c.Blk(t)
		}
	case "timer":
		c, err := timer.NewClient(cl, rig.comp)
		if err != nil {
			return err
		}
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = c.Alloc(t, 1)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			_, err := c.Wait(t, id)
			return err
		}
	case "mm":
		c, err := mm.NewClient(cl, rig.comp)
		if err != nil {
			return err
		}
		const root = kernel.Word(0x10_0000)
		rig.prep = func(t *kernel.Thread) error {
			_, err := c.GetPage(t, root)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := c.AliasPage(t, root, cl.ID(), 0x20_0000); err != nil {
				return err
			}
			return c.ReleasePage(t, 0x20_0000)
		}
	case "ramfs":
		c, err := ramfs.NewClient(cl, rig.comp)
		if err != nil {
			return err
		}
		var fd kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			fd, err = c.Open(t, "/bench.dat")
			if err != nil {
				return err
			}
			_, err = c.Write(t, fd, []byte("benchmark payload"))
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := c.Lseek(t, fd, 0); err != nil {
				return err
			}
			_, err := c.Read(t, fd, 8)
			return err
		}
	default:
		return fmt.Errorf("experiments: unknown service %q", service)
	}
	return nil
}

// bindC3 binds through the hand-written C³ stubs.
func bindC3(rig *opsRig, service string, cl *c3.Client) error {
	switch service {
	case "lock":
		st := c3.NewLockStub(cl, rig.comp)
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = st.Alloc(t)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if err := st.Take(t, id); err != nil {
				return err
			}
			return st.Release(t, id)
		}
	case "event":
		st, err := c3.NewEventStub(cl, rig.comp)
		if err != nil {
			return err
		}
		other, err := c3.NewClient(rig.sys, "bench-other")
		if err != nil {
			return err
		}
		ost, err := c3.NewEventStub(other, rig.comp)
		if err != nil {
			return err
		}
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = st.Split(t, 0, 0)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := st.Trigger(t, id); err != nil {
				return err
			}
			_, err := st.Wait(t, id)
			return err
		}
		rig.recoveryIter = func(t *kernel.Thread) error {
			if _, err := ost.Trigger(t, id); err != nil {
				return err
			}
			_, err := st.Wait(t, id)
			return err
		}
	case "sched":
		st := c3.NewSchedStub(cl, rig.comp)
		rig.prep = func(t *kernel.Thread) error {
			_, err := st.Setup(t, t.Prio())
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if err := st.Wakeup(t, t.ID()); err != nil {
				return err
			}
			return st.Blk(t)
		}
	case "timer":
		st := c3.NewTimerStub(cl, rig.comp)
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = st.Alloc(t, 1)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			_, err := st.Wait(t, id)
			return err
		}
	case "mm":
		st := c3.NewMMStub(cl, rig.comp)
		const root = kernel.Word(0x10_0000)
		rig.prep = func(t *kernel.Thread) error {
			_, err := st.GetPage(t, root)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := st.Alias(t, cl.ID(), root, cl.ID(), 0x20_0000); err != nil {
				return err
			}
			return st.Release(t, cl.ID(), 0x20_0000)
		}
	case "ramfs":
		st := c3.NewFSStub(cl, rig.comp)
		var fd kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			fd, err = st.Open(t, "/bench.dat")
			if err != nil {
				return err
			}
			_, err = st.Write(t, fd, []byte("benchmark payload"))
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := st.Lseek(t, fd, 0); err != nil {
				return err
			}
			_, err := st.Read(t, fd, 8)
			return err
		}
	default:
		return fmt.Errorf("experiments: unknown service %q", service)
	}
	return nil
}

// bindBase binds through raw invocations (no tracking, no recovery).
func bindBase(rig *opsRig, service string, cl *core.Client) {
	k := rig.sys.Kernel()
	cm := rig.sys.Cbufs()
	self := kernel.Word(cl.ID())
	comp := rig.comp
	switch service {
	case "lock":
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = k.Invoke(t, comp, lock.FnAlloc, self)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := k.Invoke(t, comp, lock.FnTake, self, id, kernel.Word(t.ID())); err != nil {
				return err
			}
			_, err := k.Invoke(t, comp, lock.FnRelease, self, id, kernel.Word(t.ID()))
			return err
		}
	case "event":
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = k.Invoke(t, comp, event.FnSplit, self, 0, 0)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := k.Invoke(t, comp, event.FnTrigger, self, id); err != nil {
				return err
			}
			_, err := k.Invoke(t, comp, event.FnWait, self, id)
			return err
		}
	case "sched":
		rig.prep = func(t *kernel.Thread) error {
			_, err := k.Invoke(t, comp, sched.FnSetup, self, kernel.Word(t.ID()), kernel.Word(t.Prio()))
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := k.Invoke(t, comp, sched.FnWakeup, self, kernel.Word(t.ID())); err != nil {
				return err
			}
			_, err := k.Invoke(t, comp, sched.FnBlk, self, kernel.Word(t.ID()))
			return err
		}
	case "timer":
		var id kernel.Word
		rig.prep = func(t *kernel.Thread) error {
			var err error
			id, err = k.Invoke(t, comp, timer.FnAlloc, self, 1)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			_, err := k.Invoke(t, comp, timer.FnWait, self, id)
			return err
		}
	case "mm":
		const root = kernel.Word(0x10_0000)
		rig.prep = func(t *kernel.Thread) error {
			_, err := k.Invoke(t, comp, mm.FnGetPage, self, root, 0)
			return err
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := k.Invoke(t, comp, mm.FnAliasPage, self, root, self, 0x20_0000); err != nil {
				return err
			}
			_, err := k.Invoke(t, comp, mm.FnReleasePage, self, 0x20_0000)
			return err
		}
	case "ramfs":
		var fd kernel.Word
		var rbuf cbuf.ID
		rig.prep = func(t *kernel.Thread) error {
			path := "/bench.dat"
			pbuf, err := cm.Alloc(cbuf.ComponentID(cl.ID()), len(path))
			if err != nil {
				return err
			}
			if err := cm.Write(pbuf, cbuf.ComponentID(cl.ID()), 0, []byte(path)); err != nil {
				return err
			}
			if err := cm.Map(pbuf, cbuf.ComponentID(comp)); err != nil {
				return err
			}
			if fd, err = k.Invoke(t, comp, ramfs.FnOpen, self, kernel.Word(pbuf), kernel.Word(len(path))); err != nil {
				return err
			}
			payload := []byte("benchmark payload")
			dbuf, err := cm.Alloc(cbuf.ComponentID(cl.ID()), len(payload))
			if err != nil {
				return err
			}
			if err := cm.Write(dbuf, cbuf.ComponentID(cl.ID()), 0, payload); err != nil {
				return err
			}
			if err := cm.Map(dbuf, cbuf.ComponentID(comp)); err != nil {
				return err
			}
			if _, err := k.Invoke(t, comp, ramfs.FnWrite, self, fd, kernel.Word(dbuf), kernel.Word(len(payload))); err != nil {
				return err
			}
			if rbuf, err = cm.Alloc(cbuf.ComponentID(cl.ID()), 8); err != nil {
				return err
			}
			return cm.Delegate(rbuf, cbuf.ComponentID(cl.ID()), cbuf.ComponentID(comp))
		}
		rig.iter = func(t *kernel.Thread) error {
			if _, err := k.Invoke(t, comp, ramfs.FnLseek, fd, 0); err != nil {
				return err
			}
			_, err := k.Invoke(t, comp, ramfs.FnRead, self, fd, kernel.Word(rbuf), 8)
			return err
		}
	}
}

// RunMicrobench runs n iterations of the service's §V-B micro-op through
// the given stub kind on a fresh system; the caller (a testing.B harness)
// does the timing.
func RunMicrobench(service string, kind StubKind, n int) error {
	rig, err := buildOps(service, kind)
	if err != nil {
		return err
	}
	var runErr error
	if _, err := rig.sys.Kernel().CreateThread(nil, "bench", 10, func(t *kernel.Thread) {
		if err := rig.prep(t); err != nil {
			runErr = err
			return
		}
		for i := 0; i < n; i++ {
			if err := rig.iter(t); err != nil {
				runErr = err
				return
			}
		}
	}); err != nil {
		return err
	}
	if err := rig.sys.Kernel().Run(); err != nil {
		return err
	}
	return runErr
}

// RunRecoveryBench performs n fault-then-recover cycles of the service's
// micro-op through the given stub kind (one µ-reboot + descriptor recovery
// + redo per cycle); the caller does the timing.
func RunRecoveryBench(service string, kind StubKind, n int) error {
	rig, err := buildOps(service, kind)
	if err != nil {
		return err
	}
	k := rig.sys.Kernel()
	probe := rig.iter
	if rig.recoveryIter != nil {
		probe = rig.recoveryIter
	}
	var runErr error
	if _, err := k.CreateThread(nil, "bench", 10, func(t *kernel.Thread) {
		if err := rig.prep(t); err != nil {
			runErr = err
			return
		}
		for i := 0; i < n; i++ {
			if err := k.FailComponent(rig.comp); err != nil {
				runErr = err
				return
			}
			if err := probe(t); err != nil {
				runErr = err
				return
			}
		}
	}); err != nil {
		return err
	}
	if err := k.Run(); err != nil {
		return err
	}
	return runErr
}

// Fig6aRow is one service's infrastructure-overhead measurement (µs per
// micro-benchmark iteration).
type Fig6aRow struct {
	Service                    string
	BaseUS, BaseStdev          float64
	C3US, C3Stdev              float64
	SGUS, SGStdev              float64
	C3OverheadUS, SGOverheadUS float64
}

// Fig6a measures the descriptor-tracking infrastructure overhead per
// service: the §V-B micro-benchmark iteration cost through raw invocations,
// C³ stubs, and SuperGlue stubs.
func Fig6a(iters int) ([]Fig6aRow, error) {
	if iters <= 0 {
		iters = 2000
	}
	var rows []Fig6aRow
	for _, svc := range Services() {
		row := Fig6aRow{Service: svc}
		for _, kind := range []StubKind{KindBase, KindC3, KindSuperGlue} {
			mean, stdev, err := timeIters(svc, kind, iters)
			if err != nil {
				return nil, fmt.Errorf("fig6a %s/%v: %w", svc, kind, err)
			}
			switch kind {
			case KindBase:
				row.BaseUS, row.BaseStdev = mean, stdev
			case KindC3:
				row.C3US, row.C3Stdev = mean, stdev
			case KindSuperGlue:
				row.SGUS, row.SGStdev = mean, stdev
			}
		}
		row.C3OverheadUS = row.C3US - row.BaseUS
		row.SGOverheadUS = row.SGUS - row.BaseUS
		rows = append(rows, row)
	}
	return rows, nil
}

// timeIters runs the micro-op iters times on a fresh system and returns the
// per-iteration mean and stdev in microseconds.
func timeIters(service string, kind StubKind, iters int) (float64, float64, error) {
	rig, err := buildOps(service, kind)
	if err != nil {
		return 0, 0, err
	}
	samples := make([]float64, 0, iters)
	var runErr error
	if _, err := rig.sys.Kernel().CreateThread(nil, "bench", 10, func(t *kernel.Thread) {
		if err := rig.prep(t); err != nil {
			runErr = err
			return
		}
		// Warm up.
		for i := 0; i < 16; i++ {
			if err := rig.iter(t); err != nil {
				runErr = err
				return
			}
		}
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if err := rig.iter(t); err != nil {
				runErr = err
				return
			}
			samples = append(samples, float64(time.Since(t0).Nanoseconds())/1000.0)
		}
	}); err != nil {
		return 0, 0, err
	}
	if err := rig.sys.Kernel().Run(); err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, runErr
	}
	mean, stdev := meanStdev(samples)
	return mean, stdev, nil
}

// Fig6bRow is one service's per-descriptor recovery cost (µs).
type Fig6bRow struct {
	Service       string
	C3US, C3Stdev float64
	SGUS, SGStdev float64
	Mechanisms    []core.Mechanism
}

// Fig6b measures the per-descriptor recovery overhead: the extra time the
// first post-fault operation takes (µ-reboot amortized across it, plus the
// recovery walk and redo), compared with the same operation fault-free.
func Fig6b(trials int) ([]Fig6bRow, error) {
	if trials <= 0 {
		trials = 300
	}
	var rows []Fig6bRow
	for _, svc := range Services() {
		spec, err := specFor(svc)
		if err != nil {
			return nil, err
		}
		row := Fig6bRow{Service: svc, Mechanisms: spec.Mechanisms()}
		for _, kind := range []StubKind{KindC3, KindSuperGlue} {
			mean, stdev, err := timeRecovery(svc, kind, trials)
			if err != nil {
				return nil, fmt.Errorf("fig6b %s/%v: %w", svc, kind, err)
			}
			if kind == KindC3 {
				row.C3US, row.C3Stdev = mean, stdev
			} else {
				row.SGUS, row.SGStdev = mean, stdev
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// timeRecovery measures recovery cost: per trial, fail the component and
// time the next operation (which µ-reboots, recovers the descriptor, and
// redoes the call), subtracting the fault-free operation cost.
func timeRecovery(service string, kind StubKind, trials int) (float64, float64, error) {
	rig, err := buildOps(service, kind)
	if err != nil {
		return 0, 0, err
	}
	k := rig.sys.Kernel()
	probe := rig.iter
	if rig.recoveryIter != nil {
		probe = rig.recoveryIter
	}
	samples := make([]float64, 0, trials)
	var baseMean float64
	var runErr error
	if _, err := k.CreateThread(nil, "bench", 10, func(t *kernel.Thread) {
		if err := rig.prep(t); err != nil {
			runErr = err
			return
		}
		base := make([]float64, 0, 64)
		for i := 0; i < 64; i++ {
			t0 := time.Now()
			if err := probe(t); err != nil {
				runErr = err
				return
			}
			base = append(base, float64(time.Since(t0).Nanoseconds())/1000.0)
		}
		baseMean, _ = meanStdev(base)
		for i := 0; i < trials; i++ {
			if err := k.FailComponent(rig.comp); err != nil {
				runErr = err
				return
			}
			t0 := time.Now()
			if err := probe(t); err != nil {
				runErr = err
				return
			}
			samples = append(samples, float64(time.Since(t0).Nanoseconds())/1000.0)
		}
	}); err != nil {
		return 0, 0, err
	}
	if err := k.Run(); err != nil {
		return 0, 0, err
	}
	if runErr != nil {
		return 0, 0, runErr
	}
	mean, stdev := meanStdev(samples)
	recovery := mean - baseMean
	if recovery < 0 {
		recovery = 0
	}
	return recovery, stdev, nil
}

// Fig6cRow is one service's lines-of-code comparison.
type Fig6cRow struct {
	Service      string
	IDLLOC       int
	GeneratedLOC int
	C3StubLOC    int
}

// Fig6c counts the declarative IDL size, the code SuperGlue generates from
// it, and the hand-written C³ stub it replaces.
func Fig6c() ([]Fig6cRow, error) {
	var rows []Fig6cRow
	for _, svc := range Services() {
		spec, err := specFor(svc)
		if err != nil {
			return nil, err
		}
		ir, err := codegen.NewIR(spec)
		if err != nil {
			return nil, err
		}
		files, err := codegen.Generate(ir)
		if err != nil {
			return nil, err
		}
		gen := 0
		for _, content := range files {
			gen += CountLOC(content)
		}
		c3Src, ok := c3.StubSource(svc)
		if !ok {
			return nil, fmt.Errorf("fig6c: no C³ stub source for %s", svc)
		}
		rows = append(rows, Fig6cRow{
			Service:      svc,
			IDLLOC:       CountLOC(idlSources()[svc]),
			GeneratedLOC: gen,
			C3StubLOC:    CountLOC(c3Src),
		})
	}
	return rows, nil
}

// RenderFig6a writes the Fig. 6(a) table.
func RenderFig6a(w io.Writer, rows []Fig6aRow) {
	fmt.Fprintf(w, "Fig 6(a): infrastructure overhead with descriptor state tracking (µs/iteration)\n")
	fmt.Fprintf(w, "%-8s %14s %18s %18s %12s %12s\n", "service", "base (µs)", "C3 (µs ±σ)", "SuperGlue (µs ±σ)", "C3 ovh", "SG ovh")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %14.3f %11.3f ±%5.3f %11.3f ±%5.3f %12.3f %12.3f\n",
			r.Service, r.BaseUS, r.C3US, r.C3Stdev, r.SGUS, r.SGStdev, r.C3OverheadUS, r.SGOverheadUS)
	}
}

// RenderFig6b writes the Fig. 6(b) table.
func RenderFig6b(w io.Writer, rows []Fig6bRow) {
	fmt.Fprintf(w, "Fig 6(b): per-descriptor recovery overhead (µs)\n")
	fmt.Fprintf(w, "%-8s %18s %18s  %s\n", "service", "C3 (µs ±σ)", "SuperGlue (µs ±σ)", "mechanisms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %11.3f ±%5.3f %11.3f ±%5.3f  %v\n",
			r.Service, r.C3US, r.C3Stdev, r.SGUS, r.SGStdev, r.Mechanisms)
	}
}

// RenderFig6c writes the Fig. 6(c) table.
func RenderFig6c(w io.Writer, rows []Fig6cRow) {
	fmt.Fprintf(w, "Fig 6(c): recovery code size (LOC)\n")
	fmt.Fprintf(w, "%-8s %10s %14s %16s %8s\n", "service", "IDL", "generated", "C3 hand-written", "ratio")
	for _, r := range rows {
		ratio := 0.0
		if r.IDLLOC > 0 {
			ratio = float64(r.GeneratedLOC) / float64(r.IDLLOC)
		}
		fmt.Fprintf(w, "%-8s %10d %14d %16d %7.1fx\n", r.Service, r.IDLLOC, r.GeneratedLOC, r.C3StubLOC, ratio)
	}
}

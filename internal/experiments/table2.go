package experiments

import (
	"fmt"
	"io"
	"sort"

	"superglue/internal/pool"
	"superglue/internal/swifi"
)

// Table2 runs the SWIFI fault-injection campaign of Table II: trials
// injections per system service, with the §V-B workloads. The six
// per-service campaigns run concurrently and each campaign additionally
// shards its trials over workers goroutines; results come back in the
// Table II service order regardless of scheduling.
func Table2(trials int, seed int64, workers int) ([]*swifi.Result, error) {
	if trials <= 0 {
		trials = 500
	}
	targets := swifi.Targets()
	results := make([]*swifi.Result, len(targets))
	err := pool.Run(len(targets), workers, func(i int) error {
		svc := targets[i]
		res, err := swifi.Run(swifi.Config{
			Service:  svc,
			Workload: swifi.Workloads()[svc],
			Iters:    5,
			Trials:   trials,
			Seed:     seed,
			Profile:  swifi.Profiles()[svc],
			Workers:  workers,
		})
		if err != nil {
			return fmt.Errorf("table2 %s: %w", svc, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RenderTable2 writes the Table II rows.
func RenderTable2(w io.Writer, results []*swifi.Result) {
	fmt.Fprintf(w, "Table II: SWIFI-based fault injection campaign with SuperGlue\n")
	fmt.Fprintf(w, "%-8s %9s %10s %10s %12s %8s %9s %11s %11s %9s\n",
		"service", "injected", "recovered", "seg fault", "propagated", "other", "degraded", "undetected", "activation", "success")
	for _, r := range results {
		// Multi-core campaigns annotate the service cell with the core
		// count; single-core rows keep the paper's exact layout.
		svc := r.Service
		if r.Cores > 1 {
			svc = fmt.Sprintf("%s/%dc", r.Service, r.Cores)
		}
		fmt.Fprintf(w, "%-8s %9d %10d %10d %12d %8d %9d %11d %10.2f%% %8.2f%%\n",
			svc, r.Injected, r.Recovered, r.Segfault, r.Propagated, r.Other, r.Degraded, r.Undetected,
			100*r.ActivationRatio(), 100*r.SuccessRate())
	}
}

// RenderTable2Kinds writes the fault-kind columns of a shaped campaign:
// for each service, one row per injected kind with its outcome split.
// Services without a per-kind breakdown (legacy campaigns) are skipped.
func RenderTable2Kinds(w io.Writer, results []*swifi.Result) {
	fmt.Fprintf(w, "\nTable II (fault-kind columns): outcomes by injected kind\n")
	fmt.Fprintf(w, "%-8s %-19s %9s %10s %9s %14s %11s\n",
		"service", "kind", "injected", "recovered", "degraded", "not recovered", "undetected")
	for _, r := range results {
		if len(r.Kinds) == 0 {
			continue
		}
		kinds := make([]string, 0, len(r.Kinds))
		for k := range r.Kinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			ks := r.Kinds[k]
			fmt.Fprintf(w, "%-8s %-19s %9d %10d %9d %14d %11d\n",
				r.Service, k, ks.Injected, ks.Recovered, ks.Degraded, ks.NotRecovered, ks.Undetected)
		}
	}
}

// Table2PrimeRow compares one service's hang-injection trials with the
// kernel watchdog off and on. Trials are paired: the same seed drives the
// same per-trial RNG stream in both campaigns, so trial i fires the same
// bit flip in both runs and per-trial reclassification is well defined.
type Table2PrimeRow struct {
	Service string
	// HangsFired counts trials whose flip manifested as an unbounded loop.
	HangsFired int
	// Watchdog-off outcomes of those trials.
	OffOther     int
	OffRecovered int
	// Watchdog-on outcomes of the same trials.
	OnRecovered int
	OnDegraded  int
	OnOther     int
	// Reclassified counts trials that moved from "not recovered (other)"
	// to recovered or degraded when the watchdog was enabled.
	Reclassified int
}

// ReclassificationRate is the fraction of watchdog-off "other" hang trials
// the watchdog reclaimed.
func (r *Table2PrimeRow) ReclassificationRate() float64 {
	if r.OffOther == 0 {
		return 0
	}
	return float64(r.Reclassified) / float64(r.OffOther)
}

// Table2Prime runs the Table II′ experiment: each service's campaign twice
// from the same seed — watchdog off, then on — and pairs the hang trials.
// With no services given, all targets run. Services run concurrently on
// the pool (trials within each campaign shard over workers too); the
// off/on pair for one service stays sequential so the paired trials
// share the seed derivation.
func Table2Prime(trials int, seed int64, workers int, services ...string) ([]Table2PrimeRow, error) {
	if trials <= 0 {
		trials = 500
	}
	targets := swifi.Targets()
	if len(services) > 0 {
		for _, svc := range services {
			if _, ok := swifi.Workloads()[svc]; !ok {
				return nil, fmt.Errorf("table2': unknown service %q", svc)
			}
		}
		targets = services
	}
	rows := make([]Table2PrimeRow, len(targets))
	err := pool.Run(len(targets), workers, func(i int) error {
		svc := targets[i]
		cfg := swifi.Config{
			Service:  svc,
			Workload: swifi.Workloads()[svc],
			Iters:    5,
			Trials:   trials,
			Seed:     seed,
			Profile:  swifi.Profiles()[svc],
			Workers:  workers,
		}
		off, err := swifi.Run(cfg)
		if err != nil {
			return fmt.Errorf("table2' %s (watchdog off): %w", svc, err)
		}
		cfg.Watchdog = true
		on, err := swifi.Run(cfg)
		if err != nil {
			return fmt.Errorf("table2' %s (watchdog on): %w", svc, err)
		}
		rows[i] = pairHangTrials(svc, off, on)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// pairHangTrials folds two same-seed campaigns into one Table II′ row.
func pairHangTrials(svc string, off, on *swifi.Result) Table2PrimeRow {
	row := Table2PrimeRow{Service: svc}
	for i := range off.Trials {
		o := off.Trials[i]
		if o.Injection.Effect != swifi.EffectHang {
			continue
		}
		row.HangsFired++
		switch o.Outcome {
		case swifi.OutcomeOther:
			row.OffOther++
		case swifi.OutcomeRecovered:
			row.OffRecovered++
		}
		n := on.Trials[i]
		switch n.Outcome {
		case swifi.OutcomeRecovered:
			row.OnRecovered++
		case swifi.OutcomeDegraded:
			row.OnDegraded++
		case swifi.OutcomeOther:
			row.OnOther++
		}
		if o.Outcome == swifi.OutcomeOther &&
			(n.Outcome == swifi.OutcomeRecovered || n.Outcome == swifi.OutcomeDegraded) {
			row.Reclassified++
		}
	}
	return row
}

// RenderTable2Prime writes the Table II′ rows.
func RenderTable2Prime(w io.Writer, rows []Table2PrimeRow) {
	fmt.Fprintf(w, "Table II': hang injections, kernel watchdog off vs on (same seed, paired trials)\n")
	fmt.Fprintf(w, "%-8s %6s %10s %10s %9s %9s %9s %13s %9s\n",
		"service", "hangs", "off:other", "off:recov", "on:recov", "on:degr", "on:other", "reclassified", "rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %6d %10d %10d %9d %9d %9d %13d %8.2f%%\n",
			r.Service, r.HangsFired, r.OffOther, r.OffRecovered, r.OnRecovered, r.OnDegraded, r.OnOther,
			r.Reclassified, 100*r.ReclassificationRate())
	}
}

package experiments

import (
	"fmt"
	"io"

	"superglue/internal/swifi"
)

// Table2 runs the SWIFI fault-injection campaign of Table II: trials
// injections per system service, with the §V-B workloads.
func Table2(trials int, seed int64) ([]*swifi.Result, error) {
	if trials <= 0 {
		trials = 500
	}
	var results []*swifi.Result
	for _, svc := range swifi.Targets() {
		res, err := swifi.Run(swifi.Config{
			Service:  svc,
			Workload: swifi.Workloads()[svc],
			Iters:    5,
			Trials:   trials,
			Seed:     seed,
			Profile:  swifi.Profiles()[svc],
		})
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", svc, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// RenderTable2 writes the Table II rows.
func RenderTable2(w io.Writer, results []*swifi.Result) {
	fmt.Fprintf(w, "Table II: SWIFI-based fault injection campaign with SuperGlue\n")
	fmt.Fprintf(w, "%-8s %9s %10s %10s %12s %8s %11s %11s %9s\n",
		"service", "injected", "recovered", "seg fault", "propagated", "other", "undetected", "activation", "success")
	for _, r := range results {
		fmt.Fprintf(w, "%-8s %9d %10d %10d %12d %8d %11d %10.2f%% %8.2f%%\n",
			r.Service, r.Injected, r.Recovered, r.Segfault, r.Propagated, r.Other, r.Undetected,
			100*r.ActivationRatio(), 100*r.SuccessRate())
	}
}

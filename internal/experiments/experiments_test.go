package experiments

import (
	"strings"
	"testing"
)

func TestCountLOC(t *testing.T) {
	src := `
// comment only
/* block
   comment */
code line 1;  // trailing
code line 2; /* inline */

/* a */ code line 3;
`
	if got := CountLOC(src); got != 3 {
		t.Fatalf("CountLOC = %d; want 3", got)
	}
	if got := CountLOC(""); got != 0 {
		t.Fatalf("CountLOC(empty) = %d; want 0", got)
	}
}

func TestFig6aSmall(t *testing.T) {
	rows, err := Fig6a(500)
	if err != nil {
		t.Fatalf("Fig6a: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d; want 6", len(rows))
	}
	for _, r := range rows {
		if r.BaseUS <= 0 || r.C3US <= 0 || r.SGUS <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Service, r)
		}
		// Tracking costs something: for the invocation-bound services,
		// stubs should not be cheaper than raw invocations by more than
		// noise. (timer/sched iterations are dominated by scheduling, not
		// tracking, and are too noisy at this small sample size.)
		switch r.Service {
		case "timer", "sched":
			continue
		}
		if r.SGUS < r.BaseUS*0.4 {
			t.Errorf("%s: SuperGlue faster than base by >2.5x (%.3f vs %.3f); measurement broken?",
				r.Service, r.SGUS, r.BaseUS)
		}
	}
	var sb strings.Builder
	RenderFig6a(&sb, rows)
	if !strings.Contains(sb.String(), "Fig 6(a)") {
		t.Error("renderer missing header")
	}
}

func TestFig6bSmall(t *testing.T) {
	rows, err := Fig6b(20)
	if err != nil {
		t.Fatalf("Fig6b: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d; want 6", len(rows))
	}
	for _, r := range rows {
		if len(r.Mechanisms) < 2 {
			t.Errorf("%s: mechanism set %v too small", r.Service, r.Mechanisms)
		}
	}
	var sb strings.Builder
	RenderFig6b(&sb, rows)
	if !strings.Contains(sb.String(), "recovery overhead") {
		t.Error("renderer missing header")
	}
}

func TestFig6c(t *testing.T) {
	rows, err := Fig6c()
	if err != nil {
		t.Fatalf("Fig6c: %v", err)
	}
	for _, r := range rows {
		// The headline claim: declarative IDL is an order of magnitude
		// smaller than both the generated code and the hand-written stubs.
		if r.IDLLOC <= 0 || r.IDLLOC > 60 {
			t.Errorf("%s: IDL LOC = %d; want a small declarative spec", r.Service, r.IDLLOC)
		}
		if r.GeneratedLOC < 5*r.IDLLOC {
			t.Errorf("%s: generated %d LOC < 5× IDL %d LOC", r.Service, r.GeneratedLOC, r.IDLLOC)
		}
		if r.C3StubLOC < 3*r.IDLLOC {
			t.Errorf("%s: hand-written C³ stub %d LOC < 3× IDL %d LOC", r.Service, r.C3StubLOC, r.IDLLOC)
		}
	}
	var sb strings.Builder
	RenderFig6c(&sb, rows)
	if !strings.Contains(sb.String(), "LOC") {
		t.Error("renderer missing header")
	}
}

func TestTable2Small(t *testing.T) {
	results, err := Table2(20, 7, 2)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d; want 6", len(results))
	}
	var sb strings.Builder
	RenderTable2(&sb, results)
	out := sb.String()
	for _, svc := range Services() {
		if !strings.Contains(out, svc) {
			t.Errorf("rendered table missing %s", svc)
		}
	}
}

func TestFig7Small(t *testing.T) {
	rows, err := Fig7(Fig7Config{Requests: 400, Repeats: 2, Workers: 2, FaultEvery: 100})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d; want 5", len(rows))
	}
	for _, r := range rows {
		if r.MeanRPS <= 0 {
			t.Errorf("%s: non-positive throughput", r.Label)
		}
	}
	// Shape: the plain baseline beats the component substrate, which beats
	// (or matches) the recovery variants.
	if rows[0].MeanRPS < rows[1].MeanRPS {
		t.Errorf("baseline (%.0f) slower than composite (%.0f)", rows[0].MeanRPS, rows[1].MeanRPS)
	}
	var sb strings.Builder
	RenderFig7(&sb, rows)
	RenderFig7Timeline(&sb, rows)
	if !strings.Contains(sb.String(), "Fig 7") {
		t.Error("renderer missing header")
	}
}

func TestMechanisms(t *testing.T) {
	rows, err := Mechanisms()
	if err != nil {
		t.Fatalf("Mechanisms: %v", err)
	}
	byService := make(map[string]string)
	for _, r := range rows {
		byService[r.Service] = r.Mechanisms
	}
	if !strings.Contains(byService["event"], "G0") {
		t.Errorf("event mechanisms = %s; want G0", byService["event"])
	}
	if !strings.Contains(byService["mm"], "D0") {
		t.Errorf("mm mechanisms = %s; want D0", byService["mm"])
	}
	if strings.Contains(byService["lock"], "G0") {
		t.Errorf("lock mechanisms = %s; must not need G0", byService["lock"])
	}
	var sb strings.Builder
	RenderMechanisms(&sb, rows)
	if sb.Len() == 0 {
		t.Error("empty mechanisms rendering")
	}
}

package experiments

import (
	"fmt"
	"io"

	"superglue/internal/core"
	"superglue/internal/obs"
	"superglue/internal/pool"
	"superglue/internal/swifi"
)

// This file is the recovery-observability slice of the experiment suite:
// traced SWIFI campaigns whose per-mechanism recovery-latency breakdowns
// feed BENCH_superglue.json (`make bench-json`) and the EXPERIMENTS.md
// walkthrough.

// RecoveryBreakdown is one traced SWIFI campaign's per-mechanism summary.
type RecoveryBreakdown struct {
	// Service is the campaign target.
	Service string `json:"service"`
	// Mode is the recovery timing ("on-demand" or "eager").
	Mode string `json:"mode"`
	// Trials and Recovered restate the campaign's Table II cells the
	// breakdown belongs to.
	Trials    int `json:"trials"`
	Recovered int `json:"recovered"`
	// BucketBounds are the histogram buckets' inclusive upper bounds in
	// virtual-time units ("+Inf" last).
	BucketBounds []string `json:"bucket_bounds"`
	// Mechanisms carries one cell per paper mechanism (R0, T0, T1, D0, D1,
	// G0, G1, U0) — count, virtual-time totals, and latency histogram —
	// zero cells included so every column of the paper's taxonomy is
	// visible in the JSON.
	Mechanisms []obs.MechanismSnapshot `json:"mechanisms"`
}

// RecoveryBreakdowns runs a traced SWIFI campaign against every target and
// returns the per-mechanism breakdowns. With eager set, each service is
// additionally campaigned in eager-recovery mode, which exercises the T0
// trigger alongside the on-demand T1. The (mode, service) campaigns run
// concurrently on the pool — workers bounds both the campaign fan-out and
// each campaign's internal trial sharding — and the breakdowns come back
// in the fixed (mode, Table II service) order.
func RecoveryBreakdowns(trials int, seed int64, eager bool, workers int) ([]RecoveryBreakdown, error) {
	type plan struct {
		name string
		mode core.RecoveryMode
		svc  string
	}
	type modeCase struct {
		name string
		mode core.RecoveryMode
	}
	modes := []modeCase{{"on-demand", core.OnDemand}}
	if eager {
		modes = append(modes, modeCase{"eager", core.Eager})
	}
	var plans []plan
	for _, m := range modes {
		for _, svc := range swifi.Targets() {
			plans = append(plans, plan{name: m.name, mode: m.mode, svc: svc})
		}
	}
	out := make([]RecoveryBreakdown, len(plans))
	err := pool.Run(len(plans), workers, func(i int) error {
		p := plans[i]
		res, err := swifi.Run(swifi.Config{
			Service:  p.svc,
			Workload: swifi.Workloads()[p.svc],
			Iters:    5,
			Trials:   trials,
			Seed:     seed,
			Profile:  swifi.Profiles()[p.svc],
			Mode:     p.mode,
			Trace:    true,
			Workers:  workers,
		})
		if err != nil {
			return fmt.Errorf("recovery breakdown %s (%s): %w", p.svc, p.name, err)
		}
		out[i] = RecoveryBreakdown{
			Service:      p.svc,
			Mode:         p.name,
			Trials:       res.Injected,
			Recovered:    res.Recovered,
			BucketBounds: res.Recovery.BucketBounds,
			Mechanisms:   res.Recovery.Mechanisms,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderRecoveryBreakdown writes one campaign's per-mechanism table.
func RenderRecoveryBreakdown(w io.Writer, res *swifi.Result) {
	if res.Recovery == nil {
		return
	}
	fmt.Fprintf(w, "%s: per-mechanism recovery breakdown (%d trials, %d recovered)\n",
		res.Service, res.Injected, res.Recovered)
	fmt.Fprintf(w, "  %-4s %8s %8s %10s %8s  %s\n", "mech", "count", "steps", "total-vt", "max-vt", "latency histogram (vt<=bound:count)")
	for _, m := range res.Recovery.Mechanisms {
		fmt.Fprintf(w, "  %-4s %8d %8d %10d %8d  %s\n",
			m.Mechanism, m.Count, m.TotalSteps, m.TotalVT, m.MaxVT,
			histString(res.Recovery.BucketBounds, m.Hist))
	}
}

// histString renders the non-zero histogram cells compactly.
func histString(bounds []string, hist [obs.NumBuckets]uint64) string {
	s := ""
	for i, n := range hist {
		if n == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", bounds[i], n)
	}
	if s == "" {
		return "-"
	}
	return s
}

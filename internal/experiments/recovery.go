package experiments

import (
	"fmt"
	"io"

	"superglue/internal/core"
	"superglue/internal/obs"
	"superglue/internal/swifi"
)

// This file is the recovery-observability slice of the experiment suite:
// traced SWIFI campaigns whose per-mechanism recovery-latency breakdowns
// feed BENCH_superglue.json (`make bench-json`) and the EXPERIMENTS.md
// walkthrough.

// RecoveryBreakdown is one traced SWIFI campaign's per-mechanism summary.
type RecoveryBreakdown struct {
	// Service is the campaign target.
	Service string `json:"service"`
	// Mode is the recovery timing ("on-demand" or "eager").
	Mode string `json:"mode"`
	// Trials and Recovered restate the campaign's Table II cells the
	// breakdown belongs to.
	Trials    int `json:"trials"`
	Recovered int `json:"recovered"`
	// BucketBounds are the histogram buckets' inclusive upper bounds in
	// virtual-time units ("+Inf" last).
	BucketBounds []string `json:"bucket_bounds"`
	// Mechanisms carries one cell per paper mechanism (R0, T0, T1, D0, D1,
	// G0, G1, U0) — count, virtual-time totals, and latency histogram —
	// zero cells included so every column of the paper's taxonomy is
	// visible in the JSON.
	Mechanisms []obs.MechanismSnapshot `json:"mechanisms"`
}

// RecoveryBreakdowns runs a traced SWIFI campaign against every target and
// returns the per-mechanism breakdowns. With eager set, each service is
// additionally campaigned in eager-recovery mode, which exercises the T0
// trigger alongside the on-demand T1.
func RecoveryBreakdowns(trials int, seed int64, eager bool) ([]RecoveryBreakdown, error) {
	type modeCase struct {
		name string
		mode core.RecoveryMode
	}
	modes := []modeCase{{"on-demand", core.OnDemand}}
	if eager {
		modes = append(modes, modeCase{"eager", core.Eager})
	}
	var out []RecoveryBreakdown
	for _, m := range modes {
		for _, svc := range swifi.Targets() {
			res, err := swifi.Run(swifi.Config{
				Service:  svc,
				Workload: swifi.Workloads()[svc],
				Iters:    5,
				Trials:   trials,
				Seed:     seed,
				Profile:  swifi.Profiles()[svc],
				Mode:     m.mode,
				Trace:    true,
			})
			if err != nil {
				return nil, fmt.Errorf("recovery breakdown %s (%s): %w", svc, m.name, err)
			}
			out = append(out, RecoveryBreakdown{
				Service:      svc,
				Mode:         m.name,
				Trials:       res.Injected,
				Recovered:    res.Recovered,
				BucketBounds: res.Recovery.BucketBounds,
				Mechanisms:   res.Recovery.Mechanisms,
			})
		}
	}
	return out, nil
}

// RenderRecoveryBreakdown writes one campaign's per-mechanism table.
func RenderRecoveryBreakdown(w io.Writer, res *swifi.Result) {
	if res.Recovery == nil {
		return
	}
	fmt.Fprintf(w, "%s: per-mechanism recovery breakdown (%d trials, %d recovered)\n",
		res.Service, res.Injected, res.Recovered)
	fmt.Fprintf(w, "  %-4s %8s %8s %10s %8s  %s\n", "mech", "count", "steps", "total-vt", "max-vt", "latency histogram (vt<=bound:count)")
	for _, m := range res.Recovery.Mechanisms {
		fmt.Fprintf(w, "  %-4s %8d %8d %10d %8d  %s\n",
			m.Mechanism, m.Count, m.TotalSteps, m.TotalVT, m.MaxVT,
			histString(res.Recovery.BucketBounds, m.Hist))
	}
}

// histString renders the non-zero histogram cells compactly.
func histString(bounds []string, hist [obs.NumBuckets]uint64) string {
	s := ""
	for i, n := range hist {
		if n == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", bounds[i], n)
	}
	if s == "" {
		return "-"
	}
	return s
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/swifi"
	"superglue/internal/webserver"
)

// This file is the benchmark-trajectory harness: it runs the headline
// benchmarks (the bare invocation primitive, the six Fig. 6(a) tracking
// benchmarks, and the Fig. 7 web-server variants) through testing.Benchmark
// and serializes the measurements to BENCH_superglue.json, so successive
// commits leave a machine-readable perf trail (`make bench-json`).

// BenchResult is one benchmark measurement.
type BenchResult struct {
	// Name is the benchmark identifier, testing-style
	// (e.g. "KernelInvoke", "TrackingLock/superglue").
	Name string `json:"name"`
	// Iterations is the iteration count the harness settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp are the steady-state heap cost per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Extra carries benchmark-specific metrics (e.g. "req/s").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchReport is the top-level schema of BENCH_superglue.json.
type BenchReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU and GOMAXPROCS record the host parallelism the run had
	// available — without them a "no parallel speedup" result on a 1-CPU
	// host is indistinguishable from a scheduling regression.
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Timestamp  string `json:"timestamp"`
	Short      bool   `json:"short"`
	// Workers is the resolved SWIFI campaign parallelism (the -workers
	// flag, with 0 resolved to GOMAXPROCS like the campaign engine does).
	Workers int `json:"workers"`
	// CoresSweep lists the simulated core counts of the
	// WebServerThroughput/cores=N rows.
	CoresSweep []int         `json:"cores_sweep"`
	Results    []BenchResult `json:"results"`
	// Recovery embeds the traced SWIFI campaigns' per-mechanism
	// recovery-latency breakdowns (counts + virtual-time histograms per
	// R0/T0/T1/D0/D1/G0/G1/U0).
	Recovery []RecoveryBreakdown `json:"recovery_breakdown,omitempty"`
}

// KernelInvokeBench builds the minimal system of the bare-invocation
// benchmark (one event component) and performs n invocations of the
// trigger function on a simulated thread. start, if non-nil, runs right
// before the timed loop (pass b.ResetTimer so setup cost is excluded).
// The argument slice is hoisted out of the loop, so the steady-state
// invocation allocates nothing.
func KernelInvokeBench(n int, start func()) error {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		return err
	}
	comp, err := event.Register(sys)
	if err != nil {
		return err
	}
	k := sys.Kernel()
	var runErr error
	if _, err := k.CreateThread(nil, "bench", 10, func(t *kernel.Thread) {
		id, err := k.Invoke(t, comp, event.FnSplit, 1, 0, 0)
		if err != nil {
			runErr = err
			return
		}
		args := []kernel.Word{1, id}
		if start != nil {
			start()
		}
		for i := 0; i < n; i++ {
			if _, err := k.Invoke(t, comp, event.FnTrigger, args...); err != nil {
				runErr = err
				return
			}
		}
	}); err != nil {
		return err
	}
	if err := k.Run(); err != nil {
		return err
	}
	return runErr
}

// KernelInvokeCrossCoreBench is KernelInvokeBench on a two-core machine
// with the event component homed on core 1 while the benchmark thread
// lives on core 0: every invocation round-trips through the cross-core
// migration path (park, dispatch on the server's core, park, dispatch
// back), so the measurement is the full synchronous cross-core invocation
// cost rather than the same-core fast path.
func KernelInvokeCrossCoreBench(n int, start func()) error {
	sys, err := core.NewSystemWithCores(core.OnDemand, 2)
	if err != nil {
		return err
	}
	comp, err := event.Register(sys)
	if err != nil {
		return err
	}
	if err := sys.PlaceServer(comp, 1); err != nil {
		return err
	}
	k := sys.Kernel()
	var runErr error
	if _, err := k.CreateThread(nil, "bench", 10, func(t *kernel.Thread) {
		id, err := k.Invoke(t, comp, event.FnSplit, 1, 0, 0)
		if err != nil {
			runErr = err
			return
		}
		args := []kernel.Word{1, id}
		if start != nil {
			start()
		}
		for i := 0; i < n; i++ {
			if _, err := k.Invoke(t, comp, event.FnTrigger, args...); err != nil {
				runErr = err
				return
			}
		}
	}); err != nil {
		return err
	}
	if err := k.Run(); err != nil {
		return err
	}
	return runErr
}

// trackingServices are the six Fig. 6(a) services, with the display names
// the testing benchmarks use (BenchmarkTracking<Display>).
var trackingServices = []struct {
	service string
	display string
}{
	{"sched", "Sched"},
	{"mm", "MM"},
	{"ramfs", "FS"},
	{"lock", "Lock"},
	{"event", "Event"},
	{"timer", "Timer"},
}

// benchToResult converts a testing.BenchmarkResult.
func benchToResult(name string, r testing.BenchmarkResult) BenchResult {
	out := BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		out.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			out.Extra[k] = v
		}
	}
	return out
}

// RunBenchJSON runs the benchmark trajectory and returns the report.
// short trims the web-server request counts for CI smoke runs. workers
// bounds the parallelism of the traced SWIFI campaigns (the wall-clock
// benchmarks themselves stay serial: they are timing measurements and
// concurrent runs would contend for the cores being measured).
func RunBenchJSON(short bool, workers int) (*BenchReport, error) {
	resolvedWorkers := workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.GOMAXPROCS(0)
	}
	rep := &BenchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Short:      short,
		Workers:    resolvedWorkers,
	}
	var failed error
	bench := func(name string, fn func(b *testing.B)) {
		if failed != nil {
			return
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		rep.Results = append(rep.Results, benchToResult(name, r))
	}

	bench("KernelInvoke", func(b *testing.B) {
		if err := KernelInvokeBench(b.N, b.ResetTimer); err != nil {
			failed = fmt.Errorf("KernelInvoke: %w", err)
			b.SkipNow()
		}
	})

	bench("KernelInvokeCrossCore", func(b *testing.B) {
		if err := KernelInvokeCrossCoreBench(b.N, b.ResetTimer); err != nil {
			failed = fmt.Errorf("KernelInvokeCrossCore: %w", err)
			b.SkipNow()
		}
	})

	bench("StorageQuorumWrite", func(b *testing.B) {
		if err := StorageQuorumWriteBench(b.N, b.ResetTimer); err != nil {
			failed = fmt.Errorf("StorageQuorumWrite: %w", err)
			b.SkipNow()
		}
	})

	kinds := []struct {
		name string
		kind StubKind
	}{{"base", KindBase}, {"c3", KindC3}, {"superglue", KindSuperGlue}}
	for _, ts := range trackingServices {
		for _, k := range kinds {
			ts, k := ts, k
			name := fmt.Sprintf("Tracking%s/%s", ts.display, k.name)
			bench(name, func(b *testing.B) {
				if err := RunMicrobench(ts.service, k.kind, b.N); err != nil {
					failed = fmt.Errorf("%s: %w", name, err)
					b.SkipNow()
				}
			})
		}
	}

	requests := 20000
	if short {
		requests = 2000
	}
	webVariants := []struct {
		name       string
		variant    webserver.Variant
		faultEvery int
	}{
		{"baseline", webserver.VariantBaseline, 0},
		{"composite", webserver.VariantComposite, 0},
		{"c3", webserver.VariantC3, 0},
		{"superglue", webserver.VariantSuperGlue, 0},
		{"superglue-faults", webserver.VariantSuperGlue, requests/4 + 1},
	}
	for _, wv := range webVariants {
		if failed != nil {
			break
		}
		st, err := webserver.Run(webserver.Config{
			Variant:    wv.variant,
			Requests:   requests,
			Workers:    2,
			FaultEvery: wv.faultEvery,
		})
		if err != nil {
			failed = fmt.Errorf("WebServer/%s: %w", wv.name, err)
			break
		}
		if st.Errors > 0 {
			failed = fmt.Errorf("WebServer/%s: %d request errors", wv.name, st.Errors)
			break
		}
		rep.Results = append(rep.Results, BenchResult{
			Name:       "WebServer/" + wv.name,
			Iterations: requests,
			Extra:      map[string]float64{"req/s": st.Throughput},
		})
	}
	if failed != nil {
		return nil, failed
	}

	// Cores scaling: the SuperGlue web server at 1, 2, and 4 simulated
	// cores. Execution stays globally serialized (one simulated thread runs
	// at a time), so these rows measure the *cost* of core-affine placement
	// — cross-core migration parks on every server invocation — not
	// wall-clock parallelism; see EXPERIMENTS.md for the honest framing.
	rep.CoresSweep = []int{1, 2, 4}
	for _, nc := range rep.CoresSweep {
		if failed != nil {
			break
		}
		st, err := webserver.Run(webserver.Config{
			Variant:  webserver.VariantSuperGlue,
			Requests: requests,
			Workers:  2,
			Cores:    nc,
		})
		if err != nil {
			failed = fmt.Errorf("WebServerThroughput/cores=%d: %w", nc, err)
			break
		}
		if st.Errors > 0 {
			failed = fmt.Errorf("WebServerThroughput/cores=%d: %d request errors", nc, st.Errors)
			break
		}
		rep.Results = append(rep.Results, BenchResult{
			Name:       fmt.Sprintf("WebServerThroughput/cores=%d", nc),
			Iterations: requests,
			Extra: map[string]float64{
				"req/s":      st.Throughput,
				"migrations": float64(st.Migrations),
			},
		})
	}
	if failed != nil {
		return nil, failed
	}

	// Campaign throughput: the injection-path counterpart of the
	// invocation-path benchmarks. One legacy register-flip campaign
	// against the lock service, wall-clocked end to end (dry run,
	// planning, trial execution, classification), reported as trials/sec
	// so regressions in the campaign engine are caught like ns/op ones.
	campTrials := 400
	if short {
		campTrials = 80
	}
	campStart := time.Now()
	campRes, err := swifi.Run(swifi.Config{
		Service:  "lock",
		Workload: swifi.Workloads()["lock"],
		Iters:    3,
		Trials:   campTrials,
		Seed:     2026,
		Profile:  swifi.Profiles()["lock"],
		Workers:  workers,
	})
	if err != nil {
		return nil, fmt.Errorf("SwifiCampaign/lock: %w", err)
	}
	if campRes.Injected != campTrials {
		return nil, fmt.Errorf("SwifiCampaign/lock: %d of %d trials ran", campRes.Injected, campTrials)
	}
	elapsed := time.Since(campStart).Seconds()
	rep.Results = append(rep.Results, BenchResult{
		Name:       "SwifiCampaign/lock",
		Iterations: campTrials,
		Extra:      map[string]float64{"trials/s": float64(campTrials) / elapsed},
	})

	// Traced SWIFI campaigns: the recovery-latency breakdown per mechanism.
	// Short runs keep on-demand mode only; full runs add the eager-mode
	// campaigns, which exercise the T0 trigger.
	trials := 120
	if short {
		trials = 30
	}
	breakdown, err := RecoveryBreakdowns(trials, 2026, !short, workers)
	if err != nil {
		return nil, err
	}
	rep.Recovery = breakdown
	return rep, nil
}

// WriteBenchJSON runs the trajectory and writes the report to path.
func WriteBenchJSON(path string, short bool, workers int) (*BenchReport, error) {
	rep, err := RunBenchJSON(short, workers)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestRecoveryTimingShape asserts the §II-C schedulability argument: the
// first post-fault operation's recovery work is flat under on-demand
// recovery and proportional to the descriptor population under eager
// recovery.
func TestRecoveryTimingShape(t *testing.T) {
	rows, err := RecoveryTiming([]int{8, 128}, 40)
	if err != nil {
		t.Fatalf("RecoveryTiming: %v", err)
	}
	byKey := make(map[string]TimingRow)
	for _, r := range rows {
		byKey[r.Mode.String()+"/"+strconv.Itoa(r.Descriptors)] = r
	}
	// Walk steps are the deterministic signal (times are noisy): on-demand
	// replays one descriptor per fault regardless of population; eager
	// replays all of them.
	od8 := byKey["on-demand/8"]
	od128 := byKey["on-demand/128"]
	eg8 := byKey["eager/8"]
	eg128 := byKey["eager/128"]
	if od8.WalkSteps != od128.WalkSteps {
		t.Errorf("on-demand walk steps grew with population: %d vs %d", od8.WalkSteps, od128.WalkSteps)
	}
	if eg128.WalkSteps <= eg8.WalkSteps {
		t.Errorf("eager walk steps did not grow with population: %d vs %d", eg8.WalkSteps, eg128.WalkSteps)
	}
	if eg128.WalkSteps < 10*od128.WalkSteps {
		t.Errorf("eager (%d) should replay far more than on-demand (%d) at 128 descriptors",
			eg128.WalkSteps, od128.WalkSteps)
	}
	var sb strings.Builder
	RenderRecoveryTiming(&sb, rows)
	if !strings.Contains(sb.String(), "on-demand") || !strings.Contains(sb.String(), "eager") {
		t.Error("renderer missing modes")
	}
}

// TestRecoveryInterferenceShape asserts the schedulability claim with real
// priorities: the high-priority task's post-fault response time is flat in
// the descriptor population under on-demand recovery and grows under eager
// recovery.
func TestRecoveryInterferenceShape(t *testing.T) {
	rows, err := RecoveryInterference([]int{16, 256}, 40)
	if err != nil {
		t.Fatalf("RecoveryInterference: %v", err)
	}
	byKey := make(map[string]InterferenceRow)
	for _, r := range rows {
		byKey[r.Mode.String()+"/"+strconv.Itoa(r.Descriptors)] = r
	}
	od := byKey["on-demand/256"]
	eg16 := byKey["eager/16"]
	eg256 := byKey["eager/256"]
	if eg256.MeanLatencyUS < 3*od.MeanLatencyUS {
		t.Errorf("eager@256 (%.2fµs) should far exceed on-demand@256 (%.2fµs)",
			eg256.MeanLatencyUS, od.MeanLatencyUS)
	}
	if eg256.MeanLatencyUS < 2*eg16.MeanLatencyUS {
		t.Errorf("eager latency should grow with population: %.2f vs %.2f",
			eg16.MeanLatencyUS, eg256.MeanLatencyUS)
	}
	var sb strings.Builder
	RenderInterference(&sb, rows)
	if !strings.Contains(sb.String(), "interference") {
		t.Error("renderer missing header")
	}
}

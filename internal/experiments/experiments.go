// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (§V): the per-service micro-benchmarks
// of Fig. 6(a)/(b), the lines-of-code comparison of Fig. 6(c), the SWIFI
// campaign of Table II, and the web-server throughput comparison of Fig. 7.
// Each driver returns structured results plus a text renderer, and is
// invoked by the cmd/microbench, cmd/swifi, and cmd/webbench binaries and
// by the repository-level benchmarks.
package experiments

import (
	"math"
	"strings"
)

// meanStdev computes the sample mean and standard deviation of xs.
func meanStdev(xs []float64) (mean, stdev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// CountLOC counts non-blank, non-comment-only lines, the convention used
// for the paper's Fig. 6(c). It understands //-comments and /* */ blocks
// (shared by the IDL and Go sources being compared).
func CountLOC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if inBlock {
			idx := strings.Index(trimmed, "*/")
			if idx < 0 {
				continue
			}
			inBlock = false
			trimmed = strings.TrimSpace(trimmed[idx+2:])
		}
		// Strip inline /* ... */ blocks; an unterminated one opens a
		// multi-line block.
		for {
			start := strings.Index(trimmed, "/*")
			if start < 0 {
				break
			}
			end := strings.Index(trimmed[start:], "*/")
			if end < 0 {
				inBlock = true
				trimmed = strings.TrimSpace(trimmed[:start])
				break
			}
			trimmed = strings.TrimSpace(trimmed[:start] + trimmed[start+end+2:])
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		n++
	}
	return n
}

// Services lists the evaluation services in the paper's presentation order.
func Services() []string {
	return []string{"sched", "mm", "ramfs", "lock", "event", "timer"}
}

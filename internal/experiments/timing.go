package experiments

import (
	"fmt"
	"io"
	"time"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

// TimingRow is one cell of the eager-vs-on-demand recovery ablation: the
// latency of the first post-fault operation as the number of other tracked
// descriptors grows.
type TimingRow struct {
	Mode        core.RecoveryMode
	Descriptors int
	FirstOpUS   float64
	Stdev       float64
	WalkSteps   uint64
}

// RecoveryTiming reproduces the timing argument of §II-C / C³ (RTSS 2013):
// *eager* recovery rebuilds every descriptor at fault time, so the first
// thread to touch the failed component pays for all of them — interference
// proportional to the component's descriptor population; *on-demand* (T1)
// recovery rebuilds only the accessed descriptor at the accessing thread's
// priority, so the first operation's latency stays flat.
//
// The experiment tracks descCounts lock descriptors, faults the component,
// and times the first post-fault operation on a single descriptor, trials
// times per configuration.
func RecoveryTiming(descCounts []int, trials int) ([]TimingRow, error) {
	if len(descCounts) == 0 {
		descCounts = []int{8, 64, 256}
	}
	if trials <= 0 {
		trials = 100
	}
	var rows []TimingRow
	for _, mode := range []core.RecoveryMode{core.OnDemand, core.Eager} {
		for _, n := range descCounts {
			row, err := timeFirstOp(mode, n, trials)
			if err != nil {
				return nil, fmt.Errorf("recovery timing %v/%d: %w", mode, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func timeFirstOp(mode core.RecoveryMode, descs, trials int) (TimingRow, error) {
	sys, err := core.NewSystem(mode)
	if err != nil {
		return TimingRow{}, err
	}
	comp, err := lock.Register(sys)
	if err != nil {
		return TimingRow{}, err
	}
	cl, err := sys.NewClient("timing-app")
	if err != nil {
		return TimingRow{}, err
	}
	locks, err := lock.NewClient(cl, comp)
	if err != nil {
		return TimingRow{}, err
	}
	k := sys.Kernel()
	samples := make([]float64, 0, trials)
	var runErr error
	if _, err := k.CreateThread(nil, "bench", 10, func(t *kernel.Thread) {
		ids := make([]kernel.Word, descs)
		for i := range ids {
			id, err := locks.Alloc(t)
			if err != nil {
				runErr = err
				return
			}
			ids[i] = id
		}
		hot := ids[0]
		for i := 0; i < trials; i++ {
			if err := k.FailComponent(comp); err != nil {
				runErr = err
				return
			}
			// The first post-fault access: under eager recovery it pays the
			// µ-reboot plus recovery of all descriptors; under on-demand it
			// pays the µ-reboot plus recovery of just this one.
			t0 := time.Now()
			if err := locks.Take(t, hot); err != nil {
				runErr = err
				return
			}
			samples = append(samples, float64(time.Since(t0).Nanoseconds())/1000.0)
			if err := locks.Release(t, hot); err != nil {
				runErr = err
				return
			}
		}
	}); err != nil {
		return TimingRow{}, err
	}
	if err := k.Run(); err != nil {
		return TimingRow{}, err
	}
	if runErr != nil {
		return TimingRow{}, runErr
	}
	mean, stdev := meanStdev(samples)
	return TimingRow{
		Mode:        mode,
		Descriptors: descs,
		FirstOpUS:   mean,
		Stdev:       stdev,
		WalkSteps:   locks.Stub().Metrics().WalkSteps,
	}, nil
}

// RenderRecoveryTiming writes the ablation table.
func RenderRecoveryTiming(w io.Writer, rows []TimingRow) {
	fmt.Fprintf(w, "Ablation: recovery timing — first post-fault operation latency (µs)\n")
	fmt.Fprintf(w, "(on-demand recovery stays flat as the descriptor population grows;\n")
	fmt.Fprintf(w, " eager recovery pays for every descriptor at fault time)\n")
	fmt.Fprintf(w, "%-10s %12s %18s %12s\n", "mode", "descriptors", "first op (µs ±σ)", "walk steps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %11.3f ±%5.3f %12d\n", r.Mode, r.Descriptors, r.FirstOpUS, r.Stdev, r.WalkSteps)
	}
}

package docgen

import (
	"strings"
	"testing"

	"superglue/internal/idl"
	"superglue/internal/services/builtin"
)

// TestGenerateDeterministic re-renders every built-in specification and
// demands byte-identical output — the property the committed-docs drift
// check relies on.
func TestGenerateDeterministic(t *testing.T) {
	for _, b := range builtin.Sources() {
		spec, err := idl.Parse(b.Service, b.IDL)
		if err != nil {
			t.Fatalf("parse %s: %v", b.Service, err)
		}
		first, err := Generate(spec)
		if err != nil {
			t.Fatalf("generate %s: %v", b.Service, err)
		}
		for i := 0; i < 3; i++ {
			again, err := Generate(spec)
			if err != nil {
				t.Fatalf("generate %s (round %d): %v", b.Service, i, err)
			}
			if again != first {
				t.Fatalf("%s: nondeterministic document (round %d differs)", b.Service, i)
			}
		}
	}
}

// TestGenerateSections checks every document carries the full reference
// structure, and spot-checks that the mechanism-coverage table reflects each
// service's descriptor-resource model.
func TestGenerateSections(t *testing.T) {
	sections := []string{
		Header,
		"## Descriptor-resource model",
		"## Recovery-mechanism coverage",
		"## Interface functions",
		"## Descriptor state machine",
		"```mermaid",
		"stateDiagram-v2",
		"## Recovery walks",
		"## Normalized specification",
	}
	// required / not-required spot checks against the §III-C derivation:
	// mechanism rows the named service must mark ✓ (or –).
	required := map[string][]string{
		"lock":  {"| R0 | ✓ |", "| T0 | ✓ |", "| T1 | ✓ |", "| G1 | – |"},
		"mm":    {"| D0 | ✓ |", "| D1 | ✓ |", "| G0 | – |"},
		"ramfs": {"| G1 | ✓ |", "| D0 | – |"},
		"sched": {"| D0 | – |", "| G0 | – |"},
		"event": {"| D1 | ✓ |", "| G0 | ✓ |", "| U0 | ✓ |"},
		"timer": {"| T0 | ✓ |"},
	}
	for _, b := range builtin.Sources() {
		spec, err := idl.Parse(b.Service, b.IDL)
		if err != nil {
			t.Fatalf("parse %s: %v", b.Service, err)
		}
		doc, err := Generate(spec)
		if err != nil {
			t.Fatalf("generate %s: %v", b.Service, err)
		}
		for _, want := range sections {
			if !strings.Contains(doc, want) {
				t.Errorf("%s: document missing %q", b.Service, want)
			}
		}
		for _, want := range required[b.Service] {
			if !strings.Contains(doc, want) {
				t.Errorf("%s: mechanism table missing %q", b.Service, want)
			}
		}
		// Every interface function shows up in the functions table.
		for _, f := range spec.Funcs {
			if !strings.Contains(doc, "| `"+f.Name+"` |") {
				t.Errorf("%s: functions table missing %s", b.Service, f.Name)
			}
		}
	}
}

// TestCommittedDocsUpToDate is the docs analogue of the generated-stub drift
// test: the committed docs/services files must match what the generator
// produces from the embedded specifications.
func TestCommittedDocsUpToDate(t *testing.T) {
	drifts, err := Check("../../docs/services")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drifts {
		t.Error(d)
	}
}

// Package ramfs implements the in-memory filesystem (RamFS) of §II-C. Files
// live in component memory; their contents are redundantly stored in the
// storage component as ⟨id, offset, length, data⟩ slices, where the id is a
// hash of the file's path and the data is a zero-copy buffer reference
// (mechanism G1). Paths and bulk data cross the interface as cbuf
// references, matching COMPOSITE's zero-copy buffer subsystem.
//
// After a µ-reboot, a replayed fs_open restores the file's contents from
// the storage component, and the sm_restore'd fs_lseek pushes the tracked
// offset back — the paper's "open and lseek" recovery walk.
package ramfs

import (
	_ "embed"
	"errors"
	"fmt"
	"hash/fnv"

	"superglue/internal/cbuf"
	"superglue/internal/core"
	"superglue/internal/fault"
	"superglue/internal/idl"
	"superglue/internal/kernel"
	"superglue/internal/storage"
)

//go:embed ramfs.sg
var idlSrc string

// Interface function names.
const (
	FnOpen   = "fs_open"
	FnRead   = "fs_read"
	FnWrite  = "fs_write"
	FnLseek  = "fs_lseek"
	FnClose  = "fs_close"
	FnUnlink = "fs_unlink"
)

// Spec parses the component's IDL specification.
func Spec() (*core.Spec, error) {
	return idl.Parse("ramfs", idlSrc)
}

// IDLSource returns the raw IDL text.
func IDLSource() string { return idlSrc }

// Register boots the RamFS into a system. The server depends on the
// system's cbuf manager and storage component.
func Register(sys *core.System) (kernel.ComponentID, error) {
	spec, err := Spec()
	if err != nil {
		return 0, err
	}
	comp, err := sys.RegisterServer(spec, func() kernel.Service { return &Server{sys: sys} })
	if err != nil {
		return 0, err
	}
	// Watchdog budget: file reads/writes move bulk data, the longest
	// legitimate invocations in the system.
	if err := sys.Kernel().SetInvokeBudget(comp, 1000); err != nil {
		return 0, err
	}
	return comp, nil
}

// file is one in-memory file.
type file struct {
	id      kernel.Word // hash of the path: the storage-component resource id
	path    string
	content []byte
}

// openFile is one file descriptor's server-side state.
type openFile struct {
	f      *file
	offset int
}

// Server is the RamFS implementation.
type Server struct {
	sys    *core.System
	k      *kernel.Kernel
	self   kernel.ComponentID
	class  storage.Class
	nextFD kernel.Word
	files  map[string]*file
	fds    map[kernel.Word]*openFile
}

var _ kernel.Service = (*Server)(nil)

// Name implements kernel.Service.
func (s *Server) Name() string { return "ramfs" }

// Init implements kernel.Service.
func (s *Server) Init(bc *kernel.BootContext) error {
	s.k = bc.Kernel
	s.self = bc.Self
	s.files = make(map[string]*file)
	s.fds = make(map[kernel.Word]*openFile)
	s.nextFD = kernel.Word(bc.Epoch) << 20
	if class, ok := s.sys.Class(bc.Self); ok {
		s.class = class
	}
	return nil
}

// Files returns the number of files (reflection/testing).
func (s *Server) Files() int { return len(s.files) }

// OpenFDs returns the number of open descriptors (reflection/testing).
func (s *Server) OpenFDs() int { return len(s.fds) }

// PathID returns the storage resource id for a path (the paper's "hash on
// its path").
func PathID(path string) kernel.Word {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	return kernel.Word(h.Sum64() & 0x7fff_ffff_ffff_ffff)
}

// Dispatch implements kernel.Service.
func (s *Server) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("ramfs: %s needs %d args, got %d", fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case FnOpen:
		if err := need(3); err != nil {
			return 0, err
		}
		return s.open(args[1], int(args[2]))
	case FnRead:
		if err := need(4); err != nil {
			return 0, err
		}
		return s.read(args[1], cbuf.ID(args[2]), int(args[3]))
	case FnWrite:
		if err := need(4); err != nil {
			return 0, err
		}
		return s.write(t, args[1], cbuf.ID(args[2]), int(args[3]))
	case FnLseek:
		if err := need(2); err != nil {
			return 0, err
		}
		of, ok := s.fds[args[0]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		if args[1] < 0 {
			return 0, fmt.Errorf("ramfs: lseek to negative offset %d", args[1])
		}
		of.offset = int(args[1])
		return kernel.Word(of.offset), nil
	case FnClose:
		if err := need(2); err != nil {
			return 0, err
		}
		if _, ok := s.fds[args[1]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		delete(s.fds, args[1])
		return 0, nil
	case FnUnlink:
		if err := need(2); err != nil {
			return 0, err
		}
		return s.unlink(t, args[1])
	default:
		return 0, kernel.DispatchError("ramfs", fn)
	}
}

// open resolves the path named by a cbuf reference and returns a fresh fd.
// A file unknown to this (possibly just µ-rebooted) instance is restored
// from the storage component if it has saved data (G1), created empty
// otherwise.
func (s *Server) open(pathBuf kernel.Word, pathLen int) (kernel.Word, error) {
	raw, err := s.sys.Cbufs().Read(cbuf.ID(pathBuf), cbuf.ComponentID(s.self), 0, pathLen)
	if err != nil {
		return 0, fmt.Errorf("ramfs: reading path buffer: %w", err)
	}
	path := string(raw)
	f, ok := s.files[path]
	if !ok {
		f = &file{id: PathID(path), path: path}
		// G1: a file that survived a fault has its contents in the storage
		// component; restore them on first access.
		if s.sys.Store().HasData(s.class, f.id) {
			content, rerr := s.sys.Store().ReadAll(s.class, f.id)
			if rerr != nil {
				if errors.Is(rerr, storage.ErrCorrupted) {
					// Fail stop: rebuilding the file from a corrupted
					// redundant copy would serve silently wrong data. Fault
					// ourselves with the storage-corruption classification;
					// the interface declares it unrecoverable
					// (sm_fault(storage_corruption, degrade)), so clients
					// degrade instead of µ-reboot-looping into the same
					// corrupted extent.
					return 0, s.k.FaultNow(s.self, fault.KindStorageCorruption, fault.SevCritical)
				}
				return 0, fmt.Errorf("ramfs: restoring %q from storage: %w", path, rerr)
			}
			f.content = content
		}
		s.files[path] = f
	}
	s.nextFD++
	s.fds[s.nextFD] = &openFile{f: f}
	return s.nextFD, nil
}

// read copies up to n bytes from the file at the descriptor's offset into
// the caller's (write-delegated) buffer, advancing the offset. Returns the
// number of bytes read.
func (s *Server) read(fd kernel.Word, buf cbuf.ID, n int) (kernel.Word, error) {
	of, ok := s.fds[fd]
	if !ok {
		return 0, kernel.ErrInvalidDescriptor
	}
	if n < 0 {
		return 0, fmt.Errorf("ramfs: negative read length %d", n)
	}
	avail := len(of.f.content) - of.offset
	if avail <= 0 {
		return 0, nil
	}
	if n > avail {
		n = avail
	}
	if err := s.sys.Cbufs().Write(buf, cbuf.ComponentID(s.self), 0, of.f.content[of.offset:of.offset+n]); err != nil {
		return 0, fmt.Errorf("ramfs: writing result buffer: %w", err)
	}
	of.offset += n
	return kernel.Word(n), nil
}

// write appends/overwrites n bytes from the caller's buffer at the
// descriptor's offset, saving the extent redundantly in the storage
// component within the same critical region (G1; §III-C notes the storage
// interaction must be atomic with the RamFS update).
func (s *Server) write(t *kernel.Thread, fd kernel.Word, buf cbuf.ID, n int) (kernel.Word, error) {
	of, ok := s.fds[fd]
	if !ok {
		return 0, kernel.ErrInvalidDescriptor
	}
	data, err := s.sys.Cbufs().Read(buf, cbuf.ComponentID(s.self), 0, n)
	if err != nil {
		return 0, fmt.Errorf("ramfs: reading source buffer: %w", err)
	}
	f := of.f
	if end := of.offset + n; end > len(f.content) {
		f.content = append(f.content, make([]byte, end-len(f.content))...)
	}
	copy(f.content[of.offset:], data)
	// Redundant save: the storage component retains the zero-copy buffer
	// reference for post-reboot restoration.
	if _, err := s.k.Invoke(t, s.sys.StorageComp(), storage.FnSaveSlice,
		kernel.Word(s.class), f.id, kernel.Word(of.offset), kernel.Word(buf), kernel.Word(n)); err != nil {
		return 0, fmt.Errorf("ramfs: saving extent to storage: %w", err)
	}
	of.offset += n
	return kernel.Word(n), nil
}

// unlink removes the file behind fd: the name disappears, the descriptor is
// closed, and — because the resource itself is gone — its redundant slices
// are dropped from the storage component, so recovery cannot resurrect it.
func (s *Server) unlink(t *kernel.Thread, fd kernel.Word) (kernel.Word, error) {
	of, ok := s.fds[fd]
	if !ok {
		return 0, kernel.ErrInvalidDescriptor
	}
	delete(s.fds, fd)
	delete(s.files, of.f.path)
	if _, err := s.k.Invoke(t, s.sys.StorageComp(), storage.FnDrop,
		kernel.Word(s.class), of.f.id); err != nil {
		return 0, fmt.Errorf("ramfs: dropping storage slices for %q: %w", of.f.path, err)
	}
	return 0, nil
}

// Client is the typed client API for the RamFS, managing the zero-copy
// buffers that carry paths and data across the interface.
type Client struct {
	stub *core.ClientStub
	cm   *cbuf.Manager
	self kernel.Word
	comp kernel.ComponentID // the RamFS component (for read delegation)
	// pathBufs retains one buffer per opened path: the tracked pathbuf
	// reference must stay valid for recovery replay while fds are open.
	pathBufs map[string]cbuf.ID
	// readBuf is the reusable, server-delegated result buffer (grown on
	// demand), matching the cbuf discipline of reusing transfer buffers.
	readBuf     cbuf.ID
	readBufSize int

	// Per-function bound calls (core.BoundCall): the dispatch record is
	// resolved once here, so the per-call path pays no name lookup.
	open, write, read, lseek, close, unlink *core.BoundCall
}

// NewClient binds a client component to the RamFS.
func NewClient(cl *core.Client, server kernel.ComponentID) (*Client, error) {
	stub, err := cl.Stub(server)
	if err != nil {
		return nil, err
	}
	c := &Client{
		stub:     stub,
		cm:       cl.System().Cbufs(),
		self:     kernel.Word(cl.ID()),
		comp:     server,
		pathBufs: make(map[string]cbuf.ID),
	}
	for _, b := range []struct {
		fn  string
		dst **core.BoundCall
	}{{FnOpen, &c.open}, {FnWrite, &c.write}, {FnRead, &c.read},
		{FnLseek, &c.lseek}, {FnClose, &c.close}, {FnUnlink, &c.unlink}} {
		if *b.dst, err = stub.Bind(b.fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stub exposes the underlying stub.
func (c *Client) Stub() *core.ClientStub { return c.stub }

// Open opens (creating if necessary) the file at path.
func (c *Client) Open(t *kernel.Thread, path string) (kernel.Word, error) {
	buf, ok := c.pathBufs[path]
	if !ok {
		var err error
		buf, err = c.cm.Alloc(cbuf.ComponentID(c.self), len(path))
		if err != nil {
			return 0, fmt.Errorf("ramfs client: allocating path buffer: %w", err)
		}
		if err := c.cm.Write(buf, cbuf.ComponentID(c.self), 0, []byte(path)); err != nil {
			return 0, fmt.Errorf("ramfs client: writing path buffer: %w", err)
		}
		if err := c.cm.Map(buf, cbuf.ComponentID(c.comp)); err != nil {
			return 0, fmt.Errorf("ramfs client: mapping path buffer to server: %w", err)
		}
		c.pathBufs[path] = buf
	}
	return c.open.Call(t, c.self, kernel.Word(buf), kernel.Word(len(path)))
}

// Write writes data at the descriptor's offset. Each write uses a fresh
// retained buffer: the storage component keeps the reference for recovery,
// so the buffer must not be reused (the producer-retention discipline of
// the cbuf subsystem).
func (c *Client) Write(t *kernel.Thread, fd kernel.Word, data []byte) (int, error) {
	if len(data) == 0 {
		return 0, nil
	}
	buf, err := c.cm.Alloc(cbuf.ComponentID(c.self), len(data))
	if err != nil {
		return 0, fmt.Errorf("ramfs client: allocating data buffer: %w", err)
	}
	if err := c.cm.Write(buf, cbuf.ComponentID(c.self), 0, data); err != nil {
		return 0, fmt.Errorf("ramfs client: filling data buffer: %w", err)
	}
	if err := c.cm.Map(buf, cbuf.ComponentID(c.comp)); err != nil {
		return 0, fmt.Errorf("ramfs client: mapping data buffer to server: %w", err)
	}
	n, err := c.write.Call(t, c.self, fd, kernel.Word(buf), kernel.Word(len(data)))
	return int(n), err
}

// Read reads up to n bytes from the descriptor's offset, through a reused
// server-delegated result buffer.
func (c *Client) Read(t *kernel.Thread, fd kernel.Word, n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	if n > c.readBufSize {
		if c.readBufSize > 0 {
			if err := c.cm.Free(c.readBuf, cbuf.ComponentID(c.self)); err != nil {
				return nil, fmt.Errorf("ramfs client: releasing read buffer: %w", err)
			}
		}
		buf, err := c.cm.Alloc(cbuf.ComponentID(c.self), n)
		if err != nil {
			return nil, fmt.Errorf("ramfs client: allocating read buffer: %w", err)
		}
		if err := c.cm.Delegate(buf, cbuf.ComponentID(c.self), cbuf.ComponentID(c.comp)); err != nil {
			return nil, fmt.Errorf("ramfs client: delegating read buffer: %w", err)
		}
		c.readBuf, c.readBufSize = buf, n
	}
	got, err := c.read.Call(t, c.self, fd, kernel.Word(c.readBuf), kernel.Word(n))
	if err != nil {
		return nil, err
	}
	return c.cm.Read(c.readBuf, cbuf.ComponentID(c.self), 0, int(got))
}

// Lseek sets the descriptor's absolute offset.
func (c *Client) Lseek(t *kernel.Thread, fd kernel.Word, offset int) (int, error) {
	v, err := c.lseek.Call(t, fd, kernel.Word(offset))
	return int(v), err
}

// Close closes the descriptor.
func (c *Client) Close(t *kernel.Thread, fd kernel.Word) error {
	_, err := c.close.Call(t, c.self, fd)
	return err
}

// Unlink removes the file behind fd (closing the descriptor) and drops its
// redundant storage, so a later µ-reboot cannot resurrect it.
func (c *Client) Unlink(t *kernel.Thread, fd kernel.Word) error {
	_, err := c.unlink.Call(t, c.self, fd)
	return err
}

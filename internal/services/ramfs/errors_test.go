package ramfs

import (
	"errors"
	"testing"

	"superglue/internal/kernel"
)

func TestDispatchArityAndUnknowns(t *testing.T) {
	r := newRig(t)
	k := r.sys.Kernel()
	r.run(t, func(th *kernel.Thread) {
		for _, tc := range []struct {
			fn   string
			args []kernel.Word
		}{
			{FnOpen, []kernel.Word{1, 2}},
			{FnRead, []kernel.Word{1, 2, 3}},
			{FnWrite, []kernel.Word{1, 2, 3}},
			{FnLseek, []kernel.Word{1}},
			{FnClose, []kernel.Word{1}},
			{FnUnlink, []kernel.Word{1}},
		} {
			if _, err := k.Invoke(th, r.comp, tc.fn, tc.args...); err == nil {
				t.Errorf("%s with %d args accepted", tc.fn, len(tc.args))
			}
		}
		if _, err := k.Invoke(th, r.comp, "fs_bogus"); !errors.Is(err, kernel.ErrNoSuchFunction) {
			t.Errorf("bogus fn err = %v", err)
		}
		for _, fn := range []string{FnRead, FnWrite} {
			if _, err := k.Invoke(th, r.comp, fn, 1, 999, 0, 1); !errors.Is(err, kernel.ErrInvalidDescriptor) {
				t.Errorf("%s on unknown fd err = %v; want EINVAL", fn, err)
			}
		}
		if _, err := k.Invoke(th, r.comp, FnLseek, 999, 0); !errors.Is(err, kernel.ErrInvalidDescriptor) {
			t.Errorf("lseek unknown fd err = %v; want EINVAL", err)
		}
		// Open with a dangling path buffer fails cleanly.
		if _, err := k.Invoke(th, r.comp, FnOpen, 1, 424242, 4); err == nil {
			t.Error("open with dangling path buffer accepted")
		}
	})
}

func TestNegativeArgumentsRejected(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/x")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if _, err := r.c.Lseek(th, fd, -1); err == nil {
			t.Error("negative lseek accepted")
		}
		k := r.sys.Kernel()
		if _, err := k.Invoke(th, r.comp, FnRead, 1, fd, 0, -4); err == nil {
			t.Error("negative read length accepted")
		}
	})
}

func TestZeroLengthOps(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/zero")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if n, err := r.c.Write(th, fd, nil); err != nil || n != 0 {
			t.Errorf("zero write = (%d, %v)", n, err)
		}
		if got, err := r.c.Read(th, fd, 0); err != nil || got != nil {
			t.Errorf("zero read = (%q, %v)", got, err)
		}
	})
}

func TestWorkloadMetadata(t *testing.T) {
	w := NewWorkload(2)
	if w.Name() != "ramfs" || w.Target() != "ramfs" {
		t.Errorf("metadata = %s/%s", w.Name(), w.Target())
	}
	if err := w.Check(); err == nil {
		t.Error("Check on unrun workload succeeded")
	}
}

package ramfs

import (
	"errors"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/workload"
)

// Workload is the FS benchmark of §V-B: "A file is opened, a byte is
// written to it, read from it, and then it is closed." Each round verifies
// the byte read back.
type Workload struct {
	iters  int
	rounds int
	runErr []error
}

var _ workload.Workload = (*Workload)(nil)

// NewWorkload builds a RamFS workload running iters open/write/read/close
// rounds.
func NewWorkload(iters int) workload.Workload {
	return &Workload{iters: iters}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "ramfs" }

// Target implements workload.Workload.
func (w *Workload) Target() string { return "ramfs" }

// Build implements workload.Workload.
func (w *Workload) Build(sys *core.System) (kernel.ComponentID, error) {
	comp, err := Register(sys)
	if err != nil {
		return 0, err
	}
	cl, err := sys.NewClient("fs-app")
	if err != nil {
		return 0, err
	}
	c, err := NewClient(cl, comp)
	if err != nil {
		return 0, err
	}
	if _, err := sys.Kernel().CreateThread(nil, "fs-worker", 10, func(t *kernel.Thread) {
		for i := 0; i < w.iters; i++ {
			fail := func(err error) { w.runErr = append(w.runErr, err) }
			fd, err := c.Open(t, "/tmp/bench.dat")
			if err != nil {
				fail(fmt.Errorf("open %d: %w", i, err))
				return
			}
			b := byte('a' + i%26)
			if _, err := c.Lseek(t, fd, i); err != nil {
				fail(fmt.Errorf("lseek-for-write %d: %w", i, err))
				return
			}
			if _, err := c.Write(t, fd, []byte{b}); err != nil {
				fail(fmt.Errorf("write %d: %w", i, err))
				return
			}
			if _, err := c.Lseek(t, fd, i); err != nil {
				fail(fmt.Errorf("lseek %d: %w", i, err))
				return
			}
			got, err := c.Read(t, fd, 1)
			if err != nil {
				fail(fmt.Errorf("read %d: %w", i, err))
				return
			}
			if len(got) != 1 || got[0] != b {
				fail(fmt.Errorf("round %d read %q; want %q", i, got, string(b)))
				return
			}
			if err := c.Close(t, fd); err != nil {
				fail(fmt.Errorf("close %d: %w", i, err))
				return
			}
			w.rounds++
		}
	}); err != nil {
		return 0, err
	}
	return comp, nil
}

// Check implements workload.Workload.
func (w *Workload) Check() error {
	if len(w.runErr) > 0 {
		return fmt.Errorf("ramfs workload errors: %w", errors.Join(w.runErr...))
	}
	if w.rounds != w.iters {
		return fmt.Errorf("ramfs workload incomplete: %d/%d rounds", w.rounds, w.iters)
	}
	return nil
}

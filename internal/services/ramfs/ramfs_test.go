package ramfs

import (
	"bytes"
	"errors"
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

type rig struct {
	sys  *core.System
	comp kernel.ComponentID
	c    *Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	comp, err := Register(sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	cl, err := sys.NewClient("app")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c, err := NewClient(cl, comp)
	if err != nil {
		t.Fatalf("NewClient(ramfs): %v", err)
	}
	return &rig{sys: sys, comp: comp, c: c}
}

func (r *rig) run(t *testing.T, body func(th *kernel.Thread)) {
	t.Helper()
	if _, err := r.sys.Kernel().CreateThread(nil, "main", 10, body); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := r.sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSpecMechanisms(t *testing.T) {
	spec, err := Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	for _, m := range []core.Mechanism{core.MechR0, core.MechT1, core.MechG1} {
		if !spec.HasMechanism(m) {
			t.Errorf("mechanism %v missing; got %v", m, spec.Mechanisms())
		}
	}
	if spec.HasMechanism(core.MechT0) || spec.HasMechanism(core.MechD0) {
		t.Errorf("unexpected mechanisms: %v", spec.Mechanisms())
	}
}

func TestOpenWriteReadClose(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/a.txt")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if n, err := r.c.Write(th, fd, []byte("hello")); err != nil || n != 5 {
			t.Errorf("Write = (%d, %v); want (5, nil)", n, err)
			return
		}
		if off, err := r.c.Lseek(th, fd, 0); err != nil || off != 0 {
			t.Errorf("Lseek = (%d, %v); want (0, nil)", off, err)
			return
		}
		got, err := r.c.Read(th, fd, 5)
		if err != nil || !bytes.Equal(got, []byte("hello")) {
			t.Errorf("Read = (%q, %v); want hello", got, err)
		}
		if err := r.c.Close(th, fd); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
}

func TestOffsetAdvancesAcrossReadsAndWrites(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/b.txt")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if _, err := r.c.Write(th, fd, []byte("ab")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		if _, err := r.c.Write(th, fd, []byte("cd")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		if _, err := r.c.Lseek(th, fd, 1); err != nil {
			t.Errorf("Lseek: %v", err)
			return
		}
		got, err := r.c.Read(th, fd, 2)
		if err != nil || string(got) != "bc" {
			t.Errorf("Read = (%q, %v); want bc", got, err)
		}
		got, err = r.c.Read(th, fd, 10)
		if err != nil || string(got) != "d" {
			t.Errorf("Read = (%q, %v); want d (EOF-limited)", got, err)
		}
	})
}

func TestTwoFDsSameFile(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd1, err := r.c.Open(th, "/c.txt")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		fd2, err := r.c.Open(th, "/c.txt")
		if err != nil {
			t.Errorf("Open 2: %v", err)
			return
		}
		if fd1 == fd2 {
			t.Error("same fd for two opens")
		}
		if _, err := r.c.Write(th, fd1, []byte("xy")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		got, err := r.c.Read(th, fd2, 2)
		if err != nil || string(got) != "xy" {
			t.Errorf("Read via fd2 = (%q, %v); want xy (shared file, independent offsets)", got, err)
		}
	})
}

func TestReadEmptyFile(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/empty")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		got, err := r.c.Read(th, fd, 4)
		if err != nil || len(got) != 0 {
			t.Errorf("Read = (%q, %v); want empty", got, err)
		}
	})
}

// TestRecoveryRestoresContentAndOffset is the G1 path end to end: write,
// fault, then read back. The µ-rebooted server restores contents from the
// storage component, and the stub's "open and lseek" walk restores the
// descriptor's offset.
func TestRecoveryRestoresContentAndOffset(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/data.bin")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if _, err := r.c.Write(th, fd, []byte("abcdef")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		if _, err := r.c.Lseek(th, fd, 2); err != nil {
			t.Errorf("Lseek: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// The next read triggers µ-reboot + recovery; content must come
		// back from storage, offset from tracked descriptor data.
		got, err := r.c.Read(th, fd, 3)
		if err != nil || string(got) != "cde" {
			t.Errorf("Read after fault = (%q, %v); want cde", got, err)
		}
		m := r.c.Stub().Metrics()
		if m.Recoveries == 0 || m.WalkSteps < 2 {
			t.Errorf("metrics = %+v; want a recovery with an open+lseek walk", m)
		}
	})
}

// TestRecoveryWithOverwrites checks newest-wins extent reassembly.
func TestRecoveryWithOverwrites(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/ow.bin")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if _, err := r.c.Write(th, fd, []byte("aaaaaa")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		if _, err := r.c.Lseek(th, fd, 2); err != nil {
			t.Errorf("Lseek: %v", err)
			return
		}
		if _, err := r.c.Write(th, fd, []byte("zz")); err != nil {
			t.Errorf("Overwrite: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := r.c.Lseek(th, fd, 0); err != nil {
			t.Errorf("Lseek after fault: %v", err)
			return
		}
		got, err := r.c.Read(th, fd, 6)
		if err != nil || string(got) != "aazzaa" {
			t.Errorf("Read after fault = (%q, %v); want aazzaa", got, err)
		}
	})
}

// TestUnlinkDropsStorageAndPreventsResurrection: unlinking a file removes
// its redundant slices, so a later µ-reboot must not bring it back.
func TestUnlinkDropsStorageAndPreventsResurrection(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/secret.txt")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if _, err := r.c.Write(th, fd, []byte("classified")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		class, _ := r.sys.Class(r.comp)
		id := PathID("/secret.txt")
		if !r.sys.Store().HasData(class, id) {
			t.Error("no redundant storage before unlink")
		}
		if err := r.c.Unlink(th, fd); err != nil {
			t.Errorf("Unlink: %v", err)
			return
		}
		if r.sys.Store().HasData(class, id) {
			t.Error("redundant storage survived unlink")
		}
		// Using the fd after unlink is a tracked-state error.
		if _, err := r.c.Read(th, fd, 1); err == nil {
			t.Error("read through unlinked fd accepted")
		}
		// Even across a crash, the file must not come back.
		if err := r.sys.Kernel().FailComponent(r.comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		fd2, err := r.c.Open(th, "/secret.txt")
		if err != nil {
			t.Errorf("re-Open: %v", err)
			return
		}
		got, err := r.c.Read(th, fd2, 16)
		if err != nil || len(got) != 0 {
			t.Errorf("Read resurrected file = (%q, %v); want empty", got, err)
		}
	})
}

// TestCorruptedStorageDegradesInsteadOfRebootLooping: when the redundant
// copy itself is corrupted, the G1 restore inside recovery raises a typed
// storage-corruption fault, which ramfs.sg classifies sm_fault(degrade) —
// the client gets ErrDegraded instead of an endless reboot loop, and the
// rest of the machine keeps running.
func TestCorruptedStorageDegradesInsteadOfRebootLooping(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		fd, err := r.c.Open(th, "/bits.bin")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if _, err := r.c.Write(th, fd, []byte("abcdef")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		class, _ := r.sys.Class(r.comp)
		if _, ok := r.sys.Store().CorruptOne(class, 0); !ok {
			t.Error("CorruptOne found nothing to corrupt")
			return
		}
		if err := r.sys.Kernel().FailComponent(r.comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Recovery replays fs_open; the server's restore-from-storage path
		// detects the checksum mismatch and the sm_fault classification
		// turns it into immediate graceful degradation.
		if _, err := r.c.Read(th, fd, 3); !errors.Is(err, core.ErrDegraded) {
			t.Errorf("Read over corrupted storage = %v; want ErrDegraded", err)
		}
		if n := r.sys.Store().CorruptionsDetected(); n == 0 {
			t.Error("corruption was not detected by a checksummed ReadAll")
		}
		// The corrupt backing data poisons every subsequent recovery walk
		// (each replayed fs_open re-detects it), so further calls degrade
		// too — typed, not a reboot loop, and the machine keeps running.
		if _, err := r.c.Open(th, "/fresh.txt"); !errors.Is(err, core.ErrDegraded) {
			t.Errorf("Open while corrupt data persists = %v; want ErrDegraded", err)
		}
		// Operator remediation: discard the corrupt redundant copy and
		// reboot the (still-failed) server. The next recovery restores
		// /bits.bin as empty and service resumes.
		r.sys.Store().Drop(class, PathID("/bits.bin"))
		if _, err := r.sys.Kernel().Reboot(th, r.comp); err != nil {
			t.Errorf("Reboot after remediation: %v", err)
			return
		}
		fd2, err := r.c.Open(th, "/fresh.txt")
		if err != nil {
			t.Errorf("Open after degradation: %v", err)
			return
		}
		if _, err := r.c.Write(th, fd2, []byte("ok")); err != nil {
			t.Errorf("Write after degradation: %v", err)
		}
	})
}

func TestWorkloadCleanRun(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	w := NewWorkload(5)
	if _, err := w.Build(sys); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestWorkloadSurvivesInjectedFault(t *testing.T) {
	for nth := 1; nth <= 21; nth += 4 {
		sys, err := core.NewSystem(core.OnDemand)
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		w := NewWorkload(5)
		comp, err := w.Build(sys)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		count := 0
		sys.Kernel().SetInvokeHook(func(th *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
			if c == comp && phase == kernel.PhaseEntry {
				count++
				if count == nth {
					if err := sys.Kernel().FailComponent(comp); err != nil {
						t.Errorf("FailComponent: %v", err)
					}
				}
			}
		})
		if err := sys.Kernel().Run(); err != nil {
			t.Fatalf("Run (fault at %d): %v", nth, err)
		}
		if err := w.Check(); err != nil {
			t.Fatalf("Check (fault at %d): %v", nth, err)
		}
	}
}

package sched

import (
	"errors"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/workload"
)

// Workload is the scheduler benchmark of §V-B: "Two threads perform a
// ping-pong, blocking and waking each other in turn using sched_blk and
// sched_wakeup."
type Workload struct {
	iters  int
	aRuns  int
	bRuns  int
	runErr []error
}

var _ workload.Workload = (*Workload)(nil)

// NewWorkload builds a scheduler ping-pong workload with iters rounds.
func NewWorkload(iters int) workload.Workload {
	return &Workload{iters: iters}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "sched" }

// Target implements workload.Workload.
func (w *Workload) Target() string { return "sched" }

// Build implements workload.Workload.
func (w *Workload) Build(sys *core.System) (kernel.ComponentID, error) {
	comp, err := Register(sys)
	if err != nil {
		return 0, err
	}
	cl, err := sys.NewClient("sched-app")
	if err != nil {
		return 0, err
	}
	c, err := NewClient(cl, comp)
	if err != nil {
		return 0, err
	}
	k := sys.Kernel()
	var aID, bID kernel.ThreadID
	fail := func(err error) { w.runErr = append(w.runErr, err) }

	// pong is created (and therefore scheduled) first, so it registers
	// itself and blocks before ping's first wakeup arrives.
	bID, err = k.CreateThread(nil, "pong", 10, func(t *kernel.Thread) {
		if _, err := c.Setup(t, t.Prio()); err != nil {
			fail(fmt.Errorf("setup b: %w", err))
			return
		}
		for i := 0; i < w.iters; i++ {
			if err := c.Blk(t); err != nil {
				fail(fmt.Errorf("blk b (round %d): %w", i, err))
				return
			}
			w.bRuns++
			if err := c.Wakeup(t, aID); err != nil {
				fail(fmt.Errorf("wakeup a (round %d): %w", i, err))
				return
			}
		}
	})
	if err != nil {
		return 0, err
	}
	aID, err = k.CreateThread(nil, "ping", 10, func(t *kernel.Thread) {
		if _, err := c.Setup(t, t.Prio()); err != nil {
			fail(fmt.Errorf("setup a: %w", err))
			return
		}
		for i := 0; i < w.iters; i++ {
			w.aRuns++
			if err := c.Wakeup(t, bID); err != nil {
				fail(fmt.Errorf("wakeup b (round %d): %w", i, err))
				return
			}
			if err := c.Blk(t); err != nil {
				fail(fmt.Errorf("blk a (round %d): %w", i, err))
				return
			}
		}
		if err := c.Wakeup(t, bID); err != nil {
			fail(fmt.Errorf("final wakeup: %w", err))
		}
	})
	if err != nil {
		return 0, err
	}
	return comp, nil
}

// Check implements workload.Workload.
func (w *Workload) Check() error {
	if len(w.runErr) > 0 {
		return fmt.Errorf("sched workload errors: %w", errors.Join(w.runErr...))
	}
	if w.aRuns != w.iters || w.bRuns != w.iters {
		return fmt.Errorf("sched workload incomplete: ping %d/%d, pong %d/%d",
			w.aRuns, w.iters, w.bRuns, w.iters)
	}
	return nil
}

package sched

import (
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

func newSys(t *testing.T) (*core.System, kernel.ComponentID, *Client) {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	comp, err := Register(sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	cl, err := sys.NewClient("app")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c, err := NewClient(cl, comp)
	if err != nil {
		t.Fatalf("NewClient(sched): %v", err)
	}
	return sys, comp, c
}

func TestSpecMechanisms(t *testing.T) {
	spec, err := Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	for _, m := range []core.Mechanism{core.MechR0, core.MechT0, core.MechT1} {
		if !spec.HasMechanism(m) {
			t.Errorf("mechanism %v missing", m)
		}
	}
}

func TestSetupBlkWakeupRemove(t *testing.T) {
	sys, comp, c := newSys(t)
	k := sys.Kernel()
	var aID kernel.ThreadID
	resumed := false
	var err error
	aID, err = k.CreateThread(nil, "a", 9, func(th *kernel.Thread) {
		if _, err := c.Setup(th, 9); err != nil {
			return
		}
		if err := c.Blk(th); err != nil {
			return
		}
		resumed = true
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "b", 10, func(th *kernel.Thread) {
		if _, err := c.Setup(th, 10); err != nil {
			t.Errorf("Setup: %v", err)
			return
		}
		if err := c.Wakeup(th, aID); err != nil {
			t.Errorf("Wakeup: %v", err)
		}
		if err := c.Remove(th, th.ID()); err != nil {
			t.Errorf("Remove: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !resumed {
		t.Fatal("blocked thread never resumed")
	}
	svc, _ := k.Service(comp)
	type innerer interface{ Inner() kernel.Service }
	srv := svc.(innerer).Inner().(*Server)
	if srv.Registered() != 1 {
		t.Fatalf("registered = %d; want 1 (one removed)", srv.Registered())
	}
}

func TestSetupUnknownThreadRejected(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		if _, err := c.stub.Call(th, FnSetup, 1, 999, 10); err == nil {
			t.Error("setup of unknown kernel thread accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBlkByOtherThreadRejected(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	var other kernel.ThreadID
	var err error
	other, err = k.CreateThread(nil, "other", 9, func(th *kernel.Thread) {
		if _, err := c.Setup(th, 9); err != nil {
			t.Errorf("Setup: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		if _, err := c.stub.Call(th, FnBlk, 1, kernel.Word(other)); err == nil {
			t.Error("sched_blk of another thread accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestRebootReflectsKernelThreads: after a µ-reboot the scheduler rebuilds
// its table from kernel thread objects.
func TestRebootReflectsKernelThreads(t *testing.T) {
	sys, comp, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		if _, err := c.Setup(th, 10); err != nil {
			t.Errorf("Setup: %v", err)
			return
		}
		if err := k.FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := k.Reboot(th, comp); err != nil {
			t.Errorf("Reboot: %v", err)
		}
		svc, _ := k.Service(comp)
		type innerer interface{ Inner() kernel.Service }
		srv := svc.(innerer).Inner().(*Server)
		if srv.Registered() == 0 {
			t.Error("reflection did not rebuild the thread table")
		}
		// The descriptor is still usable through the stub (on-demand
		// recovery replays sched_setup).
		if err := c.Wakeup(th, th.ID()); err != nil {
			t.Errorf("Wakeup after reboot: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWorkloadCleanRun(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	w := NewWorkload(5)
	if _, err := w.Build(sys); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestWorkloadSurvivesInjectedFault(t *testing.T) {
	for nth := 2; nth <= 14; nth += 3 {
		sys, err := core.NewSystem(core.OnDemand)
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		w := NewWorkload(5)
		comp, err := w.Build(sys)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		count := 0
		sys.Kernel().SetInvokeHook(func(th *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
			if c == comp && phase == kernel.PhaseEntry {
				count++
				if count == nth {
					if err := sys.Kernel().FailComponent(comp); err != nil {
						t.Errorf("FailComponent: %v", err)
					}
				}
			}
		})
		if err := sys.Kernel().Run(); err != nil {
			t.Fatalf("Run (fault at %d): %v", nth, err)
		}
		if err := w.Check(); err != nil {
			t.Fatalf("Check (fault at %d): %v", nth, err)
		}
	}
}

package sched

import (
	"errors"
	"testing"

	"superglue/internal/kernel"
)

func TestDispatchArityAndUnknowns(t *testing.T) {
	sys, comp, _ := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		for _, tc := range []struct {
			fn   string
			args []kernel.Word
		}{
			{FnSetup, []kernel.Word{1, 2}},
			{FnBlk, []kernel.Word{1}},
			{FnWakeup, nil},
			{FnRemove, []kernel.Word{1}},
		} {
			if _, err := k.Invoke(th, comp, tc.fn, tc.args...); err == nil {
				t.Errorf("%s with %d args accepted", tc.fn, len(tc.args))
			}
		}
		if _, err := k.Invoke(th, comp, "sched_bogus"); !errors.Is(err, kernel.ErrNoSuchFunction) {
			t.Errorf("bogus fn err = %v", err)
		}
		for _, fn := range []string{FnBlk, FnWakeup, FnRemove} {
			if _, err := k.Invoke(th, comp, fn, 1, 999); !errors.Is(err, kernel.ErrInvalidDescriptor) {
				t.Errorf("%s on unregistered thread err = %v; want EINVAL", fn, err)
			}
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRemoveThenUseRejected(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		if _, err := c.Setup(th, 10); err != nil {
			t.Errorf("Setup: %v", err)
			return
		}
		if err := c.Remove(th, th.ID()); err != nil {
			t.Errorf("Remove: %v", err)
			return
		}
		// The stub dropped the descriptor: further use is a tracked error.
		if err := c.Wakeup(th, th.ID()); err == nil {
			t.Error("Wakeup after Remove accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := NewWorkload(2)
	if w.Name() != "sched" || w.Target() != "sched" {
		t.Errorf("metadata = %s/%s", w.Name(), w.Target())
	}
	if err := w.Check(); err == nil {
		t.Error("Check on unrun workload succeeded")
	}
}

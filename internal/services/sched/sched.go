// Package sched implements the thread scheduler component: the user-level
// scheduling service of COMPOSITE, keeping per-thread accounting (priority,
// block/wakeup bookkeeping) on top of kernel thread objects and exporting
// sched_blk/sched_wakeup to clients.
//
// Recovery follows the paper's scheduler example: the µ-rebooted instance
// *reflects* on kernel data structures (it enumerates live kernel threads to
// rebuild its thread table), blocked threads are woken eagerly (T0) and
// diverted to their client stubs, and the stubs re-block them to match
// client expectations (the Fig. 2(a) walk).
package sched

import (
	_ "embed"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/idl"
	"superglue/internal/kernel"
)

//go:embed sched.sg
var idlSrc string

// Interface function names.
const (
	FnSetup  = "sched_setup"
	FnBlk    = "sched_blk"
	FnWakeup = "sched_wakeup"
	FnRemove = "sched_remove"
)

// Spec parses the component's IDL specification.
func Spec() (*core.Spec, error) {
	return idl.Parse("sched", idlSrc)
}

// IDLSource returns the raw IDL text.
func IDLSource() string { return idlSrc }

// Register boots the scheduler component into a system.
func Register(sys *core.System) (kernel.ComponentID, error) {
	spec, err := Spec()
	if err != nil {
		return 0, err
	}
	comp, err := sys.RegisterServer(spec, func() kernel.Service { return &Server{} })
	if err != nil {
		return 0, err
	}
	// Watchdog budget: scheduler paths are the shortest in the system.
	if err := sys.Kernel().SetInvokeBudget(comp, 200); err != nil {
		return 0, err
	}
	return comp, nil
}

// thdState is the scheduler's per-thread accounting.
type thdState struct {
	owner   kernel.Word
	prio    kernel.Word
	blocks  uint64
	wakeups uint64
}

// Server is the scheduler component's implementation.
type Server struct {
	k       *kernel.Kernel
	self    kernel.ComponentID
	threads map[kernel.Word]*thdState
}

var _ kernel.Service = (*Server)(nil)

// Name implements kernel.Service.
func (s *Server) Name() string { return "sched" }

// Init implements kernel.Service. On a µ-reboot (epoch > 0), it reflects on
// the kernel's thread objects to rebuild its accounting — the reflection
// half of C³'s scheduler recovery. Client-visible registration state
// (which threads went through sched_setup, and their tracked priorities)
// is re-established by the client stubs' recovery walks.
func (s *Server) Init(bc *kernel.BootContext) error {
	s.k = bc.Kernel
	s.self = bc.Self
	s.threads = make(map[kernel.Word]*thdState)
	if bc.Epoch > 0 {
		for _, info := range s.k.ReflectThreads() {
			s.threads[kernel.Word(info.ID)] = &thdState{prio: kernel.Word(info.Prio)}
		}
	}
	return nil
}

// Registered returns the number of threads in the scheduler's table.
func (s *Server) Registered() int { return len(s.threads) }

// Dispatch implements kernel.Service.
func (s *Server) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("sched: %s needs %d args, got %d", fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case FnSetup:
		if err := need(3); err != nil {
			return 0, err
		}
		if _, err := s.k.Thread(kernel.ThreadID(args[1])); err != nil {
			return 0, kernel.ErrInvalidDescriptor
		}
		st, ok := s.threads[args[1]]
		if !ok {
			st = &thdState{}
			s.threads[args[1]] = st
		}
		st.owner = args[0]
		st.prio = args[2]
		return args[1], nil
	case FnBlk:
		if err := need(2); err != nil {
			return 0, err
		}
		st, ok := s.threads[args[1]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		if kernel.ThreadID(args[1]) != t.ID() {
			return 0, fmt.Errorf("sched: sched_blk of thread %d by thread %d", args[1], t.ID())
		}
		st.blocks++
		if err := s.k.Block(t); err != nil {
			return 0, err // diverted by µ-reboot; client stub recovers
		}
		return 0, nil
	case FnWakeup:
		if err := need(2); err != nil {
			return 0, err
		}
		st, ok := s.threads[args[1]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		st.wakeups++
		if err := s.k.Wakeup(t, kernel.ThreadID(args[1])); err != nil {
			return 0, err
		}
		return 0, nil
	case FnRemove:
		if err := need(2); err != nil {
			return 0, err
		}
		if _, ok := s.threads[args[1]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		delete(s.threads, args[1])
		return 0, nil
	default:
		return 0, kernel.DispatchError("sched", fn)
	}
}

// Client is the typed client API for the scheduler component. Each
// interface function is bound once at construction (core.BoundCall), as
// generated stub code would be, so the per-call path pays no
// function-name lookup.
type Client struct {
	stub *core.ClientStub
	self kernel.Word

	setup, blk, wakeup, remove *core.BoundCall
}

// NewClient binds a client component to the scheduler.
func NewClient(cl *core.Client, server kernel.ComponentID) (*Client, error) {
	stub, err := cl.Stub(server)
	if err != nil {
		return nil, err
	}
	c := &Client{stub: stub, self: kernel.Word(cl.ID())}
	for _, b := range []struct {
		fn  string
		dst **core.BoundCall
	}{{FnSetup, &c.setup}, {FnBlk, &c.blk}, {FnWakeup, &c.wakeup}, {FnRemove, &c.remove}} {
		if *b.dst, err = stub.Bind(b.fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stub exposes the underlying stub.
func (c *Client) Stub() *core.ClientStub { return c.stub }

// Setup registers thread t with the scheduler at the given priority.
func (c *Client) Setup(t *kernel.Thread, prio int) (kernel.Word, error) {
	return c.setup.Call(t, c.self, kernel.Word(t.ID()), kernel.Word(prio))
}

// Blk blocks the calling thread until another thread wakes it.
func (c *Client) Blk(t *kernel.Thread) error {
	_, err := c.blk.Call(t, c.self, kernel.Word(t.ID()))
	return err
}

// Wakeup unblocks thread tid.
func (c *Client) Wakeup(t *kernel.Thread, tid kernel.ThreadID) error {
	_, err := c.wakeup.Call(t, c.self, kernel.Word(tid))
	return err
}

// Remove deregisters thread tid.
func (c *Client) Remove(t *kernel.Thread, tid kernel.ThreadID) error {
	_, err := c.remove.Call(t, c.self, kernel.Word(tid))
	return err
}

package timer

import (
	"errors"
	"testing"

	"superglue/internal/kernel"
)

func TestDispatchArityAndUnknowns(t *testing.T) {
	sys, comp, _ := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		for _, tc := range []struct {
			fn   string
			args []kernel.Word
		}{
			{FnAlloc, []kernel.Word{1}},
			{FnWait, nil},
			{FnFree, []kernel.Word{1}},
		} {
			if _, err := k.Invoke(th, comp, tc.fn, tc.args...); err == nil {
				t.Errorf("%s with %d args accepted", tc.fn, len(tc.args))
			}
		}
		if _, err := k.Invoke(th, comp, "timer_bogus"); !errors.Is(err, kernel.ErrNoSuchFunction) {
			t.Errorf("bogus fn err = %v", err)
		}
		for _, fn := range []string{FnWait, FnFree} {
			if _, err := k.Invoke(th, comp, fn, 1, 999); !errors.Is(err, kernel.ErrInvalidDescriptor) {
				t.Errorf("%s on unknown id err = %v; want EINVAL", fn, err)
			}
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFreeStopsTimer(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := c.Alloc(th, 100)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		if err := c.Free(th, id); err != nil {
			t.Errorf("Free: %v", err)
		}
		if _, err := c.Wait(th, id); err == nil {
			t.Error("Wait on freed timer accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCatchUpSkipsMissedPeriods(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := c.Alloc(th, 100)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		// Let simulated time run far past many periods.
		if err := k.Sleep(th, 10_000); err != nil {
			t.Errorf("Sleep: %v", err)
			return
		}
		before := k.Now()
		woke, err := c.Wait(th, id)
		if err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		// The timer must catch up to the next boundary after now, not
		// burst through every missed period.
		if woke < before || woke > before+200 {
			t.Errorf("woke at %d; want within one period of %d", woke, before)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := NewWorkload(2)
	if w.Name() != "timer" || w.Target() != "timer" {
		t.Errorf("metadata = %s/%s", w.Name(), w.Target())
	}
	if err := w.Check(); err == nil {
		t.Error("Check on unrun workload succeeded")
	}
}

package timer

import (
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

func newSys(t *testing.T) (*core.System, kernel.ComponentID, *Client) {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	comp, err := Register(sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	cl, err := sys.NewClient("app")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c, err := NewClient(cl, comp)
	if err != nil {
		t.Fatalf("NewClient(timer): %v", err)
	}
	return sys, comp, c
}

func TestSpecMechanisms(t *testing.T) {
	spec, err := Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	for _, m := range []core.Mechanism{core.MechR0, core.MechT0, core.MechT1} {
		if !spec.HasMechanism(m) {
			t.Errorf("mechanism %v missing", m)
		}
	}
	for _, m := range []core.Mechanism{core.MechD0, core.MechD1, core.MechG0, core.MechG1} {
		if spec.HasMechanism(m) {
			t.Errorf("mechanism %v unexpectedly required", m)
		}
	}
}

func TestPeriodicWaitAdvancesTime(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := c.Alloc(th, 500)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		var prev kernel.Time
		for i := 0; i < 3; i++ {
			woke, err := c.Wait(th, id)
			if err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
			if woke < prev+500 {
				t.Errorf("wake %d at %d; want ≥ %d (500µs period)", i, woke, prev+500)
			}
			prev = woke
		}
		if err := c.Free(th, id); err != nil {
			t.Errorf("Free: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestInvalidPeriodRejected(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		if _, err := c.Alloc(th, 0); err == nil {
			t.Error("Alloc(0) accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFaultWhileSleeping: the thread is asleep inside the timer manager when
// it fails; the µ-reboot must divert it (eager T0 wakeup), and the stub
// recovers the timer — whose period survives in tracked descriptor data —
// and re-waits.
func TestFaultWhileSleeping(t *testing.T) {
	sys, comp, c := newSys(t)
	k := sys.Kernel()
	woke := false
	if _, err := k.CreateThread(nil, "sleeper", 9, func(th *kernel.Thread) {
		id, err := c.Alloc(th, 10_000)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		if _, err := c.Wait(th, id); err != nil {
			t.Errorf("Wait across fault: %v", err)
			return
		}
		woke = true
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "injector", 10, func(th *kernel.Thread) {
		if err := k.FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := k.Reboot(th, comp); err != nil {
			t.Errorf("Reboot: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woke {
		t.Fatal("sleeper never woke after recovery")
	}
}

func TestWorkloadCleanRun(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	w := NewWorkload(5)
	if _, err := w.Build(sys); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestWorkloadSurvivesInjectedFault(t *testing.T) {
	for _, nth := range []int{2, 4, 6} {
		sys, err := core.NewSystem(core.OnDemand)
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		w := NewWorkload(5)
		comp, err := w.Build(sys)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		count := 0
		sys.Kernel().SetInvokeHook(func(th *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
			if c == comp && phase == kernel.PhaseEntry {
				count++
				if count == nth {
					if err := sys.Kernel().FailComponent(comp); err != nil {
						t.Errorf("FailComponent: %v", err)
					}
				}
			}
		})
		if err := sys.Kernel().Run(); err != nil {
			t.Fatalf("Run (fault at %d): %v", nth, err)
		}
		if err := w.Check(); err != nil {
			t.Fatalf("Check (fault at %d): %v", nth, err)
		}
	}
}

// Package timer implements the timer manager: periodic timers a thread
// blocks on (§V-B: "A thread wakes up, then blocks for a certain amount of
// time periodically"). Timer descriptors track their period as recovery
// meta-data; a µ-reboot loses the server's deadline bookkeeping, and
// interface-driven recovery rebuilds it from the tracked period.
package timer

import (
	_ "embed"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/idl"
	"superglue/internal/kernel"
)

//go:embed timer.sg
var idlSrc string

// Interface function names.
const (
	FnAlloc = "timer_alloc"
	FnWait  = "timer_periodic_wait"
	FnFree  = "timer_free"
)

// Spec parses the component's IDL specification.
func Spec() (*core.Spec, error) {
	return idl.Parse("timer", idlSrc)
}

// IDLSource returns the raw IDL text.
func IDLSource() string { return idlSrc }

// Register boots the timer component into a system.
func Register(sys *core.System) (kernel.ComponentID, error) {
	spec, err := Spec()
	if err != nil {
		return 0, err
	}
	comp, err := sys.RegisterServer(spec, func() kernel.Service { return &Server{} })
	if err != nil {
		return 0, err
	}
	// Watchdog budget: timer bookkeeping scans the pending-deadline list.
	if err := sys.Kernel().SetInvokeBudget(comp, 300); err != nil {
		return 0, err
	}
	return comp, nil
}

// timerState is one timer's server-side state.
type timerState struct {
	owner    kernel.Word
	period   kernel.Time
	deadline kernel.Time
}

// Server is the timer component's implementation.
type Server struct {
	k      *kernel.Kernel
	self   kernel.ComponentID
	next   kernel.Word
	timers map[kernel.Word]*timerState
}

var _ kernel.Service = (*Server)(nil)

// Name implements kernel.Service.
func (s *Server) Name() string { return "timer" }

// Init implements kernel.Service.
func (s *Server) Init(bc *kernel.BootContext) error {
	s.k = bc.Kernel
	s.self = bc.Self
	s.timers = make(map[kernel.Word]*timerState)
	s.next = kernel.Word(bc.Epoch) << 20
	return nil
}

// Timers returns the number of live timers (reflection/testing).
func (s *Server) Timers() int { return len(s.timers) }

// Dispatch implements kernel.Service.
func (s *Server) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("timer: %s needs %d args, got %d", fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case FnAlloc:
		if err := need(2); err != nil {
			return 0, err
		}
		if args[1] <= 0 {
			return 0, fmt.Errorf("timer: invalid period %d", args[1])
		}
		s.next++
		s.timers[s.next] = &timerState{
			owner:    args[0],
			period:   kernel.Time(args[1]),
			deadline: s.k.Now() + kernel.Time(args[1]),
		}
		return s.next, nil
	case FnWait:
		if err := need(2); err != nil {
			return 0, err
		}
		tm, ok := s.timers[args[1]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		now := s.k.Now()
		// Catch up missed periods (e.g., after recovery) so the timer
		// stays periodic rather than bursting.
		for tm.deadline <= now {
			tm.deadline += tm.period
		}
		if err := s.k.Sleep(t, tm.deadline-now); err != nil {
			return 0, err // diverted by µ-reboot; client stub recovers
		}
		// Re-validate: this may be a fresh instance after recovery.
		tm, ok = s.timers[args[1]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		tm.deadline += tm.period
		return kernel.Word(s.k.Now()), nil
	case FnFree:
		if err := need(2); err != nil {
			return 0, err
		}
		if _, ok := s.timers[args[1]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		delete(s.timers, args[1])
		return 0, nil
	default:
		return 0, kernel.DispatchError("timer", fn)
	}
}

// Client is the typed client API for the timer component. Each
// interface function is bound once at construction (core.BoundCall), so
// the per-call path pays no function-name lookup.
type Client struct {
	stub *core.ClientStub
	self kernel.Word

	alloc, wait, free *core.BoundCall
}

// NewClient binds a client component to the timer server.
func NewClient(cl *core.Client, server kernel.ComponentID) (*Client, error) {
	stub, err := cl.Stub(server)
	if err != nil {
		return nil, err
	}
	c := &Client{stub: stub, self: kernel.Word(cl.ID())}
	for _, b := range []struct {
		fn  string
		dst **core.BoundCall
	}{{FnAlloc, &c.alloc}, {FnWait, &c.wait}, {FnFree, &c.free}} {
		if *b.dst, err = stub.Bind(b.fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stub exposes the underlying stub.
func (c *Client) Stub() *core.ClientStub { return c.stub }

// Alloc creates a periodic timer with the given period (µs).
func (c *Client) Alloc(t *kernel.Thread, period kernel.Time) (kernel.Word, error) {
	return c.alloc.Call(t, c.self, kernel.Word(period))
}

// Wait blocks until the timer's next period boundary; returns the wake time.
func (c *Client) Wait(t *kernel.Thread, id kernel.Word) (kernel.Time, error) {
	v, err := c.wait.Call(t, c.self, id)
	return kernel.Time(v), err
}

// Free destroys the timer.
func (c *Client) Free(t *kernel.Thread, id kernel.Word) error {
	_, err := c.free.Call(t, c.self, id)
	return err
}

package timer

import (
	"errors"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/workload"
)

// Workload is the timer benchmark of §V-B: a thread wakes up, then blocks
// for a certain amount of time, periodically.
type Workload struct {
	iters  int
	period kernel.Time
	wakes  int
	last   kernel.Time
	order  error
	runErr []error
}

var _ workload.Workload = (*Workload)(nil)

// NewWorkload builds a timer workload running iters periods.
func NewWorkload(iters int) workload.Workload {
	return &Workload{iters: iters, period: 1000}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "timer" }

// Target implements workload.Workload.
func (w *Workload) Target() string { return "timer" }

// Build implements workload.Workload.
func (w *Workload) Build(sys *core.System) (kernel.ComponentID, error) {
	comp, err := Register(sys)
	if err != nil {
		return 0, err
	}
	cl, err := sys.NewClient("timer-app")
	if err != nil {
		return 0, err
	}
	c, err := NewClient(cl, comp)
	if err != nil {
		return 0, err
	}
	if _, err := sys.Kernel().CreateThread(nil, "periodic", 10, func(t *kernel.Thread) {
		id, err := c.Alloc(t, w.period)
		if err != nil {
			w.runErr = append(w.runErr, fmt.Errorf("alloc: %w", err))
			return
		}
		for i := 0; i < w.iters; i++ {
			woke, err := c.Wait(t, id)
			if err != nil {
				w.runErr = append(w.runErr, fmt.Errorf("wait %d: %w", i, err))
				return
			}
			if woke < w.last && w.order == nil {
				w.order = fmt.Errorf("timer went backwards: woke at %d after %d", woke, w.last)
			}
			w.last = woke
			w.wakes++
		}
		if err := c.Free(t, id); err != nil {
			w.runErr = append(w.runErr, fmt.Errorf("free: %w", err))
		}
	}); err != nil {
		return 0, err
	}
	return comp, nil
}

// Check implements workload.Workload.
func (w *Workload) Check() error {
	if len(w.runErr) > 0 {
		return fmt.Errorf("timer workload errors: %w", errors.Join(w.runErr...))
	}
	if w.order != nil {
		return w.order
	}
	if w.wakes != w.iters {
		return fmt.Errorf("timer workload incomplete: %d/%d wakes", w.wakes, w.iters)
	}
	return nil
}

package lock

import (
	"errors"
	"testing"

	"superglue/internal/kernel"
	"superglue/internal/workload"
)

// TestDispatchArityAndUnknowns covers the server's argument validation.
func TestDispatchArityAndUnknowns(t *testing.T) {
	sys, comp, _ := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		cases := []struct {
			fn   string
			args []kernel.Word
		}{
			{FnAlloc, nil},
			{FnTake, []kernel.Word{1}},
			{FnRelease, []kernel.Word{1, 2}},
			{FnFree, nil},
		}
		for _, tc := range cases {
			if _, err := k.Invoke(th, comp, tc.fn, tc.args...); err == nil {
				t.Errorf("%s with %d args accepted", tc.fn, len(tc.args))
			}
		}
		if _, err := k.Invoke(th, comp, "lock_bogus"); !errors.Is(err, kernel.ErrNoSuchFunction) {
			t.Errorf("bogus fn err = %v", err)
		}
		// Raw operations on unknown descriptors are EINVAL.
		for _, fn := range []string{FnTake, FnRelease} {
			if _, err := k.Invoke(th, comp, fn, 1, 999, 1); !errors.Is(err, kernel.ErrInvalidDescriptor) {
				t.Errorf("%s on unknown id err = %v; want EINVAL", fn, err)
			}
		}
		if _, err := k.Invoke(th, comp, FnFree, 999); !errors.Is(err, kernel.ErrInvalidDescriptor) {
			t.Errorf("free unknown err = %v; want EINVAL", err)
		}
		// Release by a non-holder is a semantic error.
		id, err := k.Invoke(th, comp, FnAlloc, 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if _, err := k.Invoke(th, comp, FnRelease, 1, id, kernel.Word(th.ID())); err == nil {
			t.Error("release of unheld lock accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestWakeupSkipsDepartedWaiter covers waiter-list cleanup when a woken
// thread re-contends.
func TestThreeWayContention(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	var id kernel.Word
	order := []kernel.ThreadID{}
	body := func(th *kernel.Thread) {
		if err := c.Take(th, id); err != nil {
			t.Errorf("take: %v", err)
			return
		}
		order = append(order, th.ID())
		if err := k.Yield(th); err != nil {
			return
		}
		if err := c.Release(th, id); err != nil {
			t.Errorf("release: %v", err)
		}
	}
	if _, err := k.CreateThread(nil, "a", 10, func(th *kernel.Thread) {
		var err error
		id, err = c.Alloc(th)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		body(th)
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	for _, name := range []string{"b", "c"} {
		if _, err := k.CreateThread(nil, name, 10, body); err != nil {
			t.Fatalf("CreateThread: %v", err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 {
		t.Fatalf("entered CS %d times; want 3 (%v)", len(order), order)
	}
}

// TestWorkloadMetadata covers the workload's trivial accessors and its
// incomplete-run reporting.
func TestWorkloadMetadata(t *testing.T) {
	w := NewWorkload(3)
	if w.Name() != "lock" || w.Target() != "lock" {
		t.Errorf("metadata = %s/%s", w.Name(), w.Target())
	}
	// A workload that never ran reports incompleteness.
	if err := w.Check(); err == nil {
		t.Error("Check on unrun workload succeeded")
	}
	var _ workload.Workload = w
}

// TestClientStubAccessor covers the Stub escape hatch.
func TestClientStubAccessor(t *testing.T) {
	_, comp, c := newSys(t)
	if c.Stub() == nil || c.Stub().Server() != comp {
		t.Error("Stub accessor wrong")
	}
}

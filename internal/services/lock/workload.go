package lock

import (
	"errors"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/workload"
)

// Workload is the lock benchmark of §V-B: "A thread holds a lock and another
// thread contends the same lock. After the owner thread releases, the other
// thread acquires the lock." Repeated iters times, with a mutual-exclusion
// invariant checked inside the critical section.
type Workload struct {
	iters    int
	sys      *core.System
	client   *Client
	inCS     int
	csError  error
	owners   int
	contends int
	runErr   []error
}

var _ workload.Workload = (*Workload)(nil)

// NewWorkload builds a lock workload running iters iterations.
func NewWorkload(iters int) workload.Workload {
	return &Workload{iters: iters}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "lock" }

// Target implements workload.Workload.
func (w *Workload) Target() string { return "lock" }

// Build implements workload.Workload.
func (w *Workload) Build(sys *core.System) (kernel.ComponentID, error) {
	w.sys = sys
	comp, err := Register(sys)
	if err != nil {
		return 0, err
	}
	cl, err := sys.NewClient("lock-app")
	if err != nil {
		return 0, err
	}
	w.client, err = NewClient(cl, comp)
	if err != nil {
		return 0, err
	}
	k := sys.Kernel()

	// The owner allocates the lock, holds it across a yield (so the
	// contender blocks), then releases.
	var id kernel.Word
	ready := false
	if _, err := k.CreateThread(nil, "owner", 10, func(t *kernel.Thread) {
		lid, err := w.client.Alloc(t)
		if err != nil {
			w.fail(fmt.Errorf("alloc: %w", err))
			return
		}
		id = lid
		ready = true
		for i := 0; i < w.iters; i++ {
			if err := w.critical(t, id, true); err != nil {
				w.fail(err)
				return
			}
			if err := k.Yield(t); err != nil {
				w.fail(err)
				return
			}
		}
	}); err != nil {
		return 0, err
	}
	// On a multi-core machine the owner's Alloc parks twice (cross-core
	// migration there and back), so the contender's single courtesy yield
	// is not guaranteed to outlast it; it retries a bounded number of
	// times instead. The bound keeps the workload terminating when an
	// injected fault kills the owner before it publishes the lock ID, and
	// single-core machines keep the legacy single yield exactly.
	readyYields := 1
	if k.NumCores() > 1 {
		readyYields = 64
	}
	if _, err := k.CreateThread(nil, "contender", 10, func(t *kernel.Thread) {
		for i := 0; !ready && i < readyYields; i++ {
			if err := k.Yield(t); err != nil {
				w.fail(err)
				return
			}
		}
		for i := 0; i < w.iters; i++ {
			if err := w.critical(t, id, false); err != nil {
				w.fail(err)
				return
			}
			if err := k.Yield(t); err != nil {
				w.fail(err)
				return
			}
		}
	}); err != nil {
		return 0, err
	}
	return comp, nil
}

// critical runs one take/critical-section/release cycle, verifying mutual
// exclusion.
func (w *Workload) critical(t *kernel.Thread, id kernel.Word, owner bool) error {
	if err := w.client.Take(t, id); err != nil {
		return fmt.Errorf("take: %w", err)
	}
	w.inCS++
	if w.inCS != 1 && w.csError == nil {
		w.csError = fmt.Errorf("mutual exclusion violated: %d threads in critical section", w.inCS)
	}
	// Yield inside the critical section: contenders must block, not enter.
	if err := w.sys.Kernel().Yield(t); err != nil {
		w.inCS--
		return err
	}
	w.inCS--
	if owner {
		w.owners++
	} else {
		w.contends++
	}
	if err := w.client.Release(t, id); err != nil {
		return fmt.Errorf("release: %w", err)
	}
	return nil
}

func (w *Workload) fail(err error) {
	w.runErr = append(w.runErr, err)
}

// Check implements workload.Workload.
func (w *Workload) Check() error {
	if len(w.runErr) > 0 {
		return fmt.Errorf("lock workload errors: %w", errors.Join(w.runErr...))
	}
	if w.csError != nil {
		return w.csError
	}
	if w.owners != w.iters || w.contends != w.iters {
		return fmt.Errorf("lock workload incomplete: owner %d/%d, contender %d/%d",
			w.owners, w.iters, w.contends, w.iters)
	}
	return nil
}

package lock

import (
	"strings"
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

func newSys(t *testing.T) (*core.System, kernel.ComponentID, *Client) {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	comp, err := Register(sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	cl, err := sys.NewClient("app")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c, err := NewClient(cl, comp)
	if err != nil {
		t.Fatalf("NewClient(lock): %v", err)
	}
	return sys, comp, c
}

func TestSpecParsesAndDerivesMechanisms(t *testing.T) {
	spec, err := Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	// Fig. 6(b) commentary: a lock descriptor needs only T0, R0, T1.
	want := []core.Mechanism{core.MechR0, core.MechT0, core.MechT1}
	got := spec.Mechanisms()
	if len(got) != len(want) {
		t.Fatalf("Mechanisms = %v; want %v", got, want)
	}
	for _, m := range want {
		if !spec.HasMechanism(m) {
			t.Errorf("mechanism %v missing", m)
		}
	}
	if !strings.Contains(IDLSource(), "sm_hold(lock_take, lock_release)") {
		t.Error("IDL source missing hold declaration")
	}
}

func TestAllocTakeReleaseFree(t *testing.T) {
	sys, comp, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := c.Alloc(th)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		if err := c.Take(th, id); err != nil {
			t.Errorf("Take: %v", err)
		}
		if err := c.Release(th, id); err != nil {
			t.Errorf("Release: %v", err)
		}
		if err := c.Free(th, id); err != nil {
			t.Errorf("Free: %v", err)
		}
		svc, _ := k.Service(comp)
		type innerer interface{ Inner() kernel.Service }
		srv := svc.(innerer).Inner().(*Server)
		if srv.Locks() != 0 {
			t.Errorf("server locks = %d after free; want 0", srv.Locks())
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFreeHeldLockRejected(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := c.Alloc(th)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		if err := c.Take(th, id); err != nil {
			t.Errorf("Take: %v", err)
		}
		if err := c.Free(th, id); err == nil {
			t.Error("Free of held lock accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestContentionBlocksAndHandsOff(t *testing.T) {
	sys, _, c := newSys(t)
	k := sys.Kernel()
	var id kernel.Word
	var order []string
	if _, err := k.CreateThread(nil, "owner", 10, func(th *kernel.Thread) {
		var err error
		id, err = c.Alloc(th)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		if err := c.Take(th, id); err != nil {
			t.Errorf("Take: %v", err)
		}
		order = append(order, "owner-took")
		if err := k.Yield(th); err != nil { // contender runs, blocks
			t.Errorf("Yield: %v", err)
		}
		order = append(order, "owner-releasing")
		if err := c.Release(th, id); err != nil {
			t.Errorf("Release: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "contender", 10, func(th *kernel.Thread) {
		if err := c.Take(th, id); err != nil {
			t.Errorf("contender Take: %v", err)
			return
		}
		order = append(order, "contender-took")
		if err := c.Release(th, id); err != nil {
			t.Errorf("contender Release: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"owner-took", "owner-releasing", "contender-took"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v; want %v", order, want)
	}
}

func TestRecoveryWhileHeldAndContended(t *testing.T) {
	sys, comp, c := newSys(t)
	k := sys.Kernel()
	var id kernel.Word
	contenderDone := false
	if _, err := k.CreateThread(nil, "owner", 10, func(th *kernel.Thread) {
		var err error
		id, err = c.Alloc(th)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		if err := c.Take(th, id); err != nil {
			t.Errorf("Take: %v", err)
		}
		if err := k.Yield(th); err != nil { // contender blocks
			t.Errorf("Yield: %v", err)
		}
		// Fault while the lock is held and contended.
		if err := k.FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Owner releases: the stub recovers the descriptor, re-acquires on
		// the owner's behalf, and then releases.
		if err := c.Release(th, id); err != nil {
			t.Errorf("Release after fault: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "contender", 10, func(th *kernel.Thread) {
		if err := c.Take(th, id); err != nil {
			t.Errorf("contender Take across fault: %v", err)
			return
		}
		if err := c.Release(th, id); err != nil {
			t.Errorf("contender Release: %v", err)
		}
		contenderDone = true
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !contenderDone {
		t.Fatal("contender never acquired the recovered lock")
	}
}

func TestWorkloadCleanRun(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	w := NewWorkload(5)
	if _, err := w.Build(sys); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestWorkloadSurvivesInjectedFault(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	w := NewWorkload(5)
	comp, err := w.Build(sys)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Fail the lock component at the 7th invocation entry.
	count := 0
	sys.Kernel().SetInvokeHook(func(th *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
		if c == comp && phase == kernel.PhaseEntry {
			count++
			if count == 7 {
				if err := sys.Kernel().FailComponent(comp); err != nil {
					t.Errorf("FailComponent: %v", err)
				}
			}
		}
	})
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("Check after injected fault: %v", err)
	}
}

// Package lock implements the lock system component: mutual-exclusion locks
// with blocking contention, one of the six system-level services of the
// paper's evaluation (§V-B). Its interface is specified in lock.sg; recovery
// uses eager wakeup of contenders (T0), state-machine replay (R0/T1), and
// per-thread hold re-acquisition.
package lock

import (
	_ "embed"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/idl"
	"superglue/internal/kernel"
)

//go:embed lock.sg
var idlSrc string

// Interface function names.
const (
	FnAlloc   = "lock_alloc"
	FnTake    = "lock_take"
	FnRelease = "lock_release"
	FnFree    = "lock_free"
)

// Spec parses the component's IDL specification.
func Spec() (*core.Spec, error) {
	return idl.Parse("lock", idlSrc)
}

// IDLSource returns the raw IDL text (for the compiler CLI and LOC counts).
func IDLSource() string { return idlSrc }

// Register boots the lock component into a system.
func Register(sys *core.System) (kernel.ComponentID, error) {
	spec, err := Spec()
	if err != nil {
		return 0, err
	}
	comp, err := sys.RegisterServer(spec, func() kernel.Service { return &Server{} })
	if err != nil {
		return 0, err
	}
	// Watchdog budget: lock operations are short critical-section twiddles.
	if err := sys.Kernel().SetInvokeBudget(comp, 200); err != nil {
		return 0, err
	}
	return comp, nil
}

// lockState is one lock's server-side state.
type lockState struct {
	holder  kernel.ThreadID
	waiters []kernel.ThreadID
	owner   kernel.Word // creating component (accounting)
}

// Server is the lock component's implementation. A fresh instance is the
// µ-reboot image.
type Server struct {
	k     *kernel.Kernel
	self  kernel.ComponentID
	next  kernel.Word
	locks map[kernel.Word]*lockState
}

var _ kernel.Service = (*Server)(nil)

// Name implements kernel.Service.
func (s *Server) Name() string { return "lock" }

// Init implements kernel.Service. Descriptor IDs are drawn from an
// epoch-qualified namespace so recreated locks receive fresh IDs, as a real
// µ-rebooted allocator would.
func (s *Server) Init(bc *kernel.BootContext) error {
	s.k = bc.Kernel
	s.self = bc.Self
	s.locks = make(map[kernel.Word]*lockState)
	s.next = kernel.Word(bc.Epoch) << 20
	return nil
}

// Locks returns the number of live locks (reflection/testing).
func (s *Server) Locks() int { return len(s.locks) }

// Dispatch implements kernel.Service.
func (s *Server) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	switch fn {
	case FnAlloc:
		if len(args) < 1 {
			return 0, fmt.Errorf("lock: alloc needs compid")
		}
		s.next++
		s.locks[s.next] = &lockState{owner: args[0]}
		return s.next, nil
	case FnTake:
		if len(args) < 3 {
			return 0, fmt.Errorf("lock: take needs compid, lockid, tid")
		}
		return s.take(t, args[1], kernel.ThreadID(args[2]))
	case FnRelease:
		if len(args) < 3 {
			return 0, fmt.Errorf("lock: release needs compid, lockid, tid")
		}
		return s.release(t, args[1], kernel.ThreadID(args[2]))
	case FnFree:
		if len(args) < 1 {
			return 0, fmt.Errorf("lock: free needs lockid")
		}
		l, ok := s.locks[args[0]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		if l.holder != 0 || len(l.waiters) > 0 {
			return 0, fmt.Errorf("lock: freeing lock %d while held/contended", args[0])
		}
		delete(s.locks, args[0])
		return 0, nil
	default:
		return 0, kernel.DispatchError("lock", fn)
	}
}

// take acquires lock id on behalf of thread tid. Normally tid is the
// invoking thread; during recovery the client stub replays a hold with the
// original holder's tid, restoring ownership without the holder running.
func (s *Server) take(t *kernel.Thread, id kernel.Word, tid kernel.ThreadID) (kernel.Word, error) {
	l, ok := s.locks[id]
	if !ok {
		return 0, kernel.ErrInvalidDescriptor
	}
	for l.holder != 0 && l.holder != tid {
		l.waiters = append(l.waiters, t.ID())
		if err := s.k.Block(t); err != nil {
			// Diverted by a µ-reboot (or killed): propagate unmodified so
			// the client stub can recover and redo.
			return 0, err
		}
		// Re-validate after wakeup: the lock may have been freed, or this
		// is a fresh instance.
		l, ok = s.locks[id]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		l.removeWaiter(t.ID())
	}
	l.holder = tid
	return 0, nil
}

func (s *Server) release(t *kernel.Thread, id kernel.Word, tid kernel.ThreadID) (kernel.Word, error) {
	l, ok := s.locks[id]
	if !ok {
		return 0, kernel.ErrInvalidDescriptor
	}
	if l.holder != tid {
		return 0, fmt.Errorf("lock: release of %d by thread %d, held by %d", id, tid, l.holder)
	}
	l.holder = 0
	waiters := l.waiters
	l.waiters = nil
	for _, w := range waiters {
		if err := s.k.Wakeup(t, w); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

func (l *lockState) removeWaiter(id kernel.ThreadID) {
	for i, w := range l.waiters {
		if w == id {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			return
		}
	}
}

// Client is the typed client API over the SuperGlue client stub: what
// application code links against. Each interface function is bound once
// at construction (core.BoundCall), so the per-call path pays no
// function-name lookup.
type Client struct {
	stub *core.ClientStub
	self kernel.Word

	alloc, take, release, free *core.BoundCall
}

// NewClient binds a client component to the lock server.
func NewClient(cl *core.Client, server kernel.ComponentID) (*Client, error) {
	stub, err := cl.Stub(server)
	if err != nil {
		return nil, err
	}
	c := &Client{stub: stub, self: kernel.Word(cl.ID())}
	for _, b := range []struct {
		fn  string
		dst **core.BoundCall
	}{{FnAlloc, &c.alloc}, {FnTake, &c.take}, {FnRelease, &c.release}, {FnFree, &c.free}} {
		if *b.dst, err = stub.Bind(b.fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stub exposes the underlying stub (metrics, tests).
func (c *Client) Stub() *core.ClientStub { return c.stub }

// Alloc creates a lock and returns its descriptor.
func (c *Client) Alloc(t *kernel.Thread) (kernel.Word, error) {
	return c.alloc.Call(t, c.self)
}

// Take acquires the lock, blocking while it is contended.
func (c *Client) Take(t *kernel.Thread, id kernel.Word) error {
	_, err := c.take.Call(t, c.self, id, kernel.Word(t.ID()))
	return err
}

// Release releases the lock and wakes one or more contenders.
func (c *Client) Release(t *kernel.Thread, id kernel.Word) error {
	_, err := c.release.Call(t, c.self, id, kernel.Word(t.ID()))
	return err
}

// Free destroys the lock.
func (c *Client) Free(t *kernel.Thread, id kernel.Word) error {
	_, err := c.free.Call(t, id)
	return err
}

// Package mm implements the memory mapping manager of §II-D: it maintains
// virtual-to-physical mappings following the recursive address-space model.
// mman_get_page creates a root mapping from a fresh physical frame,
// mman_alias_page shares memory by creating a child mapping in (possibly)
// another protection domain, and mman_release_page revokes a mapping and
// the entire subtree aliased from it.
//
// A fault in the MM corrupts the mapping trees; µ-rebooting resets them, and
// interface-driven recovery rebuilds mappings on demand, parents before
// children (D1), with the whole subtree reconstructed before a recursive
// revocation (D0).
package mm

import (
	_ "embed"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/idl"
	"superglue/internal/kernel"
)

//go:embed mm.sg
var idlSrc string

// Interface function names.
const (
	FnGetPage     = "mman_get_page"
	FnAliasPage   = "mman_alias_page"
	FnReleasePage = "mman_release_page"
)

// Spec parses the component's IDL specification.
func Spec() (*core.Spec, error) {
	return idl.Parse("mm", idlSrc)
}

// IDLSource returns the raw IDL text.
func IDLSource() string { return idlSrc }

// Register boots the memory manager into a system.
func Register(sys *core.System) (kernel.ComponentID, error) {
	spec, err := Spec()
	if err != nil {
		return 0, err
	}
	comp, err := sys.RegisterServer(spec, func() kernel.Service { return &Server{} })
	if err != nil {
		return 0, err
	}
	// Watchdog budget: mapping operations touch page-table-like structures.
	if err := sys.Kernel().SetInvokeBudget(comp, 500); err != nil {
		return 0, err
	}
	return comp, nil
}

// mapKey identifies a mapping: a virtual address within a protection domain.
type mapKey struct {
	spd   kernel.Word
	vaddr kernel.Word
}

// mapping is one node of a frame's alias tree.
type mapping struct {
	frame    kernel.Word
	parent   *mapping
	key      mapKey
	children map[mapKey]*mapping
	flags    kernel.Word
}

// Server is the memory manager's implementation.
type Server struct {
	k         *kernel.Kernel
	self      kernel.ComponentID
	nextFrame kernel.Word
	maps      map[mapKey]*mapping
}

var _ kernel.Service = (*Server)(nil)

// Name implements kernel.Service.
func (s *Server) Name() string { return "mm" }

// Init implements kernel.Service.
func (s *Server) Init(bc *kernel.BootContext) error {
	s.k = bc.Kernel
	s.self = bc.Self
	s.maps = make(map[mapKey]*mapping)
	s.nextFrame = kernel.Word(bc.Epoch) << 20
	return nil
}

// Mappings returns the number of live mappings (reflection/testing).
func (s *Server) Mappings() int { return len(s.maps) }

// Frame returns the physical frame backing a mapping (testing).
func (s *Server) Frame(spd, vaddr kernel.Word) (kernel.Word, bool) {
	m, ok := s.maps[mapKey{spd, vaddr}]
	if !ok {
		return 0, false
	}
	return m.frame, true
}

// Dispatch implements kernel.Service.
func (s *Server) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("mm: %s needs %d args, got %d", fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case FnGetPage:
		if err := need(3); err != nil {
			return 0, err
		}
		key := mapKey{args[0], args[1]}
		if key.vaddr <= 0 {
			return 0, fmt.Errorf("mm: invalid vaddr %d", key.vaddr)
		}
		if _, exists := s.maps[key]; exists {
			return 0, fmt.Errorf("mm: vaddr %d already mapped in component %d", key.vaddr, key.spd)
		}
		s.nextFrame++
		s.maps[key] = &mapping{
			frame:    s.nextFrame,
			key:      key,
			children: make(map[mapKey]*mapping),
			flags:    args[2],
		}
		return key.vaddr, nil
	case FnAliasPage:
		if err := need(4); err != nil {
			return 0, err
		}
		src := mapKey{args[0], args[1]}
		dst := mapKey{args[2], args[3]}
		parent, ok := s.maps[src]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		if dst.vaddr <= 0 {
			return 0, fmt.Errorf("mm: invalid alias vaddr %d", dst.vaddr)
		}
		if _, exists := s.maps[dst]; exists {
			return 0, fmt.Errorf("mm: alias target %d already mapped in component %d", dst.vaddr, dst.spd)
		}
		child := &mapping{
			frame:    parent.frame,
			parent:   parent,
			key:      dst,
			children: make(map[mapKey]*mapping),
		}
		parent.children[dst] = child
		s.maps[dst] = child
		return dst.vaddr, nil
	case FnReleasePage:
		if err := need(2); err != nil {
			return 0, err
		}
		key := mapKey{args[0], args[1]}
		m, ok := s.maps[key]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		s.revoke(m)
		if m.parent != nil {
			delete(m.parent.children, key)
		}
		return 0, nil
	default:
		return 0, kernel.DispatchError("mm", fn)
	}
}

// revoke removes a mapping and, recursively, every mapping aliased from it.
func (s *Server) revoke(m *mapping) {
	for _, c := range m.children {
		s.revoke(c)
	}
	m.children = make(map[mapKey]*mapping)
	delete(s.maps, m.key)
}

// Client is the typed client API for the memory manager. Each interface
// function is bound once at construction (core.BoundCall), so the
// per-call path pays no function-name lookup.
type Client struct {
	stub *core.ClientStub
	self kernel.Word

	getPage, aliasPage, releasePage *core.BoundCall
}

// NewClient binds a client component to the memory manager.
func NewClient(cl *core.Client, server kernel.ComponentID) (*Client, error) {
	stub, err := cl.Stub(server)
	if err != nil {
		return nil, err
	}
	c := &Client{stub: stub, self: kernel.Word(cl.ID())}
	for _, b := range []struct {
		fn  string
		dst **core.BoundCall
	}{{FnGetPage, &c.getPage}, {FnAliasPage, &c.aliasPage}, {FnReleasePage, &c.releasePage}} {
		if *b.dst, err = stub.Bind(b.fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stub exposes the underlying stub.
func (c *Client) Stub() *core.ClientStub { return c.stub }

// GetPage creates a root mapping for vaddr in the calling component.
func (c *Client) GetPage(t *kernel.Thread, vaddr kernel.Word) (kernel.Word, error) {
	return c.getPage.Call(t, c.self, vaddr, 0)
}

// AliasPage aliases this component's mapping at srcVaddr into component
// dstSpd at dstVaddr.
func (c *Client) AliasPage(t *kernel.Thread, srcVaddr kernel.Word, dstSpd kernel.ComponentID, dstVaddr kernel.Word) (kernel.Word, error) {
	return c.aliasPage.Call(t, c.self, srcVaddr, kernel.Word(dstSpd), dstVaddr)
}

// AliasFrom aliases a mapping owned by srcSpd at srcVaddr (previously
// aliased to this client) into dstSpd; used to build alias chains.
func (c *Client) AliasFrom(t *kernel.Thread, srcSpd kernel.ComponentID, srcVaddr kernel.Word, dstSpd kernel.ComponentID, dstVaddr kernel.Word) (kernel.Word, error) {
	return c.aliasPage.Call(t, kernel.Word(srcSpd), srcVaddr, kernel.Word(dstSpd), dstVaddr)
}

// ReleasePage revokes this component's mapping at vaddr and its subtree.
func (c *Client) ReleasePage(t *kernel.Thread, vaddr kernel.Word) error {
	_, err := c.releasePage.Call(t, c.self, vaddr)
	return err
}

// ReleaseIn revokes a mapping in component spd at vaddr (for mappings this
// client created in other components).
func (c *Client) ReleaseIn(t *kernel.Thread, spd kernel.ComponentID, vaddr kernel.Word) error {
	_, err := c.releasePage.Call(t, kernel.Word(spd), vaddr)
	return err
}

package mm

import (
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

type rig struct {
	sys   *core.System
	comp  kernel.ComponentID
	owner *core.Client
	peer  *core.Client
	c     *Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	comp, err := Register(sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	owner, err := sys.NewClient("owner")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	peer, err := sys.NewClient("peer")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c, err := NewClient(owner, comp)
	if err != nil {
		t.Fatalf("NewClient(mm): %v", err)
	}
	return &rig{sys: sys, comp: comp, owner: owner, peer: peer, c: c}
}

func (r *rig) server(t *testing.T) *Server {
	t.Helper()
	svc, err := r.sys.Kernel().Service(r.comp)
	if err != nil {
		t.Fatalf("Service: %v", err)
	}
	type innerer interface{ Inner() kernel.Service }
	return svc.(innerer).Inner().(*Server)
}

func (r *rig) run(t *testing.T, body func(th *kernel.Thread)) {
	t.Helper()
	if _, err := r.sys.Kernel().CreateThread(nil, "main", 10, body); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := r.sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSpecMechanisms(t *testing.T) {
	spec, err := Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	for _, m := range []core.Mechanism{core.MechR0, core.MechT1, core.MechD0, core.MechD1} {
		if !spec.HasMechanism(m) {
			t.Errorf("mechanism %v missing; got %v", m, spec.Mechanisms())
		}
	}
	if spec.HasMechanism(core.MechT0) {
		t.Error("MM should not need T0 (no blocking)")
	}
	if spec.DescHasParent != core.ParentXC {
		t.Errorf("DescHasParent = %v; want XCParent", spec.DescHasParent)
	}
}

func TestGetAliasShareFrame(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		if _, err := r.c.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		if _, err := r.c.AliasPage(th, 0x1000, r.peer.ID(), 0x2000); err != nil {
			t.Errorf("AliasPage: %v", err)
			return
		}
		srv := r.server(t)
		f1, ok1 := srv.Frame(kernel.Word(r.owner.ID()), 0x1000)
		f2, ok2 := srv.Frame(kernel.Word(r.peer.ID()), 0x2000)
		if !ok1 || !ok2 || f1 != f2 {
			t.Errorf("frames = (%d,%v) vs (%d,%v); want shared", f1, ok1, f2, ok2)
		}
	})
}

func TestReleaseRevokesSubtree(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		if _, err := r.c.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		if _, err := r.c.AliasPage(th, 0x1000, r.peer.ID(), 0x2000); err != nil {
			t.Errorf("AliasPage: %v", err)
			return
		}
		if _, err := r.c.AliasFrom(th, r.peer.ID(), 0x2000, r.owner.ID(), 0x3000); err != nil {
			t.Errorf("AliasFrom: %v", err)
			return
		}
		srv := r.server(t)
		if srv.Mappings() != 3 {
			t.Errorf("mappings = %d; want 3", srv.Mappings())
		}
		if err := r.c.ReleasePage(th, 0x1000); err != nil {
			t.Errorf("ReleasePage: %v", err)
			return
		}
		if srv.Mappings() != 0 {
			t.Errorf("mappings after root release = %d; want 0 (recursive revocation)", srv.Mappings())
		}
		// The stub must also have dropped the whole subtree.
		if got := r.c.Stub().Tracked(); got != 0 {
			t.Errorf("tracked descriptors = %d; want 0", got)
		}
	})
}

func TestDoubleMapRejected(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		if _, err := r.c.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		if _, err := r.c.GetPage(th, 0x1000); err == nil {
			t.Error("double GetPage of same vaddr accepted")
		}
	})
}

func TestSameVaddrDifferentComponents(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		if _, err := r.c.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		// Alias to the peer at the same numeric vaddr: distinct namespace.
		if _, err := r.c.AliasPage(th, 0x1000, r.peer.ID(), 0x1000); err != nil {
			t.Errorf("AliasPage same vaddr in other component: %v", err)
		}
	})
}

// TestRecoveryRebuildsAliasChain: fault the MM after building a root + two
// chained aliases, then release the root. D0 forces the stub to recover the
// whole subtree (parents first, D1) before the recursive revocation.
func TestRecoveryRebuildsAliasChain(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		if _, err := r.c.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		if _, err := r.c.AliasPage(th, 0x1000, r.peer.ID(), 0x2000); err != nil {
			t.Errorf("AliasPage: %v", err)
			return
		}
		if _, err := r.c.AliasFrom(th, r.peer.ID(), 0x2000, r.owner.ID(), 0x3000); err != nil {
			t.Errorf("AliasFrom: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if err := r.c.ReleasePage(th, 0x1000); err != nil {
			t.Errorf("ReleasePage after fault: %v", err)
			return
		}
		srv := r.server(t)
		if srv.Mappings() != 0 {
			t.Errorf("mappings after recovered release = %d; want 0", srv.Mappings())
		}
		m := r.c.Stub().Metrics()
		if m.WalkSteps < 3 {
			t.Errorf("walk steps = %d; want ≥ 3 (root + two aliases rebuilt)", m.WalkSteps)
		}
	})
}

// TestRecoveryPreservesSharing: after recovery, re-aliased mappings must
// share a frame again.
func TestRecoveryPreservesSharing(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		if _, err := r.c.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		if _, err := r.c.AliasPage(th, 0x1000, r.peer.ID(), 0x2000); err != nil {
			t.Errorf("AliasPage: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Touching the alias recovers parent first, then the alias.
		if _, err := r.c.AliasFrom(th, r.peer.ID(), 0x2000, r.owner.ID(), 0x3000); err != nil {
			t.Errorf("AliasFrom after fault: %v", err)
			return
		}
		srv := r.server(t)
		f1, ok1 := srv.Frame(kernel.Word(r.owner.ID()), 0x1000)
		f2, ok2 := srv.Frame(kernel.Word(r.peer.ID()), 0x2000)
		f3, ok3 := srv.Frame(kernel.Word(r.owner.ID()), 0x3000)
		if !ok1 || !ok2 || !ok3 || f1 != f2 || f2 != f3 {
			t.Errorf("recovered frames = %d/%v %d/%v %d/%v; want all shared", f1, ok1, f2, ok2, f3, ok3)
		}
	})
}

// TestRebuildNotificationUpcall: recovering a mapping aliased into another
// component announces the rebuild with an upcall into that component
// (U0 for the MM, §II-D: "upcalls are made into client components in order
// to rebuild correct state between dependent mappings").
func TestRebuildNotificationUpcall(t *testing.T) {
	r := newRig(t)
	var notified []core.DescKey
	r.peer.Handle(core.FnRebuilt, func(th *kernel.Thread, args []kernel.Word) (kernel.Word, error) {
		notified = append(notified, core.DescKey{NS: args[1], ID: args[2]})
		return 0, nil
	})
	r.run(t, func(th *kernel.Thread) {
		if _, err := r.c.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		if _, err := r.c.AliasPage(th, 0x1000, r.peer.ID(), 0x2000); err != nil {
			t.Errorf("AliasPage: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Touch the alias: its recovery must notify the peer component.
		if _, err := r.c.AliasFrom(th, r.peer.ID(), 0x2000, r.owner.ID(), 0x3000); err != nil {
			t.Errorf("AliasFrom after fault: %v", err)
			return
		}
	})
	found := false
	for _, key := range notified {
		if key == (core.DescKey{NS: kernel.Word(r.peer.ID()), ID: 0x2000}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("peer never notified of its rebuilt mapping; got %v", notified)
	}
	if m := r.c.Stub().Metrics(); m.Upcalls == 0 {
		t.Error("no upcalls recorded in stub metrics")
	}
}

func TestWorkloadCleanRun(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	w := NewWorkload(4)
	if _, err := w.Build(sys); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestWorkloadSurvivesInjectedFault(t *testing.T) {
	for nth := 1; nth <= 13; nth += 2 {
		sys, err := core.NewSystem(core.OnDemand)
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		w := NewWorkload(4)
		comp, err := w.Build(sys)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		count := 0
		sys.Kernel().SetInvokeHook(func(th *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
			if c == comp && phase == kernel.PhaseEntry {
				count++
				if count == nth {
					if err := sys.Kernel().FailComponent(comp); err != nil {
						t.Errorf("FailComponent: %v", err)
					}
				}
			}
		})
		if err := sys.Kernel().Run(); err != nil {
			t.Fatalf("Run (fault at %d): %v", nth, err)
		}
		if err := w.Check(); err != nil {
			t.Fatalf("Check (fault at %d): %v", nth, err)
		}
	}
}

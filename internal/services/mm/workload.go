package mm

import (
	"errors"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/workload"
)

// Workload is the MM benchmark of §V-B: "A thread is granted memory pages,
// and these pages are aliased into a different component, and then revoked,
// which removes all aliases."
type Workload struct {
	iters  int
	rounds int
	runErr []error
}

var _ workload.Workload = (*Workload)(nil)

// NewWorkload builds an MM workload running iters grant/alias/revoke rounds.
func NewWorkload(iters int) workload.Workload {
	return &Workload{iters: iters}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "mm" }

// Target implements workload.Workload.
func (w *Workload) Target() string { return "mm" }

// Build implements workload.Workload.
func (w *Workload) Build(sys *core.System) (kernel.ComponentID, error) {
	comp, err := Register(sys)
	if err != nil {
		return 0, err
	}
	owner, err := sys.NewClient("mm-app")
	if err != nil {
		return 0, err
	}
	peer, err := sys.NewClient("mm-peer")
	if err != nil {
		return 0, err
	}
	c, err := NewClient(owner, comp)
	if err != nil {
		return 0, err
	}
	const base = 0x1000
	if _, err := sys.Kernel().CreateThread(nil, "mapper", 10, func(t *kernel.Thread) {
		for i := 0; i < w.iters; i++ {
			vaddr := kernel.Word(base + i*0x1000)
			if _, err := c.GetPage(t, vaddr); err != nil {
				w.runErr = append(w.runErr, fmt.Errorf("get_page %d: %w", i, err))
				return
			}
			// Alias the page into the peer component, and chain a second
			// alias from the peer's mapping back into a scratch region of
			// the owner, exercising cross-component parents.
			peerVaddr := kernel.Word(base + i*0x1000)
			if _, err := c.AliasPage(t, vaddr, peer.ID(), peerVaddr); err != nil {
				w.runErr = append(w.runErr, fmt.Errorf("alias %d: %w", i, err))
				return
			}
			chainVaddr := kernel.Word(0x8000_0000 + i*0x1000)
			if _, err := c.AliasFrom(t, peer.ID(), peerVaddr, owner.ID(), chainVaddr); err != nil {
				w.runErr = append(w.runErr, fmt.Errorf("alias chain %d: %w", i, err))
				return
			}
			// Revoke the root: the entire subtree must vanish.
			if err := c.ReleasePage(t, vaddr); err != nil {
				w.runErr = append(w.runErr, fmt.Errorf("release %d: %w", i, err))
				return
			}
			w.rounds++
		}
	}); err != nil {
		return 0, err
	}
	return comp, nil
}

// Check implements workload.Workload.
func (w *Workload) Check() error {
	if len(w.runErr) > 0 {
		return fmt.Errorf("mm workload errors: %w", errors.Join(w.runErr...))
	}
	if w.rounds != w.iters {
		return fmt.Errorf("mm workload incomplete: %d/%d rounds", w.rounds, w.iters)
	}
	return nil
}

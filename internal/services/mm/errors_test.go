package mm

import (
	"errors"
	"testing"

	"superglue/internal/kernel"
)

func TestDispatchArityAndUnknowns(t *testing.T) {
	r := newRig(t)
	k := r.sys.Kernel()
	r.run(t, func(th *kernel.Thread) {
		for _, tc := range []struct {
			fn   string
			args []kernel.Word
		}{
			{FnGetPage, []kernel.Word{1, 2}},
			{FnAliasPage, []kernel.Word{1, 2, 3}},
			{FnReleasePage, []kernel.Word{1}},
		} {
			if _, err := k.Invoke(th, r.comp, tc.fn, tc.args...); err == nil {
				t.Errorf("%s with %d args accepted", tc.fn, len(tc.args))
			}
		}
		if _, err := k.Invoke(th, r.comp, "mman_bogus"); !errors.Is(err, kernel.ErrNoSuchFunction) {
			t.Errorf("bogus fn err = %v", err)
		}
		// Alias from an unknown mapping and release of an unknown mapping
		// are EINVAL.
		if _, err := k.Invoke(th, r.comp, FnAliasPage, 1, 0x9999, 2, 0x1000); !errors.Is(err, kernel.ErrInvalidDescriptor) {
			t.Errorf("alias from unknown err = %v; want EINVAL", err)
		}
		if _, err := k.Invoke(th, r.comp, FnReleasePage, 1, 0x9999); !errors.Is(err, kernel.ErrInvalidDescriptor) {
			t.Errorf("release unknown err = %v; want EINVAL", err)
		}
		// Invalid virtual addresses are rejected.
		if _, err := k.Invoke(th, r.comp, FnGetPage, 1, 0, 0); err == nil {
			t.Error("get_page at vaddr 0 accepted")
		}
	})
}

func TestAliasCollisionRejected(t *testing.T) {
	r := newRig(t)
	r.run(t, func(th *kernel.Thread) {
		if _, err := r.c.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		if _, err := r.c.GetPage(th, 0x2000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		// Aliasing onto an existing mapping must fail.
		if _, err := r.c.AliasPage(th, 0x1000, r.owner.ID(), 0x2000); err == nil {
			t.Error("alias onto an existing mapping accepted")
		}
	})
}

func TestWorkloadMetadata(t *testing.T) {
	w := NewWorkload(2)
	if w.Name() != "mm" || w.Target() != "mm" {
		t.Errorf("metadata = %s/%s", w.Name(), w.Target())
	}
	if err := w.Check(); err == nil {
		t.Error("Check on unrun workload succeeded")
	}
}

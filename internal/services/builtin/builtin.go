// Package builtin enumerates the six embedded system-service IDL
// specifications in one fixed order, so every consumer — the sgc compiler,
// the drift checker, lint drivers — sees the same deterministic sequence.
package builtin

import (
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// Source is one embedded specification.
type Source struct {
	Service string
	IDL     string
}

// Sources returns the built-in specifications ordered by service name.
func Sources() []Source {
	return []Source{
		{Service: "event", IDL: event.IDLSource()},
		{Service: "lock", IDL: lock.IDLSource()},
		{Service: "mm", IDL: mm.IDLSource()},
		{Service: "ramfs", IDL: ramfs.IDLSource()},
		{Service: "sched", IDL: sched.IDLSource()},
		{Service: "timer", IDL: timer.IDLSource()},
	}
}

package event

import (
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

func newSys(t *testing.T) (*core.System, kernel.ComponentID) {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	comp, err := Register(sys)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	return sys, comp
}

func client(t *testing.T, sys *core.System, name string, comp kernel.ComponentID) *Client {
	t.Helper()
	cl, err := sys.NewClient(name)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c, err := NewClient(cl, comp)
	if err != nil {
		t.Fatalf("NewClient(event): %v", err)
	}
	return c
}

func TestSpecDerivesFullMechanismSet(t *testing.T) {
	spec, err := Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	// §V-C: "the event server relies on all mentioned recovery mechanisms,
	// except (D0)".
	for _, m := range []core.Mechanism{core.MechR0, core.MechT0, core.MechT1,
		core.MechD1, core.MechG0, core.MechU0} {
		if !spec.HasMechanism(m) {
			t.Errorf("mechanism %v missing; got %v", m, spec.Mechanisms())
		}
	}
	if spec.HasMechanism(core.MechD0) {
		t.Errorf("event spec should not need D0; got %v", spec.Mechanisms())
	}
}

func TestSplitTriggerWaitFree(t *testing.T) {
	sys, comp := newSys(t)
	c := client(t, sys, "app", comp)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := c.Split(th, 0, 0)
		if err != nil {
			t.Errorf("Split: %v", err)
			return
		}
		// Trigger first: wait should consume the pending trigger without
		// blocking.
		if _, err := c.Trigger(th, id); err != nil {
			t.Errorf("Trigger: %v", err)
		}
		if got, err := c.Wait(th, id); err != nil || got != id {
			t.Errorf("Wait = (%d, %v); want (%d, nil)", got, err, id)
		}
		if err := c.Free(th, id); err != nil {
			t.Errorf("Free: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCrossComponentWaitTrigger(t *testing.T) {
	sys, comp := newSys(t)
	waiter := client(t, sys, "waiter", comp)
	trigger := client(t, sys, "trigger", comp)
	k := sys.Kernel()
	var id kernel.Word
	woke := false
	if _, err := k.CreateThread(nil, "waiter", 9, func(th *kernel.Thread) {
		var err error
		id, err = waiter.Split(th, 0, 0)
		if err != nil {
			t.Errorf("Split: %v", err)
			return
		}
		if _, err := waiter.Wait(th, id); err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		woke = true
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "trigger", 10, func(th *kernel.Thread) {
		if n, err := trigger.Trigger(th, id); err != nil || n != 1 {
			t.Errorf("Trigger = (%d, %v); want (1, nil)", n, err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woke {
		t.Fatal("waiter never woke")
	}
}

func TestGroupParentChild(t *testing.T) {
	sys, comp := newSys(t)
	c := client(t, sys, "app", comp)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		root, err := c.Split(th, 0, 0)
		if err != nil {
			t.Errorf("Split root: %v", err)
			return
		}
		child, err := c.Split(th, root, 1)
		if err != nil {
			t.Errorf("Split child: %v", err)
			return
		}
		if child == root {
			t.Error("child id equals root id")
		}
		// Split from a bogus parent fails.
		if _, err := c.Split(th, 99999, 0); err == nil {
			t.Error("split from unknown parent accepted")
		}
		if err := c.Free(th, child); err != nil {
			t.Errorf("Free child: %v", err)
		}
		if err := c.Free(th, root); err != nil {
			t.Errorf("Free root: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestRecoveryAcrossComponentsWhileBlocked is the full Fig. 2(c) scenario: a
// waiter is blocked on a global event, the event manager crashes, and the
// trigger arrives from another component after the µ-reboot. Recovery must
// divert the waiter (T0), rebuild the descriptor via storage + upcall into
// the creator (G0/U0), and deliver the trigger.
func TestRecoveryAcrossComponentsWhileBlocked(t *testing.T) {
	sys, comp := newSys(t)
	waiter := client(t, sys, "waiter", comp)
	trigger := client(t, sys, "trigger", comp)
	k := sys.Kernel()
	var id kernel.Word
	woke := false
	if _, err := k.CreateThread(nil, "waiter", 9, func(th *kernel.Thread) {
		var err error
		id, err = waiter.Split(th, 0, 0)
		if err != nil {
			t.Errorf("Split: %v", err)
			return
		}
		if _, err := waiter.Wait(th, id); err != nil {
			t.Errorf("Wait across fault: %v", err)
			return
		}
		woke = true
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "injector", 10, func(th *kernel.Thread) {
		// Waiter (higher prio) is now blocked inside the event manager.
		if err := k.FailComponent(comp); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := k.Reboot(th, comp); err != nil {
			t.Errorf("Reboot: %v", err)
		}
		// Now trigger from the other component using the stale global ID.
		if _, err := trigger.Trigger(th, id); err != nil {
			t.Errorf("Trigger after reboot (G0 path): %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woke {
		t.Fatal("waiter never woke after recovery")
	}
}

func TestWorkloadCleanRun(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	w := NewWorkload(5)
	if _, err := w.Build(sys); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestWorkloadSurvivesInjectedFault(t *testing.T) {
	for _, nth := range []int{3, 5, 9, 12} {
		sys, err := core.NewSystem(core.OnDemand)
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		w := NewWorkload(5)
		comp, err := w.Build(sys)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		count := 0
		sys.Kernel().SetInvokeHook(func(th *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
			if c == comp && phase == kernel.PhaseEntry {
				count++
				if count == nth {
					if err := sys.Kernel().FailComponent(comp); err != nil {
						t.Errorf("FailComponent: %v", err)
					}
				}
			}
		})
		if err := sys.Kernel().Run(); err != nil {
			t.Fatalf("Run (fault at invocation %d): %v", nth, err)
		}
		if err := w.Check(); err != nil {
			t.Fatalf("Check (fault at invocation %d): %v", nth, err)
		}
	}
}

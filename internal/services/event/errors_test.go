package event

import (
	"errors"
	"testing"

	"superglue/internal/kernel"
)

func TestDispatchArityAndUnknowns(t *testing.T) {
	sys, comp := newSys(t)
	k := sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		for _, tc := range []struct {
			fn   string
			args []kernel.Word
		}{
			{FnSplit, []kernel.Word{1}},
			{FnWait, []kernel.Word{1}},
			{FnTrigger, nil},
			{FnFree, []kernel.Word{1}},
		} {
			if _, err := k.Invoke(th, comp, tc.fn, tc.args...); err == nil {
				t.Errorf("%s with %d args accepted", tc.fn, len(tc.args))
			}
		}
		if _, err := k.Invoke(th, comp, "evt_bogus"); !errors.Is(err, kernel.ErrNoSuchFunction) {
			t.Errorf("bogus fn err = %v", err)
		}
		for _, fn := range []string{FnWait, FnTrigger, FnFree} {
			if _, err := k.Invoke(th, comp, fn, 1, 999); !errors.Is(err, kernel.ErrInvalidDescriptor) {
				t.Errorf("%s on unknown id err = %v; want EINVAL", fn, err)
			}
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFreeWithWaitersRejected(t *testing.T) {
	sys, comp := newSys(t)
	c := client(t, sys, "app", comp)
	k := sys.Kernel()
	var id kernel.Word
	if _, err := k.CreateThread(nil, "waiter", 9, func(th *kernel.Thread) {
		var err error
		id, err = c.Split(th, 0, 0)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if _, err := c.Wait(th, id); err != nil {
			t.Errorf("wait: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "freer", 10, func(th *kernel.Thread) {
		if err := c.Free(th, id); err == nil {
			t.Error("free of event with waiters accepted")
		}
		if _, err := c.Trigger(th, id); err != nil {
			t.Errorf("trigger: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := NewWorkload(2)
	if w.Name() != "event" || w.Target() != "event" {
		t.Errorf("metadata = %s/%s", w.Name(), w.Target())
	}
	if err := w.Check(); err == nil {
		t.Error("Check on unrun workload succeeded")
	}
}

package event

import (
	"errors"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/workload"
)

// Workload is the event benchmark of §V-B: "A thread is blocked waiting for
// an event and the other thread triggers the event from a different
// component" — exercising the global-descriptor path, since the waiter's
// component creates the event and the triggering component only knows its
// ID.
type Workload struct {
	iters    int
	waits    int
	triggers int
	runErr   []error
}

var _ workload.Workload = (*Workload)(nil)

// readyYieldBudget bounds how long the trigger thread waits for the
// waiter to publish the event ID; legitimate runs need only a handful of
// scheduler passes, so hitting the budget means the waiter is stuck.
const readyYieldBudget = 1000

// NewWorkload builds an event workload running iters wait/trigger rounds.
func NewWorkload(iters int) workload.Workload {
	return &Workload{iters: iters}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "event" }

// Target implements workload.Workload.
func (w *Workload) Target() string { return "event" }

// Build implements workload.Workload.
func (w *Workload) Build(sys *core.System) (kernel.ComponentID, error) {
	comp, err := Register(sys)
	if err != nil {
		return 0, err
	}
	waiterCl, err := sys.NewClient("evt-waiter")
	if err != nil {
		return 0, err
	}
	waiter, err := NewClient(waiterCl, comp)
	if err != nil {
		return 0, err
	}
	triggerCl, err := sys.NewClient("evt-trigger")
	if err != nil {
		return 0, err
	}
	trigger, err := NewClient(triggerCl, comp)
	if err != nil {
		return 0, err
	}
	k := sys.Kernel()

	var evt kernel.Word
	ready := false
	// The waiter creates the event and waits repeatedly (higher priority:
	// it runs first, blocks, and the trigger thread then fires).
	if _, err := k.CreateThread(nil, "waiter", 9, func(t *kernel.Thread) {
		id, err := waiter.Split(t, 0, 0)
		if err != nil {
			w.fail(fmt.Errorf("split: %w", err))
			return
		}
		evt = id
		ready = true
		for i := 0; i < w.iters; i++ {
			if _, err := waiter.Wait(t, evt); err != nil {
				w.fail(fmt.Errorf("wait %d: %w", i, err))
				return
			}
			w.waits++
		}
		if err := waiter.Free(t, evt); err != nil {
			w.fail(fmt.Errorf("free: %w", err))
		}
	}); err != nil {
		return 0, err
	}
	// The triggering thread lives in a different component and addresses
	// the event only by its global ID. The wait for the waiter to publish
	// that ID is bounded: in a fault-free run the higher-priority waiter
	// sets ready within a few scheduler passes, but an injected fault can
	// hang the waiter inside its first Split — an unbounded yield loop
	// here would then spin forever and, by staying runnable, mask the hang
	// from the kernel's deadlock detection. Giving up converts that
	// livelock into a detectable system hang.
	if _, err := k.CreateThread(nil, "trigger", 10, func(t *kernel.Thread) {
		for n := 0; !ready; n++ {
			if n == readyYieldBudget {
				w.fail(fmt.Errorf("event not published after %d yields (waiter stuck)", n))
				return
			}
			if err := k.Yield(t); err != nil {
				w.fail(err)
				return
			}
		}
		for i := 0; i < w.iters; i++ {
			if _, err := trigger.Trigger(t, evt); err != nil {
				w.fail(fmt.Errorf("trigger %d: %w", i, err))
				return
			}
			w.triggers++
		}
	}); err != nil {
		return 0, err
	}
	return comp, nil
}

func (w *Workload) fail(err error) { w.runErr = append(w.runErr, err) }

// Check implements workload.Workload.
func (w *Workload) Check() error {
	if len(w.runErr) > 0 {
		return fmt.Errorf("event workload errors: %w", errors.Join(w.runErr...))
	}
	if w.waits != w.iters || w.triggers != w.iters {
		return fmt.Errorf("event workload incomplete: %d/%d waits, %d/%d triggers",
			w.waits, w.iters, w.triggers, w.iters)
	}
	return nil
}

// Package event implements the event notification component: split (create)
// / wait / trigger / free over globally addressable event descriptors, the
// running example of the paper's Fig. 3. Events may form parent/child
// groups (evt_split takes a parent event), threads block in evt_wait, and a
// trigger from any component wakes them.
//
// Because descriptors are global (G_dr), the event manager exercises the
// full recovery stack: T0 eager wakeups, R0/T1 replay, D1 parent ordering,
// and G0/U0 creator-upcall recovery through the storage component — which is
// why Fig. 6(b) reports it as the most expensive service to recover.
package event

import (
	_ "embed"
	"fmt"

	"superglue/internal/core"
	"superglue/internal/idl"
	"superglue/internal/kernel"
)

//go:embed event.sg
var idlSrc string

// Interface function names.
const (
	FnSplit   = "evt_split"
	FnWait    = "evt_wait"
	FnTrigger = "evt_trigger"
	FnFree    = "evt_free"
)

// Spec parses the component's IDL specification.
func Spec() (*core.Spec, error) {
	return idl.Parse("event", idlSrc)
}

// IDLSource returns the raw IDL text.
func IDLSource() string { return idlSrc }

// Register boots the event component into a system.
func Register(sys *core.System) (kernel.ComponentID, error) {
	spec, err := Spec()
	if err != nil {
		return 0, err
	}
	comp, err := sys.RegisterServer(spec, func() kernel.Service { return &Server{} })
	if err != nil {
		return 0, err
	}
	// Watchdog budget: event operations walk waiter lists and groups.
	if err := sys.Kernel().SetInvokeBudget(comp, 300); err != nil {
		return 0, err
	}
	return comp, nil
}

// evtState is one event's server-side state.
type evtState struct {
	creator  kernel.Word
	parent   kernel.Word
	grp      kernel.Word
	pending  int // triggers not yet consumed by a wait
	waiters  []kernel.ThreadID
	children map[kernel.Word]bool
}

// Server is the event component's implementation.
type Server struct {
	k    *kernel.Kernel
	self kernel.ComponentID
	next kernel.Word
	evts map[kernel.Word]*evtState
}

var _ kernel.Service = (*Server)(nil)

// Name implements kernel.Service.
func (s *Server) Name() string { return "event" }

// Init implements kernel.Service.
func (s *Server) Init(bc *kernel.BootContext) error {
	s.k = bc.Kernel
	s.self = bc.Self
	s.evts = make(map[kernel.Word]*evtState)
	s.next = kernel.Word(bc.Epoch) << 20
	return nil
}

// Events returns the number of live events (reflection/testing).
func (s *Server) Events() int { return len(s.evts) }

// Dispatch implements kernel.Service.
func (s *Server) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("event: %s needs %d args, got %d", fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case FnSplit:
		if err := need(3); err != nil {
			return 0, err
		}
		parent := args[1]
		if parent > 0 {
			p, ok := s.evts[parent]
			if !ok {
				return 0, kernel.ErrInvalidDescriptor
			}
			defer func() { p.children[s.next] = true }()
		}
		s.next++
		s.evts[s.next] = &evtState{
			creator:  args[0],
			parent:   parent,
			grp:      args[2],
			children: make(map[kernel.Word]bool),
		}
		return s.next, nil
	case FnWait:
		if err := need(2); err != nil {
			return 0, err
		}
		return s.wait(t, args[1])
	case FnTrigger:
		if err := need(2); err != nil {
			return 0, err
		}
		return s.trigger(t, args[1])
	case FnFree:
		if err := need(2); err != nil {
			return 0, err
		}
		e, ok := s.evts[args[1]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		if len(e.waiters) > 0 {
			return 0, fmt.Errorf("event: freeing event %d with %d waiters", args[1], len(e.waiters))
		}
		if p, ok := s.evts[e.parent]; ok {
			delete(p.children, args[1])
		}
		delete(s.evts, args[1])
		return 0, nil
	default:
		return 0, kernel.DispatchError("event", fn)
	}
}

func (s *Server) wait(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	e, ok := s.evts[id]
	if !ok {
		return 0, kernel.ErrInvalidDescriptor
	}
	if e.pending == 0 {
		e.waiters = append(e.waiters, t.ID())
		if err := s.k.Block(t); err != nil {
			return 0, err // diverted by µ-reboot; client stub recovers
		}
		// A wakeup means the event fired. The trigger may have been
		// delivered to a previous instance of this component (recovery
		// re-latches it), so do not insist on a pending count: being woken
		// is the delivery.
		e, ok = s.evts[id]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		e.removeWaiter(t.ID())
		if e.pending > 0 {
			e.pending--
		}
		return id, nil
	}
	e.pending--
	return id, nil
}

func (s *Server) trigger(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	e, ok := s.evts[id]
	if !ok {
		return 0, kernel.ErrInvalidDescriptor
	}
	e.pending++
	woken := kernel.Word(len(e.waiters))
	waiters := e.waiters
	e.waiters = nil
	for _, w := range waiters {
		if err := s.k.Wakeup(t, w); err != nil {
			return 0, err
		}
	}
	return woken, nil
}

func (e *evtState) removeWaiter(id kernel.ThreadID) {
	for i, w := range e.waiters {
		if w == id {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return
		}
	}
}

// Client is the typed client API for the event component. Each
// interface function is bound once at construction (core.BoundCall), so
// the per-call path pays no function-name lookup.
type Client struct {
	stub *core.ClientStub
	self kernel.Word

	split, wait, trigger, free *core.BoundCall
}

// NewClient binds a client component to the event server.
func NewClient(cl *core.Client, server kernel.ComponentID) (*Client, error) {
	stub, err := cl.Stub(server)
	if err != nil {
		return nil, err
	}
	c := &Client{stub: stub, self: kernel.Word(cl.ID())}
	for _, b := range []struct {
		fn  string
		dst **core.BoundCall
	}{{FnSplit, &c.split}, {FnWait, &c.wait}, {FnTrigger, &c.trigger}, {FnFree, &c.free}} {
		if *b.dst, err = stub.Bind(b.fn); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Stub exposes the underlying stub.
func (c *Client) Stub() *core.ClientStub { return c.stub }

// Split creates a new event descriptor; parent ≤ 0 creates a root event.
func (c *Client) Split(t *kernel.Thread, parent, grp kernel.Word) (kernel.Word, error) {
	return c.split.Call(t, c.self, parent, grp)
}

// Wait blocks until the event is triggered (or consumes a pending trigger).
func (c *Client) Wait(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	return c.wait.Call(t, c.self, id)
}

// Trigger fires the event, waking all waiters; returns the number woken.
func (c *Client) Trigger(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	return c.trigger.Call(t, c.self, id)
}

// Free destroys the event descriptor.
func (c *Client) Free(t *kernel.Thread, id kernel.Word) error {
	_, err := c.free.Call(t, c.self, id)
	return err
}

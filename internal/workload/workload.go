// Package workload defines the interface the fault-injection campaign and
// the micro-benchmarks use to drive the per-service workloads of §V-B.
package workload

import (
	"superglue/internal/core"
	"superglue/internal/kernel"
)

// Workload is one benchmark workload targeting a specific system service.
// A workload instance is single-use: Build wires it into a fresh system,
// kernel.Run executes it, and Check validates that the run abided by the
// workload's specification (the paper's criterion for a successful
// recovery).
type Workload interface {
	// Name is the workload's short name (e.g. "lock").
	Name() string
	// Target is the service name of the fault-injection target.
	Target() string
	// Build registers the servers and client threads the workload needs
	// into sys and returns the target component's ID. After Build, the
	// system is started with sys.Kernel().Run().
	Build(sys *core.System) (kernel.ComponentID, error)
	// Check reports whether the completed run satisfied the workload's
	// specification (all iterations done, invariants held).
	Check() error
}

// Factory constructs a fresh workload for one campaign trial.
type Factory func(iters int) Workload

package webserver

import (
	"fmt"
	"testing"
)

func TestHangProbe(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		for _, c := range []int{1, 2, 4} {
			for _, r := range []int{600, 2000} {
				name := fmt.Sprintf("w%dc%dr%d", w, c, r)
				t.Run(name, func(t *testing.T) {
					res, err := Run(Config{Variant: VariantSuperGlue, Requests: r, Workers: w, Cores: c, FaultEvery: r / 10})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if res.Completed != r {
						t.Fatalf("%s: completed %d of %d (errors %d)", name, res.Completed, r, res.Errors)
					}
				})
			}
		}
	}
}

package webserver

import (
	"bytes"
	"testing"
)

// FuzzParseRequest drives the HTTP request parser with arbitrary bytes
// (run with `go test -fuzz=FuzzParseRequest ./internal/webserver`).
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	f.Add([]byte("HEAD /a.html HTTP/1.0\r\n\r\n"))
	f.Add([]byte("POST / HTTP/1.1\r\n\r\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("GET  HTTP/1.1"))
	f.Add(FormatRequest("/index.html", true))
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := ParseRequest(raw)
		if err != nil {
			return
		}
		if req.Method != "GET" && req.Method != "HEAD" {
			t.Fatalf("accepted method %q", req.Method)
		}
		if len(req.Path) == 0 || req.Path[0] != '/' {
			t.Fatalf("accepted path %q", req.Path)
		}
	})
}

// FuzzResponseRoundTrip checks response framing against arbitrary bodies.
func FuzzResponseRoundTrip(f *testing.F) {
	f.Add(200, []byte("hello"))
	f.Add(404, []byte{})
	f.Add(500, []byte{0, 1, 2, 255})
	f.Fuzz(func(t *testing.T, code int, body []byte) {
		if code < 100 || code > 599 {
			return
		}
		resp := FormatResponse(code, body)
		got, err := ParseResponseStatus(resp)
		if err != nil || got != code {
			t.Fatalf("status round trip = (%d, %v); want %d", got, err, code)
		}
		if !bytes.Equal(ResponseBody(resp), body) {
			t.Fatalf("body round trip mismatch")
		}
	})
}

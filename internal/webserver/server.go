package webserver

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

// Config parameterizes one web-server benchmark run.
type Config struct {
	// Variant selects the stub configuration.
	Variant Variant
	// Workers is the number of worker threads serving requests.
	Workers int
	// Requests is the total request count (the paper's ab run uses 50000).
	Requests int
	// Files is the site's content, preloaded into the RAM filesystem.
	Files map[string][]byte
	// FaultEvery, when positive, fails one system component (rotating over
	// the five services) every FaultEvery completed requests — the Fig. 7
	// "crash injected every 10 seconds" variant. Requires a recovery
	// variant (C3 or SuperGlue).
	FaultEvery int
	// CorrelatedEvery, when positive, injects a correlated burst every
	// CorrelatedEvery completed requests: a rotating backing service and
	// the storage component fail together, so recovery of the service
	// runs against a freshly crashed dependency (the common-cause case
	// shaped SWIFI campaigns stress). Requires the SuperGlue variant.
	CorrelatedEvery int
	// HangEvery, when positive, hangs a thread inside one backing service
	// (rotating over lock, event, fs, timer) every HangEvery completed
	// requests: the latent-fault variant of the crasher. Requires Watchdog
	// and the SuperGlue variant — without the watchdog a single hang
	// wedges the machine.
	HangEvery int
	// Watchdog enables the kernel watchdog, turning hangs in backing
	// services into recoverable component faults mid-request.
	Watchdog bool
	// Mode is the recovery mode for the SuperGlue variant.
	Mode core.RecoveryMode
	// BucketSize is the completions-per-timeline-bucket granularity.
	BucketSize int
	// Cores is the simulated core count (0 or 1 = the legacy single-core
	// machine). With more cores the backing services are placed round-robin
	// on cores 1..Cores-1 and the worker threads are spread over every
	// core, so requests exercise cross-core synchronous invocations.
	// Execution stays globally serialized (the simulator models one running
	// thread), so extra cores add migration modeling, not wall-clock
	// parallelism.
	Cores int
	// Replicas is the storage replication factor (0 or 1 = the legacy
	// single-copy store). With more replicas the correlated bursts fail a
	// storage replica inside the store instead of the storage component,
	// so recovery runs under quorum (see docs/STORAGE.md).
	Replicas int
}

// Stats reports one run's outcome.
type Stats struct {
	Variant   Variant
	Completed int
	Errors    int
	Faults    int
	// CorrelatedBursts counts injected service+storage double faults
	// (CorrelatedEvery).
	CorrelatedBursts int
	// Hangs counts injected latent faults (HangEvery).
	Hangs int
	// Degraded counts requests answered 503-style because a backing
	// service exhausted its recovery budget (core.ErrDegraded); every
	// degraded request is also counted in Errors.
	Degraded   int
	Elapsed    time.Duration
	Throughput float64 // requests per wall-clock second
	// Cores is the simulated core count the run used.
	Cores int
	// VirtualTicks is the final virtual clock of the run's machine: the
	// dispatch quanta, sleeps, and migration charges the request stream
	// consumed (0 for the baseline variant, which has no machine).
	VirtualTicks kernel.Time
	// Migrations counts cross-core thread migrations over every core
	// (0 on a single-core machine).
	Migrations uint64
	// Timeline records the elapsed wall time at each completion bucket,
	// showing recovery dips.
	Timeline []BucketPoint
}

// BucketPoint is one timeline sample.
type BucketPoint struct {
	Completed int
	Elapsed   time.Duration
}

// DefaultFiles builds a small deterministic site.
func DefaultFiles() map[string][]byte {
	files := make(map[string][]byte)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("/f%d.html", i)
		body := bytes.Repeat([]byte(fmt.Sprintf("<p>page %d</p>", i)), 4*(i+1))
		files[name] = body
	}
	files["/index.html"] = []byte("<html><body>superglue-ws</body></html>")
	return files
}

// Run executes one benchmark run and returns its stats.
func Run(cfg Config) (*Stats, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Files == nil {
		cfg.Files = DefaultFiles()
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.OnDemand
	}
	if cfg.BucketSize <= 0 {
		cfg.BucketSize = cfg.Requests / 20
		if cfg.BucketSize == 0 {
			cfg.BucketSize = 1
		}
	}
	if cfg.FaultEvery > 0 && cfg.Variant != VariantC3 && cfg.Variant != VariantSuperGlue {
		return nil, errors.New("webserver: fault injection requires a recovery variant")
	}
	if cfg.HangEvery > 0 && (!cfg.Watchdog || cfg.Variant != VariantSuperGlue) {
		return nil, errors.New("webserver: hang injection requires the watchdog and the SuperGlue variant")
	}
	if cfg.CorrelatedEvery > 0 && cfg.Variant != VariantSuperGlue {
		return nil, errors.New("webserver: correlated bursts require the SuperGlue variant")
	}
	if cfg.Variant == VariantBaseline {
		return runBaseline(cfg)
	}
	return runComponentized(cfg)
}

// paths returns the site's paths, sorted for determinism.
func paths(files map[string][]byte) []string {
	out := make([]string, 0, len(files))
	for p := range files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// runComponentized serves the request stream through the component
// substrate.
func runComponentized(cfg Config) (*Stats, error) {
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	sys, err := core.NewSystemWithStorage(cfg.Mode, cores, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	svc, ids, err := buildSubstrate(sys, cfg.Variant)
	if err != nil {
		return nil, err
	}
	if cores > 1 {
		// Spread the backing services over cores 1..cores-1, keeping core 0
		// for the application threads: every request now crosses cores.
		comps := []kernel.ComponentID{ids.lock, ids.evt, ids.fs, ids.timer, ids.sched}
		for i, comp := range comps {
			if err := sys.PlaceServer(comp, 1+i%(cores-1)); err != nil {
				return nil, err
			}
		}
	}
	k := sys.Kernel()
	if cfg.Watchdog {
		k.EnableWatchdog(kernel.WatchdogConfig{})
	}
	stats := &Stats{Variant: cfg.Variant}
	site := paths(cfg.Files)

	// The pre-rendered request stream ("network input").
	reqs := make([][]byte, cfg.Requests)
	for i := range reqs {
		reqs[i] = FormatRequest(site[i%len(site)], true)
	}
	next := 0 // next request index to hand out

	var (
		start      time.Time
		cacheLock  kernel.Word
		fdCache    = make(map[string]kernel.Word)
		workerEvts = make([]kernel.Word, cfg.Workers)
		runErrs    []error
		done       = false
	)
	fail := func(err error) { runErrs = append(runErrs, err) }

	// serve handles one request through the full component path.
	serve := func(t *kernel.Thread, raw []byte) {
		req, err := ParseRequest(raw)
		if err != nil {
			stats.Errors++
			return
		}
		body, found, err := readFile(t, svc, cacheLock, fdCache, req.Path)
		if err != nil {
			if errors.Is(err, core.ErrDegraded) {
				// Graceful degradation: the backing service exhausted its
				// recovery budget, so this request gets a 503 — but the
				// server (and the machine) keep going.
				stats.Degraded++
				stats.Errors++
				return
			}
			fail(fmt.Errorf("serve %s: %w", req.Path, err))
			stats.Errors++
			return
		}
		var resp []byte
		if !found {
			resp = FormatResponse(404, []byte("not found"))
		} else {
			resp = FormatResponse(200, body)
		}
		if code, err := ParseResponseStatus(resp); err != nil || (code != 200 && code != 404) {
			stats.Errors++
			return
		}
		stats.Completed++
		if stats.Completed%cfg.BucketSize == 0 {
			stats.Timeline = append(stats.Timeline, BucketPoint{Completed: stats.Completed, Elapsed: time.Since(start)})
		}
	}

	// Workers: wait on their event, pull the next request, serve. They are
	// created by the loader once the events exist — on a multi-core machine
	// a worker created at build time could be dispatched on its own core
	// before the loader finished the setup.
	workersDone := 0
	createWorkers := func(creator *kernel.Thread) {
		for w := 0; w < cfg.Workers; w++ {
			w := w
			if _, err := k.CreateThreadOn(creator, fmt.Sprintf("worker%d", w), 10, w%cores, func(t *kernel.Thread) {
				defer func() { workersDone++ }()
				if _, err := svc.sched.Setup(t, t.Prio()); err != nil {
					fail(fmt.Errorf("worker%d setup: %w", w, err))
					return
				}
				for {
					if _, err := svc.evt.Wait(t, workerEvts[w]); err != nil {
						fail(fmt.Errorf("worker%d wait: %w", w, err))
						return
					}
					if next >= len(reqs) {
						return
					}
					raw := reqs[next]
					next++
					serve(t, raw)
				}
			}); err != nil {
				fail(fmt.Errorf("worker%d create: %w", w, err))
				return
			}
		}
	}

	// hangAt is the armed hang target (zero = disarmed); the invoke hook
	// installed below (HangEvery) fires it.
	var hangAt kernel.ComponentID

	// launchAux creates the netif, housekeeper, and fault-injection threads.
	// Like the workers, they start only after the loader finished the setup:
	// on a multi-core machine a build-time thread could be dispatched while
	// the loader is parked on a cross-core invocation, and would then trip
	// over half-initialized events.
	launchAux := func(creator *kernel.Thread) {
		// Netif: trigger one worker event per request arrival, round-robin;
		// then keep nudging the worker events until every worker has observed
		// the end of the stream (a µ-reboot can wipe an undelivered pending
		// trigger, so the shutdown must re-trigger rather than fire-and-forget).
		if _, err := k.CreateThread(creator, "netif", 11, func(t *kernel.Thread) {
			for i := 0; i < cfg.Requests; i++ {
				if _, err := svc.evt.Trigger(t, workerEvts[i%cfg.Workers]); err != nil {
					fail(fmt.Errorf("netif trigger: %w", err))
					return
				}
				if i%64 == 63 {
					if err := k.Yield(t); err != nil {
						return
					}
				}
			}
			for workersDone < cfg.Workers {
				for w := 0; w < cfg.Workers; w++ {
					if _, err := svc.evt.Trigger(t, workerEvts[w]); err != nil {
						fail(fmt.Errorf("netif final trigger: %w", err))
						return
					}
				}
				if err := k.Yield(t); err != nil {
					return
				}
			}
			done = true
		}); err != nil {
			fail(fmt.Errorf("netif create: %w", err))
			return
		}

		// Housekeeper: a periodic timer tick (connection-timeout scanning in
		// a real server); fires at quiescent points.
		if _, err := k.CreateThread(creator, "housekeeper", 12, func(t *kernel.Thread) {
			id, err := svc.timer.Alloc(t, 50_000)
			if err != nil {
				fail(fmt.Errorf("housekeeper: %w", err))
				return
			}
			for !done {
				if _, err := svc.timer.Wait(t, id); err != nil {
					fail(fmt.Errorf("housekeeper wait: %w", err))
					return
				}
			}
		}); err != nil {
			fail(fmt.Errorf("housekeeper create: %w", err))
			return
		}

		// Crasher: periodically fail a rotating system component (the Fig. 7
		// fault-injection variant).
		if cfg.FaultEvery > 0 {
			if _, err := k.CreateThread(creator, "crasher", 11, func(t *kernel.Thread) {
				targets := []kernel.ComponentID{ids.lock, ids.evt, ids.fs, ids.timer, ids.sched}
				nextFault := cfg.FaultEvery
				// The spin also stops on a run error: with the serving threads
				// dead, a yield loop would otherwise keep the machine runnable
				// forever and turn the failure into a livelock.
				for i := 0; !done && len(runErrs) == 0; i++ {
					if stats.Completed >= nextFault {
						target := targets[stats.Faults%len(targets)]
						if err := k.FailComponent(target); err != nil {
							fail(fmt.Errorf("crasher: %w", err))
							return
						}
						stats.Faults++
						nextFault += cfg.FaultEvery
					}
					if err := k.Yield(t); err != nil {
						return
					}
				}
			}); err != nil {
				fail(fmt.Errorf("crasher create: %w", err))
				return
			}
		}

		// Burster: periodically fail a rotating backing service together with
		// the storage component — a correlated double fault, so the service's
		// recovery (which leans on storage for G0/G1 restores) immediately
		// trips over its crashed dependency and must reboot it first.
		if cfg.CorrelatedEvery > 0 {
			if _, err := k.CreateThread(creator, "burster", 11, func(t *kernel.Thread) {
				targets := []kernel.ComponentID{ids.lock, ids.evt, ids.fs, ids.timer}
				nextBurst := cfg.CorrelatedEvery
				for !done && len(runErrs) == 0 {
					if stats.Completed >= nextBurst {
						target := targets[stats.CorrelatedBursts%len(targets)]
						if err := k.FailComponent(target); err != nil {
							fail(fmt.Errorf("burster: %w", err))
							return
						}
						if st := sys.Store(); st.Replicas() > 1 {
							// Replicated store: the storage half of the burst
							// fail-stops one replica (rotating), so the service
							// recovery proceeds under a degraded quorum and the
							// store µ-reboots the replica on its next operation.
							st.CrashReplica(stats.CorrelatedBursts % st.Replicas())
						} else if err := k.FailComponent(sys.StorageComp()); err != nil {
							fail(fmt.Errorf("burster storage: %w", err))
							return
						}
						stats.CorrelatedBursts++
						nextBurst += cfg.CorrelatedEvery
					}
					if err := k.Yield(t); err != nil {
						return
					}
				}
			}); err != nil {
				fail(fmt.Errorf("burster create: %w", err))
				return
			}
		}

		// Hangler: periodically wedge a thread inside a rotating backing
		// service (the latent-fault variant of the crasher). The hook fires
		// the hang at the next invocation entry into the armed target, on
		// whichever thread performs it; the watchdog then attributes it,
		// fails the component, and the stub recovers mid-request. Only
		// services on the per-request path are targeted — sched is invoked
		// at setup only, so a hang armed on it would never fire.
		if cfg.HangEvery > 0 {
			hangTargets := []kernel.ComponentID{ids.lock, ids.evt, ids.fs, ids.timer}
			if _, err := k.CreateThread(creator, "hangler", 11, func(t *kernel.Thread) {
				nextHang := cfg.HangEvery
				for !done && len(runErrs) == 0 {
					if hangAt == 0 && stats.Completed >= nextHang {
						hangAt = hangTargets[stats.Hangs%len(hangTargets)]
						nextHang += cfg.HangEvery
					}
					if err := k.Yield(t); err != nil {
						return
					}
				}
			}); err != nil {
				fail(fmt.Errorf("hangler create: %w", err))
				return
			}
		}
	}

	// Loader: preload the site into the RAM filesystem, create the cache
	// lock, the per-worker request events, and then the workers themselves;
	// runs to completion first (highest priority).
	if _, err := k.CreateThread(nil, "loader", 1, func(t *kernel.Thread) {
		for _, p := range site {
			fd, err := svc.fs.Open(t, p)
			if err != nil {
				fail(fmt.Errorf("loader open %s: %w", p, err))
				return
			}
			if _, err := svc.fs.Write(t, fd, cfg.Files[p]); err != nil {
				fail(fmt.Errorf("loader write %s: %w", p, err))
				return
			}
			if err := svc.fs.Close(t, fd); err != nil {
				fail(fmt.Errorf("loader close %s: %w", p, err))
				return
			}
		}
		id, err := svc.lock.Alloc(t)
		if err != nil {
			fail(fmt.Errorf("loader lock: %w", err))
			return
		}
		cacheLock = id
		for i := range workerEvts {
			evt, err := svc.evt.Split(t, 0, kernel.Word(i))
			if err != nil {
				fail(fmt.Errorf("loader evt %d: %w", i, err))
				return
			}
			workerEvts[i] = evt
		}
		createWorkers(t)
		launchAux(t)
		start = time.Now()
	}); err != nil {
		return nil, err
	}

	if cfg.HangEvery > 0 {
		k.SetInvokeHook(func(t *kernel.Thread, comp kernel.ComponentID, fn string, phase kernel.InvokePhase) {
			if phase != kernel.PhaseEntry || comp != hangAt || hangAt == 0 {
				return
			}
			hangAt = 0
			stats.Hangs++
			k.HangCurrent(t)
		})
	}

	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("webserver: %v run: %w", cfg.Variant, err)
	}
	if len(runErrs) > 0 {
		return nil, fmt.Errorf("webserver: %v: %w", cfg.Variant, errors.Join(runErrs...))
	}
	stats.Elapsed = time.Since(start)
	if stats.Elapsed > 0 {
		stats.Throughput = float64(stats.Completed) / stats.Elapsed.Seconds()
	}
	stats.Cores = cores
	stats.VirtualTicks = k.Now()
	for _, cs := range k.CoreStats() {
		stats.Migrations += cs.Migrations
	}
	return stats, nil
}

// readFile serves one path through the fd cache: the cache lock guards both
// the path→fd map and the shared descriptor's offset.
func readFile(t *kernel.Thread, svc *services, cacheLock kernel.Word, fdCache map[string]kernel.Word, path string) ([]byte, bool, error) {
	if err := svc.lock.Take(t, cacheLock); err != nil {
		return nil, false, err
	}
	release := func() error { return svc.lock.Release(t, cacheLock) }

	fd, ok := fdCache[path]
	if !ok {
		var err error
		fd, err = svc.fs.Open(t, path)
		if err != nil {
			_ = release()
			return nil, false, err
		}
		fdCache[path] = fd
	}
	if _, err := svc.fs.Lseek(t, fd, 0); err != nil {
		_ = release()
		return nil, false, err
	}
	body, err := svc.fs.Read(t, fd, 64*1024)
	if err != nil {
		_ = release()
		return nil, false, err
	}
	if err := release(); err != nil {
		return nil, false, err
	}
	if len(body) == 0 {
		return nil, false, nil
	}
	return body, true, nil
}

// runBaseline is the plain server: identical HTTP handling against an
// in-memory map, no component substrate (the Apache-comparator role).
func runBaseline(cfg Config) (*Stats, error) {
	stats := &Stats{Variant: VariantBaseline}
	site := paths(cfg.Files)
	reqs := make([][]byte, cfg.Requests)
	for i := range reqs {
		reqs[i] = FormatRequest(site[i%len(site)], true)
	}
	start := time.Now()
	for _, raw := range reqs {
		req, err := ParseRequest(raw)
		if err != nil {
			stats.Errors++
			continue
		}
		body, ok := cfg.Files[req.Path]
		var resp []byte
		if !ok {
			resp = FormatResponse(404, []byte("not found"))
		} else {
			resp = FormatResponse(200, body)
		}
		if code, err := ParseResponseStatus(resp); err != nil || (code != 200 && code != 404) {
			stats.Errors++
			continue
		}
		stats.Completed++
		if stats.Completed%cfg.BucketSize == 0 {
			stats.Timeline = append(stats.Timeline, BucketPoint{Completed: stats.Completed, Elapsed: time.Since(start)})
		}
	}
	stats.Elapsed = time.Since(start)
	if stats.Elapsed > 0 {
		stats.Throughput = float64(stats.Completed) / stats.Elapsed.Seconds()
	}
	return stats, nil
}

package webserver

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

// inflight is one externally submitted request awaiting simulated service.
type inflight struct {
	raw  []byte
	resp chan []byte
}

// bridge connects real I/O goroutines to the simulated machine: connection
// handlers enqueue requests and wake the simulated netif thread through the
// kernel's interrupt path; the idle handler parks the machine until work or
// shutdown arrives.
type bridge struct {
	mu      sync.Mutex
	queue   []*inflight
	stopped bool

	arrivals chan struct{} // signaled on enqueue and on stop
	netifTID kernel.ThreadID
	k        *kernel.Kernel
}

func newBridge(k *kernel.Kernel) *bridge {
	return &bridge{arrivals: make(chan struct{}, 1), k: k}
}

// submit hands a request to the simulation and returns its response channel.
func (b *bridge) submit(raw []byte) (chan []byte, error) {
	req := &inflight{raw: raw, resp: make(chan []byte, 1)}
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return nil, errors.New("webserver: shutting down")
	}
	b.queue = append(b.queue, req)
	b.mu.Unlock()
	b.kick()
	return req.resp, nil
}

// pop removes the next queued request (nil when empty), and reports whether
// the bridge has been stopped.
func (b *bridge) pop() (*inflight, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return nil, b.stopped
	}
	req := b.queue[0]
	b.queue = b.queue[1:]
	return req, b.stopped
}

// stop initiates shutdown: the netif thread drains the queue and exits.
func (b *bridge) stop() {
	b.mu.Lock()
	b.stopped = true
	b.mu.Unlock()
	b.kick()
}

// kick signals the idle handler and wakes the simulated netif thread.
func (b *bridge) kick() {
	select {
	case b.arrivals <- struct{}{}:
	default:
	}
	_ = b.k.ExternalWakeup(b.netifTID) // pre-halt errors are benign here
}

// idle is the kernel idle handler: park until work or shutdown.
func (b *bridge) idle() bool {
	b.mu.Lock()
	pending := len(b.queue) > 0
	stopped := b.stopped
	b.mu.Unlock()
	if pending || stopped {
		_ = b.k.ExternalWakeup(b.netifTID)
		return true
	}
	_, ok := <-b.arrivals
	if !ok {
		return false
	}
	_ = b.k.ExternalWakeup(b.netifTID)
	return true
}

// Serve accepts HTTP connections on ln and services every request through
// the componentized system (variant VariantC3 or VariantSuperGlue, or
// VariantComposite for the no-recovery substrate): the live-server mode of
// the Fig. 7 application. It returns after ln is closed and all in-flight
// connections drain. faultEvery > 0 injects one rotating component crash
// per that many completed requests, recovered in-line with service.
func Serve(ln net.Listener, cfg Config) error {
	if cfg.Variant == VariantBaseline || cfg.Variant == 0 {
		return errors.New("webserver: Serve requires a componentized variant")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Files == nil {
		cfg.Files = DefaultFiles()
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.OnDemand
	}
	if cfg.FaultEvery > 0 && cfg.Variant != VariantC3 && cfg.Variant != VariantSuperGlue {
		return errors.New("webserver: fault injection requires a recovery variant")
	}

	sys, err := core.NewSystemWithStorage(cfg.Mode, 1, cfg.Replicas)
	if err != nil {
		return err
	}
	svc, ids, err := buildSubstrate(sys, cfg.Variant)
	if err != nil {
		return err
	}
	k := sys.Kernel()
	br := newBridge(k)
	site := paths(cfg.Files)

	var (
		cacheLock  kernel.Word
		fdCache    = make(map[string]kernel.Word)
		workerEvts = make([]kernel.Word, cfg.Workers)
		completed  = 0
		runErrs    []error
	)
	fail := func(err error) { runErrs = append(runErrs, err) }

	// Loader: preload the site and create the coordination descriptors.
	if _, err := k.CreateThread(nil, "loader", 1, func(t *kernel.Thread) {
		for _, p := range site {
			fd, err := svc.fs.Open(t, p)
			if err != nil {
				fail(fmt.Errorf("loader open %s: %w", p, err))
				return
			}
			if _, err := svc.fs.Write(t, fd, cfg.Files[p]); err != nil {
				fail(fmt.Errorf("loader write %s: %w", p, err))
				return
			}
			if err := svc.fs.Close(t, fd); err != nil {
				fail(fmt.Errorf("loader close %s: %w", p, err))
				return
			}
		}
		id, err := svc.lock.Alloc(t)
		if err != nil {
			fail(fmt.Errorf("loader lock: %w", err))
			return
		}
		cacheLock = id
		for i := range workerEvts {
			evt, err := svc.evt.Split(t, 0, kernel.Word(i))
			if err != nil {
				fail(fmt.Errorf("loader evt %d: %w", i, err))
				return
			}
			workerEvts[i] = evt
		}
	}); err != nil {
		return err
	}

	// Workers: serve requests handed over per-worker inboxes.
	inboxes := make([][]*inflight, cfg.Workers)
	workersLive := cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		w := w
		if _, err := k.CreateThread(nil, fmt.Sprintf("worker%d", w), 10, func(t *kernel.Thread) {
			defer func() { workersLive-- }()
			if _, err := svc.sched.Setup(t, t.Prio()); err != nil {
				fail(fmt.Errorf("worker%d setup: %w", w, err))
				return
			}
			for {
				if _, err := svc.evt.Wait(t, workerEvts[w]); err != nil {
					fail(fmt.Errorf("worker%d wait: %w", w, err))
					return
				}
				for len(inboxes[w]) > 0 {
					req := inboxes[w][0]
					inboxes[w] = inboxes[w][1:]
					if req == nil { // poison: shutdown
						return
					}
					req.resp <- serveOne(t, svc, cacheLock, fdCache, req.raw)
					completed++
				}
			}
		}); err != nil {
			return err
		}
	}

	// Netif: drain the bridge queue into worker inboxes; exits once stopped
	// and drained, after poisoning the workers.
	crashTargets := []kernel.ComponentID{ids.lock, ids.evt, ids.fs, ids.timer, ids.sched}
	faults := 0
	nextFault := cfg.FaultEvery
	netifTID, err := k.CreateThread(nil, "netif", 11, func(t *kernel.Thread) {
		next := 0
		for {
			req, stopped := br.pop()
			if req == nil {
				if stopped {
					for w := 0; w < cfg.Workers; w++ {
						inboxes[w] = append(inboxes[w], nil)
						if _, err := svc.evt.Trigger(t, workerEvts[w]); err != nil {
							fail(fmt.Errorf("netif poison: %w", err))
							return
						}
					}
					// Keep nudging until every worker saw its poison.
					for workersLive > 0 {
						for w := 0; w < cfg.Workers; w++ {
							if _, err := svc.evt.Trigger(t, workerEvts[w]); err != nil {
								fail(fmt.Errorf("netif drain: %w", err))
								return
							}
						}
						if err := k.Yield(t); err != nil {
							return
						}
					}
					return
				}
				// Queue empty: park; the bridge wakes us on arrivals.
				if err := k.Block(t); err != nil {
					// Diverted by a reboot of a component we are not a
					// client of mid-block cannot happen (we block in home
					// context); treat any error as shutdown.
					return
				}
				continue
			}
			if cfg.FaultEvery > 0 && completed >= nextFault {
				target := crashTargets[faults%len(crashTargets)]
				if err := k.FailComponent(target); err != nil {
					fail(err)
					return
				}
				faults++
				nextFault += cfg.FaultEvery
			}
			w := next % cfg.Workers
			next++
			inboxes[w] = append(inboxes[w], req)
			if _, err := svc.evt.Trigger(t, workerEvts[w]); err != nil {
				fail(fmt.Errorf("netif trigger: %w", err))
				return
			}
		}
	})
	if err != nil {
		return err
	}
	br.netifTID = netifTID
	k.SetIdleHandler(br.idle)

	// Run the machine in the background.
	simDone := make(chan error, 1)
	go func() { simDone <- k.Run() }()

	// Accept loop: one goroutine per connection. Open connections are
	// tracked so shutdown can sever idle keep-alive sessions.
	var conns sync.WaitGroup
	var connMu sync.Mutex
	open := make(map[net.Conn]struct{})
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed: shut down
		}
		connMu.Lock()
		open[conn] = struct{}{}
		connMu.Unlock()
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer func() {
				connMu.Lock()
				delete(open, conn)
				connMu.Unlock()
				_ = conn.Close()
			}()
			handleConn(conn, br)
		}()
	}
	connMu.Lock()
	for conn := range open {
		_ = conn.Close()
	}
	connMu.Unlock()
	conns.Wait()
	br.stop()
	simErr := <-simDone
	close(br.arrivals)
	if simErr != nil {
		return fmt.Errorf("webserver: simulation: %w", simErr)
	}
	if len(runErrs) > 0 {
		return errors.Join(runErrs...)
	}
	return nil
}

// serveOne services one raw request through the component path and renders
// the response.
func serveOne(t *kernel.Thread, svc *services, cacheLock kernel.Word, fdCache map[string]kernel.Word, raw []byte) []byte {
	req, err := ParseRequest(raw)
	if err != nil {
		return FormatResponse(400, []byte(err.Error()))
	}
	body, found, err := readFile(t, svc, cacheLock, fdCache, req.Path)
	if err != nil {
		return FormatResponse(500, []byte(err.Error()))
	}
	if !found {
		return FormatResponse(404, []byte("not found"))
	}
	return FormatResponse(200, body)
}

// handleConn reads HTTP/1.1 requests off one connection and writes the
// simulation's responses back, honoring keep-alive.
func handleConn(conn net.Conn, br *bridge) {
	r := bufio.NewReader(conn)
	for {
		raw, err := readRequest(r)
		if err != nil {
			return // EOF or malformed framing: drop the connection
		}
		respCh, err := br.submit(raw)
		if err != nil {
			return
		}
		resp := <-respCh
		if _, err := conn.Write(resp); err != nil {
			return
		}
		if req, perr := ParseRequest(raw); perr == nil &&
			req.Headers["connection"] == "close" {
			return
		}
	}
}

// readRequest reads one request head (through the blank line). Bodies are
// not supported (GET/HEAD only).
func readRequest(r *bufio.Reader) ([]byte, error) {
	var buf bytes.Buffer
	for {
		line, err := r.ReadBytes('\n')
		buf.Write(line)
		if err != nil {
			if buf.Len() == 0 {
				return nil, io.EOF
			}
			return nil, err
		}
		if bytes.Equal(line, []byte("\r\n")) || bytes.Equal(line, []byte("\n")) {
			return buf.Bytes(), nil
		}
		if buf.Len() > 64*1024 {
			return nil, errors.New("webserver: request head too large")
		}
	}
}

// Package webserver implements the evaluation's application workload
// (§V-E): a web server built from the system-level components — events for
// request notification, locks around the shared cache, the RAM filesystem
// for content, the memory manager for connection buffers, the timer for
// housekeeping, and the scheduler for worker flow control — together with
// an ab-style load generator and a plain ("Apache-like") baseline server
// that runs the same HTTP logic without the component substrate.
package webserver

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Request is one parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
}

// Parse errors.
var (
	// ErrMalformedRequest reports an unparseable request.
	ErrMalformedRequest = errors.New("webserver: malformed request")
	// ErrUnsupportedMethod reports a method other than GET/HEAD.
	ErrUnsupportedMethod = errors.New("webserver: unsupported method")
)

// ParseRequest parses an HTTP/1.x request head (through the blank line).
func ParseRequest(raw []byte) (*Request, error) {
	head := raw
	if idx := bytes.Index(raw, []byte("\r\n\r\n")); idx >= 0 {
		head = raw[:idx]
	}
	lines := strings.Split(string(head), "\r\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("%w: empty request", ErrMalformedRequest)
	}
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformedRequest, lines[0])
	}
	req := &Request{Method: parts[0], Path: parts[1], Proto: parts[2], Headers: make(map[string]string)}
	if req.Method != "GET" && req.Method != "HEAD" {
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedMethod, req.Method)
	}
	if !strings.HasPrefix(req.Proto, "HTTP/1.") {
		return nil, fmt.Errorf("%w: protocol %q", ErrMalformedRequest, req.Proto)
	}
	if !strings.HasPrefix(req.Path, "/") {
		return nil, fmt.Errorf("%w: path %q", ErrMalformedRequest, req.Path)
	}
	for _, line := range lines[1:] {
		if line == "" {
			break
		}
		ci := strings.Index(line, ":")
		if ci <= 0 {
			return nil, fmt.Errorf("%w: header %q", ErrMalformedRequest, line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:ci]))
		req.Headers[key] = strings.TrimSpace(line[ci+1:])
	}
	return req, nil
}

// FormatRequest renders a GET request for the load generator.
func FormatRequest(path string, keepAlive bool) []byte {
	conn := "keep-alive"
	if !keepAlive {
		conn = "close"
	}
	return []byte("GET " + path + " HTTP/1.1\r\nHost: bench\r\nConnection: " + conn + "\r\n\r\n")
}

// statusText maps the status codes the server emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}

// FormatResponse renders an HTTP/1.1 response.
func FormatResponse(code int, body []byte) []byte {
	var b bytes.Buffer
	b.WriteString("HTTP/1.1 ")
	b.WriteString(strconv.Itoa(code))
	b.WriteByte(' ')
	b.WriteString(statusText(code))
	b.WriteString("\r\nServer: superglue-ws\r\nContent-Length: ")
	b.WriteString(strconv.Itoa(len(body)))
	b.WriteString("\r\n\r\n")
	b.Write(body)
	return b.Bytes()
}

// ParseResponseStatus extracts the status code of a rendered response.
func ParseResponseStatus(raw []byte) (int, error) {
	line := raw
	if idx := bytes.IndexByte(raw, '\r'); idx >= 0 {
		line = raw[:idx]
	}
	parts := strings.SplitN(string(line), " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return 0, fmt.Errorf("%w: status line %q", ErrMalformedRequest, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, fmt.Errorf("%w: status %q", ErrMalformedRequest, parts[1])
	}
	return code, nil
}

// ResponseBody extracts the body of a rendered response.
func ResponseBody(raw []byte) []byte {
	if idx := bytes.Index(raw, []byte("\r\n\r\n")); idx >= 0 {
		return raw[idx+4:]
	}
	return nil
}

package webserver

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// startServer boots Serve on a loopback listener and returns the base URL
// and a shutdown func that waits for Serve to return.
func startServer(t *testing.T, cfg Config) (string, func() error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(ln, cfg) }()
	shutdown := func() error {
		_ = ln.Close()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("Serve did not return after listener close")
		}
	}
	return "http://" + ln.Addr().String(), shutdown
}

func TestServeRealHTTP(t *testing.T) {
	files := DefaultFiles()
	url, shutdown := startServer(t, Config{Variant: VariantSuperGlue, Files: files})
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(url + "/index.html")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d; want 200", resp.StatusCode)
	}
	if string(body) != string(files["/index.html"]) {
		t.Fatalf("body = %q; want the site file", body)
	}

	resp, err = client.Get(url + "/missing.html")
	if err != nil {
		t.Fatalf("GET missing: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d; want 404", resp.StatusCode)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeKeepAliveAndConcurrency(t *testing.T) {
	files := DefaultFiles()
	url, shutdown := startServer(t, Config{Variant: VariantC3, Files: files, Workers: 3})
	client := &http.Client{Timeout: 10 * time.Second}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				path := fmt.Sprintf("/f%d.html", i%8)
				resp, err := client.Get(url + path)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 || string(body) != string(files[path]) {
					errs <- fmt.Errorf("%s: status %d, %d bytes", path, resp.StatusCode, len(body))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeAcrossInjectedFaults(t *testing.T) {
	files := DefaultFiles()
	url, shutdown := startServer(t, Config{
		Variant:    VariantSuperGlue,
		Files:      files,
		FaultEvery: 40,
	})
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 300; i++ {
		path := fmt.Sprintf("/f%d.html", i%8)
		resp, err := client.Get(url + path)
		if err != nil {
			t.Fatalf("GET %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if resp.StatusCode != 200 || string(body) != string(files[path]) {
			t.Fatalf("request %d: status %d body %d bytes (service must survive crashes)",
				i, resp.StatusCode, len(body))
		}
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestServeRejectsBaseline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer func() { _ = ln.Close() }()
	if err := Serve(ln, Config{Variant: VariantBaseline}); err == nil {
		t.Fatal("Serve accepted the baseline variant")
	}
}

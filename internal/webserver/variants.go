package webserver

import (
	"fmt"

	"superglue/internal/c3"
	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// Variant selects the interface-stub configuration, matching the systems
// compared in Fig. 7.
type Variant int

// Variants.
const (
	// VariantBaseline is the plain server: same HTTP logic, no component
	// substrate at all (the Apache comparator's role).
	VariantBaseline Variant = iota + 1
	// VariantComposite runs on the component substrate with raw
	// invocations: no descriptor tracking, no recovery (the "COMPOSITE
	// base" bar).
	VariantComposite
	// VariantC3 uses the hand-written C³ stubs.
	VariantC3
	// VariantSuperGlue uses the SuperGlue runtime stubs.
	VariantSuperGlue
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantBaseline:
		return "baseline"
	case VariantComposite:
		return "composite"
	case VariantC3:
		return "composite+c3"
	case VariantSuperGlue:
		return "composite+superglue"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// The consumer-side service interfaces the server needs; satisfied by the
// SuperGlue typed clients, the C³ hand-written stubs, and the raw adapters.

// fsAPI is the filesystem surface used per request.
type fsAPI interface {
	Open(t *kernel.Thread, path string) (kernel.Word, error)
	Read(t *kernel.Thread, fd kernel.Word, n int) ([]byte, error)
	Lseek(t *kernel.Thread, fd kernel.Word, offset int) (int, error)
	Close(t *kernel.Thread, fd kernel.Word) error
	Write(t *kernel.Thread, fd kernel.Word, data []byte) (int, error)
}

// lockAPI is the mutual-exclusion surface around the fd cache.
type lockAPI interface {
	Alloc(t *kernel.Thread) (kernel.Word, error)
	Take(t *kernel.Thread, id kernel.Word) error
	Release(t *kernel.Thread, id kernel.Word) error
}

// evtAPI is the request-notification surface.
type evtAPI interface {
	Split(t *kernel.Thread, parent, grp kernel.Word) (kernel.Word, error)
	Wait(t *kernel.Thread, id kernel.Word) (kernel.Word, error)
	Trigger(t *kernel.Thread, id kernel.Word) (kernel.Word, error)
}

// schedAPI is the worker flow-control surface.
type schedAPI interface {
	Setup(t *kernel.Thread, prio int) (kernel.Word, error)
	Blk(t *kernel.Thread) error
	Wakeup(t *kernel.Thread, tid kernel.ThreadID) error
}

// timerAPI is the housekeeping surface.
type timerAPI interface {
	Alloc(t *kernel.Thread, period kernel.Time) (kernel.Word, error)
	Wait(t *kernel.Thread, id kernel.Word) (kernel.Time, error)
}

// services bundles one client's bound service APIs.
type services struct {
	fs    fsAPI
	lock  lockAPI
	evt   evtAPI
	sched schedAPI
	timer timerAPI
}

// componentIDs records the registered server components.
type componentIDs struct {
	lock, evt, sched, timer, fs kernel.ComponentID
}

// buildSubstrate registers the five services the server uses and binds
// client APIs per the variant. (The memory manager backs the cbuf transfers
// already exercised through the filesystem path; the paper's server uses it
// the same way.)
func buildSubstrate(sys *core.System, variant Variant) (*services, *componentIDs, error) {
	ids := &componentIDs{}
	var err error
	if ids.lock, err = lock.Register(sys); err != nil {
		return nil, nil, err
	}
	if ids.evt, err = event.Register(sys); err != nil {
		return nil, nil, err
	}
	if ids.sched, err = sched.Register(sys); err != nil {
		return nil, nil, err
	}
	if ids.timer, err = timer.Register(sys); err != nil {
		return nil, nil, err
	}
	if ids.fs, err = ramfs.Register(sys); err != nil {
		return nil, nil, err
	}

	switch variant {
	case VariantComposite:
		cl, err := sys.NewClient("ws-app")
		if err != nil {
			return nil, nil, err
		}
		raw := newRawServices(sys, cl, ids)
		return raw, ids, nil
	case VariantC3:
		cl, err := c3.NewClient(sys, "ws-app")
		if err != nil {
			return nil, nil, err
		}
		evtStub, err := c3.NewEventStub(cl, ids.evt)
		if err != nil {
			return nil, nil, err
		}
		return &services{
			fs:    c3.NewFSStub(cl, ids.fs),
			lock:  newC3LockAdapter(c3.NewLockStub(cl, ids.lock)),
			evt:   evtStub,
			sched: newC3SchedAdapter(c3.NewSchedStub(cl, ids.sched)),
			timer: newC3TimerAdapter(c3.NewTimerStub(cl, ids.timer)),
		}, ids, nil
	case VariantSuperGlue:
		cl, err := sys.NewClient("ws-app")
		if err != nil {
			return nil, nil, err
		}
		fsC, err := ramfs.NewClient(cl, ids.fs)
		if err != nil {
			return nil, nil, err
		}
		lockC, err := lock.NewClient(cl, ids.lock)
		if err != nil {
			return nil, nil, err
		}
		evtC, err := event.NewClient(cl, ids.evt)
		if err != nil {
			return nil, nil, err
		}
		schedC, err := sched.NewClient(cl, ids.sched)
		if err != nil {
			return nil, nil, err
		}
		timerC, err := timer.NewClient(cl, ids.timer)
		if err != nil {
			return nil, nil, err
		}
		return &services{fs: fsC, lock: lockC, evt: evtC, sched: schedC, timer: timerC}, ids, nil
	default:
		return nil, nil, fmt.Errorf("webserver: variant %v has no component substrate", variant)
	}
}

// Thin adapters aligning minor signature differences.

type c3LockAdapter struct{ s *c3.LockStub }

func newC3LockAdapter(s *c3.LockStub) lockAPI { return &c3LockAdapter{s} }

func (a *c3LockAdapter) Alloc(t *kernel.Thread) (kernel.Word, error) { return a.s.Alloc(t) }
func (a *c3LockAdapter) Take(t *kernel.Thread, id kernel.Word) error { return a.s.Take(t, id) }
func (a *c3LockAdapter) Release(t *kernel.Thread, id kernel.Word) error {
	return a.s.Release(t, id)
}

type c3SchedAdapter struct{ s *c3.SchedStub }

func newC3SchedAdapter(s *c3.SchedStub) schedAPI { return &c3SchedAdapter{s} }

func (a *c3SchedAdapter) Setup(t *kernel.Thread, prio int) (kernel.Word, error) {
	return a.s.Setup(t, prio)
}
func (a *c3SchedAdapter) Blk(t *kernel.Thread) error { return a.s.Blk(t) }
func (a *c3SchedAdapter) Wakeup(t *kernel.Thread, tid kernel.ThreadID) error {
	return a.s.Wakeup(t, tid)
}

type c3TimerAdapter struct{ s *c3.TimerStub }

func newC3TimerAdapter(s *c3.TimerStub) timerAPI { return &c3TimerAdapter{s} }

func (a *c3TimerAdapter) Alloc(t *kernel.Thread, period kernel.Time) (kernel.Word, error) {
	return a.s.Alloc(t, period)
}
func (a *c3TimerAdapter) Wait(t *kernel.Thread, id kernel.Word) (kernel.Time, error) {
	return a.s.Wait(t, id)
}

package webserver

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
)

func TestParseRequest(t *testing.T) {
	req, err := ParseRequest([]byte("GET /index.html HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n"))
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if req.Method != "GET" || req.Path != "/index.html" || req.Proto != "HTTP/1.1" {
		t.Fatalf("req = %+v", req)
	}
	if req.Headers["host"] != "x" || req.Headers["connection"] != "keep-alive" {
		t.Fatalf("headers = %v", req.Headers)
	}
}

func TestParseRequestErrors(t *testing.T) {
	cases := map[string]error{
		"":                                    ErrMalformedRequest,
		"GET /":                               ErrMalformedRequest,
		"POST / HTTP/1.1":                     ErrUnsupportedMethod,
		"GET / SPDY/1":                        ErrMalformedRequest,
		"GET noslash HTTP/1.1":                ErrMalformedRequest,
		"GET / HTTP/1.1\r\nBadHeader\r\n\r\n": ErrMalformedRequest,
	}
	for raw, want := range cases {
		if _, err := ParseRequest([]byte(raw)); !errors.Is(err, want) {
			t.Errorf("ParseRequest(%q) = %v; want %v", raw, err, want)
		}
	}
}

func TestFormatAndParseResponse(t *testing.T) {
	resp := FormatResponse(200, []byte("hello"))
	code, err := ParseResponseStatus(resp)
	if err != nil || code != 200 {
		t.Fatalf("status = (%d, %v)", code, err)
	}
	if !bytes.Equal(ResponseBody(resp), []byte("hello")) {
		t.Fatalf("body = %q", ResponseBody(resp))
	}
	if code, _ := ParseResponseStatus(FormatResponse(404, nil)); code != 404 {
		t.Fatal("404 round trip failed")
	}
	if _, err := ParseResponseStatus([]byte("garbage")); err == nil {
		t.Fatal("garbage status accepted")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	raw := FormatRequest("/a.html", true)
	req, err := ParseRequest(raw)
	if err != nil || req.Path != "/a.html" {
		t.Fatalf("round trip = (%+v, %v)", req, err)
	}
}

func TestBaselineRun(t *testing.T) {
	st, err := Run(Config{Variant: VariantBaseline, Requests: 500})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Completed != 500 || st.Errors != 0 {
		t.Fatalf("stats = %+v; want 500 completed, 0 errors", st)
	}
	if st.Throughput <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestComponentizedVariantsServeCorrectly(t *testing.T) {
	for _, v := range []Variant{VariantComposite, VariantC3, VariantSuperGlue} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			st, err := Run(Config{Variant: v, Requests: 300, Workers: 2})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if st.Completed != 300 {
				t.Fatalf("completed = %d; want 300", st.Completed)
			}
			if st.Errors != 0 {
				t.Fatalf("errors = %d; want 0", st.Errors)
			}
			if len(st.Timeline) == 0 {
				t.Fatal("no timeline buckets recorded")
			}
		})
	}
}

func TestFaultInjectionRequiresRecoveryVariant(t *testing.T) {
	for _, v := range []Variant{VariantBaseline, VariantComposite} {
		if _, err := Run(Config{Variant: v, Requests: 10, FaultEvery: 5}); err == nil {
			t.Errorf("%v: fault injection accepted without recovery stubs", v)
		}
	}
}

func TestSuperGlueServesAcrossInjectedFaults(t *testing.T) {
	st, err := Run(Config{Variant: VariantSuperGlue, Requests: 600, Workers: 2, FaultEvery: 100})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Completed != 600 {
		t.Fatalf("completed = %d; want 600 (service must continue across faults)", st.Completed)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d; want 0", st.Errors)
	}
	if st.Faults < 4 {
		t.Fatalf("faults = %d; want ≥ 4 (one per 100 completions)", st.Faults)
	}
}

func TestCorrelatedBurstsRequireSuperGlue(t *testing.T) {
	for _, v := range []Variant{VariantBaseline, VariantComposite, VariantC3} {
		if _, err := Run(Config{Variant: v, Requests: 10, CorrelatedEvery: 5}); err == nil {
			t.Errorf("%v: correlated bursts accepted without SuperGlue stubs", v)
		}
	}
}

// TestSuperGlueServesAcrossCorrelatedBursts: a backing service and the
// storage component crash together, and the server still answers the full
// request stream — the recovery ladder reboots the dependency first.
func TestSuperGlueServesAcrossCorrelatedBursts(t *testing.T) {
	st, err := Run(Config{Variant: VariantSuperGlue, Requests: 600, Workers: 2, CorrelatedEvery: 150})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.CorrelatedBursts < 3 {
		t.Fatalf("bursts = %d; want ≥ 3 (one per 150 completions)", st.CorrelatedBursts)
	}
	if got := st.Completed + st.Errors; got != 600 {
		t.Fatalf("completed %d + errors %d; want all 600 accounted for", st.Completed, st.Errors)
	}
	if st.Completed < 540 {
		t.Fatalf("completed = %d; want ≥ 90%% of 600 despite correlated bursts", st.Completed)
	}
}

func TestHangInjectionRequiresWatchdogAndSuperGlue(t *testing.T) {
	if _, err := Run(Config{Variant: VariantSuperGlue, Requests: 10, HangEvery: 5}); err == nil {
		t.Error("hang injection accepted without the watchdog")
	}
	if _, err := Run(Config{Variant: VariantC3, Requests: 10, HangEvery: 5, Watchdog: true}); err == nil {
		t.Error("hang injection accepted for a non-SuperGlue variant")
	}
}

// TestSuperGlueServesAcrossInjectedHangs: a backing service wedges mid-run
// every 150 requests; the watchdog attributes each hang, fails the
// component, and the stubs recover mid-request — the request stream
// completes instead of the machine dying with ErrHang.
func TestSuperGlueServesAcrossInjectedHangs(t *testing.T) {
	st, err := Run(Config{Variant: VariantSuperGlue, Requests: 600, Workers: 2, HangEvery: 150, Watchdog: true})
	if err != nil {
		t.Fatalf("Run: %v (a hang must not kill the machine with the watchdog on)", err)
	}
	if st.Hangs < 3 {
		t.Fatalf("hangs = %d; want ≥ 3 (one per 150 completions)", st.Hangs)
	}
	if got := st.Completed + st.Errors; got != 600 {
		t.Fatalf("completed %d + errors %d = %d; want all 600 requests accounted for", st.Completed, st.Errors, got)
	}
	if st.Completed < 540 {
		t.Fatalf("completed = %d; want ≥ 90%% of 600 served despite hangs", st.Completed)
	}
}

// TestSuperGlueServesAcrossHangsAndCrashes combines both injectors: crash
// faults and latent hangs interleaved over the same run.
func TestSuperGlueServesAcrossHangsAndCrashes(t *testing.T) {
	st, err := Run(Config{Variant: VariantSuperGlue, Requests: 600, Workers: 2,
		FaultEvery: 200, HangEvery: 170, Watchdog: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Hangs < 2 || st.Faults < 2 {
		t.Fatalf("hangs = %d, faults = %d; want both injectors firing", st.Hangs, st.Faults)
	}
	if got := st.Completed + st.Errors; got != 600 {
		t.Fatalf("completed %d + errors %d; want all 600 accounted for", st.Completed, st.Errors)
	}
	if st.Completed < 540 {
		t.Fatalf("completed = %d; want ≥ 90%% of 600", st.Completed)
	}
}

func TestC3ServesAcrossInjectedFaults(t *testing.T) {
	st, err := Run(Config{Variant: VariantC3, Requests: 600, Workers: 2, FaultEvery: 100})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Completed != 600 || st.Errors != 0 {
		t.Fatalf("stats = %+v; want 600 clean completions", st)
	}
	if st.Faults < 4 {
		t.Fatalf("faults = %d; want ≥ 4", st.Faults)
	}
}

// TestSimultaneousMultiComponentFaults fails several system services at
// the same instant mid-service: recovery must cascade cleanly (a worker's
// redo can hit a second failed component while recovering from the first).
func TestSimultaneousMultiComponentFaults(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	svc, ids, err := buildSubstrate(sys, VariantSuperGlue)
	if err != nil {
		t.Fatalf("buildSubstrate: %v", err)
	}
	k := sys.Kernel()
	files := DefaultFiles()
	site := paths(files)
	served := 0
	var runErr error
	if _, err := k.CreateThread(nil, "driver", 10, func(th *kernel.Thread) {
		cacheLock, err := svc.lock.Alloc(th)
		if err != nil {
			runErr = err
			return
		}
		fdCache := make(map[string]kernel.Word)
		// Preload.
		for _, p := range site {
			fd, err := svc.fs.Open(th, p)
			if err != nil {
				runErr = err
				return
			}
			if _, err := svc.fs.Write(th, fd, files[p]); err != nil {
				runErr = err
				return
			}
			if err := svc.fs.Close(th, fd); err != nil {
				runErr = err
				return
			}
		}
		for i := 0; i < 200; i++ {
			if i%37 == 36 {
				// Fail three components at once.
				for _, c := range []kernel.ComponentID{ids.lock, ids.fs, ids.evt} {
					if err := k.FailComponent(c); err != nil {
						runErr = err
						return
					}
				}
			}
			path := site[i%len(site)]
			body, found, err := readFile(th, svc, cacheLock, fdCache, path)
			if err != nil {
				runErr = err
				return
			}
			if !found || string(body) != string(files[path]) {
				runErr = fmt.Errorf("request %d: wrong content for %s", i, path)
				return
			}
			served++
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if runErr != nil {
		t.Fatalf("driver: %v", runErr)
	}
	if served != 200 {
		t.Fatalf("served = %d; want 200", served)
	}
}

func TestEagerModeServes(t *testing.T) {
	st, err := Run(Config{Variant: VariantSuperGlue, Requests: 200, Workers: 2, FaultEvery: 50, Mode: core.Eager})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Completed != 200 || st.Errors != 0 {
		t.Fatalf("stats = %+v; want 200 clean completions under eager recovery", st)
	}
}

// TestMultiCoreServes runs the request stream on 2- and 4-core machines:
// backing services live on cores ≥ 1 and workers are spread over every
// core, so each request crosses cores, with migrations charged in virtual
// time.
func TestMultiCoreServes(t *testing.T) {
	for _, cores := range []int{2, 4} {
		for _, v := range []Variant{VariantComposite, VariantC3, VariantSuperGlue} {
			v := v
			cores := cores
			t.Run(fmt.Sprintf("%v/cores=%d", v, cores), func(t *testing.T) {
				st, err := Run(Config{Variant: v, Requests: 300, Workers: 2, Cores: cores})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if st.Completed != 300 || st.Errors != 0 {
					t.Fatalf("stats = %+v; want 300 clean completions", st)
				}
				if st.Cores != cores {
					t.Fatalf("cores = %d; want %d", st.Cores, cores)
				}
				if st.Migrations == 0 {
					t.Fatal("no cross-core migrations recorded; placement did not take")
				}
				if st.VirtualTicks == 0 {
					t.Fatal("virtual clock did not advance")
				}
			})
		}
	}
}

// TestMultiCoreServesAcrossFaults injects rotating component crashes into a
// 4-core run: recovery (µ-reboot + redo) must work when the rebooted
// server is homed on another core.
func TestMultiCoreServesAcrossFaults(t *testing.T) {
	st, err := Run(Config{Variant: VariantSuperGlue, Requests: 600, Workers: 4, Cores: 4, FaultEvery: 150})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Completed != 600 || st.Errors != 0 {
		t.Fatalf("stats = %+v; want 600 clean completions across faults", st)
	}
	if st.Faults < 3 {
		t.Fatalf("faults = %d; want ≥ 3", st.Faults)
	}
}

func TestDefaultFilesHaveIndex(t *testing.T) {
	files := DefaultFiles()
	if _, ok := files["/index.html"]; !ok {
		t.Fatal("missing /index.html")
	}
	if len(files) < 5 {
		t.Fatalf("only %d files; want a multi-page site", len(files))
	}
}

package webserver

import (
	"fmt"

	"superglue/internal/cbuf"
	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// rawServices is the "COMPOSITE base" binding: plain component invocations
// with no descriptor tracking and no recovery, the fault-intolerant system
// the paper's Fig. 7 uses as the component-substrate baseline.
type rawServices struct {
	k    *kernel.Kernel
	cm   *cbuf.Manager
	self kernel.ComponentID
	ids  *componentIDs

	pathBufs    map[string]cbuf.ID
	readBuf     cbuf.ID
	readBufSize int
}

func newRawServices(sys *core.System, cl *core.Client, ids *componentIDs) *services {
	raw := &rawServices{
		k:        sys.Kernel(),
		cm:       sys.Cbufs(),
		self:     cl.ID(),
		ids:      ids,
		pathBufs: make(map[string]cbuf.ID),
	}
	return &services{fs: raw, lock: raw, evt: raw, sched: raw, timer: rawTimer{raw}}
}

// fsAPI.

func (r *rawServices) Open(t *kernel.Thread, path string) (kernel.Word, error) {
	buf, ok := r.pathBufs[path]
	if !ok {
		var err error
		buf, err = r.cm.Alloc(cbuf.ComponentID(r.self), len(path))
		if err != nil {
			return 0, err
		}
		if err := r.cm.Write(buf, cbuf.ComponentID(r.self), 0, []byte(path)); err != nil {
			return 0, err
		}
		if err := r.cm.Map(buf, cbuf.ComponentID(r.ids.fs)); err != nil {
			return 0, err
		}
		r.pathBufs[path] = buf
	}
	return r.k.Invoke(t, r.ids.fs, ramfs.FnOpen, kernel.Word(r.self), kernel.Word(buf), kernel.Word(len(path)))
}

func (r *rawServices) Read(t *kernel.Thread, fd kernel.Word, n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	if n > r.readBufSize {
		if r.readBufSize > 0 {
			if err := r.cm.Free(r.readBuf, cbuf.ComponentID(r.self)); err != nil {
				return nil, err
			}
		}
		nb, err := r.cm.Alloc(cbuf.ComponentID(r.self), n)
		if err != nil {
			return nil, err
		}
		if err := r.cm.Delegate(nb, cbuf.ComponentID(r.self), cbuf.ComponentID(r.ids.fs)); err != nil {
			return nil, err
		}
		r.readBuf, r.readBufSize = nb, n
	}
	buf := r.readBuf
	got, err := r.k.Invoke(t, r.ids.fs, ramfs.FnRead, kernel.Word(r.self), fd, kernel.Word(buf), kernel.Word(n))
	if err != nil {
		return nil, err
	}
	return r.cm.Read(buf, cbuf.ComponentID(r.self), 0, int(got))
}

func (r *rawServices) Write(t *kernel.Thread, fd kernel.Word, data []byte) (int, error) {
	if len(data) == 0 {
		return 0, nil
	}
	buf, err := r.cm.Alloc(cbuf.ComponentID(r.self), len(data))
	if err != nil {
		return 0, err
	}
	if err := r.cm.Write(buf, cbuf.ComponentID(r.self), 0, data); err != nil {
		return 0, err
	}
	if err := r.cm.Map(buf, cbuf.ComponentID(r.ids.fs)); err != nil {
		return 0, err
	}
	n, err := r.k.Invoke(t, r.ids.fs, ramfs.FnWrite, kernel.Word(r.self), fd, kernel.Word(buf), kernel.Word(len(data)))
	return int(n), err
}

func (r *rawServices) Lseek(t *kernel.Thread, fd kernel.Word, offset int) (int, error) {
	v, err := r.k.Invoke(t, r.ids.fs, ramfs.FnLseek, fd, kernel.Word(offset))
	return int(v), err
}

func (r *rawServices) Close(t *kernel.Thread, fd kernel.Word) error {
	_, err := r.k.Invoke(t, r.ids.fs, ramfs.FnClose, kernel.Word(r.self), fd)
	return err
}

// lockAPI.

func (r *rawServices) Alloc(t *kernel.Thread) (kernel.Word, error) {
	return r.k.Invoke(t, r.ids.lock, lock.FnAlloc, kernel.Word(r.self))
}

func (r *rawServices) Take(t *kernel.Thread, id kernel.Word) error {
	_, err := r.k.Invoke(t, r.ids.lock, lock.FnTake, kernel.Word(r.self), id, kernel.Word(t.ID()))
	return err
}

func (r *rawServices) Release(t *kernel.Thread, id kernel.Word) error {
	_, err := r.k.Invoke(t, r.ids.lock, lock.FnRelease, kernel.Word(r.self), id, kernel.Word(t.ID()))
	return err
}

// evtAPI.

func (r *rawServices) Split(t *kernel.Thread, parent, grp kernel.Word) (kernel.Word, error) {
	return r.k.Invoke(t, r.ids.evt, event.FnSplit, kernel.Word(r.self), parent, grp)
}

func (r *rawServices) Wait(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	return r.k.Invoke(t, r.ids.evt, event.FnWait, kernel.Word(r.self), id)
}

func (r *rawServices) Trigger(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	return r.k.Invoke(t, r.ids.evt, event.FnTrigger, kernel.Word(r.self), id)
}

// schedAPI.

func (r *rawServices) Setup(t *kernel.Thread, prio int) (kernel.Word, error) {
	return r.k.Invoke(t, r.ids.sched, sched.FnSetup, kernel.Word(r.self), kernel.Word(t.ID()), kernel.Word(prio))
}

func (r *rawServices) Blk(t *kernel.Thread) error {
	_, err := r.k.Invoke(t, r.ids.sched, sched.FnBlk, kernel.Word(r.self), kernel.Word(t.ID()))
	return err
}

func (r *rawServices) Wakeup(t *kernel.Thread, tid kernel.ThreadID) error {
	_, err := r.k.Invoke(t, r.ids.sched, sched.FnWakeup, kernel.Word(r.self), kernel.Word(tid))
	return err
}

// timerAPI: the raw variant names the functions directly.

func (r *rawServices) timerAlloc(t *kernel.Thread, period kernel.Time) (kernel.Word, error) {
	return r.k.Invoke(t, r.ids.timer, timer.FnAlloc, kernel.Word(r.self), kernel.Word(period))
}

func (r *rawServices) timerWait(t *kernel.Thread, id kernel.Word) (kernel.Time, error) {
	v, err := r.k.Invoke(t, r.ids.timer, timer.FnWait, kernel.Word(r.self), id)
	return kernel.Time(v), err
}

// rawTimer adapts the raw timer functions to timerAPI without colliding
// with lockAPI's Alloc.
type rawTimer struct{ r *rawServices }

func (a rawTimer) Alloc(t *kernel.Thread, period kernel.Time) (kernel.Word, error) {
	return a.r.timerAlloc(t, period)
}

func (a rawTimer) Wait(t *kernel.Thread, id kernel.Word) (kernel.Time, error) {
	return a.r.timerWait(t, id)
}

var _ fmt.Stringer = Variant(0)

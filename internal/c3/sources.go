package c3

import "embed"

// stubSources embeds this package's hand-written stub sources so the
// Fig. 6(c) LOC comparison can count them.
//
//go:embed lockstub.go eventstub.go schedstub.go timerstub.go mmstub.go fsstub.go
var stubSources embed.FS

// StubSource returns the hand-written stub source for a service.
func StubSource(service string) (string, bool) {
	name := map[string]string{
		"lock":  "lockstub.go",
		"event": "eventstub.go",
		"sched": "schedstub.go",
		"timer": "timerstub.go",
		"mm":    "mmstub.go",
		"ramfs": "fsstub.go",
	}[service]
	if name == "" {
		return "", false
	}
	raw, err := stubSources.ReadFile(name)
	if err != nil {
		return "", false
	}
	return string(raw), true
}

package c3

import (
	"fmt"

	"superglue/internal/kernel"
	"superglue/internal/services/sched"
)

// schedTrack is the hand-written tracking structure for one thread
// descriptor in the scheduler interface.
type schedTrack struct {
	tid    kernel.Word
	compid kernel.Word
	prio   kernel.Word
	epoch  uint64
}

// SchedStub is the hand-written C³ client stub for the scheduler.
type SchedStub struct {
	cl      *Client
	k       *kernel.Kernel
	server  kernel.ComponentID
	descs   map[kernel.Word]*schedTrack
	metrics Metrics
}

// NewSchedStub installs a hand-written scheduler stub into a C³ client.
func NewSchedStub(cl *Client, server kernel.ComponentID) *SchedStub {
	s := &SchedStub{
		cl:     cl,
		k:      cl.sys.Kernel(),
		server: server,
		descs:  make(map[kernel.Word]*schedTrack),
	}
	cl.recoverers[server] = s
	return s
}

// Metrics returns the stub's counters.
func (s *SchedStub) Metrics() Metrics { return s.metrics }

// Setup registers the calling thread with the scheduler.
func (s *SchedStub) Setup(t *kernel.Thread, prio int) (kernel.Word, error) {
	compid := kernel.Word(s.cl.comp)
	tid := kernel.Word(t.ID())
	for attempt := 0; ; attempt++ {
		s.metrics.Invocations++
		id, err := s.k.Invoke(t, s.server, sched.FnSetup, compid, tid, kernel.Word(prio))
		if err == nil {
			s.metrics.TrackOps++
			s.descs[tid] = &schedTrack{
				tid: tid, compid: compid, prio: kernel.Word(prio),
				epoch: epochOf(s.k, s.server),
			}
			return id, nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return 0, err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Blk blocks the calling thread.
func (s *SchedStub) Blk(t *kernel.Thread) error {
	_, err := s.call(t, sched.FnBlk, kernel.Word(t.ID()))
	return err
}

// Wakeup unblocks thread tid.
func (s *SchedStub) Wakeup(t *kernel.Thread, tid kernel.ThreadID) error {
	_, err := s.call(t, sched.FnWakeup, kernel.Word(tid))
	return err
}

// Remove deregisters thread tid.
func (s *SchedStub) Remove(t *kernel.Thread, tid kernel.ThreadID) error {
	_, err := s.call(t, sched.FnRemove, kernel.Word(tid))
	if err == nil {
		delete(s.descs, kernel.Word(tid))
	}
	return err
}

// call is the hand-written redo loop shared by blk/wakeup/remove.
func (s *SchedStub) call(t *kernel.Thread, fn string, tid kernel.Word) (kernel.Word, error) {
	d, ok := s.descs[tid]
	if !ok {
		return 0, fmt.Errorf("c3 sched: unknown thread descriptor %d", tid)
	}
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return 0, err
		}
		s.metrics.Invocations++
		ret, err := s.k.Invoke(t, s.server, fn, kernel.Word(s.cl.comp), tid)
		if err == nil {
			s.metrics.TrackOps++
			return ret, nil
		}
		f, isFault := kernel.AsFault(err)
		if !isFault || f.Comp != s.server {
			return ret, err
		}
		if attempt >= maxRedo {
			return 0, fmt.Errorf("c3 sched: %s: retries exhausted: %w", fn, err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// recover re-registers a thread descriptor after a µ-reboot (the scheduler
// itself rebuilds run-queue state by reflecting on kernel threads).
func (s *SchedStub) recover(t *kernel.Thread, d *schedTrack) error {
	if d.epoch == epochOf(s.k, s.server) {
		return nil
	}
	s.metrics.Recoveries++
	// Non-preemptible walk: no other thread may observe a half-recovered
	// descriptor (hand-written equivalent of the runtime's critical section).
	s.k.PushNoPreempt(t)
	defer s.k.PopNoPreempt(t)
	for attempt := 0; ; attempt++ {
		_, err := s.k.Invoke(t, s.server, sched.FnSetup, d.compid, d.tid, d.prio)
		if err == nil {
			s.metrics.WalkSteps++
			// Re-read: a mid-walk fault advances the epoch past cur.
			d.epoch = epochOf(s.k, s.server)
			return nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return fmt.Errorf("c3 sched: recovery setup: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
	}
}

// recoverByKey implements upcallRecoverer.
func (s *SchedStub) recoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error) {
	d, ok := s.descs[id]
	if !ok {
		return 0, fmt.Errorf("c3 sched: unknown thread descriptor %d", id)
	}
	if err := s.recover(t, d); err != nil {
		return 0, err
	}
	return d.tid, nil
}

// recreateByServerID implements upcallRecoverer.
func (s *SchedStub) recreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error) {
	return s.recoverByKey(t, 0, stale)
}

package c3

import (
	"fmt"
	"testing"
	"testing/quick"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

// lockDriver abstracts the two stub implementations for the equivalence
// property test.
type lockDriver interface {
	alloc(t *kernel.Thread) (kernel.Word, error)
	take(t *kernel.Thread, id kernel.Word) error
	release(t *kernel.Thread, id kernel.Word) error
	free(t *kernel.Thread, id kernel.Word) error
}

type c3Driver struct{ st *LockStub }

func (d c3Driver) alloc(t *kernel.Thread) (kernel.Word, error)    { return d.st.Alloc(t) }
func (d c3Driver) take(t *kernel.Thread, id kernel.Word) error    { return d.st.Take(t, id) }
func (d c3Driver) release(t *kernel.Thread, id kernel.Word) error { return d.st.Release(t, id) }
func (d c3Driver) free(t *kernel.Thread, id kernel.Word) error    { return d.st.Free(t, id) }

type sgDriver struct{ c *lock.Client }

func (d sgDriver) alloc(t *kernel.Thread) (kernel.Word, error)    { return d.c.Alloc(t) }
func (d sgDriver) take(t *kernel.Thread, id kernel.Word) error    { return d.c.Take(t, id) }
func (d sgDriver) release(t *kernel.Thread, id kernel.Word) error { return d.c.Release(t, id) }
func (d sgDriver) free(t *kernel.Thread, id kernel.Word) error    { return d.c.Free(t, id) }

// runProgram interprets a byte string as a structurally valid single-thread
// lock program with interleaved fault injections, and returns an outcome
// trace plus the surviving lock count. Opcodes (mod 6): 0 alloc, 1 take,
// 2 release, 3 free, 4 fault, 5 no-op. Operand bytes select descriptors.
func runProgram(t *testing.T, kind string, program []byte) (trace []string, live int, err error) {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		return nil, 0, err
	}
	comp, err := lock.Register(sys)
	if err != nil {
		return nil, 0, err
	}
	var drv lockDriver
	switch kind {
	case "c3":
		cl, err := NewClient(sys, "eq-app")
		if err != nil {
			return nil, 0, err
		}
		drv = c3Driver{NewLockStub(cl, comp)}
	case "sg":
		cl, err := sys.NewClient("eq-app")
		if err != nil {
			return nil, 0, err
		}
		c, err := lock.NewClient(cl, comp)
		if err != nil {
			return nil, 0, err
		}
		drv = sgDriver{c}
	default:
		return nil, 0, fmt.Errorf("unknown kind %q", kind)
	}

	// Model state for structural validity.
	type mLock struct {
		id   kernel.Word
		held bool
	}
	var locks []mLock
	var runErr error
	if _, cerr := sys.Kernel().CreateThread(nil, "prog", 10, func(th *kernel.Thread) {
		for i := 0; i+1 < len(program); i += 2 {
			op := program[i] % 6
			sel := int(program[i+1])
			switch op {
			case 0: // alloc
				if len(locks) >= 8 {
					continue
				}
				id, err := drv.alloc(th)
				if err != nil {
					runErr = fmt.Errorf("alloc: %w", err)
					return
				}
				locks = append(locks, mLock{id: id})
				trace = append(trace, "alloc")
			case 1: // take an unheld lock
				if len(locks) == 0 {
					continue
				}
				l := &locks[sel%len(locks)]
				if l.held {
					continue
				}
				if err := drv.take(th, l.id); err != nil {
					runErr = fmt.Errorf("take: %w", err)
					return
				}
				l.held = true
				trace = append(trace, "take")
			case 2: // release a held lock
				if len(locks) == 0 {
					continue
				}
				l := &locks[sel%len(locks)]
				if !l.held {
					continue
				}
				if err := drv.release(th, l.id); err != nil {
					runErr = fmt.Errorf("release: %w", err)
					return
				}
				l.held = false
				trace = append(trace, "release")
			case 3: // free an unheld lock
				if len(locks) == 0 {
					continue
				}
				idx := sel % len(locks)
				if locks[idx].held {
					continue
				}
				if err := drv.free(th, locks[idx].id); err != nil {
					runErr = fmt.Errorf("free: %w", err)
					return
				}
				locks = append(locks[:idx], locks[idx+1:]...)
				trace = append(trace, "free")
			case 4: // transient fault
				if err := sys.Kernel().FailComponent(comp); err != nil {
					runErr = err
					return
				}
				trace = append(trace, "fault")
			default: // no-op
			}
		}
	}); cerr != nil {
		return nil, 0, cerr
	}
	if rerr := sys.Kernel().Run(); rerr != nil {
		return nil, 0, rerr
	}
	return trace, len(locks), runErr
}

// TestC3AndSuperGlueEquivalentUnderFaults runs random lock programs with
// interleaved faults through both stub implementations and requires the
// same visible behavior: identical operation traces (every operation
// succeeds across recovery) and the same surviving descriptor count.
func TestC3AndSuperGlueEquivalentUnderFaults(t *testing.T) {
	prop := func(program []byte) bool {
		if len(program) > 120 {
			program = program[:120]
		}
		c3Trace, c3Live, c3Err := runProgram(t, "c3", program)
		sgTrace, sgLive, sgErr := runProgram(t, "sg", program)
		if (c3Err == nil) != (sgErr == nil) {
			t.Logf("error divergence: c3=%v sg=%v", c3Err, sgErr)
			return false
		}
		if c3Err != nil {
			t.Logf("both failed: c3=%v sg=%v", c3Err, sgErr)
			return false // faults must always be recoverable here
		}
		if c3Live != sgLive {
			t.Logf("live divergence: c3=%d sg=%d", c3Live, sgLive)
			return false
		}
		if fmt.Sprint(c3Trace) != fmt.Sprint(sgTrace) {
			t.Logf("trace divergence:\n c3: %v\n sg: %v", c3Trace, sgTrace)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Package c3 is the hand-written recovery baseline: the per-interface stub
// code a system designer writes by hand under C³ (Song et al., RTSS 2013),
// before SuperGlue existed to generate it.
//
// Every stub in this package re-implements descriptor tracking, fault
// update, and recovery for one service with explicit, service-specific
// code — no interface specification, no state-machine engine, no shared
// walk planner. This is deliberately repetitive: the paper's argument is
// that these stubs are large (up to 398 LOC for the filesystem), complex,
// and error-prone, and that SuperGlue replaces them with ~30-40 lines of
// declarative IDL. Keeping the baseline genuinely hand-written makes the
// Fig. 6 comparisons honest: the LOC numbers are counted from this package,
// and the overhead and recovery micro-benchmarks run against these stubs.
//
// The server components and the µ-kernel substrate are shared with the
// SuperGlue configuration, as they are on real COMPOSITE: the two systems
// differ in the interface stub code.
package c3

import (
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/obs"
)

// maxRedo bounds every stub's fault-retry loop, mirroring the SuperGlue
// runtime's bound.
const maxRedo = 16

// Metrics counts a hand-written stub's work, comparable field-for-field
// with core.StubMetrics.
type Metrics struct {
	Invocations uint64
	TrackOps    uint64
	Recoveries  uint64
	WalkSteps   uint64
	Redos       uint64
}

// Client is a client protection domain whose interface stubs are the
// hand-written C³ ones. It implements kernel.Service so that server-side
// recovery can upcall into it, exactly like a SuperGlue client.
type Client struct {
	sys  *core.System
	comp kernel.ComponentID
	name string

	// Per-service stubs, installed by the New*Stub constructors. The
	// upcall dispatcher consults them by server component ID.
	recoverers map[kernel.ComponentID]upcallRecoverer
}

// upcallRecoverer is the hand-written analogue of the stub upcall entry
// points: recover a descriptor by key, or recreate a global descriptor by
// stale server ID.
type upcallRecoverer interface {
	recoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error)
	recreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error)
}

var _ kernel.Service = (*Client)(nil)

// NewClient registers a C³ client component with the system's kernel.
func NewClient(sys *core.System, name string) (*Client, error) {
	c := &Client{
		sys:        sys,
		name:       name,
		recoverers: make(map[kernel.ComponentID]upcallRecoverer),
	}
	comp, err := sys.Kernel().Register(func() kernel.Service { return c })
	if err != nil {
		return nil, err
	}
	c.comp = comp
	return c, nil
}

// ID returns the client's component ID.
func (c *Client) ID() kernel.ComponentID { return c.comp }

// System returns the owning system.
func (c *Client) System() *core.System { return c.sys }

// Name implements kernel.Service.
func (c *Client) Name() string { return c.name }

// Init implements kernel.Service.
func (c *Client) Init(bc *kernel.BootContext) error { return nil }

// Dispatch implements kernel.Service: recovery upcalls are routed to the
// hand-written stub for the originating server.
func (c *Client) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	switch fn {
	case core.FnRecover:
		if len(args) < 3 {
			return 0, fmt.Errorf("c3: %s needs 3 args", fn)
		}
		r, ok := c.recoverers[kernel.ComponentID(args[0])]
		if !ok {
			return 0, fmt.Errorf("c3: no stub for server %d in client %s", args[0], c.name)
		}
		ret, err := r.recoverByKey(t, args[1], args[2])
		if err == nil {
			c.traceRecovery(t, obs.MechD1, kernel.ComponentID(args[0]), fn)
		}
		return ret, err
	case core.FnRecreate:
		if len(args) < 2 {
			return 0, fmt.Errorf("c3: %s needs 2 args", fn)
		}
		r, ok := c.recoverers[kernel.ComponentID(args[0])]
		if !ok {
			return 0, fmt.Errorf("c3: no stub for server %d in client %s", args[0], c.name)
		}
		ret, err := r.recreateByServerID(t, args[1])
		if err == nil {
			c.traceRecovery(t, obs.MechG0, kernel.ComponentID(args[0]), fn)
		}
		return ret, err
	default:
		return 0, kernel.DispatchError(c.name, fn)
	}
}

// traceRecovery records one recovery-mechanism firing against the shared
// trace recorder. It lives in the shared upcall dispatcher — NOT in the
// per-service hand-written stubs — so instrumenting the C³ baseline does
// not change the hand-written LOC that Fig. 6(c) counts.
func (c *Client) traceRecovery(t *kernel.Thread, mech obs.Mechanism, server kernel.ComponentID, fn string) {
	tr := c.sys.Tracer()
	if tr == nil {
		return
	}
	tr.RecordRecovery(mech, int32(server), int32(t.ID()), fn,
		int64(c.sys.Kernel().Now()), epochOf(c.sys.Kernel(), server), 0, 1)
}

// faultUpdate is CSTUB_FAULT_UPDATE: ensure the failed server is µ-rebooted
// exactly once per epoch.
func faultUpdate(t *kernel.Thread, k *kernel.Kernel, server kernel.ComponentID, f *kernel.Fault) error {
	_, err := k.EnsureRebooted(t, server, f.Epoch)
	return err
}

// epochOf returns a server's current epoch (0 if unknown).
func epochOf(k *kernel.Kernel, server kernel.ComponentID) uint64 {
	e, err := k.Epoch(server)
	if err != nil {
		return 0
	}
	return e
}

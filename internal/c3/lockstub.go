package c3

import (
	"fmt"

	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

// lockTrack is the hand-written tracking structure for one lock descriptor.
type lockTrack struct {
	clientID kernel.Word // the id the application holds
	serverID kernel.Word // the id the (current) server instance knows
	compid   kernel.Word // creating component, replayed on recovery
	epoch    uint64      // server epoch the descriptor is synced with
	// holders maps a thread to its outstanding take arguments so recovery
	// can re-acquire on the holder's behalf.
	holders map[kernel.ThreadID]lockHold
}

type lockHold struct {
	compid kernel.Word
	tid    kernel.Word
	epoch  uint64
}

// LockStub is the hand-written C³ client stub for the lock component.
type LockStub struct {
	cl      *Client
	k       *kernel.Kernel
	server  kernel.ComponentID
	descs   map[kernel.Word]*lockTrack
	metrics Metrics
}

// NewLockStub installs a hand-written lock stub into a C³ client.
func NewLockStub(cl *Client, server kernel.ComponentID) *LockStub {
	s := &LockStub{
		cl:     cl,
		k:      cl.sys.Kernel(),
		server: server,
		descs:  make(map[kernel.Word]*lockTrack),
	}
	cl.recoverers[server] = s
	return s
}

// Metrics returns the stub's counters.
func (s *LockStub) Metrics() Metrics { return s.metrics }

// Tracked returns the number of tracked descriptors.
func (s *LockStub) Tracked() int { return len(s.descs) }

// Alloc creates a lock.
func (s *LockStub) Alloc(t *kernel.Thread) (kernel.Word, error) {
	compid := kernel.Word(s.cl.comp)
	for attempt := 0; ; attempt++ {
		s.metrics.Invocations++
		id, err := s.k.Invoke(t, s.server, lock.FnAlloc, compid)
		if err == nil {
			s.metrics.TrackOps++
			s.descs[id] = &lockTrack{
				clientID: id,
				serverID: id,
				compid:   compid,
				epoch:    epochOf(s.k, s.server),
				holders:  make(map[kernel.ThreadID]lockHold),
			}
			return id, nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return 0, err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Take acquires the lock, recovering it first if the server was rebooted.
func (s *LockStub) Take(t *kernel.Thread, id kernel.Word) error {
	d, ok := s.descs[id]
	if !ok {
		return fmt.Errorf("c3 lock: unknown descriptor %d", id)
	}
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return err
		}
		s.metrics.Invocations++
		_, err := s.k.Invoke(t, s.server, lock.FnTake,
			kernel.Word(s.cl.comp), d.serverID, kernel.Word(t.ID()))
		if err == nil {
			s.metrics.TrackOps++
			d.holders[t.ID()] = lockHold{
				compid: kernel.Word(s.cl.comp),
				tid:    kernel.Word(t.ID()),
				epoch:  epochOf(s.k, s.server),
			}
			return nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
		s.metrics.Redos++
	}
}

// Release releases the lock.
func (s *LockStub) Release(t *kernel.Thread, id kernel.Word) error {
	d, ok := s.descs[id]
	if !ok {
		return fmt.Errorf("c3 lock: unknown descriptor %d", id)
	}
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return err
		}
		s.metrics.Invocations++
		_, err := s.k.Invoke(t, s.server, lock.FnRelease,
			kernel.Word(s.cl.comp), d.serverID, kernel.Word(t.ID()))
		if err == nil {
			s.metrics.TrackOps++
			delete(d.holders, t.ID())
			return nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
		s.metrics.Redos++
	}
}

// Free destroys the lock and drops its tracking data.
func (s *LockStub) Free(t *kernel.Thread, id kernel.Word) error {
	d, ok := s.descs[id]
	if !ok {
		return fmt.Errorf("c3 lock: unknown descriptor %d", id)
	}
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return err
		}
		s.metrics.Invocations++
		_, err := s.k.Invoke(t, s.server, lock.FnFree, d.serverID)
		if err == nil {
			s.metrics.TrackOps++
			delete(s.descs, id)
			return nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
		s.metrics.Redos++
	}
}

// recover brings one lock descriptor back after a µ-reboot: re-allocate,
// then re-acquire for every thread that held it (hand-rolled equivalent of
// the SuperGlue walk + hold replay).
func (s *LockStub) recover(t *kernel.Thread, d *lockTrack) error {
	cur := epochOf(s.k, s.server)
	if d.epoch == cur {
		return nil
	}
	s.metrics.Recoveries++
	// Non-preemptible walk: no other thread may observe a half-recovered
	// descriptor (hand-written equivalent of the runtime's critical section).
	s.k.PushNoPreempt(t)
	defer s.k.PopNoPreempt(t)
	for attempt := 0; ; attempt++ {
		id, err := s.k.Invoke(t, s.server, lock.FnAlloc, d.compid)
		if err == nil {
			d.serverID = id
			s.metrics.WalkSteps++
			break
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return fmt.Errorf("c3 lock: recovery alloc: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
	}
	// Re-read the epoch: a second fault during the walk advances it, and
	// stale bookkeeping here would skip the hold replay (a real bug this
	// repository's equivalence property test caught in an earlier version
	// of this hand-written stub — the paper's point about manual recovery
	// code being error-prone).
	cur = epochOf(s.k, s.server)
	for tid, h := range d.holders {
		if h.epoch == cur {
			continue
		}
		if _, err := s.k.Invoke(t, s.server, lock.FnTake, h.compid, d.serverID, h.tid); err != nil {
			return fmt.Errorf("c3 lock: re-acquiring for thread %d: %w", tid, err)
		}
		h.epoch = cur
		d.holders[tid] = h
		s.metrics.WalkSteps++
	}
	d.epoch = cur
	return nil
}

// recoverByKey implements upcallRecoverer.
func (s *LockStub) recoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error) {
	d, ok := s.descs[id]
	if !ok {
		return 0, fmt.Errorf("c3 lock: unknown descriptor %d", id)
	}
	if err := s.recover(t, d); err != nil {
		return 0, err
	}
	return d.serverID, nil
}

// recreateByServerID implements upcallRecoverer. Locks are not global, so
// this is never exercised; it exists because the hand-written stubs must
// each re-implement the upcall surface.
func (s *LockStub) recreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error) {
	for _, d := range s.descs {
		if d.serverID == stale {
			if err := s.recover(t, d); err != nil {
				return 0, err
			}
			return d.serverID, nil
		}
	}
	return 0, fmt.Errorf("c3 lock: no descriptor with server id %d", stale)
}

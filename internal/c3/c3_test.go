package c3

import (
	"bytes"
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// rig assembles a full C³ system: all six servers plus a C³ client.
type rig struct {
	sys   *core.System
	cl    *Client
	lock  kernel.ComponentID
	evt   kernel.ComponentID
	sched kernel.ComponentID
	timer kernel.ComponentID
	mm    kernel.ComponentID
	fs    kernel.ComponentID
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	r := &rig{sys: sys}
	for _, reg := range []struct {
		dst *kernel.ComponentID
		fn  func(*core.System) (kernel.ComponentID, error)
	}{
		{&r.lock, lock.Register},
		{&r.evt, event.Register},
		{&r.sched, sched.Register},
		{&r.timer, timer.Register},
		{&r.mm, mm.Register},
		{&r.fs, ramfs.Register},
	} {
		id, err := reg.fn(sys)
		if err != nil {
			t.Fatalf("registering server: %v", err)
		}
		*reg.dst = id
	}
	cl, err := NewClient(sys, "c3-app")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	r.cl = cl
	return r
}

func (r *rig) run(t *testing.T, body func(th *kernel.Thread)) {
	t.Helper()
	if _, err := r.sys.Kernel().CreateThread(nil, "main", 10, body); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := r.sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestLockStubBasicAndRecovery(t *testing.T) {
	r := newRig(t)
	st := NewLockStub(r.cl, r.lock)
	r.run(t, func(th *kernel.Thread) {
		id, err := st.Alloc(th)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		if err := st.Take(th, id); err != nil {
			t.Errorf("Take: %v", err)
		}
		if err := r.sys.Kernel().FailComponent(r.lock); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Release after the fault: the hand-written stub must re-allocate
		// and re-acquire on our behalf first.
		if err := st.Release(th, id); err != nil {
			t.Errorf("Release after fault: %v", err)
		}
		if err := st.Free(th, id); err != nil {
			t.Errorf("Free: %v", err)
		}
		if st.Tracked() != 0 {
			t.Errorf("tracked = %d; want 0", st.Tracked())
		}
		m := st.Metrics()
		if m.Recoveries == 0 || m.WalkSteps == 0 {
			t.Errorf("metrics = %+v; want recovery activity", m)
		}
	})
}

func TestEventStubGlobalRecovery(t *testing.T) {
	r := newRig(t)
	st, err := NewEventStub(r.cl, r.evt)
	if err != nil {
		t.Fatalf("NewEventStub: %v", err)
	}
	other, err := NewClient(r.sys, "c3-other")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	otherStub, err := NewEventStub(other, r.evt)
	if err != nil {
		t.Fatalf("NewEventStub(other): %v", err)
	}
	r.run(t, func(th *kernel.Thread) {
		id, err := st.Split(th, 0, 0)
		if err != nil {
			t.Errorf("Split: %v", err)
			return
		}
		if _, err := otherStub.Trigger(th, id); err != nil {
			t.Errorf("Trigger pre-fault: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.evt); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := r.sys.Kernel().Reboot(th, r.evt); err != nil {
			t.Errorf("Reboot: %v", err)
		}
		// Trigger from the non-creator with a stale global ID: the shared
		// server stub upcalls the creator's hand-written stub (G0).
		if _, err := otherStub.Trigger(th, id); err != nil {
			t.Errorf("Trigger post-fault: %v", err)
		}
		if _, err := st.Wait(th, id); err != nil {
			t.Errorf("Wait (consuming recovered triggers): %v", err)
		}
		if err := st.Free(th, id); err != nil {
			t.Errorf("Free: %v", err)
		}
	})
}

func TestSchedStubPingPongWithFault(t *testing.T) {
	r := newRig(t)
	st := NewSchedStub(r.cl, r.sched)
	k := r.sys.Kernel()
	var aID, bID kernel.ThreadID
	var err error
	rounds := 0
	bID, err = k.CreateThread(nil, "pong", 10, func(th *kernel.Thread) {
		if _, err := st.Setup(th, 10); err != nil {
			t.Errorf("setup b: %v", err)
			return
		}
		for i := 0; i < 4; i++ {
			if err := st.Blk(th); err != nil {
				t.Errorf("blk b: %v", err)
				return
			}
			rounds++
			if err := st.Wakeup(th, aID); err != nil {
				t.Errorf("wakeup a: %v", err)
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	aID, err = k.CreateThread(nil, "ping", 10, func(th *kernel.Thread) {
		if _, err := st.Setup(th, 10); err != nil {
			t.Errorf("setup a: %v", err)
			return
		}
		for i := 0; i < 4; i++ {
			if i == 2 {
				if err := k.FailComponent(r.sched); err != nil {
					t.Errorf("FailComponent: %v", err)
				}
			}
			if err := st.Wakeup(th, bID); err != nil {
				t.Errorf("wakeup b: %v", err)
				return
			}
			if err := st.Blk(th); err != nil {
				t.Errorf("blk a: %v", err)
				return
			}
		}
		if err := st.Wakeup(th, bID); err != nil {
			t.Errorf("final wakeup: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rounds != 4 {
		t.Fatalf("rounds = %d; want 4", rounds)
	}
}

func TestTimerStubRecovery(t *testing.T) {
	r := newRig(t)
	st := NewTimerStub(r.cl, r.timer)
	r.run(t, func(th *kernel.Thread) {
		id, err := st.Alloc(th, 500)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		if _, err := st.Wait(th, id); err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.timer); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := st.Wait(th, id); err != nil {
			t.Errorf("Wait after fault: %v", err)
		}
		if err := st.Free(th, id); err != nil {
			t.Errorf("Free: %v", err)
		}
	})
}

func TestMMStubSubtreeRecovery(t *testing.T) {
	r := newRig(t)
	st := NewMMStub(r.cl, r.mm)
	peer, err := NewClient(r.sys, "c3-peer")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	r.run(t, func(th *kernel.Thread) {
		if _, err := st.GetPage(th, 0x1000); err != nil {
			t.Errorf("GetPage: %v", err)
			return
		}
		if _, err := st.Alias(th, r.cl.ID(), 0x1000, peer.ID(), 0x2000); err != nil {
			t.Errorf("Alias: %v", err)
			return
		}
		if _, err := st.Alias(th, peer.ID(), 0x2000, r.cl.ID(), 0x3000); err != nil {
			t.Errorf("Alias chain: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.mm); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if err := st.Release(th, r.cl.ID(), 0x1000); err != nil {
			t.Errorf("Release after fault: %v", err)
			return
		}
		if st.Tracked() != 0 {
			t.Errorf("tracked = %d; want 0 after recursive release", st.Tracked())
		}
	})
}

func TestFSStubContentAndOffsetRecovery(t *testing.T) {
	r := newRig(t)
	st := NewFSStub(r.cl, r.fs)
	r.run(t, func(th *kernel.Thread) {
		fd, err := st.Open(th, "/c3.dat")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if _, err := st.Write(th, fd, []byte("abcdef")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		if _, err := st.Lseek(th, fd, 2); err != nil {
			t.Errorf("Lseek: %v", err)
			return
		}
		if err := r.sys.Kernel().FailComponent(r.fs); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		got, err := st.Read(th, fd, 3)
		if err != nil || !bytes.Equal(got, []byte("cde")) {
			t.Errorf("Read after fault = (%q, %v); want cde", got, err)
			return
		}
		if err := st.Close(th, fd); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
}

package c3

import (
	"fmt"

	"superglue/internal/kernel"
	"superglue/internal/services/timer"
)

// timerTrack is the hand-written tracking structure for one timer.
type timerTrack struct {
	clientID kernel.Word
	serverID kernel.Word
	compid   kernel.Word
	period   kernel.Word
	epoch    uint64
}

// TimerStub is the hand-written C³ client stub for the timer manager.
type TimerStub struct {
	cl      *Client
	k       *kernel.Kernel
	server  kernel.ComponentID
	descs   map[kernel.Word]*timerTrack
	metrics Metrics
}

// NewTimerStub installs a hand-written timer stub into a C³ client.
func NewTimerStub(cl *Client, server kernel.ComponentID) *TimerStub {
	s := &TimerStub{
		cl:     cl,
		k:      cl.sys.Kernel(),
		server: server,
		descs:  make(map[kernel.Word]*timerTrack),
	}
	cl.recoverers[server] = s
	return s
}

// Metrics returns the stub's counters.
func (s *TimerStub) Metrics() Metrics { return s.metrics }

// Alloc creates a periodic timer.
func (s *TimerStub) Alloc(t *kernel.Thread, period kernel.Time) (kernel.Word, error) {
	compid := kernel.Word(s.cl.comp)
	for attempt := 0; ; attempt++ {
		s.metrics.Invocations++
		id, err := s.k.Invoke(t, s.server, timer.FnAlloc, compid, kernel.Word(period))
		if err == nil {
			s.metrics.TrackOps++
			s.descs[id] = &timerTrack{
				clientID: id, serverID: id,
				compid: compid, period: kernel.Word(period),
				epoch: epochOf(s.k, s.server),
			}
			return id, nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return 0, err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Wait blocks until the timer's next period boundary.
func (s *TimerStub) Wait(t *kernel.Thread, id kernel.Word) (kernel.Time, error) {
	v, err := s.call(t, timer.FnWait, id)
	return kernel.Time(v), err
}

// Free destroys the timer.
func (s *TimerStub) Free(t *kernel.Thread, id kernel.Word) error {
	_, err := s.call(t, timer.FnFree, id)
	if err == nil {
		delete(s.descs, id)
	}
	return err
}

// call is the hand-written redo loop shared by wait/free.
func (s *TimerStub) call(t *kernel.Thread, fn string, id kernel.Word) (kernel.Word, error) {
	d, ok := s.descs[id]
	if !ok {
		return 0, fmt.Errorf("c3 timer: unknown descriptor %d", id)
	}
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return 0, err
		}
		s.metrics.Invocations++
		ret, err := s.k.Invoke(t, s.server, fn, kernel.Word(s.cl.comp), d.serverID)
		if err == nil {
			s.metrics.TrackOps++
			return ret, nil
		}
		f, isFault := kernel.AsFault(err)
		if !isFault || f.Comp != s.server {
			return ret, err
		}
		if attempt >= maxRedo {
			return 0, fmt.Errorf("c3 timer: %s: retries exhausted: %w", fn, err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// recover re-allocates a timer after a µ-reboot, replaying its period.
func (s *TimerStub) recover(t *kernel.Thread, d *timerTrack) error {
	if d.epoch == epochOf(s.k, s.server) {
		return nil
	}
	s.metrics.Recoveries++
	// Non-preemptible walk: no other thread may observe a half-recovered
	// descriptor (hand-written equivalent of the runtime's critical section).
	s.k.PushNoPreempt(t)
	defer s.k.PopNoPreempt(t)
	for attempt := 0; ; attempt++ {
		id, err := s.k.Invoke(t, s.server, timer.FnAlloc, d.compid, d.period)
		if err == nil {
			d.serverID = id
			// Re-read: a mid-walk fault advances the epoch past cur.
			d.epoch = epochOf(s.k, s.server)
			s.metrics.WalkSteps++
			return nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return fmt.Errorf("c3 timer: recovery alloc: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
	}
}

// recoverByKey implements upcallRecoverer.
func (s *TimerStub) recoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error) {
	d, ok := s.descs[id]
	if !ok {
		return 0, fmt.Errorf("c3 timer: unknown descriptor %d", id)
	}
	if err := s.recover(t, d); err != nil {
		return 0, err
	}
	return d.serverID, nil
}

// recreateByServerID implements upcallRecoverer.
func (s *TimerStub) recreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error) {
	for _, d := range s.descs {
		if d.serverID == stale {
			if err := s.recover(t, d); err != nil {
				return 0, err
			}
			return d.serverID, nil
		}
	}
	return 0, fmt.Errorf("c3 timer: no descriptor with server id %d", stale)
}

package c3

import (
	"fmt"

	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/storage"
)

// evtTrack is the hand-written tracking structure for one event descriptor.
type evtTrack struct {
	clientID kernel.Word
	serverID kernel.Word
	compid   kernel.Word
	parent   kernel.Word // client-visible parent event id, 0 for roots
	grp      kernel.Word
	epoch    uint64
}

// EventStub is the hand-written C³ client stub for the event component.
// Unlike under SuperGlue — which generates the storage-component
// interactions from `desc_is_global = true` — every storage call here is
// explicit (§III-C G0: "In C³, explicit code to interact with storage
// components was required").
type EventStub struct {
	cl      *Client
	k       *kernel.Kernel
	server  kernel.ComponentID
	class   storage.Class
	descs   map[kernel.Word]*evtTrack
	metrics Metrics
}

// NewEventStub installs a hand-written event stub into a C³ client.
func NewEventStub(cl *Client, server kernel.ComponentID) (*EventStub, error) {
	class, ok := cl.sys.Class(server)
	if !ok {
		return nil, fmt.Errorf("c3 event: component %d has no storage class", server)
	}
	s := &EventStub{
		cl:     cl,
		k:      cl.sys.Kernel(),
		server: server,
		class:  class,
		descs:  make(map[kernel.Word]*evtTrack),
	}
	cl.recoverers[server] = s
	return s, nil
}

// Metrics returns the stub's counters.
func (s *EventStub) Metrics() Metrics { return s.metrics }

// Split creates an event, registering its creator with the storage
// component by hand.
func (s *EventStub) Split(t *kernel.Thread, parent, grp kernel.Word) (kernel.Word, error) {
	compid := kernel.Word(s.cl.comp)
	for attempt := 0; ; attempt++ {
		sparent := parent
		if parent > 0 {
			if pd, ok := s.descs[parent]; ok {
				if err := s.recover(t, pd); err != nil {
					return 0, err
				}
				sparent = pd.serverID
			}
		}
		s.metrics.Invocations++
		id, err := s.k.Invoke(t, s.server, event.FnSplit, compid, sparent, grp)
		if err == nil {
			s.metrics.TrackOps++
			s.descs[id] = &evtTrack{
				clientID: id, serverID: id,
				compid: compid, parent: parent, grp: grp,
				epoch: epochOf(s.k, s.server),
			}
			// Explicit storage-component interaction: record the creator.
			if _, serr := s.k.Invoke(t, s.cl.sys.StorageComp(), storage.FnRecordCreator,
				kernel.Word(s.class), id, compid, compid, sparent, grp); serr != nil {
				return 0, fmt.Errorf("c3 event: recording creator: %w", serr)
			}
			return id, nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return 0, err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Wait blocks on the event.
func (s *EventStub) Wait(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	return s.call(t, event.FnWait, id)
}

// Trigger fires the event.
func (s *EventStub) Trigger(t *kernel.Thread, id kernel.Word) (kernel.Word, error) {
	return s.call(t, event.FnTrigger, id)
}

// Free destroys the event and removes its storage record by hand.
func (s *EventStub) Free(t *kernel.Thread, id kernel.Word) error {
	ret, err := s.call(t, event.FnFree, id)
	_ = ret
	if err != nil {
		return err
	}
	if d, ok := s.descs[id]; ok {
		if _, serr := s.k.Invoke(t, s.cl.sys.StorageComp(), storage.FnRemoveCreator,
			kernel.Word(s.class), d.serverID); serr != nil {
			return fmt.Errorf("c3 event: removing creator record: %w", serr)
		}
		delete(s.descs, id)
	}
	return nil
}

// call is the shared hand-written redo loop for wait/trigger/free.
func (s *EventStub) call(t *kernel.Thread, fn string, id kernel.Word) (kernel.Word, error) {
	d := s.descs[id] // may be nil: global descriptor created elsewhere
	compid := kernel.Word(s.cl.comp)
	for attempt := 0; ; attempt++ {
		sid := id
		if d != nil {
			if err := s.recover(t, d); err != nil {
				return 0, err
			}
			sid = d.serverID
		} else {
			// Hand-written global-ID resolution through the storage
			// component (SuperGlue generates this).
			resolved, err := s.k.Invoke(t, s.cl.sys.StorageComp(), storage.FnResolve,
				kernel.Word(s.class), id)
			if err != nil {
				return 0, err
			}
			sid = resolved
		}
		s.metrics.Invocations++
		ret, err := s.k.Invoke(t, s.server, fn, compid, sid)
		if err == nil {
			s.metrics.TrackOps++
			return ret, nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server {
			return ret, err
		}
		if attempt >= maxRedo {
			return 0, fmt.Errorf("c3 event: %s: retries exhausted: %w", fn, err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// recover recreates one event descriptor after a µ-reboot: parent first,
// then a hand-rolled split replay, then the explicit storage remap.
func (s *EventStub) recover(t *kernel.Thread, d *evtTrack) error {
	cur := epochOf(s.k, s.server)
	if d.epoch == cur {
		return nil
	}
	s.metrics.Recoveries++
	// Non-preemptible walk: no other thread may observe a half-recovered
	// descriptor (hand-written equivalent of the runtime's critical section).
	s.k.PushNoPreempt(t)
	defer s.k.PopNoPreempt(t)
	sparent := kernel.Word(0)
	if d.parent > 0 {
		if pd, ok := s.descs[d.parent]; ok {
			if err := s.recover(t, pd); err != nil {
				return fmt.Errorf("c3 event: recovering parent %d: %w", d.parent, err)
			}
			sparent = pd.serverID
		}
	}
	old := d.serverID
	for attempt := 0; ; attempt++ {
		id, err := s.k.Invoke(t, s.server, event.FnSplit, d.compid, sparent, d.grp)
		if err == nil {
			d.serverID = id
			s.metrics.WalkSteps++
			break
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return fmt.Errorf("c3 event: recovery split: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
	}
	// Re-read the epoch: a second fault during the walk advances it.
	cur = epochOf(s.k, s.server)
	// Explicit remap so other components' stale IDs resolve here.
	if old != d.serverID {
		if _, err := s.k.Invoke(t, s.cl.sys.StorageComp(), storage.FnRemap,
			kernel.Word(s.class), old, d.serverID); err != nil {
			return fmt.Errorf("c3 event: remapping %d→%d: %w", old, d.serverID, err)
		}
	}
	d.epoch = cur
	return nil
}

// recoverByKey implements upcallRecoverer.
func (s *EventStub) recoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error) {
	d, ok := s.descs[id]
	if !ok {
		return 0, fmt.Errorf("c3 event: unknown descriptor %d", id)
	}
	if err := s.recover(t, d); err != nil {
		return 0, err
	}
	return d.serverID, nil
}

// recreateByServerID implements upcallRecoverer: the server-side stub found
// a stale global ID and upcalled us, the recorded creator.
func (s *EventStub) recreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error) {
	for _, d := range s.descs {
		if d.serverID == stale {
			if err := s.recover(t, d); err != nil {
				return 0, err
			}
			return d.serverID, nil
		}
	}
	// Possibly already remapped by our own recovery.
	now, err := s.k.Invoke(t, s.cl.sys.StorageComp(), storage.FnResolve, kernel.Word(s.class), stale)
	if err != nil {
		return 0, err
	}
	if now != stale {
		return now, nil
	}
	return 0, fmt.Errorf("c3 event: no descriptor with server id %d", stale)
}

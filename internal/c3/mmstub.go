package c3

import (
	"fmt"

	"superglue/internal/kernel"
	"superglue/internal/services/mm"
)

// mmKey identifies a mapping descriptor: vaddr within a protection domain.
type mmKey struct {
	spd   kernel.Word
	vaddr kernel.Word
}

// mmTrack is the hand-written tracking structure for one mapping.
type mmTrack struct {
	key      mmKey
	isRoot   bool
	flags    kernel.Word
	parent   *mmTrack
	children []*mmTrack
	epoch    uint64
}

// MMStub is the hand-written C³ client stub for the memory manager: it
// hand-rolls the dependency-tree bookkeeping (parents recovered first,
// children rebuilt before a recursive revocation) that SuperGlue derives
// from `desc_has_parent = xcparent` and `desc_close_children = true`.
type MMStub struct {
	cl      *Client
	k       *kernel.Kernel
	server  kernel.ComponentID
	descs   map[mmKey]*mmTrack
	metrics Metrics
}

// NewMMStub installs a hand-written MM stub into a C³ client.
func NewMMStub(cl *Client, server kernel.ComponentID) *MMStub {
	s := &MMStub{
		cl:     cl,
		k:      cl.sys.Kernel(),
		server: server,
		descs:  make(map[mmKey]*mmTrack),
	}
	cl.recoverers[server] = s
	return s
}

// Metrics returns the stub's counters.
func (s *MMStub) Metrics() Metrics { return s.metrics }

// Tracked returns the number of tracked mappings.
func (s *MMStub) Tracked() int { return len(s.descs) }

// GetPage creates a root mapping in the calling component.
func (s *MMStub) GetPage(t *kernel.Thread, vaddr kernel.Word) (kernel.Word, error) {
	key := mmKey{kernel.Word(s.cl.comp), vaddr}
	for attempt := 0; ; attempt++ {
		s.metrics.Invocations++
		ret, err := s.k.Invoke(t, s.server, mm.FnGetPage, key.spd, key.vaddr, 0)
		if err == nil {
			s.metrics.TrackOps++
			s.descs[key] = &mmTrack{key: key, isRoot: true, epoch: epochOf(s.k, s.server)}
			return ret, nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return 0, err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Alias aliases mapping (srcSpd, srcVaddr) into (dstSpd, dstVaddr).
func (s *MMStub) Alias(t *kernel.Thread, srcSpd kernel.ComponentID, srcVaddr kernel.Word, dstSpd kernel.ComponentID, dstVaddr kernel.Word) (kernel.Word, error) {
	src := mmKey{kernel.Word(srcSpd), srcVaddr}
	dst := mmKey{kernel.Word(dstSpd), dstVaddr}
	parent, tracked := s.descs[src]
	for attempt := 0; ; attempt++ {
		if tracked {
			if err := s.recover(t, parent); err != nil {
				return 0, err
			}
		}
		s.metrics.Invocations++
		ret, err := s.k.Invoke(t, s.server, mm.FnAliasPage, src.spd, src.vaddr, dst.spd, dst.vaddr)
		if err == nil {
			s.metrics.TrackOps++
			d := &mmTrack{key: dst, epoch: epochOf(s.k, s.server)}
			if tracked {
				d.parent = parent
				parent.children = append(parent.children, d)
			}
			s.descs[dst] = d
			return ret, nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return 0, err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Release revokes mapping (spd, vaddr) and its subtree.
func (s *MMStub) Release(t *kernel.Thread, spd kernel.ComponentID, vaddr kernel.Word) error {
	key := mmKey{kernel.Word(spd), vaddr}
	d, ok := s.descs[key]
	if !ok {
		return fmt.Errorf("c3 mm: unknown mapping %v", key)
	}
	for attempt := 0; ; attempt++ {
		// Hand-rolled D0: rebuild the whole subtree before the recursive
		// revocation so the server can revoke every alias.
		if err := s.recoverSubtree(t, d); err != nil {
			return err
		}
		s.metrics.Invocations++
		_, err := s.k.Invoke(t, s.server, mm.FnReleasePage, key.spd, key.vaddr)
		if err == nil {
			s.metrics.TrackOps++
			s.dropSubtree(d)
			if d.parent != nil {
				d.parent.removeChild(d)
			}
			return nil
		}
		f, isFault := kernel.AsFault(err)
		if !isFault || f.Comp != s.server {
			return err
		}
		if attempt >= maxRedo {
			return fmt.Errorf("c3 mm: release: retries exhausted: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
		s.metrics.Redos++
	}
}

// recover rebuilds one mapping, parents first (hand-rolled D1).
func (s *MMStub) recover(t *kernel.Thread, d *mmTrack) error {
	if d.epoch == epochOf(s.k, s.server) {
		return nil
	}
	s.metrics.Recoveries++
	// Non-preemptible walk: no other thread may observe a half-recovered
	// descriptor (hand-written equivalent of the runtime's critical section).
	s.k.PushNoPreempt(t)
	defer s.k.PopNoPreempt(t)
	if d.parent != nil {
		if err := s.recover(t, d.parent); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		var err error
		if d.isRoot {
			_, err = s.k.Invoke(t, s.server, mm.FnGetPage, d.key.spd, d.key.vaddr, d.flags)
		} else if d.parent != nil {
			_, err = s.k.Invoke(t, s.server, mm.FnAliasPage,
				d.parent.key.spd, d.parent.key.vaddr, d.key.spd, d.key.vaddr)
		} else {
			return fmt.Errorf("c3 mm: alias %v lost its parent", d.key)
		}
		if err == nil {
			s.metrics.WalkSteps++
			// Re-read: a mid-walk fault advances the epoch past cur.
			d.epoch = epochOf(s.k, s.server)
			return nil
		}
		f, ok := kernel.AsFault(err)
		if !ok || f.Comp != s.server || attempt >= maxRedo {
			return fmt.Errorf("c3 mm: recovering %v: %w", d.key, err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
	}
}

// recoverSubtree rebuilds d and every descendant.
func (s *MMStub) recoverSubtree(t *kernel.Thread, d *mmTrack) error {
	if err := s.recover(t, d); err != nil {
		return err
	}
	for _, c := range d.children {
		if err := s.recoverSubtree(t, c); err != nil {
			return err
		}
	}
	return nil
}

// dropSubtree forgets d's descendants and d itself.
func (s *MMStub) dropSubtree(d *mmTrack) {
	for _, c := range d.children {
		s.dropSubtree(c)
	}
	d.children = nil
	delete(s.descs, d.key)
}

func (d *mmTrack) removeChild(c *mmTrack) {
	for i, got := range d.children {
		if got == c {
			d.children = append(d.children[:i], d.children[i+1:]...)
			return
		}
	}
}

// recoverByKey implements upcallRecoverer.
func (s *MMStub) recoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error) {
	d, ok := s.descs[mmKey{ns, id}]
	if !ok {
		return 0, fmt.Errorf("c3 mm: unknown mapping %d@%d", id, ns)
	}
	if err := s.recover(t, d); err != nil {
		return 0, err
	}
	return d.key.vaddr, nil
}

// recreateByServerID implements upcallRecoverer; MM descriptors are
// client-chosen, so stale-ID recreation is never exercised.
func (s *MMStub) recreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error) {
	return 0, fmt.Errorf("c3 mm: descriptors are client-addressed; no server id %d", stale)
}

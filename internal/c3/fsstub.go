package c3

import (
	"fmt"

	"superglue/internal/cbuf"
	"superglue/internal/kernel"
	"superglue/internal/services/ramfs"
)

// fsTrack is the hand-written tracking structure for one file descriptor:
// the path (as a retained buffer reference) and the offset, updated by hand
// from every read/write return value (§II-C's description of the C³ FS
// stub).
type fsTrack struct {
	clientFD kernel.Word
	serverFD kernel.Word
	compid   kernel.Word
	pathBuf  kernel.Word
	pathLen  kernel.Word
	offset   kernel.Word
	epoch    uint64
}

// FSStub is the hand-written C³ client stub for the RAM filesystem — the
// paper's example of stub-code bloat ("more than 398 lines of code" for a
// ~500-line component).
type FSStub struct {
	cl       *Client
	k        *kernel.Kernel
	cm       *cbuf.Manager
	server   kernel.ComponentID
	descs    map[kernel.Word]*fsTrack
	pathBufs map[string]cbuf.ID
	metrics  Metrics
	// readBuf is the reusable, server-delegated result buffer.
	readBuf     cbuf.ID
	readBufSize int
}

// NewFSStub installs a hand-written filesystem stub into a C³ client.
func NewFSStub(cl *Client, server kernel.ComponentID) *FSStub {
	s := &FSStub{
		cl:       cl,
		k:        cl.sys.Kernel(),
		cm:       cl.sys.Cbufs(),
		server:   server,
		descs:    make(map[kernel.Word]*fsTrack),
		pathBufs: make(map[string]cbuf.ID),
	}
	cl.recoverers[server] = s
	return s
}

// Metrics returns the stub's counters.
func (s *FSStub) Metrics() Metrics { return s.metrics }

// Open opens (creating if necessary) the file at path.
func (s *FSStub) Open(t *kernel.Thread, path string) (kernel.Word, error) {
	buf, ok := s.pathBufs[path]
	if !ok {
		var err error
		buf, err = s.cm.Alloc(cbuf.ComponentID(s.cl.comp), len(path))
		if err != nil {
			return 0, fmt.Errorf("c3 fs: allocating path buffer: %w", err)
		}
		if err := s.cm.Write(buf, cbuf.ComponentID(s.cl.comp), 0, []byte(path)); err != nil {
			return 0, fmt.Errorf("c3 fs: writing path buffer: %w", err)
		}
		if err := s.cm.Map(buf, cbuf.ComponentID(s.server)); err != nil {
			return 0, fmt.Errorf("c3 fs: mapping path buffer: %w", err)
		}
		s.pathBufs[path] = buf
	}
	compid := kernel.Word(s.cl.comp)
	for attempt := 0; ; attempt++ {
		s.metrics.Invocations++
		fd, err := s.k.Invoke(t, s.server, ramfs.FnOpen, compid, kernel.Word(buf), kernel.Word(len(path)))
		if err == nil {
			s.metrics.TrackOps++
			s.descs[fd] = &fsTrack{
				clientFD: fd, serverFD: fd,
				compid: compid, pathBuf: kernel.Word(buf), pathLen: kernel.Word(len(path)),
				epoch: epochOf(s.k, s.server),
			}
			return fd, nil
		}
		f, isFault := kernel.AsFault(err)
		if !isFault || f.Comp != s.server || attempt >= maxRedo {
			return 0, err
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Write writes data at the descriptor's offset; the offset is tracked by
// hand from the return value.
func (s *FSStub) Write(t *kernel.Thread, fd kernel.Word, data []byte) (int, error) {
	d, ok := s.descs[fd]
	if !ok {
		return 0, fmt.Errorf("c3 fs: unknown fd %d", fd)
	}
	if len(data) == 0 {
		return 0, nil
	}
	buf, err := s.cm.Alloc(cbuf.ComponentID(s.cl.comp), len(data))
	if err != nil {
		return 0, fmt.Errorf("c3 fs: allocating data buffer: %w", err)
	}
	if err := s.cm.Write(buf, cbuf.ComponentID(s.cl.comp), 0, data); err != nil {
		return 0, fmt.Errorf("c3 fs: filling data buffer: %w", err)
	}
	if err := s.cm.Map(buf, cbuf.ComponentID(s.server)); err != nil {
		return 0, fmt.Errorf("c3 fs: mapping data buffer: %w", err)
	}
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return 0, err
		}
		s.metrics.Invocations++
		n, err := s.k.Invoke(t, s.server, ramfs.FnWrite,
			kernel.Word(s.cl.comp), d.serverFD, kernel.Word(buf), kernel.Word(len(data)))
		if err == nil {
			s.metrics.TrackOps++
			d.offset += n
			return int(n), nil
		}
		f, isFault := kernel.AsFault(err)
		if !isFault || f.Comp != s.server {
			return 0, err
		}
		if attempt >= maxRedo {
			return 0, fmt.Errorf("c3 fs: write: retries exhausted: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Read reads up to n bytes from the descriptor's offset.
func (s *FSStub) Read(t *kernel.Thread, fd kernel.Word, n int) ([]byte, error) {
	d, ok := s.descs[fd]
	if !ok {
		return nil, fmt.Errorf("c3 fs: unknown fd %d", fd)
	}
	if n <= 0 {
		return nil, nil
	}
	if n > s.readBufSize {
		if s.readBufSize > 0 {
			if err := s.cm.Free(s.readBuf, cbuf.ComponentID(s.cl.comp)); err != nil {
				return nil, fmt.Errorf("c3 fs: releasing read buffer: %w", err)
			}
		}
		nb, err := s.cm.Alloc(cbuf.ComponentID(s.cl.comp), n)
		if err != nil {
			return nil, fmt.Errorf("c3 fs: allocating read buffer: %w", err)
		}
		if err := s.cm.Delegate(nb, cbuf.ComponentID(s.cl.comp), cbuf.ComponentID(s.server)); err != nil {
			return nil, fmt.Errorf("c3 fs: delegating read buffer: %w", err)
		}
		s.readBuf, s.readBufSize = nb, n
	}
	buf := s.readBuf
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return nil, err
		}
		s.metrics.Invocations++
		got, err := s.k.Invoke(t, s.server, ramfs.FnRead,
			kernel.Word(s.cl.comp), d.serverFD, kernel.Word(buf), kernel.Word(n))
		if err == nil {
			s.metrics.TrackOps++
			d.offset += got
			return s.cm.Read(buf, cbuf.ComponentID(s.cl.comp), 0, int(got))
		}
		f, isFault := kernel.AsFault(err)
		if !isFault || f.Comp != s.server {
			return nil, err
		}
		if attempt >= maxRedo {
			return nil, fmt.Errorf("c3 fs: read: retries exhausted: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return nil, uerr
		}
		s.metrics.Redos++
	}
}

// Lseek sets the descriptor's absolute offset.
func (s *FSStub) Lseek(t *kernel.Thread, fd kernel.Word, offset int) (int, error) {
	d, ok := s.descs[fd]
	if !ok {
		return 0, fmt.Errorf("c3 fs: unknown fd %d", fd)
	}
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return 0, err
		}
		s.metrics.Invocations++
		v, err := s.k.Invoke(t, s.server, ramfs.FnLseek, d.serverFD, kernel.Word(offset))
		if err == nil {
			s.metrics.TrackOps++
			d.offset = v
			return int(v), nil
		}
		f, isFault := kernel.AsFault(err)
		if !isFault || f.Comp != s.server {
			return 0, err
		}
		if attempt >= maxRedo {
			return 0, fmt.Errorf("c3 fs: lseek: retries exhausted: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return 0, uerr
		}
		s.metrics.Redos++
	}
}

// Close closes the descriptor and drops its tracking data.
func (s *FSStub) Close(t *kernel.Thread, fd kernel.Word) error {
	d, ok := s.descs[fd]
	if !ok {
		return fmt.Errorf("c3 fs: unknown fd %d", fd)
	}
	for attempt := 0; ; attempt++ {
		if err := s.recover(t, d); err != nil {
			return err
		}
		s.metrics.Invocations++
		_, err := s.k.Invoke(t, s.server, ramfs.FnClose, kernel.Word(s.cl.comp), d.serverFD)
		if err == nil {
			s.metrics.TrackOps++
			delete(s.descs, fd)
			return nil
		}
		f, isFault := kernel.AsFault(err)
		if !isFault || f.Comp != s.server {
			return err
		}
		if attempt >= maxRedo {
			return fmt.Errorf("c3 fs: close: retries exhausted: %w", err)
		}
		if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
			return uerr
		}
		s.metrics.Redos++
	}
}

// recover re-opens a file descriptor after a µ-reboot: replay fs_open with
// the retained path buffer (file contents come back via the storage
// component inside the server, G1), then restore the offset with fs_lseek —
// the hand-written "open and lseek" of §II-C.
func (s *FSStub) recover(t *kernel.Thread, d *fsTrack) error {
	if d.epoch == epochOf(s.k, s.server) {
		return nil
	}
	s.metrics.Recoveries++
	// Non-preemptible walk: no other thread may observe a half-recovered
	// descriptor (hand-written equivalent of the runtime's critical section).
	s.k.PushNoPreempt(t)
	defer s.k.PopNoPreempt(t)
	for attempt := 0; ; attempt++ {
		fd, err := s.k.Invoke(t, s.server, ramfs.FnOpen, d.compid, d.pathBuf, d.pathLen)
		if err != nil {
			f, ok := kernel.AsFault(err)
			if !ok || f.Comp != s.server || attempt >= maxRedo {
				return fmt.Errorf("c3 fs: recovery open: %w", err)
			}
			if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
				return uerr
			}
			continue
		}
		d.serverFD = fd
		s.metrics.WalkSteps++
		if _, err := s.k.Invoke(t, s.server, ramfs.FnLseek, d.serverFD, d.offset); err != nil {
			f, ok := kernel.AsFault(err)
			if !ok || f.Comp != s.server || attempt >= maxRedo {
				return fmt.Errorf("c3 fs: recovery lseek: %w", err)
			}
			if uerr := faultUpdate(t, s.k, s.server, f); uerr != nil {
				return uerr
			}
			continue
		}
		s.metrics.WalkSteps++
		// Re-read: a mid-walk fault advances the epoch past cur.
		d.epoch = epochOf(s.k, s.server)
		return nil
	}
}

// recoverByKey implements upcallRecoverer.
func (s *FSStub) recoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error) {
	d, ok := s.descs[id]
	if !ok {
		return 0, fmt.Errorf("c3 fs: unknown fd %d", id)
	}
	if err := s.recover(t, d); err != nil {
		return 0, err
	}
	return d.serverFD, nil
}

// recreateByServerID implements upcallRecoverer.
func (s *FSStub) recreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error) {
	for _, d := range s.descs {
		if d.serverFD == stale {
			if err := s.recover(t, d); err != nil {
				return 0, err
			}
			return d.serverFD, nil
		}
	}
	return 0, fmt.Errorf("c3 fs: no descriptor with server fd %d", stale)
}

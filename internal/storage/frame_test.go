package storage

import (
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("checkpoint"), 1000)} {
		f := SealFrame(payload)
		got, err := OpenFrame(f)
		if err != nil {
			t.Fatalf("OpenFrame(SealFrame(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload round trip mismatch: %d bytes in, %d out", len(payload), len(got))
		}
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	f := SealFrame([]byte("the campaign checkpoint payload"))
	// Every single-bit flip anywhere in the frame must be rejected.
	for i := range f {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), f...)
			mut[i] ^= 1 << bit
			if _, err := OpenFrame(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
	// Truncations (torn writes) must be rejected too.
	for n := 0; n < len(f); n++ {
		if _, err := OpenFrame(f[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := OpenFrame(append(append([]byte(nil), f...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"superglue/internal/cbuf"
	"superglue/internal/fault"
	"superglue/internal/kernel"
)

func newReplicatedStore(n int) (*Store, *cbuf.Manager) {
	cm := cbuf.NewManager(0)
	s := NewReplicated(cm, n)
	s.Attach(kernel.ComponentID(42))
	return s, cm
}

// populate writes a deterministic mix of creators, slices, and remaps.
func populate(t *testing.T, s *Store, cm *cbuf.Manager) map[kernel.Word][]byte {
	t.Helper()
	want := make(map[kernel.Word][]byte)
	for id := kernel.Word(1); id <= 5; id++ {
		s.RecordCreator(testClass, id, 3, []kernel.Word{id * 10})
		data := bytes.Repeat([]byte{byte('a' + id)}, int(4+id))
		b := writeCbuf(t, cm, 9, data)
		if err := s.SaveSlice(testClass, id, 0, b, 0, len(data)); err != nil {
			t.Fatalf("SaveSlice(%d): %v", id, err)
		}
		want[id] = data
	}
	s.Remap(testClass, 1, 6)
	want[6] = want[1]
	delete(want, 1)
	return want
}

// checkContents verifies every resource reads back correctly through the
// quorum and resolves through remap chains.
func checkContents(t *testing.T, s *Store, want map[kernel.Word][]byte) {
	t.Helper()
	for id, data := range want {
		got, err := s.ReadAll(testClass, id)
		if err != nil {
			t.Fatalf("ReadAll(%d): %v", id, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("ReadAll(%d) = %q; want %q", id, got, data)
		}
	}
	if got := s.Resolve(testClass, 1); got != 6 {
		t.Fatalf("Resolve(1) = %d; want 6", got)
	}
}

func TestReplicatedStoreBasicAgreement(t *testing.T) {
	s, cm := newReplicatedStore(3)
	want := populate(t, s, cm)
	checkContents(t, s, want)
	if got := s.Replicas(); got != 3 {
		t.Fatalf("Replicas = %d; want 3", got)
	}
	if n := s.QuorumRepairs(); n != 0 {
		t.Fatalf("QuorumRepairs = %d on a healthy store; want 0", n)
	}
}

func TestQuorumSurvivesMinorityCrash(t *testing.T) {
	s, cm := newReplicatedStore(3)
	want := populate(t, s, cm)
	if !s.CrashReplica(1) {
		t.Fatal("CrashReplica(1) = false")
	}
	if s.ReplicaLive(1) {
		t.Fatal("replica 1 still live after crash")
	}
	// Every read must still be correct; the first operation rebuilds the
	// crashed replica from its checkpoint + WAL.
	checkContents(t, s, want)
	if !s.ReplicaLive(1) {
		t.Fatal("replica 1 not rebuilt by subsequent reads")
	}
	// The detection was booked as a typed storage-crash event.
	var crashEvents int
	for _, e := range s.Faults() {
		if e.Kind == fault.KindStorageCrash {
			crashEvents++
		}
	}
	if crashEvents != 1 {
		t.Fatalf("booked %d storage-crash events; want 1", crashEvents)
	}
}

func TestQuorumSurvivesMinorityCorruption(t *testing.T) {
	// Walk pick over a wide range so the flip lands in live slice state,
	// WAL records, and (with a low checkpoint trigger) checkpoints.
	for pick := 0; pick < 40; pick += 7 {
		t.Run(fmt.Sprintf("pick=%d", pick), func(t *testing.T) {
			s, cm := newReplicatedStore(3)
			s.SetCheckpointEvery(8)
			want := populate(t, s, cm)
			if _, ok := s.CorruptReplica(2, pick); !ok {
				t.Fatal("CorruptReplica found nothing to corrupt")
			}
			// A corrupt WAL/checkpoint only matters at rebuild: crash the
			// replica so the next read replays its durable images.
			s.CrashReplica(2)
			checkContents(t, s, want)
			// And the store must have converged: every replica agrees again.
			if _, ok := s.CorruptReplica(2, pick); !ok {
				t.Fatal("replica 2 empty after repair")
			}
			s.CrashReplica(2)
			checkContents(t, s, want)
		})
	}
}

func TestQuorumRepairsDivergentLiveReplica(t *testing.T) {
	s, cm := newReplicatedStore(3)
	want := populate(t, s, cm)
	// Corrupt a live slice checksum on replica 0 (the legacy CorruptOne
	// path targets replica 0). Reads must still serve the majority's data
	// and repair the divergent copy.
	if _, ok := s.CorruptOne(testClass, 0); !ok {
		t.Fatal("CorruptOne found nothing")
	}
	checkContents(t, s, want)
	if n := s.QuorumRepairs(); n == 0 {
		t.Fatal("QuorumRepairs = 0; want at least one repair")
	}
	if n := s.CorruptionsDetected(); n == 0 {
		t.Fatal("CorruptionsDetected = 0; want at least one detection")
	}
	// After the repair the store is healthy: no further repairs needed.
	before := s.QuorumRepairs()
	checkContents(t, s, want)
	if after := s.QuorumRepairs(); after != before {
		t.Fatalf("repairs grew %d -> %d on a repaired store", before, after)
	}
}

func TestSingleReplicaCorruptionIsDataLoss(t *testing.T) {
	// The -replicas 1 store is the paper's trusted single copy: a
	// corrupted extent has no peer to repair from, so the read fails with
	// ErrCorrupted — the expected data-loss outcome docs/STORAGE.md
	// documents for single-copy campaigns.
	s, cm := newStore()
	data := []byte("irreplaceable")
	b := writeCbuf(t, cm, 9, data)
	if err := s.SaveSlice(testClass, 1, 0, b, 0, len(data)); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	if _, ok := s.CorruptOne(testClass, 0); !ok {
		t.Fatal("CorruptOne found nothing")
	}
	if _, err := s.ReadAll(testClass, 1); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("ReadAll error = %v; want ErrCorrupted", err)
	}
}

func TestCrashAllReplicasStillRebuilds(t *testing.T) {
	// Fail-stop loses only in-memory state; the durable WAL + checkpoint
	// images survive, so even a full-store crash rebuilds losslessly (the
	// model's analogue of a power cycle).
	s, cm := newReplicatedStore(3)
	want := populate(t, s, cm)
	for i := 0; i < 3; i++ {
		s.CrashReplica(i)
	}
	checkContents(t, s, want)
}

// TestCheckpointReplayMatchesLiveState is the checkpoint+replay == live
// property: after a random operation sequence and a crash at a random
// point, a rebuilt replica must answer every query exactly like a store
// that never crashed.
func TestCheckpointReplayMatchesLiveState(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			live, cmLive := newReplicatedStore(3)
			crashed, cmCrashed := newReplicatedStore(3)
			live.SetCheckpointEvery(5)
			crashed.SetCheckpointEvery(5)
			rng := rand.New(rand.NewSource(seed))
			nOps := 10 + rng.Intn(40)
			crashAt := rng.Intn(nOps)
			rngOps := rand.New(rand.NewSource(seed + 1000))
			for op := 0; op < nOps; op++ {
				if op == crashAt {
					crashed.CrashReplica(rngOps.Intn(3))
				}
				id := kernel.Word(rngOps.Intn(6) + 1)
				// One deterministic draw stream drives both stores.
				kind := rngOps.Intn(6)
				data := bytes.Repeat([]byte{byte('a' + id)}, rngOps.Intn(8)+1)
				off := rngOps.Intn(4)
				apply := func(s *Store, cm *cbuf.Manager) {
					switch kind {
					case 0:
						s.RecordCreator(testClass, id, 3, []kernel.Word{id})
					case 1:
						s.RemoveCreator(testClass, id)
					case 2:
						s.Remap(testClass, id, id+1)
					case 3:
						b := mustCbuf(t, cm, data)
						if err := s.SaveSlice(testClass, id, off, b, 0, len(data)); err != nil {
							t.Fatalf("SaveSlice: %v", err)
						}
					case 4:
						s.Truncate(testClass, id, off+2)
					case 5:
						s.Drop(testClass, id)
					}
				}
				apply(live, cmLive)
				apply(crashed, cmCrashed)
			}
			// Compare every observable answer.
			for id := kernel.Word(0); id <= 8; id++ {
				wantRec, wantOK := live.LookupCreator(testClass, id)
				gotRec, gotOK := crashed.LookupCreator(testClass, id)
				if wantOK != gotOK || fmt.Sprintf("%v", wantRec) != fmt.Sprintf("%v", gotRec) {
					t.Fatalf("LookupCreator(%d): crashed store %v,%t; live %v,%t", id, gotRec, gotOK, wantRec, wantOK)
				}
				if w, g := live.Resolve(testClass, id), crashed.Resolve(testClass, id); w != g {
					t.Fatalf("Resolve(%d): crashed %d; live %d", id, g, w)
				}
				if w, g := live.HasData(testClass, id), crashed.HasData(testClass, id); w != g {
					t.Fatalf("HasData(%d): crashed %t; live %t", id, g, w)
				}
				wantData, wantErr := live.ReadAll(testClass, id)
				gotData, gotErr := crashed.ReadAll(testClass, id)
				if (wantErr == nil) != (gotErr == nil) || !bytes.Equal(wantData, gotData) {
					t.Fatalf("ReadAll(%d): crashed (%q, %v); live (%q, %v)", id, gotData, gotErr, wantData, wantErr)
				}
			}
			if w, g := fmt.Sprintf("%v", live.Creators(testClass)), fmt.Sprintf("%v", crashed.Creators(testClass)); w != g {
				t.Fatalf("Creators: crashed %s; live %s", g, w)
			}
			if n := crashed.QuorumRepairs(); n != 0 {
				t.Fatalf("clean crash/rebuild needed %d quorum repairs; want 0", n)
			}
		})
	}
}

func mustCbuf(t *testing.T, cm *cbuf.Manager, data []byte) cbuf.ID {
	t.Helper()
	b, err := cm.Alloc(9, len(data))
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := cm.Write(b, 9, 0, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return b
}

// TestWALChecksumCatchesBitFlips verifies the journal self-checks: a
// sealed record fails verification after any field is perturbed.
func TestWALChecksumCatchesBitFlips(t *testing.T) {
	rec := walRecord{op: opSaveSlice, class: 2, id: 7,
		slice: Slice{Offset: 1, Length: 3, Cbuf: 11, CbufOff: 0, Sum: 99}}
	rec.seal()
	if !rec.verify() {
		t.Fatal("freshly sealed record fails verification")
	}
	cases := []func(*walRecord){
		func(r *walRecord) { r.op = opDrop },
		func(r *walRecord) { r.id++ },
		func(r *walRecord) { r.slice.Sum ^= 1 },
		func(r *walRecord) { r.sum ^= 1 },
	}
	for i, mutate := range cases {
		m := rec
		mutate(&m)
		if m.verify() {
			t.Fatalf("case %d: mutated record still verifies", i)
		}
	}
}

// TestCheckpointTruncatesWAL pins the checkpoint contract: reaching the
// trigger length captures a verified state image and empties the log.
func TestCheckpointTruncatesWAL(t *testing.T) {
	s, _ := newReplicatedStore(2)
	s.SetCheckpointEvery(4)
	for i := 0; i < 10; i++ {
		s.RecordCreator(testClass, kernel.Word(i), 3, nil)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.reps {
		if r.cp == nil {
			t.Fatalf("replica %d has no checkpoint after 10 writes at trigger 4", i)
		}
		if len(r.wal) >= 4 {
			t.Fatalf("replica %d WAL length %d; want < 4 after checkpoint", i, len(r.wal))
		}
		if sum32(r.cp.state.encode()) != r.cp.sum {
			t.Fatalf("replica %d checkpoint checksum mismatch", i)
		}
	}
}

// Package storage implements the redundant storage component of the C³ /
// SuperGlue design.
//
// The storage component backs two recovery mechanisms:
//
//   - G0 (global descriptors): it records which component created each
//     globally addressable descriptor, together with the creation metadata,
//     so that after a µ-reboot the server-side stub can route an upcall to
//     the creator to rebuild the descriptor, and it maintains the mapping
//     from pre-fault descriptor IDs to their post-recovery replacements.
//   - G1 (resource data): it retains ⟨id, offset, length, data⟩ slices for
//     resources whose contents cannot be rebuilt from interface state alone
//     (e.g., file contents in the RAM filesystem). Data is referenced
//     through the zero-copy cbuf subsystem: the producer writes the cbuf,
//     storage holds a read-only mapping, so a faulty producer cannot
//     corrupt saved slices retroactively beyond what it already wrote.
//
// The paper places the single redundant storage component in the trusted
// base (§II-E). This implementation goes further: the store is N-way
// replicated and IS a fault-injection target. Each replica keeps its own
// descriptor/slice state, journals every write to a checksummed write-ahead
// log, and periodically checkpoints its descriptor state (truncating the
// log). Reads are served by majority vote across replicas; a crashed
// replica is rebuilt from its own checkpoint + log replay (µ-reboot for
// storage itself), and a divergent or corrupt replica is detected, booked
// as a typed fault.Event, and repaired by anti-entropy from the quorum.
// With -replicas 1 the store degrades to the paper's trusted single copy:
// byte-identical behavior to the pre-replication implementation, including
// the expected data loss when that one copy is crashed or corrupted.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"superglue/internal/cbuf"
	"superglue/internal/fault"
	"superglue/internal/kernel"
)

// Class partitions the descriptor/resource namespace per service (events,
// files, ...). Services allocate distinct classes at system assembly time.
type Class int32

// CreatorRecord remembers who created a global descriptor and with which
// arguments, so the descriptor can be rebuilt by upcalling the creator.
type CreatorRecord struct {
	Creator kernel.ComponentID
	Meta    []kernel.Word
}

// Slice is one saved extent of a resource's data, referencing a cbuf region.
type Slice struct {
	Offset  int // offset within the resource
	Length  int
	Cbuf    cbuf.ID
	CbufOff int
	// Sum is the FNV-1a checksum of the extent's bytes, captured at save
	// time. The cbuf producer-retention discipline makes the saved region
	// immutable, so a mismatch at read time means the redundant copy (or
	// its metadata) was corrupted after the save — mechanism G1's
	// end-to-end integrity check.
	Sum uint32
}

// sum32 is FNV-1a over data: cheap, deterministic, and good enough to catch
// the single-bit flips the corruption campaigns inject.
func sum32(data []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range data {
		h ^= uint32(b)
		h *= prime32
	}
	return h
}

// Tracer receives storage-level trace events; *obs.Recorder implements it.
// All methods must tolerate high call rates (writes) — implementations
// should only bump counters on the hot path.
type Tracer interface {
	// RecordStorageWrite counts one WAL record appended on a replica.
	RecordStorageWrite(replica int)
	// RecordStorageCheckpoint counts one checkpoint captured on a replica.
	RecordStorageCheckpoint(replica int)
	// RecordStorageRebuild reports a replica µ-reboot: replayed is the
	// number of WAL records re-applied (the rebuild's latency dimension);
	// antiEntropy is true when the replica was repaired by a full copy
	// from a quorum peer instead of local checkpoint+log replay.
	RecordStorageRebuild(replica, replayed int, antiEntropy bool)
	// RecordStorageRepair reports a divergent replica caught and repaired
	// by a quorum read.
	RecordStorageRepair(replica int, context string)
	// RecordStorageQuorumLost reports a read or rebuild that could not
	// assemble a majority of agreeing, uncorrupted replicas.
	RecordStorageQuorumLost(context string)
}

// Store is the storage component's state: N replicas behind one API. The
// zero value is not usable; construct with New or NewReplicated.
type Store struct {
	mu   sync.Mutex
	cm   *cbuf.Manager
	self cbuf.ComponentID
	reps []*replica
	obs  Tracer
	// faults is the log of typed events the store booked when it detected
	// crashed or divergent replicas.
	faults        []fault.Event
	quorumRepairs uint64
	quorumLost    uint64
	// corruptions counts checksum mismatches detected at read or rebuild.
	corruptions atomic.Uint64
	// enc is the reusable record-encode scratch buffer for sealing: one
	// seal per write, shared by all replicas (guarded by mu).
	enc []byte
}

type key struct {
	class Class
	id    kernel.Word
}

// ErrNotFound reports a lookup of an unrecorded descriptor or resource.
var ErrNotFound = errors.New("storage: not found")

// ErrCorrupted reports that a saved extent failed its checksum: the
// redundant copy no longer matches what was saved, so it must not be used
// to rebuild state. Readers are expected to fail stop on it (fault
// themselves with a storage-corruption classification) rather than serve
// silently wrong data.
var ErrCorrupted = errors.New("storage: saved data corrupted (checksum mismatch)")

// New constructs a single-replica Store that resolves data references
// through cm — the paper's trusted single redundant copy. The component ID
// is used for cbuf read mappings and is assigned by Attach.
func New(cm *cbuf.Manager) *Store {
	return NewReplicated(cm, 1)
}

// NewReplicated constructs a Store with n replicas (n < 1 is clamped to 1).
// Every write is applied to all replicas and journaled per replica; reads
// require majority agreement when n > 1.
func NewReplicated(cm *cbuf.Manager, n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{cm: cm, reps: make([]*replica, n)}
	for i := range s.reps {
		s.reps[i] = newReplica(i, DefaultCheckpointEvery)
	}
	return s
}

// Replicas reports the store's replication factor.
func (s *Store) Replicas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reps)
}

// SetObserver wires a tracer for per-replica counters and quorum/rebuild
// events. Pass nil to detach.
func (s *Store) SetObserver(t Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = t
}

// SetCheckpointEvery overrides the WAL length at which each replica
// checkpoints (tests use small values to exercise the checkpoint path).
func (s *Store) SetCheckpointEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.reps {
		if n > 0 {
			r.checkpointEvery = n
		}
	}
}

// Attach tells the store its own component identity (for cbuf mappings and
// fault-event attribution).
func (s *Store) Attach(self kernel.ComponentID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.self = cbuf.ComponentID(self)
}

// Faults returns the typed fault events the store booked for detected
// replica crashes, divergence, and quorum loss, in detection order.
func (s *Store) Faults() []fault.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]fault.Event(nil), s.faults...)
}

// QuorumRepairs reports how many divergent replicas quorum reads have
// caught and repaired.
func (s *Store) QuorumRepairs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quorumRepairs
}

// QuorumLost reports how many reads or rebuilds found no majority of
// agreeing, uncorrupted replicas.
func (s *Store) QuorumLost() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quorumLost
}

func (s *Store) bookLocked(e fault.Event) {
	s.faults = append(s.faults, e)
}

// ensureLiveLocked µ-reboots any crashed replica before an operation
// proceeds: restore the last checkpoint, replay the WAL, verify every
// checksum on the way. A replica whose durable images fail verification is
// repaired by anti-entropy from the lowest-index clean live peer; with no
// clean peer it keeps the valid prefix it could replay (divergence a later
// quorum read detects and repairs).
func (s *Store) ensureLiveLocked() {
	for i, r := range s.reps {
		if r.live {
			continue
		}
		res, replayed := r.restore(s.cm, s.self)
		if res == restoreClean {
			r.suspect = false
			r.rebuilds++
			s.bookLocked(fault.New(fault.KindStorageCrash, int32(s.self),
				fmt.Sprintf("storage replica %d fail-stop detected; rebuilt from checkpoint+log (%d records replayed)", i, replayed)))
			if s.obs != nil {
				s.obs.RecordStorageRebuild(i, replayed, false)
			}
			continue
		}
		r.corrupt++
		s.corruptions.Add(1)
		if donor := s.cleanPeerLocked(i); donor != nil {
			r.adopt(donor)
			r.rebuilds++
			s.bookLocked(fault.New(fault.KindStorageCorruption, int32(s.self),
				fmt.Sprintf("storage replica %d durable state corrupt; rebuilt by anti-entropy from replica %d", i, donor.idx)))
			if s.obs != nil {
				s.obs.RecordStorageRebuild(i, replayed, true)
			}
			continue
		}
		r.suspect = true
		r.rebuilds++
		s.quorumLost++
		s.bookLocked(fault.New(fault.KindStorageCorruption, int32(s.self),
			fmt.Sprintf("storage replica %d durable state corrupt and no clean peer; kept valid prefix (%d records)", i, replayed)))
		if s.obs != nil {
			s.obs.RecordStorageRebuild(i, replayed, false)
			s.obs.RecordStorageQuorumLost(fmt.Sprintf("rebuild of replica %d", i))
		}
	}
}

// cleanPeerLocked picks the anti-entropy donor for a rebuild of replica
// skip: the lowest-index live replica not itself under suspicion.
func (s *Store) cleanPeerLocked(skip int) *replica {
	for j, r := range s.reps {
		if j == skip || !r.live || r.suspect {
			continue
		}
		return r
	}
	return nil
}

// voteLocked takes one canonical answer key per replica, finds the
// majority answer, repairs every divergent replica from a majority donor,
// and returns the donor's index. Ties break to the lowest replica index,
// keeping the result deterministic; a winner short of a strict majority is
// additionally booked as quorum loss (the caller still gets the
// deterministic best answer, modeling data loss beyond the failure model).
func (s *Store) voteLocked(keys []string, context string) int {
	counts := make(map[string]int, len(keys))
	for _, k := range keys {
		counts[k]++
	}
	if len(counts) == 1 {
		return 0
	}
	best := 0
	for i := 1; i < len(keys); i++ {
		if counts[keys[i]] > counts[keys[best]] {
			best = i
		}
	}
	if counts[keys[best]]*2 <= len(keys) {
		s.quorumLost++
		s.bookLocked(fault.New(fault.KindStorageCorruption, int32(s.self),
			fmt.Sprintf("storage quorum lost on %s: no majority across %d replicas", context, len(keys))))
		if s.obs != nil {
			s.obs.RecordStorageQuorumLost(context)
		}
	}
	donor := s.reps[best]
	for i, k := range keys {
		if k == keys[best] {
			continue
		}
		s.reps[i].corrupt++
		s.corruptions.Add(1)
		s.reps[i].adopt(donor)
		s.reps[i].rebuilds++
		s.quorumRepairs++
		s.bookLocked(fault.New(fault.KindStorageCorruption, int32(s.self),
			fmt.Sprintf("storage replica %d divergent on %s; repaired from replica %d", i, context, best)))
		if s.obs != nil {
			s.obs.RecordStorageRepair(i, context)
		}
	}
	return best
}

// appendLocked journals one write on every replica (rebuilding crashed
// ones first, so no replica misses a write).
func (s *Store) appendLocked(rec walRecord) {
	s.ensureLiveLocked()
	// The record's byte encoding is identical on every replica, so it is
	// sealed once — into the store's reusable scratch buffer — instead of
	// once per replica per write.
	s.enc = rec.sealInto(s.enc)
	for _, r := range s.reps {
		checkpointed := r.append(rec, s.cm, s.self)
		if s.obs != nil {
			s.obs.RecordStorageWrite(r.idx)
			if checkpointed {
				s.obs.RecordStorageCheckpoint(r.idx)
			}
		}
	}
}

// RecordCreator registers creator as the component that created global
// descriptor id, with the creation arguments meta (mechanism G0). The meta
// slice is copied at the boundary.
func (s *Store) RecordCreator(class Class, id kernel.Word, creator kernel.ComponentID, meta []kernel.Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make([]kernel.Word, len(meta))
	copy(m, meta)
	s.appendLocked(walRecord{op: opRecordCreator, class: class, id: id, creator: creator, meta: m})
}

// LookupCreator returns the creator record for a global descriptor. With
// multiple replicas the answer is the quorum's.
func (s *Store) LookupCreator(class Class, id kernel.Word) (CreatorRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLiveLocked()
	if len(s.reps) == 1 {
		rec, ok := s.reps[0].state.creators[key{class, id}]
		return rec, ok
	}
	keys := make([]string, len(s.reps))
	for i, r := range s.reps {
		rec, ok := r.state.creators[key{class, id}]
		keys[i] = fmt.Sprintf("%t|%v", ok, rec)
	}
	best := s.voteLocked(keys, fmt.Sprintf("lookup-creator class %d id %d", class, id))
	rec, ok := s.reps[best].state.creators[key{class, id}]
	return rec, ok
}

// RemoveCreator forgets a descriptor (called when it is legitimately
// terminated, so recovery does not resurrect it).
func (s *Store) RemoveCreator(class Class, id kernel.Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(walRecord{op: opRemoveCreator, class: class, id: id})
}

// Remap records that pre-fault descriptor old is now served under id now
// (after a recovery recreated it). Resolve follows remap chains. The
// creator record and any saved data move with the descriptor, so subsequent
// G0/G1 lookups find them under the current ID.
func (s *Store) Remap(class Class, old, now kernel.Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old == now {
		return
	}
	s.appendLocked(walRecord{op: opRemap, class: class, id: old, now: now})
}

// resolveIn maps id through st's remap chains, path-compressing on the way
// out (the shared algorithm each replica runs).
func resolveIn(st repState, class Class, id kernel.Word) kernel.Word {
	root := id
	for i := 0; i < len(st.remap)+1; i++ {
		now, ok := st.remap[key{class, root}]
		if !ok {
			break
		}
		root = now
	}
	// Compress: point every link on the chain directly at the root.
	for id != root {
		next := st.remap[key{class, id}]
		st.remap[key{class, id}] = root
		id = next
	}
	return root
}

// Resolve maps a possibly stale descriptor ID to its current one, following
// chains produced by repeated faults. Unmapped IDs resolve to themselves.
// Chains are path-compressed on the way out, so a descriptor recreated
// across many faults stays O(1) to resolve instead of O(faults). With
// multiple replicas the answer is the quorum's. Compression is a local
// optimization, not a journaled write: replay rebuilds the uncompressed
// chains, which resolve identically.
func (s *Store) Resolve(class Class, id kernel.Word) kernel.Word {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLiveLocked()
	if len(s.reps) == 1 {
		return resolveIn(s.reps[0].state, class, id)
	}
	answers := make([]kernel.Word, len(s.reps))
	keys := make([]string, len(s.reps))
	for i, r := range s.reps {
		answers[i] = resolveIn(r.state, class, id)
		keys[i] = fmt.Sprintf("%d", answers[i])
	}
	best := s.voteLocked(keys, fmt.Sprintf("resolve class %d id %d", class, id))
	return answers[best]
}

// SaveSlice records one extent of a resource's data (mechanism G1). The
// extent references length bytes at cbufOff within buffer b, standing for
// bytes [offset, offset+length) of the resource. Overlapping extents are
// resolved newest-wins at read time. The store takes a read-only mapping of
// the buffer.
func (s *Store) SaveSlice(class Class, id kernel.Word, offset int, b cbuf.ID, cbufOff, length int) error {
	if offset < 0 || length < 0 {
		return fmt.Errorf("storage: invalid slice [%d, %d)", offset, offset+length)
	}
	s.mu.Lock()
	self := s.self
	s.mu.Unlock()
	if err := s.cm.Map(b, self); err != nil {
		return fmt.Errorf("storage: mapping cbuf %d: %w", b, err)
	}
	var sum uint32
	if length > 0 {
		data, err := s.cm.Read(b, self, cbufOff, length)
		if err != nil {
			return fmt.Errorf("storage: checksumming extent at %d: %w", offset, err)
		}
		sum = sum32(data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(walRecord{op: opSaveSlice, class: class, id: id,
		slice: Slice{Offset: offset, Length: length, Cbuf: b, CbufOff: cbufOff, Sum: sum}})
	return nil
}

// Truncate drops all saved slices at or beyond size, and trims extents that
// straddle it, so ReadAll reflects a resource shortened to size bytes.
func (s *Store) Truncate(class Class, id kernel.Word, size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(walRecord{op: opTruncate, class: class, id: id, size: size})
}

// Drop forgets all data saved for a resource (legitimate deletion).
func (s *Store) Drop(class Class, id kernel.Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(walRecord{op: opDrop, class: class, id: id})
}

// HasData reports whether any data is saved for the resource.
func (s *Store) HasData(class Class, id kernel.Word) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLiveLocked()
	if len(s.reps) == 1 {
		return len(s.reps[0].state.slices[key{class, id}]) > 0
	}
	keys := make([]string, len(s.reps))
	for i, r := range s.reps {
		keys[i] = fmt.Sprintf("%t", len(r.state.slices[key{class, id}]) > 0)
	}
	best := s.voteLocked(keys, fmt.Sprintf("has-data class %d id %d", class, id))
	return len(s.reps[best].state.slices[key{class, id}]) > 0
}

// readAllFrom reassembles a resource from one replica's saved extents
// without touching shared counters. corrupt reports a checksum mismatch.
func (s *Store) readAllFrom(st repState, class Class, id kernel.Word) (data []byte, corrupt bool, err error) {
	extents := st.slices[key{class, id}]
	if len(extents) == 0 {
		return nil, false, fmt.Errorf("%w: class %d id %d", ErrNotFound, class, id)
	}
	size := 0
	for _, e := range extents {
		if end := e.Offset + e.Length; end > size {
			size = end
		}
	}
	out := make([]byte, size)
	for _, e := range extents {
		data, err := s.cm.Read(e.Cbuf, s.self, e.CbufOff, e.Length)
		if err != nil {
			return nil, false, fmt.Errorf("storage: reading extent at %d: %w", e.Offset, err)
		}
		if e.Length > 0 && sum32(data) != e.Sum {
			return nil, true, fmt.Errorf("%w: class %d id %d extent at %d", ErrCorrupted, class, id, e.Offset)
		}
		copy(out[e.Offset:], data)
	}
	return out, false, nil
}

// ReadAll reassembles the full contents of a resource from its saved
// extents, applying them in save order (newest wins on overlap). It returns
// ErrNotFound if nothing was saved. With multiple replicas the result is
// the majority's: a replica whose copy fails its checksums (or disagrees
// with the majority) is booked as corrupt and repaired from a majority
// peer, and the read still succeeds as long as a majority agrees.
func (s *Store) ReadAll(class Class, id kernel.Word) ([]byte, error) {
	s.mu.Lock()
	if len(s.reps) == 1 {
		s.ensureLiveLocked()
		extents := append([]Slice(nil), s.reps[0].state.slices[key{class, id}]...)
		self := s.self
		s.mu.Unlock()
		if len(extents) == 0 {
			return nil, fmt.Errorf("%w: class %d id %d", ErrNotFound, class, id)
		}
		size := 0
		for _, e := range extents {
			if end := e.Offset + e.Length; end > size {
				size = end
			}
		}
		out := make([]byte, size)
		for _, e := range extents {
			data, err := s.cm.Read(e.Cbuf, self, e.CbufOff, e.Length)
			if err != nil {
				return nil, fmt.Errorf("storage: reading extent at %d: %w", e.Offset, err)
			}
			if e.Length > 0 && sum32(data) != e.Sum {
				s.corruptions.Add(1)
				return nil, fmt.Errorf("%w: class %d id %d extent at %d", ErrCorrupted, class, id, e.Offset)
			}
			copy(out[e.Offset:], data)
		}
		return out, nil
	}
	defer s.mu.Unlock()
	s.ensureLiveLocked()
	type result struct {
		data    []byte
		corrupt bool
		err     error
	}
	results := make([]result, len(s.reps))
	keys := make([]string, len(s.reps))
	for i, r := range s.reps {
		data, corrupt, err := s.readAllFrom(r.state, class, id)
		results[i] = result{data: data, corrupt: corrupt, err: err}
		switch {
		case corrupt:
			// A self-evidently corrupt copy gets a unique key so it can
			// never form part of a majority.
			keys[i] = fmt.Sprintf("corrupt#%d", i)
		case err != nil:
			keys[i] = "err|" + err.Error()
		default:
			keys[i] = "ok|" + string(data)
		}
	}
	best := s.voteLocked(keys, fmt.Sprintf("read class %d id %d", class, id))
	return results[best].data, results[best].err
}

// CorruptionsDetected reports how many checksum mismatches the store has
// caught (at reads, quorum votes, and replica rebuilds) since construction
// — the campaign-level "detected vs injected" accounting for
// storage-corruption faults.
func (s *Store) CorruptionsDetected() uint64 { return s.corruptions.Load() }

// CorruptOne flips a bit in the stored checksum of one saved extent of the
// class on replica 0, simulating silent corruption of the redundant copy:
// the data and its integrity record no longer agree, so the next ReadAll of
// that resource fails with ErrCorrupted (single replica) or is repaired by
// the quorum (multiple replicas). The victim is chosen deterministically
// from pick: resources are visited in ascending ID order and pick indexes
// (modulo the population) into their extents, newest first. It returns the
// corrupted resource's ID, or false if the class has no saved data.
func (s *Store) CorruptOne(class Class, pick int) (kernel.Word, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slices := s.reps[0].state.slices
	var ids []kernel.Word
	total := 0
	for k, sl := range slices {
		if k.class == class && len(sl) > 0 {
			ids = append(ids, k.id)
			total += len(sl)
		}
	}
	if total == 0 {
		return 0, false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if pick < 0 {
		pick = -pick
	}
	n := pick % total
	for _, id := range ids {
		sl := slices[key{class, id}]
		if n >= len(sl) {
			n -= len(sl)
			continue
		}
		sl[len(sl)-1-n].Sum ^= 1
		return id, true
	}
	return 0, false // unreachable
}

// CrashReplica fail-stops replica i: its in-memory state is lost; its
// durable WAL and checkpoint images survive and seed the rebuild the next
// operation triggers. It reports whether a live replica was crashed.
func (s *Store) CrashReplica(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.reps) || !s.reps[i].live {
		return false
	}
	s.reps[i].crash()
	return true
}

// CorruptReplica flips one bit somewhere in replica i's state: a saved
// extent's checksum in the live slice state, a WAL record's checksum, or
// the checkpoint's checksum — chosen deterministically by pick modulo the
// population (live extents in ascending key order newest-first, then WAL
// records in append order, then the checkpoint). It returns a description
// of the victim, or false if the replica holds nothing corruptible.
func (s *Store) CorruptReplica(i, pick int) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.reps) {
		return "", false
	}
	r := s.reps[i]
	var eligible []key
	ext := 0
	for _, k := range sortedSliceKeys(r.state.slices) {
		if n := len(r.state.slices[k]); n > 0 {
			eligible = append(eligible, k)
			ext += n
		}
	}
	cpn := 0
	if r.cp != nil {
		cpn = 1
	}
	total := ext + len(r.wal) + cpn
	if total == 0 {
		return "", false
	}
	if pick < 0 {
		pick = -pick
	}
	n := pick % total
	if n < ext {
		for _, k := range eligible {
			sl := r.state.slices[k]
			if n >= len(sl) {
				n -= len(sl)
				continue
			}
			sl[len(sl)-1-n].Sum ^= 1
			return fmt.Sprintf("replica %d slice class %d id %d", i, k.class, k.id), true
		}
	}
	n -= ext
	if n < len(r.wal) {
		r.wal[n].sum ^= 1
		return fmt.Sprintf("replica %d wal record %d (%s)", i, n, r.wal[n].op), true
	}
	r.cp.sum ^= 1
	return fmt.Sprintf("replica %d checkpoint", i), true
}

// ReplicaLive reports whether replica i is live (not crashed-and-pending-
// rebuild).
func (s *Store) ReplicaLive(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return i >= 0 && i < len(s.reps) && s.reps[i].live
}

// Creators lists the IDs of all recorded global descriptors of a class, in
// ascending order. Eager recovery uses this to enumerate what must be
// rebuilt. With multiple replicas the list is the quorum's.
func (s *Store) Creators(class Class) []kernel.Word {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLiveLocked()
	if len(s.reps) == 1 {
		return creatorsIn(s.reps[0].state, class)
	}
	answers := make([][]kernel.Word, len(s.reps))
	keys := make([]string, len(s.reps))
	for i, r := range s.reps {
		answers[i] = creatorsIn(r.state, class)
		keys[i] = fmt.Sprintf("%v", answers[i])
	}
	best := s.voteLocked(keys, fmt.Sprintf("creators class %d", class))
	return answers[best]
}

func creatorsIn(st repState, class Class) []kernel.Word {
	var ids []kernel.Word
	for k := range st.creators {
		if k.class == class {
			ids = append(ids, k.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Interface function names for kernel-mediated access. The hot-path save
// operations cross the kernel like any component invocation so that their
// cost shows up in measurements; recovery-time reads use the Go API
// directly, modeling C³ reflection on the storage component.
const (
	FnRecordCreator = "st_record_creator"
	FnRemoveCreator = "st_remove_creator"
	FnRemap         = "st_remap"
	FnResolve       = "st_resolve"
	FnSaveSlice     = "st_save_slice"
	FnTruncate      = "st_truncate"
	FnDrop          = "st_drop"
)

// Component wraps a Store as an invocable kernel service.
type Component struct {
	store *Store
}

var _ kernel.Service = (*Component)(nil)

// NewComponent wraps store for kernel registration. The same Store instance
// survives across the service-level reboot path: replica crashes and
// corruption are injected and recovered *inside* the store (CrashReplica /
// CorruptReplica), not by reconstructing it.
func NewComponent(store *Store) *Component {
	return &Component{store: store}
}

// Name implements kernel.Service.
func (c *Component) Name() string { return "storage" }

// Init implements kernel.Service.
func (c *Component) Init(bc *kernel.BootContext) error {
	c.store.Attach(bc.Self)
	return nil
}

// Store returns the underlying store, for reflection-style recovery access.
func (c *Component) Store() *Store { return c.store }

// Dispatch implements kernel.Service.
func (c *Component) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("storage: %s needs %d args, got %d", fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case FnRecordCreator:
		if err := need(3); err != nil {
			return 0, err
		}
		c.store.RecordCreator(Class(args[0]), args[1], kernel.ComponentID(args[2]), args[3:])
		return 0, nil
	case FnRemoveCreator:
		if err := need(2); err != nil {
			return 0, err
		}
		c.store.RemoveCreator(Class(args[0]), args[1])
		return 0, nil
	case FnRemap:
		if err := need(3); err != nil {
			return 0, err
		}
		c.store.Remap(Class(args[0]), args[1], args[2])
		return 0, nil
	case FnResolve:
		if err := need(2); err != nil {
			return 0, err
		}
		return c.store.Resolve(Class(args[0]), args[1]), nil
	case FnSaveSlice:
		if err := need(5); err != nil {
			return 0, err
		}
		return 0, c.store.SaveSlice(Class(args[0]), args[1], int(args[2]), cbuf.ID(args[3]), 0, int(args[4]))
	case FnTruncate:
		if err := need(3); err != nil {
			return 0, err
		}
		c.store.Truncate(Class(args[0]), args[1], int(args[2]))
		return 0, nil
	case FnDrop:
		if err := need(2); err != nil {
			return 0, err
		}
		c.store.Drop(Class(args[0]), args[1])
		return 0, nil
	default:
		return 0, kernel.DispatchError(c.Name(), fn)
	}
}

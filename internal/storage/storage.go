// Package storage implements the redundant storage component of the C³ /
// SuperGlue design.
//
// The storage component backs two recovery mechanisms:
//
//   - G0 (global descriptors): it records which component created each
//     globally addressable descriptor, together with the creation metadata,
//     so that after a µ-reboot the server-side stub can route an upcall to
//     the creator to rebuild the descriptor, and it maintains the mapping
//     from pre-fault descriptor IDs to their post-recovery replacements.
//   - G1 (resource data): it retains ⟨id, offset, length, data⟩ slices for
//     resources whose contents cannot be rebuilt from interface state alone
//     (e.g., file contents in the RAM filesystem). Data is referenced
//     through the zero-copy cbuf subsystem: the producer writes the cbuf,
//     storage holds a read-only mapping, so a faulty producer cannot
//     corrupt saved slices retroactively beyond what it already wrote.
//
// Like the kernel and the cbuf manager, the storage component is part of
// the trusted base (§II-E of the paper): it is not a fault-injection target.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"superglue/internal/cbuf"
	"superglue/internal/kernel"
)

// Class partitions the descriptor/resource namespace per service (events,
// files, ...). Services allocate distinct classes at system assembly time.
type Class int32

// CreatorRecord remembers who created a global descriptor and with which
// arguments, so the descriptor can be rebuilt by upcalling the creator.
type CreatorRecord struct {
	Creator kernel.ComponentID
	Meta    []kernel.Word
}

// Slice is one saved extent of a resource's data, referencing a cbuf region.
type Slice struct {
	Offset  int // offset within the resource
	Length  int
	Cbuf    cbuf.ID
	CbufOff int
	// Sum is the FNV-1a checksum of the extent's bytes, captured at save
	// time. The cbuf producer-retention discipline makes the saved region
	// immutable, so a mismatch at read time means the redundant copy (or
	// its metadata) was corrupted after the save — mechanism G1's
	// end-to-end integrity check.
	Sum uint32
}

// sum32 is FNV-1a over data: cheap, deterministic, and good enough to catch
// the single-bit flips the corruption campaigns inject.
func sum32(data []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range data {
		h ^= uint32(b)
		h *= prime32
	}
	return h
}

// Store is the storage component's state. The zero value is not usable;
// construct with New.
type Store struct {
	mu       sync.Mutex
	cm       *cbuf.Manager
	self     cbuf.ComponentID
	creators map[key]CreatorRecord
	remap    map[key]kernel.Word // pre-fault ID → current ID
	slices   map[key][]Slice
	// corruptions counts checksum mismatches ReadAll detected.
	corruptions atomic.Uint64
}

type key struct {
	class Class
	id    kernel.Word
}

// ErrNotFound reports a lookup of an unrecorded descriptor or resource.
var ErrNotFound = errors.New("storage: not found")

// ErrCorrupted reports that a saved extent failed its checksum: the
// redundant copy no longer matches what was saved, so it must not be used
// to rebuild state. Readers are expected to fail stop on it (fault
// themselves with a storage-corruption classification) rather than serve
// silently wrong data.
var ErrCorrupted = errors.New("storage: saved data corrupted (checksum mismatch)")

// New constructs a Store that resolves data references through cm. The
// component ID is used for cbuf read mappings and is assigned by Attach.
func New(cm *cbuf.Manager) *Store {
	return &Store{
		cm:       cm,
		creators: make(map[key]CreatorRecord),
		remap:    make(map[key]kernel.Word),
		slices:   make(map[key][]Slice),
	}
}

// Attach tells the store its own component identity (for cbuf mappings).
func (s *Store) Attach(self kernel.ComponentID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.self = cbuf.ComponentID(self)
}

// RecordCreator registers creator as the component that created global
// descriptor id, with the creation arguments meta (mechanism G0). The meta
// slice is copied at the boundary.
func (s *Store) RecordCreator(class Class, id kernel.Word, creator kernel.ComponentID, meta []kernel.Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make([]kernel.Word, len(meta))
	copy(m, meta)
	s.creators[key{class, id}] = CreatorRecord{Creator: creator, Meta: m}
}

// LookupCreator returns the creator record for a global descriptor.
func (s *Store) LookupCreator(class Class, id kernel.Word) (CreatorRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.creators[key{class, id}]
	return rec, ok
}

// RemoveCreator forgets a descriptor (called when it is legitimately
// terminated, so recovery does not resurrect it).
func (s *Store) RemoveCreator(class Class, id kernel.Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.creators, key{class, id})
	delete(s.remap, key{class, id})
}

// Remap records that pre-fault descriptor old is now served under id now
// (after a recovery recreated it). Resolve follows remap chains. The
// creator record and any saved data move with the descriptor, so subsequent
// G0/G1 lookups find them under the current ID.
func (s *Store) Remap(class Class, old, now kernel.Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old == now {
		return
	}
	s.remap[key{class, old}] = now
	if rec, ok := s.creators[key{class, old}]; ok {
		delete(s.creators, key{class, old})
		s.creators[key{class, now}] = rec
	}
	if sl, ok := s.slices[key{class, old}]; ok {
		delete(s.slices, key{class, old})
		s.slices[key{class, now}] = sl
	}
}

// Resolve maps a possibly stale descriptor ID to its current one, following
// chains produced by repeated faults. Unmapped IDs resolve to themselves.
// Chains are path-compressed on the way out, so a descriptor recreated
// across many faults stays O(1) to resolve instead of O(faults).
func (s *Store) Resolve(class Class, id kernel.Word) kernel.Word {
	s.mu.Lock()
	defer s.mu.Unlock()
	root := id
	for i := 0; i < len(s.remap)+1; i++ {
		now, ok := s.remap[key{class, root}]
		if !ok {
			break
		}
		root = now
	}
	// Compress: point every link on the chain directly at the root.
	for id != root {
		next := s.remap[key{class, id}]
		s.remap[key{class, id}] = root
		id = next
	}
	return root
}

// SaveSlice records one extent of a resource's data (mechanism G1). The
// extent references length bytes at cbufOff within buffer b, standing for
// bytes [offset, offset+length) of the resource. Overlapping extents are
// resolved newest-wins at read time. The store takes a read-only mapping of
// the buffer.
func (s *Store) SaveSlice(class Class, id kernel.Word, offset int, b cbuf.ID, cbufOff, length int) error {
	if offset < 0 || length < 0 {
		return fmt.Errorf("storage: invalid slice [%d, %d)", offset, offset+length)
	}
	s.mu.Lock()
	self := s.self
	s.mu.Unlock()
	if err := s.cm.Map(b, self); err != nil {
		return fmt.Errorf("storage: mapping cbuf %d: %w", b, err)
	}
	var sum uint32
	if length > 0 {
		data, err := s.cm.Read(b, self, cbufOff, length)
		if err != nil {
			return fmt.Errorf("storage: checksumming extent at %d: %w", offset, err)
		}
		sum = sum32(data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key{class, id}
	s.slices[k] = append(s.slices[k], Slice{Offset: offset, Length: length, Cbuf: b, CbufOff: cbufOff, Sum: sum})
	return nil
}

// Truncate drops all saved slices at or beyond size, and trims extents that
// straddle it, so ReadAll reflects a resource shortened to size bytes.
func (s *Store) Truncate(class Class, id kernel.Word, size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key{class, id}
	var kept []Slice
	for _, sl := range s.slices[k] {
		if sl.Offset >= size {
			continue
		}
		if sl.Offset+sl.Length > size {
			sl.Length = size - sl.Offset
			// The checksum covers the extent's bytes: re-capture it over
			// the surviving prefix so the trim is not misread as
			// corruption. The region is already mapped, so the read cannot
			// fail for a well-formed slice.
			if data, err := s.cm.Read(sl.Cbuf, s.self, sl.CbufOff, sl.Length); err == nil {
				sl.Sum = sum32(data)
			}
		}
		kept = append(kept, sl)
	}
	s.slices[k] = kept
}

// Drop forgets all data saved for a resource (legitimate deletion).
func (s *Store) Drop(class Class, id kernel.Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.slices, key{class, id})
}

// HasData reports whether any data is saved for the resource.
func (s *Store) HasData(class Class, id kernel.Word) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slices[key{class, id}]) > 0
}

// ReadAll reassembles the full contents of a resource from its saved
// extents, applying them in save order (newest wins on overlap). It returns
// ErrNotFound if nothing was saved.
func (s *Store) ReadAll(class Class, id kernel.Word) ([]byte, error) {
	s.mu.Lock()
	extents := append([]Slice(nil), s.slices[key{class, id}]...)
	self := s.self
	s.mu.Unlock()
	if len(extents) == 0 {
		return nil, fmt.Errorf("%w: class %d id %d", ErrNotFound, class, id)
	}
	size := 0
	for _, e := range extents {
		if end := e.Offset + e.Length; end > size {
			size = end
		}
	}
	out := make([]byte, size)
	for _, e := range extents {
		data, err := s.cm.Read(e.Cbuf, self, e.CbufOff, e.Length)
		if err != nil {
			return nil, fmt.Errorf("storage: reading extent at %d: %w", e.Offset, err)
		}
		if e.Length > 0 && sum32(data) != e.Sum {
			s.corruptions.Add(1)
			return nil, fmt.Errorf("%w: class %d id %d extent at %d", ErrCorrupted, class, id, e.Offset)
		}
		copy(out[e.Offset:], data)
	}
	return out, nil
}

// CorruptionsDetected reports how many checksum mismatches ReadAll has
// caught since construction — the campaign-level "detected vs injected"
// accounting for storage-corruption faults.
func (s *Store) CorruptionsDetected() uint64 { return s.corruptions.Load() }

// CorruptOne flips a bit in the stored checksum of one saved extent of the
// class, simulating silent corruption of the redundant copy: the data and
// its integrity record no longer agree, so the next ReadAll of that
// resource fails with ErrCorrupted. The victim is chosen deterministically
// from pick: resources are visited in ascending ID order and pick indexes
// (modulo the population) into their extents, newest first. It returns the
// corrupted resource's ID, or false if the class has no saved data.
func (s *Store) CorruptOne(class Class, pick int) (kernel.Word, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []kernel.Word
	total := 0
	for k, sl := range s.slices {
		if k.class == class && len(sl) > 0 {
			ids = append(ids, k.id)
			total += len(sl)
		}
	}
	if total == 0 {
		return 0, false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if pick < 0 {
		pick = -pick
	}
	n := pick % total
	for _, id := range ids {
		sl := s.slices[key{class, id}]
		if n >= len(sl) {
			n -= len(sl)
			continue
		}
		sl[len(sl)-1-n].Sum ^= 1
		return id, true
	}
	return 0, false // unreachable
}

// Creators lists the IDs of all recorded global descriptors of a class, in
// ascending order. Eager recovery uses this to enumerate what must be
// rebuilt.
func (s *Store) Creators(class Class) []kernel.Word {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []kernel.Word
	for k := range s.creators {
		if k.class == class {
			ids = append(ids, k.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Interface function names for kernel-mediated access. The hot-path save
// operations cross the kernel like any component invocation so that their
// cost shows up in measurements; recovery-time reads use the Go API
// directly, modeling C³ reflection on the storage component.
const (
	FnRecordCreator = "st_record_creator"
	FnRemoveCreator = "st_remove_creator"
	FnRemap         = "st_remap"
	FnResolve       = "st_resolve"
	FnSaveSlice     = "st_save_slice"
	FnTruncate      = "st_truncate"
	FnDrop          = "st_drop"
)

// Component wraps a Store as an invocable kernel service.
type Component struct {
	store *Store
}

var _ kernel.Service = (*Component)(nil)

// NewComponent wraps store for kernel registration. The same Store instance
// survives across the (never-exercised) reboot path: the storage component
// is trusted and is not a fault-injection target.
func NewComponent(store *Store) *Component {
	return &Component{store: store}
}

// Name implements kernel.Service.
func (c *Component) Name() string { return "storage" }

// Init implements kernel.Service.
func (c *Component) Init(bc *kernel.BootContext) error {
	c.store.Attach(bc.Self)
	return nil
}

// Store returns the underlying store, for reflection-style recovery access.
func (c *Component) Store() *Store { return c.store }

// Dispatch implements kernel.Service.
func (c *Component) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("storage: %s needs %d args, got %d", fn, n, len(args))
		}
		return nil
	}
	switch fn {
	case FnRecordCreator:
		if err := need(3); err != nil {
			return 0, err
		}
		c.store.RecordCreator(Class(args[0]), args[1], kernel.ComponentID(args[2]), args[3:])
		return 0, nil
	case FnRemoveCreator:
		if err := need(2); err != nil {
			return 0, err
		}
		c.store.RemoveCreator(Class(args[0]), args[1])
		return 0, nil
	case FnRemap:
		if err := need(3); err != nil {
			return 0, err
		}
		c.store.Remap(Class(args[0]), args[1], args[2])
		return 0, nil
	case FnResolve:
		if err := need(2); err != nil {
			return 0, err
		}
		return c.store.Resolve(Class(args[0]), args[1]), nil
	case FnSaveSlice:
		if err := need(5); err != nil {
			return 0, err
		}
		return 0, c.store.SaveSlice(Class(args[0]), args[1], int(args[2]), cbuf.ID(args[3]), 0, int(args[4]))
	case FnTruncate:
		if err := need(3); err != nil {
			return 0, err
		}
		c.store.Truncate(Class(args[0]), args[1], int(args[2]))
		return 0, nil
	case FnDrop:
		if err := need(2); err != nil {
			return 0, err
		}
		c.store.Drop(Class(args[0]), args[1])
		return 0, nil
	default:
		return 0, kernel.DispatchError(c.Name(), fn)
	}
}

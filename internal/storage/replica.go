package storage

import (
	"encoding/binary"
	"sort"

	"superglue/internal/cbuf"
	"superglue/internal/kernel"
)

// This file implements the per-replica backend of the replicated store:
// the in-memory descriptor/slice state, the write-ahead log of typed
// checksummed records, and the periodic descriptor-state checkpoints
// that truncate the log. A replica models one redundant copy on its own
// failure domain: a fail-stop crash loses the in-memory state but not
// the durable WAL + checkpoint images, so a crashed replica µ-reboots by
// restoring its last checkpoint and replaying the log — the same
// checkpoint/rollback-recovery discipline the Treaster survey catalogues
// for the storage tier itself.

// walOp tags one write-ahead-log record with the mutation it journals.
type walOp uint8

// The WAL record taxonomy: exactly the write operations of the Store
// API. Reads are never journaled.
const (
	opRecordCreator walOp = iota + 1
	opRemoveCreator
	opRemap
	opSaveSlice
	opTruncate
	opDrop
)

// String returns the record type's wire name (diagnostics only).
func (o walOp) String() string {
	switch o {
	case opRecordCreator:
		return "creator-record"
	case opRemoveCreator:
		return "creator-remove"
	case opRemap:
		return "remap"
	case opSaveSlice:
		return "slice-save"
	case opTruncate:
		return "truncate"
	case opDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// walRecord is one journaled mutation. Sum is the FNV-1a checksum of the
// record's deterministic byte encoding, captured at append time; replay
// re-encodes and verifies, so a flipped bit anywhere in the record is
// detected before the mutation is re-applied.
type walRecord struct {
	op      walOp
	class   Class
	id      kernel.Word
	now     kernel.Word // opRemap target
	creator kernel.ComponentID
	meta    []kernel.Word
	slice   Slice
	size    int // opTruncate size
	sum     uint32
}

// encode appends the record's deterministic byte encoding to buf.
func (r *walRecord) encode(buf []byte) []byte {
	var w [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	buf = append(buf, byte(r.op))
	u64(uint64(r.class))
	u64(uint64(r.id))
	u64(uint64(r.now))
	u64(uint64(r.creator))
	u64(uint64(len(r.meta)))
	for _, m := range r.meta {
		u64(uint64(m))
	}
	u64(uint64(r.slice.Offset))
	u64(uint64(r.slice.Length))
	u64(uint64(r.slice.Cbuf))
	u64(uint64(r.slice.CbufOff))
	u64(uint64(r.slice.Sum))
	u64(uint64(r.size))
	return buf
}

// seal captures the record checksum after every payload field is set.
func (r *walRecord) seal() { r.sum = sum32(r.encode(nil)) }

// sealInto is seal with a caller-owned scratch buffer: the record is
// encoded into scratch[:0] and the grown buffer is returned for reuse,
// so the quorum write path seals without a per-write allocation.
func (r *walRecord) sealInto(scratch []byte) []byte {
	buf := r.encode(scratch[:0])
	r.sum = sum32(buf)
	return buf
}

// verify reports whether the record still matches its checksum.
func (r *walRecord) verify() bool { return sum32(r.encode(nil)) == r.sum }

// verifyInto is verify with a caller-owned scratch buffer (same contract
// as sealInto), for the replay loop of a rebuild.
func (r *walRecord) verifyInto(scratch []byte) ([]byte, bool) {
	buf := r.encode(scratch[:0])
	return buf, sum32(buf) == r.sum
}

// repState is one replica's live descriptor/slice state: the maps the
// single-copy store used to hold directly.
type repState struct {
	creators map[key]CreatorRecord
	remap    map[key]kernel.Word
	slices   map[key][]Slice
}

// newRepState allocates empty state maps.
func newRepState() repState {
	return repState{
		creators: make(map[key]CreatorRecord),
		remap:    make(map[key]kernel.Word),
		slices:   make(map[key][]Slice),
	}
}

// clone deep-copies the state (checkpoint images and anti-entropy
// transfers must never alias live maps).
func (st repState) clone() repState {
	out := repState{
		creators: make(map[key]CreatorRecord, len(st.creators)),
		remap:    make(map[key]kernel.Word, len(st.remap)),
		slices:   make(map[key][]Slice, len(st.slices)),
	}
	for k, rec := range st.creators {
		meta := make([]kernel.Word, len(rec.Meta))
		copy(meta, rec.Meta)
		out.creators[k] = CreatorRecord{Creator: rec.Creator, Meta: meta}
	}
	for k, v := range st.remap {
		out.remap[k] = v
	}
	for k, sl := range st.slices {
		out.slices[k] = append([]Slice(nil), sl...)
	}
	return out
}

// sortedKeys returns m's keys in (class, id) order for deterministic
// encoding. The three state maps share the key type, so one helper
// serves them all.
func sortedCreatorKeys(m map[key]CreatorRecord) []key {
	out := make([]key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortedRemapKeys(m map[key]kernel.Word) []key {
	out := make([]key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortedSliceKeys(m map[key][]Slice) []key {
	out := make([]key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(ks []key) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].class != ks[j].class {
			return ks[i].class < ks[j].class
		}
		return ks[i].id < ks[j].id
	})
}

// encode renders the state deterministically (sorted traversal), for
// checkpoint checksums. Remap chains are path-compressed lazily by
// Resolve, so two behaviorally identical replicas can hold different
// remap maps; the checkpoint checksum only guards one replica's image
// against bit rot, never cross-replica agreement — quorum compares
// query answers, not raw state bytes.
func (st repState) encode() []byte { return st.encodeInto(nil) }

// encodeInto appends the state's deterministic encoding to buf; the
// checkpoint capture and rebuild paths pass a per-replica scratch buffer
// so the (large) state image is not re-allocated on every checkpoint.
func (st repState) encodeInto(buf []byte) []byte {
	var w [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	for _, k := range sortedCreatorKeys(st.creators) {
		rec := st.creators[k]
		u64(uint64(k.class))
		u64(uint64(k.id))
		u64(uint64(rec.Creator))
		u64(uint64(len(rec.Meta)))
		for _, m := range rec.Meta {
			u64(uint64(m))
		}
	}
	for _, k := range sortedRemapKeys(st.remap) {
		u64(uint64(k.class))
		u64(uint64(k.id))
		u64(uint64(st.remap[k]))
	}
	for _, k := range sortedSliceKeys(st.slices) {
		u64(uint64(k.class))
		u64(uint64(k.id))
		for _, sl := range st.slices[k] {
			u64(uint64(sl.Offset))
			u64(uint64(sl.Length))
			u64(uint64(sl.Cbuf))
			u64(uint64(sl.CbufOff))
			u64(uint64(sl.Sum))
		}
	}
	return buf
}

// checkpoint is one durable descriptor-state image: a deep copy of the
// state at capture time plus its checksum.
type checkpoint struct {
	state repState
	sum   uint32
}

// DefaultCheckpointEvery is the WAL length at which a replica captures a
// fresh checkpoint and truncates its log.
const DefaultCheckpointEvery = 64

// replica is one redundant copy of the store's contents.
type replica struct {
	idx  int
	live bool
	// suspect marks a replica whose last rebuild found corrupt durable
	// images and no clean peer to copy from: its state is a best-effort
	// valid prefix, so it must not serve as an anti-entropy donor until a
	// quorum read repairs it.
	suspect bool
	// state is the in-memory image a crash wipes.
	state repState
	// wal and cp are the durable images a crash spares: the write-ahead
	// log since the last checkpoint, and the last checkpoint (nil until
	// one was captured).
	wal []walRecord
	cp  *checkpoint
	// checkpointEvery is the WAL length that triggers a checkpoint.
	checkpointEvery int
	// enc is the reusable encode scratch buffer for checkpoint capture
	// and rebuild verification (never aliased by durable images).
	enc []byte
	// Counters surfaced through the obs snapshot.
	writes     uint64 // WAL records appended
	crashes    uint64 // fail-stop crashes injected
	rebuilds   uint64 // completed rebuilds (local replay or anti-entropy)
	corrupt    uint64 // times this replica was caught divergent/corrupt
	walHighest int    // high-water WAL length (diagnostics)
}

func newReplica(idx, checkpointEvery int) *replica {
	if checkpointEvery <= 0 {
		checkpointEvery = DefaultCheckpointEvery
	}
	return &replica{idx: idx, live: true, state: newRepState(), checkpointEvery: checkpointEvery}
}

// append journals one record — already sealed by the store, once for
// all replicas — and applies it to the live state, checkpointing when
// the log reaches the trigger length (reported by the return value).
// cm/self are the cbuf access needed to re-checksum trimmed extents.
func (r *replica) append(rec walRecord, cm *cbuf.Manager, self cbuf.ComponentID) bool {
	r.wal = append(r.wal, rec)
	r.writes++
	if len(r.wal) > r.walHighest {
		r.walHighest = len(r.wal)
	}
	r.apply(&rec, cm, self)
	if len(r.wal) >= r.checkpointEvery {
		r.cp = &checkpoint{state: r.state.clone()}
		r.enc = r.cp.state.encodeInto(r.enc[:0])
		r.cp.sum = sum32(r.enc)
		r.wal = r.wal[:0]
		return true
	}
	return false
}

// apply executes one record against the live state. Both the write path
// and log replay go through here, so a replayed replica converges on the
// exact state the journaled writes built.
func (r *replica) apply(rec *walRecord, cm *cbuf.Manager, self cbuf.ComponentID) {
	k := key{rec.class, rec.id}
	switch rec.op {
	case opRecordCreator:
		meta := make([]kernel.Word, len(rec.meta))
		copy(meta, rec.meta)
		r.state.creators[k] = CreatorRecord{Creator: rec.creator, Meta: meta}
	case opRemoveCreator:
		delete(r.state.creators, k)
		delete(r.state.remap, k)
	case opRemap:
		if rec.id == rec.now {
			return
		}
		r.state.remap[k] = rec.now
		if cr, ok := r.state.creators[k]; ok {
			delete(r.state.creators, k)
			r.state.creators[key{rec.class, rec.now}] = cr
		}
		if sl, ok := r.state.slices[k]; ok {
			delete(r.state.slices, k)
			r.state.slices[key{rec.class, rec.now}] = sl
		}
	case opSaveSlice:
		r.state.slices[k] = append(r.state.slices[k], rec.slice)
	case opTruncate:
		var kept []Slice
		for _, sl := range r.state.slices[k] {
			if sl.Offset >= rec.size {
				continue
			}
			if sl.Offset+sl.Length > rec.size {
				sl.Length = rec.size - sl.Offset
				// Re-capture the checksum over the surviving prefix so the
				// trim is not misread as corruption (same discipline as the
				// single-copy Truncate).
				if data, err := cm.Read(sl.Cbuf, self, sl.CbufOff, sl.Length); err == nil {
					sl.Sum = sum32(data)
				}
			}
			kept = append(kept, sl)
		}
		r.state.slices[k] = kept
	case opDrop:
		delete(r.state.slices, k)
	}
}

// crash fail-stops the replica: the in-memory state is lost, the durable
// WAL + checkpoint images survive.
func (r *replica) crash() {
	r.live = false
	r.crashes++
	r.state = newRepState()
}

// restoreResult classifies one local rebuild attempt.
type restoreResult int

const (
	// restoreClean: checkpoint and every log record verified; the replica
	// replayed to exactly its pre-crash state.
	restoreClean restoreResult = iota
	// restoreCorrupt: the checkpoint or a log record failed its checksum;
	// the replica needs an anti-entropy copy from a quorum peer.
	restoreCorrupt
)

// restore µ-reboots the replica from its own durable images: restore the
// last checkpoint (if any), then replay the WAL. It verifies every
// checksum on the way; a mismatch anywhere aborts with restoreCorrupt
// and leaves the replica rebuilt only up to the valid prefix (the quorum
// layer then repairs it from a peer). Returns the result and the number
// of log records replayed.
func (r *replica) restore(cm *cbuf.Manager, self cbuf.ComponentID) (restoreResult, int) {
	r.state = newRepState()
	if r.cp != nil {
		r.enc = r.cp.state.encodeInto(r.enc[:0])
		if sum32(r.enc) != r.cp.sum {
			r.live = true
			return restoreCorrupt, 0
		}
		r.state = r.cp.state.clone()
	}
	for i := range r.wal {
		var ok bool
		if r.enc, ok = r.wal[i].verifyInto(r.enc); !ok {
			r.live = true
			return restoreCorrupt, i
		}
		r.apply(&r.wal[i], cm, self)
	}
	r.live = true
	return restoreClean, len(r.wal)
}

// adopt replaces the replica's entire contents (state, WAL, checkpoint)
// with deep copies of a donor's — the anti-entropy transfer that repairs
// a divergent or corrupt replica from the quorum.
func (r *replica) adopt(donor *replica) {
	r.state = donor.state.clone()
	r.wal = make([]walRecord, len(donor.wal))
	for i, rec := range donor.wal {
		rec.meta = append([]kernel.Word(nil), rec.meta...)
		r.wal[i] = rec
	}
	r.cp = nil
	if donor.cp != nil {
		r.cp = &checkpoint{state: donor.cp.state.clone(), sum: donor.cp.sum}
	}
	r.live = true
	r.suspect = false
}

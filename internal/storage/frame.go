package storage

import (
	"encoding/binary"
	"fmt"
)

// This file exports the store's checksum-sealing discipline as a
// standalone frame format, so other durable artifacts — the SWIFI
// campaign checkpoints and shard files of the fleet-scale engine — can
// reuse the exact record-sealing scheme the replicated WAL uses (magic +
// length + payload + FNV-1a sum) instead of inventing a second one.

// frameMagic identifies a sealed frame ("SGF1": SuperGlue frame v1).
const frameMagic = "SGF1"

// frameOverhead is the byte cost of sealing: magic, the little-endian
// payload length, and the trailing FNV-1a checksum.
const frameOverhead = len(frameMagic) + 8 + 4

// SealFrame wraps payload in a checksummed frame: the frame magic, the
// payload length, the payload bytes, and the FNV-1a sum over everything
// before the sum — the same hash the WAL records and checkpoint images
// are sealed with. The payload is copied; the caller may reuse it.
func SealFrame(payload []byte) []byte {
	out := make([]byte, 0, frameOverhead+len(payload))
	out = append(out, frameMagic...)
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(len(payload)))
	out = append(out, w[:]...)
	out = append(out, payload...)
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], sum32(out))
	return append(out, s[:]...)
}

// OpenFrame verifies a sealed frame and returns its payload. A wrong
// magic, a truncated frame, a length mismatch, or a checksum mismatch is
// an error — a corrupt or torn frame is never silently accepted. The
// returned payload aliases data.
func OpenFrame(data []byte) ([]byte, error) {
	if len(data) < frameOverhead {
		return nil, fmt.Errorf("storage: frame truncated (%d bytes)", len(data))
	}
	if string(data[:len(frameMagic)]) != frameMagic {
		return nil, fmt.Errorf("storage: bad frame magic %q", data[:len(frameMagic)])
	}
	n := binary.LittleEndian.Uint64(data[len(frameMagic) : len(frameMagic)+8])
	if uint64(len(data)) != uint64(frameOverhead)+n {
		return nil, fmt.Errorf("storage: frame length mismatch: header says %d payload bytes, frame holds %d",
			n, len(data)-frameOverhead)
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if sum32(body) != want {
		return nil, fmt.Errorf("storage: frame checksum mismatch (corrupt or torn write)")
	}
	return data[len(frameMagic)+8 : len(data)-4], nil
}

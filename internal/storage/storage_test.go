package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"superglue/internal/cbuf"
	"superglue/internal/kernel"
)

const testClass Class = 1

func newStore() (*Store, *cbuf.Manager) {
	cm := cbuf.NewManager(0)
	s := New(cm)
	s.Attach(kernel.ComponentID(42))
	return s, cm
}

func TestCreatorRecordRoundTrip(t *testing.T) {
	s, _ := newStore()
	s.RecordCreator(testClass, 7, 3, []kernel.Word{10, 20})
	rec, ok := s.LookupCreator(testClass, 7)
	if !ok {
		t.Fatal("LookupCreator: not found")
	}
	if rec.Creator != 3 || len(rec.Meta) != 2 || rec.Meta[0] != 10 || rec.Meta[1] != 20 {
		t.Fatalf("record = %+v; want creator 3, meta [10 20]", rec)
	}
}

func TestCreatorMetaIsCopied(t *testing.T) {
	s, _ := newStore()
	meta := []kernel.Word{1, 2}
	s.RecordCreator(testClass, 1, 1, meta)
	meta[0] = 99
	rec, _ := s.LookupCreator(testClass, 1)
	if rec.Meta[0] != 1 {
		t.Fatal("stored meta aliases caller slice: copy-at-boundary violated")
	}
}

func TestRemoveCreator(t *testing.T) {
	s, _ := newStore()
	s.RecordCreator(testClass, 7, 3, nil)
	s.RemoveCreator(testClass, 7)
	if _, ok := s.LookupCreator(testClass, 7); ok {
		t.Fatal("creator still present after RemoveCreator")
	}
}

func TestClassesAreDisjoint(t *testing.T) {
	s, _ := newStore()
	s.RecordCreator(1, 7, 3, nil)
	if _, ok := s.LookupCreator(2, 7); ok {
		t.Fatal("descriptor visible under the wrong class")
	}
}

func TestRemapAndResolve(t *testing.T) {
	s, _ := newStore()
	if got := s.Resolve(testClass, 5); got != 5 {
		t.Fatalf("unmapped Resolve = %d; want identity 5", got)
	}
	s.Remap(testClass, 5, 8)
	if got := s.Resolve(testClass, 5); got != 8 {
		t.Fatalf("Resolve after remap = %d; want 8", got)
	}
	// A second fault remaps again; chains must resolve to the newest.
	s.Remap(testClass, 8, 13)
	if got := s.Resolve(testClass, 5); got != 13 {
		t.Fatalf("chained Resolve = %d; want 13", got)
	}
}

func TestRemapIdentityIgnored(t *testing.T) {
	s, _ := newStore()
	s.Remap(testClass, 4, 4)
	if got := s.Resolve(testClass, 4); got != 4 {
		t.Fatalf("Resolve = %d; want 4", got)
	}
}

func writeCbuf(t *testing.T, cm *cbuf.Manager, owner cbuf.ComponentID, data []byte) cbuf.ID {
	t.Helper()
	id, err := cm.Alloc(owner, len(data))
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := cm.Write(id, owner, 0, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return id
}

func TestSaveAndReadAll(t *testing.T) {
	s, cm := newStore()
	b := writeCbuf(t, cm, 9, []byte("hello world"))
	if err := s.SaveSlice(testClass, 1, 0, b, 0, 11); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	got, err := s.ReadAll(testClass, 1)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, []byte("hello world")) {
		t.Fatalf("ReadAll = %q; want hello world", got)
	}
}

func TestReadAllOverlappingNewestWins(t *testing.T) {
	s, cm := newStore()
	b1 := writeCbuf(t, cm, 9, []byte("aaaa"))
	b2 := writeCbuf(t, cm, 9, []byte("bb"))
	if err := s.SaveSlice(testClass, 1, 0, b1, 0, 4); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	if err := s.SaveSlice(testClass, 1, 1, b2, 0, 2); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	got, err := s.ReadAll(testClass, 1)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "abba" {
		t.Fatalf("ReadAll = %q; want abba (newer slice overlays older)", got)
	}
}

func TestReadAllSparseZeroFills(t *testing.T) {
	s, cm := newStore()
	b := writeCbuf(t, cm, 9, []byte("x"))
	if err := s.SaveSlice(testClass, 1, 3, b, 0, 1); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	got, err := s.ReadAll(testClass, 1)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, []byte{0, 0, 0, 'x'}) {
		t.Fatalf("ReadAll = %v; want zero-filled prefix then x", got)
	}
}

func TestReadAllNotFound(t *testing.T) {
	s, _ := newStore()
	if _, err := s.ReadAll(testClass, 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadAll err = %v; want ErrNotFound", err)
	}
}

func TestTruncate(t *testing.T) {
	s, cm := newStore()
	b := writeCbuf(t, cm, 9, []byte("abcdef"))
	if err := s.SaveSlice(testClass, 1, 0, b, 0, 6); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	s.Truncate(testClass, 1, 3)
	got, err := s.ReadAll(testClass, 1)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "abc" {
		t.Fatalf("after Truncate(3), ReadAll = %q; want abc", got)
	}
	s.Truncate(testClass, 1, 0)
	if s.HasData(testClass, 1) {
		t.Fatal("HasData after Truncate(0); want none")
	}
}

func TestDrop(t *testing.T) {
	s, cm := newStore()
	b := writeCbuf(t, cm, 9, []byte("z"))
	if err := s.SaveSlice(testClass, 1, 0, b, 0, 1); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	s.Drop(testClass, 1)
	if s.HasData(testClass, 1) {
		t.Fatal("HasData after Drop")
	}
}

func TestCreatorsEnumeration(t *testing.T) {
	s, _ := newStore()
	for _, id := range []kernel.Word{5, 1, 3} {
		s.RecordCreator(testClass, id, 2, nil)
	}
	s.RecordCreator(2, 9, 2, nil) // other class; excluded
	got := s.Creators(testClass)
	want := []kernel.Word{1, 3, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Creators = %v; want %v", got, want)
	}
}

// TestChecksumSurvivesTruncate checks that Truncate re-checksums the
// trimmed extent: a shortened prefix must still read back clean.
func TestChecksumSurvivesTruncate(t *testing.T) {
	s, cm := newStore()
	b := writeCbuf(t, cm, 9, []byte("abcdef"))
	if err := s.SaveSlice(testClass, 1, 0, b, 0, 6); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	s.Truncate(testClass, 1, 4)
	got, err := s.ReadAll(testClass, 1)
	if err != nil {
		t.Fatalf("ReadAll after Truncate: %v", err)
	}
	if string(got) != "abcd" {
		t.Fatalf("ReadAll = %q; want abcd", got)
	}
	if n := s.CorruptionsDetected(); n != 0 {
		t.Fatalf("CorruptionsDetected = %d after honest truncate; want 0", n)
	}
}

func TestCorruptOneDetectedByReadAll(t *testing.T) {
	s, cm := newStore()
	b1 := writeCbuf(t, cm, 9, []byte("first"))
	b2 := writeCbuf(t, cm, 9, []byte("second"))
	if err := s.SaveSlice(testClass, 1, 0, b1, 0, 5); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}
	if err := s.SaveSlice(testClass, 2, 0, b2, 0, 6); err != nil {
		t.Fatalf("SaveSlice: %v", err)
	}

	victim, ok := s.CorruptOne(testClass, 0)
	if !ok {
		t.Fatal("CorruptOne found no extents")
	}
	if victim != 1 {
		t.Fatalf("CorruptOne victim = %d; want resource 1 (lowest ID, pick 0)", victim)
	}
	if _, err := s.ReadAll(testClass, victim); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("ReadAll(corrupted) err = %v; want ErrCorrupted", err)
	}
	if n := s.CorruptionsDetected(); n != 1 {
		t.Fatalf("CorruptionsDetected = %d; want 1", n)
	}
	// The other resource is untouched.
	if _, err := s.ReadAll(testClass, 2); err != nil {
		t.Fatalf("ReadAll(clean sibling): %v", err)
	}

	// pick wraps modulo the extent population and negative picks take the
	// absolute value, so any seed-derived integer is a valid selector.
	if v2, ok := s.CorruptOne(testClass, 3); !ok || v2 != 2 {
		t.Fatalf("CorruptOne(pick=3) = %d,%v; want resource 2 (wraps to second extent)", v2, ok)
	}
	if v3, ok := s.CorruptOne(testClass, -3); !ok || v3 != 2 {
		t.Fatalf("CorruptOne(pick=-3) = %d,%v; want resource 2 (abs value)", v3, ok)
	}
}

func TestCorruptOneEmptyClass(t *testing.T) {
	s, _ := newStore()
	if _, ok := s.CorruptOne(testClass, 0); ok {
		t.Fatal("CorruptOne reported success on a class with no data")
	}
	// Creator records without saved slices are not corruptible either.
	s.RecordCreator(testClass, 1, 2, nil)
	if _, ok := s.CorruptOne(testClass, 5); ok {
		t.Fatal("CorruptOne reported success with creators but no extents")
	}
}

func TestInvalidSliceRejected(t *testing.T) {
	s, cm := newStore()
	b := writeCbuf(t, cm, 9, []byte("x"))
	if err := s.SaveSlice(testClass, 1, -1, b, 0, 1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := s.SaveSlice(testClass, 1, 0, cbuf.ID(999), 0, 1); err == nil {
		t.Fatal("dangling cbuf reference accepted")
	}
}

// TestDispatchThroughKernel drives the storage component through real kernel
// invocations.
func TestDispatchThroughKernel(t *testing.T) {
	cm := cbuf.NewManager(0)
	st := New(cm)
	comp := NewComponent(st)
	k := kernel.New()
	id := k.MustRegister(func() kernel.Service { return comp })
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		if _, err := k.Invoke(th, id, FnRecordCreator, 1, 7, 3, 10); err != nil {
			t.Errorf("record_creator: %v", err)
		}
		if got, err := k.Invoke(th, id, FnResolve, 1, 7); err != nil || got != 7 {
			t.Errorf("resolve = (%d, %v); want (7, nil)", got, err)
		}
		if _, err := k.Invoke(th, id, FnRemap, 1, 7, 9); err != nil {
			t.Errorf("remap: %v", err)
		}
		if got, err := k.Invoke(th, id, FnResolve, 1, 7); err != nil || got != 9 {
			t.Errorf("resolve after remap = (%d, %v); want (9, nil)", got, err)
		}
		if _, err := k.Invoke(th, id, "st_bogus"); err == nil {
			t.Error("bogus function dispatched")
		}
		if _, err := k.Invoke(th, id, FnRemap, 1); err == nil {
			t.Error("short arg list accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Remap moved the creator record under the new ID.
	rec, ok := st.LookupCreator(1, 9)
	if !ok || rec.Creator != 3 || len(rec.Meta) != 1 || rec.Meta[0] != 10 {
		t.Fatalf("record = (%+v, %v); want creator 3 meta [10] under remapped id 9", rec, ok)
	}
	if _, ok := st.LookupCreator(1, 7); ok {
		t.Fatal("creator record still present under stale id 7")
	}
}

// TestSliceRoundTripProperty: random sequences of writes reassemble to the
// same bytes a plain in-memory file would hold.
func TestSliceRoundTripProperty(t *testing.T) {
	prop := func(chunks [][]byte, offs []uint8) bool {
		s, cm := newStore()
		model := make([]byte, 0, 512)
		n := len(chunks)
		if len(offs) < n {
			n = len(offs)
		}
		wrote := false
		for i := 0; i < n; i++ {
			data := chunks[i]
			if len(data) == 0 {
				continue
			}
			off := int(offs[i])
			b, err := cm.Alloc(9, len(data))
			if err != nil {
				return false
			}
			if err := cm.Write(b, 9, 0, data); err != nil {
				return false
			}
			if err := s.SaveSlice(testClass, 1, off, b, 0, len(data)); err != nil {
				return false
			}
			if end := off + len(data); end > len(model) {
				model = append(model, make([]byte, end-len(model))...)
			}
			copy(model[off:], data)
			wrote = true
		}
		if !wrote {
			return true
		}
		got, err := s.ReadAll(testClass, 1)
		if err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestResolveCompressesChains: after resolution, every link on a remap
// chain points directly at the root, keeping stale-ID translation O(1)
// across many faults.
func TestResolveCompressesChains(t *testing.T) {
	s, _ := newStore()
	for i := kernel.Word(1); i < 50; i++ {
		s.Remap(testClass, i, i+1)
	}
	if got := s.Resolve(testClass, 1); got != 50 {
		t.Fatalf("Resolve(1) = %d; want 50", got)
	}
	// The chain is now flat: a direct second hop resolves immediately.
	s.mu.Lock()
	direct := s.reps[0].state.remap[key{testClass, 1}]
	s.mu.Unlock()
	if direct != 50 {
		t.Fatalf("chain not compressed: remap[1] = %d; want 50", direct)
	}
}

// Package obs is the recovery-observability layer of the SuperGlue
// reproduction: a low-overhead structured trace recorder plus
// per-component / per-recovery-mechanism metrics.
//
// The paper evaluates SuperGlue by measuring fault-recovery cost per
// service (Table II, Fig. 6–9) but treats each recovery as a black box.
// This package makes the detection→recovery pipeline measurable
// end-to-end: the kernel, the C³ runtime, and sgc-generated stubs emit
// typed events (Invoke, FaultDetected, Reboot, RebuildWalk, Reflect,
// Upcall, Degraded) into a fixed-capacity ring buffer, and the recorder
// aggregates counters and virtual-time latency histograms keyed by
// component and by recovery mechanism (R0/T0/T1/D0/D1/G0/G1/U0,
// the paper's §III-B taxonomy).
//
// Design constraints (see docs/OBSERVABILITY.md):
//
//   - No dependency on the kernel package: the kernel imports obs, so
//     obs identifies components and threads with plain int32 and
//     virtual time with plain int64 (microseconds).
//   - Allocation-free steady state: the ring is preallocated, event
//     payloads are value types, and per-component slots are reused, so
//     recording does not allocate after the first event per component.
//     The PR-2 alloc-guard tests additionally pin the *disabled* path
//     (a nil recorder) at zero allocations and zero overhead beyond one
//     atomic load and a predictable branch.
//   - Nil-safe: every method on *Recorder is safe on a nil receiver, so
//     instrumentation sites never need a second guard.
package obs

import (
	"fmt"
	"math/bits"
	"sync"

	"superglue/internal/fault"
)

// EventKind identifies the type of a trace event.
type EventKind uint8

// The event taxonomy. Every fault-tolerance-relevant edge in the system
// maps to exactly one kind; docs/OBSERVABILITY.md gives the full
// mapping to the paper's model.
const (
	// EvInvoke is one synchronous component invocation (thread
	// migration into a server).
	EvInvoke EventKind = iota + 1
	// EvFaultDetected marks the instant a component enters the failed
	// state: a SWIFI-activated fail-stop fault, or a watchdog verdict
	// (Fn "watchdog:hang" / "watchdog:deadlock").
	EvFaultDetected
	// EvReboot is a completed µ-reboot: fresh instance installed, epoch
	// bumped, Init upcall and eager-recovery hooks run. Detail carries
	// the virtual-time cost and Steps the invocation-step cost.
	EvReboot
	// EvRebuildWalk is one interface-driven recovery span: a descriptor
	// state-machine walk replay or another recovery-mechanism firing.
	// Mech says which mechanism; Detail/Steps carry its cost.
	EvRebuildWalk
	// EvReflect is a kernel reflection pass (ReflectThreads): recovery
	// code rebuilding scheduler state from authoritative kernel thread
	// objects. Detail carries the number of threads reflected on.
	EvReflect
	// EvUpcall is a recovery upcall into a client component (the U0
	// direction, e.g. sg.recover / sg.recreate / sg.rebuilt).
	EvUpcall
	// EvDegraded marks the recovery escalation ladder giving up on a
	// component and returning a typed DegradedError to the application.
	EvDegraded
	// EvMigrate is one thread migration between simulated cores: a
	// cross-core invocation entry (Fn "xcall"), its return, or an explicit
	// migration (Fn "migrate"). FromCore/ToCore carry the edge and Detail
	// the virtual-time migration latency (clock synchronization + migration
	// charge + destination queueing delay).
	EvMigrate
	// EvStorage is a storage-replication event: a replica µ-reboot
	// (checkpoint + WAL replay, Fn "storage:rebuild" or
	// "storage:anti-entropy"), a divergent replica caught and repaired by a
	// quorum read (Fn "storage:repair"), or quorum loss (Fn
	// "storage:quorum-lost"). Replica carries the replica index and Detail
	// the number of WAL records replayed (rebuilds only).
	EvStorage

	numKinds = int(EvStorage) + 1
)

// String returns the canonical event-kind name used by the exporters.
func (k EventKind) String() string {
	switch k {
	case EvInvoke:
		return "Invoke"
	case EvFaultDetected:
		return "FaultDetected"
	case EvReboot:
		return "Reboot"
	case EvRebuildWalk:
		return "RebuildWalk"
	case EvReflect:
		return "Reflect"
	case EvUpcall:
		return "Upcall"
	case EvDegraded:
		return "Degraded"
	case EvMigrate:
		return "Migrate"
	case EvStorage:
		return "Storage"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// MarshalJSON encodes the kind as its canonical name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Mechanism identifies one of the paper's recovery mechanisms (§III-B).
// It deliberately mirrors core.Mechanism without importing it: obs sits
// below every other package.
type Mechanism uint8

// The recovery-mechanism taxonomy of the paper, plus MechNone for
// events that are not tied to a mechanism.
const (
	// MechNone marks events not attributed to a recovery mechanism.
	MechNone Mechanism = iota
	// MechR0 is descriptor rebuild by replaying the recorded shortest
	// recovery walk through the descriptor state machine.
	MechR0
	// MechT0 is eager recovery: descriptors rebuilt immediately at
	// µ-reboot time (reboot hooks and eager thread diversion).
	MechT0
	// MechT1 is lazy (on-demand) recovery: a descriptor rebuilt when
	// the next invocation that needs it observes the fault.
	MechT1
	// MechD0 is subtree recovery: a parent descriptor recovering its
	// children (desc_close_children relationships).
	MechD0
	// MechD1 is parent recovery: rebuilding a descriptor's parent
	// before the descriptor itself.
	MechD1
	// MechG0 is global-descriptor recovery: resolving or recreating a
	// stale server-side ID through the redundant-storage maps (EINVAL
	// → lookup creator → recreate → remap).
	MechG0
	// MechG1 is redundant data: maintaining and restoring descriptor /
	// resource payload copies (client-side replay data, storage-backed
	// resource contents).
	MechG1
	// MechU0 is the recovery upcall mechanism: the runtime calling
	// into client components (sg.recover / sg.recreate / sg.rebuilt).
	MechU0
)

// NumMechanisms is the size of per-mechanism stat arrays (MechR0…MechU0
// plus the MechNone slot at index 0).
const NumMechanisms = int(MechU0) + 1

// String returns the paper's name for the mechanism (R0, T0, …, U0).
func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return "none"
	case MechR0:
		return "R0"
	case MechT0:
		return "T0"
	case MechT1:
		return "T1"
	case MechD0:
		return "D0"
	case MechD1:
		return "D1"
	case MechG0:
		return "G0"
	case MechG1:
		return "G1"
	case MechU0:
		return "U0"
	default:
		return fmt.Sprintf("Mechanism(%d)", uint8(m))
	}
}

// MarshalJSON encodes the mechanism as its paper name.
func (m Mechanism) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// Mechanisms lists the eight real mechanisms in the paper's order, for
// exporters and reports that want a stable iteration order.
func Mechanisms() []Mechanism {
	return []Mechanism{MechR0, MechT0, MechT1, MechD0, MechD1, MechG0, MechG1, MechU0}
}

// Event is one trace record. Events are value types sized for the ring
// buffer; the only pointer-carrying field is Fn, which aliases static
// interface-function name strings (no per-event allocation).
type Event struct {
	// Seq is the global event sequence number (1-based).
	Seq uint64 `json:"seq"`
	// Time is the virtual time (µs) at which the event was recorded.
	Time int64 `json:"vtime_us"`
	// Kind is the event type.
	Kind EventKind `json:"kind"`
	// Mech is the recovery mechanism, for EvRebuildWalk (MechNone
	// otherwise).
	Mech Mechanism `json:"mechanism,omitempty"`
	// Comp is the component the event concerns (0 = none/system-wide).
	Comp int32 `json:"comp"`
	// Thread is the simulated thread on which the event occurred
	// (0 = none, e.g. a fault injected from outside any thread).
	Thread int32 `json:"thread,omitempty"`
	// Gen is the recovery generation: the component epoch the event
	// observed (for EvReboot, the new epoch after the bump).
	Gen uint64 `json:"gen"`
	// Fn is the interface function involved, if any.
	Fn string `json:"fn,omitempty"`
	// Detail is a kind-specific magnitude: virtual-time cost (µs) for
	// EvReboot and EvRebuildWalk, thread count for EvReflect.
	Detail int64 `json:"detail,omitempty"`
	// Steps is the invocation-step cost (completed kernel invocations
	// during the span) for EvReboot and EvRebuildWalk.
	Steps uint64 `json:"steps,omitempty"`
	// FaultKind classifies an EvFaultDetected event in the system fault
	// taxonomy (fault.KindUnknown for unclassified detection sites).
	FaultKind fault.Kind `json:"fault_kind,omitempty"`
	// FaultSev grades an EvFaultDetected event (fault.SevUnknown when
	// ungraded).
	FaultSev fault.Severity `json:"fault_severity,omitempty"`
	// FromCore and ToCore are the cores of an EvMigrate edge.
	FromCore int32 `json:"from_core,omitempty"`
	ToCore   int32 `json:"to_core,omitempty"`
	// Replica is the storage replica index of an EvStorage event.
	Replica int32 `json:"replica,omitempty"`
}

// XCallFn is the Fn marker of an EvMigrate event that entered a core to
// execute a cross-core invocation; MigrateFn marks every other migration
// (invocation returns and explicit migrations). Static strings so the
// recording path stays allocation-free.
const (
	XCallFn   = "xcall"
	MigrateFn = "migrate"
)

// Fn markers of EvStorage events: a replica rebuilt from its own
// checkpoint + WAL, a replica repaired by anti-entropy copy from a peer,
// a divergent replica caught and repaired by a quorum read, and quorum
// loss. Static strings so the recording path stays allocation-free.
const (
	StorageRebuildFn     = "storage:rebuild"
	StorageAntiEntropyFn = "storage:anti-entropy"
	StorageRepairFn      = "storage:repair"
	StorageQuorumLostFn  = "storage:quorum-lost"
)

// NumBuckets is the number of virtual-time histogram buckets per
// mechanism. Bucket 0 counts zero-latency spans; bucket i (0 < i <
// NumBuckets-1) counts spans with latency in [2^(i-1), 2^i) µs; the
// last bucket is unbounded.
const NumBuckets = 16

// bucketOf maps a virtual-time latency (µs) to its histogram bucket.
func bucketOf(vt int64) int {
	if vt <= 0 {
		return 0
	}
	b := bits.Len64(uint64(vt))
	if b > NumBuckets-1 {
		b = NumBuckets - 1
	}
	return b
}

// BucketLabel returns the inclusive upper bound of histogram bucket i
// as a Prometheus-style "le" label: "0", "1", "3", "7", …, "+Inf".
func BucketLabel(i int) string {
	if i <= 0 {
		return "0"
	}
	if i >= NumBuckets-1 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", (int64(1)<<uint(i))-1)
}

// MechStat aggregates one (component, mechanism) cell: how often the
// mechanism fired, its total/max virtual-time cost, its total
// invocation-step cost, and the latency histogram.
type MechStat struct {
	// Count is the number of spans recorded for this mechanism.
	Count uint64 `json:"count"`
	// TotalVT is the summed virtual-time cost (µs) across spans.
	TotalVT int64 `json:"total_vtime_us"`
	// MaxVT is the largest single-span virtual-time cost (µs).
	MaxVT int64 `json:"max_vtime_us"`
	// TotalSteps is the summed invocation-step cost across spans.
	TotalSteps uint64 `json:"total_steps"`
	// Hist is the latency histogram (see NumBuckets for bucket bounds).
	Hist [NumBuckets]uint64 `json:"hist"`
}

// add folds one span into the cell.
func (s *MechStat) add(vt int64, steps uint64) {
	s.Count++
	s.TotalVT += vt
	if vt > s.MaxVT {
		s.MaxVT = vt
	}
	s.TotalSteps += steps
	s.Hist[bucketOf(vt)]++
}

// merge folds another cell into this one (used for the all-components
// aggregate in Snapshot).
func (s *MechStat) merge(o MechStat) {
	s.Count += o.Count
	s.TotalVT += o.TotalVT
	if o.MaxVT > s.MaxVT {
		s.MaxVT = o.MaxVT
	}
	s.TotalSteps += o.TotalSteps
	for i := range s.Hist {
		s.Hist[i] += o.Hist[i]
	}
}

// compStats is the per-component aggregate (slot index = component ID).
type compStats struct {
	seen       bool
	name       string
	invokes    uint64
	upcalls    uint64
	faults     uint64
	reboots    uint64
	degraded   uint64
	mech       [NumMechanisms]MechStat
	faultKinds [fault.NumKinds]uint64
}

// DefaultCapacity is the ring-buffer capacity used by NewRecorder.
const DefaultCapacity = 4096

// Recorder is the trace sink: a fixed-capacity ring buffer of Events
// plus per-component/per-mechanism aggregates. A single Recorder is
// shared by the kernel and the runtime; methods are safe for concurrent
// use and safe on a nil receiver (a nil *Recorder records nothing).
//
// The recorder is intentionally mutex-guarded rather than lock-free:
// tracing is off by default, the enabled path is not the benchmark
// configuration, and a single short critical section keeps the ring and
// the aggregates consistent with each other.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	seq   uint64 // total events ever recorded
	kinds [numKinds]uint64
	comps []compStats // index = component ID (slot 0 = "system")

	// Per-fault-taxonomy counters over EvFaultDetected events: how many
	// faults of each fault.Kind and fault.Severity were detected.
	faultKinds [fault.NumKinds]uint64
	faultSevs  [fault.NumSeverities]uint64

	// Per-core migration counters (slot index = core number) and the
	// cross-core invocation latency histogram over EvMigrate events.
	cores    []coreObs
	crossLat MechStat

	// Per-storage-replica counters (slot index = replica number), the
	// replica-rebuild latency histogram (latency dimension = WAL records
	// replayed), and the store-wide quorum counters.
	storageReps       []storageRepObs
	storRebuildLat    MechStat
	storQuorumRepairs uint64
	storQuorumLost    uint64
}

// storageRepObs is the per-storage-replica aggregate of write/checkpoint
// counters and EvStorage events.
type storageRepObs struct {
	writes      uint64 // WAL records appended on the replica
	checkpoints uint64 // checkpoints captured on the replica
	rebuilds    uint64 // replica µ-reboots (local replay or anti-entropy)
	repairs     uint64 // divergence repairs applied by quorum reads
}

// storageSlot returns the per-replica aggregate, growing the table on
// first sight of a replica. Caller holds r.mu.
func (r *Recorder) storageSlot(rep int32) *storageRepObs {
	i := int(rep)
	if i < 0 {
		i = 0
	}
	for i >= len(r.storageReps) {
		r.storageReps = append(r.storageReps, storageRepObs{})
	}
	return &r.storageReps[i]
}

// coreObs is the per-core aggregate of EvMigrate events.
type coreObs struct {
	in    uint64 // migrations onto the core
	out   uint64 // migrations off the core
	xcall uint64 // migrations in that were cross-core invocation entries
}

// coreSlot returns the per-core aggregate, growing the table on first
// sight of a core. Caller holds r.mu.
func (r *Recorder) coreSlot(core int32) *coreObs {
	i := int(core)
	if i < 0 {
		i = 0
	}
	for i >= len(r.cores) {
		r.cores = append(r.cores, coreObs{})
	}
	return &r.cores[i]
}

// NewRecorder returns a Recorder with the given ring capacity
// (DefaultCapacity if capacity <= 0). The ring holds the most recent
// events; aggregates cover every event since construction or Reset.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ring:  make([]Event, 0, capacity),
		comps: make([]compStats, 0, 16),
	}
}

// slot returns the per-component aggregate for comp, growing the table
// on first sight of a component (the only allocating path).
func (r *Recorder) slot(comp int32) *compStats {
	i := int(comp)
	if i < 0 {
		i = 0
	}
	for i >= len(r.comps) {
		if len(r.comps) < cap(r.comps) {
			r.comps = r.comps[:len(r.comps)+1]
		} else {
			r.comps = append(r.comps, compStats{})
		}
	}
	s := &r.comps[i]
	s.seen = true
	return s
}

// SetComponentName associates a human-readable name with a component ID
// for snapshots and exporters.
func (r *Recorder) SetComponentName(comp int32, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.slot(comp).name = name
	r.mu.Unlock()
}

// push appends ev to the ring (overwriting the oldest event when full)
// and bumps the kind counter. Caller holds r.mu.
func (r *Recorder) push(ev Event) {
	r.seq++
	ev.Seq = r.seq
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[int((r.seq-1)%uint64(cap(r.ring)))] = ev
	}
	r.kinds[ev.Kind]++
}

// Record appends an arbitrary event and folds it into the aggregates.
// The typed helpers (RecordInvoke, RecordRecovery, …) are preferred at
// instrumentation sites; Record exists for tests and external tooling.
func (r *Recorder) Record(ev Event) {
	if r == nil || ev.Kind == 0 || int(ev.Kind) >= numKinds {
		return
	}
	r.mu.Lock()
	r.push(ev)
	s := r.slot(ev.Comp)
	switch ev.Kind {
	case EvInvoke:
		s.invokes++
	case EvUpcall:
		s.upcalls++
	case EvFaultDetected:
		s.faults++
		if int(ev.FaultKind) < fault.NumKinds {
			s.faultKinds[ev.FaultKind]++
			r.faultKinds[ev.FaultKind]++
		}
		if int(ev.FaultSev) < fault.NumSeverities {
			r.faultSevs[ev.FaultSev]++
		}
	case EvReboot:
		s.reboots++
	case EvDegraded:
		s.degraded++
	case EvRebuildWalk:
		if ev.Mech != MechNone && int(ev.Mech) < NumMechanisms {
			s.mech[ev.Mech].add(ev.Detail, ev.Steps)
		}
	case EvMigrate:
		r.coreSlot(ev.FromCore).out++
		to := r.coreSlot(ev.ToCore)
		to.in++
		if ev.Fn == XCallFn {
			to.xcall++
			r.crossLat.add(ev.Detail, 0)
		}
	case EvStorage:
		rs := r.storageSlot(ev.Replica)
		switch ev.Fn {
		case StorageRebuildFn, StorageAntiEntropyFn:
			rs.rebuilds++
			r.storRebuildLat.add(ev.Detail, 0)
		case StorageRepairFn:
			rs.repairs++
			r.storQuorumRepairs++
		case StorageQuorumLostFn:
			r.storQuorumLost++
		}
	}
	r.mu.Unlock()
}

// RecordStorageWrite counts one WAL record appended on a storage replica.
// Writes are high-frequency, so they only bump a counter — no ring event.
func (r *Recorder) RecordStorageWrite(replica int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.storageSlot(int32(replica)).writes++
	r.mu.Unlock()
}

// RecordStorageCheckpoint counts one checkpoint captured on a storage
// replica (counter only, like writes).
func (r *Recorder) RecordStorageCheckpoint(replica int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.storageSlot(int32(replica)).checkpoints++
	r.mu.Unlock()
}

// RecordStorageRebuild records a storage-replica µ-reboot: replayed is the
// number of WAL records re-applied (the latency dimension of the rebuild
// histogram); antiEntropy marks a repair by full copy from a quorum peer
// instead of local checkpoint+log replay.
func (r *Recorder) RecordStorageRebuild(replica, replayed int, antiEntropy bool) {
	if r == nil {
		return
	}
	fn := StorageRebuildFn
	if antiEntropy {
		fn = StorageAntiEntropyFn
	}
	r.Record(Event{Kind: EvStorage, Fn: fn, Replica: int32(replica), Detail: int64(replayed)})
}

// RecordStorageRepair records a divergent storage replica caught and
// repaired by a quorum read. The context string describes the read; it is
// kept out of the event to stay allocation-free (the store's typed fault
// log carries it).
func (r *Recorder) RecordStorageRepair(replica int, context string) {
	if r == nil {
		return
	}
	_ = context
	r.Record(Event{Kind: EvStorage, Fn: StorageRepairFn, Replica: int32(replica)})
}

// RecordStorageQuorumLost records a storage read or rebuild that found no
// majority of agreeing, uncorrupted replicas.
func (r *Recorder) RecordStorageQuorumLost(context string) {
	if r == nil {
		return
	}
	_ = context
	r.Record(Event{Kind: EvStorage, Fn: StorageQuorumLostFn})
}

// RecordMigration records one thread migration between cores: a cross-core
// invocation entry when xcall is set (folded into the cross-core latency
// histogram), an invocation return or explicit migration otherwise. vt is
// the destination core's clock at dispatch and latency the virtual time
// between leaving the source core and being dispatched on the destination.
func (r *Recorder) RecordMigration(from, to, thread int32, vt, latency int64, xcall bool) {
	if r == nil {
		return
	}
	fn := MigrateFn
	if xcall {
		fn = XCallFn
	}
	r.Record(Event{Kind: EvMigrate, Thread: thread, Fn: fn, Time: vt, Detail: latency,
		FromCore: from, ToCore: to})
}

// RecordInvoke records one component invocation.
func (r *Recorder) RecordInvoke(comp, thread int32, fn string, now int64, gen uint64) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: EvInvoke, Comp: comp, Thread: thread, Fn: fn, Time: now, Gen: gen})
}

// RecordUpcall records a recovery upcall into a client component (U0).
// The upcall also surfaces as a U0 mechanism span so per-mechanism
// accounting covers the upcall direction.
func (r *Recorder) RecordUpcall(comp, thread int32, fn string, now int64, gen uint64) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: EvUpcall, Comp: comp, Thread: thread, Fn: fn, Time: now, Gen: gen})
	r.Record(Event{Kind: EvRebuildWalk, Mech: MechU0, Comp: comp, Thread: thread, Fn: fn, Time: now, Gen: gen})
}

// RecordFault records the detection instant of a component fault with its
// taxonomy classification (fault.KindUnknown / fault.SevUnknown for
// unclassified detection sites).
func (r *Recorder) RecordFault(comp, thread int32, fn string, now int64, gen uint64, kind fault.Kind, sev fault.Severity) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: EvFaultDetected, Comp: comp, Thread: thread, Fn: fn, Time: now, Gen: gen,
		FaultKind: kind, FaultSev: sev})
}

// RecordReboot records a completed µ-reboot with its virtual-time and
// invocation-step cost. gen is the component's new epoch.
func (r *Recorder) RecordReboot(comp, thread int32, now int64, gen uint64, vt int64, steps uint64) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: EvReboot, Comp: comp, Thread: thread, Time: now, Gen: gen, Detail: vt, Steps: steps})
}

// RecordRecovery records one recovery-mechanism span (EvRebuildWalk):
// mechanism mech fired for component comp, costing vt µs of virtual
// time and steps kernel invocations.
func (r *Recorder) RecordRecovery(mech Mechanism, comp, thread int32, fn string, now int64, gen uint64, vt int64, steps uint64) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: EvRebuildWalk, Mech: mech, Comp: comp, Thread: thread, Fn: fn, Time: now, Gen: gen, Detail: vt, Steps: steps})
}

// RecordReflect records a kernel reflection pass over n threads.
func (r *Recorder) RecordReflect(now int64, n int) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: EvReflect, Time: now, Detail: int64(n)})
}

// RecordDegraded records the escalation ladder declaring a component
// degraded (the typed-error graceful-degradation outcome).
func (r *Recorder) RecordDegraded(comp, thread int32, fn string, now int64, gen uint64) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: EvDegraded, Comp: comp, Thread: thread, Fn: fn, Time: now, Gen: gen})
}

// TotalEvents returns the number of events recorded since construction
// or Reset (including events already overwritten in the ring).
func (r *Recorder) TotalEvents() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Reset clears the ring and all aggregates, keeping component names and
// the allocated capacity. SWIFI campaigns call it between trials when
// they only want per-trial deltas.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring = r.ring[:0]
	r.seq = 0
	r.kinds = [numKinds]uint64{}
	r.faultKinds = [fault.NumKinds]uint64{}
	r.faultSevs = [fault.NumSeverities]uint64{}
	for i := range r.cores {
		r.cores[i] = coreObs{}
	}
	r.crossLat = MechStat{}
	for i := range r.storageReps {
		r.storageReps[i] = storageRepObs{}
	}
	r.storRebuildLat = MechStat{}
	r.storQuorumRepairs = 0
	r.storQuorumLost = 0
	for i := range r.comps {
		r.comps[i] = compStats{name: r.comps[i].name, seen: r.comps[i].seen}
	}
	r.mu.Unlock()
}

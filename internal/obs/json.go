package obs

import (
	"fmt"
	"strconv"
)

// This file adds the decode direction of the enum JSON encodings. The
// fleet-scale SWIFI engine round-trips obs.Snapshot through JSON in its
// campaign checkpoint and shard files (internal/swifi), so the typed
// Event fields must unmarshal back to exactly the values they marshaled
// from — a resumed campaign's final snapshot has to be byte-identical
// to an uninterrupted one.

// UnmarshalJSON decodes an event kind from its canonical name.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("obs: event kind %s: %w", data, err)
	}
	for c := EventKind(0); int(c) < numKinds; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// UnmarshalJSON decodes a mechanism from its paper name.
func (m *Mechanism) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("obs: mechanism %s: %w", data, err)
	}
	for c := MechNone; int(c) < NumMechanisms; c++ {
		if c.String() == s {
			*m = c
			return nil
		}
	}
	return fmt.Errorf("obs: unknown mechanism %q", s)
}

package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"superglue/internal/fault"
)

// trialSnapshots builds n deterministic per-trial snapshots with a mix
// of event kinds, components, and recovery latencies — the shape the
// SWIFI engine feeds Merge.
func trialSnapshots(t *testing.T, n int, seed int64) []Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mechs := Mechanisms()
	out := make([]Snapshot, n)
	for i := range out {
		r := NewRecorder(64)
		comp := int32(2 + rng.Intn(3))
		r.SetComponentName(comp, "svc")
		for e := 0; e < 3+rng.Intn(6); e++ {
			now := int64(e * 5)
			switch rng.Intn(4) {
			case 0:
				r.RecordInvoke(comp, 1, "fn", now, 0)
			case 1:
				// Vary the taxonomy classification (including the
				// unclassified zero values) so the associativity property
				// covers the per-kind/per-severity counters too.
				kinds := fault.Kinds()
				fk := fault.KindUnknown
				if rng.Intn(4) > 0 {
					fk = kinds[rng.Intn(len(kinds))]
				}
				r.RecordFault(comp, 1, "fn", now, uint64(e), fk, fault.DefaultSeverity(fk))
			case 2:
				r.RecordReboot(comp, 1, now, uint64(e), int64(rng.Intn(2000)), uint64(e))
			default:
				m := mechs[rng.Intn(len(mechs))]
				r.RecordRecovery(m, comp, 1, "fn", now, uint64(e), int64(rng.Intn(5000)), 3)
			}
		}
		out[i] = r.Snapshot()
	}
	return out
}

// foldInto merges snaps into dst in order.
func foldInto(dst *Snapshot, snaps []Snapshot) {
	for _, s := range snaps {
		dst.Merge(s)
	}
}

// TestMergeHalvesEqualsWhole is the associativity property the parallel
// campaign engine relies on: folding all trial snapshots in order equals
// folding the two halves separately and merging the halves — for any
// split point. Equality is both structural and byte-level JSON.
func TestMergeHalvesEqualsWhole(t *testing.T) {
	snaps := trialSnapshots(t, 20, 42)
	var whole Snapshot
	foldInto(&whole, snaps)
	for _, split := range []int{0, 1, 7, 10, 19, 20} {
		var a, b Snapshot
		foldInto(&a, snaps[:split])
		foldInto(&b, snaps[split:])
		a.Merge(b)
		if !reflect.DeepEqual(whole, a) {
			t.Fatalf("split at %d: merged halves differ from whole\nwhole: %+v\nhalves: %+v", split, whole, a)
		}
		wj, err := json.Marshal(whole)
		if err != nil {
			t.Fatalf("marshal whole: %v", err)
		}
		aj, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("marshal halves: %v", err)
		}
		if string(wj) != string(aj) {
			t.Fatalf("split at %d: JSON differs", split)
		}
	}
}

// TestMergeInvariants checks the aggregate bookkeeping: totals sum,
// events are renumbered contiguously, all 8 mechanisms stay present,
// and components are unioned in ID order.
func TestMergeInvariants(t *testing.T) {
	snaps := trialSnapshots(t, 8, 7)
	var total uint64
	for _, s := range snaps {
		total += s.TotalEvents
	}
	var m Snapshot
	foldInto(&m, snaps)
	if m.TotalEvents != total {
		t.Errorf("TotalEvents = %d, want %d", m.TotalEvents, total)
	}
	if uint64(len(m.Events)) != total || m.DroppedEvents != 0 {
		t.Errorf("events = %d dropped = %d, want %d and 0", len(m.Events), m.DroppedEvents, total)
	}
	for i, ev := range m.Events {
		if ev.Seq != uint64(i)+1 {
			t.Fatalf("event %d has Seq %d; want contiguous renumbering", i, ev.Seq)
		}
	}
	if len(m.Mechanisms) != len(Mechanisms()) {
		t.Errorf("mechanisms = %d, want %d (all present, even zero)", len(m.Mechanisms), len(Mechanisms()))
	}
	for i := 1; i < len(m.Components); i++ {
		if m.Components[i-1].ID >= m.Components[i].ID {
			t.Errorf("components not in ID order: %d before %d", m.Components[i-1].ID, m.Components[i].ID)
		}
	}
}

// TestMergeDoesNotAliasSource: mutating the merged snapshot must not
// write through into the per-trial snapshot it came from.
func TestMergeDoesNotAliasSource(t *testing.T) {
	snaps := trialSnapshots(t, 2, 11)
	before, err := json.Marshal(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	var m Snapshot
	foldInto(&m, snaps)
	for i := range m.Events {
		m.Events[i].Fn = "clobbered"
	}
	for i := range m.Components {
		m.Components[i].Name = "clobbered"
		for j := range m.Components[i].Mechanisms {
			m.Components[i].Mechanisms[j].Count += 100
		}
	}
	after, err := json.Marshal(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("Merge aliased the source snapshot's storage")
	}
}

// TestTrim checks the ring-mirroring bound: only the most recent
// capacity events survive, they keep their global sequence numbers, and
// DroppedEvents accounts for the rest.
func TestTrim(t *testing.T) {
	snaps := trialSnapshots(t, 10, 3)
	var m Snapshot
	foldInto(&m, snaps)
	n := len(m.Events)
	if n < 12 {
		t.Fatalf("want at least 12 events to trim, got %d", n)
	}
	const capEvents = 10
	m.Trim(capEvents)
	if len(m.Events) != capEvents {
		t.Fatalf("post-trim events = %d, want %d", len(m.Events), capEvents)
	}
	for i, ev := range m.Events {
		want := uint64(n-capEvents+i) + 1
		if ev.Seq != want {
			t.Errorf("trimmed event %d: Seq = %d, want %d (sequence preserved)", i, ev.Seq, want)
		}
	}
	if m.DroppedEvents != m.TotalEvents-uint64(capEvents) {
		t.Errorf("DroppedEvents = %d, want %d", m.DroppedEvents, m.TotalEvents-uint64(capEvents))
	}
	// Trimming to a bound larger than the stream is a no-op.
	before := len(m.Events)
	m.Trim(1 << 20)
	if len(m.Events) != before {
		t.Error("Trim with large capacity mutated the stream")
	}
	m.Trim(0)
	if len(m.Events) != before {
		t.Error("Trim(0) must trim nothing")
	}
}

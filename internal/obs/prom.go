package obs

import (
	"fmt"
	"io"
)

// WritePrometheus writes the recorder's aggregates in the Prometheus
// text exposition format (version 0.0.4): per-component counters, the
// per-(component, mechanism) recovery counters, and cumulative
// recovery-latency histograms over virtual-time buckets. Virtual time
// is the simulator's deterministic clock, so the histograms measure
// modeled recovery cost, not wall-clock time (see docs/OBSERVABILITY.md
// for the methodology).
func (r *Recorder) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP superglue_trace_events_total Trace events recorded, by kind.\n")
	p("# TYPE superglue_trace_events_total counter\n")
	for _, kind := range []EventKind{EvInvoke, EvFaultDetected, EvReboot, EvRebuildWalk, EvReflect, EvUpcall, EvDegraded, EvMigrate, EvStorage} {
		if n, ok := snap.Kinds[kind.String()]; ok {
			p("superglue_trace_events_total{kind=%q} %d\n", kind.String(), n)
		}
	}

	counters := []struct {
		name, help string
		get        func(ComponentSnapshot) uint64
	}{
		{"superglue_invocations_total", "Component invocations delivered.", func(c ComponentSnapshot) uint64 { return c.Invokes }},
		{"superglue_upcalls_total", "Recovery upcalls delivered (U0 direction).", func(c ComponentSnapshot) uint64 { return c.Upcalls }},
		{"superglue_faults_detected_total", "Component faults detected (fail-stop + watchdog).", func(c ComponentSnapshot) uint64 { return c.Faults }},
		{"superglue_reboots_total", "Completed component micro-reboots.", func(c ComponentSnapshot) uint64 { return c.Reboots }},
		{"superglue_degraded_total", "Escalation-ladder degradations.", func(c ComponentSnapshot) uint64 { return c.Degraded }},
	}
	for _, ctr := range counters {
		p("# HELP %s %s\n# TYPE %s counter\n", ctr.name, ctr.help, ctr.name)
		for _, c := range snap.Components {
			if n := ctr.get(c); n > 0 {
				p("%s{component=%q} %d\n", ctr.name, labelFor(c), n)
			}
		}
	}

	if len(snap.Cores) > 0 {
		coreCounters := []struct {
			name, help string
			get        func(CoreSnapshot) uint64
		}{
			{"superglue_core_migrations_in_total", "Thread migrations onto the core.", func(c CoreSnapshot) uint64 { return c.MigrationsIn }},
			{"superglue_core_migrations_out_total", "Thread migrations off the core.", func(c CoreSnapshot) uint64 { return c.MigrationsOut }},
			{"superglue_core_cross_invocations_total", "Cross-core synchronous invocation entries on the core.", func(c CoreSnapshot) uint64 { return c.CrossCoreInvocations }},
		}
		for _, ctr := range coreCounters {
			p("# HELP %s %s\n# TYPE %s counter\n", ctr.name, ctr.help, ctr.name)
			for _, c := range snap.Cores {
				if n := ctr.get(c); n > 0 {
					p("%s{core=\"%d\"} %d\n", ctr.name, c.Core, n)
				}
			}
		}
	}
	if lat := snap.CrossCoreLatency; lat != nil {
		p("# HELP superglue_cross_core_invocation_latency_vtime_us Cross-core invocation dispatch latency in virtual-time microseconds.\n")
		p("# TYPE superglue_cross_core_invocation_latency_vtime_us histogram\n")
		cum := uint64(0)
		for i, n := range lat.Hist {
			cum += n
			p("superglue_cross_core_invocation_latency_vtime_us_bucket{le=%q} %d\n", BucketLabel(i), cum)
		}
		p("superglue_cross_core_invocation_latency_vtime_us_sum %d\n", lat.TotalVT)
		p("superglue_cross_core_invocation_latency_vtime_us_count %d\n", lat.Count)
	}

	if st := snap.Storage; st != nil {
		storCounters := []struct {
			name, help string
			get        func(StorageReplicaSnapshot) uint64
		}{
			{"superglue_storage_writes_total", "WAL records appended on the storage replica.", func(rs StorageReplicaSnapshot) uint64 { return rs.Writes }},
			{"superglue_storage_checkpoints_total", "Descriptor-state checkpoints captured on the storage replica.", func(rs StorageReplicaSnapshot) uint64 { return rs.Checkpoints }},
			{"superglue_storage_rebuilds_total", "Storage-replica micro-reboots (checkpoint+log replay or anti-entropy).", func(rs StorageReplicaSnapshot) uint64 { return rs.Rebuilds }},
			{"superglue_storage_repairs_total", "Divergence repairs applied to the storage replica by quorum reads.", func(rs StorageReplicaSnapshot) uint64 { return rs.Repairs }},
		}
		for _, ctr := range storCounters {
			p("# HELP %s %s\n# TYPE %s counter\n", ctr.name, ctr.help, ctr.name)
			for _, rs := range st.Replicas {
				if n := ctr.get(rs); n > 0 {
					p("%s{replica=\"%d\"} %d\n", ctr.name, rs.Replica, n)
				}
			}
		}
		if st.QuorumRepairs > 0 {
			p("# HELP superglue_storage_quorum_repairs_total Divergent storage replicas caught and repaired by quorum reads.\n")
			p("# TYPE superglue_storage_quorum_repairs_total counter\n")
			p("superglue_storage_quorum_repairs_total %d\n", st.QuorumRepairs)
		}
		if st.QuorumLost > 0 {
			p("# HELP superglue_storage_quorum_lost_total Storage reads/rebuilds without a majority of agreeing uncorrupted replicas.\n")
			p("# TYPE superglue_storage_quorum_lost_total counter\n")
			p("superglue_storage_quorum_lost_total %d\n", st.QuorumLost)
		}
		if lat := st.RebuildLatency; lat != nil {
			p("# HELP superglue_storage_rebuild_wal_records Storage-replica rebuild cost in WAL records replayed.\n")
			p("# TYPE superglue_storage_rebuild_wal_records histogram\n")
			cum := uint64(0)
			for i, n := range lat.Hist {
				cum += n
				p("superglue_storage_rebuild_wal_records_bucket{le=%q} %d\n", BucketLabel(i), cum)
			}
			p("superglue_storage_rebuild_wal_records_sum %d\n", lat.TotalVT)
			p("superglue_storage_rebuild_wal_records_count %d\n", lat.Count)
		}
	}

	p("# HELP superglue_recoveries_total Recovery-mechanism spans, by component and mechanism (paper taxonomy R0..U0).\n")
	p("# TYPE superglue_recoveries_total counter\n")
	for _, c := range snap.Components {
		for _, m := range c.Mechanisms {
			p("superglue_recoveries_total{component=%q,mechanism=%q} %d\n", labelFor(c), m.Mechanism, m.Count)
		}
	}

	p("# HELP superglue_recovery_latency_vtime_us Recovery-span latency in virtual-time microseconds, by component and mechanism.\n")
	p("# TYPE superglue_recovery_latency_vtime_us histogram\n")
	for _, c := range snap.Components {
		for _, m := range c.Mechanisms {
			cum := uint64(0)
			for i, n := range m.Hist {
				cum += n
				p("superglue_recovery_latency_vtime_us_bucket{component=%q,mechanism=%q,le=%q} %d\n",
					labelFor(c), m.Mechanism, BucketLabel(i), cum)
			}
			p("superglue_recovery_latency_vtime_us_sum{component=%q,mechanism=%q} %d\n", labelFor(c), m.Mechanism, m.TotalVT)
			p("superglue_recovery_latency_vtime_us_count{component=%q,mechanism=%q} %d\n", labelFor(c), m.Mechanism, m.Count)
		}
	}
	return err
}

// labelFor picks the component label: its name when known, else its ID.
func labelFor(c ComponentSnapshot) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("comp%d", c.ID)
}

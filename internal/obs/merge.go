package obs

import "sort"

// This file implements campaign-level snapshot aggregation: the SWIFI
// engine gives every trial its own private Recorder and folds the
// per-trial snapshots into one campaign snapshot in trial-index order,
// so a parallel campaign's aggregate is byte-identical to a sequential
// one (see DESIGN.md §9).

// Merge folds o into s: counters and event-kind totals are summed,
// per-mechanism cells (campaign-wide and per-component) are added
// bucket-wise, component tables are unioned by ID, and o's events are
// appended after s's — callers merge snapshots in trial order, so the
// combined stream is ordered by (trial, per-trial sequence). The
// appended events are renumbered with a contiguous global sequence
// continuing from the receiver's last sequence number (an empty
// receiver starts at 1), which makes Merge associative: merging two
// halves of a campaign equals merging all of its trials directly.
//
// Renumbering only the appended suffix (instead of the whole stream)
// keeps each merge O(|o|) and — because survivors of a Trim keep their
// global sequence numbers — makes it legal to Trim the receiver between
// merges: a rolling merge that trims after every fold produces the same
// events, with the same sequence numbers, as one batch merge followed
// by a single final Trim. The streaming SWIFI campaign engine depends
// on exactly this equivalence (DESIGN.md §14).
//
// Merge never aliases o's storage; o remains valid and unchanged. The
// zero Snapshot is a valid receiver (the empty merge base).
func (s *Snapshot) Merge(o Snapshot) {
	s.mergeAggregates(o)
	next := uint64(0)
	if n := len(s.Events); n > 0 {
		next = s.Events[n-1].Seq
	}
	base := len(s.Events)
	s.Events = append(s.Events, o.Events...)
	for i := base; i < len(s.Events); i++ {
		next++
		s.Events[i].Seq = next
	}
	s.DroppedEvents = s.TotalEvents - uint64(len(s.Events))
}

// Splice folds o into s when o is itself a rolling-merged stream — a
// campaign shard's final snapshot rather than one trial's. Aggregates
// merge exactly as in Merge, but o's events keep their own (contiguous,
// possibly trimmed-at-the-front) numbering, shifted after s's last
// sequence number. That is what makes the shard fold byte-identical to
// the single-process rolling merge: a shard that trimmed k of its own
// events leaves the same sequence gap the uninterrupted run would have
// left at that point, where Merge's contiguous renumbering would have
// closed it. s's last kept sequence equals the number of events ever
// appended to its stream (Trim preserves the tail), so the shift lands
// o's events at exactly their uninterrupted global positions.
func (s *Snapshot) Splice(o Snapshot) {
	s.mergeAggregates(o)
	shift := uint64(0)
	if n := len(s.Events); n > 0 {
		shift = s.Events[n-1].Seq
	}
	base := len(s.Events)
	s.Events = append(s.Events, o.Events...)
	for i := base; i < len(s.Events); i++ {
		s.Events[i].Seq += shift
	}
	s.DroppedEvents = s.TotalEvents - uint64(len(s.Events))
}

// mergeAggregates folds every non-event field of o into s: the shared
// half of Merge and Splice.
func (s *Snapshot) mergeAggregates(o Snapshot) {
	if s.BucketBounds == nil {
		s.BucketBounds = bucketBounds()
	}
	s.TotalEvents += o.TotalEvents
	if len(o.Kinds) > 0 && s.Kinds == nil {
		s.Kinds = make(map[string]uint64, len(o.Kinds))
	}
	for k, n := range o.Kinds {
		s.Kinds[k] += n
	}
	s.FaultKinds = mergeCountMap(s.FaultKinds, o.FaultKinds)
	s.FaultSeverities = mergeCountMap(s.FaultSeverities, o.FaultSeverities)
	s.Mechanisms = mergeMechanisms(s.Mechanisms, o.Mechanisms, true)
	s.Cores = mergeCores(s.Cores, o.Cores)
	if o.CrossCoreLatency != nil {
		if s.CrossCoreLatency == nil {
			lat := *o.CrossCoreLatency
			s.CrossCoreLatency = &lat
		} else {
			s.CrossCoreLatency.merge(*o.CrossCoreLatency)
		}
	}
	s.Storage = mergeStorage(s.Storage, o.Storage)
	s.Components = mergeComponents(s.Components, o.Components)
}

// Trim bounds the merged event stream to the most recent capacity
// events, mirroring the ring-buffer semantics of a single Recorder:
// older events are dropped (counted in DroppedEvents) and the survivors
// keep their global sequence numbers. capacity <= 0 trims nothing.
func (s *Snapshot) Trim(capacity int) {
	if capacity <= 0 || len(s.Events) <= capacity {
		return
	}
	kept := make([]Event, capacity)
	copy(kept, s.Events[len(s.Events)-capacity:])
	s.Events = kept
	s.DroppedEvents = s.TotalEvents - uint64(len(s.Events))
}

// mergeCountMap sums b's counters into a's, allocating a only when b has
// entries (nil in, nil out for the all-empty case, preserving the
// omitempty JSON shape).
func mergeCountMap(a, b map[string]uint64) map[string]uint64 {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		a = make(map[string]uint64, len(b))
	}
	for k, n := range b {
		a[k] += n
	}
	return a
}

// mergeMechanisms adds b's cells into a's, matching by mechanism name.
// With full set, every mechanism of the paper taxonomy is present in
// the result (the Snapshot invariant); otherwise only non-zero cells
// survive (the per-component representation).
func mergeMechanisms(a, b []MechanismSnapshot, full bool) []MechanismSnapshot {
	cells := make(map[string]MechStat, NumMechanisms)
	for _, m := range a {
		cells[m.Mechanism] = m.MechStat
	}
	for _, m := range b {
		cell := cells[m.Mechanism]
		cell.merge(m.MechStat)
		cells[m.Mechanism] = cell
	}
	var out []MechanismSnapshot
	for _, m := range Mechanisms() {
		cell, ok := cells[m.String()]
		if !full && (!ok || cell.Count == 0) {
			continue
		}
		out = append(out, MechanismSnapshot{Mechanism: m.String(), MechStat: cell})
	}
	return out
}

// mergeCores unions two per-core tables by core number, summing the
// migration counters; the result is sorted by core (the Snapshot
// invariant). Nil in, nil out when both sides are empty.
func mergeCores(a, b []CoreSnapshot) []CoreSnapshot {
	if len(b) == 0 {
		return a
	}
	byCore := make(map[int]CoreSnapshot, len(a)+len(b))
	for _, c := range a {
		byCore[c.Core] = c
	}
	for _, c := range b {
		cur := byCore[c.Core]
		cur.Core = c.Core
		cur.MigrationsIn += c.MigrationsIn
		cur.MigrationsOut += c.MigrationsOut
		cur.CrossCoreInvocations += c.CrossCoreInvocations
		byCore[c.Core] = cur
	}
	out := make([]CoreSnapshot, 0, len(byCore))
	for _, c := range byCore {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Core < out[j].Core })
	return out
}

// mergeStorage folds b's storage-replication aggregates into a's:
// per-replica counters are unioned by replica number and summed, the
// quorum counters added, and the rebuild histograms merged bucket-wise.
// Nil in, nil out when both sides are empty; the result never aliases b.
func mergeStorage(a, b *StorageSnapshot) *StorageSnapshot {
	if b == nil {
		return a
	}
	if a == nil {
		a = &StorageSnapshot{}
	}
	byRep := make(map[int]StorageReplicaSnapshot, len(a.Replicas)+len(b.Replicas))
	for _, rs := range a.Replicas {
		byRep[rs.Replica] = rs
	}
	for _, rs := range b.Replicas {
		cur := byRep[rs.Replica]
		cur.Replica = rs.Replica
		cur.Writes += rs.Writes
		cur.Checkpoints += rs.Checkpoints
		cur.Rebuilds += rs.Rebuilds
		cur.Repairs += rs.Repairs
		byRep[rs.Replica] = cur
	}
	a.Replicas = a.Replicas[:0]
	for _, rs := range byRep {
		a.Replicas = append(a.Replicas, rs)
	}
	sort.Slice(a.Replicas, func(i, j int) bool { return a.Replicas[i].Replica < a.Replicas[j].Replica })
	a.QuorumRepairs += b.QuorumRepairs
	a.QuorumLost += b.QuorumLost
	if b.RebuildLatency != nil {
		if a.RebuildLatency == nil {
			lat := *b.RebuildLatency
			a.RebuildLatency = &lat
		} else {
			a.RebuildLatency.merge(*b.RebuildLatency)
		}
	}
	return a
}

// mergeComponents unions two per-component tables by component ID,
// summing counters and adding mechanism cells; the result is sorted by
// ID (the Snapshot invariant).
func mergeComponents(a, b []ComponentSnapshot) []ComponentSnapshot {
	if len(b) == 0 {
		return a
	}
	byID := make(map[int32]ComponentSnapshot, len(a)+len(b))
	for _, c := range a {
		byID[c.ID] = c
	}
	for _, c := range b {
		cur, ok := byID[c.ID]
		if !ok {
			// Copy the cell list and counter map so the merged snapshot
			// never aliases b.
			c.Mechanisms = append([]MechanismSnapshot(nil), c.Mechanisms...)
			c.FaultKinds = mergeCountMap(nil, c.FaultKinds)
			byID[c.ID] = c
			continue
		}
		if cur.Name == "" {
			cur.Name = c.Name
		}
		cur.Invokes += c.Invokes
		cur.Upcalls += c.Upcalls
		cur.Faults += c.Faults
		cur.Reboots += c.Reboots
		cur.Degraded += c.Degraded
		cur.Mechanisms = mergeMechanisms(cur.Mechanisms, c.Mechanisms, false)
		cur.FaultKinds = mergeCountMap(cur.FaultKinds, c.FaultKinds)
		byID[c.ID] = cur
	}
	out := make([]ComponentSnapshot, 0, len(byID))
	for _, c := range byID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

package obs

import (
	"encoding/json"
	"io"

	"superglue/internal/fault"
)

// MechanismSnapshot is one mechanism's aggregate in a Snapshot, with
// the mechanism name resolved for serialization.
type MechanismSnapshot struct {
	// Mechanism is the paper name (R0…U0).
	Mechanism string `json:"mechanism"`
	// MechStat is the aggregate cell (count, vtime totals, histogram).
	MechStat
}

// ComponentSnapshot is one component's aggregate in a Snapshot.
type ComponentSnapshot struct {
	// ID is the kernel component ID.
	ID int32 `json:"id"`
	// Name is the component name, if registered via SetComponentName.
	Name string `json:"name,omitempty"`
	// Invokes counts invocations delivered to the component.
	Invokes uint64 `json:"invokes"`
	// Upcalls counts recovery upcalls delivered to the component.
	Upcalls uint64 `json:"upcalls,omitempty"`
	// Faults counts fault-detection events for the component.
	Faults uint64 `json:"faults,omitempty"`
	// Reboots counts completed µ-reboots of the component.
	Reboots uint64 `json:"reboots,omitempty"`
	// Degraded counts escalation-ladder degradations of the component.
	Degraded uint64 `json:"degraded,omitempty"`
	// Mechanisms holds the per-mechanism cells that fired for the
	// component, in the paper's R0…U0 order (empty cells omitted).
	Mechanisms []MechanismSnapshot `json:"mechanisms,omitempty"`
	// FaultKinds maps fault-taxonomy kind name to the number of detected
	// faults of that kind attributed to the component (zero cells
	// omitted).
	FaultKinds map[string]uint64 `json:"fault_kinds,omitempty"`
}

// CoreSnapshot is one simulated core's migration aggregate in a
// Snapshot (populated only on multi-core machines that migrated).
type CoreSnapshot struct {
	// Core is the simulated core number.
	Core int `json:"core"`
	// MigrationsIn counts thread migrations onto the core.
	MigrationsIn uint64 `json:"migrations_in"`
	// MigrationsOut counts thread migrations off the core.
	MigrationsOut uint64 `json:"migrations_out"`
	// CrossCoreInvocations counts migrations in that were cross-core
	// synchronous invocation entries (the xcall subset of MigrationsIn).
	CrossCoreInvocations uint64 `json:"cross_core_invocations"`
}

// StorageReplicaSnapshot is one storage replica's aggregate in a
// Snapshot (populated only on runs that touched replicated storage).
type StorageReplicaSnapshot struct {
	// Replica is the replica index.
	Replica int `json:"replica"`
	// Writes counts WAL records appended on the replica.
	Writes uint64 `json:"writes"`
	// Checkpoints counts descriptor-state checkpoints captured on the
	// replica (each truncates its WAL).
	Checkpoints uint64 `json:"checkpoints,omitempty"`
	// Rebuilds counts replica µ-reboots (local checkpoint+log replay or
	// anti-entropy copy from a peer).
	Rebuilds uint64 `json:"rebuilds,omitempty"`
	// Repairs counts divergence repairs applied to the replica by quorum
	// reads.
	Repairs uint64 `json:"repairs,omitempty"`
}

// StorageSnapshot is the storage-replication aggregate of a Snapshot.
type StorageSnapshot struct {
	// Replicas holds per-replica aggregates in replica order.
	Replicas []StorageReplicaSnapshot `json:"replicas"`
	// QuorumRepairs counts divergent replicas caught and repaired by
	// quorum reads.
	QuorumRepairs uint64 `json:"quorum_repairs,omitempty"`
	// QuorumLost counts reads and rebuilds that found no majority of
	// agreeing, uncorrupted replicas.
	QuorumLost uint64 `json:"quorum_lost,omitempty"`
	// RebuildLatency is the replica-rebuild histogram; its latency
	// dimension is the number of WAL records replayed per rebuild (nil
	// when no replica was rebuilt).
	RebuildLatency *MechStat `json:"rebuild_latency_wal_records,omitempty"`
}

// Snapshot is a consistent copy of everything the recorder knows:
// recent events (the ring contents, oldest first), event-kind totals,
// per-component aggregates, and the all-components per-mechanism
// aggregate that feeds the BENCH_superglue.json recovery breakdown.
type Snapshot struct {
	// TotalEvents counts every event ever recorded (including events
	// already overwritten in the ring).
	TotalEvents uint64 `json:"total_events"`
	// DroppedEvents counts events overwritten in the ring (TotalEvents
	// minus len(Events)).
	DroppedEvents uint64 `json:"dropped_events"`
	// BucketBounds are the inclusive upper bounds of the histogram
	// buckets, as Prometheus-style "le" labels ("0", "1", …, "+Inf").
	BucketBounds []string `json:"bucket_bounds_vtime_us"`
	// Kinds maps event-kind name to its total count.
	Kinds map[string]uint64 `json:"kinds"`
	// FaultKinds maps fault-taxonomy kind name (register-flip, hang, …,
	// plus "unknown" for unclassified detection sites) to the number of
	// detected faults of that kind (zero cells omitted).
	FaultKinds map[string]uint64 `json:"fault_kinds,omitempty"`
	// FaultSeverities maps severity name (warning…fatal, plus "unknown")
	// to the number of detected faults at that grade (zero cells
	// omitted).
	FaultSeverities map[string]uint64 `json:"fault_severities,omitempty"`
	// Mechanisms is the all-components per-mechanism aggregate, in the
	// paper's R0…U0 order (every mechanism present, even if zero — the
	// per-mechanism breakdown the acceptance experiments embed).
	Mechanisms []MechanismSnapshot `json:"mechanisms"`
	// Cores holds per-core migration aggregates in core order (present
	// only when the run migrated threads between simulated cores).
	Cores []CoreSnapshot `json:"cores,omitempty"`
	// CrossCoreLatency is the cross-core invocation latency histogram:
	// virtual time between a thread leaving its caller's core and being
	// dispatched on the server's home core (nil when no cross-core
	// invocations happened).
	CrossCoreLatency *MechStat `json:"cross_core_latency_vtime_us,omitempty"`
	// Storage holds the storage-replication aggregates (present only when
	// the run touched replicated storage).
	Storage *StorageSnapshot `json:"storage,omitempty"`
	// Components holds per-component aggregates in component-ID order.
	Components []ComponentSnapshot `json:"components"`
	// Events is the ring contents, oldest first.
	Events []Event `json:"events"`
}

// Snapshot returns a consistent copy of the recorder state. It is safe
// on a nil receiver (returning an empty snapshot) and safe to call
// while recording continues.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{
		BucketBounds: bucketBounds(),
		Kinds:        map[string]uint64{},
	}
	var totals [NumMechanisms]MechStat
	if r != nil {
		r.mu.Lock()
		snap.TotalEvents = r.seq
		snap.Events = ringCopy(r.ring, r.seq)
		snap.DroppedEvents = snap.TotalEvents - uint64(len(snap.Events))
		for kind := EventKind(1); int(kind) < numKinds; kind++ {
			if n := r.kinds[kind]; n > 0 {
				snap.Kinds[kind.String()] = n
			}
		}
		for fk := fault.Kind(0); int(fk) < fault.NumKinds; fk++ {
			if n := r.faultKinds[fk]; n > 0 {
				if snap.FaultKinds == nil {
					snap.FaultKinds = map[string]uint64{}
				}
				snap.FaultKinds[fk.String()] = n
			}
		}
		for fs := fault.Severity(0); int(fs) < fault.NumSeverities; fs++ {
			if n := r.faultSevs[fs]; n > 0 {
				if snap.FaultSeverities == nil {
					snap.FaultSeverities = map[string]uint64{}
				}
				snap.FaultSeverities[fs.String()] = n
			}
		}
		for core, cs := range r.cores {
			if cs.in == 0 && cs.out == 0 && cs.xcall == 0 {
				continue
			}
			snap.Cores = append(snap.Cores, CoreSnapshot{
				Core:                 core,
				MigrationsIn:         cs.in,
				MigrationsOut:        cs.out,
				CrossCoreInvocations: cs.xcall,
			})
		}
		if r.crossLat.Count > 0 {
			lat := r.crossLat
			snap.CrossCoreLatency = &lat
		}
		for rep, rs := range r.storageReps {
			if rs.writes == 0 && rs.checkpoints == 0 && rs.rebuilds == 0 && rs.repairs == 0 {
				continue
			}
			if snap.Storage == nil {
				snap.Storage = &StorageSnapshot{}
			}
			snap.Storage.Replicas = append(snap.Storage.Replicas, StorageReplicaSnapshot{
				Replica:     rep,
				Writes:      rs.writes,
				Checkpoints: rs.checkpoints,
				Rebuilds:    rs.rebuilds,
				Repairs:     rs.repairs,
			})
		}
		if r.storQuorumRepairs > 0 || r.storQuorumLost > 0 || r.storRebuildLat.Count > 0 {
			if snap.Storage == nil {
				snap.Storage = &StorageSnapshot{}
			}
			snap.Storage.QuorumRepairs = r.storQuorumRepairs
			snap.Storage.QuorumLost = r.storQuorumLost
			if r.storRebuildLat.Count > 0 {
				lat := r.storRebuildLat
				snap.Storage.RebuildLatency = &lat
			}
		}
		for id := range r.comps {
			s := &r.comps[id]
			if !s.seen {
				continue
			}
			cs := ComponentSnapshot{
				ID:       int32(id),
				Name:     s.name,
				Invokes:  s.invokes,
				Upcalls:  s.upcalls,
				Faults:   s.faults,
				Reboots:  s.reboots,
				Degraded: s.degraded,
			}
			for fk := fault.Kind(0); int(fk) < fault.NumKinds; fk++ {
				if n := s.faultKinds[fk]; n > 0 {
					if cs.FaultKinds == nil {
						cs.FaultKinds = map[string]uint64{}
					}
					cs.FaultKinds[fk.String()] = n
				}
			}
			for _, m := range Mechanisms() {
				cell := s.mech[m]
				totals[m].merge(cell)
				if cell.Count > 0 {
					cs.Mechanisms = append(cs.Mechanisms, MechanismSnapshot{Mechanism: m.String(), MechStat: cell})
				}
			}
			snap.Components = append(snap.Components, cs)
		}
		r.mu.Unlock()
	}
	for _, m := range Mechanisms() {
		snap.Mechanisms = append(snap.Mechanisms, MechanismSnapshot{Mechanism: m.String(), MechStat: totals[m]})
	}
	return snap
}

// ringCopy rebuilds the ring contents in chronological order: event
// with sequence number s lives at index (s-1) % cap once the ring has
// wrapped.
func ringCopy(ring []Event, seq uint64) []Event {
	if len(ring) == 0 {
		return nil
	}
	out := make([]Event, 0, len(ring))
	if len(ring) < cap(ring) || seq <= uint64(len(ring)) {
		return append(out, ring...)
	}
	c := uint64(cap(ring))
	for s := seq - c + 1; s <= seq; s++ {
		out = append(out, ring[(s-1)%c])
	}
	return out
}

// bucketBounds materializes the histogram "le" labels.
func bucketBounds() []string {
	out := make([]string, NumBuckets)
	for i := range out {
		out[i] = BucketLabel(i)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the recorder and writes it as indented JSON; it
// is the one-call exporter used by cmd/swifi -trace-out.
func (r *Recorder) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"superglue/internal/fault"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.RecordInvoke(1, 1, "fn", 0, 0)
	r.RecordUpcall(1, 1, "fn", 0, 0)
	r.RecordFault(1, 1, "fn", 0, 0, fault.KindUnknown, fault.SevUnknown)
	r.RecordReboot(1, 1, 0, 1, 10, 2)
	r.RecordRecovery(MechR0, 1, 1, "fn", 0, 1, 10, 2)
	r.RecordReflect(0, 3)
	r.RecordDegraded(1, 1, "fn", 0, 1)
	r.SetComponentName(1, "lock")
	r.Reset()
	if got := r.TotalEvents(); got != 0 {
		t.Fatalf("nil recorder TotalEvents = %d, want 0", got)
	}
	snap := r.Snapshot()
	if len(snap.Events) != 0 || len(snap.Components) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", snap)
	}
	if len(snap.Mechanisms) != 8 {
		t.Fatalf("snapshot must list all 8 mechanisms, got %d", len(snap.Mechanisms))
	}
}

func TestCountersAndHistogram(t *testing.T) {
	r := NewRecorder(64)
	r.SetComponentName(2, "lock")
	r.RecordInvoke(2, 1, "lock_take", 5, 0)
	r.RecordInvoke(2, 1, "lock_take", 6, 0)
	r.RecordFault(2, 1, "lock_take", 7, 0, fault.KindRegisterFlip, fault.SevError)
	r.RecordReboot(2, 1, 8, 1, 3, 4)
	r.RecordRecovery(MechR0, 2, 1, "lock_take", 9, 1, 0, 3)
	r.RecordRecovery(MechR0, 2, 1, "lock_take", 9, 1, 5, 7)
	r.RecordRecovery(MechT1, 2, 1, "lock_take", 9, 1, 100, 1)
	r.RecordUpcall(2, 1, "sg.recover", 10, 1)
	r.RecordDegraded(2, 1, "lock_take", 11, 1)

	snap := r.Snapshot()
	if len(snap.Components) != 1 {
		t.Fatalf("components = %d, want 1", len(snap.Components))
	}
	c := snap.Components[0]
	if c.ID != 2 || c.Name != "lock" {
		t.Fatalf("component identity = %+v", c)
	}
	if c.Invokes != 2 || c.Faults != 1 || c.Reboots != 1 || c.Upcalls != 1 || c.Degraded != 1 {
		t.Fatalf("counters wrong: %+v", c)
	}
	if c.FaultKinds["register-flip"] != 1 {
		t.Fatalf("per-component fault kinds wrong: %+v", c.FaultKinds)
	}
	if snap.FaultKinds["register-flip"] != 1 || snap.FaultSeverities["error"] != 1 {
		t.Fatalf("taxonomy counters wrong: kinds=%+v sevs=%+v", snap.FaultKinds, snap.FaultSeverities)
	}
	mech := map[string]MechanismSnapshot{}
	for _, m := range c.Mechanisms {
		mech[m.Mechanism] = m
	}
	r0 := mech["R0"]
	if r0.Count != 2 || r0.TotalVT != 5 || r0.MaxVT != 5 || r0.TotalSteps != 10 {
		t.Fatalf("R0 cell wrong: %+v", r0)
	}
	// vt=0 → bucket 0; vt=5 → bits.Len(5)=3 → bucket 3 (range [4,8)).
	if r0.Hist[0] != 1 || r0.Hist[3] != 1 {
		t.Fatalf("R0 histogram wrong: %v", r0.Hist)
	}
	// vt=100 → bits.Len(100)=7 → bucket 7 (range [64,128)).
	if t1 := mech["T1"]; t1.Hist[7] != 1 {
		t.Fatalf("T1 histogram wrong: %v", t1.Hist)
	}
	// RecordUpcall also files a U0 mechanism span.
	if u0 := mech["U0"]; u0.Count != 1 {
		t.Fatalf("U0 cell wrong: %+v", u0)
	}
	// The all-components aggregate includes every mechanism, zero or not.
	if len(snap.Mechanisms) != 8 {
		t.Fatalf("aggregate mechanisms = %d, want 8", len(snap.Mechanisms))
	}
	for _, m := range snap.Mechanisms {
		if m.Mechanism == "R0" && m.Count != 2 {
			t.Fatalf("aggregate R0 = %+v", m)
		}
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.RecordInvoke(1, 1, "fn", int64(i), 0)
	}
	snap := r.Snapshot()
	if snap.TotalEvents != 10 || snap.DroppedEvents != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", snap.TotalEvents, snap.DroppedEvents)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("ring copy = %d events, want 4", len(snap.Events))
	}
	for i, ev := range snap.Events {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (chronological, most recent kept)", i, ev.Seq, want)
		}
	}
}

func TestResetKeepsNames(t *testing.T) {
	r := NewRecorder(8)
	r.SetComponentName(1, "sched")
	r.RecordInvoke(1, 1, "fn", 0, 0)
	r.Reset()
	if r.TotalEvents() != 0 {
		t.Fatalf("reset did not clear events")
	}
	snap := r.Snapshot()
	if len(snap.Components) != 1 || snap.Components[0].Name != "sched" || snap.Components[0].Invokes != 0 {
		t.Fatalf("reset snapshot wrong: %+v", snap.Components)
	}
}

func TestBucketLabels(t *testing.T) {
	cases := map[int]string{0: "0", 1: "1", 2: "3", 3: "7", NumBuckets - 2: "16383", NumBuckets - 1: "+Inf"}
	for i, want := range cases {
		if got := BucketLabel(i); got != want {
			t.Fatalf("BucketLabel(%d) = %q, want %q", i, got, want)
		}
	}
	// Boundary behavior of bucketOf: upper bound is inclusive.
	if bucketOf(3) != 2 || bucketOf(4) != 3 || bucketOf(1<<40) != NumBuckets-1 {
		t.Fatalf("bucketOf boundaries wrong: %d %d %d", bucketOf(3), bucketOf(4), bucketOf(1<<40))
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRecorder(16)
	r.SetComponentName(1, "ramfs")
	r.RecordRecovery(MechG0, 1, 2, "twritep", 42, 3, 7, 2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v\n%s", err, buf.String())
	}
	for _, want := range []string{`"mechanism": "G0"`, `"kind": "RebuildWalk"`, `"ramfs"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON export missing %s:\n%s", want, buf.String())
		}
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRecorder(16)
	r.SetComponentName(1, "lock")
	r.RecordInvoke(1, 1, "lock_take", 0, 0)
	r.RecordRecovery(MechR0, 1, 1, "lock_take", 5, 1, 2, 3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`superglue_invocations_total{component="lock"} 1`,
		`superglue_recoveries_total{component="lock",mechanism="R0"} 1`,
		`superglue_recovery_latency_vtime_us_bucket{component="lock",mechanism="R0",le="+Inf"} 1`,
		`superglue_recovery_latency_vtime_us_sum{component="lock",mechanism="R0"} 2`,
		"# TYPE superglue_recovery_latency_vtime_us histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus export missing %q:\n%s", want, out)
		}
	}
}

func TestSteadyStateRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(256)
	// Warm up: touch the component slot once so the growth path is done.
	r.RecordInvoke(3, 1, "fn", 0, 0)
	allocs := testing.AllocsPerRun(500, func() {
		r.RecordInvoke(3, 1, "fn", 1, 0)
		r.RecordRecovery(MechR0, 3, 1, "fn", 2, 1, 4, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Record allocates %.1f allocs/op, want 0", allocs)
	}
}

package fault

import (
	"fmt"
	"strconv"
)

// This file adds the decode direction of the enum JSON encodings, so
// structures that embed typed fault classifications (obs.Event in
// campaign checkpoints and shard files) survive a JSON round trip
// bit-exactly.

// UnmarshalJSON decodes a kind from its canonical name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("fault: kind %s: %w", data, err)
	}
	c, ok := ParseKind(s)
	if !ok {
		return fmt.Errorf("fault: unknown kind %q", s)
	}
	*k = c
	return nil
}

// UnmarshalJSON decodes a severity from its canonical name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	name, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("fault: severity %s: %w", data, err)
	}
	for c := Severity(0); int(c) < NumSeverities; c++ {
		if c.String() == name {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("fault: unknown severity %q", name)
}

// UnmarshalJSON decodes a domain from its canonical name.
func (d *Domain) UnmarshalJSON(data []byte) error {
	name, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("fault: domain %s: %w", data, err)
	}
	for c := Domain(0); int(c) < NumDomains; c++ {
		if c.String() == name {
			*d = c
			return nil
		}
	}
	return fmt.Errorf("fault: unknown domain %q", name)
}

package fault

import (
	"encoding/json"
	"testing"
)

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseKind("no-such-kind"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
}

func TestParseKindUnderscores(t *testing.T) {
	got, ok := ParseKind("storage_crash")
	if !ok || got != KindStorageCrash {
		t.Fatalf("ParseKind(storage_crash) = %v, %v; want KindStorageCrash", got, ok)
	}
}

func TestEveryKindHasDomainAndSeverity(t *testing.T) {
	for _, k := range Kinds() {
		if DomainOf(k) == DomainUnknown {
			t.Errorf("%v: no domain", k)
		}
		if DefaultSeverity(k) == SevUnknown {
			t.Errorf("%v: no default severity", k)
		}
	}
	if DomainOf(KindUnknown) != DomainUnknown || DefaultSeverity(KindUnknown) != SevUnknown {
		t.Error("KindUnknown must map to the unknown domain/severity")
	}
}

func TestTransientKinds(t *testing.T) {
	want := map[Kind]bool{KindMessageLoss: true, KindMessageDup: true, KindMigration: true}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.Transient() != want[k] {
			t.Errorf("%v.Transient() = %v; want %v", k, k.Transient(), want[k])
		}
	}
}

func TestEventJSON(t *testing.T) {
	ev := New(KindStorageCorruption, 3, "checksum mismatch")
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "storage-corruption" || m["severity"] != "critical" || m["domain"] != "storage" {
		t.Fatalf("unexpected JSON: %s", b)
	}
}

func TestEventString(t *testing.T) {
	ev := New(KindMessageLoss, 2, "dropped at entry")
	want := "message-loss/warning fault in component 2 (dropped at entry)"
	if got := ev.String(); got != want {
		t.Fatalf("String() = %q; want %q", got, want)
	}
}

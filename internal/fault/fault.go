// Package fault defines the system-wide fault taxonomy of the SuperGlue
// reproduction: typed fault kinds, severities, and domains, plus the
// fault.Event record routed through the core dispatcher to per-kind
// recovery handlers.
//
// The paper's evaluation injects exactly one fault class — a single-bit
// register flip — and recovers every detected fault the same way (µ-reboot
// plus interface-driven recovery). This package generalizes the fault
// model in the style of typed embedded fault-management APIs: every fault
// carries a Kind (what happened), a Severity (how bad), and a Domain
// (which part of the machine), so the recovery runtime can route
// register flips, hangs, livelocks, descriptor corruption, storage
// crashes/corruption, and message loss/duplication to different
// handlers instead of the implicit "any fault ⇒ reboot" path.
//
// fault is a leaf package: it imports nothing but the standard library
// formatting package, so both the kernel (which imports obs) and obs
// (which must not import the kernel) can depend on it.
package fault

import "fmt"

// Kind identifies what class of fault occurred.
type Kind uint8

// The fault-kind taxonomy. KindUnknown (the zero value) marks a fault
// detected without classification — the pre-taxonomy fail-stop — and is
// handled exactly like a register flip (µ-reboot ladder).
const (
	// KindUnknown is an unclassified fail-stop fault (legacy detection
	// sites that predate the taxonomy).
	KindUnknown Kind = iota
	// KindRegisterFlip is a single-bit flip in the register file (the
	// paper's SWIFI fault class) detected by fail-stop consistency checks.
	KindRegisterFlip
	// KindHang is an unbounded loop or a lost wakeup: the component stops
	// making progress and the watchdog attributes the stall to it.
	KindHang
	// KindLivelock is a component cycling without progress (retry storms,
	// ping-pong wakeups); like a hang it is caught by execution budgets,
	// but the component remains formally runnable.
	KindLivelock
	// KindDescCorruption is corruption of a descriptor's server-side
	// state detected by the interface state machine (an invalid
	// transition observed where the spec allows none).
	KindDescCorruption
	// KindStorageCrash is a fail-stop crash of the storage component
	// instance; its redundantly stored data survives (mechanism G1), so
	// recovery is a µ-reboot of the instance plus retried operations.
	KindStorageCrash
	// KindStorageCorruption is detected corruption of redundantly stored
	// data (checksum mismatch on restore): the component instance is
	// fine, but a resource's saved contents are lost.
	KindStorageCorruption
	// KindMessageLoss is a dropped invocation: the request never reached
	// the server. The server's state is intact, so recovery is a plain
	// retransmission (redo without reboot).
	KindMessageLoss
	// KindMessageDup is a duplicated invocation: the server executes the
	// operation twice (at-least-once delivery).
	KindMessageDup
	// KindMigration is a failed thread migration between simulated cores:
	// the thread arrives but its in-flight execution context is lost, so
	// the interrupted operation must be redone. The destination core and
	// both components are intact — recovery is a plain redo, no µ-reboot.
	KindMigration
	// KindCrossCoreInv is corruption detected during a cross-core
	// synchronous invocation: the request reached the server's home core
	// but the server's state is corrupted by the time it executes (a race
	// with the migration window). The server fails stop and is µ-rebooted.
	KindCrossCoreInv

	// NumKinds sizes per-kind counter arrays (KindUnknown included).
	NumKinds = int(KindCrossCoreInv) + 1
)

// String returns the canonical hyphenated kind name.
func (k Kind) String() string {
	switch k {
	case KindUnknown:
		return "unknown"
	case KindRegisterFlip:
		return "register-flip"
	case KindHang:
		return "hang"
	case KindLivelock:
		return "livelock"
	case KindDescCorruption:
		return "desc-corruption"
	case KindStorageCrash:
		return "storage-crash"
	case KindStorageCorruption:
		return "storage-corruption"
	case KindMessageLoss:
		return "message-loss"
	case KindMessageDup:
		return "message-dup"
	case KindMigration:
		return "migration"
	case KindCrossCoreInv:
		return "cross-core-invocation"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MarshalJSON encodes the kind as its canonical name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// ParseKind resolves a kind from its canonical name. Underscores are
// accepted in place of hyphens, so IDL identifiers (storage_crash) and
// command-line flags (storage-crash) both parse.
func ParseKind(s string) (Kind, bool) {
	norm := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' {
			c = '-'
		}
		norm[i] = c
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == string(norm) {
			return k, true
		}
	}
	return KindUnknown, false
}

// Kinds lists the ten real fault kinds (KindUnknown excluded) in
// taxonomy order, for exporters and campaign planners that want a stable
// iteration order.
func Kinds() []Kind {
	return []Kind{
		KindRegisterFlip, KindHang, KindLivelock, KindDescCorruption,
		KindStorageCrash, KindStorageCorruption, KindMessageLoss, KindMessageDup,
		KindMigration, KindCrossCoreInv,
	}
}

// Transient reports whether the kind leaves the server's state intact, so
// recovery is a plain redo (retransmission) with no µ-reboot.
func (k Kind) Transient() bool {
	return k == KindMessageLoss || k == KindMessageDup || k == KindMigration
}

// Severity grades how much service a fault costs if unhandled.
type Severity uint8

// Severities, ordered: comparisons with < and > are meaningful.
const (
	// SevUnknown is an ungraded fault (legacy detection sites).
	SevUnknown Severity = iota
	// SevWarning faults cost at most one operation (a lost message).
	SevWarning
	// SevError faults cost one component instance's state.
	SevError
	// SevCritical faults threaten data or multiple components.
	SevCritical
	// SevFatal faults take the machine down (machine-level segfault).
	SevFatal

	// NumSeverities sizes per-severity counter arrays.
	NumSeverities = int(SevFatal) + 1
)

// String returns the canonical severity name.
func (s Severity) String() string {
	switch s {
	case SevUnknown:
		return "unknown"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	case SevCritical:
		return "critical"
	case SevFatal:
		return "fatal"
	default:
		return fmt.Sprintf("Severity(%d)", uint8(s))
	}
}

// MarshalJSON encodes the severity as its canonical name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Domain locates a fault in the machine model.
type Domain uint8

// Domains.
const (
	// DomainUnknown is an unlocated fault.
	DomainUnknown Domain = iota
	// DomainCPU covers the register file and execution state.
	DomainCPU
	// DomainControl covers control flow: hangs, livelocks, deadlocks.
	DomainControl
	// DomainMemory covers component state (descriptors, heaps).
	DomainMemory
	// DomainStorage covers the redundant storage component and its data.
	DomainStorage
	// DomainMessaging covers the invocation path between components.
	DomainMessaging

	// NumDomains sizes per-domain counter arrays.
	NumDomains = int(DomainMessaging) + 1
)

// String returns the canonical domain name.
func (d Domain) String() string {
	switch d {
	case DomainUnknown:
		return "unknown"
	case DomainCPU:
		return "cpu"
	case DomainControl:
		return "control"
	case DomainMemory:
		return "memory"
	case DomainStorage:
		return "storage"
	case DomainMessaging:
		return "messaging"
	default:
		return fmt.Sprintf("Domain(%d)", uint8(d))
	}
}

// MarshalJSON encodes the domain as its canonical name.
func (d Domain) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// DomainOf maps a fault kind to the machine domain it lives in.
func DomainOf(k Kind) Domain {
	switch k {
	case KindRegisterFlip:
		return DomainCPU
	case KindHang, KindLivelock:
		return DomainControl
	case KindDescCorruption:
		return DomainMemory
	case KindStorageCrash, KindStorageCorruption:
		return DomainStorage
	case KindMessageLoss, KindMessageDup, KindMigration, KindCrossCoreInv:
		return DomainMessaging
	default:
		return DomainUnknown
	}
}

// DefaultSeverity maps a fault kind to its default severity grade.
func DefaultSeverity(k Kind) Severity {
	switch k {
	case KindRegisterFlip, KindDescCorruption:
		return SevError
	case KindHang, KindLivelock, KindStorageCrash, KindStorageCorruption:
		return SevCritical
	case KindMessageLoss, KindMessageDup, KindMigration:
		return SevWarning
	case KindCrossCoreInv:
		return SevError
	default:
		return SevUnknown
	}
}

// Event is one typed fault occurrence, the record routed through the
// core dispatcher to per-kind recovery handlers.
type Event struct {
	// Kind is what happened.
	Kind Kind `json:"kind"`
	// Severity grades the fault (DefaultSeverity(Kind) when the
	// detection site did not grade it).
	Severity Severity `json:"severity"`
	// Domain locates the fault (derived from Kind).
	Domain Domain `json:"domain"`
	// Component is the faulted component's ID (0 = system-wide).
	Component int32 `json:"comp"`
	// Context is free-form detail from the detection site.
	Context string `json:"context,omitempty"`
}

// New builds an Event for kind against component comp, filling the
// severity and domain from the kind's defaults.
func New(kind Kind, comp int32, context string) Event {
	return Event{
		Kind:      kind,
		Severity:  DefaultSeverity(kind),
		Domain:    DomainOf(kind),
		Component: comp,
		Context:   context,
	}
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := fmt.Sprintf("%s/%s fault in component %d", e.Kind, e.Severity, e.Component)
	if e.Context != "" {
		s += " (" + e.Context + ")"
	}
	return s
}

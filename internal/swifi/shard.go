package swifi

import (
	"fmt"
	"sort"

	"superglue/internal/obs"
)

// This file implements multi-process campaign sharding: shard i of n
// runs the contiguous trial range shardRange returns, persists its
// final CampaignState to a shard file, and MergeStates folds the shard
// states back into the canonical single-process campaign state. Because
// per-trial seeds are pure functions of (campaign seed, trial index)
// and the merge is an in-order fold, the sharded pipeline's output is
// byte-identical to the unsharded campaign's.

// shardRange returns the contiguous trial range [start, end) owned by
// shard index of count over trials. Remainder trials go one-each to the
// lowest-indexed shards, so ranges differ in size by at most one and
// concatenate exactly to [0, trials).
func shardRange(trials, index, count int) (start, end int) {
	per := trials / count
	rem := trials % count
	start = index*per + minInt(index, rem)
	end = start + per
	if index < rem {
		end++
	}
	return start, end
}

// minInt is the two-int minimum (kept local: the toolchain floor
// predates the generic builtin).
func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MergeStates folds complete shard states into the canonical campaign
// state: the one an unsharded single-process run of the same Config
// would have produced (and persisted as its checkpoint). Shards are
// validated — same config hash and identity, every trial range
// complete, ranges concatenating exactly to [0, Trials) with no gap or
// overlap — then folded in trial order; event streams are spliced so
// sequence numbers land at their uninterrupted global positions, and
// the merged stream is trimmed to the campaign capacity.
func MergeStates(states []*CampaignState) (*CampaignState, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("swifi: no shard states to merge")
	}
	sorted := make([]*CampaignState, len(states))
	copy(sorted, states)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	first := sorted[0]
	next := 0
	for _, st := range sorted {
		if st.Version != stateVersion {
			return nil, fmt.Errorf("swifi: shard state version %d, this binary reads %d", st.Version, stateVersion)
		}
		if st.ConfigHash != first.ConfigHash || st.Service != first.Service ||
			st.Trials != first.Trials || st.Capacity != first.Capacity ||
			st.Shape != first.Shape || st.Traced != first.Traced || st.Cores != first.Cores {
			return nil, fmt.Errorf("swifi: shard [%d,%d) belongs to a different campaign than shard [%d,%d)",
				st.Start, st.End, first.Start, first.End)
		}
		if st.Next != st.End {
			return nil, fmt.Errorf("swifi: shard [%d,%d) is incomplete (committed through trial %d)", st.Start, st.End, st.Next)
		}
		if st.Start != next {
			return nil, fmt.Errorf("swifi: shard ranges do not tile [0,%d): expected a shard starting at %d, got [%d,%d)",
				first.Trials, next, st.Start, st.End)
		}
		next = st.End
	}
	if next != first.Trials {
		return nil, fmt.Errorf("swifi: shard ranges cover [0,%d) of %d trials", next, first.Trials)
	}

	out := &CampaignState{
		Version:    stateVersion,
		ConfigHash: first.ConfigHash,
		Service:    first.Service,
		Trials:     first.Trials,
		Start:      0,
		End:        first.Trials,
		Next:       first.Trials,
		Cores:      first.Cores,
		Shape:      first.Shape,
		Traced:     first.Traced,
		Capacity:   first.Capacity,
	}
	for _, st := range sorted {
		out.Injected += st.Injected
		out.Recovered += st.Recovered
		out.Segfault += st.Segfault
		out.Propagated += st.Propagated
		out.Other += st.Other
		out.Degraded += st.Degraded
		out.Undetected += st.Undetected
		if st.Kinds != nil {
			if out.Kinds == nil {
				out.Kinds = make(map[string]*KindStats, len(st.Kinds))
			}
			names := make([]string, 0, len(st.Kinds))
			for name := range st.Kinds {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				ks := st.Kinds[name]
				cur := out.Kinds[name]
				if cur == nil {
					cur = &KindStats{}
					out.Kinds[name] = cur
				}
				cur.Injected += ks.Injected
				cur.Recovered += ks.Recovered
				cur.Degraded += ks.Degraded
				cur.NotRecovered += ks.NotRecovered
				cur.Undetected += ks.Undetected
			}
		}
		if out.Traced && st.Snapshot != nil {
			if out.Snapshot == nil {
				out.Snapshot = &obs.Snapshot{}
			}
			out.Snapshot.Splice(*st.Snapshot)
			out.Snapshot.Trim(out.Capacity)
		}
	}
	return out, nil
}

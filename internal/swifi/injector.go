// Package swifi implements Software-Implemented Fault Injection in the
// style of §V-A: single-bit flips in a modeled eight-register file (six
// general-purpose registers plus ESP and EBP, 32 bits each) of threads
// executing inside a target system component, under a fail-stop fault
// model.
//
// The injector plans one injection per trial — a uniformly random register
// and bit, at a uniformly random moment of execution inside the target —
// and derives the fault's manifestation mechanistically from what the
// register held (kernel.RegClass) rather than sampling outcome frequencies:
//
//   - a dead register's flip is never observed (undetected);
//   - live data or a pointer into component state corrupts that state and
//     is detected immediately (fail-stop), starting µ-reboot + recovery;
//   - a stack/frame pointer flip that is dereferenced before detection
//     either lands inside the component's mapped footprint (detected,
//     recoverable) or leaves it entirely (machine-level segfault,
//     unrecoverable);
//   - a loop-counter flip that raises the bound produces an unbounded loop
//     (latent fault: the system hangs, "not recovered — other");
//   - a return-value flip during the return window either escapes into the
//     client (fault propagation through the interface) or is caught by the
//     stub's validation (detected, recoverable).
package swifi

import (
	"fmt"
	"math/rand"

	"superglue/internal/fault"
	"superglue/internal/kernel"
)

// Effect is the immediate manifestation of one injected bit flip.
type Effect int

// Effects.
const (
	// EffectNone means the flip was never observed (dead value).
	EffectNone Effect = iota + 1
	// EffectCrash means fail-stop detection: the component is failed and
	// the recovery machinery takes over.
	EffectCrash
	// EffectSegfault means the flip took the whole machine down.
	EffectSegfault
	// EffectHang means the flip produced an unbounded loop (latent fault).
	EffectHang
	// EffectRetvalSilent means a corrupted return value escaped into the
	// client (propagation); the run's outcome depends on what the client
	// does with it.
	EffectRetvalSilent
)

// String implements fmt.Stringer.
func (e Effect) String() string {
	switch e {
	case EffectNone:
		return "none"
	case EffectCrash:
		return "crash"
	case EffectSegfault:
		return "segfault"
	case EffectHang:
		return "hang"
	case EffectRetvalSilent:
		return "retval-propagated"
	default:
		return fmt.Sprintf("Effect(%d)", int(e))
	}
}

// Injection records one planned-and-fired bit flip.
type Injection struct {
	Reg    kernel.Reg
	Bit    int
	Class  kernel.RegClass
	Fn     string
	Phase  kernel.InvokePhase
	Effect Effect
}

// exitPhaseFrac is the fraction of execution time spent in the return
// window, where EAX holds the in-flight return value.
const exitPhaseFrac = 0.15

// Injector arms one bit flip against a target component. Install its Hook
// on the kernel, run the workload, then inspect Fired/Record.
type Injector struct {
	k       *kernel.Kernel
	target  kernel.ComponentID
	profile kernel.RegProfile
	rng     *rand.Rand

	// plan: fire at the Nth opportunity of the chosen phase.
	planPhase kernel.InvokePhase
	planIdx   uint64
	seen      uint64

	fired  bool
	record Injection
}

// NewInjector plans one injection: opportunities counts the target's
// invocation entries observed in a fault-free dry run of the same workload,
// which bounds the uniformly drawn injection moment. opportunities must be
// positive: a zero-opportunity plan can never fire and would silently
// pollute the campaign's outcome counts, so the campaign surfaces that
// case as ErrNoOpportunities from the dry run instead of planning a trial.
func NewInjector(k *kernel.Kernel, target kernel.ComponentID, opportunities uint64, rng *rand.Rand) *Injector {
	if opportunities == 0 {
		panic("swifi: NewInjector with zero opportunities (campaign must return ErrNoOpportunities)")
	}
	inj := &Injector{
		k:       k,
		target:  target,
		profile: k.RegProfile(target),
		rng:     rng,
	}
	inj.planPhase = kernel.PhaseEntry
	if rng.Float64() < exitPhaseFrac {
		inj.planPhase = kernel.PhaseExit
	}
	inj.planIdx = uint64(rng.Int63n(int64(opportunities))) + 1
	return inj
}

// Fired reports whether the planned injection took place.
func (inj *Injector) Fired() bool { return inj.fired }

// Record returns the injection record (valid once Fired).
func (inj *Injector) Record() Injection { return inj.record }

// Hook is the kernel invocation hook; install with Kernel.SetInvokeHook.
func (inj *Injector) Hook(t *kernel.Thread, comp kernel.ComponentID, fn string, phase kernel.InvokePhase) {
	if inj.fired || comp != inj.target || phase != inj.planPhase {
		return
	}
	inj.seen++
	if inj.seen != inj.planIdx {
		return
	}
	inj.fired = true
	inj.fire(t, fn, phase)
}

// fire materializes the register file for this execution moment, flips one
// uniformly random bit of one uniformly random register, and applies the
// mechanistically derived effect.
func (inj *Injector) fire(t *kernel.Thread, fn string, phase kernel.InvokePhase) {
	rec := flipRegister(t, inj.profile, inj.rng, fn, phase)
	inj.record = rec

	switch rec.Effect {
	case EffectNone, EffectRetvalSilent:
		// Nothing to do: either unobserved, or the corrupted value flows
		// back to the client through the (kernel-staged) EAX register.
	case EffectCrash:
		// Fail-stop: detected immediately after corrupting state,
		// attributed as a typed register-flip fault.
		_ = inj.k.FailComponentAs(inj.target, fault.KindRegisterFlip, fault.SevError)
	case EffectSegfault:
		inj.k.CrashSystem(t, inj.target,
			fmt.Sprintf("wild %v dereference after bit %d flip", rec.Reg, rec.Bit))
	case EffectHang:
		inj.k.HangCurrent(t)
	}
}

// flipRegister materializes the register file for an execution moment,
// flips one uniformly random bit of one uniformly random register, and
// returns the injection record with its mechanistically derived effect.
// Both the legacy injector and the shaped planner draw through here, in
// the same order, so the flip model is identical across campaign shapes.
func flipRegister(t *kernel.Thread, profile kernel.RegProfile, rng *rand.Rand, fn string, phase kernel.InvokePhase) Injection {
	regs := t.Regs()
	regs.Materialize(profile, phase, rng)
	reg := kernel.Reg(rng.Intn(int(kernel.NumRegs)))
	bit := rng.Intn(32)
	regs.Val[reg] ^= 1 << bit

	rec := Injection{Reg: reg, Bit: bit, Class: regs.Class[reg], Fn: fn, Phase: phase}
	rec.Effect = classifyFlip(rng, profile, regs.Class[reg], bit)
	return rec
}

// classify derives the manifestation of a flip from the register's content
// class, the flipped bit's position, and the component's profile.
func (inj *Injector) classify(class kernel.RegClass, bit int) Effect {
	return classifyFlip(inj.rng, inj.profile, class, bit)
}

func classifyFlip(rng *rand.Rand, profile kernel.RegProfile, class kernel.RegClass, bit int) Effect {
	switch class {
	case kernel.ClassDead:
		return EffectNone
	case kernel.ClassData, kernel.ClassPtr:
		// Corrupts component state; fail-stop detects it immediately.
		return EffectCrash
	case kernel.ClassLoop:
		// Raising a high bit of a loop bound produces an unbounded loop;
		// lowering it truncates the loop, which the fail-stop consistency
		// checks catch.
		if bit >= 8 {
			return EffectHang
		}
		return EffectCrash
	case kernel.ClassStackPtr, kernel.ClassFramePtr:
		if rng.Float64() >= profile.StackUseFrac {
			// Reloaded before use: the corruption is never consumed.
			return EffectNone
		}
		if bit >= profile.MappedBits {
			// The wild pointer leaves the component's mapped footprint:
			// the machine, not just the component, goes down.
			return EffectSegfault
		}
		return EffectCrash
	case kernel.ClassRetVal:
		if rng.Float64() < profile.RetValFrac {
			// Plausible value: escapes the stub's validation and
			// propagates into the client.
			return EffectRetvalSilent
		}
		return EffectCrash
	default:
		return EffectCrash
	}
}

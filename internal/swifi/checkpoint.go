package swifi

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"superglue/internal/core"
	"superglue/internal/obs"
	"superglue/internal/storage"
)

// This file implements campaign durability for the fleet-scale engine:
// the rolling campaign state (counters + merged snapshot + commit
// cursor), its checksummed on-disk form (a storage.SealFrame around
// deterministic JSON), and the config-hash discipline that keeps a
// resumed or sharded campaign from silently mixing incompatible
// configurations. See DESIGN.md §14.

// DefaultCheckpointEvery is the number of committed trials between
// checkpoint writes when Config.CheckpointEvery is zero.
const DefaultCheckpointEvery = 64

// stateVersion tags the checkpoint/shard file format.
const stateVersion = 1

// ErrHalted reports a deliberate mid-campaign stop (Config.HaltAfter):
// the trials committed so far are persisted in the checkpoint file, and
// a -resume run continues from the next uncommitted trial.
var ErrHalted = errors.New("swifi: campaign halted after the requested trial count (checkpoint written)")

// CampaignState is the complete rolling state of one campaign (or one
// shard of one): everything the streaming merger has folded so far,
// plus the identity needed to validate a resume or a shard merge. It is
// what a checkpoint file and a shard file contain — persisting it and
// loading it back loses nothing, so an interrupted-then-resumed
// campaign is byte-identical to an uninterrupted one.
type CampaignState struct {
	// Version is the file-format version (stateVersion).
	Version int `json:"version"`
	// ConfigHash fingerprints every outcome-relevant Config field (see
	// Config.Hash); a resume or shard merge with a different hash is
	// refused instead of producing silently mixed results.
	ConfigHash uint64 `json:"config_hash"`
	// Service is the campaign's target service.
	Service string `json:"service"`
	// Trials is the whole campaign's trial count (all shards).
	Trials int `json:"trials"`
	// Start and End delimit this state's contiguous trial range
	// [Start, End); an unsharded campaign covers [0, Trials).
	Start int `json:"start"`
	End   int `json:"end"`
	// Next is the commit cursor: the lowest trial index not yet folded
	// into this state. Next == End means the range is complete.
	Next int `json:"next"`
	// Cores mirrors Result.Cores (multi-core table annotation).
	Cores int `json:"cores,omitempty"`
	// Shape is the campaign shape's name (rendering: shaped campaigns
	// print per-kind columns).
	Shape string `json:"shape"`
	// Traced records whether the campaign merges trace snapshots.
	Traced bool `json:"traced,omitempty"`
	// Capacity is the merged event stream's trim bound.
	Capacity int `json:"capacity"`

	// The partial Table II counters (Result's columns).
	Injected   int `json:"injected"`
	Recovered  int `json:"recovered"`
	Segfault   int `json:"segfault"`
	Propagated int `json:"propagated"`
	Other      int `json:"other"`
	Degraded   int `json:"degraded"`
	Undetected int `json:"undetected"`
	// Kinds is the per-fault-kind outcome breakdown (shaped campaigns;
	// nil for legacy ones, matching Result.Kinds).
	Kinds map[string]*KindStats `json:"kinds,omitempty"`
	// Snapshot is the rolling merged trace snapshot (nil unless Traced).
	Snapshot *obs.Snapshot `json:"snapshot,omitempty"`
}

// newCampaignState builds the empty state for cfg's shard range.
func newCampaignState(cfg Config, capacity, start, end int) *CampaignState {
	st := &CampaignState{
		Version:    stateVersion,
		ConfigHash: cfg.Hash(),
		Service:    cfg.Service,
		Trials:     cfg.Trials,
		Start:      start,
		End:        end,
		Next:       start,
		Shape:      cfg.Shape.String(),
		Traced:     cfg.Trace,
		Capacity:   capacity,
	}
	if cfg.Cores > 1 {
		st.Cores = cfg.Cores
	}
	if cfg.Shape != ShapeLegacy {
		st.Kinds = make(map[string]*KindStats)
	}
	if cfg.Trace {
		st.Snapshot = &obs.Snapshot{}
	}
	return st
}

// commit folds one trial — the next in index order — into the rolling
// state and advances the cursor.
func (st *CampaignState) commit(tr TrialResult, snap obs.Snapshot) {
	st.Injected++
	foldKinds(st.Kinds, tr)
	switch tr.Outcome {
	case OutcomeUndetected:
		st.Undetected++
	case OutcomeRecovered:
		st.Recovered++
	case OutcomeSegfault:
		st.Segfault++
	case OutcomePropagated:
		st.Propagated++
	case OutcomeOther:
		st.Other++
	case OutcomeDegraded:
		st.Degraded++
	}
	if st.Traced {
		st.Snapshot.Merge(snap)
		st.Snapshot.Trim(st.Capacity)
	}
	st.Next++
}

// Result renders the state as a campaign Result for the standard
// tables. Per-trial records are excluded: they are not part of the
// durable state, and the streaming engine attaches only the records it
// ran itself.
func (st *CampaignState) Result() *Result {
	res := &Result{
		Service:    st.Service,
		Cores:      st.Cores,
		Injected:   st.Injected,
		Recovered:  st.Recovered,
		Segfault:   st.Segfault,
		Propagated: st.Propagated,
		Other:      st.Other,
		Degraded:   st.Degraded,
		Undetected: st.Undetected,
		Kinds:      st.Kinds,
	}
	if st.Traced {
		res.Recovery = st.Snapshot
	}
	return res
}

// matches validates a loaded state against the resuming configuration:
// the config hash, the shard range, and the derived capacity must all
// agree, or the resumed half would not be the same campaign.
func (st *CampaignState) matches(cfg Config, capacity, start, end int) error {
	if st.Version != stateVersion {
		return fmt.Errorf("swifi: checkpoint version %d, this binary writes %d", st.Version, stateVersion)
	}
	if st.ConfigHash != cfg.Hash() {
		return fmt.Errorf("swifi: checkpoint config hash %016x does not match this campaign (%016x): refusing to resume a different configuration", st.ConfigHash, cfg.Hash())
	}
	if st.Service != cfg.Service || st.Trials != cfg.Trials || st.Capacity != capacity {
		return fmt.Errorf("swifi: checkpoint identity mismatch (service %q trials %d capacity %d vs %q/%d/%d)",
			st.Service, st.Trials, st.Capacity, cfg.Service, cfg.Trials, capacity)
	}
	if st.Start != start || st.End != end {
		return fmt.Errorf("swifi: checkpoint covers trials [%d,%d), this run wants [%d,%d)", st.Start, st.End, start, end)
	}
	return nil
}

// Persist atomically writes the state to path: deterministic JSON inside
// a checksummed storage.SealFrame, written to a temporary file and
// renamed into place so an interrupted write can never be mistaken for
// a checkpoint (a torn frame fails its checksum anyway).
func (st *CampaignState) Persist(path string) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("swifi: encoding campaign state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, storage.SealFrame(payload), 0o644); err != nil {
		return fmt.Errorf("swifi: writing campaign state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("swifi: committing campaign state: %w", err)
	}
	return nil
}

// LoadCampaignState reads and verifies a checkpoint or shard file.
func LoadCampaignState(path string) (*CampaignState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("swifi: reading campaign state: %w", err)
	}
	payload, err := storage.OpenFrame(data)
	if err != nil {
		return nil, fmt.Errorf("swifi: %s: %w", path, err)
	}
	st := &CampaignState{}
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, fmt.Errorf("swifi: decoding %s: %w", path, err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("swifi: %s: state version %d, this binary reads %d", path, st.Version, stateVersion)
	}
	return st, nil
}

// Hash fingerprints every Config field that influences campaign output:
// the identity a checkpoint or shard file records, and a resume or
// shard merge validates. Orchestration fields — Workers, the
// checkpoint/shard/halt controls, DiscardTrials — are deliberately
// excluded: they change how the campaign executes, never what it
// computes, and shards of one campaign must share a hash.
func (cfg Config) Hash() uint64 {
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.OnDemand
	}
	h := newFNV64()
	h.str("service", cfg.Service)
	h.num("iters", uint64(cfg.Iters))
	h.num("trials", uint64(cfg.Trials))
	h.num("seed", uint64(cfg.Seed))
	h.str("profile", fmt.Sprintf("%v", cfg.Profile))
	h.num("mode", uint64(cfg.Mode))
	h.num("watchdog", b2u(cfg.Watchdog))
	h.num("watchdog-budget", uint64(cfg.WatchdogBudget))
	h.num("trace", b2u(cfg.Trace))
	h.num("trace-capacity", uint64(cfg.TraceCapacity))
	h.num("shape", uint64(cfg.Shape))
	// The kind pool is drawn from by index, so its order is significant:
	// hash it as given, not sorted.
	for _, k := range cfg.Kinds {
		h.str("kind", k.String())
	}
	h.num("storm-faults", uint64(cfg.StormFaults))
	h.str("policy", cfg.Policy)
	names := make([]string, 0, len(cfg.FaultActions))
	for name := range cfg.FaultActions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.str("fault-action", name+"="+cfg.FaultActions[name])
	}
	if cfg.Recovery != nil {
		h.str("recovery", fmt.Sprintf("%+v", *cfg.Recovery))
	}
	h.num("cores", uint64(cfg.Cores))
	h.num("replicas", uint64(cfg.Replicas))
	return h.sum
}

// fnv64 is an incremental FNV-1a 64 hasher over labeled fields (the
// labels keep adjacent fields from aliasing each other's bytes).
type fnv64 struct{ sum uint64 }

func newFNV64() *fnv64 { return &fnv64{sum: 14695981039346656037} }

func (h *fnv64) bytes(p []byte) {
	for _, c := range p {
		h.sum ^= uint64(c)
		h.sum *= 1099511628211
	}
}

func (h *fnv64) str(label, v string) {
	h.bytes([]byte(label))
	h.bytes([]byte{0})
	h.bytes([]byte(v))
	h.bytes([]byte{0})
}

func (h *fnv64) num(label string, v uint64) {
	var w [8]byte
	for i := 0; i < 8; i++ {
		w[i] = byte(v >> (8 * i))
	}
	h.bytes([]byte(label))
	h.bytes([]byte{0})
	h.bytes(w[:])
	h.bytes([]byte{0})
}

// b2u folds a bool into the hash stream.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

package swifi

import (
	"superglue/internal/kernel"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
	"superglue/internal/workload"
)

// Profiles gives the register-usage profile of each evaluation target, a
// first-order characterization of the component's code:
//
//   - DeadFrac / PtrFrac / LoopFrac describe general-purpose register
//     liveness in the component's hot paths;
//   - StackUseFrac is near one everywhere (a corrupted stack pointer is
//     almost always consumed), slightly higher for the context-switch-heavy
//     scheduler;
//   - MappedBits is the component's mapped-memory footprint: the scheduler
//     is tiny (run queues only), so most wild stack pointers leave its
//     segment and take the machine down, while the filesystem — holding
//     file data — absorbs most of them. This is the mechanistic origin of
//     the paper's observation that "Sched has the most segfault crashes".
func Profiles() map[string]kernel.RegProfile {
	return map[string]kernel.RegProfile{
		"sched": {DeadFrac: 0.03, PtrFrac: 0.30, LoopFrac: 0.015, StackUseFrac: 0.96, MappedBits: 15, RetValFrac: 0.25},
		"mm":    {DeadFrac: 0.06, PtrFrac: 0.35, LoopFrac: 0.020, StackUseFrac: 0.92, MappedBits: 21, RetValFrac: 0.30},
		"ramfs": {DeadFrac: 0.06, PtrFrac: 0.30, LoopFrac: 0.015, StackUseFrac: 0.90, MappedBits: 26, RetValFrac: 0.30},
		"lock":  {DeadFrac: 0.06, PtrFrac: 0.25, LoopFrac: 0.015, StackUseFrac: 0.90, MappedBits: 22, RetValFrac: 0.35},
		"event": {DeadFrac: 0.07, PtrFrac: 0.25, LoopFrac: 0.015, StackUseFrac: 0.88, MappedBits: 26, RetValFrac: 0.35},
		"timer": {DeadFrac: 0.04, PtrFrac: 0.25, LoopFrac: 0.015, StackUseFrac: 0.92, MappedBits: 23, RetValFrac: 0.30},
	}
}

// Workloads gives the §V-B workload factory for each evaluation target.
func Workloads() map[string]workload.Factory {
	return map[string]workload.Factory{
		"sched": sched.NewWorkload,
		"mm":    mm.NewWorkload,
		"ramfs": ramfs.NewWorkload,
		"lock":  lock.NewWorkload,
		"event": event.NewWorkload,
		"timer": timer.NewWorkload,
	}
}

// Targets lists the campaign targets in the paper's Table II order.
func Targets() []string {
	return []string{"sched", "mm", "ramfs", "lock", "event", "timer"}
}

package swifi

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// legacyGolden pins the cores=1 campaign outcome for every service at the
// reference seed: the multi-core refactor must leave the single-core
// schedule — and therefore every classification — byte-for-byte where the
// single-core scheduler left it. The counts are
// Injected/Recovered/Segfault/Propagated/Other/Degraded/Undetected.
var legacyGolden = map[string][7]int{
	"sched": {25, 19, 2, 0, 0, 0, 4},
	"mm":    {25, 20, 0, 0, 0, 0, 5},
	"ramfs": {25, 20, 0, 0, 0, 0, 5},
	"lock":  {25, 19, 0, 0, 1, 0, 5},
	"event": {25, 19, 0, 0, 1, 0, 5},
	"timer": {25, 21, 0, 0, 0, 0, 4},
}

// TestScheduleDeterminism is the multi-core scheduler's core contract,
// asserted as a matrix: for every service and every core count in
// {1, 2, 4}, a fixed-seed campaign produces a Result that is deeply equal
// — and JSON byte-identical — whether the campaign engine shards trials
// over 1 or 4 workers. The deterministic virtual-time merge (smallest
// (clock, coreID) core, then (prio, seq) within it) is what makes this
// hold: the simulated schedule never depends on goroutine timing. The
// cores=1 rows are additionally pinned to the legacy single-core golden
// counts, so the refactor cannot drift the single-core machine.
func TestScheduleDeterminism(t *testing.T) {
	for _, svc := range Targets() {
		for _, cores := range []int{1, 2, 4} {
			svc, cores := svc, cores
			t.Run(fmt.Sprintf("%s/cores=%d", svc, cores), func(t *testing.T) {
				run := func(workers int) *Result {
					res, err := Run(Config{
						Service:  svc,
						Workload: Workloads()[svc],
						Iters:    3,
						Trials:   25,
						Seed:     2026,
						Profile:  Profiles()[svc],
						Workers:  workers,
						Cores:    cores,
					})
					if err != nil {
						t.Fatalf("Run(%s, cores=%d, workers=%d): %v", svc, cores, workers, err)
					}
					return res
				}
				one, four := run(1), run(4)
				if !reflect.DeepEqual(one, four) {
					t.Fatalf("%s cores=%d: workers=4 result differs from workers=1", svc, cores)
				}
				a, err := json.Marshal(one)
				if err != nil {
					t.Fatalf("marshal workers=1 result: %v", err)
				}
				b, err := json.Marshal(four)
				if err != nil {
					t.Fatalf("marshal workers=4 result: %v", err)
				}
				if string(a) != string(b) {
					t.Fatalf("%s cores=%d: JSON differs between worker counts", svc, cores)
				}
				if cores == 1 {
					want := legacyGolden[svc]
					got := [7]int{one.Injected, one.Recovered, one.Segfault,
						one.Propagated, one.Other, one.Degraded, one.Undetected}
					if got != want {
						t.Fatalf("%s cores=1: counts %v differ from legacy golden %v", svc, got, want)
					}
				}
			})
		}
	}
}

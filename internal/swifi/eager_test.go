package swifi

import (
	"testing"

	"superglue/internal/core"
)

// TestEagerModeCampaign runs a small campaign with eager (T0-everything)
// recovery: outcomes must still sum, and recovery must still work — the
// timing, not the success rate, is what distinguishes the modes.
func TestEagerModeCampaign(t *testing.T) {
	for _, svc := range []string{"lock", "event", "ramfs"} {
		res, err := Run(Config{
			Service:  svc,
			Workload: Workloads()[svc],
			Iters:    4,
			Trials:   40,
			Seed:     31,
			Profile:  Profiles()[svc],
			Mode:     core.Eager,
		})
		if err != nil {
			t.Fatalf("Run(%s, eager): %v", svc, err)
		}
		sum := res.Recovered + res.Segfault + res.Propagated + res.Other + res.Undetected
		if sum != res.Injected {
			t.Errorf("%s: outcome sum %d ≠ injected %d", svc, sum, res.Injected)
		}
		if res.SuccessRate() < 0.6 {
			t.Errorf("%s: eager success rate %.2f below sanity floor", svc, res.SuccessRate())
		}
	}
}

// TestOnDemandAndEagerAgreeOnDetection: the recovery mode must not change
// which faults are activated (detection happens before recovery timing
// matters), only how recovery proceeds.
func TestOnDemandAndEagerAgreeOnDetection(t *testing.T) {
	run := func(mode core.RecoveryMode) *Result {
		res, err := Run(Config{
			Service:  "lock",
			Workload: Workloads()["lock"],
			Iters:    4,
			Trials:   60,
			Seed:     77,
			Profile:  Profiles()["lock"],
			Mode:     mode,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	od := run(core.OnDemand)
	eg := run(core.Eager)
	if od.Undetected != eg.Undetected {
		t.Errorf("undetected differ: on-demand %d vs eager %d", od.Undetected, eg.Undetected)
	}
	if od.Segfault != eg.Segfault {
		t.Errorf("segfaults differ: on-demand %d vs eager %d", od.Segfault, eg.Segfault)
	}
}

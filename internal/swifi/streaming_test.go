package swifi

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"superglue/internal/core"
	"superglue/internal/fault"
	"superglue/internal/obs"
)

// This file pins the fleet-scale contract of the streaming campaign
// engine: the rolling merge is byte-identical to the batch engine it
// replaced, an interrupted-then-resumed campaign is byte-identical to
// an uninterrupted one, and a sharded-then-merged campaign is
// byte-identical to a single-process one — for any worker count,
// checkpoint interval, shard count, and campaign shape.

// batchReference reimplements the pre-streaming batch engine verbatim:
// run every trial into a fixed slot, then fold the slots in index order
// with one final trim. The streaming engine must reproduce its output
// exactly; keeping the old algorithm alive here (instead of trusting a
// recorded fixture) keeps the equivalence checkable against every
// future workload and shape.
func batchReference(t *testing.T, cfg Config) *Result {
	t.Helper()
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.OnDemand
	}
	capacity := cfg.TraceCapacity
	if capacity <= 0 {
		capacity = obs.DefaultCapacity
	}
	opportunities, err := Opportunities(cfg)
	if err != nil {
		t.Fatalf("batch reference dry run: %v", err)
	}
	type slot struct {
		tr   TrialResult
		snap obs.Snapshot
	}
	outs := make([]slot, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(TrialSeed(cfg.Seed, trial)))
		var rec *obs.Recorder
		if cfg.Trace {
			rec = obs.NewRecorder(capacity)
		}
		run := runTrial
		if cfg.Shape != ShapeLegacy {
			run = runShapedTrial
		}
		tr, err := run(cfg, opportunities, rng, rec)
		if err != nil {
			t.Fatalf("batch reference trial %d: %v", trial, err)
		}
		outs[trial] = slot{tr: tr, snap: rec.Snapshot()}
	}
	res := &Result{Service: cfg.Service}
	if cfg.Cores > 1 {
		res.Cores = cfg.Cores
	}
	if cfg.Shape != ShapeLegacy {
		res.Kinds = make(map[string]*KindStats)
	}
	var merged obs.Snapshot
	for trial := range outs {
		tr := outs[trial].tr
		res.Injected++
		res.Trials = append(res.Trials, tr)
		foldKinds(res.Kinds, tr)
		switch tr.Outcome {
		case OutcomeUndetected:
			res.Undetected++
		case OutcomeRecovered:
			res.Recovered++
		case OutcomeSegfault:
			res.Segfault++
		case OutcomePropagated:
			res.Propagated++
		case OutcomeOther:
			res.Other++
		case OutcomeDegraded:
			res.Degraded++
		}
		if cfg.Trace {
			merged.Merge(outs[trial].snap)
		}
	}
	if cfg.Trace {
		merged.Trim(capacity)
		res.Recovery = &merged
	}
	return res
}

// streamCases are the campaign shapes the streaming equivalence and
// durability tests sweep: the legacy paper campaign, every shaped
// pattern, and a replicated-storage campaign whose storage fault kinds
// exercise the snapshot's storage aggregates.
func streamCases() []Config {
	return []Config{
		{Service: "lock", Workload: Workloads()["lock"], Iters: 3, Trials: 37,
			Seed: 2026, Profile: Profiles()["lock"], Trace: true},
		{Service: "sched", Workload: Workloads()["sched"], Iters: 3, Trials: 30,
			Seed: 11, Profile: Profiles()["sched"], Trace: true, Shape: ShapeCorrelated},
		{Service: "lock", Workload: Workloads()["lock"], Iters: 3, Trials: 30,
			Seed: 7, Profile: Profiles()["lock"], Trace: true, Shape: ShapeStorm, StormFaults: 3},
		{Service: "ramfs", Workload: Workloads()["ramfs"], Iters: 3, Trials: 30,
			Seed: 5, Profile: Profiles()["ramfs"], Trace: true, Shape: ShapeDuringRecovery,
			Kinds: []fault.Kind{fault.KindStorageCrash, fault.KindStorageCorruption, fault.KindRegisterFlip},
			Replicas: 3},
	}
}

// caseName labels one sweep case for subtests.
func caseName(cfg Config) string {
	return fmt.Sprintf("%s-%s", cfg.Service, cfg.Shape)
}

// resultJSON renders a Result to canonical JSON for byte comparison.
func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// TestStreamingMatchesBatch is the tentpole equivalence: for every
// sweep case, the streaming engine's output — counters, per-kind
// columns, per-trial records, and the merged trace snapshot — is
// byte-identical to the batch reference for worker counts 1, 3, and 8,
// with and without checkpointing at aggressive intervals.
func TestStreamingMatchesBatch(t *testing.T) {
	for _, base := range streamCases() {
		base := base
		t.Run(caseName(base), func(t *testing.T) {
			want := resultJSON(t, batchReference(t, base))
			for _, workers := range []int{1, 3, 8} {
				for _, every := range []int{0, 1, 5} {
					cfg := base
					cfg.Workers = workers
					if every > 0 {
						cfg.Checkpoint = filepath.Join(t.TempDir(), "ckpt")
						cfg.CheckpointEvery = every
					}
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("Run(workers=%d every=%d): %v", workers, every, err)
					}
					if got := resultJSON(t, res); got != want {
						t.Fatalf("workers=%d every=%d: streaming result differs from batch reference", workers, every)
					}
				}
			}
		})
	}
}

// TestHaltResumeByteIdentical pins the checkpoint/resume contract: a
// campaign halted mid-flight (twice) and resumed to completion produces
// exactly the uninterrupted campaign's Table II counters and snapshot.
// Per-trial records are compared over the resumed tail only — trial
// records are deliberately not checkpointed.
func TestHaltResumeByteIdentical(t *testing.T) {
	for _, base := range streamCases() {
		base := base
		t.Run(caseName(base), func(t *testing.T) {
			ref := base
			ref.Workers = 4
			want, err := Run(ref)
			if err != nil {
				t.Fatalf("uninterrupted Run: %v", err)
			}

			cfg := base
			cfg.Workers = 4
			cfg.Checkpoint = filepath.Join(t.TempDir(), "ckpt")
			cfg.CheckpointEvery = 3
			cfg.HaltAfter = 11
			if _, err := Run(cfg); !errors.Is(err, ErrHalted) {
				t.Fatalf("first halted Run: err = %v; want ErrHalted", err)
			}
			cfg.Resume = true
			if _, err := Run(cfg); !errors.Is(err, ErrHalted) {
				t.Fatalf("second halted Run: err = %v; want ErrHalted", err)
			}
			cfg.HaltAfter = 0
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("resumed Run: %v", err)
			}

			if res.Injected != want.Injected || res.Recovered != want.Recovered ||
				res.Segfault != want.Segfault || res.Propagated != want.Propagated ||
				res.Other != want.Other || res.Degraded != want.Degraded ||
				res.Undetected != want.Undetected {
				t.Fatalf("resumed counters differ:\nwant %+v\ngot  %+v", want, res)
			}
			if !reflect.DeepEqual(res.Kinds, want.Kinds) {
				t.Fatalf("resumed per-kind columns differ")
			}
			a, _ := json.Marshal(want.Recovery)
			b, _ := json.Marshal(res.Recovery)
			if string(a) != string(b) {
				t.Fatalf("resumed snapshot JSON differs from uninterrupted")
			}
			if want := want.Trials[len(want.Trials)-len(res.Trials):]; !reflect.DeepEqual(res.Trials, want) {
				t.Fatalf("resumed tail trial records differ from uninterrupted")
			}
		})
	}
}

// TestShardMergeByteIdentical pins the sharding contract: splitting a
// campaign across k processes and folding the shard states with
// MergeStates reproduces the single-process campaign state —
// byte-identical persisted form, counters, and snapshot — for k = 2
// and a k that does not divide the trial count.
func TestShardMergeByteIdentical(t *testing.T) {
	for _, base := range streamCases() {
		base := base
		t.Run(caseName(base), func(t *testing.T) {
			dir := t.TempDir()
			single := base
			single.Workers = 4
			single.Checkpoint = filepath.Join(dir, "single")
			if _, err := Run(single); err != nil {
				t.Fatalf("single-process Run: %v", err)
			}
			want, err := LoadCampaignState(single.Checkpoint)
			if err != nil {
				t.Fatalf("load single-process state: %v", err)
			}
			wantJSON, _ := json.Marshal(want)

			for _, k := range []int{2, 3} {
				states := make([]*CampaignState, 0, k)
				for i := 0; i < k; i++ {
					cfg := base
					cfg.Workers = 2
					cfg.Shard = i
					cfg.ShardCount = k
					cfg.ShardOut = filepath.Join(dir, fmt.Sprintf("shard%dof%d", i, k))
					if _, err := Run(cfg); err != nil {
						t.Fatalf("shard %d/%d Run: %v", i, k, err)
					}
					st, err := LoadCampaignState(cfg.ShardOut)
					if err != nil {
						t.Fatalf("load shard %d/%d: %v", i, k, err)
					}
					states = append(states, st)
				}
				// Merge in scrambled order: MergeStates sorts by range.
				for i, j := 0, len(states)-1; i < j; i, j = i+1, j-1 {
					states[i], states[j] = states[j], states[i]
				}
				merged, err := MergeStates(states)
				if err != nil {
					t.Fatalf("MergeStates(k=%d): %v", k, err)
				}
				mergedJSON, _ := json.Marshal(merged)
				if string(mergedJSON) != string(wantJSON) {
					t.Fatalf("k=%d: merged shard state differs from single-process state", k)
				}
			}
		})
	}
}

// TestCampaignStatePersistRoundTrip pins the durable form: a persisted
// state loads back deeply equal (the enum JSON round trip included),
// and any single-bit corruption of the file is detected at load.
func TestCampaignStatePersistRoundTrip(t *testing.T) {
	cfg := streamCases()[3] // replicated shaped campaign: richest snapshot
	cfg.Workers = 4
	cfg.Checkpoint = filepath.Join(t.TempDir(), "ckpt")
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st, err := LoadCampaignState(cfg.Checkpoint)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	reJSON, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal loaded state: %v", err)
	}
	st2 := &CampaignState{}
	if err := json.Unmarshal(reJSON, st2); err != nil {
		t.Fatalf("re-unmarshal: %v", err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("state does not survive a second JSON round trip")
	}

	data, err := os.ReadFile(cfg.Checkpoint)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	for _, bit := range []int{0, len(data) / 2, len(data) - 1} {
		corrupt := append([]byte(nil), data...)
		corrupt[bit] ^= 0x40
		path := filepath.Join(t.TempDir(), "corrupt")
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatalf("write corrupt: %v", err)
		}
		if _, err := LoadCampaignState(path); err == nil {
			t.Fatalf("corruption at byte %d not detected", bit)
		}
	}
}

// TestResumeRefusesMismatchedConfig pins the config-hash discipline: a
// checkpoint written under one configuration refuses to resume under a
// changed one, while orchestration-only changes (worker count,
// checkpoint cadence) resume fine.
func TestResumeRefusesMismatchedConfig(t *testing.T) {
	base := streamCases()[0]
	base.Workers = 2
	base.Checkpoint = filepath.Join(t.TempDir(), "ckpt")
	base.CheckpointEvery = 5
	base.HaltAfter = 9
	if _, err := Run(base); !errors.Is(err, ErrHalted) {
		t.Fatalf("halted Run: err = %v; want ErrHalted", err)
	}

	bad := base
	bad.Resume = true
	bad.HaltAfter = 0
	bad.Seed++
	if _, err := Run(bad); err == nil {
		t.Fatalf("resume with a different seed must be refused")
	}

	ok := base
	ok.Resume = true
	ok.HaltAfter = 0
	ok.Workers = 7
	ok.CheckpointEvery = 2
	if _, err := Run(ok); err != nil {
		t.Fatalf("resume with orchestration-only changes: %v", err)
	}
}

// TestConfigHashSensitivity enumerates the hash contract directly:
// every outcome-relevant knob moves the hash, no orchestration knob
// does, and kind-pool order is significant (trials draw kinds by
// index).
func TestConfigHashSensitivity(t *testing.T) {
	base := Config{Service: "lock", Iters: 3, Trials: 100, Seed: 2026,
		Shape: ShapeCorrelated, Kinds: []fault.Kind{fault.KindHang, fault.KindMessageLoss}}
	h := base.Hash()

	relevant := map[string]Config{}
	c := base
	c.Seed++
	relevant["seed"] = c
	c = base
	c.Trials++
	relevant["trials"] = c
	c = base
	c.Iters++
	relevant["iters"] = c
	c = base
	c.Service = "sched"
	relevant["service"] = c
	c = base
	c.Shape = ShapeStorm
	relevant["shape"] = c
	c = base
	c.Kinds = []fault.Kind{fault.KindMessageLoss, fault.KindHang}
	relevant["kind order"] = c
	c = base
	c.Watchdog = true
	relevant["watchdog"] = c
	c = base
	c.Replicas = 3
	relevant["replicas"] = c
	c = base
	c.Cores = 2
	relevant["cores"] = c
	c = base
	c.Policy = "one-for-one"
	relevant["policy"] = c
	c = base
	c.FaultActions = map[string]string{"hang": "degrade"}
	relevant["fault actions"] = c
	for name, cfg := range relevant {
		if cfg.Hash() == h {
			t.Errorf("changing %s does not change the config hash", name)
		}
	}

	orchestration := map[string]Config{}
	c = base
	c.Workers = 9
	orchestration["workers"] = c
	c = base
	c.Checkpoint = "elsewhere"
	c.CheckpointEvery = 2
	orchestration["checkpointing"] = c
	c = base
	c.Resume = true
	orchestration["resume"] = c
	c = base
	c.HaltAfter = 5
	orchestration["halt"] = c
	c = base
	c.Shard, c.ShardCount, c.ShardOut = 1, 4, "out"
	orchestration["sharding"] = c
	c = base
	c.DiscardTrials = true
	orchestration["discard trials"] = c
	for name, cfg := range orchestration {
		if cfg.Hash() != h {
			t.Errorf("orchestration field %s must not change the config hash", name)
		}
	}
}

// TestShardRangeTiles pins shardRange's partition law: for any (trials,
// count) the ranges are contiguous, in order, differ in size by at most
// one, and concatenate exactly to [0, trials).
func TestShardRangeTiles(t *testing.T) {
	for _, trials := range []int{1, 2, 7, 100, 501} {
		for _, count := range []int{1, 2, 3, 7, 16, 501, 600} {
			next, minSize, maxSize := 0, trials, 0
			for i := 0; i < count; i++ {
				start, end := shardRange(trials, i, count)
				if start != next || end < start {
					t.Fatalf("shardRange(%d,%d,%d) = [%d,%d): does not tile (expected start %d)",
						trials, i, count, start, end, next)
				}
				if size := end - start; size < minSize {
					minSize = size
				} else if size > maxSize {
					maxSize = size
				}
				next = end
			}
			if next != trials {
				t.Fatalf("shardRange(%d,·,%d) covers [0,%d)", trials, count, next)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("shardRange(%d,·,%d): shard sizes differ by more than one", trials, count)
			}
		}
	}
}

// TestMergeStatesValidation pins the refusals: an incomplete shard, a
// missing shard, an overlapping shard, and a shard from a different
// campaign are all rejected.
func TestMergeStatesValidation(t *testing.T) {
	cfg := streamCases()[0]
	mk := func(shard, count int) *CampaignState {
		start, end := shardRange(cfg.Trials, shard, count)
		st := newCampaignState(cfg, obs.DefaultCapacity, start, end)
		st.Next = end
		return st
	}
	if _, err := MergeStates(nil); err == nil {
		t.Errorf("empty merge must fail")
	}
	incomplete := mk(0, 2)
	incomplete.Next--
	if _, err := MergeStates([]*CampaignState{incomplete, mk(1, 2)}); err == nil {
		t.Errorf("incomplete shard must be rejected")
	}
	if _, err := MergeStates([]*CampaignState{mk(0, 3), mk(2, 3)}); err == nil {
		t.Errorf("missing shard must be rejected")
	}
	if _, err := MergeStates([]*CampaignState{mk(0, 2), mk(0, 2), mk(1, 2)}); err == nil {
		t.Errorf("overlapping shards must be rejected")
	}
	other := cfg
	other.Seed++
	foreignStart, foreignEnd := shardRange(other.Trials, 1, 2)
	foreign := newCampaignState(other, obs.DefaultCapacity, foreignStart, foreignEnd)
	foreign.Next = foreignEnd
	if _, err := MergeStates([]*CampaignState{mk(0, 2), foreign}); err == nil {
		t.Errorf("shard from a different campaign must be rejected")
	}
}

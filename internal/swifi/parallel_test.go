package swifi

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
	"superglue/internal/workload"
)

// TestParallelDeterminism asserts the parallel engine's contract: for a
// fixed seed, a campaign sharded over 8 workers produces a Result —
// including the merged trace snapshot — deeply equal to the sequential
// run, for every service. JSON derived from either is byte-identical.
func TestParallelDeterminism(t *testing.T) {
	for _, svc := range Targets() {
		svc := svc
		t.Run(svc, func(t *testing.T) {
			run := func(workers int) *Result {
				res, err := Run(Config{
					Service:  svc,
					Workload: Workloads()[svc],
					Iters:    3,
					Trials:   40,
					Seed:     2026,
					Profile:  Profiles()[svc],
					Trace:    true,
					Workers:  workers,
				})
				if err != nil {
					t.Fatalf("Run(%s, workers=%d): %v", svc, workers, err)
				}
				return res
			}
			seq, par := run(1), run(8)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s: workers=8 result differs from workers=1\nseq: %+v\npar: %+v", svc, seq, par)
			}
			a, err := json.Marshal(seq.Recovery)
			if err != nil {
				t.Fatalf("marshal sequential snapshot: %v", err)
			}
			b, err := json.Marshal(par.Recovery)
			if err != nil {
				t.Fatalf("marshal parallel snapshot: %v", err)
			}
			if string(a) != string(b) {
				t.Errorf("%s: trace snapshot JSON differs between worker counts", svc)
			}
		})
	}
}

// TestTrialSeedIndependence is the regression test for the linear
// derivation bug: with per-trial seeds of Seed + trial*7919, two
// campaigns whose seeds differ by a multiple of 7919 shared identical
// trial RNG streams at an index offset (campaign A's trial i+k equaled
// campaign B's trial i). The SplitMix64 mix must not reproduce either
// the old offset correlation or any direct collision.
func TestTrialSeedIndependence(t *testing.T) {
	const trials = 500
	seen := make(map[int64]string)
	for _, seed := range []int64{2026, 2026 + 7919, 2026 + 3*7919, 7} {
		for trial := 0; trial < trials; trial++ {
			s := TrialSeed(seed, trial)
			if prev, ok := seen[s]; ok {
				t.Fatalf("TrialSeed collision: seed=%d trial=%d repeats %s", seed, trial, prev)
			}
			seen[s] = ""
		}
	}
	// The old bug, stated directly: under linear derivation these two
	// streams were identical. They must now differ at every index.
	matches := 0
	for trial := 0; trial < trials; trial++ {
		if TrialSeed(2026, trial+1) == TrialSeed(2026+7919, trial) {
			matches++
		}
	}
	if matches > 0 {
		t.Errorf("%d offset-correlated trial seeds between campaigns 2026 and %d", matches, 2026+7919)
	}
}

// idleWorkload registers the lock service as the injection target but
// never invokes it: the dry run sees zero entries into the target.
type idleWorkload struct{ done bool }

func (w *idleWorkload) Name() string   { return "idle" }
func (w *idleWorkload) Target() string { return "lock" }

func (w *idleWorkload) Build(sys *core.System) (kernel.ComponentID, error) {
	comp, err := lock.Register(sys)
	if err != nil {
		return 0, err
	}
	_, err = sys.Kernel().CreateThread(nil, "idle", 10, func(t *kernel.Thread) { w.done = true })
	return comp, err
}

func (w *idleWorkload) Check() error { return nil }

// TestNoOpportunitiesTyped asserts the typed-error contract that replaced
// the injector's silent one-opportunity clamp: a workload that never
// enters the target fails the campaign with ErrNoOpportunities instead of
// producing rows of meaningless trials.
func TestNoOpportunitiesTyped(t *testing.T) {
	_, err := Run(Config{
		Service:  "lock",
		Workload: func(iters int) workload.Workload { return &idleWorkload{} },
		Iters:    3,
		Trials:   10,
		Seed:     1,
		Profile:  Profiles()["lock"],
	})
	if !errors.Is(err, ErrNoOpportunities) {
		t.Fatalf("Run with target-free workload: err = %v; want ErrNoOpportunities", err)
	}
}

package swifi

import (
	"testing"

	"superglue/internal/obs"
	"superglue/internal/services/lock"
)

// TestTracedCampaignBreakdown: a traced campaign yields a per-mechanism
// recovery breakdown with real recovery activity and populated latency
// histograms.
func TestTracedCampaignBreakdown(t *testing.T) {
	res, err := Run(Config{
		Service: "lock", Workload: lock.NewWorkload,
		Iters: 3, Trials: 40, Seed: 7, Profile: Profiles()["lock"],
		Trace: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Recovery == nil {
		t.Fatal("traced campaign produced no Recovery snapshot")
	}
	snap := res.Recovery
	if len(snap.Mechanisms) != obs.NumMechanisms-1 {
		t.Fatalf("breakdown has %d mechanisms; want all %d", len(snap.Mechanisms), obs.NumMechanisms-1)
	}
	byMech := make(map[string]obs.MechanismSnapshot)
	for _, m := range snap.Mechanisms {
		byMech[m.Mechanism] = m
	}
	if res.Recovered > 0 {
		r0 := byMech["R0"]
		if r0.Count == 0 {
			t.Errorf("%d trials recovered but R0 count is 0", res.Recovered)
		}
		var histTotal uint64
		for _, n := range r0.Hist {
			histTotal += n
		}
		if histTotal != r0.Count {
			t.Errorf("R0 histogram sums to %d; want count %d", histTotal, r0.Count)
		}
		if byMech["T1"].Count == 0 {
			t.Error("on-demand campaign recovered faults but T1 count is 0")
		}
	}
	if snap.Kinds["FaultDetected"] == 0 {
		t.Error("campaign with activated faults recorded no fault_detected events")
	}
}

// TestTracedCampaignClassifiesIdentically: tracing must not perturb the
// simulation — same seed, same outcome counts, traced or not.
func TestTracedCampaignClassifiesIdentically(t *testing.T) {
	run := func(trace bool) *Result {
		res, err := Run(Config{
			Service: "lock", Workload: lock.NewWorkload,
			Iters: 2, Trials: 15, Seed: 99, Profile: Profiles()["lock"],
			Trace: trace,
		})
		if err != nil {
			t.Fatalf("Run(trace=%v): %v", trace, err)
		}
		return res
	}
	plain, traced := run(false), run(true)
	if plain.Recovered != traced.Recovered || plain.Segfault != traced.Segfault ||
		plain.Propagated != traced.Propagated || plain.Other != traced.Other ||
		plain.Undetected != traced.Undetected || plain.Degraded != traced.Degraded {
		t.Fatalf("tracing changed campaign outcomes: %+v vs %+v", plain, traced)
	}
	for i := range plain.Trials {
		if plain.Trials[i].Outcome != traced.Trials[i].Outcome {
			t.Fatalf("trial %d: outcome %v (plain) vs %v (traced)",
				i, plain.Trials[i].Outcome, traced.Trials[i].Outcome)
		}
	}
}

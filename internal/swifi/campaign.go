package swifi

import (
	"errors"
	"fmt"
	"math/rand"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/obs"
	"superglue/internal/workload"
)

// Outcome classifies one campaign trial, matching Table II's columns.
type Outcome int

// Outcomes.
const (
	// OutcomeUndetected: the injected flip was never observed.
	OutcomeUndetected Outcome = iota + 1
	// OutcomeRecovered: the fault was detected and SuperGlue recovered it;
	// the workload ran to completion abiding by its specification.
	OutcomeRecovered
	// OutcomeSegfault: the system exited with the machine-level crash.
	OutcomeSegfault
	// OutcomePropagated: the fault escaped into a client component and the
	// run could not be recovered.
	OutcomePropagated
	// OutcomeOther: the system hung (latent fault) or failed in a way the
	// recovery machinery does not cover.
	OutcomeOther
	// OutcomeDegraded: recovery exhausted its escalation budget and the
	// stub returned the typed degradation error; the machine kept running
	// but the workload lost its service (Table II′, watchdog campaigns).
	OutcomeDegraded
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeUndetected:
		return "undetected"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeSegfault:
		return "not recovered (segfault)"
	case OutcomePropagated:
		return "not recovered (propagated)"
	case OutcomeOther:
		return "not recovered (other)"
	case OutcomeDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config parameterizes one fault-injection campaign against one service.
type Config struct {
	// Service is the target's name (reporting).
	Service string
	// Workload builds one trial's system and threads.
	Workload workload.Factory
	// Iters is the per-trial workload iteration count.
	Iters int
	// Trials is the number of injections (the paper uses 500).
	Trials int
	// Seed makes the campaign reproducible.
	Seed int64
	// Profile is the target component's register-usage profile.
	Profile kernel.RegProfile
	// Mode selects the recovery timing.
	Mode core.RecoveryMode
	// Watchdog enables the kernel watchdog for each trial (the Table II′
	// campaigns): component-attributable hangs become recoverable
	// component faults instead of machine-killing latent faults.
	Watchdog bool
	// WatchdogBudget overrides the per-invocation virtual-time budget
	// (zero takes the kernel default).
	WatchdogBudget kernel.Time
	// Trace installs a structured trace recorder (internal/obs) into every
	// trial's kernel and aggregates per-mechanism recovery statistics across
	// the campaign into Result.Recovery. Tracing adds no virtual-time
	// charges, so traced campaigns classify identically to untraced ones.
	Trace bool
	// TraceCapacity bounds the shared event ring (0 takes the obs default).
	TraceCapacity int
}

// Result aggregates one campaign, mirroring one row of Table II.
type Result struct {
	Service    string
	Injected   int
	Recovered  int
	Segfault   int
	Propagated int
	Other      int
	Degraded   int
	Undetected int
	// Trials holds each trial's record for deeper analysis.
	Trials []TrialResult
	// Recovery is the campaign-wide trace snapshot (counters, per-mechanism
	// recovery-latency histograms, most recent events). Nil unless the
	// campaign ran with Config.Trace.
	Recovery *obs.Snapshot
}

// TrialResult records one injection and its classified outcome.
type TrialResult struct {
	Injection Injection
	Outcome   Outcome
	Detail    string
}

// ActivationRatio is |F_a| / |F_a ∪ F_u|: the fraction of injected faults
// that were activated (observed at all).
func (r *Result) ActivationRatio() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.Injected-r.Undetected) / float64(r.Injected)
}

// SuccessRate is |F_r| / |F_a|: the fraction of activated faults that were
// recovered.
func (r *Result) SuccessRate() float64 {
	activated := r.Injected - r.Undetected
	if activated == 0 {
		return 0
	}
	return float64(r.Recovered) / float64(activated)
}

// Run executes the campaign: for each trial it builds a fresh system, plans
// one bit flip at a uniformly random execution moment inside the target,
// runs the workload to completion (or to the machine's death), and
// classifies the outcome. Trials are independent and reproducible from the
// seed.
func Run(cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("swifi: non-positive trial count %d", cfg.Trials)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.OnDemand
	}

	// Dry run: count injection opportunities (invocation entries into the
	// target) for the uniform draw of the injection moment.
	opportunities, err := dryRun(cfg)
	if err != nil {
		return nil, fmt.Errorf("swifi: dry run: %w", err)
	}

	// One recorder spans the whole campaign: every trial's kernel publishes
	// into it, so counters and latency histograms aggregate across trials
	// (workloads register components in a deterministic order, so component
	// IDs and names are stable from trial to trial).
	var rec *obs.Recorder
	if cfg.Trace {
		cap := cfg.TraceCapacity
		if cap <= 0 {
			cap = obs.DefaultCapacity
		}
		rec = obs.NewRecorder(cap)
	}

	res := &Result{Service: cfg.Service}
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
		tr, err := runTrial(cfg, opportunities, rng, rec)
		if err != nil {
			return nil, fmt.Errorf("swifi: trial %d: %w", trial, err)
		}
		res.Injected++
		res.Trials = append(res.Trials, tr)
		switch tr.Outcome {
		case OutcomeUndetected:
			res.Undetected++
		case OutcomeRecovered:
			res.Recovered++
		case OutcomeSegfault:
			res.Segfault++
		case OutcomePropagated:
			res.Propagated++
		case OutcomeOther:
			res.Other++
		case OutcomeDegraded:
			res.Degraded++
		}
	}
	if rec != nil {
		snap := rec.Snapshot()
		res.Recovery = &snap
	}
	return res, nil
}

// dryRun executes the workload fault-free and counts invocation entries
// into the target component.
func dryRun(cfg Config) (uint64, error) {
	sys, err := core.NewSystem(cfg.Mode)
	if err != nil {
		return 0, err
	}
	w := cfg.Workload(cfg.Iters)
	target, err := w.Build(sys)
	if err != nil {
		return 0, err
	}
	var entries uint64
	sys.Kernel().SetInvokeHook(func(t *kernel.Thread, comp kernel.ComponentID, fn string, phase kernel.InvokePhase) {
		if comp == target && phase == kernel.PhaseEntry {
			entries++
		}
	})
	if err := sys.Kernel().Run(); err != nil {
		return 0, fmt.Errorf("fault-free run failed: %w", err)
	}
	if err := w.Check(); err != nil {
		return 0, fmt.Errorf("fault-free run violates workload spec: %w", err)
	}
	if entries == 0 {
		return 0, errors.New("workload never invokes the target")
	}
	return entries, nil
}

// runTrial executes one injection trial.
func runTrial(cfg Config, opportunities uint64, rng *rand.Rand, rec *obs.Recorder) (TrialResult, error) {
	sys, err := core.NewSystem(cfg.Mode)
	if err != nil {
		return TrialResult{}, err
	}
	w := cfg.Workload(cfg.Iters)
	target, err := w.Build(sys)
	if err != nil {
		return TrialResult{}, err
	}
	if rec != nil {
		sys.SetTracer(rec)
	}
	if err := sys.Kernel().SetRegProfile(target, cfg.Profile); err != nil {
		return TrialResult{}, err
	}
	if cfg.Watchdog {
		sys.Kernel().EnableWatchdog(kernel.WatchdogConfig{Budget: cfg.WatchdogBudget})
	}
	inj := NewInjector(sys.Kernel(), target, opportunities, rng)
	sys.Kernel().SetInvokeHook(inj.Hook)

	runErr := sys.Kernel().Run()
	checkErr := error(nil)
	if runErr == nil {
		checkErr = w.Check()
	}
	return classify(inj, runErr, checkErr, sys.Kernel().WatchdogStats()), nil
}

// classify maps a trial's (injection effect, run error, workload check,
// watchdog stats) to a Table II outcome.
func classify(inj *Injector, runErr, checkErr error, wd kernel.WatchdogStats) TrialResult {
	tr := TrialResult{Injection: inj.Record()}
	if !inj.Fired() {
		// The injection moment was never reached (the workload finished
		// first); the flip never happened, so nothing was observed.
		tr.Outcome = OutcomeUndetected
		tr.Detail = "injection point not reached"
		return tr
	}
	var crash *kernel.SystemCrash
	switch {
	case errors.As(runErr, &crash):
		tr.Outcome = OutcomeSegfault
		tr.Detail = crash.Reason
	case errors.Is(runErr, kernel.ErrHang):
		tr.Outcome = OutcomeOther
		tr.Detail = "system hang (latent fault)"
		if wd.Unattributable > 0 {
			tr.Detail = "system hang (watchdog: unattributable)"
		}
	case errors.Is(runErr, core.ErrDegraded) || errors.Is(checkErr, core.ErrDegraded):
		// The watchdog (or fail-stop detection) kept the machine alive,
		// but the escalation ladder ran out of budget: graceful
		// degradation rather than a lost machine.
		tr.Outcome = OutcomeDegraded
		tr.Detail = firstErr(runErr, checkErr).Error()
	case runErr != nil:
		// The machine died in an unforeseen way (e.g., a propagated value
		// made a client panic).
		if inj.Record().Effect == EffectRetvalSilent {
			tr.Outcome = OutcomePropagated
		} else {
			tr.Outcome = OutcomeOther
		}
		tr.Detail = runErr.Error()
	case checkErr != nil:
		// Every non-propagation deviation — including an EffectNone flip
		// breaking the workload, which would be a harness bug — lands in
		// "other".
		if inj.Record().Effect == EffectRetvalSilent {
			tr.Outcome = OutcomePropagated
		} else {
			tr.Outcome = OutcomeOther
		}
		tr.Detail = checkErr.Error()
	default:
		switch inj.Record().Effect {
		case EffectNone:
			tr.Outcome = OutcomeUndetected
		case EffectRetvalSilent:
			// The corrupted value flowed into the client but nothing
			// deviated from the workload specification: not activated.
			tr.Outcome = OutcomeUndetected
			tr.Detail = "propagated value was benign"
		default:
			tr.Outcome = OutcomeRecovered
			if inj.Record().Effect == EffectHang && wd.HangsCaught > 0 {
				// The watchdog verdict: what was a latent machine-killer
				// was attributed, failed, and recovered as a component
				// fault.
				tr.Detail = "hang caught by watchdog"
			}
		}
	}
	return tr
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

package swifi

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"

	"superglue/internal/core"
	"superglue/internal/fault"
	"superglue/internal/kernel"
	"superglue/internal/obs"
	"superglue/internal/pool"
	"superglue/internal/workload"
)

// ErrNoOpportunities reports that the fault-free dry run never entered
// the target component: there is no execution moment to inject into, so
// running trials would only accumulate meaningless "undetected" rows.
// It is a configuration error (wrong target, empty workload), surfaced
// as a typed error instead of the silent one-opportunity clamp the
// injector used to apply.
var ErrNoOpportunities = errors.New("swifi: workload never invokes the target (no injection opportunities)")

// Outcome classifies one campaign trial, matching Table II's columns.
type Outcome int

// Outcomes.
const (
	// OutcomeUndetected: the injected flip was never observed.
	OutcomeUndetected Outcome = iota + 1
	// OutcomeRecovered: the fault was detected and SuperGlue recovered it;
	// the workload ran to completion abiding by its specification.
	OutcomeRecovered
	// OutcomeSegfault: the system exited with the machine-level crash.
	OutcomeSegfault
	// OutcomePropagated: the fault escaped into a client component and the
	// run could not be recovered.
	OutcomePropagated
	// OutcomeOther: the system hung (latent fault) or failed in a way the
	// recovery machinery does not cover.
	OutcomeOther
	// OutcomeDegraded: recovery exhausted its escalation budget and the
	// stub returned the typed degradation error; the machine kept running
	// but the workload lost its service (Table II′, watchdog campaigns).
	OutcomeDegraded
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeUndetected:
		return "undetected"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeSegfault:
		return "not recovered (segfault)"
	case OutcomePropagated:
		return "not recovered (propagated)"
	case OutcomeOther:
		return "not recovered (other)"
	case OutcomeDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config parameterizes one fault-injection campaign against one service.
type Config struct {
	// Service is the target's name (reporting).
	Service string
	// Workload builds one trial's system and threads.
	Workload workload.Factory
	// Iters is the per-trial workload iteration count.
	Iters int
	// Trials is the number of injections (the paper uses 500).
	Trials int
	// Seed makes the campaign reproducible.
	Seed int64
	// Profile is the target component's register-usage profile.
	Profile kernel.RegProfile
	// Mode selects the recovery timing.
	Mode core.RecoveryMode
	// Watchdog enables the kernel watchdog for each trial (the Table II′
	// campaigns): component-attributable hangs become recoverable
	// component faults instead of machine-killing latent faults.
	Watchdog bool
	// WatchdogBudget overrides the per-invocation virtual-time budget
	// (zero takes the kernel default).
	WatchdogBudget kernel.Time
	// Trace installs a structured trace recorder (internal/obs) into every
	// trial's kernel and aggregates per-mechanism recovery statistics across
	// the campaign into Result.Recovery. Tracing adds no virtual-time
	// charges, so traced campaigns classify identically to untraced ones.
	Trace bool
	// TraceCapacity bounds each trial's private event ring and the merged
	// campaign event stream (0 takes the obs default).
	TraceCapacity int
	// Workers bounds the number of trials executed concurrently. Each
	// trial runs on a fresh system with a private trace recorder and its
	// results are committed in trial-index order, so for a fixed Seed the
	// campaign output is byte-identical for any worker count. Zero or
	// negative selects runtime.GOMAXPROCS(0).
	Workers int
	// Shape selects the campaign's injection pattern. The zero value
	// (ShapeLegacy) is the paper's single-bit-flip campaign, untouched;
	// the other shapes plan typed multi-fault trials and always run with
	// the watchdog enabled.
	Shape Shape
	// Kinds is the fault-kind pool shaped trials draw from; empty takes
	// DefaultKinds(). Ignored by ShapeLegacy.
	Kinds []fault.Kind
	// StormFaults is the per-trial burst size for ShapeStorm (zero takes
	// DefaultStormFaults).
	StormFaults int
	// Policy names the supervision policy installed into every trial's
	// system: "" or "legacy" keeps the flat escalation ladder;
	// "one-for-one", "rest-for-one", and "all-for-one" build a root
	// supervisor of that strategy over all registered servers.
	Policy string
	// FaultActions installs runtime per-kind recovery-action overrides
	// (kind name → reboot|retry|degrade) into every trial's system
	// through core.System.HandleFault — the handler layer that precedes
	// sm_fault declarations. Model-checker repro plans use it to replay
	// a fixture spec's routing on the builtin workload.
	FaultActions map[string]string
	// Recovery, when non-nil, overrides every trial system's recovery
	// policy (escalation-ladder rungs, walk-retry bound, and the
	// degrade/fail-hard terminal).
	Recovery *core.RecoveryPolicy
	// Cores is the number of simulated cores per trial machine (0 and 1
	// are the legacy single-core machine). With more than one core the
	// campaign places the target service on core 1 — every workload
	// thread lives on core 0, so each invocation of the target becomes a
	// cross-core synchronous invocation — and the deterministic virtual-
	// time merge keeps the campaign reproducible for any worker count.
	Cores int
	// Replicas is the storage replication factor per trial machine (0 and
	// 1 are the legacy single-copy store, byte-identical to the
	// pre-replication behavior). With more than one replica the storage
	// fault kinds land inside the store — a fail-stop of one replica or a
	// bit flip in one replica's log/checkpoint/slice state — and recovery
	// proceeds under quorum (see docs/STORAGE.md).
	Replicas int

	// Checkpoint, when non-empty, is the path the campaign persists its
	// rolling state to every CheckpointEvery committed trials (and at
	// completion): the durable unit of fleet-scale campaigns. None of the
	// fields below this line affects campaign output — an interrupted-
	// then-resumed or sharded-then-merged campaign is byte-identical to
	// an uninterrupted single-process one (see Config.Hash).
	Checkpoint string
	// CheckpointEvery is the number of committed trials between
	// checkpoint writes (zero takes DefaultCheckpointEvery).
	CheckpointEvery int
	// Resume continues a campaign from Checkpoint's committed cursor
	// instead of trial zero. A missing checkpoint file starts fresh; an
	// existing one must match this Config (hash, trial range, capacity)
	// or Run refuses it.
	Resume bool
	// HaltAfter, when positive, deliberately stops the campaign after
	// that many newly committed trials: the checkpoint is persisted and
	// Run returns ErrHalted. It exists to make "kill the campaign midway
	// and resume it" a deterministic, scriptable event (fleet-smoke CI).
	HaltAfter int
	// Shard and ShardCount select a contiguous slice of the trial space:
	// shard i of n runs only the trials shardRange assigns it. ShardCount
	// of zero or one is the whole campaign. Per-trial seeds depend only
	// on (Seed, trial index), so shards are independent processes whose
	// persisted states MergeStates folds back into the canonical result.
	Shard      int
	ShardCount int
	// ShardOut, when non-empty, is the path the shard's final state is
	// persisted to (checksummed, mergeable with MergeStates).
	ShardOut string
	// DiscardTrials drops per-trial records instead of accumulating
	// Result.Trials, making campaign memory independent of trial count
	// (the fleet-scale default; rendering Table II needs only counters).
	DiscardTrials bool
}

// Result aggregates one campaign, mirroring one row of Table II.
type Result struct {
	Service string
	// Cores is the simulated core count the campaign ran with (0/1 =
	// single core; multi-core rows are annotated in the rendered table).
	Cores      int `json:",omitempty"`
	Injected   int
	Recovered  int
	Segfault   int
	Propagated int
	Other      int
	Degraded   int
	Undetected int
	// Trials holds each trial's record for deeper analysis.
	Trials []TrialResult
	// Recovery is the campaign-wide trace snapshot (counters, per-mechanism
	// recovery-latency histograms, most recent events). Nil unless the
	// campaign ran with Config.Trace.
	Recovery *obs.Snapshot
	// Kinds breaks the outcomes down by injected fault kind — the Table
	// II fault-kind columns. Nil for legacy campaigns (whose single
	// injected class is the register flip), populated for shaped ones; a
	// trial with several fired kinds counts once under each.
	Kinds map[string]*KindStats `json:",omitempty"`
}

// KindStats aggregates the outcomes of trials in which at least one
// fault of the kind fired.
type KindStats struct {
	Injected     int
	Recovered    int
	Degraded     int
	NotRecovered int
	Undetected   int
}

// TrialResult records one injection and its classified outcome.
type TrialResult struct {
	Injection Injection
	Outcome   Outcome
	Detail    string
	// Planned is the shaped trial's full injection plan with per-entry
	// fired markers; nil for legacy trials.
	Planned []PlannedFault `json:",omitempty"`
}

// ActivationRatio is |F_a| / |F_a ∪ F_u|: the fraction of injected faults
// that were activated (observed at all).
func (r *Result) ActivationRatio() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.Injected-r.Undetected) / float64(r.Injected)
}

// SuccessRate is |F_r| / |F_a|: the fraction of activated faults that were
// recovered.
func (r *Result) SuccessRate() float64 {
	activated := r.Injected - r.Undetected
	if activated == 0 {
		return 0
	}
	return float64(r.Recovered) / float64(activated)
}

// TrialSeed derives the per-trial RNG seed from the campaign seed and
// the trial index with a SplitMix64-style finalizer. The previous
// linear derivation (Seed + trial*7919) made campaigns whose seeds
// differ by a multiple of 7919 share identical trial RNG streams at a
// trial-index offset; mixing both inputs through the avalanche function
// makes every (Seed, trial) pair an independent stream.
func TrialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + (uint64(trial)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Opportunities runs the campaign's workload fault-free and returns the
// number of injection opportunities: invocation entries into the target.
// This is the same dry run Run performs before its first trial, exported
// so callers can reproduce a trial's injection plan without running it.
func Opportunities(cfg Config) (uint64, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.OnDemand
	}
	return dryRun(cfg)
}

// PlanAt returns the shaped injection plan the given trial would draw —
// a pure function of (cfg, opportunities, trial), consuming the same RNG
// stream the live trial consumes. ShapeLegacy trials have no shaped
// plan; the result is nil for them.
func PlanAt(cfg Config, opportunities uint64, trial int) []PlannedFault {
	if cfg.Shape == ShapeLegacy {
		return nil
	}
	rng := rand.New(rand.NewSource(TrialSeed(cfg.Seed, trial)))
	return planShaped(cfg, opportunities, rng)
}

// errDrain is the sentinel a worker returns when the stream gate was
// stopped under it (halt, or a merger-side persistence error): the pool
// uses it to stop handing out trials, and Run never surfaces it as the
// campaign error — the smallest-index failure is always the real one,
// because a worker that reached the gate-blocked region has a strictly
// larger trial index than every worker that entered and could fail.
var errDrain = errors.New("swifi: campaign stream drained")

// streamGate bounds how far ahead of the commit cursor workers may run.
// Workers enter with their trial index and block while it is at least
// window trials beyond the lowest uncommitted trial; the merger advances
// the cursor as it commits, waking them. Bounding the lead bounds the
// number of uncommitted snapshots alive at once, which is what makes
// campaign memory independent of trial count. Deadlock-free: a blocked
// trial's index strictly exceeds every entered trial's index (the pool
// hands indices out in order), so the trial the merger is waiting on is
// never the one blocked at the gate.
type streamGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    int // lowest uncommitted trial index
	window  int
	stopped bool
}

func newStreamGate(next, window int) *streamGate {
	g := &streamGate{next: next, window: window}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter blocks until trial is within the commit window; it reports false
// if the gate was stopped (the worker should abandon the trial).
func (g *streamGate) enter(trial int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.stopped && trial >= g.next+g.window {
		g.cond.Wait()
	}
	return !g.stopped
}

// advance moves the commit cursor one trial forward and wakes waiters.
func (g *streamGate) advance() {
	g.mu.Lock()
	g.next++
	g.mu.Unlock()
	g.cond.Broadcast()
}

// stop releases every waiter with a false verdict.
func (g *streamGate) stop() {
	g.mu.Lock()
	g.stopped = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Run executes the campaign: for each trial it builds a fresh system, plans
// one bit flip at a uniformly random execution moment inside the target,
// runs the workload to completion (or to the machine's death), and
// classifies the outcome. Trials are independent and reproducible from the
// seed.
//
// The engine is a streaming rolling merge. Workers (Config.Workers
// goroutines) each run one trial at a time on a private system with a
// private RNG and — when tracing — a private obs.Recorder, and publish
// the trial's result and snapshot into a bounded channel. A single
// merger folds them into the rolling CampaignState in strict trial-index
// order, holding out-of-order arrivals in a small pending set; a stream
// gate keeps workers within a bounded window of the commit cursor. The
// consequences:
//
//   - The Result, the merged trace snapshot, and any JSON derived from
//     them are byte-identical across worker counts for a fixed seed.
//   - Memory is O(workers), not O(trials): at most a window of
//     uncommitted snapshots exists at once, and the rolling snapshot is
//     trimmed to the trace capacity after every fold (provably equal to
//     the batch merge with one final trim — see obs.Merge).
//   - The rolling state is durable: with Config.Checkpoint set it is
//     persisted every CheckpointEvery commits, Resume continues from the
//     cursor, HaltAfter stops deterministically with ErrHalted, and
//     Shard/ShardCount split the trial space across processes whose
//     persisted states MergeStates folds back together.
func Run(cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("swifi: non-positive trial count %d", cfg.Trials)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.OnDemand
	}
	capacity := cfg.TraceCapacity
	if capacity <= 0 {
		capacity = obs.DefaultCapacity
	}
	start, end := 0, cfg.Trials
	if cfg.ShardCount > 1 {
		if cfg.Shard < 0 || cfg.Shard >= cfg.ShardCount {
			return nil, fmt.Errorf("swifi: shard index %d outside [0,%d)", cfg.Shard, cfg.ShardCount)
		}
		start, end = shardRange(cfg.Trials, cfg.Shard, cfg.ShardCount)
	} else if cfg.Shard != 0 {
		return nil, fmt.Errorf("swifi: shard index %d without a shard count", cfg.Shard)
	}
	if cfg.HaltAfter > 0 && cfg.Checkpoint == "" {
		return nil, fmt.Errorf("swifi: HaltAfter without a Checkpoint path would lose the committed trials")
	}
	if cfg.Resume && cfg.Checkpoint == "" {
		return nil, fmt.Errorf("swifi: Resume without a Checkpoint path")
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}

	// Dry run: count injection opportunities (invocation entries into the
	// target) for the uniform draw of the injection moment.
	opportunities, err := dryRun(cfg)
	if err != nil {
		return nil, fmt.Errorf("swifi: dry run: %w", err)
	}

	// The rolling state: fresh, or the persisted cursor of an earlier run.
	st := newCampaignState(cfg, capacity, start, end)
	if cfg.Resume {
		loaded, err := LoadCampaignState(cfg.Checkpoint)
		switch {
		case err == nil:
			if merr := loaded.matches(cfg, capacity, start, end); merr != nil {
				return nil, merr
			}
			st = loaded
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume: a fresh campaign.
		default:
			return nil, err
		}
	}

	var trials []TrialResult
	if n := end - st.Next; n > 0 {
		base := st.Next
		workers := pool.Clamp(cfg.Workers, n)
		window := 4 * workers
		if window < 16 {
			window = 16
		}
		type trialOut struct {
			trial int
			tr    TrialResult
			snap  obs.Snapshot
		}
		gate := newStreamGate(base, window)
		outs := make(chan trialOut, window)
		done := make(chan error, 1)
		go func() {
			done <- pool.Run(n, cfg.Workers, func(i int) error {
				trial := base + i
				if !gate.enter(trial) {
					return errDrain
				}
				rng := rand.New(rand.NewSource(TrialSeed(cfg.Seed, trial)))
				var rec *obs.Recorder
				if cfg.Trace {
					rec = obs.NewRecorder(capacity)
				}
				run := runTrial
				if cfg.Shape != ShapeLegacy {
					run = runShapedTrial
				}
				tr, err := run(cfg, opportunities, rng, rec)
				if err != nil {
					gate.stop()
					return fmt.Errorf("swifi: trial %d: %w", trial, err)
				}
				outs <- trialOut{trial: trial, tr: tr, snap: rec.Snapshot()}
				return nil
			})
			close(outs)
		}()

		// The merger: fold publications into the rolling state in strict
		// trial-index order, persisting every `every` commits. On halt or
		// a persistence error it stops the gate and keeps draining the
		// channel so no worker blocks on send.
		pending := make(map[int]trialOut, window)
		committed := 0
		halted := false
		var mergeErr error
		for out := range outs {
			if halted || mergeErr != nil {
				continue
			}
			pending[out.trial] = out
			for {
				nxt, ok := pending[st.Next]
				if !ok {
					break
				}
				delete(pending, st.Next)
				st.commit(nxt.tr, nxt.snap)
				if !cfg.DiscardTrials {
					trials = append(trials, nxt.tr)
				}
				committed++
				gate.advance()
				if cfg.Checkpoint != "" && committed%every == 0 {
					if err := st.Persist(cfg.Checkpoint); err != nil {
						mergeErr = err
						gate.stop()
						break
					}
				}
				if cfg.HaltAfter > 0 && committed >= cfg.HaltAfter && st.Next < end {
					if err := st.Persist(cfg.Checkpoint); err != nil {
						mergeErr = err
					} else {
						halted = true
					}
					gate.stop()
					break
				}
			}
		}
		perr := <-done
		if mergeErr != nil {
			return nil, mergeErr
		}
		if halted {
			return nil, ErrHalted
		}
		if perr != nil {
			return nil, perr
		}
	}

	// Completion: persist the final state so a later -resume is a no-op
	// and a shard file exists for MergeStates.
	if cfg.Checkpoint != "" {
		if err := st.Persist(cfg.Checkpoint); err != nil {
			return nil, err
		}
	}
	if cfg.ShardOut != "" {
		if err := st.Persist(cfg.ShardOut); err != nil {
			return nil, err
		}
	}
	res := st.Result()
	res.Trials = trials
	return res, nil
}

// foldKinds folds one shaped trial into the per-kind outcome columns:
// each kind that fired at least once in the trial takes one count. A nil
// map (legacy campaigns) folds nothing.
func foldKinds(kinds map[string]*KindStats, tr TrialResult) {
	if kinds == nil || len(tr.Planned) == 0 {
		return
	}
	counted := make(map[string]bool)
	for _, p := range tr.Planned {
		if !p.Fired || counted[p.Kind.String()] {
			continue
		}
		counted[p.Kind.String()] = true
		ks := kinds[p.Kind.String()]
		if ks == nil {
			ks = &KindStats{}
			kinds[p.Kind.String()] = ks
		}
		ks.Injected++
		switch tr.Outcome {
		case OutcomeRecovered:
			ks.Recovered++
		case OutcomeDegraded:
			ks.Degraded++
		case OutcomeUndetected:
			ks.Undetected++
		default:
			ks.NotRecovered++
		}
	}
}

// buildTrialSystem boots one trial's machine (dry run included): a fresh
// system with cfg.Cores simulated cores, the workload built on it, and —
// on multi-core machines — the target service placed on core 1. Workload
// threads are created on core 0, so placement turns every target
// invocation into a cross-core synchronous invocation; the storage
// component keeps its default execute-on-caller placement.
func buildTrialSystem(cfg Config) (*core.System, workload.Workload, kernel.ComponentID, error) {
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	sys, err := core.NewSystemWithStorage(cfg.Mode, cores, cfg.Replicas)
	if err != nil {
		return nil, nil, 0, err
	}
	w := cfg.Workload(cfg.Iters)
	target, err := w.Build(sys)
	if err != nil {
		return nil, nil, 0, err
	}
	if cores > 1 {
		if err := sys.PlaceServer(target, 1); err != nil {
			return nil, nil, 0, err
		}
	}
	if err := applyOverrides(sys, cfg); err != nil {
		return nil, nil, 0, err
	}
	return sys, w, target, nil
}

// applyOverrides installs the campaign's runtime routing and policy
// overrides into one trial's system. The fault-free dry run gets them
// too: the overrides must not change fault-free behavior, and applying
// them uniformly keeps every trial system identically configured.
func applyOverrides(sys *core.System, cfg Config) error {
	names := make([]string, 0, len(cfg.FaultActions))
	for name := range cfg.FaultActions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k, ok := fault.ParseKind(name)
		if !ok {
			return fmt.Errorf("swifi: unknown fault kind %q in FaultActions", name)
		}
		act, ok := core.ParseFaultAction(cfg.FaultActions[name])
		if !ok {
			return fmt.Errorf("swifi: unknown fault action %q for kind %s", cfg.FaultActions[name], name)
		}
		sys.HandleFault(k, func(fault.Event) core.FaultAction { return act })
	}
	if cfg.Recovery != nil {
		sys.SetRecoveryPolicy(*cfg.Recovery)
	}
	return nil
}

// dryRun executes the workload fault-free and counts invocation entries
// into the target component.
func dryRun(cfg Config) (uint64, error) {
	sys, w, target, err := buildTrialSystem(cfg)
	if err != nil {
		return 0, err
	}
	var entries uint64
	sys.Kernel().SetInvokeHook(func(t *kernel.Thread, comp kernel.ComponentID, fn string, phase kernel.InvokePhase) {
		if comp == target && phase == kernel.PhaseEntry {
			entries++
		}
	})
	if err := sys.Kernel().Run(); err != nil {
		return 0, fmt.Errorf("fault-free run failed: %w", err)
	}
	if err := w.Check(); err != nil {
		return 0, fmt.Errorf("fault-free run violates workload spec: %w", err)
	}
	if entries == 0 {
		return 0, ErrNoOpportunities
	}
	return entries, nil
}

// runTrial executes one injection trial.
func runTrial(cfg Config, opportunities uint64, rng *rand.Rand, rec *obs.Recorder) (TrialResult, error) {
	sys, w, target, err := buildTrialSystem(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	if rec != nil {
		sys.SetTracer(rec)
	}
	if err := sys.Kernel().SetRegProfile(target, cfg.Profile); err != nil {
		return TrialResult{}, err
	}
	if cfg.Watchdog {
		sys.Kernel().EnableWatchdog(kernel.WatchdogConfig{Budget: cfg.WatchdogBudget})
	}
	if err := ApplyPolicy(sys, cfg.Policy); err != nil {
		return TrialResult{}, err
	}
	inj := NewInjector(sys.Kernel(), target, opportunities, rng)
	sys.Kernel().SetInvokeHook(inj.Hook)

	runErr := sys.Kernel().Run()
	checkErr := error(nil)
	if runErr == nil {
		checkErr = w.Check()
	}
	return classify(inj, runErr, checkErr, sys.Kernel().WatchdogStats()), nil
}

// classify maps a trial's (injection effect, run error, workload check,
// watchdog stats) to a Table II outcome.
func classify(inj *Injector, runErr, checkErr error, wd kernel.WatchdogStats) TrialResult {
	tr := TrialResult{Injection: inj.Record()}
	if !inj.Fired() {
		// The injection moment was never reached (the workload finished
		// first); the flip never happened, so nothing was observed.
		tr.Outcome = OutcomeUndetected
		tr.Detail = "injection point not reached"
		return tr
	}
	var crash *kernel.SystemCrash
	switch {
	case errors.As(runErr, &crash):
		tr.Outcome = OutcomeSegfault
		tr.Detail = crash.Reason
	case errors.Is(runErr, kernel.ErrHang):
		tr.Outcome = OutcomeOther
		tr.Detail = "system hang (latent fault)"
		if wd.Unattributable > 0 {
			tr.Detail = "system hang (watchdog: unattributable)"
		}
	case errors.Is(runErr, core.ErrDegraded) || errors.Is(checkErr, core.ErrDegraded):
		// The watchdog (or fail-stop detection) kept the machine alive,
		// but the escalation ladder ran out of budget: graceful
		// degradation rather than a lost machine.
		tr.Outcome = OutcomeDegraded
		tr.Detail = firstErr(runErr, checkErr).Error()
	case runErr != nil:
		// The machine died in an unforeseen way (e.g., a propagated value
		// made a client panic).
		if inj.Record().Effect == EffectRetvalSilent {
			tr.Outcome = OutcomePropagated
		} else {
			tr.Outcome = OutcomeOther
		}
		tr.Detail = runErr.Error()
	case checkErr != nil:
		// Every non-propagation deviation — including an EffectNone flip
		// breaking the workload, which would be a harness bug — lands in
		// "other".
		if inj.Record().Effect == EffectRetvalSilent {
			tr.Outcome = OutcomePropagated
		} else {
			tr.Outcome = OutcomeOther
		}
		tr.Detail = checkErr.Error()
	default:
		switch inj.Record().Effect {
		case EffectNone:
			tr.Outcome = OutcomeUndetected
		case EffectRetvalSilent:
			// The corrupted value flowed into the client but nothing
			// deviated from the workload specification: not activated.
			tr.Outcome = OutcomeUndetected
			tr.Detail = "propagated value was benign"
		default:
			tr.Outcome = OutcomeRecovered
			if inj.Record().Effect == EffectHang && wd.HangsCaught > 0 {
				// The watchdog verdict: what was a latent machine-killer
				// was attributed, failed, and recovered as a component
				// fault.
				tr.Detail = "hang caught by watchdog"
			}
		}
	}
	return tr
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

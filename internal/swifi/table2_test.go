package swifi

import "testing"

// TestFullCampaignShape runs the paper's full 500-injection campaign for
// every service and asserts the qualitative shape of Table II:
//
//   - activation ratios in the 90%+ band;
//   - recovery success rates in the high-80s-to-mid-90s band;
//   - the scheduler has the most segfault outcomes (smallest mapped
//     footprint), the filesystem and event manager the fewest;
//   - fault propagation across components is rare;
//   - latent faults ("other") are a small tail.
func TestFullCampaignShape(t *testing.T) {
	results := make(map[string]*Result)
	for _, svc := range Targets() {
		res, err := Run(Config{
			Service:  svc,
			Workload: Workloads()[svc],
			Iters:    5,
			Trials:   500,
			Seed:     2026,
			Profile:  Profiles()[svc],
		})
		if err != nil {
			t.Fatalf("Run(%s): %v", svc, err)
		}
		results[svc] = res
	}
	for svc, res := range results {
		if got := res.ActivationRatio(); got < 0.88 || got > 1.0 {
			t.Errorf("%s: activation ratio %.3f outside [0.88, 1.0]", svc, got)
		}
		if got := res.SuccessRate(); got < 0.80 {
			t.Errorf("%s: success rate %.3f below 0.80", svc, got)
		}
		if res.Propagated > 10 {
			t.Errorf("%s: %d propagated faults; isolation should make these rare", svc, res.Propagated)
		}
		if res.Other > 25 {
			t.Errorf("%s: %d latent/other faults; should be a small tail", svc, res.Other)
		}
		sum := res.Recovered + res.Segfault + res.Propagated + res.Other + res.Degraded + res.Undetected
		if sum != res.Injected || res.Injected != 500 {
			t.Errorf("%s: outcome sum %d ≠ injected %d", svc, sum, res.Injected)
		}
		if res.Degraded > 5 {
			t.Errorf("%s: %d degraded trials without a watchdog; escalation ladder should rarely exhaust", svc, res.Degraded)
		}
	}
	if results["sched"].Segfault <= results["ramfs"].Segfault {
		t.Errorf("sched segfaults (%d) should exceed ramfs's (%d): the paper's footprint effect",
			results["sched"].Segfault, results["ramfs"].Segfault)
	}
	if results["sched"].Segfault <= results["event"].Segfault {
		t.Errorf("sched segfaults (%d) should exceed event's (%d)",
			results["sched"].Segfault, results["event"].Segfault)
	}
}

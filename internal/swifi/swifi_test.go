package swifi

import (
	"fmt"
	"math/rand"
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

func TestClassifyDeterministic(t *testing.T) {
	inj := &Injector{profile: kernel.RegProfile{StackUseFrac: 1.0, MappedBits: 20, RetValFrac: 1.0},
		rng: rand.New(rand.NewSource(1))}
	if got := inj.classify(kernel.ClassDead, 5); got != EffectNone {
		t.Errorf("dead → %v; want none", got)
	}
	if got := inj.classify(kernel.ClassData, 5); got != EffectCrash {
		t.Errorf("data → %v; want crash", got)
	}
	if got := inj.classify(kernel.ClassPtr, 5); got != EffectCrash {
		t.Errorf("ptr → %v; want crash", got)
	}
	if got := inj.classify(kernel.ClassLoop, 20); got != EffectHang {
		t.Errorf("loop hi-bit → %v; want hang", got)
	}
	if got := inj.classify(kernel.ClassLoop, 2); got != EffectCrash {
		t.Errorf("loop lo-bit → %v; want crash", got)
	}
	if got := inj.classify(kernel.ClassStackPtr, 25); got != EffectSegfault {
		t.Errorf("stack hi-bit → %v; want segfault", got)
	}
	if got := inj.classify(kernel.ClassStackPtr, 5); got != EffectCrash {
		t.Errorf("stack lo-bit → %v; want crash", got)
	}
	if got := inj.classify(kernel.ClassRetVal, 5); got != EffectRetvalSilent {
		t.Errorf("retval (frac 1.0) → %v; want propagated", got)
	}
	// With StackUseFrac 0: the corrupted pointer is reloaded before use.
	inj2 := &Injector{profile: kernel.RegProfile{StackUseFrac: 0, MappedBits: 20},
		rng: rand.New(rand.NewSource(1))}
	if got := inj2.classify(kernel.ClassStackPtr, 25); got != EffectNone {
		t.Errorf("stack (use-frac 0) → %v; want none", got)
	}
}

func TestSingleTrialCrashRecovers(t *testing.T) {
	cfg := Config{
		Service:  "lock",
		Workload: lock.NewWorkload,
		Iters:    3,
		Trials:   1,
		Seed:     42,
		// Force every activated fault to be a recoverable crash.
		Profile: kernel.RegProfile{DeadFrac: 0, PtrFrac: 1.0, LoopFrac: 0, StackUseFrac: 1.0, MappedBits: 32, RetValFrac: 0},
		Mode:    core.OnDemand,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Injected != 1 {
		t.Fatalf("Injected = %d; want 1", res.Injected)
	}
	tr := res.Trials[0]
	if tr.Outcome != OutcomeRecovered && tr.Outcome != OutcomeUndetected {
		t.Fatalf("outcome = %v (%s); want recovered (or undetected for ESP-reload)", tr.Outcome, tr.Detail)
	}
}

func TestCampaignSmallLock(t *testing.T) {
	cfg := Config{
		Service:  "lock",
		Workload: lock.NewWorkload,
		Iters:    3,
		Trials:   40,
		Seed:     7,
		Profile:  Profiles()["lock"],
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := res.Recovered + res.Segfault + res.Propagated + res.Other + res.Undetected
	if total != res.Injected || total != 40 {
		t.Fatalf("outcome sum %d ≠ injected %d", total, res.Injected)
	}
	if res.Recovered == 0 {
		t.Error("no recovered faults in 40 trials; recovery machinery broken?")
	}
	if res.ActivationRatio() < 0.5 {
		t.Errorf("activation ratio %.2f suspiciously low", res.ActivationRatio())
	}
	if res.SuccessRate() < 0.5 {
		details := ""
		for _, tr := range res.Trials {
			if tr.Outcome != OutcomeRecovered && tr.Outcome != OutcomeUndetected {
				details += fmt.Sprintf("  %v %v: %s\n", tr.Injection.Effect, tr.Outcome, tr.Detail)
			}
		}
		t.Errorf("success rate %.2f suspiciously low:\n%s", res.SuccessRate(), details)
	}
}

// TestCampaignReproducible: same seed, same aggregate counts.
func TestCampaignReproducible(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{
			Service: "lock", Workload: lock.NewWorkload,
			Iters: 2, Trials: 15, Seed: 99, Profile: Profiles()["lock"],
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Recovered != b.Recovered || a.Segfault != b.Segfault ||
		a.Propagated != b.Propagated || a.Other != b.Other || a.Undetected != b.Undetected {
		t.Fatalf("campaign not reproducible: %+v vs %+v", a, b)
	}
}

// TestAllTargetsSmokeCampaign runs a small campaign against every service.
func TestAllTargetsSmokeCampaign(t *testing.T) {
	for _, svc := range Targets() {
		svc := svc
		t.Run(svc, func(t *testing.T) {
			res, err := Run(Config{
				Service:  svc,
				Workload: Workloads()[svc],
				Iters:    3,
				Trials:   25,
				Seed:     1234,
				Profile:  Profiles()[svc],
			})
			if err != nil {
				t.Fatalf("Run(%s): %v", svc, err)
			}
			bad := 0
			for _, tr := range res.Trials {
				if tr.Outcome == OutcomeOther && tr.Injection.Effect == EffectCrash {
					// A detected crash the machinery failed to recover:
					// that is a recovery bug, not an expected outcome.
					bad++
					t.Errorf("%s: unrecovered crash: %s (inj %+v)", svc, tr.Detail, tr.Injection)
				}
			}
			if res.SuccessRate() < 0.6 {
				t.Errorf("%s: success rate %.2f below sanity floor", svc, res.SuccessRate())
			}
		})
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Service: "x", Workload: lock.NewWorkload, Trials: 0}); err == nil {
		t.Fatal("Run accepted zero trials")
	}
}

func TestOutcomeAndEffectStrings(t *testing.T) {
	if OutcomeRecovered.String() != "recovered" || OutcomeSegfault.String() != "not recovered (segfault)" {
		t.Error("outcome strings wrong")
	}
	if EffectCrash.String() != "crash" || EffectRetvalSilent.String() != "retval-propagated" {
		t.Error("effect strings wrong")
	}
}

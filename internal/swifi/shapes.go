package swifi

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"superglue/internal/core"
	"superglue/internal/fault"
	"superglue/internal/kernel"
	"superglue/internal/obs"
)

// Shape selects a campaign's injection pattern. The zero value is the
// paper's original single-bit-flip campaign, whose planning, RNG draw
// order, and classification are untouched by the shaped engine: legacy
// campaigns stay byte-identical for a fixed seed.
type Shape int

// Campaign shapes.
const (
	// ShapeLegacy is the paper's §V-A campaign: one register bit flip per
	// trial, mechanistically classified.
	ShapeLegacy Shape = iota
	// ShapeCorrelated injects two correlated faults per trial: a typed
	// fault in the target service and, a few invocations later, a crash
	// of the storage component it (and recovery) depends on. This models
	// a common-cause burst hitting two components at once.
	ShapeCorrelated
	// ShapeStorm injects a burst of typed faults (Config.StormFaults, by
	// default six) at random moments of the loaded workload — the
	// restart-intensity stress case supervision budgets exist for.
	ShapeStorm
	// ShapeDuringRecovery injects one primary typed fault, then arms a
	// second fault to fire at the first invocation of the target *after*
	// its µ-reboot — i.e., while the recovery walk is replaying — probing
	// the escalation ladder's reentrancy.
	ShapeDuringRecovery
)

// String returns the canonical shape name.
func (s Shape) String() string {
	switch s {
	case ShapeLegacy:
		return "legacy"
	case ShapeCorrelated:
		return "correlated"
	case ShapeStorm:
		return "storm"
	case ShapeDuringRecovery:
		return "during-recovery"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ParseShape resolves a shape from its name (underscores accepted).
func ParseShape(s string) (Shape, bool) {
	for sh := ShapeLegacy; sh <= ShapeDuringRecovery; sh++ {
		if name := sh.String(); s == name || s == underscored(name) {
			return sh, true
		}
	}
	return ShapeLegacy, false
}

func underscored(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c == '-' {
			b[i] = '_'
		}
	}
	return string(b)
}

// DefaultKinds is the kind pool shaped campaigns draw from when
// Config.Kinds is empty: every kind of the taxonomy that the injector
// can synthesize against an arbitrary target. The multi-core kinds are
// deliberately excluded so that existing shaped campaigns stay
// byte-identical for a fixed seed; opt in with MulticoreKinds (or an
// explicit Config.Kinds pool).
func DefaultKinds() []fault.Kind {
	return []fault.Kind{
		fault.KindRegisterFlip, fault.KindHang, fault.KindLivelock,
		fault.KindDescCorruption, fault.KindStorageCrash,
		fault.KindStorageCorruption, fault.KindMessageLoss, fault.KindMessageDup,
	}
}

// MulticoreKinds is DefaultKinds plus the multi-core fault kinds: failed
// thread migrations (transient, redo-recovered) and corruption detected
// during cross-core synchronous invocations (fail-stop). Meaningful on
// machines built with Config.Cores > 1, where target invocations really
// do migrate; on a single core the kinds degrade to their message-loss /
// fail-stop analogues.
func MulticoreKinds() []fault.Kind {
	return append(DefaultKinds(), fault.KindMigration, fault.KindCrossCoreInv)
}

// PlannedFault is one entry of a shaped trial's injection plan: fire a
// fault of Kind at the Moment-th invocation entry into its victim (the
// campaign target, or the storage component when Storage is set).
type PlannedFault struct {
	Kind fault.Kind
	// Moment is 1-based: fire at the Nth entry into the campaign target.
	Moment uint64
	// Storage marks the storage component (not the target) as the victim.
	Storage bool `json:",omitempty"`
	// Deferred marks a during-recovery secondary: Moment is ignored and
	// the fault fires at the first target entry in a later epoch.
	Deferred bool `json:",omitempty"`
	// Fired reports whether the plan entry actually fired before the
	// workload completed (or the machine died).
	Fired bool
}

// planShaped draws a shaped trial's injection plan from the trial RNG.
// All randomness is consumed here, in a fixed order, so the plan — and
// with it the whole trial — is a pure function of the trial seed.
func planShaped(cfg Config, opportunities uint64, rng *rand.Rand) []PlannedFault {
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = DefaultKinds()
	}
	moment := func() uint64 { return uint64(rng.Int63n(int64(opportunities))) + 1 }
	kind := func() fault.Kind { return kinds[rng.Intn(len(kinds))] }

	var plan []PlannedFault
	switch cfg.Shape {
	case ShapeCorrelated:
		primary := PlannedFault{Kind: kind(), Moment: moment()}
		// The correlated storage crash lands 1–3 target invocations after
		// the primary: close enough that the first recovery of either
		// fault runs with the other component also unhealthy.
		lag := uint64(rng.Intn(3)) + 1
		plan = []PlannedFault{
			primary,
			{Kind: fault.KindStorageCrash, Moment: primary.Moment + lag, Storage: true},
		}
	case ShapeStorm:
		n := cfg.StormFaults
		if n <= 0 {
			n = DefaultStormFaults
		}
		for i := 0; i < n; i++ {
			plan = append(plan, PlannedFault{Kind: kind(), Moment: moment()})
		}
	case ShapeDuringRecovery:
		// StormFaults is the deferred-secondary count here (default one,
		// which draws exactly the kinds the single-secondary shape always
		// drew — existing campaigns stay byte-identical). Each secondary
		// fires in its own recovery epoch, probing nested reentrancy of
		// the walk-retry budget.
		n := cfg.StormFaults
		if n <= 0 {
			n = 1
		}
		plan = []PlannedFault{{Kind: kind(), Moment: moment()}}
		for i := 0; i < n; i++ {
			plan = append(plan, PlannedFault{Kind: kind(), Deferred: true})
		}
	}
	// Moment order, deferred entries last: the Hook consumes the plan
	// front-to-back as target invocations accrue.
	sort.SliceStable(plan, func(i, j int) bool {
		if plan[i].Deferred != plan[j].Deferred {
			return !plan[i].Deferred
		}
		return plan[i].Moment < plan[j].Moment
	})
	return plan
}

// DefaultStormFaults is the storm burst size when Config.StormFaults is
// zero.
const DefaultStormFaults = 6

// shapedInjector fires a pre-drawn plan of typed faults against a trial's
// system. Unlike the legacy Injector it may fire several times; moments
// are counted over invocation entries into the campaign target, recovery
// replays included.
type shapedInjector struct {
	k       *kernel.Kernel
	sys     *core.System
	target  kernel.ComponentID
	profile kernel.RegProfile
	rng     *rand.Rand

	plan []PlannedFault
	next int    // next undeferred plan entry
	seen uint64 // target entries observed

	// during-recovery state: the epoch of the target when the primary
	// fired; the deferred secondary fires at the first target entry in a
	// later epoch.
	primaryEpoch uint64
	armed        bool

	flips []Injection // records of register-flip firings
}

func newShapedInjector(sys *core.System, target kernel.ComponentID, profile kernel.RegProfile, plan []PlannedFault, rng *rand.Rand) *shapedInjector {
	return &shapedInjector{
		k:       sys.Kernel(),
		sys:     sys,
		target:  target,
		profile: profile,
		rng:     rng,
		plan:    plan,
	}
}

// anyFired reports whether at least one plan entry fired.
func (inj *shapedInjector) anyFired() bool {
	for _, p := range inj.plan {
		if p.Fired {
			return true
		}
	}
	return false
}

// Hook is the kernel invocation hook for shaped trials.
func (inj *shapedInjector) Hook(t *kernel.Thread, comp kernel.ComponentID, fn string, phase kernel.InvokePhase) {
	if comp != inj.target || phase != kernel.PhaseEntry {
		return
	}
	inj.seen++
	for inj.next < len(inj.plan) {
		p := &inj.plan[inj.next]
		if p.Deferred || p.Moment > inj.seen {
			break
		}
		inj.next++
		inj.fireKind(t, p, fn, phase)
	}
	// A deferred secondary fires at the first target entry whose epoch
	// postdates the primary's: the recovery walk replaying the interface.
	if inj.armed {
		if epoch, err := inj.k.Epoch(inj.target); err == nil && epoch > inj.primaryEpoch {
			inj.armed = false
			for i := range inj.plan {
				if inj.plan[i].Deferred && !inj.plan[i].Fired {
					inj.fireKind(t, &inj.plan[i], fn, phase)
					// Re-arm for the next deferred secondary: it fires
					// at the first target entry of a yet-later epoch.
					inj.primaryEpoch = epoch
					inj.armed = inj.hasUnfiredDeferred()
					break
				}
			}
		}
	}
}

// fireKind synthesizes one typed fault. Faults against the target are
// raised from inside its invocation (the hook runs at PhaseEntry), so
// transient injections arm the in-flight invocation itself.
func (inj *shapedInjector) fireKind(t *kernel.Thread, p *PlannedFault, fn string, phase kernel.InvokePhase) {
	p.Fired = true
	if !p.Deferred && !p.Storage && inj.primaryEpoch == 0 && !inj.armed {
		if epoch, err := inj.k.Epoch(inj.target); err == nil {
			inj.primaryEpoch = epoch
			inj.armed = inj.hasDeferred()
		}
	}
	victim := inj.target
	if p.Storage {
		victim = inj.sys.StorageComp()
	}
	switch p.Kind {
	case fault.KindRegisterFlip:
		rec := flipRegister(t, inj.profile, inj.rng, fn, phase)
		inj.flips = append(inj.flips, rec)
		inj.applyFlip(t, victim, rec)
	case fault.KindHang:
		inj.k.HangCurrentAs(t, fault.KindHang)
	case fault.KindLivelock:
		inj.k.HangCurrentAs(t, fault.KindLivelock)
	case fault.KindDescCorruption:
		_ = inj.k.FailComponentAs(victim, fault.KindDescCorruption, fault.DefaultSeverity(fault.KindDescCorruption))
	case fault.KindStorageCrash:
		if st := inj.sys.Store(); st.Replicas() > 1 {
			// Replicated store: fail-stop one replica (chosen by the trial
			// RNG), then fail the victim service so its recovery runs while
			// the store is a replica down — the store µ-reboots the replica
			// from checkpoint + WAL on its next operation and books the
			// detection as a typed event. The service fault is left
			// unclassified: the quorum absorbs the storage fault, so the
			// service-level sm_fault(storage_crash) policy must not fire.
			st.CrashReplica(inj.rng.Intn(st.Replicas()))
			_ = inj.k.FailComponent(victim)
		} else {
			_ = inj.k.FailComponentAs(inj.sys.StorageComp(), fault.KindStorageCrash, fault.DefaultSeverity(fault.KindStorageCrash))
		}
	case fault.KindStorageCorruption:
		if st := inj.sys.Store(); st.Replicas() > 1 {
			// Replicated store: flip a bit in one replica's log, checkpoint,
			// or slice state, then fail the victim so its G1 restore re-reads
			// storage mid-divergence. A quorum read detects the divergent
			// replica, repairs it by anti-entropy, and still serves correct
			// data, so the service never observes the corruption.
			st.CorruptReplica(inj.rng.Intn(st.Replicas()), inj.rng.Intn(1<<30))
			_ = inj.k.FailComponent(victim)
		} else {
			// Single copy: disagree the redundant copy with its checksum,
			// then fail the victim so the G1 restore path re-reads (and
			// detects) it. When the victim has no saved data the corruption
			// cannot land and the crash alone is the injected fault.
			if class, ok := inj.sys.Class(victim); ok {
				st.CorruptOne(class, inj.rng.Intn(1<<30))
			}
			_ = inj.k.FailComponentAs(victim, fault.KindStorageCorruption, fault.DefaultSeverity(fault.KindStorageCorruption))
		}
	case fault.KindMessageLoss:
		inj.k.InjectTransientFault(t, victim, fault.KindMessageLoss)
	case fault.KindMessageDup:
		inj.k.DuplicateNext(t, victim)
	case fault.KindMigration:
		// A failed migration between cores: the thread arrives but its
		// in-flight execution context is lost, so the invocation unwinds
		// transiently and the stub redoes it (the cross-core analogue of
		// message loss). The hook runs after the entry migration, so
		// t.CrossCoreInvocation() reports whether the frame really did
		// migrate; on a single-core machine the kind degrades to a plain
		// retransmission.
		inj.k.InjectTransientFault(t, victim, fault.KindMigration)
	case fault.KindCrossCoreInv:
		// Corruption detected while a cross-core invocation executes on
		// the server's home core: fail-stop, µ-reboot on the home core,
		// and the caller's stub replays the (re-migrated) invocation.
		_ = inj.k.FailComponentAs(victim, fault.KindCrossCoreInv, fault.DefaultSeverity(fault.KindCrossCoreInv))
	default:
		_ = inj.k.FailComponentAs(victim, p.Kind, fault.DefaultSeverity(p.Kind))
	}
}

func (inj *shapedInjector) hasDeferred() bool {
	for _, p := range inj.plan {
		if p.Deferred {
			return true
		}
	}
	return false
}

func (inj *shapedInjector) hasUnfiredDeferred() bool {
	for _, p := range inj.plan {
		if p.Deferred && !p.Fired {
			return true
		}
	}
	return false
}

// applyFlip applies a register flip's mechanistic effect to the victim,
// attributing fail-stop detections as typed register-flip faults.
func (inj *shapedInjector) applyFlip(t *kernel.Thread, victim kernel.ComponentID, rec Injection) {
	switch rec.Effect {
	case EffectNone, EffectRetvalSilent:
	case EffectCrash:
		_ = inj.k.FailComponentAs(victim, fault.KindRegisterFlip, fault.SevError)
	case EffectSegfault:
		inj.k.CrashSystem(t, victim,
			fmt.Sprintf("wild %v dereference after bit %d flip", rec.Reg, rec.Bit))
	case EffectHang:
		inj.k.HangCurrentAs(t, fault.KindHang)
	}
}

// runShapedTrial executes one correlated / storm / during-recovery trial.
// The watchdog is always on: hang and livelock injections are part of the
// kind pool, and without attribution they would kill the machine rather
// than exercise the escalation ladder.
func runShapedTrial(cfg Config, opportunities uint64, rng *rand.Rand, rec *obs.Recorder) (TrialResult, error) {
	sys, w, target, err := buildTrialSystem(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	if rec != nil {
		sys.SetTracer(rec)
	}
	if err := sys.Kernel().SetRegProfile(target, cfg.Profile); err != nil {
		return TrialResult{}, err
	}
	sys.Kernel().EnableWatchdog(kernel.WatchdogConfig{Budget: cfg.WatchdogBudget})
	if err := ApplyPolicy(sys, cfg.Policy); err != nil {
		return TrialResult{}, err
	}
	plan := planShaped(cfg, opportunities, rng)
	inj := newShapedInjector(sys, target, cfg.Profile, plan, rng)
	sys.Kernel().SetInvokeHook(inj.Hook)

	runErr := sys.Kernel().Run()
	checkErr := error(nil)
	if runErr == nil {
		checkErr = w.Check()
	}
	return classifyShaped(inj, runErr, checkErr), nil
}

// classifyShaped maps a shaped trial's end state to a Table II outcome.
// The per-flip mechanistic subtleties of the legacy classifier do not
// apply: a shaped trial is "recovered" when every fired fault was
// absorbed and the workload still met its specification.
func classifyShaped(inj *shapedInjector, runErr, checkErr error) TrialResult {
	tr := TrialResult{Planned: inj.plan}
	if len(inj.flips) > 0 {
		tr.Injection = inj.flips[0]
	}
	if !inj.anyFired() {
		tr.Outcome = OutcomeUndetected
		tr.Detail = "no planned injection point reached"
		return tr
	}
	var crash *kernel.SystemCrash
	switch {
	case errors.As(runErr, &crash):
		tr.Outcome = OutcomeSegfault
		tr.Detail = crash.Reason
	case errors.Is(runErr, kernel.ErrHang):
		tr.Outcome = OutcomeOther
		tr.Detail = "system hang (latent fault)"
	case errors.Is(runErr, core.ErrDegraded) || errors.Is(checkErr, core.ErrDegraded):
		tr.Outcome = OutcomeDegraded
		tr.Detail = firstErr(runErr, checkErr).Error()
	case runErr != nil:
		tr.Outcome = OutcomeOther
		tr.Detail = runErr.Error()
	case checkErr != nil:
		// A shaped fault that silently broke the workload's contract:
		// the duplication/propagation escaped the interface checks.
		tr.Outcome = OutcomePropagated
		tr.Detail = checkErr.Error()
	default:
		tr.Outcome = OutcomeRecovered
	}
	return tr
}

// ApplyPolicy installs a named supervision policy into a system: "" or
// "legacy" leaves the flat escalation ladder, any supervision strategy
// name ("one-for-one", "rest-for-one", "all-for-one") builds a root
// supervisor of that strategy over every registered server with default
// restart-intensity budgets. This is the runtime-adaptive switch behind
// the swifi -policy flag.
func ApplyPolicy(sys *core.System, policy string) error {
	if policy == "" || policy == "legacy" {
		return nil
	}
	strat, ok := core.ParseStrategy(policy)
	if !ok {
		return fmt.Errorf("swifi: unknown policy %q (want legacy, one-for-one, rest-for-one, or all-for-one)", policy)
	}
	var children []core.ChildSpec
	for _, id := range sys.Servers() {
		children = append(children, core.ChildSpec{Component: id})
	}
	if len(children) == 0 {
		return fmt.Errorf("swifi: policy %q needs at least one registered server", policy)
	}
	return sys.SetSupervisor(&core.SupervisorSpec{
		Name:     "root",
		Strategy: strat,
		Children: children,
	})
}

package swifi

import (
	"encoding/json"
	"reflect"
	"testing"

	"superglue/internal/core"
	"superglue/internal/fault"
	"superglue/internal/services/lock"
	"superglue/internal/services/ramfs"
)

func TestParseShape(t *testing.T) {
	for sh := ShapeLegacy; sh <= ShapeDuringRecovery; sh++ {
		got, ok := ParseShape(sh.String())
		if !ok || got != sh {
			t.Errorf("ParseShape(%q) = %v, %v", sh.String(), got, ok)
		}
	}
	if got, ok := ParseShape("during_recovery"); !ok || got != ShapeDuringRecovery {
		t.Errorf("underscored shape name rejected: %v, %v", got, ok)
	}
	if _, ok := ParseShape("tsunami"); ok {
		t.Error("ParseShape accepted an unknown shape")
	}
}

// runShaped runs one shaped campaign against a service with fixed
// parameters, for the determinism and smoke tests below.
func runShaped(t *testing.T, svc string, shape Shape, workers int, policy string) *Result {
	t.Helper()
	res, err := Run(Config{
		Service:  svc,
		Workload: Workloads()[svc],
		Iters:    3,
		Trials:   24,
		Seed:     2026,
		Profile:  Profiles()[svc],
		Trace:    true,
		Workers:  workers,
		Shape:    shape,
		Policy:   policy,
	})
	if err != nil {
		t.Fatalf("Run(%s, %v, workers=%d): %v", svc, shape, workers, err)
	}
	return res
}

// TestShapedDeterminism is the analogue of TestParallelDeterminism for
// the new campaign shapes: for a fixed seed, the full Result — plan,
// outcomes, per-kind columns, merged trace snapshot — is deeply equal
// between sequential and 8-worker runs.
func TestShapedDeterminism(t *testing.T) {
	for _, tc := range []struct {
		svc    string
		shape  Shape
		policy string
	}{
		{"lock", ShapeCorrelated, ""},
		{"ramfs", ShapeStorm, "one-for-one"},
		{"event", ShapeDuringRecovery, "all-for-one"},
	} {
		t.Run(tc.svc+"/"+tc.shape.String(), func(t *testing.T) {
			seq := runShaped(t, tc.svc, tc.shape, 1, tc.policy)
			par := runShaped(t, tc.svc, tc.shape, 8, tc.policy)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("workers=8 result differs from workers=1\nseq: %+v\npar: %+v", seq, par)
			}
			a, _ := json.Marshal(seq)
			b, _ := json.Marshal(par)
			if string(a) != string(b) {
				t.Error("shaped campaign JSON differs between worker counts")
			}
		})
	}
}

// TestShapedCampaignSmoke runs every shape against a storage-backed and a
// non-storage service and sanity-checks the aggregate bookkeeping.
func TestShapedCampaignSmoke(t *testing.T) {
	for _, svc := range []string{"lock", "ramfs"} {
		for _, shape := range []Shape{ShapeCorrelated, ShapeStorm, ShapeDuringRecovery} {
			t.Run(svc+"/"+shape.String(), func(t *testing.T) {
				res := runShaped(t, svc, shape, 0, "")
				sum := res.Recovered + res.Segfault + res.Propagated + res.Other + res.Degraded + res.Undetected
				if sum != res.Injected || res.Injected != 24 {
					t.Errorf("outcome sum %d ≠ injected %d", sum, res.Injected)
				}
				if res.Kinds == nil {
					t.Fatal("shaped campaign has no per-kind breakdown")
				}
				kindTotal := 0
				for kind, ks := range res.Kinds {
					if _, ok := fault.ParseKind(kind); !ok {
						t.Errorf("unknown kind column %q", kind)
					}
					kindTotal += ks.Injected
				}
				if kindTotal == 0 {
					t.Error("no fired kinds recorded across 24 shaped trials")
				}
				for _, tr := range res.Trials {
					if len(tr.Planned) == 0 {
						t.Fatal("shaped trial carries no plan")
					}
				}
				// The taxonomy must be exercised end to end: most shaped
				// trials are absorbed (recovered or typed degradation).
				if res.Recovered+res.Degraded == 0 {
					t.Errorf("nothing recovered or degraded: %+v", res)
				}
			})
		}
	}
}

// TestStormRespectsBurstSize pins StormFaults plumbing and its default.
func TestStormRespectsBurstSize(t *testing.T) {
	res, err := Run(Config{
		Service:     "lock",
		Workload:    Workloads()["lock"],
		Iters:       3,
		Trials:      4,
		Seed:        7,
		Profile:     Profiles()["lock"],
		Shape:       ShapeStorm,
		StormFaults: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tr := range res.Trials {
		if len(tr.Planned) != 3 {
			t.Fatalf("plan size = %d; want StormFaults=3", len(tr.Planned))
		}
	}
	res, err = Run(Config{
		Service:  "lock",
		Workload: Workloads()["lock"],
		Iters:    3,
		Trials:   2,
		Seed:     7,
		Profile:  Profiles()["lock"],
		Shape:    ShapeStorm,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := len(res.Trials[0].Planned); got != DefaultStormFaults {
		t.Fatalf("default plan size = %d; want %d", got, DefaultStormFaults)
	}
}

// TestKindPoolRestriction: Config.Kinds restricts what shaped trials may
// inject (the -kinds flag).
func TestKindPoolRestriction(t *testing.T) {
	res, err := Run(Config{
		Service:  "lock",
		Workload: Workloads()["lock"],
		Iters:    3,
		Trials:   12,
		Seed:     11,
		Profile:  Profiles()["lock"],
		Shape:    ShapeStorm,
		Kinds:    []fault.Kind{fault.KindMessageLoss},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tr := range res.Trials {
		for _, p := range tr.Planned {
			if p.Kind != fault.KindMessageLoss {
				t.Fatalf("planned kind %v escaped the restricted pool", p.Kind)
			}
		}
	}
	// Message loss is transient: the server redoes the call without a
	// µ-reboot, so loss-only storms should essentially always recover.
	if res.Recovered == 0 {
		t.Errorf("no recovered trials in a loss-only storm: %+v", res)
	}
}

// TestApplyPolicy covers the runtime policy switch the -policy flag uses.
func TestApplyPolicy(t *testing.T) {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lock.Register(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := ramfs.Register(sys); err != nil {
		t.Fatal(err)
	}
	if err := ApplyPolicy(sys, ""); err != nil || sys.Supervisor() != nil {
		t.Fatalf("empty policy: err=%v sup=%v", err, sys.Supervisor())
	}
	if err := ApplyPolicy(sys, "legacy"); err != nil || sys.Supervisor() != nil {
		t.Fatalf("legacy policy: err=%v sup=%v", err, sys.Supervisor())
	}
	if err := ApplyPolicy(sys, "anarchy"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := ApplyPolicy(sys, "rest-for-one"); err != nil {
		t.Fatalf("rest-for-one: %v", err)
	}
	sup := sys.Supervisor()
	if sup == nil || sup.Strategy != core.RestForOne {
		t.Fatalf("supervisor = %+v; want rest-for-one root", sup)
	}
	if len(sup.Children) != len(sys.Servers()) {
		t.Fatalf("root supervises %d children; want all %d servers", len(sup.Children), len(sys.Servers()))
	}
}

package swifi

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"superglue/internal/fault"
)

// TestSingleReplicaMatchesLegacy pins the tentpole's compatibility
// contract: the replicated store at -replicas 1 (and the zero value,
// which is what every pre-existing caller passes) is byte-identical to
// the legacy single-copy store. Every service's fixed-seed campaign must
// reproduce the legacy golden counts and marshal to identical JSON
// whether Replicas is 0 or 1.
func TestSingleReplicaMatchesLegacy(t *testing.T) {
	for _, svc := range Targets() {
		svc := svc
		t.Run(svc, func(t *testing.T) {
			run := func(replicas int) *Result {
				res, err := Run(Config{
					Service:  svc,
					Workload: Workloads()[svc],
					Iters:    3,
					Trials:   25,
					Seed:     2026,
					Profile:  Profiles()[svc],
					Workers:  1,
					Replicas: replicas,
				})
				if err != nil {
					t.Fatalf("Run(%s, replicas=%d): %v", svc, replicas, err)
				}
				return res
			}
			zero, one := run(0), run(1)
			if !reflect.DeepEqual(zero, one) {
				t.Fatalf("%s: replicas=1 result differs from replicas=0", svc)
			}
			a, _ := json.Marshal(zero)
			b, _ := json.Marshal(one)
			if string(a) != string(b) {
				t.Fatalf("%s: JSON differs between replicas=0 and replicas=1", svc)
			}
			want := legacyGolden[svc]
			got := [7]int{one.Injected, one.Recovered, one.Segfault,
				one.Propagated, one.Other, one.Degraded, one.Undetected}
			if got != want {
				t.Fatalf("%s replicas=1: counts %v differ from legacy golden %v", svc, got, want)
			}
		})
	}
}

// TestReplicatedStormSurvivesStorageFaults is the acceptance campaign in
// miniature: a storm of storage-crash and storage-corruption faults
// against a 3-replica store must end every trial recovered — the quorum
// absorbs the storage fault inside the store, so no trial may segfault,
// propagate, or land in the unrecovered bucket.
func TestReplicatedStormSurvivesStorageFaults(t *testing.T) {
	kinds := []fault.Kind{fault.KindStorageCrash, fault.KindStorageCorruption}
	for _, svc := range Targets() {
		svc := svc
		t.Run(svc, func(t *testing.T) {
			res, err := Run(Config{
				Service:  svc,
				Workload: Workloads()[svc],
				Iters:    3,
				Trials:   24,
				Seed:     2026,
				Profile:  Profiles()[svc],
				Workers:  1,
				Shape:    ShapeStorm,
				Kinds:    kinds,
				Replicas: 3,
			})
			if err != nil {
				t.Fatalf("Run(%s): %v", svc, err)
			}
			if res.Injected == 0 {
				t.Fatalf("%s: storm injected nothing", svc)
			}
			if n := res.Segfault + res.Propagated + res.Other; n != 0 {
				t.Fatalf("%s: %d unrecovered trials at replicas=3 (segfault=%d propagated=%d other=%d); want 0",
					svc, n, res.Segfault, res.Propagated, res.Other)
			}
		})
	}
}

// TestReplicatedStormDeterminism extends the worker-count determinism
// contract to replicated-storage campaigns: the full Result of a storage
// fault storm at replicas=3 is identical across 1 and 4 workers.
func TestReplicatedStormDeterminism(t *testing.T) {
	kinds := []fault.Kind{fault.KindStorageCrash, fault.KindStorageCorruption}
	run := func(workers int) *Result {
		res, err := Run(Config{
			Service:  "ramfs",
			Workload: Workloads()["ramfs"],
			Iters:    3,
			Trials:   24,
			Seed:     2026,
			Profile:  Profiles()["ramfs"],
			Trace:    true,
			Workers:  workers,
			Shape:    ShapeStorm,
			Kinds:    kinds,
			Replicas: 3,
		})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return res
	}
	one, four := run(1), run(4)
	if !reflect.DeepEqual(one, four) {
		t.Fatal("replicas=3 storm: workers=4 result differs from workers=1")
	}
	a, _ := json.Marshal(one)
	b, _ := json.Marshal(four)
	if string(a) != string(b) {
		t.Fatal("replicas=3 storm: JSON differs between worker counts")
	}
	for name, ks := range one.Kinds {
		_ = fmt.Sprintf("%s=%v", name, ks) // per-kind columns exist and merged deterministically
	}
}

package swifi

import (
	"testing"

	"superglue/internal/kernel"
)

// hangHeavyProfile skews the register-usage profile toward loop counters so
// a large share of flips manifest as unbounded loops — concentrating the
// campaign on the latent-fault class the watchdog exists for.
func hangHeavyProfile() kernel.RegProfile {
	return kernel.RegProfile{
		DeadFrac:     0,
		PtrFrac:      0.10,
		LoopFrac:     0.60,
		StackUseFrac: 0.50,
		MappedBits:   26,
		RetValFrac:   0.20,
	}
}

// TestWatchdogReclassifiesHangInjections is the Table II′ acceptance test:
// two same-seed campaigns against the lock service, watchdog off then on.
// The pairing is deterministic (trial i fires the same flip in both runs),
// and at least 80% of the hang injections that were "not recovered (other)"
// with the watchdog off must be reclassified as recovered or degraded with
// it on.
func TestWatchdogReclassifiesHangInjections(t *testing.T) {
	cfg := Config{
		Service:  "lock",
		Workload: Workloads()["lock"],
		Iters:    5,
		Trials:   200,
		Seed:     7,
		Profile:  hangHeavyProfile(),
	}
	off, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run (watchdog off): %v", err)
	}
	cfg.Watchdog = true
	on, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run (watchdog on): %v", err)
	}

	hangs, offOther, reclassified := 0, 0, 0
	sawVerdict := false
	for i := range off.Trials {
		o, n := off.Trials[i], on.Trials[i]
		if o.Injection.Effect != EffectHang {
			continue
		}
		hangs++
		// Paired determinism: the same seed must fire the same flip.
		if n.Injection.Effect != EffectHang {
			t.Fatalf("trial %d: effect %v off vs %v on; pairing broken", i, o.Injection.Effect, n.Injection.Effect)
		}
		if n.Outcome == OutcomeRecovered && n.Detail == "hang caught by watchdog" {
			sawVerdict = true
		}
		if o.Outcome != OutcomeOther {
			continue
		}
		offOther++
		if n.Outcome == OutcomeRecovered || n.Outcome == OutcomeDegraded {
			reclassified++
		}
	}

	if hangs < 20 {
		t.Fatalf("only %d hang injections fired; the hang-heavy profile should produce far more", hangs)
	}
	if offOther == 0 {
		t.Fatal("no hang trial was 'not recovered (other)' with the watchdog off")
	}
	if got := float64(reclassified) / float64(offOther); got < 0.80 {
		t.Fatalf("reclassified %d/%d = %.0f%% of hang trials; want ≥ 80%%", reclassified, offOther, 100*got)
	}
	if !sawVerdict {
		t.Error("no trial recorded the 'hang caught by watchdog' verdict in Detail")
	}
	if on.Other >= off.Other {
		t.Errorf("watchdog-on Other = %d, off = %d; the watchdog must shrink the latent-fault column", on.Other, off.Other)
	}
}

// TestWatchdogOffHangTrialsStayOther pins the baseline semantics: without
// the watchdog, a fired hang injection is a latent fault classified "not
// recovered (other)" — the Table II behavior the seed repo ships with.
func TestWatchdogOffHangTrialsStayOther(t *testing.T) {
	cfg := Config{
		Service:  "lock",
		Workload: Workloads()["lock"],
		Iters:    5,
		Trials:   60,
		Seed:     11,
		Profile:  hangHeavyProfile(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, tr := range res.Trials {
		if tr.Injection.Effect == EffectHang && tr.Outcome != OutcomeOther {
			t.Fatalf("trial %d: hang injection classified %v without watchdog; want %v", i, tr.Outcome, OutcomeOther)
		}
	}
	if res.Degraded != 0 {
		t.Fatalf("degraded = %d without watchdog; want 0", res.Degraded)
	}
}

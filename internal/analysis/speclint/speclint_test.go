package speclint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"superglue/internal/core"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// lintFixture lints one testdata file and returns its diagnostics.
func lintFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	service := strings.TrimSuffix(name, ".sg")
	diags, err := LintSource(service, string(src))
	if err != nil {
		t.Fatalf("LintSource(%s): %v", name, err)
	}
	return diags
}

// codes extracts the sorted multiset of diagnostic codes, excluding the
// always-present SG109 coverage report.
func codes(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		if d.Code == "SG109" {
			continue
		}
		out = append(out, d.Code)
	}
	sort.Strings(out)
	return out
}

// TestFixtures drives every diagnostic off its purpose-built fixture: one
// minimal .sg file per code, asserting the exact multiset of findings and
// that findings carry line positions.
func TestFixtures(t *testing.T) {
	cases := []struct {
		file string
		want []string // expected codes, sorted, SG109 excluded
	}{
		{"clean.sg", nil},
		{"sg100_invalid.sg", []string{"SG100"}},
		{"sg101_unreachable.sg", []string{"SG101"}},
		{"sg102_no_walk.sg", []string{"SG102", "SG102"}},
		{"sg103_leak.sg", []string{"SG103"}},
		{"sg104_deadend.sg", []string{"SG104"}},
		{"sg105_block.sg", []string{"SG105"}},
		{"sg106_wakeup.sg", []string{"SG106"}},
		{"sg107_shadow.sg", []string{"SG107"}},
		{"sg108_ambiguous.sg", []string{"SG108"}},
		{"sg110_blockrelease.sg", []string{"SG110"}},
		{"sg111_nofault.sg", []string{"SG111", "SG112"}},
		{"sg112_nocorruption.sg", []string{"SG112"}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			diags := lintFixture(t, tc.file)
			got := codes(diags)
			if strings.Join(got, ",") != strings.Join(tc.want, ",") {
				t.Fatalf("codes = %v, want %v\ndiags:\n%s", got, tc.want, render(diags))
			}
			for _, d := range diags {
				// SG100 is a whole-spec finding; SG109 anchors to the
				// service_global_info block, which minimal fixtures omit.
				if d.Code != "SG100" && d.Code != "SG109" && d.Line == 0 {
					t.Errorf("%s: diagnostic %s has no line position", tc.file, d.Code)
				}
				if d.Service != strings.TrimSuffix(tc.file, ".sg") {
					t.Errorf("diagnostic service = %q", d.Service)
				}
			}
		})
	}
}

func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// TestSeverities pins the code → severity mapping.
func TestSeverities(t *testing.T) {
	want := map[string]Severity{
		"SG100": SevError, "SG101": SevError, "SG102": SevError,
		"SG103": SevWarn, "SG104": SevWarn, "SG105": SevWarn,
		"SG106": SevWarn, "SG107": SevError, "SG108": SevWarn,
		"SG109": SevInfo, "SG110": SevWarn, "SG111": SevWarn,
		"SG112": SevWarn,
	}
	files := []string{
		"clean.sg", "sg100_invalid.sg", "sg101_unreachable.sg",
		"sg102_no_walk.sg", "sg103_leak.sg", "sg104_deadend.sg",
		"sg105_block.sg", "sg106_wakeup.sg", "sg107_shadow.sg",
		"sg108_ambiguous.sg", "sg110_blockrelease.sg", "sg111_nofault.sg",
		"sg112_nocorruption.sg",
	}
	for _, f := range files {
		for _, d := range lintFixture(t, f) {
			if sev, ok := want[d.Code]; !ok {
				t.Errorf("%s: unknown code %s", f, d.Code)
			} else if d.Severity != sev {
				t.Errorf("%s: %s severity = %v, want %v", f, d.Code, d.Severity, sev)
			}
		}
	}
}

// TestLines spot-checks line accuracy against the fixture sources.
func TestLines(t *testing.T) {
	diags := lintFixture(t, "sg104_deadend.sg")
	var got int
	for _, d := range diags {
		if d.Code == "SG104" {
			got = d.Line
		}
	}
	// f_cfg's prototype is the last line of the fixture.
	src, _ := os.ReadFile(filepath.Join("testdata", "sg104_deadend.sg"))
	want := strings.Count(strings.TrimRight(string(src), "\n"), "\n") + 1
	if got != want {
		t.Errorf("SG104 line = %d, want %d (f_cfg prototype)", got, want)
	}

	diags = lintFixture(t, "sg107_shadow.sg")
	for _, d := range diags {
		if d.Code == "SG107" && d.Line != 7 {
			t.Errorf("SG107 line = %d, want 7 (the duplicate sm_transition)", d.Line)
		}
		if d.Code == "SG107" && !strings.Contains(d.Message, "at line 6") {
			t.Errorf("SG107 should cite the first declaration's line: %s", d.Message)
		}
	}
}

// TestBuiltinSpecsClean locks in that all six system-service specifications
// lint clean: nothing above SevInfo, and exactly one SG109 coverage report
// each. This is the spec-level half of `make lint`'s clean-on-main contract.
func TestBuiltinSpecsClean(t *testing.T) {
	sources := map[string]string{
		"event": event.IDLSource(),
		"lock":  lock.IDLSource(),
		"mm":    mm.IDLSource(),
		"ramfs": ramfs.IDLSource(),
		"sched": sched.IDLSource(),
		"timer": timer.IDLSource(),
	}
	for name, src := range sources {
		diags, err := LintSource(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var infos int
		for _, d := range diags {
			if d.Severity != SevInfo {
				t.Errorf("%s: unexpected finding: %s", name, d)
			} else {
				infos++
			}
		}
		if infos != 1 {
			t.Errorf("%s: %d info diagnostics, want exactly the SG109 report", name, infos)
		}
	}
}

// TestMechanismCoverage checks the SG109 report content for two services
// with known mechanism sets (the §III-C mapping).
func TestMechanismCoverage(t *testing.T) {
	diags, err := LintSource("event", event.IDLSource())
	if err != nil {
		t.Fatal(err)
	}
	report := findCode(diags, "SG109")
	for _, mech := range []string{"R0", "T0", "T1", "D1", "G0", "U0"} {
		if !strings.Contains(strings.Split(report, "; not required")[0], mech) {
			t.Errorf("event coverage missing %s: %s", mech, report)
		}
	}
	if !strings.Contains(report, "not required: D0,G1") {
		t.Errorf("event should not require D0/G1: %s", report)
	}

	diags, err = LintSource("ramfs", ramfs.IDLSource())
	if err != nil {
		t.Fatal(err)
	}
	report = findCode(diags, "SG109")
	if !strings.Contains(report, "G1") || strings.Contains(strings.Split(report, ";")[0], "T0") {
		t.Errorf("ramfs coverage should include G1 and not T0: %s", report)
	}
}

func findCode(diags []Diagnostic, code string) string {
	for _, d := range diags {
		if d.Code == code {
			return d.Message
		}
	}
	return ""
}

// TestLintHandBuiltSpec checks Lint tolerates a nil SourceMap (hand-built
// specs have no source positions).
func TestLintHandBuiltSpec(t *testing.T) {
	spec := &core.Spec{
		Service:       "hand",
		DescHasParent: core.ParentSolo,
		Funcs: []*core.FuncSpec{
			{Name: "mk", RetDescID: true, RetName: "id"},
			{Name: "rm", Params: []core.ParamSpec{{CType: "long", Name: "id", Role: core.RoleDesc}}},
		},
		Creation:    []string{"mk"},
		Transitions: []core.Transition{{From: "mk", To: "rm"}},
		Terminal:    []string{"rm"},
	}
	diags := Lint(spec, nil)
	if HasErrors(diags) {
		t.Fatalf("unexpected errors:\n%s", render(diags))
	}
	for _, d := range diags {
		if d.Line != 0 {
			t.Errorf("nil SourceMap should yield line 0, got %d", d.Line)
		}
	}
}

// TestHasErrors exercises the error predicate both ways.
func TestHasErrors(t *testing.T) {
	if HasErrors(lintFixture(t, "sg103_leak.sg")) {
		t.Error("warn-only fixture should not report errors")
	}
	if !HasErrors(lintFixture(t, "sg101_unreachable.sg")) {
		t.Error("sg101 fixture should report errors")
	}
}

// Package speclint implements semantic lints over SuperGlue interface
// specifications (core.Spec) and their descriptor state machines, beyond the
// hard consistency rules of Spec.Validate.
//
// The paper's central bet (§IV) is that recovery correctness is checkable
// before runtime from the interface description alone: the compiler
// precomputes shortest recovery walks over the descriptor state machine.
// speclint extends that pre-runtime checking to the class of specification
// mistakes Validate cannot reject outright — states R0 cannot rebuild,
// descriptors that can never be freed, holds that can never be released —
// plus a per-spec report of which C³ recovery mechanisms the model
// exercises.
//
// Diagnostic codes (see DESIGN.md §6 for the full catalogue):
//
//	SG100 error  residual Validate failure not covered by a finer lint
//	SG101 error  state with no incoming transition (unreachable)
//	SG102 error  state R0 cannot reach from s0 (no pure recovery walk)
//	SG103 warn   creation without terminal (descriptor leak)
//	SG104 warn   dead-end state (no outgoing transition; cannot be freed)
//	SG105 warn   sm_block with neither sm_hold nor sm_reset (recovery cannot
//	             decide whether to re-acquire or re-contend the block)
//	SG106 warn   sm_wakeup with no blocking peer to wake
//	SG107 error  literal duplicate sm_transition declaration (the later one
//	             shadows the earlier; Validate also rejects this — the lint
//	             adds the line position)
//	SG108 warn   σ ambiguity: contradictory classification sets for one
//	             function, resolved only by stateAfter precedence
//	SG109 info   mechanism coverage report (R0/T0/T1/D0/D1/G0/G1/U0)
//	SG110 warn   sm_hold whose release is itself declared sm_block
//	SG111 warn   storage-dependent spec declares no sm_fault policy for
//	             storage_crash (the crash falls back to the reboot ladder)
//	SG112 warn   spec saves G1 resource data but declares no sm_fault
//	             policy for storage_corruption (a corrupt redundant extent
//	             would be retried into the same corrupt data)
package speclint

import (
	"fmt"
	"sort"
	"strings"

	"superglue/internal/core"
	"superglue/internal/fault"
	"superglue/internal/idl"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, ordered by increasing gravity.
const (
	// SevInfo diagnostics are reports, not problems.
	SevInfo Severity = iota + 1
	// SevWarn diagnostics are advisory: the spec is usable but suspicious.
	SevWarn
	// SevError diagnostics make the spec unfit for recovery.
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one speclint finding.
type Diagnostic struct {
	// Code is the stable diagnostic code (SG1xx).
	Code string
	// Severity is the finding's gravity.
	Severity Severity
	// Service is the interface the finding is about.
	Service string
	// Line is the 1-based source line of the offending declaration, or 0
	// when no position is known (e.g. linting a hand-built Spec).
	Line int
	// Message is the human-readable finding.
	Message string
}

// String formats the diagnostic in the conventional file:line style.
func (d Diagnostic) String() string {
	loc := d.Service
	if d.Line > 0 {
		loc = fmt.Sprintf("%s:%d", d.Service, d.Line)
	}
	return fmt.Sprintf("%s: [%s] %s: %s", loc, d.Code, d.Severity, d.Message)
}

// HasErrors reports whether any diagnostic is SevError.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// LintSource parses IDL source (laxly, so invalid specs still get finding
// detail) and lints it. Parse failures — syntax errors — are returned as an
// error; semantic problems become diagnostics.
func LintSource(service, src string) ([]Diagnostic, error) {
	spec, sm, err := idl.ParseWithMap(service, src)
	if err != nil {
		return nil, err
	}
	return Lint(spec, sm), nil
}

// linter carries one run's state.
type linter struct {
	spec  *core.Spec
	sm    *idl.SourceMap
	diags []Diagnostic
}

func (l *linter) add(code string, sev Severity, line int, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{
		Code:     code,
		Severity: sev,
		Service:  l.spec.Service,
		Line:     line,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Lint runs every lint over a (possibly invalid) spec. sm may be nil, in
// which case diagnostics carry no line numbers.
func Lint(spec *core.Spec, sm *idl.SourceMap) []Diagnostic {
	l := &linter{spec: spec, sm: sm}
	l.lintSigma()
	l.lintReachability()
	l.lintLeak()
	l.lintHolds()
	l.lintWakeup()
	l.lintFaultCoverage()
	l.reportMechanisms()

	// Residual catch-all: anything Validate rejects that no finer lint
	// already reported as an error (duplicate functions, role mistakes,
	// model-flag inconsistencies, ...).
	if err := spec.Validate(); err != nil && !HasErrors(l.diags) {
		msg := err.Error()
		msg = strings.TrimPrefix(msg, core.ErrInvalidSpec.Error()+": ")
		msg = strings.TrimPrefix(msg, spec.Service+": ")
		l.add("SG100", SevError, 0, "invalid specification: %s", msg)
	}
	return l.diags
}

// sigmaEdge is one compiled σ entry with its first declaring transition.
type sigmaEdge struct {
	to    string
	index int // index into spec.Transitions of the first declaration
}

// sigma compiles the declared transitions into σ restricted to known
// functions, mirroring core.NewStateMachine but tolerating invalid specs.
// It returns the map keyed by "state\x00fn".
func (l *linter) sigma() map[string]sigmaEdge {
	next := make(map[string]sigmaEdge)
	for i, tr := range l.spec.Transitions {
		if l.spec.Func(tr.From) == nil || l.spec.Func(tr.To) == nil {
			continue // Validate reports unknown names (SG100)
		}
		from := l.spec.TransitionFromState(tr.From)
		to := l.spec.StateAfter(tr.To)
		if to == "" {
			to = from // update/per-thread target: validity only
		}
		key := from + "\x00" + tr.To
		if _, dup := next[key]; dup {
			continue // duplicates handled by lintSigma
		}
		next[key] = sigmaEdge{to: to, index: i}
	}
	return next
}

// lintSigma reports literal duplicate transition declarations (SG107): the
// same sm_transition(From, To) pair declared twice, the later shadowing the
// earlier in the compiled σ. Distinct From functions that happen to compile
// to the same σ cell (two creation functions sharing a terminal, the mm.sg
// pattern; per-thread Froms anchored at s0, the Fig. 3 style) are
// intentional protocol documentation and are not flagged. Validate also
// rejects literal duplicates; the lint contributes the line position.
//
// It also reports classification ambiguity (SG108): one function declared in
// contradictory sm_* sets — sm_update (state unchanged) together with
// sm_reset (state returns to s0), sm_block, or sm_wakeup — which σ resolves
// only by stateAfter's fixed precedence, silently.
func (l *linter) lintSigma() {
	spec := l.spec
	seen := make(map[core.Transition]int) // literal pair → first index
	for i, tr := range spec.Transitions {
		if j, dup := seen[tr]; dup {
			l.add("SG107", SevError, l.sm.TransitionLine(i),
				"duplicate sm_transition(%s, %s): already declared at line %d; this declaration is shadowed",
				tr.From, tr.To, l.sm.TransitionLine(j))
			continue
		}
		seen[tr] = i
	}

	for _, f := range spec.Funcs {
		if f == nil || !spec.IsUpdate(f.Name) {
			continue
		}
		var clash string
		switch {
		case spec.IsReset(f.Name):
			clash = "sm_reset (state returns to s0)"
		case spec.IsBlocking(f.Name):
			clash = "sm_block (per-thread blocking)"
		case spec.IsWakeup(f.Name):
			clash = "sm_wakeup (per-thread wakeup)"
		default:
			continue
		}
		l.add("SG108", SevWarn, l.sm.FuncLine(f.Name),
			"σ ambiguity: %s is declared both sm_update (state unchanged) and %s; stateAfter precedence decides silently",
			f.Name, clash)
	}
}

// lintReachability reports pure-function states that are unreachable (SG101:
// no transition ever enters them) or that R0's pure-function BFS from s0
// cannot reach (SG102: a recovery walk cannot rebuild descriptors observed
// in that state), plus dead-end states no function leaves (SG104).
func (l *linter) lintReachability() {
	spec := l.spec
	next := l.sigma()

	// BFS from s0 over pure-function edges — exactly the walk computation
	// of core.NewStateMachine.
	reached := map[string]bool{core.StateInitial: true}
	queue := []string{core.StateInitial}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var outs []string
		for key, e := range next {
			state, fn, _ := strings.Cut(key, "\x00")
			if state == cur && spec.IsPure(fn) && !reached[e.to] {
				outs = append(outs, e.to)
			}
		}
		sort.Strings(outs)
		for _, st := range outs {
			if !reached[st] {
				reached[st] = true
				queue = append(queue, st)
			}
		}
	}

	// Incoming-edge sets over all declared transitions.
	hasIncoming := make(map[string]bool)
	for key, e := range next {
		state, _, _ := strings.Cut(key, "\x00")
		if e.to != state { // self-validity edges don't make a state enterable
			hasIncoming[e.to] = true
		}
	}

	for _, f := range spec.Funcs {
		if f == nil || !spec.IsPure(f.Name) || reached[f.Name] {
			continue
		}
		if !hasIncoming[f.Name] {
			l.add("SG101", SevError, l.sm.FuncLine(f.Name),
				"state %q is unreachable: no sm_transition ever enters it", f.Name)
		} else {
			l.add("SG102", SevError, l.sm.FuncLine(f.Name),
				"state %q has no pure-function recovery walk from s0: R0 cannot rebuild descriptors in it", f.Name)
		}
	}

	// Dead-end detection: a reachable live state with no outgoing edge at
	// all traps descriptors forever — they can never be terminated.
	outgoing := make(map[string]bool)
	for key := range next {
		state, _, _ := strings.Cut(key, "\x00")
		outgoing[state] = true
	}
	states := make([]string, 0, len(reached))
	for st := range reached {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		if st == core.StateClosed || outgoing[st] {
			continue
		}
		line := 0
		if st != core.StateInitial {
			line = l.sm.FuncLine(st)
		}
		l.add("SG104", SevWarn, line,
			"state %q is a dead end: no transition leaves it, so descriptors in it can never be closed", st)
	}
}

// lintLeak reports creation without terminal: descriptors can be made but
// never destroyed, so stub tracking state grows without bound (SG103).
func (l *linter) lintLeak() {
	if len(l.spec.Creation) == 0 || len(l.spec.Terminal) > 0 {
		return
	}
	l.add("SG103", SevWarn, l.sm.SetLine("sm_creation", 0),
		"creation function %s has no matching sm_terminal: descriptors leak (tracking state grows forever)",
		l.spec.Creation[0])
}

// lintHolds reports blocking functions with no completion protocol (SG105):
// a function declared sm_block that is neither the hold side of an sm_hold
// pair nor declared sm_reset. Recovery must know how a block completes — a
// hold pair says "re-acquire for the holder, re-contend for waiters"
// (§II-C's lock recovery); sm_reset says "a completed block leaves the
// descriptor available again" (the event/timer pattern). With neither,
// recovery cannot decide what to do with threads observed blocked there.
//
// It also reports hold pairs whose release side is itself declared sm_block
// (SG110): replaying such a release during recovery could block the
// recovering thread, which recovery walks must never do.
func (l *linter) lintHolds() {
	spec := l.spec
	for i, fn := range spec.Blocking {
		if spec.Func(fn) == nil {
			continue // unknown name: Validate's problem
		}
		if _, isHold := spec.HoldFn(fn); isHold || spec.IsReset(fn) {
			continue
		}
		l.add("SG105", SevWarn, l.sm.SetLine("sm_block", i),
			"sm_block(%s) has neither sm_hold nor sm_reset: recovery cannot decide whether to re-acquire or re-contend threads blocked in %s",
			fn, fn)
	}
	for i, h := range spec.Holds {
		if spec.Func(h.Release) == nil {
			continue
		}
		if spec.IsBlocking(h.Release) {
			l.add("SG110", SevWarn, l.sm.HoldLine(i),
				"sm_hold(%s, %s): release %s is declared sm_block; replaying it during recovery could block the recovering thread",
				h.Hold, h.Release, h.Release)
		}
	}
}

// lintWakeup reports wakeup functions with nothing to wake (SG106): the spec
// declares sm_wakeup but no sm_block, so no thread can ever be blocked on
// the descriptor.
func (l *linter) lintWakeup() {
	if len(l.spec.Wakeup) == 0 || len(l.spec.Blocking) > 0 {
		return
	}
	l.add("SG106", SevWarn, l.sm.SetLine("sm_wakeup", 0),
		"sm_wakeup(%s) without any sm_block function: there is never a blocked thread to wake",
		l.spec.Wakeup[0])
}

// lintFaultCoverage reports storage-dependent specs that leave a storage
// fault kind they can receive unclassified. An interface whose recovery
// depends on the storage component (G0 creator records, G1 resource
// data) can observe storage-crash faults mid-call (SG111); one that
// restores resource contents (G1) can additionally observe
// storage-corruption when a redundant extent fails its checksum (SG112).
// Without an sm_fault declaration those faults fall back to the generic
// reboot ladder — which, for a corrupted redundant copy, redoes the
// restore into the same corrupt extent until the retry budget burns out.
func (l *linter) lintFaultCoverage() {
	spec := l.spec
	if !spec.DescIsGlobal && !spec.RescHasData {
		return
	}
	report := func(code string, kind fault.Kind, why string) {
		name := kind.String()
		if _, ok := spec.FaultActions[name]; ok {
			return
		}
		l.add(code, SevWarn, l.sm.GlobalLine(),
			"storage-dependent interface declares no sm_fault(%s, ...): %s",
			strings.ReplaceAll(name, "-", "_"), why)
	}
	report("SG111", fault.KindStorageCrash,
		"a storage-component crash mid-call falls back to the generic reboot ladder")
	if spec.RescHasData {
		report("SG112", fault.KindStorageCorruption,
			"a corrupted redundant extent would be retried into the same corrupt data; declare retry-free handling (typically degrade)")
	}
}

// reportMechanisms emits the SG109 coverage report: which of the paper's
// recovery mechanisms (§III-C) this spec's descriptor-resource model
// exercises, and which it does not require.
func (l *linter) reportMechanisms() {
	all := []core.Mechanism{
		core.MechR0, core.MechT0, core.MechT1, core.MechD0,
		core.MechD1, core.MechG0, core.MechG1, core.MechU0,
	}
	var used, unused []string
	for _, m := range all {
		if l.spec.HasMechanism(m) {
			used = append(used, m.String())
		} else {
			unused = append(unused, m.String())
		}
	}
	l.add("SG109", SevInfo, l.sm.GlobalLine(),
		"mechanism coverage: requires %s; not required: %s",
		strings.Join(used, ","), strings.Join(unused, ","))
}

package govet

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// CoreAffinity fences the multi-core scheduler's placement control plane.
// Per-core run queues and virtual clocks are owned by internal/kernel; the
// only sanctioned ways to influence placement from outside are
// core.System.PlaceServer (component home cores) and the kernel's
// CreateThreadOn (thread home cores), both control-plane setup calls.
//
// Rule A — outside the kernel and core packages, (*Kernel).SetComponentCore
// must not be called directly: placement goes through System.PlaceServer,
// which validates the core index against the booted machine and keeps the
// placement record the campaign engine's per-core annotation reads. A raw
// SetComponentCore bypasses both.
//
// Rule B — stub files (cstub.go, sstub.go, client_stub.go, server_stub.go)
// must not change placement at all (SetComponentCore, PlaceServer,
// CreateThreadOn). Stubs are data-plane code replayed during recovery; a
// replayed placement change would re-home components mid-recovery and
// desynchronize the deterministic virtual-time merge.
var CoreAffinity = &Analyzer{
	Name: "coreaffinity",
	Doc:  "core placement only via System.PlaceServer/CreateThreadOn; never from stub files",
	Run:  runCoreAffinity,
}

// placementAPIs are the core-placement calls Rule B bans from stub files.
var placementAPIs = map[string]bool{
	"SetComponentCore": true, "PlaceServer": true, "CreateThreadOn": true,
}

func runCoreAffinity(p *Pass) error {
	// The kernel owns the run queues, and core.System is the sanctioned
	// wrapper; both are exempt from Rule A (matched by package name so the
	// analyzer stays testable against self-contained fixtures).
	exempt := p.Pkg.Name() == "kernel" || p.Pkg.Name() == "core"
	for _, f := range p.Files {
		isStub := stubFiles[filepath.Base(p.Fset.Position(f.Pos()).Filename)]
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if isStub && placementAPIs[name] && isPlacementRecv(p.Info.TypeOf(sel.X)) {
				p.Reportf(call.Pos(), "stub code must not change core placement (%s); placement is control-plane setup", name)
				return true
			}
			if !exempt && name == "SetComponentCore" && isKernelType(p.Info.TypeOf(sel.X)) {
				p.Reportf(call.Pos(), "SetComponentCore called outside the kernel/core packages; place components with core.System.PlaceServer")
			}
			return true
		})
	}
	return nil
}

// isPlacementRecv reports whether t is (a pointer to) a Kernel or System —
// the two types carrying placement methods.
func isPlacementRecv(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	n := named.Obj().Name()
	return n == "Kernel" || n == "System"
}

package govet

import (
	"go/types"
)

// ShadowBuiltin flags declarations that shadow a predeclared Go
// identifier — `cap := cfg.TraceCapacity`, a parameter named len, a
// range variable named min. Shadowing compiles fine but silently
// disables the builtin for the rest of the scope; the SWIFI campaign
// engine shipped exactly this bug (a local `cap` hiding the builtin in
// the trace-capacity setup), and the class of bug is cheap to ban
// outright in replay-critical packages.
//
// Variables, constants, parameters, named results, range and
// type-switch bindings, plus type and function declarations are
// checked. Struct fields and methods are exempt: selector syntax keeps
// them unambiguous.
var ShadowBuiltin = &Analyzer{
	Name: "shadowbuiltin",
	Doc:  "flag declarations that shadow predeclared identifiers (cap, len, min, …)",
	Run:  runShadowBuiltin,
}

func runShadowBuiltin(p *Pass) error {
	// Defs iteration order is irrelevant: Run sorts diagnostics by
	// position before reporting.
	for id, obj := range p.Info.Defs {
		if obj == nil || id.Name == "_" || types.Universe.Lookup(id.Name) == nil {
			continue
		}
		switch o := obj.(type) {
		case *types.Var:
			if o.IsField() {
				continue // fields are always selected, never bare
			}
		case *types.Const, *types.TypeName:
		case *types.Func:
			if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
				continue // methods are selected, never bare
			}
		default:
			continue
		}
		p.Reportf(id.Pos(), "%s %s shadows the predeclared identifier", declKind(obj), id.Name)
	}
	return nil
}

// declKind names the declaration class for the diagnostic message.
func declKind(obj types.Object) string {
	switch obj.(type) {
	case *types.Const:
		return "constant"
	case *types.TypeName:
		return "type"
	case *types.Func:
		return "function"
	default:
		return "variable"
	}
}

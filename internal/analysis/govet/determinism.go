package govet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism flags sources of run-to-run nondeterminism in packages that
// must replay identically under the logical clock: wall-clock reads, the
// global math/rand source (randomness must be threaded as an explicit
// *rand.Rand so SWIFI campaigns are seed-reproducible), and map iterations
// whose visit order can escape the loop.
//
// A map iteration is allowed when its only effect on the enclosing scope is
// `x = append(x, ...)` and every such x is passed to a sort.* or slices.*
// call after the loop in the same function — the canonical collect-then-sort
// idiom. Anything else that can observe visit order is flagged: returning,
// sending on a channel, writing a variable declared outside the loop, or
// calling a printing/writing function from the loop body.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, global math/rand, and order-dependent map iteration",
	Run:  runDeterminism,
}

// globalRandFns are the math/rand package-level functions that draw from
// the shared global source. Constructors (New, NewSource, NewZipf) build
// explicit sources and are fine.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

func runDeterminism(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			isMethod := sig != nil && sig.Recv() != nil
			switch {
			case fn.Pkg().Path() == "time" && fn.Name() == "Now":
				p.Reportf(call.Pos(), "time.Now reads the wall clock; use the kernel's logical clock")
			case fn.Pkg().Path() == "math/rand" && !isMethod && globalRandFns[fn.Name()]:
				p.Reportf(call.Pos(), "global math/rand.%s is not seed-reproducible; thread an explicit *rand.Rand", fn.Name())
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(p, fd)
		}
	}
	return nil
}

func checkMapRanges(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(p, fd, rs)
		return true
	})
}

// checkMapRange reports at most one finding per map-range loop.
func checkMapRange(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	// Slices grown by `x = append(x, ...)` inside the loop, keyed by the
	// printed form of x; each must be sorted after the loop.
	pending := make(map[string]token.Pos)
	var offense func() // non-nil once a finding is recorded

	report := func(pos token.Pos, format string, args ...any) {
		if offense == nil {
			offense = func() {}
			p.Reportf(pos, format, args...)
		}
	}

	localTo := func(id *ast.Ident) bool {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil {
			return true // blank identifier or unresolved
		}
		// Loop variables and anything declared inside the loop body are
		// invisible after the loop, so writes to them are order-safe.
		return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.Body.End()
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if offense != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			report(n.Pos(), "return inside map iteration depends on visit order; iterate sorted keys instead")
		case *ast.SendStmt:
			report(n.Pos(), "channel send inside map iteration leaks visit order")
		case *ast.IncDecStmt:
			// Increment/decrement of a counter is commutative across visit
			// orders; allowed.
		case *ast.AssignStmt:
			if target, ok := selfAppend(n); ok {
				pending[exprString(target)] = n.Pos()
				return true
			}
			for _, lhs := range n.Lhs {
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if !localTo(lhs) {
						report(n.Pos(), "writes %s (declared outside the loop) in map-iteration order", lhs.Name)
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					report(n.Pos(), "writes %s in map-iteration order", exprString(lhs))
				}
			}
		case *ast.CallExpr:
			name := calleeName(n)
			for _, prefix := range []string{"Print", "Fprint", "Write", "Fatal"} {
				if strings.HasPrefix(name, prefix) {
					report(n.Pos(), "calls %s inside map iteration; output order is nondeterministic", name)
				}
			}
		}
		return true
	})
	if offense != nil {
		return
	}
	for expr, pos := range pending {
		if !sortedAfter(p, fd, rs, expr) {
			p.Reportf(pos, "appends to %s in map-iteration order without sorting it afterwards", expr)
		}
	}
}

// selfAppend reports whether stmt has the shape `x = append(x, ...)` and
// returns x.
func selfAppend(stmt *ast.AssignStmt) (ast.Expr, bool) {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 || stmt.Tok != token.ASSIGN {
		return nil, false
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok || calleeName(call) != "append" || len(call.Args) < 2 {
		return nil, false
	}
	if exprString(call.Args[0]) != exprString(stmt.Lhs[0]) {
		return nil, false
	}
	return stmt.Lhs[0], true
}

// sortedAfter reports whether expr appears as an argument to a sort.* or
// slices.* call after the loop within the same function body.
func sortedAfter(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, expr string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprString(arg) == expr {
				found = true
			}
		}
		return true
	})
	return found
}

// exprString renders simple expressions (identifiers, selector chains,
// index expressions) for comparison and messages.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	default:
		return "<expr>"
	}
}

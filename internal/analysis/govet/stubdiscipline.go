package govet

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// StubDiscipline enforces two call-graph contracts around the kernel
// boundary:
//
// Rule A — no Invoke, Upcall or Dispatch call while the kernel mutex is
// held. The dispatcher re-enters the scheduler on every invocation, so an
// invocation made under k.mu self-deadlocks. Lock state is tracked
// lexically: a function whose name ends in "Locked" starts held; a
// `.mu.Lock()` call sets held, a plain `.mu.Unlock()` statement clears it,
// and `defer ...mu.Unlock()` keeps it held to the end of the function.
//
// Rule B — stub files (cstub.go, sstub.go, client_stub.go, server_stub.go)
// must not call kernel topology mutators on a Kernel receiver. Stubs are
// data-plane code replayed during recovery; mutating registration, hooks,
// budgets or fault state from a stub would desynchronize replay.
var StubDiscipline = &Analyzer{
	Name: "stubdiscipline",
	Doc:  "no invocations under the kernel mutex; no kernel mutators from stub files",
	Run:  runStubDiscipline,
}

// invokeNames are the calls that re-enter the dispatcher (Rule A).
var invokeNames = map[string]bool{"Invoke": true, "Upcall": true, "Dispatch": true}

// kernelMutators are control-plane methods stubs must not call (Rule B).
var kernelMutators = map[string]bool{
	"Register": true, "MustRegister": true, "SetInvokeHook": true,
	"AddRebootHook": true, "SetRegProfile": true, "SetInvokeBudget": true,
	"EnableWatchdog": true, "SetIdleHandler": true, "CrashSystem": true,
	"FailComponent": true, "CreateThread": true, "AdvanceClock": true,
	// Installing or swapping the trace recorder is control-plane: stubs may
	// record through an installed tracer but must never replace it.
	"SetTracer": true,
}

// stubFiles are the file basenames Rule B applies to.
var stubFiles = map[string]bool{
	"cstub.go": true, "sstub.go": true,
	"client_stub.go": true, "server_stub.go": true,
}

func runStubDiscipline(p *Pass) error {
	for _, f := range p.Files {
		isStub := stubFiles[filepath.Base(p.Fset.Position(f.Pos()).Filename)]
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHeldInvokes(p, fd)
			if isStub {
				checkStubMutators(p, fd)
			}
		}
	}
	return nil
}

// checkHeldInvokes applies Rule A to one function using a lexical
// (source-order) model of mutex state.
func checkHeldInvokes(p *Pass, fd *ast.FuncDecl) {
	held := strings.HasSuffix(fd.Name.Name, "Locked")
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.FuncLit:
			// Closures run at an unknown time; don't propagate the
			// lexical lock state into them.
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock":
				if isMutexRecv(sel.X) {
					held = true
				}
			case "Unlock":
				if isMutexRecv(sel.X) && !deferred[n] {
					held = false
				}
			case "Invoke", "Upcall", "Dispatch":
				if held {
					p.Reportf(n.Pos(), "%s called while the kernel mutex is held; the dispatcher re-enters and deadlocks", sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// isMutexRecv matches lock calls on a mutex-named receiver: `mu`, `k.mu`,
// `s.sys.mu`, ...
func isMutexRecv(x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return strings.HasSuffix(x.Name, "mu")
	case *ast.SelectorExpr:
		return strings.HasSuffix(x.Sel.Name, "mu")
	}
	return false
}

// checkStubMutators applies Rule B to one function in a stub file.
func checkStubMutators(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !kernelMutators[sel.Sel.Name] {
			return true
		}
		if !isKernelType(p.Info.TypeOf(sel.X)) {
			return true
		}
		p.Reportf(call.Pos(), "stub code must not call kernel mutator %s; stubs are data-plane only", sel.Sel.Name)
		return true
	})
}

// isKernelType reports whether t is (a pointer to) a named type called
// Kernel. Matching by shape rather than import path keeps the analyzer
// testable against self-contained fixtures.
func isKernelType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Kernel"
}

// Package fixture exercises the atomicstate accessor-discipline analyzer.
package fixture

import "sync/atomic"

type component struct {
	// state packs (epoch << 1) | faulty for the lock-free fast path.
	//sgvet:atomicstate accessors=snapshot,markFaulty
	state atomic.Uint64
	// plain is unannotated: free access.
	plain uint64
}

func (c *component) snapshot() uint64 { return c.state.Load() } // ok: accessor

func (c *component) markFaulty() { c.state.Store(c.state.Load() | 1) } // ok: accessor

func (c *component) epoch() uint64 {
	return c.state.Load() >> 1 // want `field component.state is atomicstate-guarded; access it only via markFaulty, snapshot`
}

func reset(c *component) {
	c.state.Store(0) // want "field component.state is atomicstate-guarded"
	c.plain = 0      // ok: unannotated
}

package fixture

// Kernel mimics the kernel's placement surface.
type Kernel struct{}

func (k *Kernel) SetComponentCore(id, core int) error        { return nil }
func (k *Kernel) CreateThreadOn(name string, core int) error { return nil }
func (k *Kernel) Invoke(fn string)                           {}

// System mimics core.System's sanctioned wrapper.
type System struct{ k *Kernel }

func (s *System) PlaceServer(id, core int) error { return nil }

// setup is control-plane code: the wrapper and thread placement are fine,
// raw component placement is not.
func setup(k *Kernel, s *System) {
	_ = s.PlaceServer(1, 1)          // ok: the sanctioned wrapper
	_ = k.CreateThreadOn("w", 0)     // ok: thread placement is control-plane API
	_ = k.SetComponentCore(1, 1)     // want "SetComponentCore called outside the kernel/core packages"
}

package fixture

// replayPath is data-plane stub code: no placement calls at all.
func replayPath(k *Kernel, s *System) {
	k.Invoke("lock_take")            // ok: invocation is what stubs do
	_ = k.SetComponentCore(2, 1)     // want "stub code must not change core placement"
	_ = s.PlaceServer(2, 1)          // want "stub code must not change core placement"
	_ = k.CreateThreadOn("aux", 1)   // want "stub code must not change core placement"
}

package fixture

// fastPath is what stubs do: invoke without the kernel mutex.
func fastPath(k *Kernel) {
	k.Invoke("f")     // ok: data-plane invocation
	k.WatchdogStats() // ok: read-only, not a mutator
}

func badStub(k *Kernel) {
	k.Register()     // want "stub code must not call kernel mutator Register"
	k.CreateThread() // want "stub code must not call kernel mutator CreateThread"
}

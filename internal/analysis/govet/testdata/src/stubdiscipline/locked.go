// Package fixture exercises both stubdiscipline rules: Rule A (no
// invocation under the kernel mutex) in this file, Rule B (no kernel
// mutators from stub files) in client_stub.go.
package fixture

import "sync"

type Kernel struct{ mu sync.Mutex }

func (k *Kernel) Invoke(fn string) {}
func (k *Kernel) Upcall(fn string) {}
func (k *Kernel) Register()        {}
func (k *Kernel) CreateThread()    {}
func (k *Kernel) WatchdogStats()   {}

func (k *Kernel) dispatchLocked() {
	k.Invoke("f") // want "Invoke called while the kernel mutex is held"
}

func (k *Kernel) relockLocked() {
	k.mu.Unlock()
	k.Invoke("f") // ok: released before re-entering the dispatcher
	k.mu.Lock()
}

func (k *Kernel) plain() {
	k.Invoke("f") // ok: no lock held
}

func (k *Kernel) underLock() {
	k.mu.Lock()
	k.Upcall("f") // want "Upcall called while the kernel mutex is held"
	k.mu.Unlock()
	k.Upcall("f") // ok: released
}

func (k *Kernel) deferredUnlock() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.Invoke("f") // want "Invoke called while the kernel mutex is held"
}

func (k *Kernel) controlPlane() {
	k.Register() // ok: mutators are fine outside stub files
}

// Package fixture exercises every determinism diagnostic and each allowed
// pattern. `// want "regex"` comments mark expected findings.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func globalRand() int {
	return rand.Intn(6) // want `global math/rand.Intn is not seed-reproducible`
}

func threadedRand(r *rand.Rand) int {
	return r.Intn(6) // ok: explicit source
}

func constructors() *rand.Rand {
	return rand.New(rand.NewSource(1)) // ok: constructors do not touch the global source
}

func mapReturn(m map[string]int) int {
	for _, v := range m {
		if v > 0 {
			return v // want "return inside map iteration depends on visit order"
		}
	}
	return 0
}

func mapOuterWrite(m map[string]int) string {
	var best string
	for k := range m {
		best = k // want `writes best \(declared outside the loop\) in map-iteration order`
	}
	return best
}

func mapPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "calls Println inside map iteration; output order is nondeterministic"
	}
}

func mapSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside map iteration leaks visit order"
	}
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to keys in map-iteration order without sorting it afterwards"
	}
	return keys
}

func count(m map[string]int) int {
	n := 0
	for range m {
		n++ // ok: increment is commutative
	}
	return n
}

func localOnly(m map[string]int) {
	for k, v := range m {
		s := k // ok: loop-local
		_ = s
		_ = v
	}
}

func suppressedUpperBound(m map[string]int) string {
	for k := range m {
		//sgvet:ignore determinism any key serves as an upper-bound witness
		return k
	}
	return ""
}
